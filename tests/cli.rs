//! End-to-end tests of the `mfbc-cli` binary: generate → stats → bc
//! → sssp → components → simulate pipelines through real process
//! invocations.

use std::process::{Command, Stdio};

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mfbc-cli"))
}

fn run_ok_capturing(args: &[&str], stdin: Option<&str>) -> (String, String) {
    let mut cmd = cli();
    cmd.args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped());
    let mut child = cmd.spawn().expect("spawn mfbc-cli");
    if let Some(input) = stdin {
        use std::io::Write;
        child
            .stdin
            .as_mut()
            .unwrap()
            .write_all(input.as_bytes())
            .unwrap();
    }
    drop(child.stdin.take());
    let out = child.wait_with_output().expect("wait");
    assert!(
        out.status.success(),
        "mfbc-cli {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    (
        String::from_utf8(out.stdout).expect("utf8 stdout"),
        String::from_utf8(out.stderr).expect("utf8 stderr"),
    )
}

fn run_ok(args: &[&str], stdin: Option<&str>) -> String {
    run_ok_capturing(args, stdin).0
}

const PATH_GRAPH: &str = "0 1\n1 2\n2 3\n";

#[test]
fn bc_finds_the_path_brokers() {
    let out = run_ok(&["bc", "--top", "2", "-"], Some(PATH_GRAPH));
    let lines: Vec<&str> = out.lines().collect();
    // Vertices 1 and 2 tie at λ = 4 on a 4-path.
    assert_eq!(lines.len(), 2);
    assert!(lines[0].starts_with("1\t4"));
    assert!(lines[1].starts_with("2\t4"));
}

#[test]
fn bc_normalized_is_bounded() {
    let out = run_ok(&["bc", "--normalized", "-"], Some(PATH_GRAPH));
    for line in out.lines() {
        let score: f64 = line.split('\t').nth(1).unwrap().parse().unwrap();
        assert!((0.0..=1.0).contains(&score), "{line}");
    }
}

#[test]
fn sssp_reports_distances_and_inf() {
    let out = run_ok(
        &["sssp", "--source", "0", "--directed", "-"],
        Some("0 1 5\n1 2 7\n3 0 1\n"),
    );
    let lines: Vec<&str> = out.lines().collect();
    assert_eq!(lines[0], "0\t0");
    assert_eq!(lines[1], "1\t5");
    assert_eq!(lines[2], "2\t12");
    assert_eq!(lines[3], "3\tinf");
}

#[test]
fn components_counts() {
    let out = run_ok(&["components", "-"], Some("0 1\n2 3\n"));
    let labels: Vec<u64> = out
        .lines()
        .map(|l| l.split('\t').nth(1).unwrap().parse().unwrap())
        .collect();
    assert_eq!(labels[0], labels[1]);
    assert_eq!(labels[2], labels[3]);
    assert_ne!(labels[0], labels[2]);
}

#[test]
fn generate_stats_roundtrip() {
    let graph = run_ok(&["generate", "uniform:64,200", "--seed", "5"], None);
    let stats = run_ok(&["stats", "-"], Some(&graph));
    let get = |key: &str| -> String {
        stats
            .lines()
            .find(|l| l.starts_with(key))
            .unwrap_or_else(|| panic!("missing {key} in {stats}"))
            .split('\t')
            .nth(1)
            .unwrap()
            .to_string()
    };
    assert_eq!(get("directed"), "false");
    let n: usize = get("n").parse().unwrap();
    assert!(n <= 64);
    let edges: usize = get("edges").parse().unwrap();
    assert!(edges > 150 && edges <= 200);
}

#[test]
fn simulate_reports_costs() {
    let out = run_ok(
        &[
            "simulate",
            "--nodes",
            "4",
            "--graph",
            "uniform:128,512",
            "--batch",
            "32",
        ],
        None,
    );
    assert!(out.contains("algorithm\tCTF-MFBC"));
    let msgs: u64 = out
        .lines()
        .find(|l| l.starts_with("critical_msgs"))
        .unwrap()
        .split('\t')
        .nth(1)
        .unwrap()
        .parse()
        .unwrap();
    assert!(msgs > 0);

    let cb = run_ok(
        &[
            "simulate",
            "--nodes",
            "4",
            "--plan",
            "combblas",
            "--graph",
            "uniform:128,512",
            "--batch",
            "32",
        ],
        None,
    );
    assert!(cb.contains("algorithm\tCombBLAS-style"));
}

#[test]
fn bad_usage_fails_cleanly() {
    let out = cli().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));

    let out = cli().args(["sssp", "-"]).output().unwrap();
    assert!(!out.status.success());

    let out = cli()
        .args(["bc", "--top", "notanumber", "-"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}

#[test]
fn simulate_prints_bottlenecks_and_tees_timeline() {
    let dir = std::env::temp_dir().join(format!("mfbc-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let tpath = dir.join("simulate-timeline.json");
    let (_, err) = run_ok_capturing(
        &[
            "simulate",
            "--nodes",
            "4",
            "--graph",
            "uniform:64,256",
            "--batch",
            "16",
            "--timeline-out",
            tpath.to_str().unwrap(),
        ],
        None,
    );
    assert!(
        err.contains("top-3 bottleneck segments"),
        "missing bottleneck block in stderr: {err}"
    );
    let text = std::fs::read_to_string(&tpath).unwrap();
    let doc = mfbc_timeline::parse_timeline(&text).expect("teed timeline.json must parse");
    assert_eq!(doc.p, 4);
    assert!(doc.events > 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn analyze_reports_bit_exact_path_and_overlap_bound() {
    let dir = std::env::temp_dir().join(format!("mfbc-cli-analyze-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let tpath = dir.join("timeline.json");
    let hpath = dir.join("gantt.html");
    let out = run_ok(
        &[
            "analyze",
            "--what-if",
            "overlap",
            "--timeline-out",
            tpath.to_str().unwrap(),
            "--html-out",
            hpath.to_str().unwrap(),
        ],
        None,
    );
    assert!(out.contains("(bit-exact)"), "no bit-exact line: {out}");
    assert!(out.contains("what-if bounds"), "no what-if table: {out}");
    let overlap = out
        .lines()
        .find(|l| l.trim_start().starts_with("overlap"))
        .expect("overlap row in what-if table");
    assert!(overlap.ends_with('x'), "no speedup column: {overlap}");

    // The exported document carries the same numbers the text report
    // printed, and --compare against it reports no differences.
    let doc = mfbc_timeline::parse_timeline(&std::fs::read_to_string(&tpath).unwrap()).unwrap();
    let printed_makespan = out
        .lines()
        .find(|l| l.starts_with("makespan_s"))
        .and_then(|l| l.split('\t').nth(1))
        .unwrap()
        .parse::<f64>()
        .unwrap();
    assert_eq!(doc.makespan_s.to_bits(), printed_makespan.to_bits());
    assert!(std::fs::read_to_string(&hpath)
        .unwrap()
        .contains("data-rank"));

    let (again, _) = run_ok_capturing(&["analyze", "--compare", tpath.to_str().unwrap()], None);
    assert!(
        again.contains("(identical)"),
        "re-analysis of the pinned case should diff clean: {again}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn approximate_bc_runs() {
    let graph = run_ok(&["generate", "rmat:7,4", "--seed", "3"], None);
    let out = run_ok(&["bc", "--approx", "16", "--top", "3", "-"], Some(&graph));
    assert_eq!(out.lines().count(), 3);
}

/// Runs the CLI with piped stdin and returns (exit code, stdout,
/// stderr) without asserting success — for the exit-code contract.
fn run_capturing(args: &[&str], stdin: Option<&str>) -> (i32, String, String) {
    let mut cmd = cli();
    cmd.args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped());
    let mut child = cmd.spawn().expect("spawn mfbc-cli");
    if let Some(input) = stdin {
        use std::io::Write;
        child
            .stdin
            .as_mut()
            .unwrap()
            .write_all(input.as_bytes())
            .unwrap();
    }
    drop(child.stdin.take());
    let out = child.wait_with_output().expect("wait");
    (
        out.status.code().expect("exit code"),
        String::from_utf8(out.stdout).expect("utf8 stdout"),
        String::from_utf8(out.stderr).expect("utf8 stderr"),
    )
}

#[test]
fn exit_code_2_for_usage_and_config_errors() {
    let (code, _, err) = run_capturing(&["frobnicate"], None);
    assert_eq!(code, 2, "unknown command: {err}");
    assert!(err.contains("usage:"), "usage block only for code 2: {err}");

    let (code, _, _) = run_capturing(&["simulate"], None);
    assert_eq!(code, 2, "missing --nodes is a config error");

    let (code, _, err) = run_capturing(&["serve", "--nodes", "2", "--deadline", "-1"], None);
    assert_eq!(code, 2, "negative deadline is a config error: {err}");
}

#[test]
fn exit_code_3_for_machine_errors() {
    // A replication factor that does not divide the machine is
    // rejected by the planning layer, not the flag parser.
    let (code, _, err) = run_capturing(
        &[
            "simulate",
            "--nodes",
            "4",
            "--plan",
            "ca:3",
            "--graph",
            "uniform:32,64",
        ],
        None,
    );
    assert_eq!(code, 3, "machine error must exit 3: {err}");
    assert!(!err.contains("usage:"), "no usage block for code 3: {err}");
}

#[test]
fn exit_code_4_for_serve_bench_regressions() {
    // A doctored serve baseline: counts that cannot match (and a huge
    // wall ceiling so only the count finding fires, debug or release).
    let dir = std::env::temp_dir().join(format!("mfbc-cli-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("serve-baseline.json");
    let text = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_serve.json"))
        .expect("committed BENCH_serve.json");
    let doctored = text
        .replace("\"admitted\": 41", "\"admitted\": 40")
        .replace("\"wall_band\": 1.0", "\"wall_band\": 10000.0");
    assert_ne!(doctored, text, "baseline shape changed; update this test");
    std::fs::write(&path, doctored).unwrap();
    let (code, _, err) =
        run_capturing(&["bench", "--serve-baseline", path.to_str().unwrap()], None);
    assert_eq!(code, 4, "serve count drift must exit 4: {err}");
    assert!(err.contains("admitted"), "finding names the field: {err}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn exit_code_5_when_serve_poisons_yet_still_answers_stale() {
    // p=2 under a modeled 21 kB/rank budget: the crash at collective
    // #2 forces a shrink to p=1 whose resident state no longer fits,
    // so exact progress ends — the engine must still answer the
    // queued request (stale) and then exit 5.
    let (code, out, err) = run_capturing(
        &[
            "serve",
            "--nodes",
            "2",
            "--graph",
            "uniform:48,600",
            "--batch",
            "1",
            "--mem-bytes",
            "21000",
            "--faults",
            "crash:0@2",
            "--seed",
            "3",
        ],
        Some("{\"id\":1,\"query\":\"full\"}\n\n"),
    );
    assert_eq!(code, 5, "poisoned engine must exit 5: {err}");
    assert!(err.contains("poisoned"), "{err}");
    assert!(
        out.contains("\"id\":1") && out.contains("\"quality\":\"stale\""),
        "the admitted request must still be answered, stale: {out}"
    );
}

#[test]
fn serve_answers_json_lines_and_reports_health() {
    let (_, err) = run_ok_capturing(
        &[
            "serve", "--nodes", "4", "--graph", "uniform:32,64", "--batch", "8",
            "--seed", "7",
        ],
        Some("{\"cmd\":\"health\"}\n{\"id\":1,\"query\":\"topk\",\"k\":2}\n\n{\"id\":2,\"query\":\"vertex\",\"v\":3}\n{\"not\":\"a request\"}\n"),
    );
    assert!(err.contains("served 2 response(s)"), "{err}");
    let (out, _) = run_ok_capturing(
        &[
            "serve",
            "--nodes",
            "4",
            "--graph",
            "uniform:32,64",
            "--batch",
            "8",
            "--seed",
            "7",
        ],
        Some("{\"cmd\":\"health\"}\n{\"id\":1,\"query\":\"topk\",\"k\":2}\n\n"),
    );
    let lines: Vec<&str> = out.lines().collect();
    assert!(
        lines[0].contains("\"ready\":true") && lines[0].contains("\"p\":4"),
        "health line first: {out}"
    );
    assert!(
        lines[1].contains("\"id\":1")
            && lines[1].contains("\"quality\":\"exact\"")
            && lines[1].contains("\"topk\":["),
        "exact top-k response: {out}"
    );

    // Same seed, same schedule: the response stream is bit-identical.
    let (again, _) = run_ok_capturing(
        &[
            "serve",
            "--nodes",
            "4",
            "--graph",
            "uniform:32,64",
            "--batch",
            "8",
            "--seed",
            "7",
        ],
        Some("{\"cmd\":\"health\"}\n{\"id\":1,\"query\":\"topk\",\"k\":2}\n\n"),
    );
    assert_eq!(out, again, "serve output must be deterministic");
}

#[test]
fn serve_dump_command_returns_one_flight_line() {
    let (out, _) = run_ok_capturing(
        &[
            "serve",
            "--nodes",
            "4",
            "--graph",
            "uniform:32,64",
            "--batch",
            "8",
            "--seed",
            "7",
        ],
        Some("{\"id\":1,\"query\":\"topk\",\"k\":2}\n\n{\"cmd\":\"dump\"}\n"),
    );
    let dump = out
        .lines()
        .find(|l| l.starts_with("{\"flight\":1"))
        .expect("dump cmd answers with a flight line");
    assert!(
        dump.contains("\"kind\":\"admitted\"")
            && dump.contains("\"kind\":\"round_start\"")
            && dump.contains("\"kind\":\"round_end\""),
        "dump covers the round's events: {dump}"
    );
    assert!(
        dump.contains("\"rung\":\"exact\"") && dump.contains("\"complete\":true"),
        "journey explains the exact answer: {dump}"
    );
}

#[test]
fn flight_out_captures_the_poison_auto_dump_and_a_final_dump() {
    let dir = std::env::temp_dir().join(format!("mfbc-cli-flight-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("flight.jsonl");
    // The pinned poison recipe from exit-code-5: the crash at p = 2
    // under a 21 kB budget ends exact progress mid-round.
    let (code, _, err) = run_capturing(
        &[
            "serve",
            "--nodes",
            "2",
            "--graph",
            "uniform:48,600",
            "--batch",
            "1",
            "--mem-bytes",
            "21000",
            "--faults",
            "crash:0@2",
            "--seed",
            "3",
            "--flight-out",
            path.to_str().unwrap(),
        ],
        Some("{\"id\":1,\"query\":\"full\"}\n\n"),
    );
    assert_eq!(code, 5, "still the poisoned exit: {err}");
    let text = std::fs::read_to_string(&path).expect("--flight-out written even on exit 5");
    let lines: Vec<&str> = text.lines().collect();
    assert!(
        lines.len() >= 2,
        "auto-dump at poison time plus a final dump: {} line(s)",
        lines.len()
    );
    for l in &lines {
        assert!(l.starts_with("{\"flight\":1"), "every line is a dump: {l}");
    }
    assert!(
        lines[0].contains("\"kind\":\"poison\""),
        "the auto-dump holds the poison event: {}",
        lines[0]
    );
    let last = lines.last().unwrap();
    assert!(
        last.contains("\"rung\":\"stale\"")
            && last.contains("\"reason\":\"poisoned\"")
            && last.contains("\"complete\":true"),
        "the final dump's journey explains the stale answer: {last}"
    );
    std::fs::remove_dir_all(&dir).ok();
}
