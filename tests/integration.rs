//! Cross-crate integration tests at the public-API (facade) level:
//! full pipelines from generator → preprocessing → distributed BC →
//! cost report, plus the paper-shaped behavioural checks (memory
//! gates, weighted slowdown, baseline restrictions).

use mfbc::core::combblas::{combblas_bc, BaselineError, CombBlasConfig};
use mfbc::prelude::*;

#[test]
fn full_pipeline_rmat_to_report() {
    let g0 = rmat(&RmatConfig::paper(8, 8, 1));
    let g = prep::remove_isolated(&g0);
    assert!(g.n() <= g0.n());

    let machine = Machine::new(MachineSpec::gemini(16));
    let cfg = MfbcConfig {
        batch_size: Some(64),
        max_batches: Some(1),
        ..Default::default()
    };
    let run = mfbc_dist(&machine, &g, &cfg).unwrap();
    assert_eq!(run.sources_processed, 64);
    let report = machine.report();
    assert!(report.critical.comm_time > 0.0);
    assert!(report.critical.comp_time > 0.0);
    assert!(report.total_ops > 0);
    assert!(run.frontier_nnz > 0);
}

#[test]
fn scores_identical_across_all_execution_paths() {
    let g = uniform(64, 256, false, None, 7);
    let oracle = brandes_unweighted(&g);
    let (seq, _) = mfbc_seq(&g, 16);
    assert!(seq.approx_eq(&oracle, 1e-8));

    for p in [4usize, 16] {
        for mode in [PlanMode::Auto, PlanMode::Ca { c: p / 4 }] {
            let machine = Machine::new(MachineSpec::test(p));
            let run = mfbc_dist(
                &machine,
                &g,
                &MfbcConfig {
                    batch_size: Some(16),
                    plan_mode: mode.clone(),
                    max_batches: None,
                    amortize_adjacency: true,
                    sources: None,
                    threads: None,
                    masked: true,
                },
            )
            .unwrap();
            assert!(
                run.scores.approx_eq(&oracle, 1e-8),
                "p={p} mode={mode:?}: diff {}",
                run.scores.max_abs_diff(&oracle)
            );
        }
        let machine = Machine::new(MachineSpec::test(p));
        let run = combblas_bc(
            &machine,
            &g,
            &CombBlasConfig {
                batch_size: Some(16),
                max_batches: None,
            },
        )
        .unwrap();
        assert!(run.scores.approx_eq(&oracle, 1e-8));
    }
}

#[test]
fn weighted_graphs_run_slower_in_iterations() {
    // §7.2: with weights "the number of sparse matrix multiplications
    // doubles and the frontier stays relatively dense" — check the
    // iteration-count mechanism on the same topology.
    let unweighted = rmat(&RmatConfig::paper(7, 8, 3));
    let weighted = prep::randomize_weights(&unweighted, 100, 9);

    let m1 = Machine::new(MachineSpec::test(4));
    let cfg = MfbcConfig {
        batch_size: Some(32),
        max_batches: Some(1),
        ..Default::default()
    };
    let ru = mfbc_dist(&m1, &unweighted, &cfg).unwrap();
    let m2 = Machine::new(MachineSpec::test(4));
    let rw = mfbc_dist(&m2, &weighted, &cfg).unwrap();
    assert!(
        rw.forward_iterations > ru.forward_iterations,
        "weighted {} vs unweighted {}",
        rw.forward_iterations,
        ru.forward_iterations
    );
    assert!(rw.frontier_nnz >= ru.frontier_nnz);
}

#[test]
fn oom_gate_reproduces_unable_to_execute() {
    // A graph too large for the per-rank budget: the CombBLAS-style
    // baseline (frontier stack + adjacency) must die with OOM while
    // MFBC still completes within the same budget — the paper's
    // Friendster scenario in miniature.
    let g = uniform(512, 16_384, false, None, 5);
    // Measured peaks at these batch sizes (with adjacency caching):
    // the baseline's frontier stack + σ/δ tables peak at ~1.6 MB/rank,
    // MFBC's multpath table + cached adjacency forms at ~1.43 MB/rank.
    // A 1.5 MB budget separates them — the paper's mechanism: MFBC
    // runs wherever M = Ω(c·m/p), the stack-keeping baseline needs
    // more.
    let budget = 1_536 * 1024;
    let spec = MachineSpec::test(4).with_mem_bytes(Some(budget));

    let m_base = Machine::new(spec.clone());
    let cfg = CombBlasConfig {
        batch_size: Some(256),
        max_batches: Some(1),
    };
    let baseline = combblas_bc(&m_base, &g, &cfg);
    assert!(
        matches!(baseline, Err(BaselineError::Machine(_))),
        "baseline should exceed {budget} B/rank, got {baseline:?}"
    );

    let m_mfbc = Machine::new(spec);
    let run = mfbc_dist(
        &m_mfbc,
        &g,
        &MfbcConfig {
            batch_size: Some(64),
            max_batches: Some(1),
            ..Default::default()
        },
    );
    assert!(run.is_ok(), "MFBC should fit: {:?}", run.err());
}

#[test]
fn snap_standins_run_end_to_end() {
    for which in [SnapGraph::Orkut, SnapGraph::Patents] {
        let g = snap_standin(which, 8192, 1);
        let machine = Machine::new(MachineSpec::gemini(4));
        let run = mfbc_dist(
            &machine,
            &g,
            &MfbcConfig {
                batch_size: Some(32),
                max_batches: Some(1),
                ..Default::default()
            },
        )
        .unwrap();
        assert!(run.frontier_nnz > 0, "{which:?}");
        // Spot-check against the oracle on these real-ish topologies.
        let oracle = brandes_unweighted(&g);
        let full = mfbc_seq(&g, 128).0;
        assert!(
            full.approx_eq(&oracle, 1e-7),
            "{which:?}: diff {}",
            full.max_abs_diff(&oracle)
        );
    }
}

#[test]
fn effective_diameter_drives_iteration_count() {
    // MFBF's unweighted iteration count per batch ≈ eccentricity of
    // the batch's sources — the d factor in Theorem 5.1.
    let path = Graph::unweighted(64, false, (0..63).map(|i| (i, i + 1)));
    let m = Machine::new(MachineSpec::test(4));
    let run = mfbc_dist(
        &m,
        &path,
        &MfbcConfig {
            batch_size: Some(64),
            max_batches: Some(1),
            ..Default::default()
        },
    )
    .unwrap();
    assert!(
        run.forward_iterations >= 62,
        "path graph needs ~d iterations, got {}",
        run.forward_iterations
    );
}

#[test]
fn prelude_exposes_the_documented_api() {
    // Compile-time façade check: the names used in README/examples.
    let g: Graph = Graph::unweighted(3, false, vec![(0, 1), (1, 2)]);
    let _: BcScores = brandes_unweighted(&g);
    let _: BcScores = brandes_weighted(&g);
    let _: BcScores = bruteforce_bc(&g);
    let _ = mfbf_seq(&g, &[0]);
    let t = mfbf_seq(&g, &[0]).t;
    let _ = mfbr_seq(&g, &t);
    let _: MmPlan = ca_plan(4, 1).unwrap();
    let _ = (Variant1D::A, Variant2D::AB);
    let _: (Dist, Multpath, Centpath) = (Dist::ONE, Multpath::trivial(), Centpath::none());
}
