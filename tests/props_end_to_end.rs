//! Property-based end-to-end tests: MFBC (sequential and
//! distributed) equals the Brandes oracles on arbitrary random
//! graphs — weighted, directed, disconnected, multi-component.

#![allow(clippy::needless_range_loop)]

use mfbc::prelude::*;
use proptest::collection::vec;
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct GraphSpec {
    n: usize,
    directed: bool,
    edges: Vec<(usize, usize, u64)>,
}

fn arb_graph(max_n: usize, weighted: bool) -> impl Strategy<Value = GraphSpec> {
    (3..max_n).prop_flat_map(move |n| {
        let wmax = if weighted { 8 } else { 1 };
        (
            Just(n),
            any::<bool>(),
            vec((0..n, 0..n, 1u64..=wmax), 0..3 * n),
        )
            .prop_map(|(n, directed, edges)| GraphSpec { n, directed, edges })
    })
}

fn build(spec: &GraphSpec) -> Graph {
    Graph::new(
        spec.n,
        spec.directed,
        spec.edges.iter().map(|&(u, v, w)| (u, v, Dist::new(w))),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn seq_mfbc_equals_oracle(spec in arb_graph(16, true), nb in 1usize..6) {
        let g = build(&spec);
        let want = if g.is_unit_weighted() {
            brandes_unweighted(&g)
        } else {
            brandes_weighted(&g)
        };
        let (got, _) = mfbc_seq(&g, nb);
        prop_assert!(
            got.approx_eq(&want, 1e-7),
            "diff {} on {:?}",
            got.max_abs_diff(&want),
            spec
        );
    }

    #[test]
    fn dist_mfbc_equals_oracle(spec in arb_graph(14, true), p in prop_oneof![Just(1usize), Just(2), Just(4), Just(6)]) {
        let g = build(&spec);
        let want = if g.is_unit_weighted() {
            brandes_unweighted(&g)
        } else {
            brandes_weighted(&g)
        };
        let machine = Machine::new(MachineSpec::test(p));
        let run = mfbc_dist(&machine, &g, &MfbcConfig {
            batch_size: Some(5),
            ..Default::default()
        }).unwrap();
        prop_assert!(
            run.scores.approx_eq(&want, 1e-7),
            "p={p}, diff {} on {:?}",
            run.scores.max_abs_diff(&want),
            spec
        );
    }

    #[test]
    fn mfbf_distances_equal_dijkstra(spec in arb_graph(14, true)) {
        // MFBF's (τ, σ̄) against an independent Dijkstra—the Lemma 4.1
        // property.
        let g = build(&spec);
        let out = mfbf_seq(&g, &[0]);
        let hops = dijkstra_ref(&g, 0);
        for v in 0..g.n() {
            match (out.t.get(0, v), hops[v]) {
                (Some(mp), Some((d, m))) => {
                    prop_assert_eq!(mp.w.raw(), d, "distance mismatch at {}", v);
                    prop_assert_eq!(mp.m, m as f64, "multiplicity mismatch at {}", v);
                }
                (None, None) => {}
                (a, b) => prop_assert!(false, "reachability mismatch at {v}: {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn brute_force_agreement_on_tiny(spec in arb_graph(7, true)) {
        let g = build(&spec);
        let bf = bruteforce_bc(&g);
        let (mf, _) = mfbc_seq(&g, 3);
        prop_assert!(
            mf.approx_eq(&bf, 1e-7),
            "diff {} on {:?}",
            mf.max_abs_diff(&bf),
            spec
        );
    }
}

/// Independent Dijkstra with path counting (no shared code with the
/// oracles or MFBC).
fn dijkstra_ref(g: &Graph, s: usize) -> Vec<Option<(u64, u64)>> {
    let n = g.n();
    let mut dist: Vec<Option<u64>> = vec![None; n];
    let mut count = vec![0u64; n];
    let mut done = vec![false; n];
    dist[s] = Some(0);
    count[s] = 1;
    for _ in 0..n {
        let mut best: Option<(u64, usize)> = None;
        for v in 0..n {
            if !done[v] {
                if let Some(d) = dist[v] {
                    if best.is_none_or(|(bd, _)| d < bd) {
                        best = Some((d, v));
                    }
                }
            }
        }
        let Some((d, v)) = best else { break };
        done[v] = true;
        for (u, w) in g.neighbors(v) {
            let cand = d + w.raw();
            match dist[u] {
                None => {
                    dist[u] = Some(cand);
                    count[u] = count[v];
                }
                Some(du) if cand < du => {
                    dist[u] = Some(cand);
                    count[u] = count[v];
                }
                Some(du) if cand == du => count[u] += count[v],
                _ => {}
            }
        }
    }
    (0..n)
        .map(|v| {
            if v == s {
                dist[v].map(|d| (d, 1))
            } else {
                dist[v].map(|d| (d, count[v]))
            }
        })
        .collect()
}
