//! Weighted betweenness on a road-style network — the capability the
//! paper highlights over prior matrix-based BC codes ("our
//! implementation is general to weighted graphs"): the CombBLAS-style
//! baseline refuses weighted input, while MFBC handles it via the
//! multpath monoid.
//!
//! Builds a grid road network with travel-time weights plus a fast
//! highway, finds the bottleneck intersections, and shows the
//! weighted/unweighted rankings differ.
//!
//! Run with: `cargo run --release --example weighted_roads`

use mfbc::core::combblas::{combblas_bc, BaselineError, CombBlasConfig};
use mfbc::prelude::*;

/// A `k × k` grid of intersections; local streets take 3–5 minutes,
/// and a fast east-west highway crosses the middle row at 1 minute
/// per segment.
fn road_network(k: usize) -> Graph {
    let idx = |r: usize, c: usize| r * k + c;
    let mut edges = Vec::new();
    let mid = k / 2;
    for r in 0..k {
        for c in 0..k {
            if c + 1 < k {
                let w = if r == mid {
                    1
                } else {
                    3 + ((r + c) % 3) as u64
                };
                edges.push((idx(r, c), idx(r, c + 1), Dist::new(w)));
            }
            if r + 1 < k {
                edges.push((
                    idx(r, c),
                    idx(r + 1, c),
                    Dist::new(3 + ((r * c) % 3) as u64),
                ));
            }
        }
    }
    Graph::new(k * k, false, edges)
}

fn main() {
    let k = 9;
    let g = road_network(k);
    println!(
        "road network: {}x{} grid, n = {}, edges = {}, highway on row {}",
        k,
        k,
        g.n(),
        g.edge_count(),
        k / 2
    );

    // The BFS-based baseline cannot handle travel times.
    let machine = Machine::new(MachineSpec::gemini(4));
    match combblas_bc(&machine, &g, &CombBlasConfig::default()) {
        Err(BaselineError::WeightedUnsupported) => {
            println!("CombBLAS-style baseline: refused (weighted graphs unsupported) ✓")
        }
        other => panic!("baseline should refuse weighted input, got {other:?}"),
    }

    // MFBC handles weights natively. Validate against Dijkstra-Brandes.
    machine.reset_meters();
    let run = mfbc_dist(&machine, &g, &MfbcConfig::default()).expect("fits in memory");
    let oracle = brandes_weighted(&g);
    assert!(
        run.scores.approx_eq(&oracle, 1e-9),
        "MFBC != weighted oracle"
    );
    println!(
        "MFBC (weighted): {} forward iterations for {} batches — weights add correction rounds",
        run.forward_iterations, run.batches
    );

    println!("\nbusiest intersections by travel-time betweenness:");
    for (v, s) in run.scores.top_k(5) {
        println!("  ({:>2},{:>2})  λ = {s:.1}", v / k, v % k);
    }

    // Contrast with hop-count betweenness: ignoring travel times
    // moves the bottlenecks off the highway.
    let hop_g = prep::unweighted_copy(&g);
    let (hop_scores, _) = mfbc_seq(&hop_g, 128);
    let weighted_top: Vec<usize> = run.scores.top_k(5).into_iter().map(|(v, _)| v).collect();
    let hop_top: Vec<usize> = hop_scores.top_k(5).into_iter().map(|(v, _)| v).collect();
    println!("\nweighted top-5: {weighted_top:?}");
    println!("hop-count top-5: {hop_top:?}");
    let mid_row: Vec<usize> = weighted_top.iter().map(|v| v / k).collect();
    println!(
        "weighted bottlenecks concentrate on the highway row {}: rows {mid_row:?}",
        k / 2
    );
}
