//! Approximate betweenness centrality by source sampling — trading
//! exactness for a `k/n` fraction of the work, the practical mode for
//! large graphs (the paper's intro cites Bader et al.'s approximation
//! as standard practice).
//!
//! Shows estimator convergence: top-k overlap with the exact ranking
//! as the sample grows.
//!
//! Run with: `cargo run --release --example approx_bc`

use mfbc::prelude::*;

fn top_set(scores: &BcScores, k: usize) -> std::collections::HashSet<usize> {
    scores.top_k(k).into_iter().map(|(v, _)| v).collect()
}

fn main() {
    let g = prep::remove_isolated(&rmat(&RmatConfig::paper(11, 16, 77)));
    println!("R-MAT graph: n = {}, arcs = {}", g.n(), g.m());

    let exact = brandes_unweighted(&g);
    let exact_top = top_set(&exact, 10);
    println!("\nexact top-10: {:?}", {
        let mut v: Vec<_> = exact_top.iter().copied().collect();
        v.sort_unstable();
        v
    });

    println!(
        "\n{:>8} {:>14} {:>18} {:>12}",
        "sample", "work fraction", "top-10 overlap", "max rel err"
    );
    for k in [16usize, 64, 256, 1024] {
        let k = k.min(g.n());
        let est = mfbc_approx(&g, k, 1234);
        let got_top = top_set(&est.scores, 10);
        let overlap = exact_top.intersection(&got_top).count();
        // Relative error over the exact top-10 (the vertices anyone
        // would act on).
        let max_rel = exact_top
            .iter()
            .map(|&v| {
                let e = exact.lambda[v];
                ((est.scores.lambda[v] - e) / e).abs()
            })
            .fold(0.0f64, f64::max);
        println!(
            "{:>8} {:>13.1}% {:>15}/10 {:>11.1}%",
            k,
            100.0 * k as f64 / g.n() as f64,
            overlap,
            100.0 * max_rel
        );
    }

    let full = mfbc_approx(&g, g.n(), 0);
    assert!(
        full.scores.approx_eq(&exact, 1e-7),
        "a full sample must be exact"
    );
    println!("\nfull sample reproduces the exact scores ✓");
}
