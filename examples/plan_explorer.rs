//! Plan explorer: what the autotuner sees. For one frontier ×
//! adjacency product, score every 1D/2D/3D plan with the analytic
//! cost model, print the ranking, then execute the best and worst
//! plans and compare their *charged* critical-path costs — showing
//! the decomposition search the paper's §6.2 describes, and that the
//! model's ordering matches the simulated machine's.
//!
//! Run with: `cargo run --release --example plan_explorer`

use mfbc::algebra::kernel::BellmanFordKernel;
use mfbc::algebra::{Multpath, MultpathMonoid};
use mfbc::prelude::*;
use mfbc::sparse::Coo;
use mfbc::tensor::autotune::{candidate_plans, stats_for};
use mfbc::tensor::costmodel::predict;
use mfbc::tensor::{canonical_layout, mm_exec, DistMat};

fn main() {
    let p = 16;
    let g = rmat(&RmatConfig::paper(12, 16, 7));
    let n = g.n();
    let nb = 128;

    // A mid-BFS frontier: every source has reached ~64 vertices.
    let mut coo = Coo::new(nb, n);
    for s in 0..nb {
        for i in 0..64usize {
            coo.push(s, (s * 97 + i * 53) % n, Multpath::new(Dist::new(2), 1.0));
        }
    }
    let frontier = coo.into_csr::<MultpathMonoid>();

    let machine = Machine::new(MachineSpec::gemini(p));
    let df = DistMat::from_global(canonical_layout(&machine, nb, n), &frontier);
    let da = DistMat::from_global(canonical_layout(&machine, n, n), g.adjacency());

    let st = stats_for::<BellmanFordKernel>(&df, &da);
    println!(
        "product: frontier {}x{} (nnz {}) × adjacency {}x{} (nnz {}), p = {p}",
        nb, n, st.nnz_a, n, n, st.nnz_b
    );

    let mut ranked: Vec<(MmPlan, f64)> = candidate_plans(p)
        .into_iter()
        .map(|plan| {
            let t = predict(machine.spec(), &plan, &st);
            (plan, t)
        })
        .collect();
    ranked.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());

    println!(
        "\npredicted cost ranking ({} candidate plans):",
        ranked.len()
    );
    for (plan, t) in ranked.iter().take(6) {
        println!("  {:<55} {:>10.3} ms", format!("{plan:?}"), t * 1e3);
    }
    println!("  …");
    for (plan, t) in ranked.iter().rev().take(2).rev() {
        println!("  {:<55} {:>10.3} ms", format!("{plan:?}"), t * 1e3);
    }

    // Execute best vs worst; the charged critical path should agree
    // with the model's ordering.
    let (best_plan, best_pred) = ranked.first().unwrap().clone();
    let (worst_plan, worst_pred) = ranked.last().unwrap().clone();

    let run = |plan: &MmPlan| -> f64 {
        let m = Machine::new(MachineSpec::gemini(p));
        let df = DistMat::from_global(canonical_layout(&m, nb, n), &frontier);
        let da = DistMat::from_global(canonical_layout(&m, n, n), g.adjacency());
        let _ = mm_exec::<BellmanFordKernel>(&m, plan, &df, &da).expect("plan executes");
        m.report().critical.total_time()
    };
    let best_t = run(&best_plan);
    let worst_t = run(&worst_plan);
    println!("\ncharged on the simulated machine:");
    println!(
        "  best  {best_plan:?}: predicted {:.3} ms, charged {:.3} ms",
        best_pred * 1e3,
        best_t * 1e3
    );
    println!(
        "  worst {worst_plan:?}: predicted {:.3} ms, charged {:.3} ms",
        worst_pred * 1e3,
        worst_t * 1e3
    );
    assert!(
        best_t < worst_t,
        "model ordering must hold on the machine: {best_t} vs {worst_t}"
    );
    println!("\nmodel ordering confirmed by the machine ✓");
}
