//! Social-network centrality at scale: run MFBC on the Orkut-like
//! Table-2 stand-in across simulated machine sizes and watch strong
//! scaling — the scenario of the paper's Fig. 1(a), condensed.
//!
//! Run with: `cargo run --release --example social_network`

use mfbc::machine::CostReport;
use mfbc::prelude::*;

fn mteps_per_node(g: &Graph, sources: usize, report: &CostReport, p: usize) -> f64 {
    // TEPS as the paper counts it: every edge is traversed once per
    // starting vertex (§7.1).
    let traversals = g.m() as f64 * sources as f64;
    traversals / report.critical.total_time() / 1e6 / p as f64
}

fn main() {
    // Orkut stand-in at 1/4096 scale: dense, low-diameter — MFBC's
    // best case per the paper.
    let g = snap_standin(SnapGraph::Orkut, 4096, 42);
    let (avg_deg, max_deg) = stats::degree_stats(&g);
    println!(
        "orkut stand-in: n = {}, arcs = {}, avg degree = {avg_deg:.1}, max degree = {max_deg}",
        g.n(),
        g.m()
    );

    let batch = 64;
    println!("\nstrong scaling, one batch of {batch} sources (autotuned CTF-MFBC):");
    println!(
        "{:>6} {:>14} {:>12} {:>12} {:>10}",
        "nodes", "MTEPS/node", "comm(ms)", "comp(ms)", "msgs"
    );
    let mut reference: Option<BcScores> = None;
    for p in [1usize, 4, 16, 64] {
        let machine = Machine::new(MachineSpec::gemini(p));
        let cfg = MfbcConfig {
            batch_size: Some(batch),
            max_batches: Some(1),
            ..Default::default()
        };
        let run = mfbc_dist(&machine, &g, &cfg).expect("fits in memory");
        let report = run.report.clone();
        println!(
            "{:>6} {:>14.2} {:>12.3} {:>12.3} {:>10}",
            p,
            mteps_per_node(&g, run.sources_processed, &report, p),
            report.critical.comm_time * 1e3,
            report.critical.comp_time * 1e3,
            report.critical.msgs
        );
        // Scores must be identical no matter the machine size.
        match &reference {
            None => reference = Some(run.scores),
            Some(r) => assert!(run.scores.approx_eq(r, 1e-7)),
        }
    }

    // Who brokers the network? (full run on the fastest config)
    let (scores, _) = mfbc_seq(&g, 256);
    println!("\ntop-5 central vertices over the full graph:");
    for (v, s) in scores.top_k(5) {
        println!("  vertex {v:>6}  λ = {s:.1}");
    }
}
