//! Quickstart: compute betweenness centrality three ways and check
//! they agree — the textbook oracle, sequential MFBC, and MFBC on a
//! simulated 16-node distributed machine with cost accounting.
//!
//! Run with: `cargo run --release --example quickstart`

use mfbc::prelude::*;

fn main() {
    // Zachary's karate club, the classic small social network
    // (34 members; edges = observed interactions).
    let edges: &[(usize, usize)] = &[
        (0, 1),
        (0, 2),
        (0, 3),
        (0, 4),
        (0, 5),
        (0, 6),
        (0, 7),
        (0, 8),
        (0, 10),
        (0, 11),
        (0, 12),
        (0, 13),
        (0, 17),
        (0, 19),
        (0, 21),
        (0, 31),
        (1, 2),
        (1, 3),
        (1, 7),
        (1, 13),
        (1, 17),
        (1, 19),
        (1, 21),
        (1, 30),
        (2, 3),
        (2, 7),
        (2, 8),
        (2, 9),
        (2, 13),
        (2, 27),
        (2, 28),
        (2, 32),
        (3, 7),
        (3, 12),
        (3, 13),
        (4, 6),
        (4, 10),
        (5, 6),
        (5, 10),
        (5, 16),
        (6, 16),
        (8, 30),
        (8, 32),
        (8, 33),
        (9, 33),
        (13, 33),
        (14, 32),
        (14, 33),
        (15, 32),
        (15, 33),
        (18, 32),
        (18, 33),
        (19, 33),
        (20, 32),
        (20, 33),
        (22, 32),
        (22, 33),
        (23, 25),
        (23, 27),
        (23, 29),
        (23, 32),
        (23, 33),
        (24, 25),
        (24, 27),
        (24, 31),
        (25, 31),
        (26, 29),
        (26, 33),
        (27, 33),
        (28, 31),
        (28, 33),
        (29, 32),
        (29, 33),
        (30, 32),
        (30, 33),
        (31, 32),
        (31, 33),
        (32, 33),
    ];
    let g = Graph::unweighted(34, false, edges.iter().copied());
    println!(
        "karate club: n = {}, undirected edges = {}",
        g.n(),
        g.edge_count()
    );

    // 1. Textbook Brandes (the oracle).
    let oracle = brandes_unweighted(&g);

    // 2. Sequential MFBC (Algorithms 1–3 as generalized sparse MM).
    let (seq_scores, stats) = mfbc_seq(&g, 8);
    println!(
        "sequential MFBC: {} batches, {} forward + {} backward iterations, {} kernel ops",
        stats.batches, stats.forward_iterations, stats.backward_iterations, stats.ops
    );
    assert!(seq_scores.approx_eq(&oracle, 1e-9), "seq != oracle");

    // 3. Distributed MFBC on a simulated 16-node Cray-Gemini-class
    //    machine: the autotuner picks a multiplication plan per
    //    product, and the machine charges every byte and message.
    let machine = Machine::new(MachineSpec::gemini(16));
    let run = mfbc_dist(&machine, &g, &MfbcConfig::default()).expect("fits in memory");
    assert!(run.scores.approx_eq(&oracle, 1e-9), "dist != oracle");

    // The run carries its own cost report: after a crash recovery the
    // driver finishes on a shrunk machine the original handle no
    // longer tracks (not the case here, but the habit is free).
    let report = &run.report;
    println!(
        "distributed MFBC on p=16: modeled comm {:.3} ms ({} msgs, {} bytes on the critical path), compute {:.3} ms",
        report.critical.comm_time * 1e3,
        report.critical.msgs,
        report.critical.bytes,
        report.critical.comp_time * 1e3,
    );

    println!("\ntop-5 brokers (vertex, betweenness over ordered pairs):");
    for (v, score) in run.scores.top_k(5) {
        println!("  member {v:>2}  λ = {score:.2}");
    }
    println!("\nall three implementations agree ✓");
}
