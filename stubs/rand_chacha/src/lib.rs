//! Offline stand-in for `rand_chacha`.
//!
//! [`ChaCha8Rng`] is deterministic for a given seed but generates a
//! **different stream** than the real RFC-7539 ChaCha8 (it is a
//! xoshiro256++ generator keyed from the 32-byte seed). Everything in
//! this workspace that depends on randomness only requires seeded
//! determinism, not the exact ChaCha key stream.

use rand::{RngCore, SeedableRng};

/// Deterministic seeded generator standing in for ChaCha8.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    s: [u64; 4],
}

impl ChaCha8Rng {
    fn mix(&mut self) -> u64 {
        // xoshiro256++ step.
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        self.mix()
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> ChaCha8Rng {
        let mut s = [0u64; 4];
        for (i, word) in s.iter_mut().enumerate() {
            let mut b = [0u8; 8];
            b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
            *word = u64::from_le_bytes(b);
        }
        // Avoid the all-zero state xoshiro cannot leave.
        if s == [0, 0, 0, 0] {
            s = [
                0x9E37_79B9_7F4A_7C15,
                0xBF58_476D_1CE4_E5B9,
                0x94D0_49BB_1331_11EB,
                0x2545_F491_4F6C_DD1D,
            ];
        }
        let mut rng = ChaCha8Rng { s };
        // Decorrelate near-identical seeds.
        for _ in 0..8 {
            rng.mix();
        }
        rng
    }
}

/// Alias used by some call sites; same generator, nominally more
/// rounds.
pub type ChaCha12Rng = ChaCha8Rng;
/// Alias used by some call sites; same generator, nominally more
/// rounds.
pub type ChaCha20Rng = ChaCha8Rng;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn usable_through_rng_trait() {
        let mut r = ChaCha8Rng::seed_from_u64(1);
        let x: usize = r.gen_range(0..100);
        assert!(x < 100);
        let f: f64 = r.gen();
        assert!((0.0..1.0).contains(&f));
    }

    #[test]
    fn rough_uniformity() {
        let mut r = ChaCha8Rng::seed_from_u64(9);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[r.gen_range(0..10usize)] += 1;
        }
        for &c in &counts {
            assert!(
                (700..1300).contains(&c),
                "bucket count {c} out of tolerance"
            );
        }
    }
}
