//! Offline stand-in for `criterion`: the benchmark-harness API subset
//! this workspace uses (`benchmark_group`, `bench_function`,
//! `bench_with_input`, `iter`, `iter_batched`, `criterion_group!`,
//! `criterion_main!`).
//!
//! Instead of criterion's statistical analysis it times a fixed
//! number of iterations with `std::time::Instant` and prints
//! `bench <name> ... <mean> (<iters> iters)` to stdout. Good enough
//! for the relative comparisons and sanity checks the workspace's
//! benches make; swap back to the real crate for publishable numbers.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.sample_size, f);
        self
    }
}

/// A named benchmark id, optionally parameterized.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id `"<function_name>/<parameter>"`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{parameter}", function_name.into()),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Conversion into a [`BenchmarkId`] (mirrors criterion's
/// `IntoBenchmarkId`).
pub trait IntoBenchmarkId {
    /// Converts `self` into an id.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            id: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self }
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        F: FnMut(&mut Bencher),
    {
        let id = id.into_benchmark_id();
        run_one(&format!("{}/{}", self.name, id.id), self.sample_size, f);
        self
    }

    /// Runs a benchmark that borrows an input value.
    pub fn bench_with_input<I, T, F>(&mut self, id: I, input: &T, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        T: ?Sized,
        F: FnMut(&mut Bencher, &T),
    {
        let id = id.into_benchmark_id();
        run_one(&format!("{}/{}", self.name, id.id), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// How much setup output to batch in `iter_batched` (ignored here).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration setup values.
    SmallInput,
    /// Large per-iteration setup values.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Times closures; handed to each benchmark function.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the configured iteration count.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
    }

    /// Times `routine` on fresh values from `setup`, excluding setup
    /// time from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, mut f: F) {
    // One untimed warmup pass, then the timed run.
    let mut warmup = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut warmup);
    let mut b = Bencher {
        iters: sample_size as u64,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let mean = b.elapsed.as_secs_f64() / b.iters.max(1) as f64;
    println!("bench {name:<48} {} ({} iters)", fmt_time(mean), b.iters);
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Average seconds per call of `f` over `iters` timed calls (helper
/// for overhead-style assertions in tests; not part of real
/// criterion).
pub fn time_per_call<O, F: FnMut() -> O>(iters: u64, mut f: F) -> f64 {
    let start = Instant::now();
    for _ in 0..iters.max(1) {
        black_box(f());
    }
    start.elapsed().as_secs_f64() / iters.max(1) as f64
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("stub_smoke");
        g.sample_size(3);
        g.bench_function("iter", |b| b.iter(|| 1 + 1));
        g.bench_with_input(BenchmarkId::from_parameter("vec8"), &8usize, |b, &n| {
            b.iter_batched(
                || vec![0u64; n],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        g.finish();
    }

    #[test]
    fn group_api_runs() {
        let mut c = Criterion::default();
        sample_bench(&mut c);
        c.bench_function("standalone", |b| b.iter(|| black_box(2) * 2));
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 4).id, "f/4");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }

    #[test]
    fn time_per_call_positive() {
        let t = time_per_call(100, || black_box(3u64).pow(2));
        assert!(t >= 0.0);
    }
}
