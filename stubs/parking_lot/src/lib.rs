//! Offline stand-in for `parking_lot`: [`Mutex`] and [`RwLock`] with
//! parking_lot's panic-free (non-`Result`) locking API, backed by
//! `std::sync`. Poisoning is transparently ignored, matching
//! parking_lot's no-poisoning semantics.

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion with parking_lot's infallible `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning its value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Reader–writer lock with parking_lot's infallible API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning its value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn mutex_shared_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
