//! Offline stand-in for `rayon`: the parallel-iterator API surface
//! this workspace uses, executed **sequentially** on the calling
//! thread.
//!
//! Bounds mirror real rayon (`Send`/`Sync` on items and closures) so
//! code written against this stub stays drop-in compatible with the
//! real crate; only the execution strategy differs.

/// The `rayon::prelude` mirror.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelIterator};
}

/// Conversion into a (sequentially executed) parallel iterator.
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// The iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Converts `self` into the iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl<I> IntoParallelIterator for I
where
    I: IntoIterator,
    I::Item: Send,
{
    type Item = I::Item;
    type Iter = SeqParIter<I::IntoIter>;

    fn into_par_iter(self) -> SeqParIter<I::IntoIter> {
        SeqParIter(self.into_iter())
    }
}

/// Sequentially executed stand-in for rayon's `ParallelIterator`.
pub trait ParallelIterator: Sized {
    /// Element type.
    type Item: Send;

    /// The underlying sequential iterator.
    fn into_seq(self) -> impl Iterator<Item = Self::Item>;

    /// Maps each element through `f`.
    fn map<R, F>(self, f: F) -> SeqParIter<std::iter::Map<impl Iterator<Item = Self::Item>, F>>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Send + Sync,
    {
        SeqParIter(self.into_seq().map(f))
    }

    /// Keeps the elements `f` accepts.
    fn filter<F>(self, f: F) -> SeqParIter<std::iter::Filter<impl Iterator<Item = Self::Item>, F>>
    where
        F: Fn(&Self::Item) -> bool + Send + Sync,
    {
        SeqParIter(self.into_seq().filter(f))
    }

    /// Flat-maps each element through `f`.
    fn flat_map<R, F>(
        self,
        f: F,
    ) -> SeqParIter<std::iter::FlatMap<impl Iterator<Item = Self::Item>, R, F>>
    where
        R: IntoIterator,
        R::Item: Send,
        F: Fn(Self::Item) -> R + Send + Sync,
    {
        SeqParIter(self.into_seq().flat_map(f))
    }

    /// Collects into `C`.
    fn collect<C: FromIterator<Self::Item>>(self) -> C {
        self.into_seq().collect()
    }

    /// Sums the elements.
    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item> + Send,
    {
        self.into_seq().sum()
    }

    /// Counts the elements.
    fn count(self) -> usize {
        self.into_seq().count()
    }

    /// Folds with `identity` and the associative `op` (sequential
    /// left fold here).
    fn reduce<Id, Op>(self, identity: Id, op: Op) -> Self::Item
    where
        Id: Fn() -> Self::Item + Send + Sync,
        Op: Fn(Self::Item, Self::Item) -> Self::Item + Send + Sync,
    {
        self.into_seq().fold(identity(), op)
    }

    /// Runs `f` on every element.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Send + Sync,
    {
        self.into_seq().for_each(f)
    }

    /// Maximum element.
    fn max(self) -> Option<Self::Item>
    where
        Self::Item: Ord,
    {
        self.into_seq().max()
    }

    /// Minimum element.
    fn min(self) -> Option<Self::Item>
    where
        Self::Item: Ord,
    {
        self.into_seq().min()
    }
}

/// Wrapper turning any sequential iterator into a
/// [`ParallelIterator`].
pub struct SeqParIter<I>(I);

impl<I> ParallelIterator for SeqParIter<I>
where
    I: Iterator,
    I::Item: Send,
{
    type Item = I::Item;

    fn into_seq(self) -> impl Iterator<Item = Self::Item> {
        self.0
    }
}

/// Runs both closures (sequentially) and returns their results —
/// rayon's `join`.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    (a(), b())
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_matches_sequential() {
        let out: Vec<usize> = (0..10usize).into_par_iter().map(|x| x * x).collect();
        assert_eq!(out, (0..10).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn vec_filter_sum() {
        let v = vec![1u64, 2, 3, 4, 5];
        let s: u64 = v.into_par_iter().filter(|x| x % 2 == 1).sum();
        assert_eq!(s, 9);
    }

    #[test]
    fn flat_map_and_reduce() {
        let total = (0..4usize)
            .into_par_iter()
            .flat_map(|i| vec![i, i])
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(total, 12);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 1, || "x");
        assert_eq!((a, b), (1, "x"));
    }
}
