//! Offline stand-in for `proptest`: randomized property testing with
//! the API subset this workspace uses — the [`proptest!`] macro,
//! strategies built from ranges, tuples, [`strategy::Just`],
//! [`arbitrary::any`], [`collection::vec`], `prop_map` /
//! `prop_flat_map` / [`prop_oneof!`], and the `prop_assert*` macros.
//!
//! Differences from the real crate: a fixed number of random cases
//! per test (default 64; `PROPTEST_CASES` overrides), deterministic
//! seeding (`PROPTEST_SEED` overrides), and **no shrinking** — a
//! failing case panics with the assertion message directly.

/// Test-loop configuration and the deterministic RNG.
pub mod test_runner {
    /// Configuration for a [`crate::proptest!`] block.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }

        /// Effective case count: `PROPTEST_CASES` overrides the
        /// configured value.
        pub fn effective_cases(&self) -> u32 {
            std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(self.cases)
                .max(1)
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic per-case random source (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// The RNG for case number `case`, derived from the base seed
        /// (`PROPTEST_SEED` or a fixed default).
        pub fn for_case(case: u32) -> TestRng {
            let base = std::env::var("PROPTEST_SEED")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(0x5EED_CAFE_F00D_D00Du64);
            TestRng {
                state: base ^ (u64::from(case).wrapping_add(1)).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            }
        }

        /// Next random 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, n)`.
        ///
        /// # Panics
        /// Panics if `n == 0`.
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0, "below(0)");
            self.next_u64() % n
        }

        /// A random `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// The [`Strategy`] trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating random values.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        /// Generates a value, then generates from the strategy `f`
        /// builds from it.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { source: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Always generates a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The `prop_map` combinator.
    pub struct Map<S, F> {
        pub(crate) source: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    /// The `prop_flat_map` combinator.
    pub struct FlatMap<S, F> {
        pub(crate) source: S,
        pub(crate) f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;

        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.source.generate(rng)).generate(rng)
        }
    }

    /// Weighted choice among alternatives (the engine of
    /// [`crate::prop_oneof!`]).
    pub struct Union<V> {
        options: Vec<(u32, BoxedStrategy<V>)>,
        total_weight: u64,
    }

    impl<V> Union<V> {
        /// A uniform union of the given alternatives.
        ///
        /// # Panics
        /// Panics if `options` is empty.
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Union<V> {
            Union::new_weighted(options.into_iter().map(|s| (1, s)).collect())
        }

        /// A union choosing each alternative in proportion to its
        /// weight.
        ///
        /// # Panics
        /// Panics if `options` is empty or all weights are zero.
        pub fn new_weighted(options: Vec<(u32, BoxedStrategy<V>)>) -> Union<V> {
            assert!(
                !options.is_empty(),
                "prop_oneof! needs at least one alternative"
            );
            let total_weight: u64 = options.iter().map(|(w, _)| u64::from(*w)).sum();
            assert!(total_weight > 0, "prop_oneof! weights sum to zero");
            Union {
                options,
                total_weight,
            }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            let mut draw = rng.below(self.total_weight);
            for (w, s) in &self.options {
                let w = u64::from(*w);
                if draw < w {
                    return s.generate(rng);
                }
                draw -= w;
            }
            unreachable!("draw exceeded total weight")
        }
    }

    macro_rules! int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u64;
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical default strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.unit_f64()
        }
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies (`proptest::collection` subset).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Inclusive bounds on a generated collection's length.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> SizeRange {
            // An empty `n..n` range degenerates to "exactly n−…0":
            // treat it as the single size `start` (matches how the
            // workspace uses computed upper bounds).
            SizeRange {
                lo: r.start,
                hi: r.end.saturating_sub(1).max(r.start),
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: (*r.end()).max(*r.start()),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a random length in `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A vector strategy with element strategy `element` and length
    /// drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Everything a test module needs.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::collection::SizeRange;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a property (panics on failure — this
/// stand-in has no shrinking, so failure reporting is immediate).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { ::core::assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { ::core::assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { ::core::assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { ::core::assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { ::core::assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { ::core::assert_ne!($a, $b, $($fmt)+) };
}

/// Choice among strategies producing the same value type, either
/// uniform (`prop_oneof![a, b]`) or weighted
/// (`prop_oneof![9 => a, 1 => b]`).
#[macro_export]
macro_rules! prop_oneof {
    ($($w:expr => $s:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(
            vec![$(($w as u32, $crate::strategy::Strategy::boxed($s))),+],
        )
    };
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::Strategy::boxed($s)),+])
    };
}

/// Defines property tests: each `fn name(pat in strategy, …) { body }`
/// becomes a `#[test]` running the body over random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = $cfg:expr;) => {};
    (cfg = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            for case in 0..config.effective_cases() {
                let mut rng = $crate::test_runner::TestRng::for_case(case);
                $(let $pat = $crate::strategy::Strategy::generate(&$strat, &mut rng);)*
                $body
            }
        }
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::collection::vec;
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_case(0);
        for _ in 0..500 {
            let x = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&x));
            let y = (1u64..=4).generate(&mut rng);
            assert!((1..=4).contains(&y));
        }
    }

    #[test]
    fn vec_strategy_length_bounds() {
        let mut rng = TestRng::for_case(1);
        for _ in 0..200 {
            let v = vec(0usize..5, 2..7).generate(&mut rng);
            assert!((2..=6).contains(&v.len()));
        }
    }

    #[test]
    fn flat_map_sees_source_value() {
        let mut rng = TestRng::for_case(2);
        let strat = (2usize..6).prop_flat_map(|n| vec(0..n, n..(n + 1)));
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((2..=5).contains(&v.len()));
            let n = v.len();
            assert!(v.iter().all(|&x| x < n));
        }
    }

    #[test]
    fn oneof_covers_all_alternatives() {
        let strat = prop_oneof![Just(1usize), Just(2), Just(4)];
        let mut seen = std::collections::HashSet::new();
        let mut rng = TestRng::for_case(3);
        for _ in 0..200 {
            seen.insert(strat.generate(&mut rng));
        }
        assert_eq!(seen.len(), 3);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: bindings, tuples, and prop_assert.
        #[test]
        fn macro_roundtrip((a, b) in (0usize..10, 0usize..10), flip in any::<bool>()) {
            prop_assert!(a < 10 && b < 10);
            prop_assert_eq!(a + b, b + a);
            if flip {
                prop_assert_ne!(a, a + b + 1);
            }
        }
    }
}
