//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! Implements the surface this workspace uses: [`RngCore`],
//! [`SeedableRng`], the [`Rng`] extension trait (`gen`, `gen_range`,
//! `gen_bool`) and [`seq::SliceRandom`] (`shuffle`, `choose`). See
//! `stubs/README.md` for the full caveat list.

/// Core generator interface: a source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Generators constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed byte array type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanded with SplitMix64
    /// (the same expansion the real crate documents).
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = SplitMix64::new(state);
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64: seed expander and the engine behind [`StdRng`].
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A new stream from `seed`.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next word of the stream.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl RngCore for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        SplitMix64::next_u64(self)
    }
}

/// Values samplable uniformly from the generator's raw stream
/// (the stand-in for `rand::distributions::Standard`).
pub trait StandardSample {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges a value can be drawn from uniformly (the stand-in for
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every word is valid.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}
range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} out of range"
        );
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A default non-cryptographic generator (SplitMix64-backed).
#[derive(Clone, Debug)]
pub struct StdRng(SplitMix64);

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 8];

    fn from_seed(seed: Self::Seed) -> StdRng {
        StdRng(SplitMix64::new(u64::from_le_bytes(seed)))
    }
}

/// `rand::rngs` module mirror.
pub mod rngs {
    pub use super::StdRng;
}

/// Slice sampling helpers (`rand::seq` subset).
pub mod seq {
    use super::Rng;

    /// Random slice operations.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Picks a uniformly random element, `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: usize = r.gen_range(3..10);
            assert!((3..10).contains(&x));
            let y: u64 = r.gen_range(1..=5);
            assert!((1..=5).contains(&y));
            let z: i64 = r.gen_range(-5..5);
            assert!((-5..5).contains(&z));
        }
    }

    #[test]
    fn f64_standard_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(3);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = StdRng::seed_from_u64(4);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut r);
        let mut s = v.clone();
        s.sort_unstable();
        assert_eq!(s, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut r).is_some());
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut r).is_none());
    }
}
