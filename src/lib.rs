//! # MFBC — Maximal Frontier Betweenness Centrality
//!
//! A from-scratch Rust reproduction of *"Scaling Betweenness
//! Centrality using Communication-Efficient Sparse Matrix
//! Multiplication"* (Solomonik, Besta, Vella, Hoefler — SC 2017):
//! betweenness centrality formulated as generalized sparse matrix
//! multiplication over *monoids*, executed on a distributed machine
//! through a Cyclops-Tensor-Framework-style layer with
//! communication-optimal 1D/2D/3D algorithms and per-operation
//! autotuning.
//!
//! The workspace layers (each a crate, re-exported here):
//!
//! * [`algebra`] — weights, monoids (multpath/centpath), monoid
//!   actions, and the `⟨⊕,f⟩` multiplication kernels;
//! * [`sparse`] — CSR/COO formats and generalized Gustavson SpGEMM;
//! * [`machine`] — the simulated distributed-memory machine: α–β–γ
//!   cost model, data-moving collectives, critical-path accounting,
//!   per-rank memory budgets;
//! * [`tensor`] — distributed matrices, redistribution, the nine
//!   3D (and three 1D, three 2D) multiplication variants, analytic
//!   cost models, and the plan autotuner;
//! * [`graph`] — graph type, R-MAT / uniform / SNAP-stand-in
//!   generators, statistics, preprocessing;
//! * [`core`] — MFBF, MFBr, MFBC (sequential and distributed),
//!   the CombBLAS-style baseline, and the Brandes/brute-force
//!   oracles.
//!
//! ## Quickstart
//!
//! ```
//! use mfbc::prelude::*;
//!
//! // A small social network.
//! let g = Graph::unweighted(5, false, vec![(0, 1), (1, 2), (2, 3), (3, 4), (1, 3)]);
//!
//! // Exact betweenness centrality, shared-memory.
//! let (scores, _stats) = mfbc_seq(&g, 8);
//! let top = scores.top_k(1);
//! assert_eq!(top[0].0, 1); // vertex 1 is the broker
//!
//! // The same computation on a simulated 4-node machine with
//! // communication-cost accounting.
//! let machine = Machine::new(MachineSpec::gemini(4));
//! let run = mfbc_dist(&machine, &g, &MfbcConfig::default()).unwrap();
//! assert!(run.scores.approx_eq(&scores, 1e-9));
//! let report = machine.report();
//! assert!(report.critical.comm_time >= 0.0);
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub use mfbc_algebra as algebra;
pub use mfbc_core as core;
pub use mfbc_fault as fault;
pub use mfbc_graph as graph;
pub use mfbc_machine as machine;
pub use mfbc_sparse as sparse;
pub use mfbc_tensor as tensor;

/// The commonly-needed names in one import.
pub mod prelude {
    pub use mfbc_algebra::{Centpath, Dist, Multpath};
    pub use mfbc_core::approx::{approx_from_sources, mfbc_approx, mfbc_approx_dist};
    pub use mfbc_core::apsp::{apsp_dist, apsp_seq};
    pub use mfbc_core::bfs::{bfs_levels, sssp_dist, sssp_seq};
    pub use mfbc_core::cc::{component_count, connected_components};
    pub use mfbc_core::combblas::{combblas_bc, CombBlasConfig};
    pub use mfbc_core::dist::{ca_plan, mfbc_dist, MfbcConfig, MfbcRun, PlanMode, RecoveryStats};
    pub use mfbc_core::oracle::{brandes_unweighted, brandes_weighted, bruteforce_bc};
    pub use mfbc_core::seq::{mfbc_seq, mfbf_seq, mfbr_seq};
    pub use mfbc_core::BcScores;
    pub use mfbc_fault::{FaultKind, FaultPlan, RetryPolicy, ScheduledFault};
    pub use mfbc_graph::gen::{rmat, snap_standin, uniform, RmatConfig, SnapGraph};
    pub use mfbc_graph::{io, prep, stats, Graph};
    pub use mfbc_machine::{Machine, MachineError, MachineSpec};
    pub use mfbc_tensor::{MmPlan, Variant1D, Variant2D};
}
