//! `mfbc-cli` — command-line betweenness centrality and friends.
//!
//! ```text
//! mfbc-cli bc        [--directed] [--weighted] [--batch N] [--approx K]
//!                    [--top K] [--normalized] [--seed S] [--threads T]
//!                    <edge-list|->
//! mfbc-cli sssp      --source V [--directed] <edge-list|->
//! mfbc-cli components [--directed] <edge-list|->
//! mfbc-cli stats     [--directed] <edge-list|->
//! mfbc-cli simulate  --nodes P [--plan auto|ca:C|combblas] [--batch N]
//!                    [--graph rmat:S,E | uniform:N,M | FILE] [--directed]
//!                    [--threads T] [--no-masked] [--faults SPEC]
//!                    [--fault-seed S] [--trace-out FILE]
//!                    [--trace-format chrome|jsonl] [--profile-out FILE]
//!                    [--profile-html FILE] [--timeline-out FILE]
//! mfbc-cli bench     [--baseline FILE] [--write FILE] [--band F]
//!                    [--case NAME] [--profile-out FILE] [--html-out FILE]
//!                    [--prom-out FILE] [--timeline-out FILE]
//!                    [--timeline-html FILE]
//! mfbc-cli analyze   [--case NAME] [--timeline-out FILE] [--html-out FILE]
//!                    [--what-if SPEC]... [--compare FILE] [--top K]
//! mfbc-cli generate  (rmat:S,E | uniform:N,M) [--weighted MAX] [--seed S]
//! mfbc-cli serve     --nodes P [--graph SPEC] [--batch N] [--queue N]
//!                    [--deadline S] [--faults SPEC] [--fault-seed S]
//!                    [--seed S] [--threads T] [--warm] [--prom-out FILE]
//!                    [--directed]
//! ```
//!
//! Edge lists are SNAP format (`src dst [weight]`, `#` comments);
//! `-` reads stdin. `simulate` runs one batch on the simulated
//! machine and prints the critical-path cost report. `--faults`
//! injects a failure schedule (`crash:R@K,transient:N@K,oom:R@K`,
//! keyed by collective sequence number) and `--fault-seed` a random
//! one; the driver recovers and reports what it did on stderr.
//! `--profile-out` aggregates the same trace stream into a
//! `profile.json` (per-rank comm/compute, per-superstep breakdown,
//! plan mix, memory peaks); it composes with `--trace-out` — the two
//! sinks share the single recorder slot through a tee.
//!
//! `analyze` runs one pinned bench case under the timeline analyzer
//! (`mfbc-timeline`) and prints the exact critical path — the chain
//! of segments whose modeled durations sum **bit-for-bit** to the
//! causal makespan — plus the ranked bottleneck table and
//! per-superstep straggler attribution. `--what-if` evaluates
//! counterfactual edits (`overlap`, `zero:<kind>`, `alpha:<s>`,
//! `beta:<s>`, `gamma:<s>`, comma-separable) as modeled lower bounds;
//! `--timeline-out` writes the versioned `timeline.json`;
//! `--html-out` a self-contained Gantt view; `--compare` diffs the
//! run against a previously written `timeline.json`. `simulate`
//! always prints its top-3 bottleneck segments on stderr and tees the
//! same analysis to `--timeline-out`.
//!
//! `bench` runs the pinned regression suite
//! ([`mfbc_bench::regress`]): `--write` seeds or refreshes the
//! committed baseline (`BENCH_mfbc.json`), `--baseline` compares the
//! current run against it and exits nonzero on any finding. Modeled
//! α–β–γ seconds and counts are compared bit-exact (they are
//! deterministic); wall-clock only one-sidedly, within the baseline's
//! band (or `--band F`, a fraction, e.g. `1.0` = may be 2× slower).
//! `--serve-write`/`--serve-baseline` do the same for the serve load
//! suite ([`mfbc_bench::serveload`], baseline `BENCH_serve.json`).
//!
//! `serve` runs the long-lived [`mfbc_serve::Engine`] as a JSON-lines
//! loop on stdin: one request per line, a blank line flushes the
//! coalesced round, `{"cmd":"health"}` answers immediately, EOF
//! drains and exits. `--warm` completes the exact computation before
//! accepting requests; `--prom-out` writes the engine's Prometheus
//! metrics at shutdown.
//!
//! Exit codes are structured (see the README table): `0` success,
//! `2` usage/config/parse errors, `3` simulated-machine failures,
//! `4` bench-gate regressions, `5` serve shutdown with a poisoned
//! engine.

use mfbc::core::combblas::{combblas_bc, CombBlasConfig};
use mfbc::prelude::*;
use std::io::Read;
use std::io::Write as _;
use std::process::ExitCode;

/// Prints a line to stdout, exiting quietly when the consumer closed
/// the pipe (e.g. `mfbc-cli bc … | head`).
macro_rules! outln {
    ($($arg:tt)*) => {{
        let mut out = std::io::stdout().lock();
        if let Err(e) = writeln!(out, $($arg)*) {
            if e.kind() == std::io::ErrorKind::BrokenPipe {
                std::process::exit(0);
            }
            eprintln!("mfbc-cli: stdout: {e}");
            std::process::exit(1);
        }
    }};
}

/// Structured CLI failure: the variant picks the process exit code
/// (documented in the README's exit-code table).
enum CliError {
    /// Bad flags, malformed input, unreadable files — exit 2.
    Usage(String),
    /// The simulated machine failed with a `MachineError` — exit 3.
    Machine(String),
    /// A bench gate found regressions or drift — exit 4.
    BenchRegression(String),
    /// `serve` shut down with a poisoned engine — exit 5.
    ServePoisoned(String),
}

impl CliError {
    fn code(&self) -> u8 {
        match self {
            CliError::Usage(_) => 2,
            CliError::Machine(_) => 3,
            CliError::BenchRegression(_) => 4,
            CliError::ServePoisoned(_) => 5,
        }
    }

    fn message(&self) -> &str {
        match self {
            CliError::Usage(m)
            | CliError::Machine(m)
            | CliError::BenchRegression(m)
            | CliError::ServePoisoned(m) => m,
        }
    }

    /// Wraps a `MachineError` (or anything displayable as one).
    fn machine(e: impl std::fmt::Display) -> CliError {
        CliError::Machine(e.to_string())
    }
}

/// Plain-`String` errors from the option parser and the simple
/// subcommands are all usage/config errors.
impl From<String> for CliError {
    fn from(m: String) -> CliError {
        CliError::Usage(m)
    }
}

impl From<&str> for CliError {
    fn from(m: &str) -> CliError {
        CliError::Usage(m.to_string())
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("mfbc-cli: {}", e.message());
            if matches!(e, CliError::Usage(_)) {
                eprintln!("{USAGE}");
            }
            ExitCode::from(e.code())
        }
    }
}

const USAGE: &str = "usage:
  mfbc-cli bc [--directed] [--weighted] [--batch N] [--approx K] [--top K] [--normalized] [--seed S] [--threads T] <edge-list|->
  mfbc-cli sssp --source V [--directed] <edge-list|->
  mfbc-cli components [--directed] <edge-list|->
  mfbc-cli stats [--directed] <edge-list|->
  mfbc-cli simulate --nodes P [--plan auto|ca:C|combblas] [--batch N] [--graph rmat:S,E|uniform:N,M|FILE] [--directed] [--threads T] [--no-masked] [--no-overlap] [--hybrid-redist auto|bcast|p2p|alltoall] [--faults SPEC] [--fault-seed S] [--trace-out FILE] [--trace-format chrome|jsonl] [--profile-out FILE] [--profile-html FILE] [--timeline-out FILE]
  mfbc-cli bench [--baseline FILE] [--write FILE] [--serve-baseline FILE] [--serve-write FILE] [--band F] [--case NAME] [--no-overlap] [--hybrid-redist auto|bcast|p2p|alltoall] [--profile-out FILE] [--html-out FILE] [--prom-out FILE] [--timeline-out FILE] [--timeline-html FILE]
  mfbc-cli analyze [--case NAME] [--timeline-out FILE] [--html-out FILE] [--what-if SPEC] [--compare FILE] [--top K]
  mfbc-cli generate (rmat:S,E | uniform:N,M) [--weighted MAX] [--seed S]
  mfbc-cli serve --nodes P [--graph rmat:S,E|uniform:N,M|FILE] [--batch N] [--queue N] [--deadline S] [--faults SPEC] [--fault-seed S] [--seed S] [--threads T] [--warm] [--prom-out FILE] [--flight-out FILE] [--mem-bytes B] [--directed]
exit codes: 0 ok, 2 usage/config, 3 machine error, 4 bench regression, 5 serve poisoned";

/// Minimal flag parser: `--key value` options, `--flag` booleans, one
/// positional argument.
struct Opts {
    flags: Vec<(String, Option<String>)>,
    positional: Option<String>,
}

impl Opts {
    fn parse(args: &[String], value_flags: &[&str]) -> Result<Opts, String> {
        let mut flags = Vec::new();
        let mut positional = None;
        let mut it = args.iter().peekable();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                if value_flags.contains(&name) {
                    let v = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
                    flags.push((name.to_string(), Some(v.clone())));
                } else {
                    flags.push((name.to_string(), None));
                }
            } else if positional.is_none() {
                positional = Some(a.clone());
            } else {
                return Err(format!("unexpected argument {a:?}"));
            }
        }
        Ok(Opts { flags, positional })
    }

    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(k, _)| k == name)
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(k, _)| k == name)
            .and_then(|(_, v)| v.as_deref())
    }

    /// Every value of a repeatable flag, in argument order.
    fn get_all(&self, name: &str) -> Vec<&str> {
        self.flags
            .iter()
            .filter(|(k, _)| k == name)
            .filter_map(|(_, v)| v.as_deref())
            .collect()
    }

    fn get_parsed<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, String> {
        match self.get(name) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("--{name}: cannot parse {v:?}")),
        }
    }
}

fn run(args: &[String]) -> Result<(), CliError> {
    let Some(cmd) = args.first() else {
        return Err("missing command".into());
    };
    let rest = &args[1..];
    match cmd.as_str() {
        "bc" => cmd_bc(rest).map_err(CliError::from),
        "sssp" => cmd_sssp(rest).map_err(CliError::from),
        "components" => cmd_components(rest).map_err(CliError::from),
        "stats" => cmd_stats(rest).map_err(CliError::from),
        "simulate" => cmd_simulate(rest),
        "bench" => cmd_bench(rest),
        "analyze" => cmd_analyze(rest).map_err(CliError::from),
        "generate" => cmd_generate(rest).map_err(CliError::from),
        "serve" => cmd_serve(rest),
        "help" | "--help" | "-h" => {
            outln!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}").into()),
    }
}

fn load_graph(path: Option<&str>, directed: bool) -> Result<Graph, String> {
    let path = path.ok_or("missing edge-list path (or '-')")?;
    let g = if path == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .map_err(|e| e.to_string())?;
        io::read_edge_list(buf.as_bytes(), directed)
    } else {
        let file = std::fs::File::open(path).map_err(|e| format!("{path}: {e}"))?;
        io::read_edge_list(file, directed)
    };
    g.map_err(|e| e.to_string())
}

/// Parses `rmat:S,E` / `uniform:N,M` specs; anything else is a path.
fn load_workload(
    spec: &str,
    directed: bool,
    weighted: Option<u64>,
    seed: u64,
) -> Result<Graph, String> {
    if let Some(params) = spec.strip_prefix("rmat:") {
        let (s, e) = split2(params)?;
        let cfg = RmatConfig {
            scale: s as u32,
            edge_factor: e as usize,
            probs: (0.57, 0.19, 0.19),
            directed,
            weights: weighted,
            seed,
        };
        return Ok(prep::remove_isolated(&rmat(&cfg)));
    }
    if let Some(params) = spec.strip_prefix("uniform:") {
        let (n, m) = split2(params)?;
        return Ok(uniform(n as usize, m as usize, directed, weighted, seed));
    }
    load_graph(Some(spec), directed)
}

fn split2(params: &str) -> Result<(u64, u64), String> {
    let mut it = params.split(',');
    let a = it
        .next()
        .and_then(|x| x.parse().ok())
        .ok_or_else(|| format!("bad parameters {params:?}"))?;
    let b = it
        .next()
        .and_then(|x| x.parse().ok())
        .ok_or_else(|| format!("bad parameters {params:?}"))?;
    if it.next().is_some() {
        return Err(format!("bad parameters {params:?}"));
    }
    Ok((a, b))
}

/// Parses `--threads T`, rejecting zero (the pool needs at least one
/// worker; `1` means run serially without spawning).
fn parse_threads(o: &Opts) -> Result<Option<usize>, String> {
    match o.get_parsed::<usize>("threads")? {
        Some(0) => Err("--threads must be at least 1".into()),
        other => Ok(other),
    }
}

/// Parses `--hybrid-redist MODE` into the machine's redistribution
/// mode (`auto`, `bcast`, `p2p`, or the legacy `alltoall`).
fn parse_redist(o: &Opts) -> Result<Option<mfbc_machine::RedistMode>, String> {
    match o.get("hybrid-redist") {
        None => Ok(None),
        Some("auto") => Ok(Some(mfbc_machine::RedistMode::Auto)),
        Some("bcast") => Ok(Some(mfbc_machine::RedistMode::Bcast)),
        Some("p2p") => Ok(Some(mfbc_machine::RedistMode::P2p)),
        Some("alltoall") => Ok(Some(mfbc_machine::RedistMode::Alltoall)),
        Some(other) => Err(format!(
            "--hybrid-redist must be auto, bcast, p2p, or alltoall, got {other:?}"
        )),
    }
}

/// Prints the overlapped-vs-serialized makespan comparison for a
/// sealed timeline: whichever mode the run used, the counterpart is
/// priced with the corresponding what-if replay (bit-exact on the
/// recorded side).
fn eprint_overlap_delta(tl: &mfbc_timeline::Timeline) {
    let serialize = mfbc_timeline::WhatIf {
        serialize: true,
        ..mfbc_timeline::WhatIf::identity()
    };
    let overlap = mfbc_timeline::WhatIf {
        overlap: true,
        ..mfbc_timeline::WhatIf::identity()
    };
    let (ovl_s, ser_s) = if tl.spec.overlap {
        (tl.makespan_s(), mfbc_timeline::evaluate(tl, &serialize))
    } else {
        (mfbc_timeline::evaluate(tl, &overlap), tl.makespan_s())
    };
    let saved = ser_s - ovl_s;
    let pct = if ser_s > 0.0 {
        saved / ser_s * 100.0
    } else {
        0.0
    };
    eprintln!(
        "overlap: serialized {ser_s:.6}s vs overlapped {ovl_s:.6}s — {saved:.6}s ({pct:.1}%) hidden under compute ({})",
        if tl.spec.overlap {
            "this run overlapped; serialized bound from the `serialize` what-if"
        } else {
            "this run serialized; overlapped bound from the `overlap` what-if"
        }
    );
}

fn cmd_bc(args: &[String]) -> Result<(), String> {
    let o = Opts::parse(args, &["batch", "approx", "top", "seed", "threads"])?;
    let g = load_graph(o.positional.as_deref(), o.has("directed"))?;
    if o.has("weighted") && g.is_unit_weighted() {
        eprintln!("note: --weighted given but all weights are 1");
    }
    let batch = o.get_parsed::<usize>("batch")?.unwrap_or(64).max(1);
    let seed = o.get_parsed::<u64>("seed")?.unwrap_or(42);
    let threads = parse_threads(&o)?;
    let compute = || match o.get_parsed::<usize>("approx") {
        Ok(Some(k)) => {
            let est = mfbc_approx(&g, k.min(g.n()).max(1), seed);
            eprintln!("approximated from {} sampled sources", est.sources.len());
            Ok(est.scores)
        }
        Ok(None) => Ok(mfbc_seq(&g, batch).0),
        Err(e) => Err(e),
    };
    let scores = match threads {
        Some(t) => mfbc_parallel::with_threads(t, compute)?,
        None => compute()?,
    };
    let scores = if o.has("normalized") {
        scores.normalized()
    } else {
        scores
    };
    match o.get_parsed::<usize>("top")? {
        Some(k) => {
            for (v, s) in scores.top_k(k) {
                outln!("{v}\t{s}");
            }
        }
        None => {
            for (v, s) in scores.lambda.iter().enumerate() {
                outln!("{v}\t{s}");
            }
        }
    }
    Ok(())
}

fn cmd_sssp(args: &[String]) -> Result<(), String> {
    let o = Opts::parse(args, &["source"])?;
    let source: usize = o.get_parsed("source")?.ok_or("sssp needs --source V")?;
    let g = load_graph(o.positional.as_deref(), o.has("directed"))?;
    if source >= g.n() {
        return Err(format!("source {source} out of range (n = {})", g.n()));
    }
    let d = sssp_seq(&g, &[source]);
    for v in 0..g.n() {
        match d.get(0, v) {
            Some(w) => outln!("{v}\t{}", w.raw()),
            None => outln!("{v}\tinf"),
        }
    }
    Ok(())
}

fn cmd_components(args: &[String]) -> Result<(), String> {
    let o = Opts::parse(args, &[])?;
    let g = load_graph(o.positional.as_deref(), o.has("directed"))?;
    let labels = connected_components(&g);
    eprintln!("{} components", component_count(&g));
    for (v, l) in labels.iter().enumerate() {
        outln!("{v}\t{l}");
    }
    Ok(())
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let o = Opts::parse(args, &[])?;
    let g = load_graph(o.positional.as_deref(), o.has("directed"))?;
    let (avg, max) = stats::degree_stats(&g);
    outln!("n\t{}", g.n());
    outln!("arcs\t{}", g.m());
    outln!("edges\t{}", g.edge_count());
    outln!("directed\t{}", g.directed());
    outln!("weighted\t{}", !g.is_unit_weighted());
    outln!("avg_degree\t{avg:.2}");
    outln!("max_degree\t{max}");
    outln!("components\t{}", component_count(&g));
    outln!("sampled_diameter\t{}", stats::effective_diameter(&g, 8, 7));
    Ok(())
}

fn cmd_simulate(args: &[String]) -> Result<(), CliError> {
    let o = Opts::parse(
        args,
        &[
            "nodes",
            "plan",
            "batch",
            "graph",
            "seed",
            "threads",
            "faults",
            "fault-seed",
            "trace-out",
            "trace-format",
            "profile-out",
            "profile-html",
            "timeline-out",
            "hybrid-redist",
        ],
    )?;
    let p: usize = o.get_parsed("nodes")?.ok_or("simulate needs --nodes P")?;
    let spec_str = o.get("graph").unwrap_or("rmat:12,16");
    let seed = o.get_parsed::<u64>("seed")?.unwrap_or(42);
    let g = load_workload(spec_str, o.has("directed"), None, seed)?;
    let batch = o.get_parsed::<usize>("batch")?.unwrap_or(128);
    let threads = parse_threads(&o)?;

    // Fault injection: an explicit schedule (`--faults crash:2@5,…`),
    // a seeded random one (`--fault-seed S`), or both combined.
    let mut fault_plan = match o.get("faults") {
        Some(spec) => FaultPlan::parse(spec).map_err(|e| format!("--faults: {e}"))?,
        None => FaultPlan::none(),
    };
    if let Some(fseed) = o.get_parsed::<u64>("fault-seed")? {
        fault_plan.faults.extend(FaultPlan::seeded(fseed, p).faults);
    }
    let faults_scheduled = fault_plan.faults.len() as u64;
    let mut spec = MachineSpec::gemini(p);
    if o.has("no-overlap") {
        spec.overlap = false;
    }
    if let Some(mode) = parse_redist(&o)? {
        spec.redist = mode;
    }
    let machine = if fault_plan.is_empty() {
        Machine::new(spec)
    } else {
        Machine::with_faults(spec, fault_plan, RetryPolicy::default())
    };

    // Structured tracing: record every collective, SpGEMM, autotune
    // decision, and superstep; written after the run.
    let trace_out = o.get("trace-out").map(str::to_string);
    let trace_format = o.get("trace-format").unwrap_or("chrome").to_string();
    if !matches!(trace_format.as_str(), "chrome" | "jsonl") {
        return Err(format!("--trace-format must be chrome or jsonl, got {trace_format:?}").into());
    }
    let profile_out = o.get("profile-out").map(str::to_string);
    let profile_html = o.get("profile-html").map(str::to_string);
    if profile_html.is_some() && profile_out.is_none() {
        return Err("--profile-html needs --profile-out (the profiler it renders)".into());
    }
    let timeline_out = o.get("timeline-out").map(str::to_string);
    let recorder = trace_out
        .as_ref()
        .map(|_| std::sync::Arc::new(mfbc_trace::MemoryRecorder::new()));
    let profiler = profile_out
        .as_ref()
        .map(|_| std::sync::Arc::new(mfbc_profile::Profiler::new()));
    // The timeline analyzer always rides along: the top-bottleneck
    // block below is printed for every run.
    let builder = std::sync::Arc::new(mfbc_timeline::TimelineBuilder::new(machine.spec().clone()));
    // All sinks share the single recorder slot through a tee; a lone
    // sink is installed directly (no per-event clone).
    {
        let mut sinks: Vec<std::sync::Arc<dyn mfbc_trace::Recorder>> = Vec::new();
        if let Some(rec) = &recorder {
            sinks.push(rec.clone());
        }
        if let Some(prof) = &profiler {
            sinks.push(prof.clone());
        }
        sinks.push(builder.clone());
        match sinks.len() {
            1 => mfbc_trace::install(sinks.pop().expect("len checked")),
            _ => mfbc_trace::install(std::sync::Arc::new(mfbc_trace::TeeRecorder::over(sinks))),
        }
    }

    let plan = o.get("plan").unwrap_or("auto");
    let (label, sources, report, recovery) = if plan == "combblas" {
        let combblas = || {
            combblas_bc(
                &machine,
                &g,
                &CombBlasConfig {
                    batch_size: Some(batch),
                    max_batches: Some(1),
                },
            )
        };
        let run = match threads {
            Some(t) => mfbc_parallel::with_threads(t, combblas),
            None => combblas(),
        }
        .map_err(CliError::machine)?;
        (
            "CombBLAS-style".to_string(),
            run.sources_processed,
            machine.report(),
            None,
        )
    } else {
        let mode = if let Some(c) = plan.strip_prefix("ca:") {
            PlanMode::Ca {
                c: c.parse().map_err(|_| format!("bad plan {plan:?}"))?,
            }
        } else if plan == "auto" {
            PlanMode::Auto
        } else {
            return Err(format!("unknown plan {plan:?}").into());
        };
        let run = mfbc_dist(
            &machine,
            &g,
            &MfbcConfig {
                batch_size: Some(batch),
                plan_mode: mode,
                max_batches: Some(1),
                threads,
                // Forward-expansion output masking defaults on (it is
                // a pure optimization on unit-weighted graphs);
                // `--no-masked` disables it for A/B comparisons.
                masked: !o.has("no-masked"),
                ..Default::default()
            },
        )
        .map_err(CliError::machine)?;
        // After a crash recovery the run finished on a *shrunk*
        // machine our handle no longer tracks — the run carries the
        // authoritative cost report.
        (
            format!("CTF-MFBC ({plan})"),
            run.sources_processed,
            run.report.clone(),
            Some(run.recovery),
        )
    };

    mfbc_trace::uninstall_all();
    if let (Some(path), Some(rec)) = (&trace_out, &recorder) {
        let records = rec.take();
        let text = match trace_format.as_str() {
            "jsonl" => mfbc_trace::to_jsonl(&records),
            _ => mfbc_trace::to_chrome_trace(&records),
        };
        std::fs::write(path, text).map_err(|e| format!("{path}: {e}"))?;
        eprintln!(
            "trace: {} events -> {path} ({trace_format}); open chrome traces in chrome://tracing or ui.perfetto.dev",
            records.len()
        );
        eprint!(
            "{}",
            mfbc_trace::render_summary(&mfbc_trace::collective_summary(&records))
        );
        eprint!(
            "{}",
            mfbc_trace::render_pool_summary(&mfbc_trace::pool_summary(&records))
        );
        eprint!(
            "{}",
            mfbc_trace::render_recovery_summary(&mfbc_trace::recovery_summary(&records))
        );
    }

    if let (Some(path), Some(prof)) = (&profile_out, &profiler) {
        if recovery.as_ref().is_some_and(|r| r.replans > 0) {
            eprintln!(
                "note: the run replanned onto a shrunk machine this handle no longer tracks; \
                 the profile's per-rank meters cover the pre-crash machine only"
            );
        }
        let profile = prof.finish(&machine);
        let json = mfbc_profile::export::profile_to_json(&profile);
        std::fs::write(path, json).map_err(|e| format!("{path}: {e}"))?;
        eprintln!(
            "profile: {} events, {} superstep(s) -> {path}",
            profile.events,
            profile.supersteps.len()
        );
        if let Some(hpath) = &profile_html {
            let html = mfbc_profile::html::render(&profile);
            std::fs::write(hpath, html).map_err(|e| format!("{hpath}: {e}"))?;
            eprintln!("profile: report -> {hpath}");
        }
    }

    // Causal analysis: the top bottleneck segments of the run's
    // critical path (always printed; `--timeline-out` persists the
    // full document).
    {
        let tl = builder.finish();
        let an = mfbc_timeline::analyze(&tl);
        eprintln!(
            "timeline: makespan {:?}s across {} segment(s); top-3 bottleneck segments \
             (critical-path seconds, share of makespan):",
            tl.makespan_s(),
            an.path.segments.len()
        );
        for b in an.bottlenecks.iter().take(3) {
            eprintln!(
                "timeline:   {:<14} {:>12.6}s  {:>5.1}%  ({} segment(s))",
                b.label,
                b.seconds,
                b.share * 100.0,
                b.count
            );
        }
        eprint_overlap_delta(&tl);
        if let Some(path) = &timeline_out {
            let d = mfbc_timeline::doc(&tl, &an, &[]);
            std::fs::write(path, mfbc_timeline::to_json(&d)).map_err(|e| format!("{path}: {e}"))?;
            eprintln!("timeline: {} segment(s) -> {path}", tl.nodes.len());
        }
    }

    if let Some(rec) = recovery.as_ref() {
        if rec.faults_injected < faults_scheduled {
            eprintln!(
                "note: {} of {faults_scheduled} scheduled fault(s) never fired — the run ended \
                 before their collective sequence number (try a smaller @SEQ or a larger --batch)",
                faults_scheduled - rec.faults_injected,
            );
        }
    }
    if let Some(rec) = recovery.as_ref().filter(|r| r.any()) {
        eprintln!(
            "recovery: {} fault(s) injected, {} collective retries, {} batch retries, \
             {} replan(s), {} checkpoint(s) restored, {} batch halving(s), \
             {:.6}s modeled time wasted, finished on {} node(s)",
            rec.faults_injected,
            rec.collective_retries,
            rec.batch_retries,
            rec.replans,
            rec.checkpoints_restored,
            rec.oom_halvings,
            rec.wasted_modeled_s,
            rec.final_p,
        );
    }

    let time = report.critical.total_time();
    outln!("algorithm\t{label}");
    outln!("graph\t{spec_str} (n={}, arcs={})", g.n(), g.m());
    outln!("nodes\t{p}");
    outln!("batch\t{sources}");
    outln!("modeled_time_s\t{time:.6}");
    outln!("comm_s\t{:.6}", report.critical.comm_time);
    outln!("compute_s\t{:.6}", report.critical.comp_time);
    outln!("critical_msgs\t{}", report.critical.msgs);
    outln!("critical_bytes\t{}", report.critical.bytes);
    outln!(
        "mteps_per_node\t{:.2}",
        g.m() as f64 * sources as f64 / time / 1e6 / p as f64
    );
    Ok(())
}

/// `mfbc-cli bench`: the perf regression sentinel. Runs the pinned
/// suite from [`mfbc_bench::regress`], optionally writes a fresh
/// baseline (`--write`), optionally compares against a committed one
/// (`--baseline`, nonzero exit on any finding), and exports the
/// profile artifacts of one case (`--case`, default the first).
fn cmd_bench(args: &[String]) -> Result<(), CliError> {
    let o = Opts::parse(
        args,
        &[
            "baseline",
            "write",
            "serve-baseline",
            "serve-write",
            "band",
            "case",
            "profile-out",
            "html-out",
            "prom-out",
            "timeline-out",
            "timeline-html",
            "hybrid-redist",
        ],
    )?;
    if let Some(p) = &o.positional {
        return Err(format!("bench takes no positional argument, got {p:?}").into());
    }
    let band = o.get_parsed::<f64>("band")?;
    if band.is_some_and(|b| !(b.is_finite() && b >= 0.0)) {
        return Err("--band must be a finite fraction >= 0".into());
    }

    let opts = mfbc_bench::regress::SuiteOptions {
        overlap: if o.has("no-overlap") {
            Some(false)
        } else {
            None
        },
        redist: parse_redist(&o)?,
        ..mfbc_bench::regress::SuiteOptions::default()
    };
    eprintln!(
        "bench: running {} pinned case(s)...",
        mfbc_bench::regress::suite_case_names().len()
    );
    let results = mfbc_bench::regress::run_suite(&opts);
    let cases: Vec<mfbc_profile::BaselineCase> = results.iter().map(|r| r.case.clone()).collect();
    for c in &cases {
        outln!(
            "{}\tcomm_s={:?}\tcomp_s={:?}\tmsgs={}\tbytes={}\tops={}\tpeak_bytes={}\tmakespan_s={:?}\twall_s={:.3}",
            c.name,
            c.modeled_comm_s,
            c.modeled_comp_s,
            c.msgs,
            c.bytes,
            c.total_ops,
            c.max_peak_bytes,
            c.makespan_s,
            c.wall_s,
        );
    }
    for r in &results {
        eprint!("bench: {}: ", r.case.name);
        eprint_overlap_delta(&r.timeline);
    }

    // Profile artifacts for one case (CI uploads these).
    let chosen = match o.get("case") {
        Some(name) => results
            .iter()
            .find(|r| r.case.name == name)
            .ok_or_else(|| {
                format!(
                    "--case {name:?} is not in the suite (have: {})",
                    mfbc_bench::regress::suite_case_names().join(", ")
                )
            })?,
        None => results.first().expect("suite is never empty"),
    };
    if let Some(path) = o.get("profile-out") {
        let json = mfbc_profile::export::profile_to_json(&chosen.profile);
        std::fs::write(path, json).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("bench: profile of {} -> {path}", chosen.case.name);
    }
    if let Some(path) = o.get("html-out") {
        let html = mfbc_profile::html::render(&chosen.profile);
        std::fs::write(path, html).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("bench: report of {} -> {path}", chosen.case.name);
    }
    if let Some(path) = o.get("prom-out") {
        // Mirror the timeline headline gauges into the case registry
        // before rendering so the Prometheus text carries them too.
        mfbc_timeline::register_metrics(&chosen.registry, &chosen.timeline, &chosen.analysis);
        let text = mfbc_profile::prometheus::render(&chosen.registry);
        std::fs::write(path, text).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("bench: metrics of {} -> {path}", chosen.case.name);
    }
    if let Some(path) = o.get("timeline-out") {
        let d = mfbc_timeline::doc(&chosen.timeline, &chosen.analysis, &[]);
        std::fs::write(path, mfbc_timeline::to_json(&d)).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("bench: timeline of {} -> {path}", chosen.case.name);
    }
    if let Some(path) = o.get("timeline-html") {
        let html = mfbc_timeline::to_html(&chosen.timeline, &chosen.analysis);
        std::fs::write(path, html).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("bench: timeline gantt of {} -> {path}", chosen.case.name);
    }

    if let Some(path) = o.get("write") {
        let baseline = mfbc_profile::Baseline::new(
            band.unwrap_or(mfbc_profile::DEFAULT_WALL_BAND),
            cases.clone(),
        );
        std::fs::write(path, baseline.to_json()).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("bench: wrote baseline ({} cases) -> {path}", cases.len());
    }

    if let Some(path) = o.get("baseline") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        let baseline =
            mfbc_profile::Baseline::from_json(&text).map_err(|e| format!("{path}: {e}"))?;
        let findings = baseline.compare(&cases, band);
        if findings.is_empty() {
            eprintln!("bench: OK — {} case(s) within baseline {path}", cases.len());
        } else {
            let regressions = findings
                .iter()
                .filter(|f| f.severity == mfbc_profile::Severity::Regression)
                .count();
            for f in &findings {
                eprintln!("bench: {}", f.describe());
            }
            return Err(CliError::BenchRegression(format!(
                "FAILED — {} finding(s) against {path} ({} regression(s), {} drift(s); \
                 drifts mean the baseline is stale: refresh with `mfbc-cli bench --write {path}`)",
                findings.len(),
                regressions,
                findings.len() - regressions,
            )));
        }
    }

    // The serve load suite: same write/compare shape, its own
    // baseline (`BENCH_serve.json`), gated only when asked for.
    let serve_write = o.get("serve-write");
    let serve_baseline = o.get("serve-baseline");
    if serve_write.is_some() || serve_baseline.is_some() {
        eprintln!("bench: running serve load suite (2 cases, seed 42)...");
        let reports = mfbc_bench::serveload::run_suite(42);
        for r in &reports {
            outln!(
                "serve/{}\trequests={}\tadmitted={}\tshed={}\texact={}\tapprox={}\tstale={}\tretries={}\tstore_v={}\tmodeled_s={:?}\tp99_s={:?}\trps={:?}\twall_s={:.3}",
                r.name,
                r.requests,
                r.admitted,
                r.shed,
                r.exact,
                r.approx,
                r.stale,
                r.retries,
                r.store_version,
                r.modeled_s,
                r.p99_latency_modeled_s,
                r.rps_modeled,
                r.wall_s,
            );
        }
        if let Some(path) = serve_write {
            let text = mfbc_bench::serveload::to_json(
                band.unwrap_or(mfbc_profile::DEFAULT_WALL_BAND),
                &reports,
            );
            std::fs::write(path, text).map_err(|e| format!("{path}: {e}"))?;
            eprintln!(
                "bench: wrote serve baseline ({} cases) -> {path}",
                reports.len()
            );
        }
        if let Some(path) = serve_baseline {
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            let (bband, base) =
                mfbc_bench::serveload::from_json(&text).map_err(|e| format!("{path}: {e}"))?;
            let findings = mfbc_bench::serveload::compare(bband, &base, &reports, band);
            if findings.is_empty() {
                eprintln!(
                    "bench: OK — serve load ({} cases) within baseline {path}",
                    reports.len()
                );
            } else {
                for f in &findings {
                    eprintln!("bench: serve: {f}");
                }
                return Err(CliError::BenchRegression(format!(
                    "FAILED — {} serve finding(s) against {path} (refresh with \
                     `mfbc-cli bench --serve-write {path}` if the change is intended)",
                    findings.len(),
                )));
            }
        }
    }
    Ok(())
}

/// `mfbc-cli analyze`: run one pinned bench case under the timeline
/// analyzer and print the exact critical path, the ranked bottleneck
/// table, per-superstep attribution, and any requested what-if
/// bounds. The printed chain's durations sum **bit-for-bit** to the
/// modeled makespan — the command re-checks and says so.
fn cmd_analyze(args: &[String]) -> Result<(), String> {
    let o = Opts::parse(
        args,
        &[
            "case",
            "timeline-out",
            "html-out",
            "what-if",
            "compare",
            "top",
        ],
    )?;
    if let Some(p) = &o.positional {
        return Err(format!("analyze takes no positional argument, got {p:?}"));
    }
    let top = o.get_parsed::<usize>("top")?.unwrap_or(10).max(1);
    let mut edits = vec![mfbc_timeline::WhatIf::identity()];
    for spec in o.get_all("what-if") {
        edits.push(mfbc_timeline::WhatIf::parse(spec).map_err(|e| format!("--what-if: {e}"))?);
    }

    let case_name = o.get("case");
    eprintln!(
        "analyze: running pinned case {}...",
        case_name.unwrap_or(mfbc_bench::regress::suite_case_names()[0])
    );
    let result = mfbc_bench::regress::run_named_case(
        case_name,
        &mfbc_bench::regress::SuiteOptions::default(),
    )
    .ok_or_else(|| {
        format!(
            "--case {:?} is not in the suite (have: {})",
            case_name.unwrap_or("?"),
            mfbc_bench::regress::suite_case_names().join(", ")
        )
    })?;
    let tl = &result.timeline;
    let an = &result.analysis;
    let reports: Vec<mfbc_timeline::WhatIfReport> =
        edits.iter().map(|e| mfbc_timeline::report(tl, e)).collect();

    outln!("case\t{}", result.case.name);
    outln!("ranks\t{}", tl.p_alive());
    outln!("makespan_s\t{:?}", tl.makespan_s());
    outln!("segments\t{}", tl.nodes.len());
    outln!("critical_segments\t{}", an.path.segments.len());
    outln!("critical_comm_share\t{:?}", an.comm_share());

    outln!("");
    outln!("critical path (lane, label, start_s, dt_s, superstep):");
    for s in &an.path.segments {
        let step = match s.superstep {
            Some(i) => {
                let info = &tl.supersteps[i];
                format!("{}#{}:{}", info.phase, info.batch, info.step)
            }
            None => "setup".to_string(),
        };
        outln!(
            "  r{}\t{:<14}\t{:?}\t{:?}\t{}",
            s.lane,
            s.label,
            s.start_s,
            s.dt_s,
            step
        );
    }
    let sum = an.path.sum_s();
    let exact = sum.to_bits() == tl.makespan_s().to_bits();
    outln!(
        "path sum {:?}s {} makespan {:?}s ({})",
        sum,
        if exact { "==" } else { "!=" },
        tl.makespan_s(),
        if exact { "bit-exact" } else { "MISMATCH" }
    );
    if !exact {
        return Err("critical path does not sum bit-exactly to the makespan".into());
    }

    outln!("");
    outln!("top-{top} bottlenecks (label, gating_s, share, count):");
    for b in an.bottlenecks.iter().take(top) {
        outln!(
            "  {:<14}\t{:?}\t{:.1}%\t{}",
            b.label,
            b.seconds,
            b.share * 100.0,
            b.count
        );
    }

    outln!("");
    outln!("supersteps (phase#batch:step, comm_s, comp_s, critical_s, straggler, imbalance):");
    for s in an.steps.iter().take(top) {
        outln!(
            "  {}#{}:{}\t{:.6}\t{:.6}\t{:.6}\t{}\t{:.2}",
            s.phase,
            s.batch,
            s.step_no,
            s.comm_s,
            s.comp_s,
            s.critical_s,
            s.straggler.map_or("-".to_string(), |r| format!("r{r}")),
            s.imbalance
        );
    }
    if an.steps.len() > top {
        outln!("  ... {} more superstep(s)", an.steps.len() - top);
    }

    outln!("");
    outln!("what-if bounds (edit, makespan_s, speedup):");
    for r in &reports {
        outln!("  {:<24}\t{:?}\t{:.3}x", r.label, r.makespan_s, r.speedup());
    }

    if let Some(path) = o.get("timeline-out") {
        let d = mfbc_timeline::doc(tl, an, &reports);
        std::fs::write(path, mfbc_timeline::to_json(&d)).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("analyze: timeline -> {path}");
    }
    if let Some(path) = o.get("html-out") {
        std::fs::write(path, mfbc_timeline::to_html(tl, an)).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("analyze: gantt -> {path}");
    }
    if let Some(path) = o.get("compare") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        let before = mfbc_timeline::parse_timeline(&text).map_err(|e| format!("{path}: {e}"))?;
        let after = mfbc_timeline::doc(tl, an, &reports);
        outln!("");
        outln!("diff vs {path}:");
        outln!(
            "{}",
            mfbc_timeline::render_diff(&mfbc_timeline::diff_docs(&before, &after))
        );
    }
    Ok(())
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    let o = Opts::parse(args, &["weighted", "seed"])?;
    let spec = o.positional.as_deref().ok_or("generate needs a spec")?;
    let weighted = o.get_parsed::<u64>("weighted")?;
    let seed = o.get_parsed::<u64>("seed")?.unwrap_or(42);
    if !spec.starts_with("rmat:") && !spec.starts_with("uniform:") {
        return Err(format!(
            "generate takes rmat:S,E or uniform:N,M, got {spec:?}"
        ));
    }
    let g = load_workload(spec, o.has("directed"), weighted, seed)?;
    io::write_edge_list(&g, std::io::stdout().lock()).map_err(|e| e.to_string())
}

/// `mfbc-cli serve`: the long-lived serving engine as a JSON-lines
/// loop on stdin. One request per line; a blank line flushes the
/// coalesced round; `{"cmd":"health"}` answers immediately;
/// `{"cmd":"dump"}` answers with a one-line flight-recorder snapshot;
/// unparseable lines are refused with a `shed: invalid-request` line
/// (the loop never dies on bad input). EOF drains the queue, writes
/// `--prom-out` and `--flight-out` (auto-dumps captured at
/// poison/breaker-trip, then a final dump), prints a summary, and
/// exits — code 5 if an unrecoverable fault poisoned the engine
/// along the way.
fn cmd_serve(args: &[String]) -> Result<(), CliError> {
    use std::io::BufRead as _;

    let o = Opts::parse(
        args,
        &[
            "nodes",
            "graph",
            "batch",
            "queue",
            "deadline",
            "faults",
            "fault-seed",
            "seed",
            "threads",
            "prom-out",
            "flight-out",
            "mem-bytes",
        ],
    )?;
    if let Some(p) = &o.positional {
        return Err(format!("serve takes no positional argument, got {p:?}").into());
    }
    let p: usize = o.get_parsed("nodes")?.ok_or("serve needs --nodes P")?;
    let spec_str = o.get("graph").unwrap_or("rmat:10,8");
    let seed = o.get_parsed::<u64>("seed")?.unwrap_or(42);
    let g = load_workload(spec_str, o.has("directed"), None, seed)?;
    let batch = o.get_parsed::<usize>("batch")?.unwrap_or(8).max(1);
    let threads = parse_threads(&o)?;
    let deadline = o.get_parsed::<f64>("deadline")?;
    if deadline.is_some_and(|d| d.is_nan() || d < 0.0) {
        return Err("--deadline must be a nonnegative number of modeled seconds".into());
    }

    let mut fault_plan = match o.get("faults") {
        Some(spec) => FaultPlan::parse(spec).map_err(|e| format!("--faults: {e}"))?,
        None => FaultPlan::none(),
    };
    if let Some(fseed) = o.get_parsed::<u64>("fault-seed")? {
        fault_plan.faults.extend(FaultPlan::seeded(fseed, p).faults);
    }
    let mut spec = MachineSpec::gemini(p);
    // Override the modeled per-node memory budget (e.g. to exercise
    // unrecoverable-crash degradation at laptop scale).
    if let Some(bytes) = o.get_parsed::<u64>("mem-bytes")? {
        spec.mem_bytes = Some(bytes);
    }
    let machine = if fault_plan.is_empty() {
        Machine::new(spec)
    } else {
        Machine::with_faults(spec, fault_plan, RetryPolicy::default())
    };

    let cfg = MfbcConfig {
        batch_size: Some(batch),
        threads,
        ..Default::default()
    };
    let ecfg = mfbc_serve::EngineConfig {
        max_queue: o.get_parsed::<usize>("queue")?.unwrap_or(64).max(1),
        default_deadline_s: deadline.unwrap_or(f64::INFINITY),
        seed,
        // Always keep a small flight recorder alive: it is bounded,
        // never perturbs responses, and `{"cmd":"dump"}` /
        // `--flight-out` read from it.
        flight_capacity: 256,
        ..mfbc_serve::EngineConfig::default()
    };
    let mut engine = mfbc_serve::Engine::new(&machine, g, &cfg, ecfg).map_err(CliError::machine)?;

    if o.has("warm") {
        let retries = engine.warm();
        eprintln!(
            "serve: warmed store to v{} (exact_complete={}, {} retries)",
            engine.store_version(),
            engine.exact_complete(),
            retries
        );
    }
    eprintln!(
        "serve: {} vertices on {p} node(s); JSON-lines on stdin, blank line flushes, EOF exits",
        engine.graph().n()
    );

    // Auto-dumps the engine took at poison/breaker-trip, preserved
    // here in arrival order for `--flight-out`.
    let mut flight_lines: Vec<String> = Vec::new();
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let line = line.map_err(|e| format!("stdin: {e}"))?;
        let text = line.trim();
        if text.is_empty() {
            for r in engine.drain() {
                outln!("{}", mfbc_serve::wire::render_response(&r));
            }
            flight_lines.extend(engine.take_auto_dump());
            continue;
        }
        match mfbc_serve::wire::parse_line(text) {
            Ok(mfbc_serve::wire::WireCmd::Health) => {
                outln!("{}", mfbc_serve::wire::render_health(&engine.health()));
            }
            Ok(mfbc_serve::wire::WireCmd::Dump) => {
                let dump = engine
                    .flight_dump()
                    .unwrap_or_else(|| "{\"flight\":0}".to_string());
                outln!("{dump}");
            }
            Ok(mfbc_serve::wire::WireCmd::Request(req)) => {
                let id = req.id;
                if let mfbc_serve::Admission::Shed(reason) = engine.submit(req) {
                    outln!("{}", mfbc_serve::wire::render_shed(id, reason));
                }
            }
            Err(detail) => {
                outln!("{}", mfbc_serve::wire::render_invalid(&detail));
            }
        }
    }
    // EOF: everything still queued gets its answer before shutdown.
    for r in engine.drain() {
        outln!("{}", mfbc_serve::wire::render_response(&r));
    }
    flight_lines.extend(engine.take_auto_dump());

    if let Some(path) = o.get("flight-out") {
        if let Some(final_dump) = engine.flight_dump() {
            flight_lines.push(final_dump);
        }
        let mut text = flight_lines.join("\n");
        text.push('\n');
        std::fs::write(path, text).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("serve: flight recorder -> {path}");
    }

    if let Some(path) = o.get("prom-out") {
        let text = mfbc_profile::prometheus::render(engine.metrics());
        std::fs::write(path, text).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("serve: metrics -> {path}");
    }
    let h = engine.health();
    eprintln!(
        "serve: served {} response(s), shed {}, store v{}{}",
        h.served,
        h.shed,
        h.store_version,
        if h.exact_complete { " (exact)" } else { "" }
    );
    if engine.poisoned() {
        return Err(CliError::ServePoisoned(
            "engine poisoned: an unrecoverable fault ended exact progress \
             (queued requests were still served, stale)"
                .into(),
        ));
    }
    Ok(())
}
