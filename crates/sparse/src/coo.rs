//! Coordinate-format matrices: the construction and redistribution
//! format.
//!
//! CTF stores tensors as index–value pairs during input and
//! redistribution and converts to CSR for multiplication (§6.2); this
//! module plays the same role. Duplicate coordinates are legal in a
//! `Coo` and are combined with a caller-chosen monoid when converting
//! to CSR.

use crate::csr::{Csr, Idx};
use mfbc_algebra::monoid::Monoid;

/// A coordinate-format sparse matrix: an unordered bag of
/// `(row, col, value)` triples, possibly with duplicates.
#[derive(Clone, Debug, PartialEq)]
pub struct Coo<T> {
    nrows: usize,
    ncols: usize,
    entries: Vec<(Idx, Idx, T)>,
}

impl<T> Coo<T> {
    /// An empty COO matrix of the given shape.
    pub fn new(nrows: usize, ncols: usize) -> Coo<T> {
        assert!(nrows <= Idx::MAX as usize, "nrows exceeds index type");
        assert!(ncols <= Idx::MAX as usize, "ncols exceeds index type");
        Coo {
            nrows,
            ncols,
            entries: Vec::new(),
        }
    }

    /// Builds from triples.
    ///
    /// # Panics
    /// Panics if any coordinate is out of bounds.
    pub fn from_triples(
        nrows: usize,
        ncols: usize,
        triples: impl IntoIterator<Item = (usize, usize, T)>,
    ) -> Coo<T> {
        let mut c = Coo::new(nrows, ncols);
        for (i, j, v) in triples {
            c.push(i, j, v);
        }
        c
    }

    /// Appends a triple.
    ///
    /// # Panics
    /// Panics if the coordinate is out of bounds.
    #[inline]
    pub fn push(&mut self, i: usize, j: usize, v: T) {
        assert!(i < self.nrows && j < self.ncols, "({i},{j}) out of bounds");
        self.entries.push((i as Idx, j as Idx, v));
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored triples (duplicates counted).
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no triples are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The raw triples.
    #[inline]
    pub fn entries(&self) -> &[(Idx, Idx, T)] {
        &self.entries
    }

    /// Consumes into raw triples.
    #[inline]
    pub fn into_entries(self) -> Vec<(Idx, Idx, T)> {
        self.entries
    }

    /// Merges another COO of the same shape into this one.
    pub fn absorb(&mut self, other: Coo<T>) {
        assert_eq!(
            (self.nrows, self.ncols),
            (other.nrows, other.ncols),
            "shape mismatch in Coo::absorb"
        );
        self.entries.extend(other.entries);
    }

    /// Converts to CSR, combining duplicate coordinates with the
    /// monoid `M` and pruning identity entries.
    pub fn into_csr<M>(mut self) -> Csr<T>
    where
        M: Monoid<Elem = T>,
        T: Clone,
    {
        // Sort by (row, col); a stable comparison sort keeps the cost
        // at O(nnz log nnz) without the memory blowup of bucketing.
        self.entries.sort_unstable_by_key(|a| (a.0, a.1));

        let mut rowptr = Vec::with_capacity(self.nrows + 1);
        let mut colind: Vec<Idx> = Vec::with_capacity(self.entries.len());
        let mut vals: Vec<T> = Vec::with_capacity(self.entries.len());
        rowptr.push(0usize);
        let mut cur_row: usize = 0;
        let mut prev: Option<(Idx, Idx)> = None;

        for (i, j, v) in self.entries {
            while cur_row < i as usize {
                rowptr.push(colind.len());
                cur_row += 1;
            }
            if prev == Some((i, j)) {
                let acc = vals.last_mut().expect("vals tracks colind");
                M::fold_into(acc, &v);
            } else {
                colind.push(j);
                vals.push(v);
                prev = Some((i, j));
            }
        }
        while cur_row < self.nrows {
            rowptr.push(colind.len());
            cur_row += 1;
        }

        Csr::from_parts(self.nrows, self.ncols, rowptr, colind, vals).prune::<M>()
    }
}

impl<T: Clone> Coo<T> {
    /// Builds a COO view of a CSR matrix.
    pub fn from_csr(m: &Csr<T>) -> Coo<T> {
        let mut c = Coo::new(m.nrows(), m.ncols());
        for (i, j, v) in m.iter() {
            c.push(i, j, v.clone());
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfbc_algebra::monoid::{MinDist, SumU64};
    use mfbc_algebra::Dist;

    #[test]
    fn round_trip_csr() {
        let triples = vec![(0, 0, 1u64), (2, 1, 4), (0, 2, 2), (2, 0, 3)];
        let coo = Coo::from_triples(3, 3, triples);
        let csr = coo.into_csr::<SumU64>();
        assert_eq!(csr.nnz(), 4);
        assert_eq!(csr.get(0, 0), Some(&1));
        assert_eq!(csr.get(2, 1), Some(&4));
        let back = Coo::from_csr(&csr).into_csr::<SumU64>();
        assert_eq!(back, csr);
    }

    #[test]
    fn duplicates_are_combined() {
        let coo = Coo::from_triples(2, 2, vec![(0, 1, 3u64), (0, 1, 4), (1, 0, 1), (0, 1, 2)]);
        let csr = coo.into_csr::<SumU64>();
        assert_eq!(csr.get(0, 1), Some(&9));
        assert_eq!(csr.nnz(), 2);
    }

    #[test]
    fn identities_are_pruned() {
        let coo = Coo::from_triples(
            2,
            2,
            vec![
                (0, 0, Dist::new(3)),
                (1, 1, Dist::INF),
                (0, 1, Dist::new(1)),
            ],
        );
        let csr = coo.into_csr::<MinDist>();
        assert_eq!(csr.nnz(), 2);
        assert_eq!(csr.get(1, 1), None);
    }

    #[test]
    fn min_combines_duplicates() {
        let coo = Coo::from_triples(
            1,
            1,
            vec![
                (0, 0, Dist::new(7)),
                (0, 0, Dist::new(3)),
                (0, 0, Dist::new(5)),
            ],
        );
        let csr = coo.into_csr::<MinDist>();
        assert_eq!(csr.get(0, 0), Some(&Dist::new(3)));
    }

    #[test]
    fn empty_and_trailing_rows() {
        let coo = Coo::from_triples(4, 3, vec![(1, 2, 5u64)]);
        let csr = coo.into_csr::<SumU64>();
        assert_eq!(csr.nnz(), 1);
        assert_eq!(csr.row_nnz(0), 0);
        assert_eq!(csr.row_nnz(1), 1);
        assert_eq!(csr.row_nnz(3), 0);
        assert!(csr.validate().is_ok());
    }

    #[test]
    fn zero_sized_matrices() {
        let coo: Coo<u64> = Coo::new(0, 0);
        let csr = coo.into_csr::<SumU64>();
        assert_eq!((csr.nrows(), csr.ncols(), csr.nnz()), (0, 0, 0));
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_rejected() {
        let mut coo = Coo::new(2, 2);
        coo.push(2, 0, 1u64);
    }
}
