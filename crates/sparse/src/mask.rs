//! Output masks for generalized SpGEMM.
//!
//! A [`Mask`] restricts which output coordinates a multiplication may
//! produce, in the GraphBLAS sense: a *structural* mask keeps exactly
//! the coordinates present in its pattern, a *complement* mask keeps
//! exactly the coordinates absent from it. Masked multiplication
//! skips elementary products whose output column is excluded *before*
//! they are formed — they are neither accumulated nor counted in
//! `ops(A,B)` — which is what makes masked push cheaper than
//! multiply-then-filter on sparse frontiers (Burkhardt's algebraic
//! BFS argument).
//!
//! The pattern is structure only (no values): a sorted CSR-style
//! (rowptr, cols) pair. Masks are cheap to window into sub-rectangles
//! (the distributed layers re-base one global mask per output block),
//! and windowing commutes with complementation, so a windowed
//! complement mask is the complement of the windowed pattern.

use crate::csr::{Csr, Idx};

/// How a mask's pattern selects output coordinates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MaskKind {
    /// Keep exactly the coordinates *in* the pattern.
    Structural,
    /// Keep exactly the coordinates *not in* the pattern.
    Complement,
}

/// An output mask: a selection kind plus a sparse coordinate pattern.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Mask {
    kind: MaskKind,
    nrows: usize,
    ncols: usize,
    rowptr: Vec<usize>,
    cols: Vec<Idx>,
}

impl Mask {
    /// A structural mask with the pattern of `m` (values ignored).
    pub fn structural_of<T>(m: &Csr<T>) -> Mask {
        Mask::of_pattern(MaskKind::Structural, m)
    }

    /// A complement mask with the pattern of `m` (values ignored).
    pub fn complement_of<T>(m: &Csr<T>) -> Mask {
        Mask::of_pattern(MaskKind::Complement, m)
    }

    fn of_pattern<T>(kind: MaskKind, m: &Csr<T>) -> Mask {
        Mask {
            kind,
            nrows: m.nrows(),
            ncols: m.ncols(),
            rowptr: m.rowptr().to_vec(),
            cols: (0..m.nrows())
                .flat_map(|i| m.row_cols(i))
                .copied()
                .collect(),
        }
    }

    /// Builds a mask from loose coordinates (duplicates tolerated).
    pub fn from_coords(
        kind: MaskKind,
        nrows: usize,
        ncols: usize,
        coords: &[(usize, usize)],
    ) -> Mask {
        let mut per_row: Vec<Vec<Idx>> = vec![Vec::new(); nrows];
        for &(i, j) in coords {
            assert!(i < nrows && j < ncols, "mask coord ({i},{j}) out of range");
            per_row[i].push(j as Idx);
        }
        let mut rowptr = Vec::with_capacity(nrows + 1);
        rowptr.push(0usize);
        let mut cols = Vec::with_capacity(coords.len());
        for row in &mut per_row {
            row.sort_unstable();
            row.dedup();
            cols.extend_from_slice(row);
            rowptr.push(cols.len());
        }
        Mask {
            kind,
            nrows,
            ncols,
            rowptr,
            cols,
        }
    }

    /// The selection kind.
    #[inline]
    pub fn kind(&self) -> MaskKind {
        self.kind
    }

    /// Mask rows (must equal the output's rows).
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Mask columns (must equal the output's columns).
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Stored pattern coordinates.
    #[inline]
    pub fn pattern_nnz(&self) -> usize {
        self.cols.len()
    }

    /// The same pattern under the opposite kind.
    pub fn inverted(&self) -> Mask {
        let kind = match self.kind {
            MaskKind::Structural => MaskKind::Complement,
            MaskKind::Complement => MaskKind::Structural,
        };
        Mask {
            kind,
            ..self.clone()
        }
    }

    /// Pattern columns of row `i`, sorted ascending.
    #[inline]
    pub fn row_cols(&self, i: usize) -> &[Idx] {
        &self.cols[self.rowptr[i]..self.rowptr[i + 1]]
    }

    /// Whether output coordinate `(i, j)` may be produced.
    pub fn allows(&self, i: usize, j: usize) -> bool {
        let present = self.row_cols(i).binary_search(&(j as Idx)).is_ok();
        present == (self.kind == MaskKind::Structural)
    }

    /// The mask re-based to the sub-rectangle `rows × cols` (same
    /// kind; windowing commutes with complementation). This is how
    /// the distributed multiplication layers carve one global output
    /// mask into per-block masks.
    pub fn window(&self, rows: std::ops::Range<usize>, cols: std::ops::Range<usize>) -> Mask {
        assert!(rows.end <= self.nrows && cols.end <= self.ncols);
        let mut rowptr = Vec::with_capacity(rows.len() + 1);
        rowptr.push(0usize);
        let mut out_cols = Vec::new();
        for i in rows.clone() {
            let rc = self.row_cols(i);
            let lo = rc.partition_point(|&j| (j as usize) < cols.start);
            let hi = rc.partition_point(|&j| (j as usize) < cols.end);
            out_cols.extend(rc[lo..hi].iter().map(|&j| j - cols.start as Idx));
            rowptr.push(out_cols.len());
        }
        Mask {
            kind: self.kind,
            nrows: rows.len(),
            ncols: cols.len(),
            rowptr,
            cols: out_cols,
        }
    }

    /// Per-column flags marking columns excluded for *every* output
    /// row: under a structural mask, columns absent from all pattern
    /// rows; under a complement mask, columns present in all of them.
    /// Entries of the right operand in such columns can only feed
    /// skipped products, so redistribution may drop them without
    /// changing any kept output or the `ops` counter.
    pub fn fully_excluded_cols(&self) -> Vec<bool> {
        let mut count = vec![0usize; self.ncols];
        for &j in &self.cols {
            count[j as usize] += 1;
        }
        match self.kind {
            MaskKind::Structural => count.into_iter().map(|c| c == 0).collect(),
            MaskKind::Complement => count.into_iter().map(|c| c == self.nrows).collect(),
        }
    }

    /// Fraction of the output's coordinates the mask allows — the
    /// density factor the cost model applies to the uniform-sparsity
    /// `ops`/`nnz(C)` estimates.
    pub fn allowed_fraction(&self) -> f64 {
        let area = (self.nrows * self.ncols).max(1) as f64;
        let in_pattern = self.pattern_nnz() as f64 / area;
        match self.kind {
            MaskKind::Structural => in_pattern,
            MaskKind::Complement => 1.0 - in_pattern,
        }
    }

    /// Filters a matrix down to its mask-allowed entries — the
    /// multiply-then-filter oracle the conformance harness compares
    /// masked multiplication against.
    pub fn filter_allowed<T: Clone>(&self, m: &Csr<T>) -> Csr<T> {
        assert_eq!(m.nrows(), self.nrows);
        assert_eq!(m.ncols(), self.ncols);
        m.filter(|i, j, _| self.allows(i, j))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;
    use mfbc_algebra::monoid::SumU64;

    fn pattern() -> Csr<u64> {
        Coo::from_triples(
            3,
            4,
            vec![(0usize, 1usize, 1u64), (0, 3, 1), (2, 0, 1), (2, 1, 1)],
        )
        .into_csr::<SumU64>()
    }

    #[test]
    fn structural_allows_pattern_coords_only() {
        let m = Mask::structural_of(&pattern());
        assert!(m.allows(0, 1) && m.allows(0, 3) && m.allows(2, 0));
        assert!(!m.allows(0, 0) && !m.allows(1, 2) && !m.allows(2, 3));
    }

    #[test]
    fn complement_inverts_structural() {
        let s = Mask::structural_of(&pattern());
        let c = Mask::complement_of(&pattern());
        for i in 0..3 {
            for j in 0..4 {
                assert_ne!(s.allows(i, j), c.allows(i, j), "({i},{j})");
            }
        }
        assert_eq!(s.inverted(), c);
    }

    #[test]
    fn window_matches_global_coordinates() {
        for mask in [
            Mask::structural_of(&pattern()),
            Mask::complement_of(&pattern()),
        ] {
            let w = mask.window(1..3, 1..4);
            assert_eq!((w.nrows(), w.ncols()), (2, 3));
            for i in 0..2 {
                for j in 0..3 {
                    assert_eq!(w.allows(i, j), mask.allows(i + 1, j + 1), "({i},{j})");
                }
            }
        }
    }

    #[test]
    fn fully_excluded_cols_by_kind() {
        // Pattern touches columns 0, 1, 3; column 2 is untouched.
        let s = Mask::structural_of(&pattern());
        assert_eq!(s.fully_excluded_cols(), vec![false, false, true, false]);
        // Complement: no column is present in all 3 rows.
        let c = Mask::complement_of(&pattern());
        assert_eq!(c.fully_excluded_cols(), vec![false; 4]);
        // A full column under complement is fully excluded.
        let full_col =
            Coo::from_triples(2, 2, vec![(0usize, 0usize, 1u64), (1, 0, 1)]).into_csr::<SumU64>();
        assert_eq!(
            Mask::complement_of(&full_col).fully_excluded_cols(),
            vec![true, false]
        );
    }

    #[test]
    fn allowed_fraction_by_kind() {
        let s = Mask::structural_of(&pattern());
        assert_eq!(s.allowed_fraction(), 4.0 / 12.0);
        assert!((s.inverted().allowed_fraction() - 8.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn from_coords_dedups_and_sorts() {
        let m = Mask::from_coords(
            MaskKind::Structural,
            2,
            3,
            &[(1, 2), (1, 0), (1, 2), (0, 1)],
        );
        assert_eq!(m.pattern_nnz(), 3);
        assert_eq!(m.row_cols(1), &[0, 2]);
    }

    #[test]
    fn filter_allowed_is_the_filter_oracle() {
        let a = pattern();
        let m = Mask::from_coords(MaskKind::Structural, 3, 4, &[(0, 1), (2, 1)]);
        let kept = m.filter_allowed(&a);
        assert_eq!(kept.nnz(), 2);
        assert_eq!(kept.get(0, 1), Some(&1));
        assert_eq!(kept.get(0, 3), None);
    }
}
