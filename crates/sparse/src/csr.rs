//! Compressed-sparse-row matrices.

use mfbc_algebra::monoid::Monoid;

/// Column/row index type. `u32` halves index memory versus `usize`
/// and covers every graph this simulator targets (n < 2³²); the
/// constructors check the bound.
pub type Idx = u32;

/// A compressed-sparse-row matrix over an arbitrary element type.
///
/// Invariants (checked by [`Csr::validate`], used liberally in tests
/// and debug assertions):
/// * `rowptr.len() == nrows + 1`, `rowptr[0] == 0`, non-decreasing,
///   `rowptr[nrows] == colind.len() == vals.len()`;
/// * within each row, column indices are strictly increasing and
///   `< ncols`.
#[derive(Clone, PartialEq)]
pub struct Csr<T> {
    nrows: usize,
    ncols: usize,
    rowptr: Vec<usize>,
    colind: Vec<Idx>,
    vals: Vec<T>,
}

impl<T> Csr<T> {
    /// An empty (all-sparse-zero) matrix of the given shape.
    pub fn zero(nrows: usize, ncols: usize) -> Csr<T> {
        assert!(ncols <= Idx::MAX as usize, "ncols exceeds index type");
        Csr {
            nrows,
            ncols,
            rowptr: vec![0; nrows + 1],
            colind: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// Builds from raw parts, validating the CSR invariants.
    ///
    /// # Panics
    /// Panics if any invariant is violated.
    pub fn from_parts(
        nrows: usize,
        ncols: usize,
        rowptr: Vec<usize>,
        colind: Vec<Idx>,
        vals: Vec<T>,
    ) -> Csr<T> {
        let m = Csr {
            nrows,
            ncols,
            rowptr,
            colind,
            vals,
        };
        m.validate().expect("invalid CSR parts");
        m
    }

    /// Checks every structural invariant, returning a description of
    /// the first violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.ncols > Idx::MAX as usize {
            return Err(format!("ncols {} exceeds index type", self.ncols));
        }
        if self.rowptr.len() != self.nrows + 1 {
            return Err(format!(
                "rowptr length {} != nrows+1 = {}",
                self.rowptr.len(),
                self.nrows + 1
            ));
        }
        if self.rowptr[0] != 0 {
            return Err("rowptr[0] != 0".to_string());
        }
        if *self.rowptr.last().unwrap() != self.colind.len() || self.colind.len() != self.vals.len()
        {
            return Err(format!(
                "rowptr end {} / colind {} / vals {} mismatch",
                self.rowptr.last().unwrap(),
                self.colind.len(),
                self.vals.len()
            ));
        }
        for i in 0..self.nrows {
            if self.rowptr[i] > self.rowptr[i + 1] {
                return Err(format!("rowptr decreases at row {i}"));
            }
            let row = &self.colind[self.rowptr[i]..self.rowptr[i + 1]];
            for w in row.windows(2) {
                if w[0] >= w[1] {
                    return Err(format!("row {i} columns not strictly increasing"));
                }
            }
            if let Some(&last) = row.last() {
                if last as usize >= self.ncols {
                    return Err(format!("row {i} column {last} out of bounds"));
                }
            }
        }
        Ok(())
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries (`nnz` in the paper's notation).
    #[inline]
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Whether no entries are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.vals.is_empty()
    }

    /// The row-pointer array.
    #[inline]
    pub fn rowptr(&self) -> &[usize] {
        &self.rowptr
    }

    /// The column indices of row `i`.
    #[inline]
    pub fn row_cols(&self, i: usize) -> &[Idx] {
        &self.colind[self.rowptr[i]..self.rowptr[i + 1]]
    }

    /// The values of row `i`.
    #[inline]
    pub fn row_vals(&self, i: usize) -> &[T] {
        &self.vals[self.rowptr[i]..self.rowptr[i + 1]]
    }

    /// Iterates `(col, &value)` over row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> impl Iterator<Item = (usize, &T)> + '_ {
        self.row_cols(i)
            .iter()
            .zip(self.row_vals(i))
            .map(|(&c, v)| (c as usize, v))
    }

    /// Number of stored entries in row `i`.
    #[inline]
    pub fn row_nnz(&self, i: usize) -> usize {
        self.rowptr[i + 1] - self.rowptr[i]
    }

    /// Looks up entry `(i, j)` by binary search within the row.
    pub fn get(&self, i: usize, j: usize) -> Option<&T> {
        let row = self.row_cols(i);
        row.binary_search(&(j as Idx))
            .ok()
            .map(|k| &self.vals[self.rowptr[i] + k])
    }

    /// Iterates all `(row, col, &value)` triples in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, &T)> + '_ {
        (0..self.nrows).flat_map(move |i| self.row(i).map(move |(j, v)| (i, j, v)))
    }

    /// Approximate payload bytes (values + column indices), the
    /// quantity the machine layer charges as communication volume.
    #[inline]
    pub fn payload_bytes(&self) -> usize {
        self.nnz() * crate::entry_bytes::<T>()
    }

    /// Maps values, keeping the structure. The mapped type may differ.
    pub fn map<U>(&self, mut f: impl FnMut(usize, usize, &T) -> U) -> Csr<U> {
        let mut vals = Vec::with_capacity(self.nnz());
        for i in 0..self.nrows {
            for (j, v) in self.row(i) {
                vals.push(f(i, j, v));
            }
        }
        Csr {
            nrows: self.nrows,
            ncols: self.ncols,
            rowptr: self.rowptr.clone(),
            colind: self.colind.clone(),
            vals,
        }
    }

    /// Retains entries satisfying the predicate — the analogue of
    /// CTF's `Tensor::sparsify()` used to filter the next frontier.
    pub fn filter(&self, mut keep: impl FnMut(usize, usize, &T) -> bool) -> Csr<T>
    where
        T: Clone,
    {
        let mut rowptr = Vec::with_capacity(self.nrows + 1);
        rowptr.push(0usize);
        let mut colind = Vec::new();
        let mut vals = Vec::new();
        for i in 0..self.nrows {
            for (j, v) in self.row(i) {
                if keep(i, j, v) {
                    colind.push(j as Idx);
                    vals.push(v.clone());
                }
            }
            rowptr.push(colind.len());
        }
        Csr {
            nrows: self.nrows,
            ncols: self.ncols,
            rowptr,
            colind,
            vals,
        }
    }

    /// Drops entries that are identities of the monoid `M` — the
    /// normal form in which all matrices of this workspace live.
    pub fn prune<M>(&self) -> Csr<T>
    where
        M: Monoid<Elem = T>,
        T: Clone,
    {
        self.filter(|_, _, v| !M::is_identity(v))
    }

    /// Densifies one row into a `Vec<Option<T>>` of length `ncols`
    /// (test/oracle helper; not used on hot paths).
    pub fn dense_row(&self, i: usize) -> Vec<Option<T>>
    where
        T: Clone,
    {
        let mut out = vec![None; self.ncols];
        for (j, v) in self.row(i) {
            out[j] = Some(v.clone());
        }
        out
    }

    /// Describes the first coordinate at which `self` and `other`
    /// disagree — shape, structure, or value — or `None` if equal.
    /// Differential-test helper: a full `assert_eq!` dump of two large
    /// matrices is unreadable; this pinpoints the divergence.
    pub fn first_difference(&self, other: &Csr<T>) -> Option<String>
    where
        T: PartialEq + std::fmt::Debug,
    {
        if (self.nrows, self.ncols) != (other.nrows, other.ncols) {
            return Some(format!(
                "shape {}x{} vs {}x{}",
                self.nrows, self.ncols, other.nrows, other.ncols
            ));
        }
        for i in 0..self.nrows {
            let (lc, rc) = (self.row_cols(i), other.row_cols(i));
            let (lv, rv) = (self.row_vals(i), other.row_vals(i));
            for k in 0..lc.len().max(rc.len()) {
                match (lc.get(k), rc.get(k)) {
                    (Some(&a), Some(&b)) if a != b => {
                        return Some(format!("row {i}: column {a} vs {b} at slot {k}"));
                    }
                    (Some(&a), Some(_)) => {
                        if lv[k] != rv[k] {
                            return Some(format!("entry ({i},{a}): {:?} vs {:?}", lv[k], rv[k]));
                        }
                    }
                    (Some(&a), None) => {
                        return Some(format!("entry ({i},{a})={:?} only on left", lv[k]));
                    }
                    (None, Some(&b)) => {
                        return Some(format!("entry ({i},{b})={:?} only on right", rv[k]));
                    }
                    (None, None) => unreachable!(),
                }
            }
        }
        None
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Csr<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Csr<{}x{}, nnz={}>{{",
            self.nrows,
            self.ncols,
            self.nnz()
        )?;
        for (i, j, v) in self.iter().take(32) {
            write!(f, " ({i},{j})={v:?}")?;
        }
        if self.nnz() > 32 {
            write!(f, " …")?;
        }
        write!(f, " }}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfbc_algebra::monoid::MinDist;
    use mfbc_algebra::Dist;

    fn sample() -> Csr<i32> {
        // [ 1 . 2 ]
        // [ . . . ]
        // [ 3 4 . ]
        Csr::from_parts(3, 3, vec![0, 2, 2, 4], vec![0, 2, 0, 1], vec![1, 2, 3, 4])
    }

    #[test]
    fn shape_and_nnz() {
        let m = sample();
        assert_eq!((m.nrows(), m.ncols(), m.nnz()), (3, 3, 4));
        assert_eq!(m.row_nnz(0), 2);
        assert_eq!(m.row_nnz(1), 0);
    }

    #[test]
    fn get_and_row_iteration() {
        let m = sample();
        assert_eq!(m.get(0, 2), Some(&2));
        assert_eq!(m.get(0, 1), None);
        assert_eq!(m.row(2).collect::<Vec<_>>(), vec![(0, &3), (1, &4)]);
        let triples: Vec<_> = m.iter().map(|(i, j, v)| (i, j, *v)).collect();
        assert_eq!(triples, vec![(0, 0, 1), (0, 2, 2), (2, 0, 3), (2, 1, 4)]);
    }

    #[test]
    fn zero_matrix() {
        let z = Csr::<i32>::zero(4, 5);
        assert_eq!(z.nnz(), 0);
        assert!(z.validate().is_ok());
        assert!(z.is_empty());
        assert_eq!(z.row(3).count(), 0);
    }

    #[test]
    fn validate_rejects_bad_columns() {
        let m = Csr {
            nrows: 1,
            ncols: 2,
            rowptr: vec![0, 2],
            colind: vec![1, 0], // not increasing
            vals: vec![1, 2],
        };
        assert!(m.validate().is_err());
        let m = Csr {
            nrows: 1,
            ncols: 2,
            rowptr: vec![0, 1],
            colind: vec![5], // out of bounds
            vals: vec![1],
        };
        assert!(m.validate().is_err());
    }

    #[test]
    fn map_preserves_structure() {
        let m = sample().map(|_, _, v| v * 10);
        assert_eq!(m.get(2, 1), Some(&40));
        assert_eq!(m.nnz(), 4);
        assert!(m.validate().is_ok());
    }

    #[test]
    fn filter_drops_entries() {
        let m = sample().filter(|_, _, v| *v % 2 == 1);
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.get(0, 0), Some(&1));
        assert_eq!(m.get(0, 2), None);
        assert!(m.validate().is_ok());
    }

    #[test]
    fn prune_removes_monoid_identities() {
        let m = Csr::from_parts(
            1,
            3,
            vec![0, 3],
            vec![0, 1, 2],
            vec![Dist::new(1), Dist::INF, Dist::new(2)],
        );
        let p = m.prune::<MinDist>();
        assert_eq!(p.nnz(), 2);
        assert_eq!(p.get(0, 1), None);
    }

    #[test]
    fn dense_row_round_trip() {
        let m = sample();
        assert_eq!(m.dense_row(0), vec![Some(1), None, Some(2)]);
        assert_eq!(m.dense_row(1), vec![None, None, None]);
    }
}
