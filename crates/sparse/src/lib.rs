//! Sparse matrix formats and generalized sparse matrix multiplication
//! for MFBC.
//!
//! This crate is the workspace's replacement for the blockwise sparse
//! kernels the paper obtains from Intel MKL plus CTF's fallback
//! routines (§6.2): coordinate ([`Coo`]) and compressed-sparse-row
//! ([`Csr`]) formats, a generalized Gustavson SpGEMM driven by an
//! [`SpMulKernel`](mfbc_algebra::SpMulKernel) (so the same code path
//! multiplies tropical, multpath, and centpath matrices), GraphBLAS
//! style output [`Mask`]s (structural and complement) that skip
//! excluded elementary products before they form, elementwise monoid
//! combination, `sparsify`-style filtering, transposition, and
//! slicing. Row-parallel variants run on the `mfbc-parallel` thread
//! pool (sized by `MFBC_THREADS`), standing in for CTF's on-node
//! threading: rows are split into flops-balanced contiguous ranges,
//! each output row is produced by exactly one task, and chunks are
//! assembled in row order — so parallel results are bit-identical to
//! the serial kernels at any thread count.
//!
//! Sparse-zero convention: an entry equal to the accumulating monoid's
//! identity is never stored; every constructor and kernel filters such
//! entries on the way in and out.

#![deny(missing_docs)]
// `unsafe` is denied except for the documented disjoint-scatter
// writes in `transpose`, which carry their own SAFETY argument.
#![deny(unsafe_code)]
// Internal SPA chunk tuples are contained within spgemm.rs.
#![allow(clippy::type_complexity)]

pub mod coo;
pub mod csr;
pub mod elementwise;
pub mod mask;
pub mod slice;
pub mod spgemm;
pub mod transpose;

pub use coo::Coo;
pub use csr::{Csr, Idx};
pub use mask::{Mask, MaskKind};
pub use spgemm::{spgemm, spgemm_masked, spgemm_masked_serial, spgemm_opt, spgemm_serial};

/// Estimated in-memory payload bytes of one stored entry of type `T`
/// in CSR/COO form: the value plus one column index. Used by the
/// machine layer to charge communication volume for sparse blocks.
#[inline]
pub const fn entry_bytes<T>() -> usize {
    std::mem::size_of::<T>() + std::mem::size_of::<Idx>()
}
