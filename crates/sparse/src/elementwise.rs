//! Elementwise monoid operations on sparse matrices.
//!
//! Implements the paper's `A ⊕ B` (elementwise application of a
//! monoid operator to a pair of matrices, §2.2) plus the anchored
//! merge MFBr needs, and `Transform`-style in-structure updates
//! (§6.1's CTF `Transform`). The merges are row-parallel on the
//! [`mfbc_parallel::current`] pool: rows are split into nnz-balanced
//! contiguous ranges, each range merged by one task, and the chunks
//! concatenated in row order — bit-identical to the serial merge at
//! any thread count.

use crate::csr::{Csr, Idx};
use mfbc_algebra::monoid::Monoid;
use mfbc_parallel::balanced_ranges;

/// Below this total nnz the serial merge wins outright.
const PAR_MIN_NNZ: usize = 1 << 12;

/// Tasks created per pool participant (see `spgemm`).
const TASKS_PER_THREAD: usize = 4;

/// Concatenates per-range `(row lengths, colind, vals)` chunks, in
/// range order, into a CSR.
fn assemble_rows<T>(
    nrows: usize,
    ncols: usize,
    chunks: Vec<(Vec<usize>, Vec<Idx>, Vec<T>)>,
) -> Csr<T> {
    let mut rowptr = Vec::with_capacity(nrows + 1);
    rowptr.push(0usize);
    let nnz: usize = chunks.iter().map(|c| c.1.len()).sum();
    let mut colind = Vec::with_capacity(nnz);
    let mut vals = Vec::with_capacity(nnz);
    for (rowlen, ci, vs) in chunks {
        for len in rowlen {
            rowptr.push(rowptr.last().unwrap() + len);
        }
        colind.extend(ci);
        vals.extend(vs);
    }
    debug_assert_eq!(rowptr.len(), nrows + 1);
    Csr::from_parts(nrows, ncols, rowptr, colind, vals)
}

/// nnz-balanced row ranges for a two-operand row merge.
fn merge_ranges<A, B>(a: &Csr<A>, b: &Csr<B>, nparts: usize) -> Vec<std::ops::Range<usize>> {
    let weights: Vec<u64> = (0..a.nrows())
        .map(|i| 1 + (a.row_nnz(i) + b.row_nnz(i)) as u64)
        .collect();
    balanced_ranges(&weights, nparts)
}

fn combine_rows<M, T>(
    a: &Csr<T>,
    b: &Csr<T>,
    rows: std::ops::Range<usize>,
) -> (Vec<usize>, Vec<Idx>, Vec<T>)
where
    M: Monoid<Elem = T>,
    T: Clone + PartialEq + Send + Sync + std::fmt::Debug,
{
    let mut rowlen = Vec::with_capacity(rows.len());
    let mut colind: Vec<Idx> = Vec::new();
    let mut vals: Vec<T> = Vec::new();
    for i in rows {
        let (ac, av) = (a.row_cols(i), a.row_vals(i));
        let (bc, bv) = (b.row_cols(i), b.row_vals(i));
        let before = colind.len();
        let (mut x, mut y) = (0usize, 0usize);
        while x < ac.len() || y < bc.len() {
            let take_a = y >= bc.len() || (x < ac.len() && ac[x] < bc[y]);
            let take_b = x >= ac.len() || (y < bc.len() && bc[y] < ac[x]);
            let (col, val) = if take_a {
                let out = (ac[x], av[x].clone());
                x += 1;
                out
            } else if take_b {
                let out = (bc[y], bv[y].clone());
                y += 1;
                out
            } else {
                let out = (ac[x], M::combine(&av[x], &bv[y]));
                x += 1;
                y += 1;
                out
            };
            if !M::is_identity(&val) {
                colind.push(col);
                vals.push(val);
            }
        }
        rowlen.push(colind.len() - before);
    }
    (rowlen, colind, vals)
}

/// `C = A ⊕ B`: a sorted two-pointer merge of each row pair,
/// combining collisions with the monoid and pruning identities.
///
/// # Panics
/// Panics if the shapes disagree.
pub fn combine<M, T>(a: &Csr<T>, b: &Csr<T>) -> Csr<T>
where
    M: Monoid<Elem = T>,
    T: Clone + PartialEq + Send + Sync + std::fmt::Debug,
{
    assert_eq!(
        (a.nrows(), a.ncols()),
        (b.nrows(), b.ncols()),
        "elementwise combine shape mismatch"
    );
    let pool = mfbc_parallel::current();
    if pool.threads() == 1 || a.nnz() + b.nnz() < PAR_MIN_NNZ {
        let chunk = combine_rows::<M, T>(a, b, 0..a.nrows());
        return assemble_rows(a.nrows(), a.ncols(), vec![chunk]);
    }
    let ranges = merge_ranges(a, b, pool.threads() * TASKS_PER_THREAD);
    let chunks = pool.par_map_collect(ranges.len(), |t| {
        combine_rows::<M, T>(a, b, ranges[t].clone())
    });
    assemble_rows(a.nrows(), a.ncols(), chunks)
}

fn combine_anchored_rows<M, T>(
    base: &Csr<T>,
    update: &Csr<T>,
    rows: std::ops::Range<usize>,
) -> (Vec<usize>, Vec<Idx>, Vec<T>)
where
    M: Monoid<Elem = T>,
    T: Clone + PartialEq + Send + Sync + std::fmt::Debug,
{
    let mut rowlen = Vec::with_capacity(rows.len());
    let mut colind: Vec<Idx> = Vec::new();
    let mut patched: Vec<T> = Vec::new();
    for i in rows {
        let (bc, bv) = (base.row_cols(i), base.row_vals(i));
        let (uc, uv) = (update.row_cols(i), update.row_vals(i));
        let before = colind.len();
        let mut y = 0usize;
        for (x, &col) in bc.iter().enumerate() {
            while y < uc.len() && uc[y] < col {
                y += 1; // update entry outside base pattern: dropped
            }
            let mut v = bv[x].clone();
            if y < uc.len() && uc[y] == col {
                v = M::combine(&v, &uv[y]);
                y += 1;
            }
            colind.push(col);
            patched.push(v);
        }
        rowlen.push(colind.len() - before);
    }
    (rowlen, colind, patched)
}

/// Merges `update` into `base` *keeping base's sparsity pattern*: an
/// update entry at a position absent from `base` is dropped; matching
/// positions are combined with the monoid.
///
/// This is the "anchored" variant MFBr uses for `Z := Z ⊗ G̃`:
/// back-propagated contributions may land on (source, vertex) pairs
/// with no finite shortest path, where they are inert garbage — the
/// anchored merge discards them instead of storing them.
pub fn combine_anchored<M, T>(base: &Csr<T>, update: &Csr<T>) -> Csr<T>
where
    M: Monoid<Elem = T>,
    T: Clone + PartialEq + Send + Sync + std::fmt::Debug,
{
    assert_eq!(
        (base.nrows(), base.ncols()),
        (update.nrows(), update.ncols()),
        "anchored combine shape mismatch"
    );
    let pool = mfbc_parallel::current();
    if pool.threads() == 1 || base.nnz() + update.nnz() < PAR_MIN_NNZ {
        let chunk = combine_anchored_rows::<M, T>(base, update, 0..base.nrows());
        return assemble_rows(base.nrows(), base.ncols(), vec![chunk]);
    }
    let ranges = merge_ranges(base, update, pool.threads() * TASKS_PER_THREAD);
    let chunks = pool.par_map_collect(ranges.len(), |t| {
        combine_anchored_rows::<M, T>(base, update, ranges[t].clone())
    });
    assemble_rows(base.nrows(), base.ncols(), chunks)
}

/// In-structure value update (CTF `Transform`): applies `f` to every
/// stored entry, then prunes entries that became identities.
///
/// Serial by contract: `f` is `FnMut` (callers thread state through
/// it), so entries are visited in storage order on one thread.
pub fn transform<M, T>(m: &Csr<T>, mut f: impl FnMut(usize, usize, &T) -> T) -> Csr<T>
where
    M: Monoid<Elem = T>,
    T: Clone + PartialEq + Send + Sync + std::fmt::Debug,
{
    m.map(|i, j, v| f(i, j, v)).prune::<M>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;
    use mfbc_algebra::monoid::{MinDist, SumU64};
    use mfbc_algebra::Dist;

    fn m_u64(n: usize, c: usize, t: &[(usize, usize, u64)]) -> Csr<u64> {
        Coo::from_triples(n, c, t.iter().copied()).into_csr::<SumU64>()
    }

    #[test]
    fn disjoint_union() {
        let a = m_u64(2, 3, &[(0, 0, 1)]);
        let b = m_u64(2, 3, &[(1, 2, 5)]);
        let c = combine::<SumU64, _>(&a, &b);
        assert_eq!(c.nnz(), 2);
        assert_eq!(c.get(0, 0), Some(&1));
        assert_eq!(c.get(1, 2), Some(&5));
    }

    #[test]
    fn collisions_combined() {
        let a = m_u64(1, 2, &[(0, 0, 1), (0, 1, 2)]);
        let b = m_u64(1, 2, &[(0, 1, 3)]);
        let c = combine::<SumU64, _>(&a, &b);
        assert_eq!(c.get(0, 1), Some(&5));
    }

    #[test]
    fn min_combine_prunes_nothing_needed() {
        let a = Coo::from_triples(1, 2, vec![(0usize, 0usize, Dist::new(9))]).into_csr::<MinDist>();
        let b = Coo::from_triples(1, 2, vec![(0usize, 0usize, Dist::new(4))]).into_csr::<MinDist>();
        let c = combine::<MinDist, _>(&a, &b);
        assert_eq!(c.get(0, 0), Some(&Dist::new(4)));
    }

    #[test]
    fn anchored_merge_drops_foreign_positions() {
        let base = m_u64(1, 4, &[(0, 1, 10), (0, 3, 20)]);
        let upd = m_u64(1, 4, &[(0, 0, 5), (0, 1, 7), (0, 2, 9)]);
        let c = combine_anchored::<SumU64, _>(&base, &upd);
        assert_eq!(c.nnz(), 2);
        assert_eq!(c.get(0, 1), Some(&17));
        assert_eq!(c.get(0, 3), Some(&20));
        assert_eq!(c.get(0, 0), None);
        assert_eq!(c.get(0, 2), None);
    }

    #[test]
    fn combine_is_commutative_for_commutative_monoid() {
        let a = m_u64(2, 2, &[(0, 0, 1), (1, 1, 2)]);
        let b = m_u64(2, 2, &[(0, 0, 3), (1, 0, 4)]);
        assert_eq!(combine::<SumU64, _>(&a, &b), combine::<SumU64, _>(&b, &a));
    }

    #[test]
    fn transform_prunes_new_identities() {
        let a = m_u64(1, 3, &[(0, 0, 1), (0, 1, 2), (0, 2, 3)]);
        let t = transform::<SumU64, _>(&a, |_, _, v| if *v == 2 { 0 } else { *v });
        assert_eq!(t.nnz(), 2);
        assert_eq!(t.get(0, 1), None);
    }

    fn random_mat(seed: u64, n: usize, c: usize, nnz: usize) -> Csr<u64> {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let mut coo = Coo::new(n, c);
        for _ in 0..nnz {
            coo.push(
                rng.gen_range(0..n),
                rng.gen_range(0..c),
                rng.gen_range(1..99u64),
            );
        }
        coo.into_csr::<SumU64>()
    }

    #[test]
    fn parallel_combine_matches_serial_across_threads() {
        let a = random_mat(3, 220, 180, 3000);
        let b = random_mat(4, 220, 180, 3000);
        assert!(a.nnz() + b.nnz() >= PAR_MIN_NNZ);
        let reference = mfbc_parallel::with_threads(1, || combine::<SumU64, _>(&a, &b));
        let anchored_ref = mfbc_parallel::with_threads(1, || combine_anchored::<SumU64, _>(&a, &b));
        for threads in [2, 4, 8] {
            let (c, ca) = mfbc_parallel::with_threads(threads, || {
                (
                    combine::<SumU64, _>(&a, &b),
                    combine_anchored::<SumU64, _>(&a, &b),
                )
            });
            assert_eq!(reference, c, "combine differs at {threads} threads");
            assert_eq!(anchored_ref, ca, "anchored differs at {threads} threads");
        }
    }
}
