//! Sub-matrix extraction — the analogue of CTF's `Tensor::slice()`
//! (§6.1), used to cut adjacency blocks for distribution and to pull
//! source-vertex batches out of frontier matrices.

use crate::csr::{Csr, Idx};
use std::ops::Range;

/// Extracts the sub-matrix `a[rows, cols]`, reindexed to start at
/// `(0, 0)`.
///
/// # Panics
/// Panics if a range end exceeds the matrix shape.
pub fn slice<T: Clone>(a: &Csr<T>, rows: Range<usize>, cols: Range<usize>) -> Csr<T> {
    assert!(
        rows.end <= a.nrows() && cols.end <= a.ncols(),
        "slice out of bounds"
    );
    let nrows = rows.len();
    let ncols = cols.len();
    let mut rowptr = Vec::with_capacity(nrows + 1);
    rowptr.push(0usize);
    let mut colind: Vec<Idx> = Vec::new();
    let mut vals: Vec<T> = Vec::new();
    for i in rows {
        let rc = a.row_cols(i);
        let rv = a.row_vals(i);
        // Binary search the column window within the sorted row.
        let lo = rc.partition_point(|&c| (c as usize) < cols.start);
        let hi = rc.partition_point(|&c| (c as usize) < cols.end);
        for k in lo..hi {
            colind.push(rc[k] - cols.start as Idx);
            vals.push(rv[k].clone());
        }
        rowptr.push(colind.len());
    }
    Csr::from_parts(nrows, ncols, rowptr, colind, vals)
}

/// Extracts full rows `rows`, reindexed to start at row 0.
pub fn slice_rows<T: Clone>(a: &Csr<T>, rows: Range<usize>) -> Csr<T> {
    slice(a, rows, 0..a.ncols())
}

/// Extracts full columns `cols`, reindexed to start at column 0.
pub fn slice_cols<T: Clone>(a: &Csr<T>, cols: Range<usize>) -> Csr<T> {
    slice(a, 0..a.nrows(), cols)
}

/// Splits `0..n` into `parts` contiguous chunks whose sizes differ by
/// at most one — the even block decomposition every distribution in
/// this workspace uses.
pub fn even_ranges(n: usize, parts: usize) -> Vec<Range<usize>> {
    assert!(parts > 0, "cannot split into zero parts");
    let base = n / parts;
    let extra = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0usize;
    for k in 0..parts {
        let len = base + usize::from(k < extra);
        out.push(start..start + len);
        start += len;
    }
    debug_assert_eq!(start, n);
    out
}

/// Pastes `parts` vertically (all must share `ncols`); inverse of
/// row-slicing along [`even_ranges`].
pub fn vstack<T: Clone>(parts: &[Csr<T>]) -> Csr<T> {
    assert!(!parts.is_empty(), "vstack of nothing");
    let ncols = parts[0].ncols();
    let nrows: usize = parts.iter().map(Csr::nrows).sum();
    let nnz: usize = parts.iter().map(Csr::nnz).sum();
    let mut rowptr = Vec::with_capacity(nrows + 1);
    rowptr.push(0usize);
    let mut colind: Vec<Idx> = Vec::with_capacity(nnz);
    let mut vals: Vec<T> = Vec::with_capacity(nnz);
    for p in parts {
        assert_eq!(p.ncols(), ncols, "vstack column mismatch");
        for i in 0..p.nrows() {
            for (j, v) in p.row(i) {
                colind.push(j as Idx);
                vals.push(v.clone());
            }
            rowptr.push(colind.len());
        }
    }
    Csr::from_parts(nrows, ncols, rowptr, colind, vals)
}

/// Pastes `parts` horizontally (all must share `nrows`); inverse of
/// column-slicing along [`even_ranges`].
pub fn hstack<T: Clone>(parts: &[Csr<T>]) -> Csr<T> {
    assert!(!parts.is_empty(), "hstack of nothing");
    let nrows = parts[0].nrows();
    let ncols: usize = parts.iter().map(Csr::ncols).sum();
    let nnz: usize = parts.iter().map(Csr::nnz).sum();
    let mut rowptr = Vec::with_capacity(nrows + 1);
    rowptr.push(0usize);
    let mut colind: Vec<Idx> = Vec::with_capacity(nnz);
    let mut vals: Vec<T> = Vec::with_capacity(nnz);
    for i in 0..nrows {
        let mut offset = 0usize;
        for p in parts {
            assert_eq!(p.nrows(), nrows, "hstack row mismatch");
            for (j, v) in p.row(i) {
                colind.push((j + offset) as Idx);
                vals.push(v.clone());
            }
            offset += p.ncols();
        }
        rowptr.push(colind.len());
    }
    Csr::from_parts(nrows, ncols, rowptr, colind, vals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;
    use mfbc_algebra::monoid::SumU64;

    fn m(n: usize, c: usize, t: &[(usize, usize, u64)]) -> Csr<u64> {
        Coo::from_triples(n, c, t.iter().copied()).into_csr::<SumU64>()
    }

    fn sample() -> Csr<u64> {
        m(
            4,
            4,
            &[
                (0, 0, 1),
                (0, 3, 2),
                (1, 1, 3),
                (2, 0, 4),
                (2, 2, 5),
                (3, 3, 6),
            ],
        )
    }

    #[test]
    fn slice_center_block() {
        let s = slice(&sample(), 1..3, 1..3);
        assert_eq!((s.nrows(), s.ncols()), (2, 2));
        assert_eq!(s.get(0, 0), Some(&3)); // was (1,1)
        assert_eq!(s.get(1, 1), Some(&5)); // was (2,2)
        assert_eq!(s.nnz(), 2);
    }

    #[test]
    fn slice_rows_and_cols() {
        let s = slice_rows(&sample(), 2..4);
        assert_eq!(s.nnz(), 3);
        assert_eq!(s.get(0, 0), Some(&4));
        let s = slice_cols(&sample(), 3..4);
        assert_eq!(s.nnz(), 2);
        assert_eq!(s.get(0, 0), Some(&2));
        assert_eq!(s.get(3, 0), Some(&6));
    }

    #[test]
    fn empty_slice() {
        let s = slice(&sample(), 1..1, 0..4);
        assert_eq!((s.nrows(), s.nnz()), (0, 0));
    }

    #[test]
    fn even_ranges_cover_exactly() {
        for n in [0usize, 1, 7, 16, 100] {
            for p in [1usize, 2, 3, 7, 16] {
                let rs = even_ranges(n, p);
                assert_eq!(rs.len(), p);
                assert_eq!(rs.iter().map(|r| r.len()).sum::<usize>(), n);
                let mut prev = 0;
                for r in &rs {
                    assert_eq!(r.start, prev);
                    prev = r.end;
                }
                let sizes: Vec<_> = rs.iter().map(|r| r.len()).collect();
                let (mn, mx) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                assert!(mx - mn <= 1);
            }
        }
    }

    #[test]
    fn vstack_inverts_row_slicing() {
        let a = sample();
        let parts: Vec<_> = even_ranges(a.nrows(), 3)
            .into_iter()
            .map(|r| slice_rows(&a, r))
            .collect();
        assert_eq!(vstack(&parts), a);
    }

    #[test]
    fn hstack_inverts_col_slicing() {
        let a = sample();
        let parts: Vec<_> = even_ranges(a.ncols(), 3)
            .into_iter()
            .map(|r| slice_cols(&a, r))
            .collect();
        assert_eq!(hstack(&parts), a);
    }
}
