//! Generalized sparse × sparse matrix multiplication.
//!
//! Computes `C(i,j) = ⊕_k f(A(i,k), B(k,j))` for an arbitrary
//! [`SpMulKernel`] — the `•⟨⊕,f⟩` operator of §3 of the paper — using
//! Gustavson's row-wise algorithm with a dense sparse-accumulator
//! (SPA). This is the open replacement for the MKL SpGEMM variants
//! the paper's implementation calls for blockwise products (§6.2).
//!
//! Besides the output matrix, the multiplication reports the number
//! of *nonzero products* formed — `ops(A, B)` in the paper's §5
//! notation — which the cost model and the TEPS accounting both
//! consume.

use crate::csr::{Csr, Idx};
use crate::mask::{Mask, MaskKind};
use mfbc_algebra::kernel::KernelOut;
use mfbc_algebra::monoid::Monoid;
use mfbc_algebra::SpMulKernel;
use mfbc_parallel::balanced_ranges;

/// Result of a generalized SpGEMM: the product matrix plus the
/// `ops(A, B)` work counter.
#[derive(Clone, Debug)]
pub struct SpGemmOut<T> {
    /// The product `C = A •⟨⊕,f⟩ B`, pruned of monoid identities.
    pub mat: Csr<T>,
    /// Number of non-annihilated elementary products `f(a, b)` formed
    /// (`ops(A,B)` in §5.1).
    pub ops: u64,
}

/// Dense sparse-accumulator for one output row.
///
/// `stamp[j] == row_tag` marks column `j` as touched in the current
/// row; values are lazily reset by overwrite-on-first-touch, so the
/// per-row cost is proportional to the row's flops, not to `ncols`.
struct Spa<T> {
    stamp: Vec<u64>,
    vals: Vec<T>,
    touched: Vec<Idx>,
    tag: u64,
}

impl<T: Clone> Spa<T> {
    fn new(ncols: usize, fill: T) -> Spa<T> {
        Spa {
            stamp: vec![0; ncols],
            vals: vec![fill; ncols],
            touched: Vec::new(),
            tag: 0,
        }
    }

    #[inline]
    fn begin_row(&mut self) {
        self.tag += 1;
        self.touched.clear();
    }

    #[inline]
    fn accumulate<M: Monoid<Elem = T>>(&mut self, j: usize, v: T) {
        if self.stamp[j] == self.tag {
            M::fold_into(&mut self.vals[j], &v);
        } else {
            self.stamp[j] = self.tag;
            self.vals[j] = v;
            self.touched.push(j as Idx);
        }
    }

    /// Emits the touched entries in column order, skipping identities.
    fn drain_into<M: Monoid<Elem = T>>(&mut self, colind: &mut Vec<Idx>, vals: &mut Vec<T>) {
        self.touched.sort_unstable();
        for &j in &self.touched {
            let v = &self.vals[j as usize];
            if !M::is_identity(v) {
                colind.push(j);
                vals.push(v.clone());
            }
        }
    }
}

fn multiply_rows<K: SpMulKernel>(
    a: &Csr<K::Left>,
    b: &Csr<K::Right>,
    rows: std::ops::Range<usize>,
    spa: &mut Spa<KernelOut<K>>,
) -> (Vec<usize>, Vec<Idx>, Vec<KernelOut<K>>, u64) {
    let mut rowlen = Vec::with_capacity(rows.len());
    let mut colind = Vec::new();
    let mut vals = Vec::new();
    let mut ops = 0u64;
    for i in rows {
        spa.begin_row();
        for (k, av) in a.row(i) {
            for (j, bv) in b.row(k) {
                if let Some(c) = K::mul(av, bv) {
                    ops += 1;
                    spa.accumulate::<K::Acc>(j, c);
                }
            }
        }
        let before = colind.len();
        spa.drain_into::<K::Acc>(&mut colind, &mut vals);
        rowlen.push(colind.len() - before);
    }
    (rowlen, colind, vals, ops)
}

/// Per-row mask marker, the mask-side analogue of [`Spa`]: the
/// current row's pattern columns are stamped with a row tag, so
/// allowed-column checks are O(1) per product and per-row setup costs
/// only the pattern row's length.
struct MaskStamp {
    stamp: Vec<u64>,
    tag: u64,
}

impl MaskStamp {
    fn new(ncols: usize) -> MaskStamp {
        MaskStamp {
            stamp: vec![0; ncols],
            tag: 0,
        }
    }

    #[inline]
    fn begin_row(&mut self, pattern_cols: &[Idx]) {
        self.tag += 1;
        for &j in pattern_cols {
            self.stamp[j as usize] = self.tag;
        }
    }

    #[inline]
    fn in_pattern(&self, j: usize) -> bool {
        self.stamp[j] == self.tag
    }
}

/// Masked [`multiply_rows`]: elementary products whose output column
/// the mask excludes are skipped before `f` is applied — they neither
/// accumulate nor count toward `ops`. A structural mask with an empty
/// pattern row skips that output row outright.
fn multiply_rows_masked<K: SpMulKernel>(
    a: &Csr<K::Left>,
    b: &Csr<K::Right>,
    mask: &Mask,
    rows: std::ops::Range<usize>,
    spa: &mut Spa<KernelOut<K>>,
    ms: &mut MaskStamp,
) -> (Vec<usize>, Vec<Idx>, Vec<KernelOut<K>>, u64) {
    let structural = mask.kind() == MaskKind::Structural;
    let mut rowlen = Vec::with_capacity(rows.len());
    let mut colind = Vec::new();
    let mut vals = Vec::new();
    let mut ops = 0u64;
    for i in rows {
        let pattern = mask.row_cols(i);
        if structural && pattern.is_empty() {
            rowlen.push(0);
            continue;
        }
        ms.begin_row(pattern);
        spa.begin_row();
        for (k, av) in a.row(i) {
            for (j, bv) in b.row(k) {
                if ms.in_pattern(j) != structural {
                    continue;
                }
                if let Some(c) = K::mul(av, bv) {
                    ops += 1;
                    spa.accumulate::<K::Acc>(j, c);
                }
            }
        }
        let before = colind.len();
        spa.drain_into::<K::Acc>(&mut colind, &mut vals);
        rowlen.push(colind.len() - before);
    }
    (rowlen, colind, vals, ops)
}

fn assemble<K: SpMulKernel>(
    nrows: usize,
    ncols: usize,
    chunks: Vec<(Vec<usize>, Vec<Idx>, Vec<KernelOut<K>>, u64)>,
) -> SpGemmOut<KernelOut<K>> {
    let mut rowptr = Vec::with_capacity(nrows + 1);
    rowptr.push(0usize);
    let nnz: usize = chunks.iter().map(|c| c.1.len()).sum();
    let mut colind = Vec::with_capacity(nnz);
    let mut vals = Vec::with_capacity(nnz);
    let mut ops = 0u64;
    for (rowlen, ci, vs, o) in chunks {
        for len in rowlen {
            rowptr.push(rowptr.last().unwrap() + len);
        }
        colind.extend(ci);
        vals.extend(vs);
        ops += o;
    }
    debug_assert_eq!(rowptr.len(), nrows + 1);
    SpGemmOut {
        mat: Csr::from_parts(nrows, ncols, rowptr, colind, vals),
        ops,
    }
}

/// Sequential generalized SpGEMM (row-wise Gustavson).
///
/// # Panics
/// Panics if the inner dimensions disagree.
pub fn spgemm_serial<K: SpMulKernel>(
    a: &Csr<K::Left>,
    b: &Csr<K::Right>,
) -> SpGemmOut<KernelOut<K>> {
    assert_eq!(
        a.ncols(),
        b.nrows(),
        "spgemm inner dimension mismatch: {}x{} by {}x{}",
        a.nrows(),
        a.ncols(),
        b.nrows(),
        b.ncols()
    );
    let mut spa = Spa::new(b.ncols(), <K::Acc as Monoid>::identity());
    let chunk = multiply_rows::<K>(a, b, 0..a.nrows(), &mut spa);
    assemble::<K>(a.nrows(), b.ncols(), vec![chunk])
}

/// Checks operand and mask shapes for a masked multiplication.
fn check_mask_shapes<L, R>(a: &Csr<L>, b: &Csr<R>, mask: &Mask) {
    assert_eq!(
        a.ncols(),
        b.nrows(),
        "spgemm inner dimension mismatch: {}x{} by {}x{}",
        a.nrows(),
        a.ncols(),
        b.nrows(),
        b.ncols()
    );
    assert_eq!(
        (mask.nrows(), mask.ncols()),
        (a.nrows(), b.ncols()),
        "mask shape {}x{} does not match output shape {}x{}",
        mask.nrows(),
        mask.ncols(),
        a.nrows(),
        b.ncols()
    );
}

/// Sequential masked SpGEMM: like [`spgemm_serial`] but elementary
/// products whose output coordinate `mask` excludes are skipped
/// before they are formed (not accumulated, not counted in `ops`).
///
/// # Panics
/// Panics if the inner dimensions disagree or the mask shape differs
/// from the output shape.
pub fn spgemm_masked_serial<K: SpMulKernel>(
    a: &Csr<K::Left>,
    b: &Csr<K::Right>,
    mask: &Mask,
) -> SpGemmOut<KernelOut<K>> {
    check_mask_shapes(a, b, mask);
    let mut spa = Spa::new(b.ncols(), <K::Acc as Monoid>::identity());
    let mut ms = MaskStamp::new(b.ncols());
    let chunk = multiply_rows_masked::<K>(a, b, mask, 0..a.nrows(), &mut spa, &mut ms);
    assemble::<K>(a.nrows(), b.ncols(), vec![chunk])
}

/// Minimum row count before the parallel SpGEMM fans out; below this
/// the sequential kernel is used outright, avoiding pool latency on
/// tiny products.
const PAR_MIN_ROWS: usize = 32;

/// Tasks created per pool participant. Oversubscription lets the
/// work-stealing cursor absorb the error between the flops *estimate*
/// (every elementary product counted) and the true per-row cost.
const TASKS_PER_THREAD: usize = 4;

/// Per-row flops upper bound: `1 + Σ_{k ∈ A.row(i)} nnz(B.row(k))`.
/// The constant keeps empty rows from collapsing a range to zero
/// weight, so partitions stay contiguous and non-degenerate.
fn flops_weights<L, R>(a: &Csr<L>, b: &Csr<R>) -> Vec<u64> {
    (0..a.nrows())
        .map(|i| {
            1 + a
                .row_cols(i)
                .iter()
                .map(|&k| b.row_nnz(k as usize) as u64)
                .sum::<u64>()
        })
        .collect()
}

/// Row-parallel generalized SpGEMM on the `mfbc-parallel` pool
/// ([`mfbc_parallel::current`]), with flops-balanced row partitioning
/// and one reusable SPA per pool participant.
///
/// Deterministic: each output row is produced by exactly one task,
/// chunks are assembled in row order, and every accumulation happens
/// in ascending-`k` order within a row — so the result (entries *and*
/// the `ops` counter) is bit-identical to [`spgemm_serial`] at any
/// thread count, even for non-commutative payload effects like `f64`
/// summation order.
pub fn spgemm<K: SpMulKernel>(a: &Csr<K::Left>, b: &Csr<K::Right>) -> SpGemmOut<KernelOut<K>> {
    assert_eq!(
        a.ncols(),
        b.nrows(),
        "spgemm inner dimension mismatch: {}x{} by {}x{}",
        a.nrows(),
        a.ncols(),
        b.nrows(),
        b.ncols()
    );
    let nrows = a.nrows();
    let pool = mfbc_parallel::current();
    if pool.threads() == 1 || nrows < PAR_MIN_ROWS {
        return spgemm_serial::<K>(a, b);
    }
    let weights = flops_weights(a, b);
    let ranges = balanced_ranges(&weights, pool.threads() * TASKS_PER_THREAD);
    let (chunks, stats) = pool.par_ranges_scratch(
        &ranges,
        || Spa::new(b.ncols(), <K::Acc as Monoid>::identity()),
        |spa, rows| multiply_rows::<K>(a, b, rows, spa),
    );
    mfbc_trace::emit(|| mfbc_trace::TraceEvent::Pool {
        kernel: "spgemm",
        threads: stats.threads,
        tasks: stats.tasks,
        busy_us: stats.busy.iter().map(|d| d.as_micros() as u64).collect(),
        chunk_hist: chunk_histogram(ranges.iter().map(|r| r.len())),
    });
    assemble::<K>(nrows, b.ncols(), chunks)
}

/// Row-parallel masked SpGEMM. Same determinism contract as
/// [`spgemm`]: results (entries *and* `ops`) are bit-identical to
/// [`spgemm_masked_serial`] at any thread count. Row partitioning
/// reuses the unmasked flops weights — a valid upper bound per row,
/// and identical partitions keep the trace stream stable whether or
/// not a mask is present.
pub fn spgemm_masked<K: SpMulKernel>(
    a: &Csr<K::Left>,
    b: &Csr<K::Right>,
    mask: &Mask,
) -> SpGemmOut<KernelOut<K>> {
    check_mask_shapes(a, b, mask);
    let nrows = a.nrows();
    let pool = mfbc_parallel::current();
    if pool.threads() == 1 || nrows < PAR_MIN_ROWS {
        return spgemm_masked_serial::<K>(a, b, mask);
    }
    let weights = flops_weights(a, b);
    let ranges = balanced_ranges(&weights, pool.threads() * TASKS_PER_THREAD);
    let (chunks, stats) = pool.par_ranges_scratch(
        &ranges,
        || {
            (
                Spa::new(b.ncols(), <K::Acc as Monoid>::identity()),
                MaskStamp::new(b.ncols()),
            )
        },
        |(spa, ms), rows| multiply_rows_masked::<K>(a, b, mask, rows, spa, ms),
    );
    mfbc_trace::emit(|| mfbc_trace::TraceEvent::Pool {
        kernel: "spgemm",
        threads: stats.threads,
        tasks: stats.tasks,
        busy_us: stats.busy.iter().map(|d| d.as_micros() as u64).collect(),
        chunk_hist: chunk_histogram(ranges.iter().map(|r| r.len())),
    });
    assemble::<K>(nrows, b.ncols(), chunks)
}

/// Dispatches to the masked or unmasked parallel kernel — the form
/// the distributed multiplication layers call with their per-block
/// mask windows.
pub fn spgemm_opt<K: SpMulKernel>(
    a: &Csr<K::Left>,
    b: &Csr<K::Right>,
    mask: Option<&Mask>,
) -> SpGemmOut<KernelOut<K>> {
    match mask {
        Some(m) => spgemm_masked::<K>(a, b, m),
        None => spgemm::<K>(a, b),
    }
}

/// Log2-bucketed size histogram: slot `b` counts chunks whose size
/// lies in `[2^b, 2^{b+1})`.
pub(crate) fn chunk_histogram(sizes: impl Iterator<Item = usize>) -> Vec<u64> {
    let mut hist: Vec<u64> = Vec::new();
    for size in sizes {
        let bucket = usize::BITS as usize - 1 - size.max(1).leading_zeros() as usize;
        if hist.len() <= bucket {
            hist.resize(bucket + 1, 0);
        }
        hist[bucket] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;
    use mfbc_algebra::kernel::{BellmanFordKernel, TropicalKernel};
    use mfbc_algebra::monoid::MinDist;
    use mfbc_algebra::{Dist, Multpath, MultpathMonoid};

    fn dist_mat(n: usize, m: usize, triples: &[(usize, usize, u64)]) -> Csr<Dist> {
        Coo::from_triples(n, m, triples.iter().map(|&(i, j, w)| (i, j, Dist::new(w))))
            .into_csr::<MinDist>()
    }

    #[test]
    fn tropical_identity_multiplication() {
        // I (0 on diagonal) times A equals A under min-plus.
        let a = dist_mat(3, 3, &[(0, 1, 4), (1, 2, 7), (2, 0, 1)]);
        let eye = dist_mat(3, 3, &[(0, 0, 0), (1, 1, 0), (2, 2, 0)]);
        let c = spgemm_serial::<TropicalKernel>(&eye, &a);
        assert_eq!(c.mat, a);
        assert_eq!(c.ops, 3);
    }

    #[test]
    fn tropical_two_hop_paths() {
        // Path graph 0 -> 1 -> 2 with weights 4, 7: A² gives 0->2 = 11.
        let a = dist_mat(3, 3, &[(0, 1, 4), (1, 2, 7)]);
        let c = spgemm_serial::<TropicalKernel>(&a, &a).mat;
        assert_eq!(c.nnz(), 1);
        assert_eq!(c.get(0, 2), Some(&Dist::new(11)));
    }

    #[test]
    fn min_accumulation_picks_shortest() {
        // Two 2-hop routes 0->2: via 1 (3+9=12) and via 3 (5+2=7).
        let a = dist_mat(4, 4, &[(0, 1, 3), (1, 2, 9), (0, 3, 5), (3, 2, 2)]);
        let c = spgemm_serial::<TropicalKernel>(&a, &a).mat;
        assert_eq!(c.get(0, 2), Some(&Dist::new(7)));
    }

    #[test]
    fn multpath_product_sums_tied_multiplicities() {
        // Frontier holds source 0 at vertices 1 and 3, both multpath
        // weight 1; both reach vertex 2 with total weight 3 -> m = 2.
        let f = Coo::from_triples(
            1,
            4,
            vec![
                (0usize, 1usize, Multpath::new(Dist::new(1), 1.0)),
                (0, 3, Multpath::new(Dist::new(1), 1.0)),
            ],
        )
        .into_csr::<MultpathMonoid>();
        let a = dist_mat(4, 4, &[(1, 2, 2), (3, 2, 2)]);
        let g = spgemm_serial::<BellmanFordKernel>(&f, &a);
        assert_eq!(g.mat.get(0, 2), Some(&Multpath::new(Dist::new(3), 2.0)));
        assert_eq!(g.ops, 2);
    }

    #[test]
    fn empty_operands() {
        let a = Csr::<Dist>::zero(3, 4);
        let b = Csr::<Dist>::zero(4, 2);
        let c = spgemm_serial::<TropicalKernel>(&a, &b);
        assert_eq!(c.mat.nnz(), 0);
        assert_eq!(c.ops, 0);
        assert_eq!((c.mat.nrows(), c.mat.ncols()), (3, 2));
    }

    #[test]
    #[should_panic]
    fn dimension_mismatch_panics() {
        let a = Csr::<Dist>::zero(3, 4);
        let b = Csr::<Dist>::zero(5, 2);
        let _ = spgemm_serial::<TropicalKernel>(&a, &b);
    }

    #[test]
    fn parallel_matches_serial_on_larger_random() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(42);
        let n = 200;
        let mut coo = Coo::new(n, n);
        for _ in 0..4000 {
            let i = rng.gen_range(0..n);
            let j = rng.gen_range(0..n);
            coo.push(i, j, Dist::new(rng.gen_range(1..100)));
        }
        let a = coo.into_csr::<MinDist>();
        let s = spgemm_serial::<TropicalKernel>(&a, &a);
        let p = spgemm::<TropicalKernel>(&a, &a);
        assert_eq!(s.mat, p.mat);
        assert_eq!(s.ops, p.ops);
        assert!(s.ops > 0);
    }

    #[test]
    fn parallel_bit_identical_across_thread_counts() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        let n = 150;
        let mut coo = Coo::new(n, n);
        for _ in 0..3000 {
            let i = rng.gen_range(0..n);
            let j = rng.gen_range(0..n);
            coo.push(i, j, Dist::new(rng.gen_range(1..50)));
        }
        let a = coo.into_csr::<MinDist>();
        let reference = spgemm_serial::<TropicalKernel>(&a, &a);
        for threads in [1, 2, 4, 8] {
            let p = mfbc_parallel::with_threads(threads, || spgemm::<TropicalKernel>(&a, &a));
            assert_eq!(reference.mat, p.mat, "entries differ at {threads} threads");
            assert_eq!(reference.ops, p.ops, "ops differ at {threads} threads");
        }
    }

    #[test]
    fn structural_mask_skips_products_and_ops() {
        use crate::mask::{Mask, MaskKind};
        // Two 2-hop routes 0->2 plus a route 0->? : mask keeps only
        // (0,2), so the products into other columns are never formed.
        let a = dist_mat(
            4,
            4,
            &[(0, 1, 3), (1, 2, 9), (0, 3, 5), (3, 2, 2), (1, 1, 1)],
        );
        let unmasked = spgemm_serial::<TropicalKernel>(&a, &a);
        let mask = Mask::from_coords(MaskKind::Structural, 4, 4, &[(0, 2)]);
        let masked = spgemm_masked_serial::<TropicalKernel>(&a, &a, &mask);
        assert_eq!(masked.mat.nnz(), 1);
        assert_eq!(masked.mat.get(0, 2), Some(&Dist::new(7)));
        assert!(masked.ops < unmasked.ops, "mask must drop ops");
        // Kept entries are bit-identical to the unmasked product.
        assert_eq!(masked.mat.get(0, 2), unmasked.mat.get(0, 2));
    }

    #[test]
    fn complement_mask_excludes_pattern_coords() {
        use crate::mask::Mask;
        let a = dist_mat(4, 4, &[(0, 1, 3), (1, 2, 9), (0, 3, 5), (3, 2, 2)]);
        let unmasked = spgemm_serial::<TropicalKernel>(&a, &a);
        let mask = Mask::complement_of(&unmasked.mat);
        let masked = spgemm_masked_serial::<TropicalKernel>(&a, &a, &mask);
        assert_eq!(masked.mat.nnz(), 0);
        assert_eq!(masked.ops, 0);
    }

    #[test]
    fn masked_parallel_bit_identical_to_masked_serial() {
        use crate::mask::{Mask, MaskKind};
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(11);
        let n = 150;
        let mut coo = Coo::new(n, n);
        for _ in 0..3000 {
            coo.push(
                rng.gen_range(0..n),
                rng.gen_range(0..n),
                Dist::new(rng.gen_range(1..50)),
            );
        }
        let a = coo.into_csr::<MinDist>();
        let pattern: Vec<(usize, usize)> = (0..n * 4)
            .map(|_| (rng.gen_range(0..n), rng.gen_range(0..n)))
            .collect();
        for kind in [MaskKind::Structural, MaskKind::Complement] {
            let mask = Mask::from_coords(kind, n, n, &pattern);
            let reference = spgemm_masked_serial::<TropicalKernel>(&a, &a, &mask);
            for threads in [1, 2, 4, 8] {
                let p = mfbc_parallel::with_threads(threads, || {
                    spgemm_masked::<TropicalKernel>(&a, &a, &mask)
                });
                assert_eq!(
                    reference.mat, p.mat,
                    "{kind:?} entries at {threads} threads"
                );
                assert_eq!(reference.ops, p.ops, "{kind:?} ops at {threads} threads");
            }
        }
    }

    #[test]
    fn flops_weights_count_elementary_products() {
        // A row's weight is 1 + the number of products it forms.
        let a = dist_mat(3, 3, &[(0, 1, 4), (0, 2, 1), (1, 2, 7)]);
        let w = flops_weights(&a, &a);
        // Row 0 hits rows 1 (nnz 1) and 2 (nnz 0); row 1 hits row 2.
        assert_eq!(w, vec![2, 1, 1]);
    }

    #[test]
    fn chunk_histogram_buckets_by_log2() {
        let h = chunk_histogram([1usize, 1, 2, 3, 4, 9].into_iter());
        assert_eq!(h, vec![2, 2, 1, 1]);
        assert!(chunk_histogram(std::iter::empty()).is_empty());
    }
}
