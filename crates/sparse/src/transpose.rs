//! Sparse transposition.
//!
//! MFBr multiplies frontiers by `Aᵀ` (Algorithm 2); the distributed
//! layer also transposes blocks during redistribution. The counting
//! transpose below is the standard O(nnz + n) bucket pass; the
//! parallel variant splits the *input* rows into nnz-balanced ranges,
//! counts per-task, prefix-sums the per-task counts into disjoint
//! output cursors, and scatters concurrently — task ranges land in
//! ascending-row order inside every output row, so the result is
//! bit-identical to the serial pass.

use crate::csr::{Csr, Idx};
use mfbc_parallel::{balanced_ranges, ScatterVec};

/// Below this nnz the serial transpose wins outright; the parallel
/// path pays two passes plus an O(threads × ncols) cursor table.
const PAR_MIN_NNZ: usize = 1 << 12;

fn transpose_serial<T: Clone>(a: &Csr<T>) -> Csr<T> {
    let (n, m) = (a.nrows(), a.ncols());
    // Count entries per output row (= input column).
    let mut counts = vec![0usize; m + 1];
    for i in 0..n {
        for &j in a.row_cols(i) {
            counts[j as usize + 1] += 1;
        }
    }
    for j in 0..m {
        counts[j + 1] += counts[j];
    }
    let rowptr = counts.clone();
    let nnz = a.nnz();
    let mut colind: Vec<Idx> = vec![0; nnz];
    let mut vals: Vec<Option<T>> = vec![None; nnz];
    let mut cursor = counts;
    for i in 0..n {
        for (j, v) in a.row(i) {
            let slot = cursor[j];
            cursor[j] += 1;
            colind[slot] = i as Idx;
            vals[slot] = Some(v.clone());
        }
    }
    let vals: Vec<T> = vals
        .into_iter()
        .map(|v| v.expect("every slot written exactly once"))
        .collect();
    Csr::from_parts(m, n, rowptr, colind, vals)
}

/// Returns `Aᵀ` with rows sorted (a structural invariant of [`Csr`]),
/// in parallel on the [`mfbc_parallel::current`] pool for large
/// inputs. Deterministic: identical to the serial pass at any thread
/// count.
#[allow(unsafe_code)] // disjoint scatter writes via ScatterVec; see SAFETY below
pub fn transpose<T: Clone + Send + Sync>(a: &Csr<T>) -> Csr<T> {
    let pool = mfbc_parallel::current();
    if pool.threads() == 1 || a.nnz() < PAR_MIN_NNZ {
        return transpose_serial(a);
    }
    let (n, m) = (a.nrows(), a.ncols());
    let weights: Vec<u64> = (0..n).map(|i| 1 + a.row_nnz(i) as u64).collect();
    let ranges = balanced_ranges(&weights, pool.threads());

    // Pass 1 (parallel): per-task counts per output row.
    let task_counts: Vec<Vec<usize>> = pool.par_map_collect(ranges.len(), |t| {
        let mut counts = vec![0usize; m];
        for i in ranges[t].clone() {
            for &j in a.row_cols(i) {
                counts[j as usize] += 1;
            }
        }
        counts
    });

    // Serial: global rowptr, then one start-cursor table per task so
    // task `t`'s slots in output row `j` sit directly after task
    // `t-1`'s — disjoint by construction, ascending by source row.
    let mut rowptr = vec![0usize; m + 1];
    for counts in &task_counts {
        for (j, c) in counts.iter().enumerate() {
            rowptr[j + 1] += c;
        }
    }
    for j in 0..m {
        rowptr[j + 1] += rowptr[j];
    }
    let mut starts: Vec<Vec<usize>> = Vec::with_capacity(task_counts.len());
    let mut cursor = rowptr[..m].to_vec();
    for counts in &task_counts {
        starts.push(cursor.clone());
        for (j, c) in counts.iter().enumerate() {
            cursor[j] += c;
        }
    }

    // Pass 2 (parallel): scatter into disjoint slots.
    let nnz = a.nnz();
    let colind: ScatterVec<Idx> = ScatterVec::from_vec(vec![0; nnz]);
    let vals: ScatterVec<Option<T>> = ScatterVec::from_vec(vec![None; nnz]);
    pool.par_map_collect(ranges.len(), |t| {
        let mut cur = starts[t].clone();
        for i in ranges[t].clone() {
            for (j, v) in a.row(i) {
                let slot = cur[j];
                cur[j] += 1;
                // SAFETY: task `t` writes exactly the slots
                // `starts[t][j] .. starts[t][j] + task_counts[t][j]`
                // per output row `j`; consecutive tasks' intervals
                // abut without overlap, every slot is written exactly
                // once, and the pool call below blocks until all
                // writes completed before `into_vec` reads them.
                unsafe {
                    colind.write(slot, i as Idx);
                    vals.write(slot, Some(v.clone()));
                }
            }
        }
    });
    let vals: Vec<T> = vals
        .into_vec()
        .into_iter()
        .map(|v| v.expect("every slot written exactly once"))
        .collect();
    Csr::from_parts(m, n, rowptr, colind.into_vec(), vals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;
    use mfbc_algebra::monoid::SumU64;

    fn m(n: usize, c: usize, t: &[(usize, usize, u64)]) -> Csr<u64> {
        Coo::from_triples(n, c, t.iter().copied()).into_csr::<SumU64>()
    }

    #[test]
    fn transpose_rectangular() {
        let a = m(2, 3, &[(0, 0, 1), (0, 2, 2), (1, 1, 3)]);
        let t = transpose(&a);
        assert_eq!((t.nrows(), t.ncols()), (3, 2));
        assert_eq!(t.get(0, 0), Some(&1));
        assert_eq!(t.get(2, 0), Some(&2));
        assert_eq!(t.get(1, 1), Some(&3));
        assert!(t.validate().is_ok());
    }

    #[test]
    fn double_transpose_is_identity() {
        let a = m(
            4,
            5,
            &[(0, 4, 1), (1, 0, 2), (3, 2, 3), (3, 4, 4), (2, 2, 5)],
        );
        assert_eq!(transpose(&transpose(&a)), a);
    }

    #[test]
    fn transpose_empty() {
        let a = Csr::<u64>::zero(3, 7);
        let t = transpose(&a);
        assert_eq!((t.nrows(), t.ncols(), t.nnz()), (7, 3, 0));
    }

    #[test]
    fn transpose_dense_column() {
        // A column vector becomes a row vector.
        let a = m(3, 1, &[(0, 0, 1), (1, 0, 2), (2, 0, 3)]);
        let t = transpose(&a);
        assert_eq!((t.nrows(), t.ncols()), (1, 3));
        assert_eq!(
            t.row(0).map(|(j, v)| (j, *v)).collect::<Vec<_>>(),
            vec![(0, 1), (1, 2), (2, 3)]
        );
    }

    #[test]
    fn parallel_matches_serial_above_threshold() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(11);
        let (n, c) = (300, 170);
        let mut coo = Coo::new(n, c);
        for _ in 0..(PAR_MIN_NNZ + 500) {
            coo.push(
                rng.gen_range(0..n),
                rng.gen_range(0..c),
                rng.gen_range(1..9u64),
            );
        }
        let a = coo.into_csr::<SumU64>();
        assert!(
            a.nnz() >= PAR_MIN_NNZ,
            "test must exercise the parallel path"
        );
        let reference = transpose_serial(&a);
        for threads in [1, 2, 4, 8] {
            let t = mfbc_parallel::with_threads(threads, || transpose(&a));
            assert_eq!(reference, t, "transpose differs at {threads} threads");
            assert!(t.validate().is_ok());
        }
    }
}
