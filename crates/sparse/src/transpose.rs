//! Sparse transposition.
//!
//! MFBr multiplies frontiers by `Aᵀ` (Algorithm 2); the distributed
//! layer also transposes blocks during redistribution. The counting
//! transpose below is the standard O(nnz + n) bucket pass.

use crate::csr::{Csr, Idx};

/// Returns `Aᵀ` with rows sorted (a structural invariant of [`Csr`]).
pub fn transpose<T: Clone>(a: &Csr<T>) -> Csr<T> {
    let (n, m) = (a.nrows(), a.ncols());
    // Count entries per output row (= input column).
    let mut counts = vec![0usize; m + 1];
    for i in 0..n {
        for &j in a.row_cols(i) {
            counts[j as usize + 1] += 1;
        }
    }
    for j in 0..m {
        counts[j + 1] += counts[j];
    }
    let rowptr = counts.clone();
    let nnz = a.nnz();
    let mut colind: Vec<Idx> = vec![0; nnz];
    let mut vals: Vec<Option<T>> = vec![None; nnz];
    let mut cursor = counts;
    for i in 0..n {
        for (j, v) in a.row(i) {
            let slot = cursor[j];
            cursor[j] += 1;
            colind[slot] = i as Idx;
            vals[slot] = Some(v.clone());
        }
    }
    let vals: Vec<T> = vals
        .into_iter()
        .map(|v| v.expect("every slot written exactly once"))
        .collect();
    Csr::from_parts(m, n, rowptr, colind, vals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;
    use mfbc_algebra::monoid::SumU64;

    fn m(n: usize, c: usize, t: &[(usize, usize, u64)]) -> Csr<u64> {
        Coo::from_triples(n, c, t.iter().copied()).into_csr::<SumU64>()
    }

    #[test]
    fn transpose_rectangular() {
        let a = m(2, 3, &[(0, 0, 1), (0, 2, 2), (1, 1, 3)]);
        let t = transpose(&a);
        assert_eq!((t.nrows(), t.ncols()), (3, 2));
        assert_eq!(t.get(0, 0), Some(&1));
        assert_eq!(t.get(2, 0), Some(&2));
        assert_eq!(t.get(1, 1), Some(&3));
        assert!(t.validate().is_ok());
    }

    #[test]
    fn double_transpose_is_identity() {
        let a = m(
            4,
            5,
            &[(0, 4, 1), (1, 0, 2), (3, 2, 3), (3, 4, 4), (2, 2, 5)],
        );
        assert_eq!(transpose(&transpose(&a)), a);
    }

    #[test]
    fn transpose_empty() {
        let a = Csr::<u64>::zero(3, 7);
        let t = transpose(&a);
        assert_eq!((t.nrows(), t.ncols(), t.nnz()), (7, 3, 0));
    }

    #[test]
    fn transpose_dense_column() {
        // A column vector becomes a row vector.
        let a = m(3, 1, &[(0, 0, 1), (1, 0, 2), (2, 0, 3)]);
        let t = transpose(&a);
        assert_eq!((t.nrows(), t.ncols()), (1, 3));
        assert_eq!(
            t.row(0).map(|(j, v)| (j, *v)).collect::<Vec<_>>(),
            vec![(0, 1), (1, 2), (2, 3)]
        );
    }
}
