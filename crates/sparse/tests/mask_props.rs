//! Property tests for masked SpGEMM: containment in the mask, exact
//! complement partition of the unmasked product, the empty-mask
//! fast path, and mask-density monotonicity of the `ops` counter.

use mfbc_algebra::kernel::BellmanFordKernel;
use mfbc_algebra::monoid::MinDist;
use mfbc_algebra::{Dist, Multpath, MultpathMonoid};
use mfbc_sparse::elementwise::combine;
use mfbc_sparse::{spgemm_masked_serial, spgemm_serial, Coo, Csr, Mask, MaskKind};
use proptest::collection::vec;
use proptest::prelude::*;

fn arb_square_dist_mat(max_n: usize) -> impl Strategy<Value = Csr<Dist>> {
    (2..max_n).prop_flat_map(|n| {
        vec((0..n, 0..n, 1u64..50), 0..(4 * n).min(200)).prop_map(move |ts| {
            Coo::from_triples(n, n, ts.into_iter().map(|(i, j, w)| (i, j, Dist::new(w))))
                .into_csr::<MinDist>()
        })
    })
}

fn arb_frontier(rows: usize, cols: usize) -> impl Strategy<Value = Csr<Multpath>> {
    vec((0..rows, 0..cols, 0u64..40, 1u32..5), 0..80).prop_map(move |ts| {
        Coo::from_triples(
            rows,
            cols,
            ts.into_iter()
                .map(|(i, j, w, m)| (i, j, Multpath::new(Dist::new(w), f64::from(m)))),
        )
        .into_csr::<MultpathMonoid>()
    })
}

/// A frontier × adjacency pair plus a mask pattern over the output
/// shape — the operand shape MFBF actually runs masked.
fn arb_masked_case() -> impl Strategy<Value = (Csr<Multpath>, Csr<Dist>, Vec<(usize, usize)>)> {
    arb_square_dist_mat(16).prop_flat_map(|a| {
        let n = a.nrows();
        (
            arb_frontier(4, n),
            Just(a),
            vec((0..4usize, 0..n), 0..(2 * n).min(60)),
        )
            .prop_map(|(f, a, coords)| (f, a, coords))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every masked output entry lies at a mask-allowed coordinate.
    #[test]
    fn masked_result_is_contained_in_mask((f, a, coords) in arb_masked_case()) {
        for kind in [MaskKind::Structural, MaskKind::Complement] {
            let mask = Mask::from_coords(kind, f.nrows(), a.ncols(), &coords);
            let out = spgemm_masked_serial::<BellmanFordKernel>(&f, &a, &mask);
            for (i, j, _) in out.mat.iter() {
                prop_assert!(mask.allows(i, j), "{kind:?}: disallowed entry at ({i},{j})");
            }
        }
    }

    /// A mask and its complement partition the unmasked product: the
    /// union of the two masked results equals the unmasked result,
    /// entry for entry and bit for bit (multiplicities are f64 sums,
    /// so bit-equality proves accumulation order was untouched), and
    /// the two ops counters sum to the unmasked count.
    #[test]
    fn mask_and_complement_partition_the_product((f, a, coords) in arb_masked_case()) {
        let unmasked = spgemm_serial::<BellmanFordKernel>(&f, &a);
        let mask = Mask::from_coords(MaskKind::Structural, f.nrows(), a.ncols(), &coords);
        let kept = spgemm_masked_serial::<BellmanFordKernel>(&f, &a, &mask);
        let dropped = spgemm_masked_serial::<BellmanFordKernel>(&f, &a, &mask.inverted());
        // Disjoint patterns: the combine never merges entries.
        let union = combine::<MultpathMonoid, _>(&kept.mat, &dropped.mat);
        prop_assert_eq!(union.nnz(), unmasked.mat.nnz());
        for (i, j, v) in unmasked.mat.iter() {
            let u = union.get(i, j).expect("union must cover the unmasked product");
            prop_assert_eq!(u.w, v.w, "weight mismatch at ({},{})", i, j);
            prop_assert_eq!(
                u.m.to_bits(), v.m.to_bits(),
                "multiplicity bits differ at ({},{})", i, j
            );
        }
        prop_assert_eq!(kept.ops + dropped.ops, unmasked.ops);
    }

    /// An empty structural mask produces an empty output and charges
    /// zero elementary products — the whole multiplication is pruned
    /// before any work happens.
    #[test]
    fn empty_structural_mask_charges_nothing((f, a, _) in arb_masked_case()) {
        let mask = Mask::from_coords(MaskKind::Structural, f.nrows(), a.ncols(), &[]);
        let out = spgemm_masked_serial::<BellmanFordKernel>(&f, &a, &mask);
        prop_assert_eq!(out.mat.nnz(), 0);
        prop_assert_eq!(out.ops, 0);
    }

    /// Growing a structural mask can only grow the modeled op count:
    /// ops is monotone in mask density.
    #[test]
    fn ops_is_monotone_in_mask_density((f, a, coords) in arb_masked_case()) {
        let (rows, cols) = (f.nrows(), a.ncols());
        let half = &coords[..coords.len() / 2];
        let small = Mask::from_coords(MaskKind::Structural, rows, cols, half);
        let large = Mask::from_coords(MaskKind::Structural, rows, cols, &coords);
        let ops_small = spgemm_masked_serial::<BellmanFordKernel>(&f, &a, &small).ops;
        let ops_large = spgemm_masked_serial::<BellmanFordKernel>(&f, &a, &large).ops;
        prop_assert!(ops_small <= ops_large);
        let full = spgemm_serial::<BellmanFordKernel>(&f, &a).ops;
        prop_assert!(ops_large <= full);
    }
}
