//! Property tests: the generalized SpGEMM and elementwise kernels
//! against naive dense references, plus structural round-trips.

#![allow(clippy::needless_range_loop)]

use mfbc_algebra::kernel::{BellmanFordKernel, TropicalKernel};
use mfbc_algebra::monoid::{MinDist, Monoid};
use mfbc_algebra::{Dist, Multpath, MultpathMonoid, SpMulKernel};
use mfbc_sparse::elementwise::combine;
use mfbc_sparse::slice::{even_ranges, hstack, slice_cols, slice_rows, vstack};
use mfbc_sparse::transpose::transpose;
use mfbc_sparse::{spgemm, spgemm_serial, Coo, Csr};
use proptest::collection::vec;
use proptest::prelude::*;

/// Random sparse Dist matrix as (shape, triples).
fn arb_dist_mat(max_n: usize) -> impl Strategy<Value = Csr<Dist>> {
    (1..max_n, 1..max_n).prop_flat_map(|(n, m)| {
        vec((0..n, 0..m, 1u64..50), 0..(2 * n * m).min(200)).prop_map(move |ts| {
            Coo::from_triples(n, m, ts.into_iter().map(|(i, j, w)| (i, j, Dist::new(w))))
                .into_csr::<MinDist>()
        })
    })
}

fn arb_square_dist_mat(max_n: usize) -> impl Strategy<Value = Csr<Dist>> {
    (2..max_n).prop_flat_map(|n| {
        vec((0..n, 0..n, 1u64..50), 0..(3 * n).min(200)).prop_map(move |ts| {
            Coo::from_triples(n, n, ts.into_iter().map(|(i, j, w)| (i, j, Dist::new(w))))
                .into_csr::<MinDist>()
        })
    })
}

fn arb_multpath_mat(rows: usize, cols: usize) -> impl Strategy<Value = Csr<Multpath>> {
    vec((0..rows, 0..cols, 0u64..40, 1u32..5), 0..60).prop_map(move |ts| {
        Coo::from_triples(
            rows,
            cols,
            ts.into_iter()
                .map(|(i, j, w, m)| (i, j, Multpath::new(Dist::new(w), f64::from(m)))),
        )
        .into_csr::<MultpathMonoid>()
    })
}

/// Dense reference for `C = A •⟨⊕,f⟩ B`.
fn dense_mm<K: SpMulKernel>(
    a: &Csr<K::Left>,
    b: &Csr<K::Right>,
) -> Vec<Vec<<K::Acc as Monoid>::Elem>> {
    let mut c = vec![vec![<K::Acc as Monoid>::identity(); b.ncols()]; a.nrows()];
    for i in 0..a.nrows() {
        for (k, av) in a.row(i) {
            for (j, bv) in b.row(k) {
                if let Some(p) = K::mul(av, bv) {
                    let acc = &mut c[i][j];
                    <K::Acc as Monoid>::fold_into(acc, &p);
                }
            }
        }
    }
    c
}

fn assert_matches_dense<K: SpMulKernel>(
    sparse: &Csr<<K::Acc as Monoid>::Elem>,
    a: &Csr<K::Left>,
    b: &Csr<K::Right>,
) where
    <K::Acc as Monoid>::Elem: PartialEq + std::fmt::Debug + Clone,
{
    let dense = dense_mm::<K>(a, b);
    for i in 0..sparse.nrows() {
        for j in 0..sparse.ncols() {
            let expected = &dense[i][j];
            match sparse.get(i, j) {
                Some(v) => assert_eq!(v, expected, "mismatch at ({i},{j})"),
                None => assert!(
                    <K::Acc as Monoid>::is_identity(expected),
                    "missing nonzero at ({i},{j}): {expected:?}"
                ),
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn tropical_spgemm_matches_dense(a in arb_square_dist_mat(18)) {
        let c = spgemm_serial::<TropicalKernel>(&a, &a);
        assert_matches_dense::<TropicalKernel>(&c.mat, &a, &a);
        prop_assert!(c.mat.validate().is_ok());
    }

    #[test]
    fn multpath_spgemm_matches_dense(
        (a, f) in arb_square_dist_mat(14)
            .prop_flat_map(|a| {
                let n = a.nrows();
                (Just(a), arb_multpath_mat(3, n))
            })
    ) {
        let c = spgemm_serial::<BellmanFordKernel>(&f, &a);
        assert_matches_dense::<BellmanFordKernel>(&c.mat, &f, &a);
    }

    #[test]
    fn parallel_equals_serial(a in arb_square_dist_mat(40)) {
        let s = spgemm_serial::<TropicalKernel>(&a, &a);
        let p = spgemm::<TropicalKernel>(&a, &a);
        prop_assert_eq!(s.mat, p.mat);
        prop_assert_eq!(s.ops, p.ops);
    }

    /// Min-plus matrix multiplication is associative; our kernels must
    /// respect that (this exercises accumulation order thoroughly).
    #[test]
    fn tropical_mm_associative(a in arb_square_dist_mat(12)) {
        let ab = spgemm_serial::<TropicalKernel>(&a, &a).mat;
        let left = spgemm_serial::<TropicalKernel>(&ab, &a).mat;
        let right = spgemm_serial::<TropicalKernel>(&a, &ab).mat;
        // (A²)·A == A·(A²)
        prop_assert_eq!(left, right);
    }

    #[test]
    fn transpose_round_trip(a in arb_dist_mat(20)) {
        prop_assert_eq!(transpose(&transpose(&a)), a.clone());
        prop_assert_eq!(transpose(&a).nnz(), a.nnz());
    }

    #[test]
    fn transpose_swaps_entries(a in arb_dist_mat(20)) {
        let t = transpose(&a);
        for (i, j, v) in a.iter() {
            prop_assert_eq!(t.get(j, i), Some(v));
        }
    }

    #[test]
    fn combine_commutative_and_identity(a in arb_dist_mat(16)) {
        let z = Csr::<Dist>::zero(a.nrows(), a.ncols());
        prop_assert_eq!(combine::<MinDist, _>(&a, &z), a.clone());
        prop_assert_eq!(combine::<MinDist, _>(&z, &a), a.clone());
    }

    #[test]
    fn combine_idempotent_for_min(a in arb_dist_mat(16)) {
        prop_assert_eq!(combine::<MinDist, _>(&a, &a), a.clone());
    }

    #[test]
    fn stacking_round_trips(a in arb_dist_mat(24), parts in 1usize..5) {
        let rows: Vec<_> = even_ranges(a.nrows(), parts)
            .into_iter().map(|r| slice_rows(&a, r)).collect();
        prop_assert_eq!(vstack(&rows), a.clone());
        let cols: Vec<_> = even_ranges(a.ncols(), parts)
            .into_iter().map(|r| slice_cols(&a, r)).collect();
        prop_assert_eq!(hstack(&cols), a.clone());
    }

    #[test]
    fn coo_csr_round_trip(a in arb_dist_mat(20)) {
        prop_assert_eq!(Coo::from_csr(&a).into_csr::<MinDist>(), a.clone());
    }
}
