//! Distributed sparse tensor (matrix) framework — the workspace's
//! Cyclops-Tensor-Framework analogue.
//!
//! The MFBC paper implements its algorithm on CTF, which distributes
//! sparse matrices over processor grids, redistributes them between
//! layouts, multiplies them with a communication-efficient suite of
//! 1D/2D/3D algorithms, and auto-selects the cheapest configuration
//! per operation (§5.2, §6.2). This crate rebuilds that stack on the
//! simulated machine of `mfbc-machine`:
//!
//! * [`grid`] — 1D/2D/3D processor grids and factorization search;
//! * [`dist`] — block [`Layout`]s and the distributed matrix
//!   [`DistMat`];
//! * [`redist`] — sparse redistribution (personalized all-to-all);
//! * [`mm`] (with private 1D/2D/3D submodules) — the generalized
//!   multiplication algorithms over any
//!   [`SpMulKernel`](mfbc_algebra::SpMulKernel);
//! * [`costmodel`] — closed-form α–β–γ predictions per variant;
//! * [`autotune`] — plan enumeration + scoring + execution.

#![deny(missing_docs)]
#![deny(unsafe_code)]
// `vec![0..n]` block-range literals are the natural layout syntax
// here, and the internal piece/chunk tuples are contained.
#![allow(clippy::single_range_in_vec_init)]
#![allow(clippy::type_complexity)]

pub mod autotune;
pub mod cache;
pub mod cannon;
pub mod costmodel;
pub mod dist;
pub mod grid;
pub mod mm;
mod mm1d;
mod mm2d;
mod mm3d;
pub mod ops;
pub mod redist;

pub use autotune::{
    best_plan, mm_auto, mm_auto_cached, mm_auto_cached_masked, mm_auto_masked, stats_for_masked,
};
pub use cache::{CacheStats, MmCache};
pub use costmodel::MmStats;
pub use dist::{DistMat, Layout};
pub use grid::{Grid2, Grid3};
pub use mfbc_sparse::{Mask, MaskKind};
pub use mm::{
    canonical_layout, enumerate_plans, mm_exec, mm_exec_cached, mm_exec_cached_masked,
    mm_exec_masked, MmOut, MmPlan, Variant1D, Variant2D, VARIANTS_1D, VARIANTS_2D,
};
pub use redist::redistribute;
