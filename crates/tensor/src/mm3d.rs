//! The 3D sparse matrix multiplication variants (§5.2.3).
//!
//! A 3D algorithm nests a 1D variant over `p1` layers with a 2D
//! variant on each layer's `p2 × p3` grid, yielding the nine
//! `(X, YZ) ∈ {A,B,C} × {AB,AC,BC}` combinations of the paper:
//!
//! * `X = A`: A is replicated across layers (fiber broadcasts of its
//!   `p2 × p3`-distributed blocks); B's and C's columns are split
//!   `p1` ways, one slice per layer;
//! * `X = B`: B replicated; A's and C's rows split;
//! * `X = C`: the contraction dimension is split — A's columns and
//!   B's rows — and each layer's full-shape partial product is
//!   sparse-reduced along the fiber groups.
//!
//! Cost matches `W_{X,YZ}` of §5.2.3: the 1D dimension contributes
//! `O(α log p1 + β·nnz(X)/(p2·p3))` (fiber collectives on blocks of
//! the `p2 × p3` distribution) and the inner 2D variant runs on
//! operands shrunk by `p1` in the split dimensions.

use crate::cache::{CachedRhs, Fingerprint, MmCache};
use crate::dist::{DistMat, Layout};
use crate::grid::Grid3;
use crate::mm::{assemble_canonical, MmOut, Variant1D, Variant2D};
use crate::mm1d::{FirstWins, Piece};
use crate::mm2d;
use crate::redist::{extract_windows, redistribute};
use mfbc_algebra::kernel::KernelOut;
use mfbc_algebra::SpMulKernel;
use mfbc_machine::cost::CollectiveKind;
use mfbc_machine::{Machine, MachineError};
use mfbc_sparse::slice::even_ranges;
use mfbc_sparse::{entry_bytes, Csr, Mask};
use std::collections::HashMap;
use std::sync::Arc;

/// Runs a 3D variant over `grid`, returning the canonical result.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run<K: SpMulKernel>(
    m: &Machine,
    grid: &Grid3,
    split: Variant1D,
    inner: Variant2D,
    a: &DistMat<K::Left>,
    b: &DistMat<K::Right>,
    mask: Option<&Mask>,
    cache: &mut MmCache<K::Right>,
) -> Result<MmOut<KernelOut<K>>, MachineError> {
    let (pieces, ops) = match split {
        Variant1D::A => split_a::<K>(m, grid, inner, a, b, mask, cache)?,
        Variant1D::B => split_b::<K>(m, grid, inner, a, b, mask, cache)?,
        Variant1D::C => split_c::<K>(m, grid, inner, a, b, mask, cache)?,
    };
    let c = assemble_canonical::<K::Acc, _>(m, a.nrows(), b.ncols(), pieces);
    Ok(MmOut { c, ops })
}

/// Fetches (or builds, charges, and caches) the per-layer slices of
/// the right operand for a given spec list.
fn cached_rhs_slices<K: SpMulKernel>(
    m: &Machine,
    key: String,
    b: &DistMat<K::Right>,
    specs: &[(std::ops::Range<usize>, std::ops::Range<usize>, Layout)],
    cache: &mut MmCache<K::Right>,
) -> Result<Arc<Vec<DistMat<K::Right>>>, MachineError> {
    let fp = Fingerprint::of(b);
    if let Some(CachedRhs::Layers(ls)) = cache.get(&key, fp) {
        return Ok(Arc::clone(ls));
    }
    let built = Arc::new(extract_windows::<FirstWins<K::Right>, _>(m, b, specs)?);
    let mut charges = Vec::new();
    for sl in built.iter() {
        let lo = sl.layout();
        for bi in 0..lo.br() {
            for bj in 0..lo.bc() {
                let bytes = (sl.block(bi, bj).nnz() * entry_bytes::<K::Right>()) as u64;
                if bytes > 0 {
                    m.charge_alloc(lo.owner(bi, bj), bytes)?;
                    charges.push((lo.owner(bi, bj), bytes));
                }
            }
        }
    }
    cache.insert(key, fp, CachedRhs::Layers(Arc::clone(&built)), charges);
    Ok(built)
}

/// Fetches (or builds, charges, and caches) the per-layer replicas
/// of the right operand (split = B).
/// On a cache miss under overlapped accounting the replication's
/// fiber broadcasts stay in flight — the returned handles must
/// complete before the replicas are multiplied (a hit returns none).
fn cached_rhs_layers<K: SpMulKernel>(
    m: &Machine,
    grid: &Grid3,
    b: &DistMat<K::Right>,
    cache: &mut MmCache<K::Right>,
) -> Result<(Arc<Vec<DistMat<K::Right>>>, Vec<u64>), MachineError> {
    let fp = Fingerprint::of(b);
    let key = format!(
        "3d:B:{}x{}x{}:{}",
        grid.p1(),
        grid.p2(),
        grid.p3(),
        b.content_id()
    );
    if let Some(CachedRhs::Layers(ls)) = cache.get(&key, fp) {
        return Ok((Arc::clone(ls), Vec::new()));
    }
    let (layers, per_rank_bytes, handles) =
        replicate_over_layers::<_, FirstWins<K::Right>>(m, grid, b)?;
    let mut charges = Vec::new();
    for l in 1..grid.p1() {
        for i in 0..grid.p2() {
            for j in 0..grid.p3() {
                charges.push((grid.fiber_group(i, j).rank_at(l), per_rank_bytes));
            }
        }
    }
    let built = Arc::new(layers);
    cache.insert(key, fp, CachedRhs::Layers(Arc::clone(&built)), charges);
    Ok((built, handles))
}

/// Replicates `x` (any layout) to every layer of `grid`: first
/// redistributed to layer 0's natural 2D layout, then each block is
/// broadcast along its fiber group. Returns one per-layer copy (on
/// that layer's grid) plus the per-rank byte charge to release.
/// Under overlapped accounting the fiber broadcasts are issued
/// nonblocking and their handles returned (empty otherwise): the
/// caller overlaps them with the other operand's redistribution and
/// completes them before the replicas are multiplied.
fn replicate_over_layers<T, M>(
    machine: &Machine,
    grid: &Grid3,
    x: &DistMat<T>,
) -> Result<(Vec<DistMat<T>>, u64, Vec<u64>), MachineError>
where
    M: mfbc_algebra::monoid::Monoid<Elem = T>,
    T: Clone + Send + Sync + PartialEq + std::fmt::Debug,
{
    let (p1, p2, p3) = (grid.p1(), grid.p2(), grid.p3());
    let l0 = grid.layer(0);
    let layout0 = Layout::on_grid(x.nrows(), x.ncols(), &l0);
    let x0 = redistribute::<M, _>(machine, x, &layout0)?;

    // Fiber broadcasts: disjoint groups, so each fiber's collective
    // lands on its own critical path.
    let ebytes = entry_bytes::<T>() as u64;
    let overlap = machine.spec().overlap;
    let mut handles = Vec::new();
    for i in 0..p2 {
        for j in 0..p3 {
            if p1 == 1 {
                continue;
            }
            let bytes = x0.block(i, j).nnz() as u64 * ebytes;
            let fg = grid.fiber_group(i, j);
            if overlap {
                handles.push(machine.icharge_collective(&fg, CollectiveKind::Broadcast, bytes)?);
            } else {
                machine.charge_collective(&fg, CollectiveKind::Broadcast, bytes)?;
            }
            for l in 1..p1 {
                machine.charge_alloc(fg.rank_at(l), bytes)?;
            }
        }
    }

    let mut per_layer = Vec::with_capacity(p1);
    per_layer.push(x0.clone());
    for l in 1..p1 {
        let ll = Layout::on_grid(x.nrows(), x.ncols(), &grid.layer(l));
        let blocks = (0..layout0.br())
            .flat_map(|bi| (0..layout0.bc()).map(move |bj| (bi, bj)))
            .map(|(bi, bj)| x0.block(bi, bj).clone())
            .collect();
        per_layer.push(DistMat::from_blocks(ll, blocks));
    }
    let per_rank_bytes = x0.nnz() as u64 * ebytes / (p2 * p3) as u64;
    Ok((per_layer, per_rank_bytes, handles))
}

fn release_layers(machine: &Machine, grid: &Grid3, per_rank_bytes: u64) {
    for l in 1..grid.p1() {
        for i in 0..grid.p2() {
            for j in 0..grid.p3() {
                machine.release(grid.fiber_group(i, j).rank_at(l), per_rank_bytes);
            }
        }
    }
}

/// `X = A`: replicate the left operand; split B/C columns.
fn split_a<K: SpMulKernel>(
    m: &Machine,
    grid: &Grid3,
    inner: Variant2D,
    a: &DistMat<K::Left>,
    b: &DistMat<K::Right>,
    mask: Option<&Mask>,
    cache: &mut MmCache<K::Right>,
) -> Result<(Vec<Piece<KernelOut<K>>>, u64), MachineError> {
    let p1 = grid.p1();
    // A's fiber broadcasts overlap B's slice all-to-all below; the
    // handles complete before the replicas feed the layer multiplies.
    let (layer_as, rep_bytes, rep_handles) =
        replicate_over_layers::<_, FirstWins<K::Left>>(m, grid, a)?;
    let windows = even_ranges(b.ncols(), p1);
    // All layers' slices of B move in one all-to-all.
    let specs: Vec<_> = (0..p1)
        .map(|l| {
            let w = windows[l].clone();
            let lb = Layout::on_grid(b.nrows(), w.len(), &grid.layer(l));
            (0..b.nrows(), w, lb)
        })
        .collect();
    let key = format!(
        "3d:A:{}x{}x{}:bslices:{}",
        grid.p1(),
        grid.p2(),
        grid.p3(),
        b.content_id()
    );
    let slices = cached_rhs_slices::<K>(m, key, b, &specs, cache)?;
    for h in rep_handles {
        m.wait_collective(h)?;
    }
    let mut pieces = Vec::new();
    let mut ops = 0u64;
    for (l, bl) in slices.iter().enumerate() {
        let w = windows[l].clone();
        if w.is_empty() {
            continue;
        }
        // Layer l owns output columns `w`: re-base the mask to them.
        let lw = mask.map(|mk| mk.window(0..a.nrows(), w.clone()));
        let (ps, o) = mm2d::run_pieces::<K>(
            m,
            &grid.layer(l),
            inner,
            &layer_as[l],
            bl,
            lw.as_ref(),
            cache,
        )?;
        ops += o;
        pieces.extend(
            ps.into_iter()
                .map(|(r0, c0, pos, blk)| (r0, c0 + w.start, pos, blk)),
        );
    }
    release_layers(m, grid, rep_bytes);
    Ok((pieces, ops))
}

/// `X = B`: replicate the right operand; split A/C rows.
fn split_b<K: SpMulKernel>(
    m: &Machine,
    grid: &Grid3,
    inner: Variant2D,
    a: &DistMat<K::Left>,
    b: &DistMat<K::Right>,
    mask: Option<&Mask>,
    cache: &mut MmCache<K::Right>,
) -> Result<(Vec<Piece<KernelOut<K>>>, u64), MachineError> {
    let p1 = grid.p1();
    let (layer_bs, rep_handles) = cached_rhs_layers::<K>(m, grid, b, cache)?;
    let windows = even_ranges(a.nrows(), p1);
    let specs: Vec<_> = (0..p1)
        .map(|l| {
            let w = windows[l].clone();
            let la = Layout::on_grid(w.len(), a.ncols(), &grid.layer(l));
            (w, 0..a.ncols(), la)
        })
        .collect();
    let slices = extract_windows::<FirstWins<K::Left>, _>(m, a, &specs)?;
    // B's fiber broadcasts (on a cache miss) overlapped A's slice
    // all-to-all above; complete them before the multiplies.
    for h in rep_handles {
        m.wait_collective(h)?;
    }
    let mut pieces = Vec::new();
    let mut ops = 0u64;
    for (l, al) in slices.into_iter().enumerate() {
        let w = windows[l].clone();
        if w.is_empty() {
            continue;
        }
        // Layer l owns output rows `w`: re-base the mask to them.
        let lw = mask.map(|mk| mk.window(w.clone(), 0..b.ncols()));
        let (ps, o) = mm2d::run_pieces::<K>(
            m,
            &grid.layer(l),
            inner,
            &al,
            &layer_bs[l],
            lw.as_ref(),
            cache,
        )?;
        ops += o;
        pieces.extend(
            ps.into_iter()
                .map(|(r0, c0, pos, blk)| (r0 + w.start, c0, pos, blk)),
        );
    }
    Ok((pieces, ops))
}

/// `X = C`: split the contraction dimension; sparse-reduce each
/// layer's full-shape partial along fiber groups.
fn split_c<K: SpMulKernel>(
    m: &Machine,
    grid: &Grid3,
    inner: Variant2D,
    a: &DistMat<K::Left>,
    b: &DistMat<K::Right>,
    mask: Option<&Mask>,
    cache: &mut MmCache<K::Right>,
) -> Result<(Vec<Piece<KernelOut<K>>>, u64), MachineError> {
    let p1 = grid.p1();
    let p3 = grid.p3();
    let windows = even_ranges(a.ncols(), p1);
    let mut ops = 0u64;

    // Per (r0, c0, pos): one optional contribution per layer.
    type Key = (usize, usize, usize);
    let mut partials: HashMap<Key, Vec<Option<Csr<KernelOut<K>>>>> = HashMap::new();

    let a_specs: Vec<_> = (0..p1)
        .map(|l| {
            let w = windows[l].clone();
            let la = Layout::on_grid(a.nrows(), w.len(), &grid.layer(l));
            (0..a.nrows(), w, la)
        })
        .collect();
    let a_slices = extract_windows::<FirstWins<K::Left>, _>(m, a, &a_specs)?;
    let b_specs: Vec<_> = (0..p1)
        .map(|l| {
            let w = windows[l].clone();
            let lb = Layout::on_grid(w.len(), b.ncols(), &grid.layer(l));
            (w, 0..b.ncols(), lb)
        })
        .collect();
    let key = format!(
        "3d:C:{}x{}x{}:bslices:{}",
        grid.p1(),
        grid.p2(),
        grid.p3(),
        b.content_id()
    );
    let b_slices = cached_rhs_slices::<K>(m, key, b, &b_specs, cache)?;
    for (l, al) in a_slices.into_iter().enumerate() {
        let w = windows[l].clone();
        if w.is_empty() {
            continue;
        }
        // Contraction split: every layer forms full-shape partials,
        // so each gets the whole output mask.
        let (ps, o) =
            mm2d::run_pieces::<K>(m, &grid.layer(l), inner, &al, &b_slices[l], mask, cache)?;
        ops += o;
        for (r0, c0, pos, blk) in ps {
            partials
                .entry((r0, c0, pos))
                .or_insert_with(|| vec![None; p1])[l] = Some(blk);
        }
    }

    // Fiber reductions: one sparse reduce per surviving block
    // position, combining the layers' partial contributions. Under
    // overlapped accounting every reduce is issued before any is
    // waited — the fiber groups are disjoint, so the rounds pipeline.
    let mut keys: Vec<Key> = partials.keys().copied().collect();
    keys.sort_unstable();
    let mut reduced = Vec::with_capacity(keys.len());
    for key in keys {
        let (r0, c0, pos) = key;
        let layers = partials.remove(&key).expect("key just listed");
        let shape = layers
            .iter()
            .flatten()
            .next()
            .map(|c| (c.nrows(), c.ncols()))
            .expect("at least one layer contributed");
        let contribs: Vec<Csr<KernelOut<K>>> = layers
            .into_iter()
            .map(|o| o.unwrap_or_else(|| Csr::zero(shape.0, shape.1)))
            .collect();
        let (i, j) = (pos / p3, pos % p3);
        let fg = grid.fiber_group(i, j);
        let total = mm2d::reduce_chunk::<K>(m, &fg, contribs)?;
        reduced.push((r0, c0, pos, total));
    }
    let mut pieces = Vec::with_capacity(reduced.len());
    for (r0, c0, pos, pending) in reduced {
        let total = pending.wait(m)?;
        if !total.is_empty() {
            pieces.push((r0, c0, pos, total));
        }
    }
    Ok((pieces, ops))
}
