//! Distributed sparse matrices: block layouts and per-block storage.
//!
//! A [`Layout`] cuts a matrix into a `br × bc` grid of contiguous
//! blocks and assigns each block to an owner rank; a [`DistMat`]
//! pairs a layout with the actual sparse blocks. Rows and columns are
//! split evenly — the paper's §5.2 load-balance assumption (randomized
//! vertex order makes each block's nonzero count proportional to its
//! area) is established upstream by the graph generators, which
//! randomize vertex labels.

use mfbc_algebra::monoid::Monoid;
use mfbc_machine::{Machine, MachineError};
use mfbc_sparse::slice::{even_ranges, slice};
use mfbc_sparse::{Coo, Csr};
use std::ops::Range;

use crate::grid::Grid2;

/// A block decomposition plus block→rank ownership.
#[derive(Clone, Debug)]
pub struct Layout {
    nrows: usize,
    ncols: usize,
    row_ranges: Vec<Range<usize>>,
    col_ranges: Vec<Range<usize>>,
    owners: Vec<usize>,
}

impl Layout {
    /// Builds a layout from explicit ranges and owners
    /// (`owners[bi * ncols_blocks + bj]` is a world rank).
    pub fn new(
        nrows: usize,
        ncols: usize,
        row_ranges: Vec<Range<usize>>,
        col_ranges: Vec<Range<usize>>,
        owners: Vec<usize>,
    ) -> Layout {
        assert_eq!(owners.len(), row_ranges.len() * col_ranges.len());
        assert_eq!(
            row_ranges.iter().map(ExactSizeIterator::len).sum::<usize>(),
            nrows
        );
        assert_eq!(
            col_ranges.iter().map(ExactSizeIterator::len).sum::<usize>(),
            ncols
        );
        Layout {
            nrows,
            ncols,
            row_ranges,
            col_ranges,
            owners,
        }
    }

    /// The natural layout on a 2D grid: block `(i, j)` owned by grid
    /// rank `(i, j)`.
    pub fn on_grid(nrows: usize, ncols: usize, grid: &Grid2) -> Layout {
        let row_ranges = even_ranges(nrows, grid.g1());
        let col_ranges = even_ranges(ncols, grid.g2());
        let owners = (0..grid.g1())
            .flat_map(|i| (0..grid.g2()).map(move |j| (i, j)))
            .map(|(i, j)| grid.rank(i, j))
            .collect();
        Layout::new(nrows, ncols, row_ranges, col_ranges, owners)
    }

    /// A single-block layout owned by `rank` (replication helper /
    /// sequential embedding).
    pub fn single(nrows: usize, ncols: usize, rank: usize) -> Layout {
        Layout::new(nrows, ncols, vec![0..nrows], vec![0..ncols], vec![rank])
    }

    /// Matrix rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Matrix columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of block rows.
    #[inline]
    pub fn br(&self) -> usize {
        self.row_ranges.len()
    }

    /// Number of block columns.
    #[inline]
    pub fn bc(&self) -> usize {
        self.col_ranges.len()
    }

    /// Total number of blocks.
    #[inline]
    pub fn nblocks(&self) -> usize {
        self.owners.len()
    }

    /// Row range of block row `bi`.
    #[inline]
    pub fn row_range(&self, bi: usize) -> Range<usize> {
        self.row_ranges[bi].clone()
    }

    /// Column range of block column `bj`.
    #[inline]
    pub fn col_range(&self, bj: usize) -> Range<usize> {
        self.col_ranges[bj].clone()
    }

    /// Owner rank of block `(bi, bj)`.
    #[inline]
    pub fn owner(&self, bi: usize, bj: usize) -> usize {
        self.owners[bi * self.bc() + bj]
    }

    /// Flat block id.
    #[inline]
    pub fn block_id(&self, bi: usize, bj: usize) -> usize {
        bi * self.bc() + bj
    }

    /// Block row containing matrix row `i` (ranges are even, so this
    /// is a two-candidate computation rather than a search).
    pub fn find_row_block(&self, i: usize) -> usize {
        find_even(&self.row_ranges, i)
    }

    /// Block column containing matrix column `j`.
    pub fn find_col_block(&self, j: usize) -> usize {
        find_even(&self.col_ranges, j)
    }

    /// Whether two layouts share the same block cuts and owners
    /// (shapes may hold different element types, so this is the
    /// alignment precondition for elementwise zips).
    pub fn same_cuts(&self, other: &Layout) -> bool {
        self.row_ranges == other.row_ranges
            && self.col_ranges == other.col_ranges
            && self.owners == other.owners
    }

    /// Whether two layouts cut and assign identically.
    pub fn same_as(&self, other: &Layout) -> bool {
        self.nrows == other.nrows
            && self.ncols == other.ncols
            && self.row_ranges == other.row_ranges
            && self.col_ranges == other.col_ranges
            && self.owners == other.owners
    }
}

/// Locates `x` in a list of contiguous ascending ranges.
fn find_even(ranges: &[Range<usize>], x: usize) -> usize {
    // Even splits differ in length by ≤1, so estimate then correct.
    let n: usize = ranges.last().map(|r| r.end).unwrap_or(0);
    debug_assert!(x < n);
    let parts = ranges.len();
    let mut guess = (x * parts / n.max(1)).min(parts - 1);
    while x < ranges[guess].start {
        guess -= 1;
    }
    while x >= ranges[guess].end {
        guess += 1;
    }
    guess
}

/// A block-distributed sparse matrix: a layout plus one CSR per
/// block, indexed by flat block id. Block contents are stored with
/// *local* (block-relative) indices.
///
/// Each matrix carries a `content_id`: a process-unique token minted
/// at construction and preserved by `clone` (clones share content).
/// The right-operand cache keys on it, so "the same adjacency matrix
/// every iteration" is recognized without content hashing.
#[derive(Clone, Debug)]
pub struct DistMat<T> {
    layout: Layout,
    blocks: Vec<Csr<T>>,
    content_id: u64,
}

fn next_content_id() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

impl<T: Clone + Send + Sync> DistMat<T> {
    /// Cuts a global matrix into blocks per `layout` (a setup-time
    /// operation: no communication is charged; benchmark drivers
    /// treat graph loading as outside the measured region, as the
    /// paper does).
    pub fn from_global(layout: Layout, global: &Csr<T>) -> DistMat<T> {
        assert_eq!(global.nrows(), layout.nrows());
        assert_eq!(global.ncols(), layout.ncols());
        let mut blocks = Vec::with_capacity(layout.nblocks());
        for bi in 0..layout.br() {
            for bj in 0..layout.bc() {
                blocks.push(slice(global, layout.row_range(bi), layout.col_range(bj)));
            }
        }
        DistMat {
            layout,
            blocks,
            content_id: next_content_id(),
        }
    }

    /// An all-zero distributed matrix.
    pub fn zero(layout: Layout) -> DistMat<T> {
        let mut blocks = Vec::with_capacity(layout.nblocks());
        for bi in 0..layout.br() {
            for bj in 0..layout.bc() {
                blocks.push(Csr::zero(
                    layout.row_range(bi).len(),
                    layout.col_range(bj).len(),
                ));
            }
        }
        DistMat {
            layout,
            blocks,
            content_id: next_content_id(),
        }
    }

    /// Builds from pre-cut blocks.
    ///
    /// # Panics
    /// Panics if a block's shape disagrees with the layout.
    pub fn from_blocks(layout: Layout, blocks: Vec<Csr<T>>) -> DistMat<T> {
        assert_eq!(blocks.len(), layout.nblocks());
        for bi in 0..layout.br() {
            for bj in 0..layout.bc() {
                let b = &blocks[layout.block_id(bi, bj)];
                assert_eq!(b.nrows(), layout.row_range(bi).len(), "block row mismatch");
                assert_eq!(b.ncols(), layout.col_range(bj).len(), "block col mismatch");
            }
        }
        DistMat {
            layout,
            blocks,
            content_id: next_content_id(),
        }
    }

    /// The process-unique content token (see the type docs).
    #[inline]
    pub fn content_id(&self) -> u64 {
        self.content_id
    }

    /// The layout.
    #[inline]
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// Matrix rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.layout.nrows()
    }

    /// Matrix columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.layout.ncols()
    }

    /// Block `(bi, bj)`.
    #[inline]
    pub fn block(&self, bi: usize, bj: usize) -> &Csr<T> {
        &self.blocks[self.layout.block_id(bi, bj)]
    }

    /// Replaces block `(bi, bj)`. Mints a fresh content id: the
    /// matrix no longer equals whatever shared its old token.
    pub fn set_block(&mut self, bi: usize, bj: usize, b: Csr<T>) {
        assert_eq!(b.nrows(), self.layout.row_range(bi).len());
        assert_eq!(b.ncols(), self.layout.col_range(bj).len());
        let id = self.layout.block_id(bi, bj);
        self.blocks[id] = b;
        self.content_id = next_content_id();
    }

    /// Total stored entries.
    pub fn nnz(&self) -> usize {
        self.blocks.iter().map(Csr::nnz).sum()
    }

    /// Stored entries owned by `rank`.
    pub fn nnz_on(&self, rank: usize) -> usize {
        let mut total = 0;
        for bi in 0..self.layout.br() {
            for bj in 0..self.layout.bc() {
                if self.layout.owner(bi, bj) == rank {
                    total += self.block(bi, bj).nnz();
                }
            }
        }
        total
    }

    /// The largest per-rank payload in bytes (used to charge
    /// replication and memory).
    pub fn max_rank_bytes(&self, p: usize) -> u64 {
        let mut per = vec![0u64; p];
        for bi in 0..self.layout.br() {
            for bj in 0..self.layout.bc() {
                per[self.layout.owner(bi, bj)] += self.block(bi, bj).payload_bytes() as u64;
            }
        }
        per.into_iter().max().unwrap_or(0)
    }

    /// Charges each block's bytes as resident memory on its owner.
    pub fn charge_memory(&self, m: &Machine) -> Result<(), MachineError> {
        for bi in 0..self.layout.br() {
            for bj in 0..self.layout.bc() {
                let rank = self.layout.owner(bi, bj);
                m.charge_alloc(rank, self.block(bi, bj).payload_bytes() as u64)?;
            }
        }
        Ok(())
    }

    /// Releases what [`DistMat::charge_memory`] charged.
    pub fn release_memory(&self, m: &Machine) {
        for bi in 0..self.layout.br() {
            for bj in 0..self.layout.bc() {
                let rank = self.layout.owner(bi, bj);
                m.release(rank, self.block(bi, bj).payload_bytes() as u64);
            }
        }
    }

    /// Checks every structural invariant of the distributed matrix:
    /// each block satisfies the CSR invariants ([`Csr::validate`])
    /// and has exactly the shape its layout cell prescribes. Returns
    /// a description of the first violation.
    ///
    /// Used by the conformance harness after every kernel execution
    /// (and by `mm_exec` itself under `debug_assertions`), so a
    /// corrupted communication schedule fails loudly at the operation
    /// that produced it instead of as a distant wrong answer.
    pub fn validate(&self) -> Result<(), String> {
        for bi in 0..self.layout.br() {
            for bj in 0..self.layout.bc() {
                let b = self.block(bi, bj);
                if b.nrows() != self.layout.row_range(bi).len()
                    || b.ncols() != self.layout.col_range(bj).len()
                {
                    return Err(format!(
                        "block ({bi},{bj}) shape {}x{} != layout cell {}x{}",
                        b.nrows(),
                        b.ncols(),
                        self.layout.row_range(bi).len(),
                        self.layout.col_range(bj).len()
                    ));
                }
                b.validate()
                    .map_err(|e| format!("block ({bi},{bj}): {e}"))?;
            }
        }
        Ok(())
    }

    /// Reassembles the global matrix (gather for verification/output;
    /// combines with `M` since block cuts are disjoint this is pure
    /// concatenation, but duplicate tolerance makes testing easier).
    pub fn to_global<M>(&self) -> Csr<T>
    where
        M: Monoid<Elem = T>,
        T: PartialEq + std::fmt::Debug,
    {
        let mut coo = Coo::new(self.nrows(), self.ncols());
        for bi in 0..self.layout.br() {
            let r0 = self.layout.row_range(bi).start;
            for bj in 0..self.layout.bc() {
                let c0 = self.layout.col_range(bj).start;
                for (i, j, v) in self.block(bi, bj).iter() {
                    coo.push(r0 + i, c0 + j, v.clone());
                }
            }
        }
        coo.into_csr::<M>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfbc_algebra::monoid::SumU64;
    use mfbc_machine::Group;

    fn sample_global() -> Csr<u64> {
        Coo::from_triples(
            4,
            6,
            vec![
                (0usize, 0usize, 1u64),
                (0, 5, 2),
                (1, 2, 3),
                (2, 3, 4),
                (3, 0, 5),
                (3, 5, 6),
            ],
        )
        .into_csr::<SumU64>()
    }

    fn grid22() -> Grid2 {
        Grid2::new(Group::all(4), 2, 2).unwrap()
    }

    #[test]
    fn layout_on_grid_covers_matrix() {
        let l = Layout::on_grid(4, 6, &grid22());
        assert_eq!((l.br(), l.bc()), (2, 2));
        assert_eq!(l.row_range(0), 0..2);
        assert_eq!(l.col_range(1), 3..6);
        assert_eq!(l.owner(1, 0), 2);
    }

    #[test]
    fn find_blocks() {
        let l = Layout::on_grid(10, 10, &grid22());
        for i in 0..10 {
            let bi = l.find_row_block(i);
            assert!(l.row_range(bi).contains(&i));
            let bj = l.find_col_block(i);
            assert!(l.col_range(bj).contains(&i));
        }
    }

    #[test]
    fn find_blocks_uneven() {
        // 7 rows over 3 blocks: 3/2/2.
        let l = Layout::new(7, 7, even_ranges(7, 3), even_ranges(7, 3), vec![0; 9]);
        for i in 0..7 {
            assert!(l.row_range(l.find_row_block(i)).contains(&i));
        }
    }

    #[test]
    fn split_and_reassemble() {
        let g = sample_global();
        let dm = DistMat::from_global(Layout::on_grid(4, 6, &grid22()), &g);
        assert_eq!(dm.nnz(), g.nnz());
        assert_eq!(dm.to_global::<SumU64>(), g);
    }

    #[test]
    fn block_local_indices() {
        let g = sample_global();
        let dm = DistMat::from_global(Layout::on_grid(4, 6, &grid22()), &g);
        // Global (3,5)=6 lives in block (1,1) at local (1,2).
        assert_eq!(dm.block(1, 1).get(1, 2), Some(&6));
    }

    #[test]
    fn nnz_per_rank() {
        let g = sample_global();
        let dm = DistMat::from_global(Layout::on_grid(4, 6, &grid22()), &g);
        let total: usize = (0..4).map(|r| dm.nnz_on(r)).sum();
        assert_eq!(total, g.nnz());
    }

    #[test]
    fn zero_matrix_blocks() {
        let dm = DistMat::<u64>::zero(Layout::on_grid(5, 5, &grid22()));
        assert_eq!(dm.nnz(), 0);
        // 5 rows over 2 block rows split 3/2.
        assert_eq!(dm.block(0, 0).nrows(), 3);
        assert_eq!(dm.block(1, 1).nrows(), 2);
    }

    #[test]
    fn single_layout() {
        let g = sample_global();
        let dm = DistMat::from_global(Layout::single(4, 6, 0), &g);
        assert_eq!(dm.block(0, 0), &g);
    }

    #[test]
    fn memory_charging_round_trip() {
        use mfbc_machine::MachineSpec;
        let m = Machine::new(MachineSpec::test(4));
        let dm = DistMat::from_global(Layout::on_grid(4, 6, &grid22()), &sample_global());
        dm.charge_memory(&m).unwrap();
        let resident: u64 = m.with_tracker(|t| (0..4).map(|r| t.resident(r)).sum());
        assert_eq!(resident, dm.nnz() as u64 * 12);
        dm.release_memory(&m);
        let resident: u64 = m.with_tracker(|t| (0..4).map(|r| t.resident(r)).sum());
        assert_eq!(resident, 0);
    }
}
