//! Distributed generalized sparse matrix multiplication: plans and
//! the execution entry point.
//!
//! The algorithm space matches §5.2 of the paper:
//!
//! * three **1D** variants (`A`, `B`, `C`) that replicate one matrix
//!   and block the others;
//! * three **2D** variants (`AB`, `AC`, `BC`), SUMMA-style grids
//!   where the named matrices move (broadcasts for operands, sparse
//!   reductions for the output);
//! * nine **3D** variants obtained by nesting a 1D variant over `p1`
//!   layers with a 2D variant on each layer's `p2 × p3` grid.
//!
//! A [`MmPlan`] pins the variant and grid; [`mm_exec`] redistributes
//! the operands into the layouts the variant needs (charged as
//! all-to-alls, like CTF's redistribution kernels), runs the
//! communication schedule with *real data movement* through the
//! machine's collectives, and returns the product in the canonical
//! world layout.
//!
//! Deviation noted for reviewers: results are re-assembled into the
//! canonical blocked layout without charging that final reshuffle.
//! Every consumer charges its own redistribution *from* the canonical
//! layout, which is the same Θ(nnz/p)-per-rank all-to-all it would
//! pay from the variant's native output layout, so total charged
//! volume is preserved; see DESIGN.md.

use crate::cache::MmCache;
use crate::dist::{DistMat, Layout};
use crate::grid::{Grid2, Grid3};
use crate::{mm1d, mm2d, mm3d};
use mfbc_algebra::kernel::KernelOut;
use mfbc_algebra::monoid::Monoid;
use mfbc_algebra::SpMulKernel;
use mfbc_machine::{Machine, MachineError};
use mfbc_sparse::{Coo, Mask};

/// The 1D algorithm variants of §5.2.1, named by the matrix they
/// replicate (`A`, `B`) or reduce (`C`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Variant1D {
    /// Replicate the left operand; processors own columns of B and C.
    A,
    /// Replicate the right operand; processors own rows of A and C.
    B,
    /// Split the contraction dimension; reduce C.
    C,
}

/// The 2D algorithm variants of §5.2.2, named by the pair of matrices
/// that move: `AB` broadcasts both operands (stationary C), `AC`
/// broadcasts A and reduces C (stationary B), `BC` broadcasts B and
/// reduces C (stationary A).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Variant2D {
    /// Stationary C: broadcast A and B.
    AB,
    /// Stationary B: broadcast A, reduce C.
    AC,
    /// Stationary A: broadcast B, reduce C.
    BC,
}

/// A fully specified execution plan: variant plus processor grid
/// `(p1, p2, p3)` with `p1·p2·p3 == p`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MmPlan {
    /// Pure 1D over all `p` ranks.
    OneD(Variant1D),
    /// Pure 2D on a `p2 × p3` grid (`p2·p3 == p`).
    TwoD {
        /// The 2D variant.
        variant: Variant2D,
        /// Grid rows.
        p2: usize,
        /// Grid columns.
        p3: usize,
    },
    /// Cannon's algorithm on a square `q × q` grid: point-to-point
    /// shifts of both operands (§5.2.2), `O(α·√p)` latency.
    Cannon {
        /// Grid side (`q² == p`).
        q: usize,
    },
    /// 3D: 1D variant `split` over `p1` layers, 2D variant `inner` on
    /// each `p2 × p3` layer.
    ThreeD {
        /// Which matrix the 1D dimension handles.
        split: Variant1D,
        /// The per-layer 2D variant.
        inner: Variant2D,
        /// Layers.
        p1: usize,
        /// Layer-grid rows.
        p2: usize,
        /// Layer-grid columns.
        p3: usize,
    },
}

impl std::fmt::Display for Variant1D {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Variant1D::A => write!(f, "A"),
            Variant1D::B => write!(f, "B"),
            Variant1D::C => write!(f, "C"),
        }
    }
}

impl std::fmt::Display for Variant2D {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Variant2D::AB => write!(f, "AB"),
            Variant2D::AC => write!(f, "AC"),
            Variant2D::BC => write!(f, "BC"),
        }
    }
}

impl std::fmt::Display for MmPlan {
    /// Compact plan label used in traces and autotuner tables, e.g.
    /// `1d(A)`, `2d(AB,4x4)`, `cannon(q=4)`, `3d(C/AB,2x2x2)`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            MmPlan::OneD(v) => write!(f, "1d({v})"),
            MmPlan::TwoD { variant, p2, p3 } => write!(f, "2d({variant},{p2}x{p3})"),
            MmPlan::Cannon { q } => write!(f, "cannon(q={q})"),
            MmPlan::ThreeD {
                split,
                inner,
                p1,
                p2,
                p3,
            } => write!(f, "3d({split}/{inner},{p1}x{p2}x{p3})"),
        }
    }
}

impl MmPlan {
    /// The plan's variant *family* — the label without grid dims
    /// (`1d(A)`, `2d(AC)`, `cannon`, `3d(C/AB)`). The sixteen
    /// families `1D×3 + 2D×3 + 3D×9 + cannon` partition the
    /// enumerable plan space; the conformance harness buckets its
    /// coverage counters by family and the fault-injection hook
    /// matches on family prefixes.
    pub fn family(&self) -> String {
        match *self {
            MmPlan::OneD(v) => format!("1d({v})"),
            MmPlan::TwoD { variant, .. } => format!("2d({variant})"),
            MmPlan::Cannon { .. } => "cannon".to_string(),
            MmPlan::ThreeD { split, inner, .. } => format!("3d({split}/{inner})"),
        }
    }

    /// The `(p1, p2, p3)` grid of this plan given `p` total ranks.
    pub fn dims(&self, p: usize) -> (usize, usize, usize) {
        match *self {
            MmPlan::OneD(_) => (p, 1, 1),
            MmPlan::TwoD { p2, p3, .. } => (1, p2, p3),
            MmPlan::Cannon { q } => (1, q, q),
            MmPlan::ThreeD { p1, p2, p3, .. } => (p1, p2, p3),
        }
    }

    /// Validates the plan against a machine size. Plans come from
    /// user configuration (`--plan`, replication factors), so a
    /// mismatch is a typed [`MachineError::InvalidConfig`].
    pub fn check(&self, p: usize) -> Result<(), MachineError> {
        let (a, b, c) = self.dims(p);
        if a * b * c != p {
            return Err(MachineError::invalid(format!(
                "plan {self} needs a {a}x{b}x{c} = {} rank grid, but the machine has p = {p}",
                a * b * c
            )));
        }
        Ok(())
    }
}

/// The three 1D variants, in enumeration order.
pub const VARIANTS_1D: [Variant1D; 3] = [Variant1D::A, Variant1D::B, Variant1D::C];

/// The three 2D variants, in enumeration order.
pub const VARIANTS_2D: [Variant2D; 3] = [Variant2D::AB, Variant2D::AC, Variant2D::BC];

/// Every executable plan for `p` ranks: all three 1D variants, every
/// 2D variant × grid factorization, Cannon when `p` is a perfect
/// square, and all nine 3D `(split, inner)` nestings × factorization.
///
/// This is the seam the conformance harness uses to *force* each
/// variant individually (instead of going through the autotuner,
/// which would only ever execute its predicted winner); the autotuner
/// scores exactly this same list, so harness coverage and tuner
/// search space cannot drift apart.
pub fn enumerate_plans(p: usize) -> Vec<MmPlan> {
    let mut plans = Vec::new();
    for v in VARIANTS_1D {
        plans.push(MmPlan::OneD(v));
    }
    let q = (p as f64).sqrt().round() as usize;
    if q * q == p && q > 1 {
        plans.push(MmPlan::Cannon { q });
    }
    for (p1, p2, p3) in crate::grid::factorizations(p) {
        if p1 == 1 && (p2 > 1 || p3 > 1) {
            for v in VARIANTS_2D {
                plans.push(MmPlan::TwoD { variant: v, p2, p3 });
            }
        }
        if p1 > 1 && p2 * p3 > 1 {
            for s in VARIANTS_1D {
                for i in VARIANTS_2D {
                    plans.push(MmPlan::ThreeD {
                        split: s,
                        inner: i,
                        p1,
                        p2,
                        p3,
                    });
                }
            }
        }
    }
    plans
}

/// Applies the armed result corruption (the conformance harness's
/// meta-test seam, `mfbc_fault::sabotage`): one stored output entry
/// is dropped, or — when the output is empty — the `ops` counter is
/// perturbed.
fn apply_fault<T>(out: &mut MmOut<T>)
where
    T: Clone + Send + Sync + PartialEq + std::fmt::Debug,
{
    let l = out.c.layout().clone();
    for bi in 0..l.br() {
        for bj in 0..l.bc() {
            if out.c.block(bi, bj).nnz() > 0 {
                let mut first = true;
                let b = out
                    .c
                    .block(bi, bj)
                    .filter(|_, _, _| !std::mem::take(&mut first));
                out.c.set_block(bi, bj, b);
                return;
            }
        }
    }
    out.ops = out.ops.wrapping_add(1);
}

/// Result of a distributed multiplication.
#[derive(Clone, Debug)]
pub struct MmOut<T> {
    /// The product in the canonical world layout.
    pub c: DistMat<T>,
    /// Total nonzero elementary products (`ops(A,B)`).
    pub ops: u64,
}

/// The canonical world layout: the most-square 2D grid over all `p`
/// ranks (CTF's default placement: "block dimensions owned by each
/// processor as close to a square as possible", §6.2).
pub fn canonical_layout(m: &Machine, nrows: usize, ncols: usize) -> Layout {
    let p = m.p();
    let (g1, g2) = squarest_grid(p);
    let grid = Grid2::new(m.world(), g1, g2).expect("squarest grid tiles p by construction");
    Layout::on_grid(nrows, ncols, &grid)
}

/// The factorization `p = g1·g2` minimizing `|g1 − g2|` with
/// `g1 ≤ g2`.
pub fn squarest_grid(p: usize) -> (usize, usize) {
    let mut g1 = (p as f64).sqrt() as usize;
    while g1 > 1 && !p.is_multiple_of(g1) {
        g1 -= 1;
    }
    (g1.max(1), p / g1.max(1))
}

/// Assembles per-block outputs (with global offsets) into a canonical
/// [`DistMat`]. Local bookkeeping only — not charged (see module
/// docs).
pub(crate) fn assemble_canonical<M, T>(
    m: &Machine,
    nrows: usize,
    ncols: usize,
    pieces: Vec<(usize, usize, usize, mfbc_sparse::Csr<T>)>,
) -> DistMat<T>
where
    M: Monoid<Elem = T>,
    T: Clone + Send + Sync + PartialEq + std::fmt::Debug,
{
    let layout = canonical_layout(m, nrows, ncols);
    let mut per_block: Vec<Coo<T>> = (0..layout.br())
        .flat_map(|bi| (0..layout.bc()).map(move |bj| (bi, bj)))
        .map(|(bi, bj)| Coo::new(layout.row_range(bi).len(), layout.col_range(bj).len()))
        .collect();
    for (r0, c0, _pos, piece) in pieces {
        for (i, j, v) in piece.iter() {
            let (gi, gj) = (r0 + i, c0 + j);
            let bi = layout.find_row_block(gi);
            let bj = layout.find_col_block(gj);
            per_block[bi * layout.bc() + bj].push(
                gi - layout.row_range(bi).start,
                gj - layout.col_range(bj).start,
                v.clone(),
            );
        }
    }
    let blocks = per_block.into_iter().map(|c| c.into_csr::<M>()).collect();
    DistMat::from_blocks(layout, blocks)
}

/// Drops right-operand entries in output columns the mask excludes
/// for *every* output row. Such entries can only feed skipped
/// products, so removing them changes neither the kept entries nor
/// the `ops` counter — but it shrinks the bytes a fresh (uncached)
/// B-panel redistribution must move. Returns `None` when the drop is
/// empty — no column is fully excluded (the common early-iteration
/// case), or every excluded column is structurally empty in B — so
/// callers fall back to the cacheable full form.
pub(crate) fn shrink_rhs_against_mask<T: Clone + Send + Sync>(
    b: &DistMat<T>,
    mask: &Mask,
) -> Option<DistMat<T>> {
    let excluded = mask.fully_excluded_cols();
    if !excluded.iter().any(|&e| e) {
        return None;
    }
    let l = b.layout().clone();
    let mut blocks = Vec::with_capacity(l.nblocks());
    for bi in 0..l.br() {
        for bj in 0..l.bc() {
            let c0 = l.col_range(bj).start;
            blocks.push(b.block(bi, bj).filter(|_, j, _| !excluded[c0 + j]));
        }
    }
    let out = DistMat::from_blocks(l, blocks);
    // Excluded columns that hold no B entries shrink nothing; report
    // "no shrink" so callers can fall back to the cacheable full form.
    if out.nnz() == b.nnz() {
        return None;
    }
    Some(out)
}

/// Executes `C = A •⟨⊕,f⟩ B` under `plan`.
///
/// # Errors
/// Propagates [`MachineError::OutOfMemory`] when a rank's simulated
/// memory budget is exceeded (e.g. 1D replication of a matrix larger
/// than `M`).
pub fn mm_exec<K: SpMulKernel>(
    m: &Machine,
    plan: &MmPlan,
    a: &DistMat<K::Left>,
    b: &DistMat<K::Right>,
) -> Result<MmOut<KernelOut<K>>, MachineError> {
    mm_exec_masked::<K>(m, plan, a, b, None)
}

/// [`mm_exec`] with an optional output mask in global coordinates:
/// each plan windows the mask to its output blocks, so excluded
/// elementary products are skipped inside every local kernel call and
/// never counted in `ops`.
pub fn mm_exec_masked<K: SpMulKernel>(
    m: &Machine,
    plan: &MmPlan,
    a: &DistMat<K::Left>,
    b: &DistMat<K::Right>,
    mask: Option<&Mask>,
) -> Result<MmOut<KernelOut<K>>, MachineError> {
    let mut cache = MmCache::new();
    let out = mm_exec_cached_masked::<K>(m, plan, a, b, mask, &mut cache);
    cache.release_all(m);
    out
}

/// Like [`mm_exec`], but reusing prepared right-operand forms from
/// `cache` across calls — the Theorem-5.1 amortization for the
/// iterated frontier × adjacency products of MFBC. The cached forms
/// stay resident (charged) until [`MmCache::release_all`].
pub fn mm_exec_cached<K: SpMulKernel>(
    m: &Machine,
    plan: &MmPlan,
    a: &DistMat<K::Left>,
    b: &DistMat<K::Right>,
    cache: &mut MmCache<K::Right>,
) -> Result<MmOut<KernelOut<K>>, MachineError> {
    mm_exec_cached_masked::<K>(m, plan, a, b, None, cache)
}

/// Masked, cached execution — the full-generality entry point. Cached
/// right-operand forms are mask-*independent* (they key on the
/// operand alone), so Theorem 5.1's amortization survives a mask that
/// changes every iteration; only the uncached fresh-per-product
/// B-panel paths shrink operand volume against the mask (see
/// DESIGN.md).
pub fn mm_exec_cached_masked<K: SpMulKernel>(
    m: &Machine,
    plan: &MmPlan,
    a: &DistMat<K::Left>,
    b: &DistMat<K::Right>,
    mask: Option<&Mask>,
    cache: &mut MmCache<K::Right>,
) -> Result<MmOut<KernelOut<K>>, MachineError> {
    assert_eq!(
        a.ncols(),
        b.nrows(),
        "mm inner dimension mismatch: {}x{} by {}x{}",
        a.nrows(),
        a.ncols(),
        b.nrows(),
        b.ncols()
    );
    if let Some(mk) = mask {
        assert_eq!(
            (mk.nrows(), mk.ncols()),
            (a.nrows(), b.ncols()),
            "mask shape {}x{} does not match output shape {}x{}",
            mk.nrows(),
            mk.ncols(),
            a.nrows(),
            b.ncols()
        );
    }
    plan.check(m.p())?;
    let _span = mfbc_trace::span(|| format!("spgemm {plan}"));
    let out = match *plan {
        MmPlan::OneD(v) => mm1d::run::<K>(m, &m.world(), v, a, b, mask, cache),
        MmPlan::TwoD { variant, p2, p3 } => {
            let grid = Grid2::new(m.world(), p2, p3)?;
            mm2d::run::<K>(m, &grid, variant, a, b, mask, cache)
        }
        MmPlan::Cannon { q } => {
            let grid = Grid2::new(m.world(), q, q)?;
            crate::cannon::run::<K>(m, &grid, a, b, mask, cache)
        }
        MmPlan::ThreeD {
            split,
            inner,
            p1,
            p2,
            p3,
        } => {
            let grid = Grid3::new(m.world(), p1, p2, p3)?;
            mm3d::run::<K>(m, &grid, split, inner, a, b, mask, cache)
        }
    };
    let out = match out {
        Ok(mut out) => {
            if mfbc_fault::sabotage::armed_for(&plan.to_string()) {
                apply_fault(&mut out);
            }
            debug_assert!(
                out.c.validate().is_ok(),
                "mm_exec produced an invalid result: {:?}",
                out.c.validate()
            );
            Ok(out)
        }
        err => err,
    };
    if let Ok(out) = &out {
        mfbc_trace::emit(|| mfbc_trace::TraceEvent::Spgemm {
            plan: plan.to_string(),
            m: a.nrows() as u64,
            k: a.ncols() as u64,
            n: b.ncols() as u64,
            nnz_a: a.nnz() as u64,
            nnz_b: b.nnz() as u64,
            nnz_c: out.c.nnz() as u64,
            ops: out.ops,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn squarest_grids() {
        assert_eq!(squarest_grid(1), (1, 1));
        assert_eq!(squarest_grid(4), (2, 2));
        assert_eq!(squarest_grid(12), (3, 4));
        assert_eq!(squarest_grid(7), (1, 7));
        assert_eq!(squarest_grid(36), (6, 6));
    }

    #[test]
    fn plan_dims() {
        assert_eq!(MmPlan::OneD(Variant1D::A).dims(8), (8, 1, 1));
        assert_eq!(
            MmPlan::TwoD {
                variant: Variant2D::AB,
                p2: 2,
                p3: 4
            }
            .dims(8),
            (1, 2, 4)
        );
        let t = MmPlan::ThreeD {
            split: Variant1D::C,
            inner: Variant2D::AB,
            p1: 2,
            p2: 2,
            p3: 2,
        };
        assert_eq!(t.dims(8), (2, 2, 2));
        t.check(8).unwrap();
    }

    #[test]
    fn bad_plan_rejected() {
        let err = MmPlan::TwoD {
            variant: Variant2D::AB,
            p2: 3,
            p3: 3,
        }
        .check(8)
        .unwrap_err();
        assert!(matches!(err, MachineError::InvalidConfig { .. }));
    }
}
