//! Plan autotuning: the search over data decompositions and
//! multiplication algorithms.
//!
//! This is the paper's headline implementation feature ("MFBC …
//! automatically searches a space of distributed data decompositions
//! and sparse matrix multiplication algorithms for the most
//! advantageous configuration", §1/§6.2): for each multiplication the
//! tuner enumerates every 1D variant, every 2D variant × grid
//! factorization, and every 3D `(split, inner)` pairing × grid
//! factorization, scores them with the analytic models of
//! [`crate::costmodel`], filters out plans whose estimated per-rank
//! memory exceeds the machine budget, and picks the cheapest.

use crate::cache::MmCache;
use crate::costmodel::{memory_per_rank, predict, MmStats};
use crate::dist::DistMat;
use crate::mm::{MmOut, MmPlan};
use mfbc_algebra::kernel::KernelOut;
use mfbc_algebra::SpMulKernel;
use mfbc_machine::{Machine, MachineError, MachineSpec};
use mfbc_sparse::{entry_bytes, Mask};

/// Every candidate plan for `p` ranks — the tuner's search space is
/// exactly the enumerable plan space of [`crate::mm::enumerate_plans`]
/// (re-exported here under its historical name).
pub use crate::mm::enumerate_plans as candidate_plans;

/// Scores all candidates and returns `(best plan, predicted cost)`.
///
/// Plans whose estimated per-rank memory exceeds the spec's budget
/// are skipped; if *every* plan exceeds it, the cheapest is returned
/// anyway (the executor will surface the out-of-memory error, as the
/// real run would).
pub fn best_plan(spec: &MachineSpec, st: &MmStats) -> (MmPlan, f64) {
    let mut best: Option<(MmPlan, f64)> = None;
    let mut best_any: Option<(MmPlan, f64)> = None;
    // Candidate table kept only while a trace recorder is active.
    let mut table: Vec<mfbc_trace::PlanChoice> = Vec::new();
    let tracing = mfbc_trace::enabled();
    for plan in candidate_plans(spec.p) {
        let t = predict(spec, &plan, st);
        let mem = memory_per_rank(&plan, st, spec.p);
        let feasible = spec.mem_bytes.is_none_or(|budget| mem <= budget);
        if tracing {
            table.push(mfbc_trace::PlanChoice {
                plan: plan.to_string(),
                cost_s: t,
                mem_bytes: mem,
                feasible,
            });
        }
        if best_any.as_ref().is_none_or(|(_, bt)| t < *bt) {
            best_any = Some((plan.clone(), t));
        }
        if !feasible {
            continue;
        }
        if best.as_ref().is_none_or(|(_, bt)| t < *bt) {
            best = Some((plan, t));
        }
    }
    let (plan, cost) = best.or(best_any).expect("candidate set is never empty");
    mfbc_trace::emit(|| mfbc_trace::TraceEvent::Autotune {
        m: st.m,
        k: st.k,
        n: st.n,
        nnz_a: st.nnz_a,
        nnz_b: st.nnz_b,
        candidates: table,
        winner: plan.to_string(),
        winner_cost_s: cost,
    });
    (plan, cost)
}

/// Builds [`MmStats`] for a concrete operand pair, using the measured
/// operand counts and the uniform-model estimates for the output.
pub fn stats_for<K: SpMulKernel>(a: &DistMat<K::Left>, b: &DistMat<K::Right>) -> MmStats {
    MmStats::estimate(
        a.nrows() as u64,
        a.ncols() as u64,
        b.ncols() as u64,
        a.nnz() as u64,
        b.nnz() as u64,
        entry_bytes::<K::Left>() as u64,
        entry_bytes::<K::Right>() as u64,
        entry_bytes::<KernelOut<K>>() as u64,
    )
}

/// Builds [`MmStats`] for a masked multiplication: the unmasked stats
/// thinned by the mask's allowed fraction, with the movable-B
/// fraction measured exactly — the entries of B that sit in fully
/// masked-out output columns are the ones an uncached B-panel
/// redistribution leaves at home, so the model prices precisely what
/// the executor would ship.
pub fn stats_for_masked<K: SpMulKernel>(
    a: &DistMat<K::Left>,
    b: &DistMat<K::Right>,
    mask: Option<&Mask>,
) -> MmStats {
    let st = stats_for::<K>(a, b);
    match mask {
        None => st,
        Some(mk) => {
            let excluded = mk.fully_excluded_cols();
            let mut dropped = 0u64;
            if excluded.iter().any(|&e| e) {
                let l = b.layout();
                for bi in 0..l.br() {
                    for bj in 0..l.bc() {
                        let c0 = l.col_range(bj).start;
                        dropped += b
                            .block(bi, bj)
                            .iter()
                            .filter(|(_, j, _)| excluded[c0 + *j])
                            .count() as u64;
                    }
                }
            }
            let kept_frac = if st.nnz_b == 0 {
                1.0
            } else {
                (st.nnz_b - dropped) as f64 / st.nnz_b as f64
            };
            st.with_mask(mk.allowed_fraction(), kept_frac)
        }
    }
}

/// Autotuned multiplication: pick the best plan for these operands
/// and execute it. Returns the chosen plan alongside the product.
pub fn mm_auto<K: SpMulKernel>(
    m: &Machine,
    a: &DistMat<K::Left>,
    b: &DistMat<K::Right>,
) -> Result<(MmOut<KernelOut<K>>, MmPlan), MachineError> {
    mm_auto_masked::<K>(m, a, b, None)
}

/// [`mm_auto`] with an optional output mask: masked stats steer the
/// plan choice, and the chosen plan executes masked.
pub fn mm_auto_masked<K: SpMulKernel>(
    m: &Machine,
    a: &DistMat<K::Left>,
    b: &DistMat<K::Right>,
    mask: Option<&Mask>,
) -> Result<(MmOut<KernelOut<K>>, MmPlan), MachineError> {
    let _span = mfbc_trace::span(|| "mm_auto".to_string());
    let st = stats_for_masked::<K>(a, b, mask);
    let (plan, _) = best_plan(m.spec(), &st);
    let out = crate::mm::mm_exec_masked::<K>(m, &plan, a, b, mask)?;
    Ok((out, plan))
}

/// Autotuned multiplication with right-operand caching: prepared
/// adjacency forms persist in `cache` across calls (and across the
/// different plans the tuner picks as the frontier evolves).
pub fn mm_auto_cached<K: SpMulKernel>(
    m: &Machine,
    a: &DistMat<K::Left>,
    b: &DistMat<K::Right>,
    cache: &mut MmCache<K::Right>,
) -> Result<(MmOut<KernelOut<K>>, MmPlan), MachineError> {
    mm_auto_cached_masked::<K>(m, a, b, None, cache)
}

/// [`mm_auto_cached`] with an optional output mask. Cached right-hand
/// forms are mask-independent (they key on content, and masking never
/// alters what a cached form holds), so amortization across masked
/// and unmasked calls is preserved.
pub fn mm_auto_cached_masked<K: SpMulKernel>(
    m: &Machine,
    a: &DistMat<K::Left>,
    b: &DistMat<K::Right>,
    mask: Option<&Mask>,
    cache: &mut MmCache<K::Right>,
) -> Result<(MmOut<KernelOut<K>>, MmPlan), MachineError> {
    let _span = mfbc_trace::span(|| "mm_auto".to_string());
    let st = stats_for_masked::<K>(a, b, mask);
    let (plan, _) = best_plan(m.spec(), &st);
    let out = crate::mm::mm_exec_cached_masked::<K>(m, &plan, a, b, mask, cache)?;
    Ok((out, plan))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mm::Variant1D;

    #[test]
    fn candidate_space_shape() {
        // p = 8: 1D ×3; 2D pairs (1,8),(2,4),(4,2),(8,1) ×3; 3D
        // factorizations with p1>1 and p2·p3>1 × 9.
        let plans = candidate_plans(8);
        let one = plans
            .iter()
            .filter(|p| matches!(p, MmPlan::OneD(_)))
            .count();
        let two = plans
            .iter()
            .filter(|p| matches!(p, MmPlan::TwoD { .. }))
            .count();
        let three = plans
            .iter()
            .filter(|p| matches!(p, MmPlan::ThreeD { .. }))
            .count();
        assert_eq!(one, 3);
        assert_eq!(two, 12);
        // (2,1,4),(2,2,2),(2,4,1),(4,1,2),(4,2,1) → 5 grids × 9.
        assert_eq!(three, 45);
        // p = 8 is not square: no Cannon candidate.
        assert!(!plans.iter().any(|p| matches!(p, MmPlan::Cannon { .. })));
        // p = 16 is: exactly one.
        let c16 = candidate_plans(16)
            .into_iter()
            .filter(|p| matches!(p, MmPlan::Cannon { .. }))
            .count();
        assert_eq!(c16, 1);
    }

    #[test]
    fn p1_is_degenerate_single_plan_space() {
        let plans = candidate_plans(1);
        assert!(plans.iter().all(|p| matches!(p, MmPlan::OneD(_))));
    }

    #[test]
    fn best_plan_prefers_not_replicating_the_dense_operand() {
        let spec = MachineSpec::test(16);
        // B is enormous compared to A.
        let st = MmStats::estimate(512, 100_000, 100_000, 2_000, 10_000_000, 12, 12, 20);
        let (plan, _) = best_plan(&spec, &st);
        assert!(
            !matches!(plan, MmPlan::OneD(Variant1D::B)),
            "must not replicate the big operand: {plan:?}"
        );
    }

    #[test]
    fn memory_budget_excludes_replication_plans() {
        // Budget below full-matrix replication but above blocked use.
        let st = MmStats::estimate(1000, 1000, 1000, 100_000, 100_000, 12, 12, 20);
        let mut spec = MachineSpec::test(16);
        // Enough for blocked layouts (~1.6 MB/rank with the dense
        // nnz(C) estimate) but not for full replication (+1.2 MB).
        spec.mem_bytes = Some(2_000_000);
        let (plan, _) = best_plan(&spec, &st);
        assert!(
            memory_per_rank(&plan, &st, 16) <= 2_000_000,
            "plan {plan:?} violates budget"
        );
        // Sanity: replication really is over budget.
        assert!(memory_per_rank(&MmPlan::OneD(Variant1D::A), &st, 16) > 2_000_000);
    }
}
