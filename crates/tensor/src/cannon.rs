//! Cannon's algorithm — the point-to-point 2D variant of §5.2.2.
//!
//! "One of the simplest 2D algorithms is Cannon's algorithm, which
//! shifts blocks of A and B on a square processor grid, achieving a
//! communication cost of O(α·√p + β·(nnz(A)+nnz(B))/√p)." Unlike the
//! broadcast-based SUMMA variants, Cannon's uses only point-to-point
//! cyclic shifts — `√p` messages instead of `√p log p`, at the price
//! of requiring a square grid and moving *both* operands.
//!
//! Included for completeness of the paper's algorithm space and for
//! the latency-vs-bandwidth ablation: the autotuner may select it
//! (`MmPlan::Cannon`) when the α term dominates.

#![allow(clippy::needless_range_loop)] // indices are grid coordinates

use crate::cache::MmCache;
use crate::dist::{DistMat, Layout};
use crate::grid::Grid2;
use crate::mm::assemble_canonical;
use crate::mm1d::{FirstWins, Piece};
use crate::redist::redistribute;
use mfbc_algebra::kernel::KernelOut;
use mfbc_algebra::SpMulKernel;
use mfbc_machine::cost::CollectiveKind;
use mfbc_machine::{Machine, MachineError};
use mfbc_sparse::elementwise::combine;
use mfbc_sparse::{entry_bytes, spgemm_opt, Csr, Mask};

/// Runs Cannon's algorithm on a `q × q` grid.
///
/// The initial skew aligns block `A(i, j)` to position
/// `(i, j−i mod q)` and `B(i, j)` to `(i−j mod q, j)`; each of the
/// `q` steps multiplies the aligned blocks and shifts A's blocks left
/// along rows, B's blocks up along columns — one point-to-point
/// message per rank per step.
pub(crate) fn run_pieces<K: SpMulKernel>(
    m: &Machine,
    grid: &Grid2,
    a: &DistMat<K::Left>,
    b: &DistMat<K::Right>,
    mask: Option<&Mask>,
    _cache: &mut MmCache<K::Right>,
) -> Result<(Vec<Piece<KernelOut<K>>>, u64), MachineError> {
    let q = grid.g1();
    assert_eq!(
        grid.g1(),
        grid.g2(),
        "Cannon's algorithm needs a square grid"
    );
    let (mm, kk, nn) = (a.nrows(), a.ncols(), b.ncols());

    // Natural q × q layouts; k is cut identically for both operands.
    let la = Layout::on_grid(mm, kk, grid);
    let lb = Layout::on_grid(kk, nn, grid);
    let a2 = redistribute::<FirstWins<K::Left>, _>(m, a, &la)?;
    // B's redistribution is never cached here, so (as in 1D variant
    // A) a mask can shrink the moved volume: entries in columns the
    // mask excludes for every output row only feed skipped products.
    let shrunk = mask.and_then(|mk| crate::mm::shrink_rhs_against_mask(b, mk));
    let b2 = redistribute::<FirstWins<K::Right>, _>(m, shrunk.as_ref().unwrap_or(b), &lb)?;

    // Local block tables indexed by grid position; the skew and the
    // per-step shifts permute them. `a_blocks[i][j]` is the block
    // currently *resident at* grid position (i, j).
    let mut a_blocks: Vec<Vec<Csr<K::Left>>> = (0..q)
        .map(|i| (0..q).map(|j| a2.block(i, (j + i) % q).clone()).collect())
        .collect();
    let mut b_blocks: Vec<Vec<Csr<K::Right>>> = (0..q)
        .map(|i| (0..q).map(|j| b2.block((i + j) % q, j).clone()).collect())
        .collect();
    // The initial skew itself is communication: each rank sends its
    // block up to q−1 hops (modeled as one point-to-point per rank,
    // as on a torus where the skew is a single permutation route).
    // Under overlapped accounting the charge is issued nonblocking
    // and completed just before the first multiply.
    let mut in_flight = charge_shift_all(m, grid, &a_blocks, &b_blocks)?;

    let mut acc: Vec<Vec<Csr<KernelOut<K>>>> = (0..q)
        .map(|i| {
            (0..q)
                .map(|j| Csr::zero(la.row_range(i).len(), lb.col_range(j).len()))
                .collect()
        })
        .collect();
    // Position (i, j) accumulates the same output rectangle at every
    // step, so one mask window per position serves the whole run.
    let windows: Option<Vec<Vec<Mask>>> = mask.map(|mk| {
        (0..q)
            .map(|i| {
                (0..q)
                    .map(|j| mk.window(la.row_range(i), lb.col_range(j)))
                    .collect()
            })
            .collect()
    });
    let mut ops = 0u64;

    let overlap = m.spec().overlap;
    for step in 0..q {
        // The blocks this step multiplies must have arrived.
        for h in in_flight.drain(..) {
            m.wait_collective(h)?;
        }
        if overlap && step + 1 < q {
            // Issue the next shift round before this step's compute so
            // its β time hides under it. Each ring keeps the same set
            // of blocks across a rotation, so the per-ring max charge
            // is identical whether taken pre- or post-rotation.
            in_flight = charge_shift_all(m, grid, &a_blocks, &b_blocks)?;
        }
        for i in 0..q {
            for j in 0..q {
                let (ab, bb) = (&a_blocks[i][j], &b_blocks[i][j]);
                if ab.is_empty() || bb.is_empty() {
                    continue;
                }
                let w = windows.as_ref().map(|ws| &ws[i][j]);
                let out = spgemm_opt::<K>(ab, bb, w);
                m.charge_compute(grid.rank(i, j), out.ops + out.mat.nnz() as u64);
                ops += out.ops;
                acc[i][j] = combine::<K::Acc, _>(&acc[i][j], &out.mat);
            }
        }
        if step + 1 < q {
            // Shift A left along rows, B up along columns.
            for row in a_blocks.iter_mut() {
                row.rotate_left(1);
            }
            let first = b_blocks.remove(0);
            b_blocks.push(first);
            if !overlap {
                // Blocking mode keeps the legacy schedule: the shift
                // is charged after the rotation, serialized.
                charge_shift_all(m, grid, &a_blocks, &b_blocks)?;
            }
        }
    }

    let mut pieces = Vec::with_capacity(q * q);
    for (i, row) in acc.into_iter().enumerate() {
        for (j, blk) in row.into_iter().enumerate() {
            if !blk.is_empty() {
                pieces.push((la.row_range(i).start, lb.col_range(j).start, i * q + j, blk));
            }
        }
    }
    Ok((pieces, ops))
}

/// Charges one point-to-point round: every rank sends its current A
/// block along its row ring and its B block along its column ring.
/// Rings are disjoint per direction, so each ring's message lands on
/// its members' critical paths independently. When the machine's spec
/// overlaps, the charges are issued nonblocking and their handles
/// returned (empty otherwise) — the caller completes them before the
/// shifted blocks are multiplied.
fn charge_shift_all<L, R>(
    m: &Machine,
    grid: &Grid2,
    a_blocks: &[Vec<Csr<L>>],
    b_blocks: &[Vec<Csr<R>>],
) -> Result<Vec<u64>, MachineError> {
    let q = grid.g1();
    let mut handles = Vec::new();
    if q <= 1 {
        return Ok(handles);
    }
    let overlap = m.spec().overlap;
    for i in 0..q {
        let bytes = (0..q)
            .map(|j| (a_blocks[i][j].nnz() * entry_bytes::<L>()) as u64)
            .max()
            .unwrap_or(0);
        let g = grid.row_group(i);
        if overlap {
            handles.push(m.icharge_collective(&g, CollectiveKind::PointToPoint, bytes)?);
        } else {
            m.charge_collective(&g, CollectiveKind::PointToPoint, bytes)?;
        }
    }
    for j in 0..q {
        let bytes = (0..q)
            .map(|i| (b_blocks[i][j].nnz() * entry_bytes::<R>()) as u64)
            .max()
            .unwrap_or(0);
        let g = grid.col_group(j);
        if overlap {
            handles.push(m.icharge_collective(&g, CollectiveKind::PointToPoint, bytes)?);
        } else {
            m.charge_collective(&g, CollectiveKind::PointToPoint, bytes)?;
        }
    }
    Ok(handles)
}

/// Assembled-run wrapper mirroring the other variants.
pub(crate) fn run<K: SpMulKernel>(
    m: &Machine,
    grid: &Grid2,
    a: &DistMat<K::Left>,
    b: &DistMat<K::Right>,
    mask: Option<&Mask>,
    cache: &mut MmCache<K::Right>,
) -> Result<crate::mm::MmOut<KernelOut<K>>, MachineError> {
    let (pieces, ops) = run_pieces::<K>(m, grid, a, b, mask, cache)?;
    let c = assemble_canonical::<K::Acc, _>(m, a.nrows(), b.ncols(), pieces);
    Ok(crate::mm::MmOut { c, ops })
}

/// Predicted time of Cannon's algorithm (the §5.2.2 formula):
/// `α·√p + β·(nnz(A)+nnz(B))/√p` plus compute, with the shift
/// bandwidth overlappable under compute when the spec overlaps.
pub fn predict_cannon(
    spec: &mfbc_machine::MachineSpec,
    q: usize,
    st: &crate::costmodel::MmStats,
) -> f64 {
    let p = q * q;
    // Cannon's B redistribution and shifts are uncached, so (as in
    // 1D variant A) a mask shrinks the moved B volume.
    let ba = (st.nnz_a * st.eb_a) as f64;
    let bb = (st.nnz_b * st.eb_b) as f64 * st.b_move_frac;
    let mut t = crate::costmodel::Terms {
        comp: spec.gamma * (st.ops + st.nnz_c) as f64 / p as f64,
        ..Default::default()
    };
    if p > 1 {
        // q shift rounds (incl. skew) of one message each direction.
        t.alpha = 2.0 * q as f64 * spec.alpha;
        t.beta = spec.beta * (ba + bb) / q as f64;
        // Plus the canonical redistribution of both operands.
        t.redist =
            crate::costmodel::redist_time(spec, p, ba) + crate::costmodel::redist_time(spec, p, bb);
    }
    t.combine(spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfbc_algebra::kernel::TropicalKernel;
    use mfbc_algebra::monoid::MinDist;
    use mfbc_algebra::Dist;
    use mfbc_machine::{Group, MachineSpec};
    use mfbc_sparse::{spgemm_serial, Coo};
    use rand::{Rng, SeedableRng};

    fn random_mat(seed: u64, n: usize, nnz: usize) -> Csr<Dist> {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let mut coo = Coo::new(n, n);
        for _ in 0..nnz {
            coo.push(
                rng.gen_range(0..n),
                rng.gen_range(0..n),
                Dist::new(rng.gen_range(1..30)),
            );
        }
        coo.into_csr::<MinDist>()
    }

    #[test]
    fn cannon_matches_serial() {
        for q in [1usize, 2, 3, 4] {
            let p = q * q;
            let n = 33;
            let a = random_mat(1, n, 180);
            let b = random_mat(2, n, 200);
            let want = spgemm_serial::<TropicalKernel>(&a, &b);
            let m = Machine::new(MachineSpec::test(p));
            let grid = Grid2::new(Group::all(p), q, q).unwrap();
            let da = DistMat::from_global(crate::canonical_layout(&m, n, n), &a);
            let db = DistMat::from_global(crate::canonical_layout(&m, n, n), &b);
            let mut cache = MmCache::new();
            let out = run::<TropicalKernel>(&m, &grid, &da, &db, None, &mut cache).unwrap();
            cache.release_all(&m);
            assert_eq!(out.c.to_global::<MinDist>(), want.mat, "q={q}");
            assert_eq!(out.ops, want.ops, "q={q}");
        }
    }

    #[test]
    fn cannon_uses_point_to_point_only() {
        let q = 3;
        let n = 30;
        let a = random_mat(3, n, 150);
        let m = Machine::new(MachineSpec::test(q * q));
        let grid = Grid2::new(Group::all(q * q), q, q).unwrap();
        let da = DistMat::from_global(crate::canonical_layout(&m, n, n), &a);
        let db = da.clone();
        let mut cache = MmCache::new();
        let _ = run::<TropicalKernel>(&m, &grid, &da, &db, None, &mut cache).unwrap();
        cache.release_all(&m);
        // q shift rounds × 2 directions = 2q point-to-point messages
        // per rank on the critical path, plus the redistribution
        // all-to-all — far below SUMMA's 2·q·log₂(q)-per-step counts.
        let msgs = m.report().critical.msgs;
        assert!(msgs <= (2 * q + 4) as u64, "msgs = {msgs}");
    }

    #[test]
    #[should_panic]
    fn cannon_rejects_rectangular_grids() {
        let m = Machine::new(MachineSpec::test(6));
        let grid = Grid2::new(Group::all(6), 2, 3).unwrap();
        let a = random_mat(5, 12, 40);
        let da = DistMat::from_global(crate::canonical_layout(&m, 12, 12), &a);
        let mut cache = MmCache::new();
        let _ = run::<TropicalKernel>(&m, &grid, &da, &da.clone(), None, &mut cache);
    }
}
