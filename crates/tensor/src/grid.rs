//! Processor grids: 1D/2D/3D factorizations of the machine.
//!
//! CTF maps each tensor onto a processor grid and searches the space
//! of grids per operation (§6.2). Here a [`Grid2`] names a `g1 × g2`
//! arrangement of a rank [`Group`]; [`Grid3`] adds a replication
//! dimension `p1` of layers, each a `Grid2`. [`factorizations`]
//! enumerates the candidate grids the autotuner scores.

use mfbc_machine::{Group, MachineError};

/// A 2D processor grid over an ordered rank group: member
/// `(i, j)` is group index `i * g2 + j`.
#[derive(Clone, Debug)]
pub struct Grid2 {
    group: Group,
    g1: usize,
    g2: usize,
}

impl Grid2 {
    /// Builds a `g1 × g2` grid over `group`. Grid shapes flow from
    /// user-supplied plans, so a mismatched shape is a typed
    /// [`MachineError::InvalidConfig`] rather than a panic.
    pub fn new(group: Group, g1: usize, g2: usize) -> Result<Grid2, MachineError> {
        if g1 == 0 || g2 == 0 || group.len() != g1 * g2 {
            return Err(MachineError::invalid(format!(
                "grid shape {g1}x{g2} does not tile a {}-rank group",
                group.len()
            )));
        }
        Ok(Grid2 { group, g1, g2 })
    }

    /// Grid rows.
    #[inline]
    pub fn g1(&self) -> usize {
        self.g1
    }

    /// Grid columns.
    #[inline]
    pub fn g2(&self) -> usize {
        self.g2
    }

    /// The underlying group.
    #[inline]
    pub fn group(&self) -> &Group {
        &self.group
    }

    /// World rank of grid position `(i, j)`.
    #[inline]
    pub fn rank(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < self.g1 && j < self.g2);
        self.group.rank_at(i * self.g2 + j)
    }

    /// The row subgroup `{(i, 0), …, (i, g2−1)}`.
    pub fn row_group(&self, i: usize) -> Group {
        Group::new((0..self.g2).map(|j| self.rank(i, j)).collect())
            .expect("grid rows are distinct by construction")
    }

    /// The column subgroup `{(0, j), …, (g1−1, j)}`.
    pub fn col_group(&self, j: usize) -> Group {
        Group::new((0..self.g1).map(|i| self.rank(i, j)).collect())
            .expect("grid columns are distinct by construction")
    }
}

/// A 3D processor grid: `p1` layers, each a `p2 × p3` [`Grid2`].
/// World rank of `(l, i, j)` is group index `l·p2·p3 + i·p3 + j`.
#[derive(Clone, Debug)]
pub struct Grid3 {
    group: Group,
    p1: usize,
    p2: usize,
    p3: usize,
}

impl Grid3 {
    /// Builds a `p1 × p2 × p3` grid over `group`; a mismatched shape
    /// is a typed [`MachineError::InvalidConfig`].
    pub fn new(group: Group, p1: usize, p2: usize, p3: usize) -> Result<Grid3, MachineError> {
        if p1 == 0 || p2 == 0 || p3 == 0 || group.len() != p1 * p2 * p3 {
            return Err(MachineError::invalid(format!(
                "grid shape {p1}x{p2}x{p3} does not tile a {}-rank group",
                group.len()
            )));
        }
        Ok(Grid3 { group, p1, p2, p3 })
    }

    /// Number of layers (the 1D/replication dimension).
    #[inline]
    pub fn p1(&self) -> usize {
        self.p1
    }

    /// Layer-grid rows.
    #[inline]
    pub fn p2(&self) -> usize {
        self.p2
    }

    /// Layer-grid columns.
    #[inline]
    pub fn p3(&self) -> usize {
        self.p3
    }

    /// The underlying group.
    #[inline]
    pub fn group(&self) -> &Group {
        &self.group
    }

    /// The 2D grid of layer `l`.
    pub fn layer(&self, l: usize) -> Grid2 {
        assert!(l < self.p1);
        let ranks = (0..self.p2 * self.p3)
            .map(|k| self.group.rank_at(l * self.p2 * self.p3 + k))
            .collect();
        let group = Group::new(ranks).expect("layer ranks are distinct by construction");
        Grid2::new(group, self.p2, self.p3).expect("layer shape matches by construction")
    }

    /// The fiber subgroup across layers at layer-position `(i, j)`:
    /// `{(0,i,j), …, (p1−1,i,j)}` — the groups 3D algorithms
    /// replicate over and reduce along.
    pub fn fiber_group(&self, i: usize, j: usize) -> Group {
        assert!(i < self.p2 && j < self.p3);
        Group::new(
            (0..self.p1)
                .map(|l| self.group.rank_at(l * self.p2 * self.p3 + i * self.p3 + j))
                .collect(),
        )
        .expect("fiber ranks are distinct by construction")
    }
}

/// All ordered factorizations `(p1, p2, p3)` with `p1·p2·p3 == p` —
/// the grid search space of the autotuner (§5.2's
/// `min_{p1 p2 p3 = p}`).
pub fn factorizations(p: usize) -> Vec<(usize, usize, usize)> {
    let mut out = Vec::new();
    let mut d1 = 1;
    while d1 * d1 * d1 <= p * p * p {
        if d1 > p {
            break;
        }
        if p.is_multiple_of(d1) {
            let q = p / d1;
            let mut d2 = 1;
            while d2 <= q {
                if q.is_multiple_of(d2) {
                    out.push((d1, d2, q / d2));
                }
                d2 += 1;
            }
        }
        d1 += 1;
    }
    out
}

/// Least common multiple (used for SUMMA step counts).
pub fn lcm(a: usize, b: usize) -> usize {
    a / gcd(a, b) * b
}

/// Greatest common divisor.
pub fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid2_rank_layout() {
        let g = Grid2::new(Group::all(6), 2, 3).unwrap();
        assert_eq!(g.rank(0, 0), 0);
        assert_eq!(g.rank(0, 2), 2);
        assert_eq!(g.rank(1, 0), 3);
        assert_eq!(g.row_group(1).ranks(), &[3, 4, 5]);
        assert_eq!(g.col_group(1).ranks(), &[1, 4]);
    }

    #[test]
    fn grid3_layers_and_fibers() {
        let g = Grid3::new(Group::all(12), 3, 2, 2).unwrap();
        let l1 = g.layer(1);
        assert_eq!(l1.rank(0, 0), 4);
        assert_eq!(l1.rank(1, 1), 7);
        assert_eq!(g.fiber_group(1, 0).ranks(), &[2, 6, 10]);
    }

    #[test]
    fn factorizations_cover_p() {
        let fs = factorizations(12);
        assert!(fs.contains(&(1, 1, 12)));
        assert!(fs.contains(&(2, 2, 3)));
        assert!(fs.contains(&(12, 1, 1)));
        for (a, b, c) in fs {
            assert_eq!(a * b * c, 12);
        }
        assert_eq!(factorizations(1), vec![(1, 1, 1)]);
    }

    #[test]
    fn factorization_count_for_prime() {
        // p prime: (1,1,p),(1,p,1),(p,1,1) only.
        assert_eq!(factorizations(7).len(), 3);
    }

    #[test]
    fn lcm_gcd() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(lcm(4, 6), 12);
        assert_eq!(lcm(1, 5), 5);
        assert_eq!(lcm(8, 8), 8);
    }

    #[test]
    fn grid_shape_must_match_group() {
        assert!(matches!(
            Grid2::new(Group::all(5), 2, 3),
            Err(MachineError::InvalidConfig { .. })
        ));
        assert!(matches!(
            Grid3::new(Group::all(5), 2, 3, 1),
            Err(MachineError::InvalidConfig { .. })
        ));
    }
}
