//! Analytic communication-cost models for every MM variant (§5.2).
//!
//! The autotuner scores candidate plans with these closed-form
//! predictions — the same role CTF's linear cost models play (§6.2:
//! "CTF predicts the cost of communication routines, redistributions,
//! and blockwise operations based on linear cost models"). The
//! formulas mirror exactly what the executor charges, so a plan's
//! predicted cost tracks its charged cost; unit tests assert this
//! correspondence on concrete cases.

use crate::grid::lcm;
use crate::mm::{MmPlan, Variant1D, Variant2D};
use mfbc_machine::cost::log2_ceil;
use mfbc_machine::MachineSpec;

/// Problem statistics the models consume: shapes, nonzero counts, and
/// per-entry byte sizes of the three matrices (`C`'s count is an
/// estimate — §5.2's uniform model `nnz(C) ≈ min(mn, ops)` with
/// `ops ≈ nnz(A)·nnz(B)/k`).
#[derive(Clone, Copy, Debug)]
pub struct MmStats {
    /// Rows of A/C.
    pub m: u64,
    /// Columns of A / rows of B (contraction dimension).
    pub k: u64,
    /// Columns of B/C.
    pub n: u64,
    /// Stored entries of A.
    pub nnz_a: u64,
    /// Stored entries of B.
    pub nnz_b: u64,
    /// Estimated stored entries of C.
    pub nnz_c: u64,
    /// Estimated elementary products.
    pub ops: u64,
    /// Bytes per stored entry of A.
    pub eb_a: u64,
    /// Bytes per stored entry of B.
    pub eb_b: u64,
    /// Bytes per stored entry of C.
    pub eb_c: u64,
    /// Fraction of B that must move through a fresh right-hand
    /// redistribution (1D variant A on a cache miss, Cannon). An
    /// output mask leaves B entries in fully-excluded columns at
    /// home, so masked plans set this below 1; cached B forms are
    /// mask-independent and keep paying the full volume, which is
    /// what shifts the plan crossovers under masking.
    pub b_move_frac: f64,
}

impl MmStats {
    /// Builds stats from shapes and operand counts using the paper's
    /// uniform-sparsity estimates for `ops` and `nnz(C)`.
    #[allow(clippy::too_many_arguments)]
    pub fn estimate(
        m: u64,
        k: u64,
        n: u64,
        nnz_a: u64,
        nnz_b: u64,
        eb_a: u64,
        eb_b: u64,
        eb_c: u64,
    ) -> MmStats {
        let ops = if k == 0 {
            0
        } else {
            ((nnz_a as f64) * (nnz_b as f64) / (k as f64)).ceil() as u64
        };
        let nnz_c = ops.min(m.saturating_mul(n));
        MmStats {
            m,
            k,
            n,
            nnz_a,
            nnz_b,
            nnz_c,
            ops,
            eb_a,
            eb_b,
            eb_c,
            b_move_frac: 1.0,
        }
    }

    /// Stats for the same multiplication under an output mask that
    /// admits `allowed_frac` of the output coordinates and keeps
    /// `b_kept_frac` of B's entries movable (entries outside fully
    /// masked-out columns). Under the uniform-sparsity model a mask
    /// thins elementary products and output entries proportionally.
    pub fn with_mask(&self, allowed_frac: f64, b_kept_frac: f64) -> MmStats {
        let f = allowed_frac.clamp(0.0, 1.0);
        let mut s = *self;
        s.ops = ((self.ops as f64) * f).ceil() as u64;
        s.nnz_c = ((self.nnz_c as f64) * f).ceil() as u64;
        s.b_move_frac = b_kept_frac.clamp(0.0, 1.0);
        s
    }
}

fn lg(x: usize) -> f64 {
    log2_ceil(x) as f64
}

/// Additive components of a plan's predicted time, kept apart so the
/// spec's execution mode decides how they stack:
///
/// * serialized — `redist + α + β + comp`: every term sits on the
///   critical path, the pre-overlap accounting;
/// * overlapped — `redist + α + max(β, comp)`: the superstep
///   pipelines issue the next panel transfer under the current
///   multiply, so bandwidth hides under compute (and vice versa)
///   while latency (the blocking issue edge) and the up-front
///   redistribution stay exposed.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct Terms {
    /// Operand redistribution time (mode-aware via [`redist_time`]).
    pub(crate) redist: f64,
    /// Superstep latency: α per collective issue, never hidden.
    pub(crate) alpha: f64,
    /// Superstep bandwidth: β volume of the pipelined panel moves.
    pub(crate) beta: f64,
    /// Per-rank compute: γ per elementary product and output entry.
    pub(crate) comp: f64,
}

impl Terms {
    /// Collapses the components under the spec's execution mode.
    pub(crate) fn combine(&self, spec: &MachineSpec) -> f64 {
        if spec.overlap {
            self.redist + self.alpha + self.beta.max(self.comp)
        } else {
            self.redist + self.alpha + self.beta + self.comp
        }
    }
}

/// Predicted wall-clock seconds for one operand redistribution of a
/// matrix with `bytes` total payload over `p` ranks, under the spec's
/// redistribution mode:
///
/// * `Alltoall` — `β·B/p + α·⌈lg p⌉` (the §6.2 baseline);
/// * `P2p` — `α·(p−1) + β·B/p`: each sender pays a latency per
///   destination but ships only what each destination needs;
/// * `Bcast` — `2β·B/p + 2α·⌈lg p⌉`: the broadcast closed form on the
///   per-sender volume;
/// * `Auto` — the cheapest of the two hybrids and the all-to-all
///   fallback, matching the executor's
///   per-sender choice under uniform traffic.
pub(crate) fn redist_time(spec: &MachineSpec, p: usize, bytes: f64) -> f64 {
    if p <= 1 || bytes == 0.0 {
        return 0.0;
    }
    let per_sender = bytes / p as f64;
    let alltoall = spec.beta * per_sender + spec.alpha * lg(p);
    let p2p = spec.alpha * (p - 1) as f64 + spec.beta * per_sender;
    let bcast = 2.0 * spec.beta * per_sender + 2.0 * spec.alpha * lg(p);
    match spec.redist {
        mfbc_machine::RedistMode::Alltoall => alltoall,
        mfbc_machine::RedistMode::P2p => p2p,
        mfbc_machine::RedistMode::Bcast => bcast,
        mfbc_machine::RedistMode::Auto => p2p.min(bcast).min(alltoall),
    }
}

/// Predicted cost components of a 2D variant on a `g1 × g2` grid with
/// the given (possibly layer-shrunk) stats.
fn terms_2d(spec: &MachineSpec, g1: usize, g2: usize, v: Variant2D, st: &MmStats) -> Terms {
    let p = g1 * g2;
    let s = lcm(g1, g2) as f64;
    let (ba, bb, bc) = (
        (st.nnz_a * st.eb_a) as f64,
        (st.nnz_b * st.eb_b) as f64,
        (st.nnz_c * st.eb_c) as f64,
    );
    let mut t = Terms {
        redist: redist_time(spec, p, ba) + redist_time(spec, p, bb),
        comp: spec.gamma * (st.ops + st.nnz_c) as f64 / p as f64,
        ..Terms::default()
    };
    if p > 1 {
        match v {
            Variant2D::AB => {
                t.beta = 2.0 * spec.beta * (ba / g1 as f64 + bb / g2 as f64);
                t.alpha = s * 2.0 * spec.alpha * (lg(g1) + lg(g2));
            }
            Variant2D::AC => {
                t.beta = 2.0 * spec.beta * ba / g1 as f64 + spec.beta * bc / g2 as f64;
                t.alpha = s * spec.alpha * (2.0 * lg(g2) + lg(g1));
            }
            Variant2D::BC => {
                t.beta = 2.0 * spec.beta * bb / g2 as f64 + spec.beta * bc / g1 as f64;
                t.alpha = s * spec.alpha * (2.0 * lg(g1) + lg(g2));
            }
        }
    }
    t
}

/// Predicted cost components of a 1D variant over `p` ranks.
fn terms_1d(spec: &MachineSpec, p: usize, v: Variant1D, st: &MmStats) -> Terms {
    let (ba, bb, bc) = (
        (st.nnz_a * st.eb_a) as f64,
        (st.nnz_b * st.eb_b) as f64,
        (st.nnz_c * st.eb_c) as f64,
    );
    let mut t = Terms {
        comp: spec.gamma * (st.ops + st.nnz_c) as f64 / p as f64,
        ..Terms::default()
    };
    if p > 1 {
        match v {
            // Variant A's B redistribution is the one 1D right-hand
            // move that may ship a mask-shrunk operand (the shrunk
            // form bypasses the cache), so only it sees the masked
            // shrink factor.
            Variant1D::A => {
                t.beta = spec.beta * ba;
                t.alpha = spec.alpha * lg(p);
                t.redist = redist_time(spec, p, bb * st.b_move_frac);
            }
            Variant1D::B => {
                t.beta = spec.beta * bb;
                t.alpha = spec.alpha * lg(p);
                t.redist = redist_time(spec, p, ba);
            }
            Variant1D::C => {
                t.redist = redist_time(spec, p, ba) + redist_time(spec, p, bb);
                t.beta = spec.beta * bc;
                t.alpha = spec.alpha * lg(p);
            }
        }
    }
    t
}

/// Shrinks stats for a layer of a 3D algorithm splitting matrix `X`.
fn layer_stats(st: &MmStats, split: Variant1D, p1: u64) -> MmStats {
    let mut s = *st;
    match split {
        Variant1D::A => {
            // B, C columns split.
            s.n = st.n.div_ceil(p1);
            s.nnz_b = st.nnz_b.div_ceil(p1);
            s.nnz_c = st.nnz_c.div_ceil(p1);
            s.ops = st.ops.div_ceil(p1);
        }
        Variant1D::B => {
            // A, C rows split.
            s.m = st.m.div_ceil(p1);
            s.nnz_a = st.nnz_a.div_ceil(p1);
            s.nnz_c = st.nnz_c.div_ceil(p1);
            s.ops = st.ops.div_ceil(p1);
        }
        Variant1D::C => {
            // Contraction dimension split; C stays full shape.
            s.k = st.k.div_ceil(p1);
            s.nnz_a = st.nnz_a.div_ceil(p1);
            s.nnz_b = st.nnz_b.div_ceil(p1);
            s.ops = st.ops.div_ceil(p1);
        }
    }
    s
}

/// Predicted execution time (seconds) of `plan` for `stats` on
/// `spec` — `W_MM` specialized to the plan.
pub fn predict(spec: &MachineSpec, plan: &MmPlan, st: &MmStats) -> f64 {
    match *plan {
        MmPlan::OneD(v) => terms_1d(spec, spec.p, v, st).combine(spec),
        MmPlan::TwoD { variant, p2, p3 } => terms_2d(spec, p2, p3, variant, st).combine(spec),
        MmPlan::Cannon { q } => crate::cannon::predict_cannon(spec, q, st),
        MmPlan::ThreeD {
            split,
            inner,
            p1,
            p2,
            p3,
        } => {
            let ls = layer_stats(st, split, p1 as u64);
            let mut t = terms_2d(spec, p2, p3, inner, &ls);
            // Fiber collectives of the 1D dimension: their bandwidth
            // joins the overlappable pool (the executor issues them
            // under the slice all-to-all / superstep compute), their
            // latency stays exposed.
            if p1 > 1 {
                match split {
                    Variant1D::A => {
                        t.beta += 2.0 * spec.beta * (st.nnz_a * st.eb_a) as f64 / (p2 * p3) as f64;
                        t.alpha += 2.0 * spec.alpha * lg(p1);
                    }
                    Variant1D::B => {
                        t.beta += 2.0 * spec.beta * (st.nnz_b * st.eb_b) as f64 / (p2 * p3) as f64;
                        t.alpha += 2.0 * spec.alpha * lg(p1);
                    }
                    Variant1D::C => {
                        t.beta += spec.beta * (st.nnz_c * st.eb_c) as f64 / (p2 * p3) as f64;
                        t.alpha += spec.alpha * lg(p1);
                    }
                }
            }
            t.combine(spec)
        }
    }
}

/// Rough per-rank resident bytes of `plan`, for memory-feasibility
/// filtering in the autotuner.
pub fn memory_per_rank(plan: &MmPlan, st: &MmStats, p: usize) -> u64 {
    let (ba, bb, bc) = (st.nnz_a * st.eb_a, st.nnz_b * st.eb_b, st.nnz_c * st.eb_c);
    let base = (ba + bb + bc) / p as u64 + 1;
    match *plan {
        MmPlan::OneD(Variant1D::A) => base + ba,
        MmPlan::OneD(Variant1D::B) => base + bb,
        MmPlan::OneD(Variant1D::C) => base + (st.ops * st.eb_c) / p as u64,
        MmPlan::TwoD { .. } | MmPlan::Cannon { .. } => base + ba / (p as u64) + bb / (p as u64),
        MmPlan::ThreeD { split, p2, p3, .. } => {
            let layer = (p2 * p3) as u64;
            base + match split {
                Variant1D::A => ba / layer,
                Variant1D::B => bb / layer,
                Variant1D::C => bc / layer,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> MmStats {
        MmStats::estimate(512, 10_000, 10_000, 5_000, 100_000, 12, 12, 20)
    }

    #[test]
    fn estimate_computes_ops_and_nnzc() {
        let st = stats();
        assert_eq!(st.ops, 50_000); // 5e3 * 1e5 / 1e4
        assert_eq!(st.nnz_c, 50_000);
        // nnz(C) capped at m·n.
        let tiny = MmStats::estimate(2, 10, 2, 100, 100, 8, 8, 8);
        assert_eq!(tiny.nnz_c, 4);
    }

    #[test]
    fn replicating_the_big_matrix_costs_more() {
        let spec = MachineSpec::test(16);
        let st = stats();
        let a = predict(&spec, &MmPlan::OneD(Variant1D::A), &st);
        let b = predict(&spec, &MmPlan::OneD(Variant1D::B), &st);
        // B is 20x denser than A: replicating it must be pricier.
        assert!(b > a, "replicate-B {b} should exceed replicate-A {a}");
    }

    #[test]
    fn twod_beats_oned_replication_for_large_matrices() {
        let spec = MachineSpec::test(16);
        let st = stats();
        let one = predict(&spec, &MmPlan::OneD(Variant1D::B), &st);
        let two = predict(
            &spec,
            &MmPlan::TwoD {
                variant: Variant2D::AB,
                p2: 4,
                p3: 4,
            },
            &st,
        );
        assert!(two < one);
    }

    #[test]
    fn replication_reduces_bandwidth_term() {
        // More layers (larger c) shrink per-layer operand volumes —
        // the mechanism behind Theorem 5.1's √(c) savings.
        let spec = MachineSpec {
            alpha: 0.0,
            ..MachineSpec::test(64)
        };
        let st = MmStats::estimate(64, 100_000, 100_000, 1_000_000, 1_000_000, 12, 12, 20);
        let flat = predict(
            &spec,
            &MmPlan::TwoD {
                variant: Variant2D::AC,
                p2: 8,
                p3: 8,
            },
            &st,
        );
        let replicated = predict(
            &spec,
            &MmPlan::ThreeD {
                split: Variant1D::B,
                inner: Variant2D::AC,
                p1: 4,
                p2: 4,
                p3: 4,
            },
            &st,
        );
        assert!(
            replicated < flat,
            "3D ({replicated}) should beat 2D ({flat}) on bandwidth"
        );
    }

    #[test]
    fn memory_model_flags_replication() {
        let st = stats();
        let m1 = memory_per_rank(&MmPlan::OneD(Variant1D::B), &st, 16);
        let m2 = memory_per_rank(
            &MmPlan::TwoD {
                variant: Variant2D::AB,
                p2: 4,
                p3: 4,
            },
            &st,
            16,
        );
        assert!(m1 > m2);
        assert!(m1 >= st.nnz_b * st.eb_b);
    }

    #[test]
    fn mask_thins_ops_and_output() {
        let st = stats();
        let masked = st.with_mask(0.25, 0.5);
        assert_eq!(masked.ops, st.ops / 4);
        assert_eq!(masked.nnz_c, st.nnz_c / 4);
        assert_eq!(masked.b_move_frac, 0.5);
        // Operand stats are untouched: the mask changes what is
        // produced and moved, not what exists.
        assert_eq!(masked.nnz_a, st.nnz_a);
        assert_eq!(masked.nnz_b, st.nnz_b);
    }

    #[test]
    fn b_move_frac_discounts_only_uncached_b_movers() {
        // Same output thinning, different movable-B fractions: only
        // variant A's uncached B redistribution (and Cannon) may see
        // the difference — variant B's cached replica stays
        // mask-independent, preserving Theorem 5.1's amortization.
        let spec = MachineSpec::test(16);
        let st = stats();
        let loose = st.with_mask(0.5, 1.0);
        let tight = st.with_mask(0.5, 0.1);
        let a_loose = predict(&spec, &MmPlan::OneD(Variant1D::A), &loose);
        let a_tight = predict(&spec, &MmPlan::OneD(Variant1D::A), &tight);
        assert!(a_tight < a_loose, "A: {a_tight} !< {a_loose}");
        let b_loose = predict(&spec, &MmPlan::OneD(Variant1D::B), &loose);
        let b_tight = predict(&spec, &MmPlan::OneD(Variant1D::B), &tight);
        assert_eq!(b_loose, b_tight);
        let q = MmPlan::Cannon { q: 4 };
        assert!(predict(&spec, &q, &tight) < predict(&spec, &q, &loose));
    }

    #[test]
    fn aggressive_mask_can_flip_the_plan_choice() {
        // A marginally denser than B: unmasked, replicating the
        // lighter B (variant B) edges out replicating A. A mask that
        // strands most of B at home discounts only variant A's
        // redistribution term, flipping the tuner's choice.
        let spec = MachineSpec::test(16);
        let st = MmStats::estimate(1000, 1000, 1000, 105_000, 100_000, 12, 12, 20);
        let va = MmPlan::OneD(Variant1D::A);
        let vb = MmPlan::OneD(Variant1D::B);
        assert!(predict(&spec, &vb, &st) < predict(&spec, &va, &st));
        let masked = st.with_mask(0.01, 0.01);
        assert!(predict(&spec, &va, &masked) < predict(&spec, &vb, &masked));
    }

    #[test]
    fn layer_stats_shrink_correctly() {
        let st = stats();
        let la = layer_stats(&st, Variant1D::A, 4);
        assert_eq!(la.nnz_b, st.nnz_b.div_ceil(4));
        assert_eq!(la.nnz_a, st.nnz_a);
        let lc = layer_stats(&st, Variant1D::C, 4);
        assert_eq!(lc.nnz_a, st.nnz_a.div_ceil(4));
        assert_eq!(lc.nnz_c, st.nnz_c);
    }
}
