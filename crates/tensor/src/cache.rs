//! Right-operand caching: the amortization of Theorem 5.1.
//!
//! MFBC multiplies a *changing* frontier by the *same* adjacency
//! matrix in every iteration of every batch. The theorem's cost
//! derivation amortizes the adjacency's replication accordingly:
//! "A's replication can be amortized over (up to d) sparse matrix
//! multiplications and over the n²/cm batches, since A is always the
//! same adjacency matrix" (§5.3).
//!
//! An [`MmCache`] keyed by (plan-layout, operand fingerprint) holds
//! the replicated/redistributed forms of the right operand between
//! multiplications: on a hit, neither the redistribution all-to-all
//! nor the replication broadcast is re-charged, but the cached form
//! *stays resident* on its ranks (memory is the price of
//! amortization — exactly the `c`-replication trade-off). Dropping
//! the cache without [`MmCache::release_all`] leaks simulated memory,
//! so drivers release at end of run.

use crate::dist::DistMat;
use mfbc_machine::Machine;
use mfbc_sparse::Csr;
use std::cell::Cell;
use std::collections::HashMap;
use std::sync::Arc;

/// A cached prepared form of a right operand.
#[derive(Clone, Debug)]
pub enum CachedRhs<T> {
    /// Fully replicated global matrix (1D variant B).
    Global(Arc<Csr<T>>),
    /// One redistributed layout (2D variants).
    Dist(Arc<DistMat<T>>),
    /// Per-layer copies or slices (3D variants).
    Layers(Arc<Vec<DistMat<T>>>),
}

/// Identity of an operand: shape plus nonzero count. Two matrices
/// colliding on this fingerprint within one cache would alias, so a
/// cache must be used with a single logical matrix (the drivers keep
/// one cache per adjacency orientation); the fingerprint check turns
/// accidental misuse into a panic instead of wrong answers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Fingerprint {
    nrows: usize,
    ncols: usize,
    nnz: usize,
}

impl Fingerprint {
    /// Fingerprint of a distributed matrix.
    pub fn of<T: Clone + Send + Sync>(m: &DistMat<T>) -> Fingerprint {
        Fingerprint {
            nrows: m.nrows(),
            ncols: m.ncols(),
            nnz: m.nnz(),
        }
    }
}

struct Entry<T> {
    form: CachedRhs<T>,
    fingerprint: Fingerprint,
    /// Simulated residency charged when the form was built, to be
    /// released when the cache is dropped: (rank, bytes).
    charges: Vec<(usize, u64)>,
}

/// Lifetime activity counters for one [`MmCache`] (or, summed via
/// [`CacheStats::absorb`], for a succession of caches — e.g. across a
/// crash replan that replaces them). Evictions count entries dropped
/// by [`MmCache::release_all`] and [`MmCache::discard_except`];
/// overwritten keys are not separately counted.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a prepared form.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Forms stored.
    pub inserts: u64,
    /// Entries dropped by release or rollback.
    pub evictions: u64,
}

impl CacheStats {
    /// Adds `other`'s counts into `self`.
    pub fn absorb(&mut self, other: CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.inserts += other.inserts;
        self.evictions += other.evictions;
    }
}

/// Cross-multiplication cache of prepared right-operand forms.
pub struct MmCache<T> {
    entries: HashMap<String, Entry<T>>,
    stats: Cell<CacheStats>,
}

impl<T> Default for MmCache<T> {
    fn default() -> Self {
        MmCache {
            entries: HashMap::new(),
            stats: Cell::new(CacheStats::default()),
        }
    }
}

impl<T> MmCache<T> {
    /// An empty cache.
    pub fn new() -> MmCache<T> {
        MmCache::default()
    }

    /// Number of cached forms.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up a prepared form.
    ///
    /// # Panics
    /// Panics if the key exists but was built for a different matrix
    /// (fingerprint mismatch) — one cache serves one logical operand.
    pub fn get(&self, key: &str, fp: Fingerprint) -> Option<&CachedRhs<T>> {
        let hit = self.entries.get(key).map(|e| {
            assert_eq!(
                e.fingerprint, fp,
                "MmCache key {key:?} was built for a different operand"
            );
            &e.form
        });
        let mut stats = self.stats.get();
        let name = if hit.is_some() {
            stats.hits += 1;
            "mm_cache_hit"
        } else {
            stats.misses += 1;
            "mm_cache_miss"
        };
        self.stats.set(stats);
        mfbc_trace::emit(|| mfbc_trace::TraceEvent::Counter { name, value: 1.0 });
        hit
    }

    /// Lifetime activity counters for this cache.
    pub fn stats(&self) -> CacheStats {
        self.stats.get()
    }

    /// Stores a prepared form with the simulated residency it
    /// charged.
    pub fn insert(
        &mut self,
        key: String,
        fp: Fingerprint,
        form: CachedRhs<T>,
        charges: Vec<(usize, u64)>,
    ) {
        mfbc_trace::emit(|| mfbc_trace::TraceEvent::Counter {
            name: "mm_cache_insert",
            value: 1.0,
        });
        let mut stats = self.stats.get();
        stats.inserts += 1;
        self.stats.set(stats);
        self.entries.insert(
            key,
            Entry {
                form,
                fingerprint: fp,
                charges,
            },
        );
    }

    /// Releases every cached form's simulated residency and clears
    /// the cache.
    pub fn release_all(&mut self, m: &Machine) {
        let mut stats = self.stats.get();
        stats.evictions += self.entries.len() as u64;
        self.stats.set(stats);
        for (_, e) in self.entries.drain() {
            for (rank, bytes) in e.charges {
                m.release(rank, bytes);
            }
        }
    }

    /// Keys of every cached form, in no particular order. Drivers
    /// snapshot this at a checkpoint boundary so a later rollback can
    /// tell checkpoint-era entries from mid-batch ones.
    pub fn keys(&self) -> Vec<String> {
        self.entries.keys().cloned().collect()
    }

    /// Drops every entry whose key is *not* in `keep`, without
    /// releasing its simulated residency — for rollback to a memory
    /// snapshot that already reflects the kept set (releasing here
    /// too would double-credit the meter).
    pub fn discard_except(&mut self, keep: &[String]) {
        let before = self.entries.len();
        self.entries.retain(|k, _| keep.iter().any(|s| s == k));
        let mut stats = self.stats.get();
        stats.evictions += (before - self.entries.len()) as u64;
        self.stats.set(stats);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::Layout;
    use mfbc_machine::MachineSpec;

    fn dm(nnz_rows: usize) -> DistMat<u64> {
        use mfbc_algebra::monoid::SumU64;
        let coo = mfbc_sparse::Coo::from_triples(
            4,
            4,
            (0..nnz_rows).map(|i| (i % 4, (i + 1) % 4, i as u64 + 1)),
        );
        DistMat::from_global(Layout::single(4, 4, 0), &coo.into_csr::<SumU64>())
    }

    #[test]
    fn hit_and_miss() {
        let a = dm(3);
        let mut cache: MmCache<u64> = MmCache::new();
        let fp = Fingerprint::of(&a);
        assert!(cache.get("k", fp).is_none());
        cache.insert("k".into(), fp, CachedRhs::Dist(Arc::new(a.clone())), vec![]);
        assert!(cache.get("k", fp).is_some());
        assert_eq!(cache.len(), 1);
    }

    #[test]
    #[should_panic]
    fn fingerprint_mismatch_panics() {
        let a = dm(3);
        let b = dm(4);
        let mut cache: MmCache<u64> = MmCache::new();
        cache.insert(
            "k".into(),
            Fingerprint::of(&a),
            CachedRhs::Dist(Arc::new(a)),
            vec![],
        );
        let _ = cache.get("k", Fingerprint::of(&b));
    }

    #[test]
    fn hit_and_miss_emit_counters() {
        use mfbc_trace::{scoped, MemoryRecorder, TraceEvent};
        let rec = std::sync::Arc::new(MemoryRecorder::new());
        scoped(rec.clone(), || {
            let a = dm(3);
            let mut cache: MmCache<u64> = MmCache::new();
            let fp = Fingerprint::of(&a);
            assert!(cache.get("k", fp).is_none());
            cache.insert("k".into(), fp, CachedRhs::Dist(Arc::new(a.clone())), vec![]);
            assert!(cache.get("k", fp).is_some());
        });
        let counters: Vec<(&'static str, f64)> = rec
            .take()
            .into_iter()
            .filter_map(|r| match r.event {
                TraceEvent::Counter { name, value } => Some((name, value)),
                _ => None,
            })
            .collect();
        assert_eq!(
            counters,
            vec![
                ("mm_cache_miss", 1.0),
                ("mm_cache_insert", 1.0),
                ("mm_cache_hit", 1.0),
            ]
        );
    }

    #[test]
    fn stats_track_hits_misses_inserts_evictions() {
        let a = dm(3);
        let mut cache: MmCache<u64> = MmCache::new();
        let fp = Fingerprint::of(&a);
        assert_eq!(cache.stats(), CacheStats::default());
        assert!(cache.get("k", fp).is_none());
        cache.insert("k".into(), fp, CachedRhs::Dist(Arc::new(a.clone())), vec![]);
        cache.insert(
            "k2".into(),
            fp,
            CachedRhs::Dist(Arc::new(a.clone())),
            vec![],
        );
        assert!(cache.get("k", fp).is_some());
        cache.discard_except(&["k".to_string()]);
        let m = Machine::new(MachineSpec::test(2));
        cache.release_all(&m);
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                inserts: 2,
                evictions: 2,
            }
        );
        let mut total = CacheStats::default();
        total.absorb(cache.stats());
        total.absorb(cache.stats());
        assert_eq!(total.inserts, 4);
    }

    #[test]
    fn release_all_returns_memory() {
        let m = Machine::new(MachineSpec::test(2));
        m.charge_alloc(1, 100).unwrap();
        let mut cache: MmCache<u64> = MmCache::new();
        cache.insert(
            "k".into(),
            Fingerprint::of(&dm(2)),
            CachedRhs::Dist(Arc::new(dm(2))),
            vec![(1, 100)],
        );
        cache.release_all(&m);
        assert!(cache.is_empty());
        assert_eq!(m.with_tracker(|t| t.resident(1)), 0);
    }
}
