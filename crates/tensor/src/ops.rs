//! Distributed elementwise operations on [`DistMat`]s sharing a
//! layout: monoid combination, zip-filter/map, and counting — the
//! distributed counterparts of CTF's elementwise `Function` /
//! `Transform` operations (§6.1). All are communication-free except
//! [`nnz_sync`], which models the allreduce a bulk-synchronous loop
//! uses to agree on termination.

use crate::dist::DistMat;
use mfbc_algebra::monoid::Monoid;
use mfbc_machine::cost::CollectiveKind;
use mfbc_machine::Machine;
use mfbc_sparse::elementwise::{combine, combine_anchored};
use mfbc_sparse::Coo;
use rayon::prelude::*;

/// Asserts two distributed matrices share cuts and owners.
fn assert_aligned<T, U>(a: &DistMat<T>, b: &DistMat<U>)
where
    T: Clone + Send + Sync,
    U: Clone + Send + Sync,
{
    assert!(
        a.layout().same_cuts(b.layout()),
        "distributed elementwise op requires aligned layouts"
    );
}

/// `C = A ⊕ B` blockwise; layouts must align. Charges each owner's
/// compute for the merge.
pub fn dmat_combine<M, T>(m: &Machine, a: &DistMat<T>, b: &DistMat<T>) -> DistMat<T>
where
    M: Monoid<Elem = T>,
    T: Clone + PartialEq + Send + Sync + std::fmt::Debug,
{
    assert_aligned(a, b);
    let l = a.layout().clone();
    // Blocks are independent: merge them in parallel on the host
    // (compute charges are commutative per-rank sums, so charging
    // from worker threads is safe and deterministic).
    let blocks: Vec<_> = (0..l.br())
        .flat_map(|bi| (0..l.bc()).map(move |bj| (bi, bj)))
        .collect::<Vec<_>>()
        .into_par_iter()
        .map(|(bi, bj)| {
            let merged = combine::<M, _>(a.block(bi, bj), b.block(bi, bj));
            m.charge_compute(
                l.owner(bi, bj),
                (a.block(bi, bj).nnz() + b.block(bi, bj).nnz()) as u64,
            );
            merged
        })
        .collect();
    DistMat::from_blocks(l, blocks)
}

/// Anchored merge `Z := Z ⊗ G` blockwise (updates outside the base
/// pattern are dropped — see
/// [`combine_anchored`]).
pub fn dmat_combine_anchored<M, T>(m: &Machine, base: &DistMat<T>, upd: &DistMat<T>) -> DistMat<T>
where
    M: Monoid<Elem = T>,
    T: Clone + PartialEq + Send + Sync + std::fmt::Debug,
{
    assert_aligned(base, upd);
    let l = base.layout().clone();
    let blocks: Vec<_> = (0..l.br())
        .flat_map(|bi| (0..l.bc()).map(move |bj| (bi, bj)))
        .collect::<Vec<_>>()
        .into_par_iter()
        .map(|(bi, bj)| {
            let merged = combine_anchored::<M, _>(base.block(bi, bj), upd.block(bi, bj));
            m.charge_compute(
                l.owner(bi, bj),
                (base.block(bi, bj).nnz() + upd.block(bi, bj).nnz()) as u64,
            );
            merged
        })
        .collect();
    DistMat::from_blocks(l, blocks)
}

/// Zip of `a`'s entries against `b`'s at the same coordinates:
/// `f(i, j, a_val, b_val_opt)` (global coordinates) returning `None`
/// drops the entry. Output shares `a`'s layout.
pub fn dmat_zip_filter<Mo, T, U, O>(
    m: &Machine,
    a: &DistMat<T>,
    b: &DistMat<U>,
    mut f: impl FnMut(usize, usize, &T, Option<&U>) -> Option<O>,
) -> DistMat<O>
where
    Mo: Monoid<Elem = O>,
    T: Clone + Send + Sync,
    U: Clone + Send + Sync,
    O: Clone + PartialEq + Send + Sync + std::fmt::Debug,
{
    assert_aligned(a, b);
    let l = a.layout().clone();
    let mut blocks = Vec::with_capacity(l.nblocks());
    for bi in 0..l.br() {
        let r0 = l.row_range(bi).start;
        for bj in 0..l.bc() {
            let c0 = l.col_range(bj).start;
            let (ab, bb) = (a.block(bi, bj), b.block(bi, bj));
            let mut coo = Coo::new(ab.nrows(), ab.ncols());
            for (i, j, v) in ab.iter() {
                if let Some(o) = f(r0 + i, c0 + j, v, bb.get(i, j)) {
                    coo.push(i, j, o);
                }
            }
            m.charge_compute(l.owner(bi, bj), ab.nnz() as u64);
            blocks.push(coo.into_csr::<Mo>());
        }
    }
    DistMat::from_blocks(l, blocks)
}

/// Blockwise map-with-filter over a single distributed matrix
/// (global coordinates).
pub fn dmat_map_filter<Mo, T, O>(
    m: &Machine,
    a: &DistMat<T>,
    mut f: impl FnMut(usize, usize, &T) -> Option<O>,
) -> DistMat<O>
where
    Mo: Monoid<Elem = O>,
    T: Clone + Send + Sync,
    O: Clone + PartialEq + Send + Sync + std::fmt::Debug,
{
    let l = a.layout().clone();
    let mut blocks = Vec::with_capacity(l.nblocks());
    for bi in 0..l.br() {
        let r0 = l.row_range(bi).start;
        for bj in 0..l.bc() {
            let c0 = l.col_range(bj).start;
            let ab = a.block(bi, bj);
            let mut coo = Coo::new(ab.nrows(), ab.ncols());
            for (i, j, v) in ab.iter() {
                if let Some(o) = f(r0 + i, c0 + j, v) {
                    coo.push(i, j, o);
                }
            }
            m.charge_compute(l.owner(bi, bj), ab.nnz() as u64);
            blocks.push(coo.into_csr::<Mo>());
        }
    }
    DistMat::from_blocks(l, blocks)
}

/// Global nonzero count with the termination-check allreduce charged
/// (one word per rank over the world group).
pub fn nnz_sync<T: Clone + Send + Sync>(m: &Machine, a: &DistMat<T>) -> usize {
    if m.p() > 1 {
        m.charge_collective(&m.world(), CollectiveKind::Allreduce, 8);
    }
    a.nnz()
}

/// Column sums of an `f64`-valued distributed matrix (e.g. the
/// per-vertex λ contributions of Algorithm 3, line 5): local partial
/// sums plus one reduction of the result vector, charged at its
/// per-rank share.
pub fn dmat_column_sums(m: &Machine, a: &DistMat<f64>) -> Vec<f64> {
    let l = a.layout();
    let n = a.ncols();
    let mut sums = vec![0.0f64; n];
    for bi in 0..l.br() {
        for bj in 0..l.bc() {
            let c0 = l.col_range(bj).start;
            let blk = a.block(bi, bj);
            for (_, j, v) in blk.iter() {
                sums[c0 + j] += *v;
            }
            m.charge_compute(l.owner(bi, bj), blk.nnz() as u64);
        }
    }
    if m.p() > 1 {
        let bytes = (n as u64 * 8).div_ceil(m.p() as u64);
        m.charge_collective(&m.world(), CollectiveKind::SparseReduce, bytes);
    }
    sums
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::Grid2;
    use crate::Layout;
    use mfbc_algebra::monoid::{SumF64, SumU64};
    use mfbc_machine::{Group, MachineSpec};
    use mfbc_sparse::Csr;

    fn machine(p: usize) -> Machine {
        Machine::new(MachineSpec::test(p))
    }

    fn dmat(m: &Machine, g: &Csr<u64>) -> DistMat<u64> {
        DistMat::from_global(
            Layout::on_grid(g.nrows(), g.ncols(), &Grid2::new(Group::all(m.p()), 2, 2)),
            g,
        )
    }

    fn sample() -> Csr<u64> {
        Coo::from_triples(4, 4, vec![(0usize, 0usize, 1u64), (1, 2, 3), (3, 3, 7)])
            .into_csr::<SumU64>()
    }

    #[test]
    fn combine_matches_sequential() {
        let m = machine(4);
        let a = sample();
        let b =
            Coo::from_triples(4, 4, vec![(0usize, 0usize, 10u64), (2, 1, 5)]).into_csr::<SumU64>();
        let da = dmat(&m, &a);
        let db = dmat(&m, &b);
        let dc = dmat_combine::<SumU64, _>(&m, &da, &db);
        assert_eq!(dc.to_global::<SumU64>(), combine::<SumU64, _>(&a, &b));
        // Pure local work: no communication charged.
        assert_eq!(m.report().critical.msgs, 0);
        assert!(m.report().critical.comp_time > 0.0);
    }

    #[test]
    fn zip_filter_looks_up_matching_coords() {
        let m = machine(4);
        let a = sample();
        let b =
            Coo::from_triples(4, 4, vec![(0usize, 0usize, 2u64), (3, 3, 7)]).into_csr::<SumU64>();
        let da = dmat(&m, &a);
        let db = dmat(&m, &b);
        // Keep a-entries whose b counterpart equals them.
        let dc = dmat_zip_filter::<SumU64, _, _, u64>(&m, &da, &db, |_, _, av, bv| {
            (bv == Some(av)).then_some(*av)
        });
        let g = dc.to_global::<SumU64>();
        assert_eq!(g.nnz(), 1);
        assert_eq!(g.get(3, 3), Some(&7));
    }

    #[test]
    fn map_filter_uses_global_coords() {
        let m = machine(4);
        let da = dmat(&m, &sample());
        let dc =
            dmat_map_filter::<SumU64, _, u64>(&m, &da, |i, j, v| (i == 3 && j == 3).then_some(*v));
        assert_eq!(dc.nnz(), 1);
        assert_eq!(dc.to_global::<SumU64>().get(3, 3), Some(&7));
    }

    #[test]
    fn nnz_sync_charges_allreduce() {
        let m = machine(4);
        let da = dmat(&m, &sample());
        assert_eq!(nnz_sync(&m, &da), 3);
        assert!(m.report().critical.msgs > 0);
    }

    #[test]
    fn column_sums_match() {
        let m = machine(4);
        let g = Coo::from_triples(
            4,
            4,
            vec![(0usize, 1usize, 2.0f64), (2, 1, 3.0), (3, 0, 1.5)],
        )
        .into_csr::<SumF64>();
        let da = DistMat::from_global(Layout::on_grid(4, 4, &Grid2::new(Group::all(4), 2, 2)), &g);
        assert_eq!(dmat_column_sums(&m, &da), vec![1.5, 5.0, 0.0, 0.0]);
    }
}
