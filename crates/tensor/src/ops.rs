//! Distributed elementwise operations on [`DistMat`]s sharing a
//! layout: monoid combination, zip-filter/map, and counting — the
//! distributed counterparts of CTF's elementwise `Function` /
//! `Transform` operations (§6.1). All are communication-free except
//! [`nnz_sync`], which models the allreduce a bulk-synchronous loop
//! uses to agree on termination.
//!
//! Blocks are independent, so the block loop fans out on the
//! `mfbc-parallel` pool. Cost-model charges are applied *serially in
//! block order after* the parallel compute: `Machine::charge_compute`
//! accumulates an `f64` per rank, and floating-point addition order
//! must not depend on scheduling for runs to stay bit-reproducible.

use crate::dist::DistMat;
use mfbc_algebra::monoid::Monoid;
use mfbc_machine::cost::CollectiveKind;
use mfbc_machine::{Machine, MachineError};
use mfbc_sparse::elementwise::{combine, combine_anchored};
use mfbc_sparse::Coo;

/// Asserts two distributed matrices share cuts and owners.
fn assert_aligned<T, U>(a: &DistMat<T>, b: &DistMat<U>)
where
    T: Clone + Send + Sync,
    U: Clone + Send + Sync,
{
    assert!(
        a.layout().same_cuts(b.layout()),
        "distributed elementwise op requires aligned layouts"
    );
}

/// Emits a pool-observability event for one blockwise fan-out.
fn emit_pool(kernel: &'static str, stats: &mfbc_parallel::ExecStats) {
    mfbc_trace::emit(|| mfbc_trace::TraceEvent::Pool {
        kernel,
        threads: stats.threads,
        tasks: stats.tasks,
        busy_us: stats.busy.iter().map(|d| d.as_micros() as u64).collect(),
        chunk_hist: Vec::new(),
    });
}

/// `C = A ⊕ B` blockwise; layouts must align. Charges each owner's
/// compute for the merge.
pub fn dmat_combine<M, T>(m: &Machine, a: &DistMat<T>, b: &DistMat<T>) -> DistMat<T>
where
    M: Monoid<Elem = T>,
    T: Clone + PartialEq + Send + Sync + std::fmt::Debug,
{
    assert_aligned(a, b);
    let l = a.layout().clone();
    let coords: Vec<(usize, usize)> = (0..l.br())
        .flat_map(|bi| (0..l.bc()).map(move |bj| (bi, bj)))
        .collect();
    let (blocks, stats) = mfbc_parallel::current().par_map_collect_stats(coords.len(), |t| {
        let (bi, bj) = coords[t];
        combine::<M, _>(a.block(bi, bj), b.block(bi, bj))
    });
    emit_pool("dmat_combine", &stats);
    for &(bi, bj) in &coords {
        m.charge_compute(
            l.owner(bi, bj),
            (a.block(bi, bj).nnz() + b.block(bi, bj).nnz()) as u64,
        );
    }
    DistMat::from_blocks(l, blocks)
}

/// Anchored merge `Z := Z ⊗ G` blockwise (updates outside the base
/// pattern are dropped — see
/// [`combine_anchored`]).
pub fn dmat_combine_anchored<M, T>(m: &Machine, base: &DistMat<T>, upd: &DistMat<T>) -> DistMat<T>
where
    M: Monoid<Elem = T>,
    T: Clone + PartialEq + Send + Sync + std::fmt::Debug,
{
    assert_aligned(base, upd);
    let l = base.layout().clone();
    let coords: Vec<(usize, usize)> = (0..l.br())
        .flat_map(|bi| (0..l.bc()).map(move |bj| (bi, bj)))
        .collect();
    let (blocks, stats) = mfbc_parallel::current().par_map_collect_stats(coords.len(), |t| {
        let (bi, bj) = coords[t];
        combine_anchored::<M, _>(base.block(bi, bj), upd.block(bi, bj))
    });
    emit_pool("dmat_anchored", &stats);
    for &(bi, bj) in &coords {
        m.charge_compute(
            l.owner(bi, bj),
            (base.block(bi, bj).nnz() + upd.block(bi, bj).nnz()) as u64,
        );
    }
    DistMat::from_blocks(l, blocks)
}

/// Zip of `a`'s entries against `b`'s at the same coordinates:
/// `f(i, j, a_val, b_val_opt)` (global coordinates) returning `None`
/// drops the entry. Output shares `a`'s layout. `f` must be pure
/// (`Fn + Sync`): blocks are processed in parallel.
pub fn dmat_zip_filter<Mo, T, U, O>(
    m: &Machine,
    a: &DistMat<T>,
    b: &DistMat<U>,
    f: impl Fn(usize, usize, &T, Option<&U>) -> Option<O> + Sync,
) -> DistMat<O>
where
    Mo: Monoid<Elem = O>,
    T: Clone + Send + Sync,
    U: Clone + Send + Sync,
    O: Clone + PartialEq + Send + Sync + std::fmt::Debug,
{
    assert_aligned(a, b);
    let l = a.layout().clone();
    let coords: Vec<(usize, usize)> = (0..l.br())
        .flat_map(|bi| (0..l.bc()).map(move |bj| (bi, bj)))
        .collect();
    let (blocks, stats) = mfbc_parallel::current().par_map_collect_stats(coords.len(), |t| {
        let (bi, bj) = coords[t];
        let (r0, c0) = (l.row_range(bi).start, l.col_range(bj).start);
        let (ab, bb) = (a.block(bi, bj), b.block(bi, bj));
        let mut coo = Coo::new(ab.nrows(), ab.ncols());
        for (i, j, v) in ab.iter() {
            if let Some(o) = f(r0 + i, c0 + j, v, bb.get(i, j)) {
                coo.push(i, j, o);
            }
        }
        coo.into_csr::<Mo>()
    });
    emit_pool("dmat_zip", &stats);
    for &(bi, bj) in &coords {
        m.charge_compute(l.owner(bi, bj), a.block(bi, bj).nnz() as u64);
    }
    DistMat::from_blocks(l, blocks)
}

/// Blockwise map-with-filter over a single distributed matrix
/// (global coordinates). `f` must be pure (`Fn + Sync`): blocks are
/// processed in parallel.
pub fn dmat_map_filter<Mo, T, O>(
    m: &Machine,
    a: &DistMat<T>,
    f: impl Fn(usize, usize, &T) -> Option<O> + Sync,
) -> DistMat<O>
where
    Mo: Monoid<Elem = O>,
    T: Clone + Send + Sync,
    O: Clone + PartialEq + Send + Sync + std::fmt::Debug,
{
    let l = a.layout().clone();
    let coords: Vec<(usize, usize)> = (0..l.br())
        .flat_map(|bi| (0..l.bc()).map(move |bj| (bi, bj)))
        .collect();
    let (blocks, stats) = mfbc_parallel::current().par_map_collect_stats(coords.len(), |t| {
        let (bi, bj) = coords[t];
        let (r0, c0) = (l.row_range(bi).start, l.col_range(bj).start);
        let ab = a.block(bi, bj);
        let mut coo = Coo::new(ab.nrows(), ab.ncols());
        for (i, j, v) in ab.iter() {
            if let Some(o) = f(r0 + i, c0 + j, v) {
                coo.push(i, j, o);
            }
        }
        coo.into_csr::<Mo>()
    });
    emit_pool("dmat_map", &stats);
    for &(bi, bj) in &coords {
        m.charge_compute(l.owner(bi, bj), a.block(bi, bj).nnz() as u64);
    }
    DistMat::from_blocks(l, blocks)
}

/// Global nonzero count with the termination-check allreduce charged
/// (one word per rank over the world group). Fails when the allreduce
/// hits an injected fault.
pub fn nnz_sync<T: Clone + Send + Sync>(
    m: &Machine,
    a: &DistMat<T>,
) -> Result<usize, MachineError> {
    if m.p() > 1 {
        m.charge_collective(&m.world(), CollectiveKind::Allreduce, 8)?;
    }
    Ok(a.nnz())
}

/// Column sums of an `f64`-valued distributed matrix (e.g. the
/// per-vertex λ contributions of Algorithm 3, line 5): local partial
/// sums plus one reduction of the result vector, charged at its
/// per-rank share.
///
/// Parallelized over *block-columns*: each task owns a disjoint
/// output range and walks its blocks in ascending `bi`, so every
/// column's `f64` additions happen in exactly the serial order.
pub fn dmat_column_sums(m: &Machine, a: &DistMat<f64>) -> Result<Vec<f64>, MachineError> {
    let l = a.layout();
    let n = a.ncols();
    let (partials, stats) = mfbc_parallel::current().par_map_collect_stats(l.bc(), |bj| {
        let cols = l.col_range(bj);
        let c0 = cols.start;
        let mut local = vec![0.0f64; cols.len()];
        for bi in 0..l.br() {
            let blk = a.block(bi, bj);
            for (_, j, v) in blk.iter() {
                local[j] += *v;
            }
        }
        (c0, local)
    });
    emit_pool("dmat_colsum", &stats);
    let mut sums = vec![0.0f64; n];
    for (c0, local) in partials {
        sums[c0..c0 + local.len()].copy_from_slice(&local);
    }
    // Charge in the serial (bi-outer, bj-inner) order the cost model
    // accumulated before parallelization.
    for bi in 0..l.br() {
        for bj in 0..l.bc() {
            m.charge_compute(l.owner(bi, bj), a.block(bi, bj).nnz() as u64);
        }
    }
    if m.p() > 1 {
        let bytes = (n as u64 * 8).div_ceil(m.p() as u64);
        m.charge_collective(&m.world(), CollectiveKind::SparseReduce, bytes)?;
    }
    Ok(sums)
}

/// Folds every entry of `a` into `acc[column]`, one `f64` addition
/// per entry, in ascending (column, global row) order — charged like
/// [`dmat_column_sums`].
///
/// Unlike summing a batch first and adding the total afterwards, the
/// accumulation order seen by `acc[j]` is exactly "sources in
/// ascending global row order", so splitting a row range across
/// several calls (smaller batches after an OOM retreat, a different
/// batch schedule after replanning) produces bit-identical `acc` to
/// one call over the whole range. The MFBC driver relies on this for
/// its recovered-run == fault-free-run guarantee.
pub fn dmat_fold_columns(
    m: &Machine,
    a: &DistMat<f64>,
    acc: &mut [f64],
) -> Result<(), MachineError> {
    assert_eq!(a.ncols(), acc.len(), "fold target width mismatch");
    let l = a.layout();
    // Parallelized over block-columns: each task owns a disjoint
    // column range and collects its per-column contribution lists by
    // walking block-rows in ascending `bi` (CSR iteration is
    // row-major, so per-column pushes arrive in ascending global
    // row order).
    let (partials, stats) = mfbc_parallel::current().par_map_collect_stats(l.bc(), |bj| {
        let cols = l.col_range(bj);
        let mut per_col: Vec<Vec<f64>> = vec![Vec::new(); cols.len()];
        for bi in 0..l.br() {
            for (_, j, v) in a.block(bi, bj).iter() {
                per_col[j].push(*v);
            }
        }
        (cols.start, per_col)
    });
    emit_pool("dmat_colfold", &stats);
    for (c0, per_col) in partials {
        for (j, contribs) in per_col.into_iter().enumerate() {
            for v in contribs {
                acc[c0 + j] += v;
            }
        }
    }
    // Same modeled cost as a column sum: the fold is the same flops,
    // charged in serial block order for reproducibility.
    for bi in 0..l.br() {
        for bj in 0..l.bc() {
            m.charge_compute(l.owner(bi, bj), a.block(bi, bj).nnz() as u64);
        }
    }
    if m.p() > 1 {
        let bytes = (a.ncols() as u64 * 8).div_ceil(m.p() as u64);
        m.charge_collective(&m.world(), CollectiveKind::SparseReduce, bytes)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::Grid2;
    use crate::Layout;
    use mfbc_algebra::monoid::{SumF64, SumU64};
    use mfbc_machine::{Group, MachineSpec};
    use mfbc_sparse::Csr;

    fn machine(p: usize) -> Machine {
        Machine::new(MachineSpec::test(p))
    }

    fn dmat(m: &Machine, g: &Csr<u64>) -> DistMat<u64> {
        DistMat::from_global(
            Layout::on_grid(
                g.nrows(),
                g.ncols(),
                &Grid2::new(Group::all(m.p()), 2, 2).unwrap(),
            ),
            g,
        )
    }

    fn sample() -> Csr<u64> {
        Coo::from_triples(4, 4, vec![(0usize, 0usize, 1u64), (1, 2, 3), (3, 3, 7)])
            .into_csr::<SumU64>()
    }

    #[test]
    fn combine_matches_sequential() {
        let m = machine(4);
        let a = sample();
        let b =
            Coo::from_triples(4, 4, vec![(0usize, 0usize, 10u64), (2, 1, 5)]).into_csr::<SumU64>();
        let da = dmat(&m, &a);
        let db = dmat(&m, &b);
        let dc = dmat_combine::<SumU64, _>(&m, &da, &db);
        assert_eq!(dc.to_global::<SumU64>(), combine::<SumU64, _>(&a, &b));
        // Pure local work: no communication charged.
        assert_eq!(m.report().critical.msgs, 0);
        assert!(m.report().critical.comp_time > 0.0);
    }

    #[test]
    fn zip_filter_looks_up_matching_coords() {
        let m = machine(4);
        let a = sample();
        let b =
            Coo::from_triples(4, 4, vec![(0usize, 0usize, 2u64), (3, 3, 7)]).into_csr::<SumU64>();
        let da = dmat(&m, &a);
        let db = dmat(&m, &b);
        // Keep a-entries whose b counterpart equals them.
        let dc = dmat_zip_filter::<SumU64, _, _, u64>(&m, &da, &db, |_, _, av, bv| {
            (bv == Some(av)).then_some(*av)
        });
        let g = dc.to_global::<SumU64>();
        assert_eq!(g.nnz(), 1);
        assert_eq!(g.get(3, 3), Some(&7));
    }

    #[test]
    fn map_filter_uses_global_coords() {
        let m = machine(4);
        let da = dmat(&m, &sample());
        let dc =
            dmat_map_filter::<SumU64, _, u64>(&m, &da, |i, j, v| (i == 3 && j == 3).then_some(*v));
        assert_eq!(dc.nnz(), 1);
        assert_eq!(dc.to_global::<SumU64>().get(3, 3), Some(&7));
    }

    #[test]
    fn nnz_sync_charges_allreduce() {
        let m = machine(4);
        let da = dmat(&m, &sample());
        assert_eq!(nnz_sync(&m, &da).unwrap(), 3);
        assert!(m.report().critical.msgs > 0);
    }

    #[test]
    fn column_sums_match() {
        let m = machine(4);
        let g = Coo::from_triples(
            4,
            4,
            vec![(0usize, 1usize, 2.0f64), (2, 1, 3.0), (3, 0, 1.5)],
        )
        .into_csr::<SumF64>();
        let da = DistMat::from_global(
            Layout::on_grid(4, 4, &Grid2::new(Group::all(4), 2, 2).unwrap()),
            &g,
        );
        assert_eq!(dmat_column_sums(&m, &da).unwrap(), vec![1.5, 5.0, 0.0, 0.0]);
        let mut acc = vec![1.0f64; 4];
        dmat_fold_columns(&m, &da, &mut acc).unwrap();
        assert_eq!(acc, vec![2.5, 6.0, 1.0, 1.0]);
    }

    #[test]
    fn fold_columns_is_batch_split_invariant() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(11);
        let (rows, n) = (32, 24);
        let mut coo = Coo::new(rows, n);
        for _ in 0..600 {
            coo.push(
                rng.gen_range(0..rows),
                rng.gen_range(0..n),
                rng.gen::<f64>(),
            );
        }
        let g = coo.into_csr::<SumF64>();
        let m = machine(4);
        let layout = |r: usize| Layout::on_grid(r, n, &Grid2::new(Group::all(4), 2, 2).unwrap());

        let mut whole = vec![0.0f64; n];
        let da = DistMat::from_global(layout(rows), &g);
        dmat_fold_columns(&m, &da, &mut whole).unwrap();

        // Any row-partition folds to bit-identical accumulators.
        for split in [5, 16, 27] {
            let mut parts = vec![0.0f64; n];
            for (lo, hi) in [(0, split), (split, rows)] {
                let slice = mfbc_sparse::slice::slice(&g, lo..hi, 0..n);
                let d = DistMat::from_global(layout(hi - lo), &slice);
                dmat_fold_columns(&m, &d, &mut parts).unwrap();
            }
            let whole_bits: Vec<u64> = whole.iter().map(|v| v.to_bits()).collect();
            let parts_bits: Vec<u64> = parts.iter().map(|v| v.to_bits()).collect();
            assert_eq!(whole_bits, parts_bits, "fold differs for split at {split}");
        }
    }

    #[test]
    fn ops_bit_identical_across_thread_counts() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
        let n = 64;
        let mut ca = Coo::new(n, n);
        let mut cb = Coo::new(n, n);
        for _ in 0..800 {
            ca.push(rng.gen_range(0..n), rng.gen_range(0..n), rng.gen::<f64>());
            cb.push(rng.gen_range(0..n), rng.gen_range(0..n), rng.gen::<f64>());
        }
        let (ga, gb) = (ca.into_csr::<SumF64>(), cb.into_csr::<SumF64>());
        let reference = mfbc_parallel::with_threads(1, || {
            let m = machine(4);
            let layout = Layout::on_grid(n, n, &Grid2::new(Group::all(4), 2, 2).unwrap());
            let da = DistMat::from_global(layout.clone(), &ga);
            let db = DistMat::from_global(layout, &gb);
            let c = dmat_combine::<SumF64, _>(&m, &da, &db);
            let sums = dmat_column_sums(&m, &c).unwrap();
            (c.to_global::<SumF64>(), sums, m.report().critical.comp_time)
        });
        for threads in [2, 4, 8] {
            let got = mfbc_parallel::with_threads(threads, || {
                let m = machine(4);
                let layout = Layout::on_grid(n, n, &Grid2::new(Group::all(4), 2, 2).unwrap());
                let da = DistMat::from_global(layout.clone(), &ga);
                let db = DistMat::from_global(layout, &gb);
                let c = dmat_combine::<SumF64, _>(&m, &da, &db);
                let sums = dmat_column_sums(&m, &c).unwrap();
                (c.to_global::<SumF64>(), sums, m.report().critical.comp_time)
            });
            assert_eq!(reference.0, got.0, "combine differs at {threads} threads");
            assert_eq!(
                reference.1, got.1,
                "column sums differ at {threads} threads"
            );
            assert_eq!(
                reference.2.to_bits(),
                got.2.to_bits(),
                "modeled comp_time differs at {threads} threads"
            );
        }
    }
}
