//! Sparse redistribution between block layouts.
//!
//! CTF transitions tensors between data distributions with dedicated
//! kernels and converts index–value pairs to CSR afterwards (§6.2).
//! This module implements the sparse-to-sparse redistribution: every
//! entry is re-bucketed to its destination block, the per-rank
//! payloads travel through a personalized all-to-all (charged on the
//! machine's critical path; entries that stay on their rank are
//! free), and destination blocks are rebuilt as CSR.

use crate::dist::{DistMat, Layout};
use mfbc_algebra::monoid::Monoid;
use mfbc_machine::cost::CollectiveKind;
use mfbc_machine::{Machine, MachineError, RedistMode};
use mfbc_sparse::{entry_bytes, Coo};

/// Moves `src` into `dst_layout`, combining duplicate coordinates
/// with `M` (layout cuts are disjoint so duplicates only arise if the
/// source itself had overlapping blocks, which [`DistMat`] forbids).
pub fn redistribute<M, T>(
    m: &Machine,
    src: &DistMat<T>,
    dst_layout: &Layout,
) -> Result<DistMat<T>, MachineError>
where
    M: Monoid<Elem = T>,
    T: Clone + Send + Sync + PartialEq + std::fmt::Debug,
{
    assert_eq!(
        src.nrows(),
        dst_layout.nrows(),
        "redistribute shape mismatch"
    );
    assert_eq!(
        src.ncols(),
        dst_layout.ncols(),
        "redistribute shape mismatch"
    );
    if src.layout().same_as(dst_layout) {
        return Ok(src.clone());
    }

    let p = m.p();
    // Per destination block: COO with block-local coordinates.
    let mut dst_coo: Vec<Coo<T>> = (0..dst_layout.br())
        .flat_map(|bi| (0..dst_layout.bc()).map(move |bj| (bi, bj)))
        .map(|(bi, bj)| {
            Coo::new(
                dst_layout.row_range(bi).len(),
                dst_layout.col_range(bj).len(),
            )
        })
        .collect();

    // Bytes leaving each source rank for each destination rank.
    let mut traffic = vec![vec![0u64; p]; p];
    let ebytes = entry_bytes::<T>() as u64;

    let sl = src.layout();
    for sbi in 0..sl.br() {
        let r0 = sl.row_range(sbi).start;
        for sbj in 0..sl.bc() {
            let c0 = sl.col_range(sbj).start;
            let src_rank = sl.owner(sbi, sbj);
            let block = src.block(sbi, sbj);
            for (i, j, v) in block.iter() {
                let (gi, gj) = (r0 + i, c0 + j);
                let dbi = dst_layout.find_row_block(gi);
                let dbj = dst_layout.find_col_block(gj);
                let dst_rank = dst_layout.owner(dbi, dbj);
                if dst_rank != src_rank {
                    traffic[src_rank][dst_rank] += ebytes;
                }
                dst_coo[dbi * dst_layout.bc() + dbj].push(
                    gi - dst_layout.row_range(dbi).start,
                    gj - dst_layout.col_range(dbj).start,
                    v.clone(),
                );
            }
        }
    }

    // Charge the movement over the ranks actually involved (senders
    // and receivers): a redistribution confined to a subset of ranks
    // — e.g. one layer of a 3D algorithm — must not synchronize the
    // others.
    charge_redist(
        m,
        &traffic,
        collect_owners(src.layout(), dst_layout),
        "redistribute",
    )?;

    let blocks = dst_coo.into_iter().map(|coo| coo.into_csr::<M>()).collect();
    Ok(DistMat::from_blocks(dst_layout.clone(), blocks))
}

/// Extracts the window `src[rows, cols]` into `dst_layout` (whose
/// shape must equal the window's), reindexed to the window origin.
/// Charged like [`redistribute`]: entries that change ranks travel in
/// a personalized all-to-all. Used by 3D algorithms to hand each
/// layer its slice of the split matrix.
pub fn extract_window<M, T>(
    m: &Machine,
    src: &DistMat<T>,
    rows: std::ops::Range<usize>,
    cols: std::ops::Range<usize>,
    dst_layout: &Layout,
) -> Result<DistMat<T>, MachineError>
where
    M: Monoid<Elem = T>,
    T: Clone + Send + Sync + PartialEq + std::fmt::Debug,
{
    assert_eq!(rows.len(), dst_layout.nrows(), "window height mismatch");
    assert_eq!(cols.len(), dst_layout.ncols(), "window width mismatch");
    assert!(
        rows.end <= src.nrows() && cols.end <= src.ncols(),
        "window out of bounds"
    );

    let p = m.p();
    let mut dst_coo: Vec<Coo<T>> = (0..dst_layout.br())
        .flat_map(|bi| (0..dst_layout.bc()).map(move |bj| (bi, bj)))
        .map(|(bi, bj)| {
            Coo::new(
                dst_layout.row_range(bi).len(),
                dst_layout.col_range(bj).len(),
            )
        })
        .collect();
    // True source→destination traffic: the hybrid redistribution
    // modes price each sender's fan-out from its per-destination
    // volumes (for the all-to-all charge only the row sums matter).
    let mut traffic = vec![vec![0u64; p]; p];
    let ebytes = entry_bytes::<T>() as u64;

    let sl = src.layout();
    for sbi in 0..sl.br() {
        let rr = sl.row_range(sbi);
        if rr.end <= rows.start || rr.start >= rows.end {
            continue;
        }
        for sbj in 0..sl.bc() {
            let cr = sl.col_range(sbj);
            if cr.end <= cols.start || cr.start >= cols.end {
                continue;
            }
            let src_rank = sl.owner(sbi, sbj);
            for (i, j, v) in src.block(sbi, sbj).iter() {
                let (gi, gj) = (rr.start + i, cr.start + j);
                if !rows.contains(&gi) || !cols.contains(&gj) {
                    continue;
                }
                let (wi, wj) = (gi - rows.start, gj - cols.start);
                let dbi = dst_layout.find_row_block(wi);
                let dbj = dst_layout.find_col_block(wj);
                let dst_rank = dst_layout.owner(dbi, dbj);
                if dst_rank != src_rank {
                    traffic[src_rank][dst_rank] += ebytes;
                }
                dst_coo[dbi * dst_layout.bc() + dbj].push(
                    wi - dst_layout.row_range(dbi).start,
                    wj - dst_layout.col_range(dbj).start,
                    v.clone(),
                );
            }
        }
    }
    charge_redist(
        m,
        &traffic,
        collect_owners(src.layout(), dst_layout),
        "window",
    )?;
    let blocks = dst_coo.into_iter().map(|c| c.into_csr::<M>()).collect();
    Ok(DistMat::from_blocks(dst_layout.clone(), blocks))
}

/// Union of the owner ranks of two layouts, ascending.
fn collect_owners(a: &Layout, b: &Layout) -> Vec<usize> {
    let mut ranks: Vec<usize> = (0..a.br())
        .flat_map(|bi| (0..a.bc()).map(move |bj| (bi, bj)))
        .map(|(bi, bj)| a.owner(bi, bj))
        .chain(
            (0..b.br())
                .flat_map(|bi| (0..b.bc()).map(move |bj| (bi, bj)))
                .map(|(bi, bj)| b.owner(bi, bj)),
        )
        .collect();
    ranks.sort_unstable();
    ranks.dedup();
    ranks
}

/// Charges the movement described by `traffic` (true source→destination
/// byte counts, diagonal-free) according to the machine's
/// redistribution mode and emits one
/// [`mfbc_trace::TraceEvent::Redist`] labeled `what` with the total
/// bytes that changed owner.
///
/// * [`RedistMode::Alltoall`] — the §6.2 baseline: one personalized
///   all-to-all over `participants`, charged with the largest
///   per-sender volume.
/// * [`RedistMode::P2p`] — per sender, one point-to-point message per
///   destination (`k·α + β·b` for `k` destinations sending `b` bytes
///   total): cheapest when block sparsity leaves each sender few
///   destinations.
/// * [`RedistMode::Bcast`] — per sender, one broadcast over the
///   sender and its destinations (`2β·b + 2⌈lg(k+1)⌉·α`): fewer
///   latency hits when a block fans out to many ranks.
/// * [`RedistMode::Auto`] — per sender, whichever of the two hybrids
///   is cheaper under the spec's α and β, decided from the actual
///   per-block nnz the traffic matrix records — *unless* the traffic
///   is dense enough that the single amortized all-to-all undercuts
///   the whole hybrid schedule, in which case Auto falls back to it.
///   The comparison sums the per-sender hybrid costs (senders whose
///   groups share ranks serialize on the machine, so the sum is the
///   conservative estimate) against the all-to-all's closed form on
///   the largest per-sender volume.
fn charge_redist(
    m: &Machine,
    traffic: &[Vec<u64>],
    participants: Vec<usize>,
    what: &'static str,
) -> Result<(), MachineError> {
    let total: u64 = traffic.iter().map(|row| row.iter().sum::<u64>()).sum();
    if total == 0 || participants.len() <= 1 {
        return Ok(());
    }
    let nparticipants = participants.len();
    let spec = m.spec();
    let max_send = traffic
        .iter()
        .map(|row| row.iter().sum::<u64>())
        .max()
        .unwrap_or(0);
    let mode = match spec.redist {
        RedistMode::Auto => {
            let alltoall_t = CollectiveKind::AllToAll.time(spec, nparticipants, max_send);
            let hybrid_t: f64 = traffic
                .iter()
                .enumerate()
                .map(|(r, row)| {
                    let b_r: u64 = row
                        .iter()
                        .enumerate()
                        .filter(|&(d, &b)| d != r && b > 0)
                        .map(|(_, &b)| b)
                        .sum();
                    let k = row
                        .iter()
                        .enumerate()
                        .filter(|&(d, &b)| d != r && b > 0)
                        .count();
                    if k == 0 {
                        return 0.0;
                    }
                    let p2p_t = spec.beta * b_r as f64 + k as f64 * spec.alpha;
                    let bcast_t = CollectiveKind::Broadcast.time(spec, k + 1, b_r);
                    p2p_t.min(bcast_t)
                })
                .sum();
            if alltoall_t <= hybrid_t {
                RedistMode::Alltoall
            } else {
                RedistMode::Auto
            }
        }
        other => other,
    };
    match mode {
        RedistMode::Alltoall => {
            let group = mfbc_machine::Group::new(participants)
                .expect("owner union is non-empty and deduplicated");
            m.charge_collective(&group, CollectiveKind::AllToAll, max_send)?;
        }
        mode => {
            // Hybrid: price each sender's fan-out from its actual
            // per-destination volumes; ranks and destinations are
            // walked in ascending order so the schedule (and hence
            // the modeled clocks) is deterministic.
            for (r, row) in traffic.iter().enumerate() {
                let dests: Vec<(usize, u64)> = row
                    .iter()
                    .enumerate()
                    .filter(|&(d, &b)| d != r && b > 0)
                    .map(|(d, &b)| (d, b))
                    .collect();
                if dests.is_empty() {
                    continue;
                }
                let b_r: u64 = dests.iter().map(|&(_, b)| b).sum();
                let k = dests.len();
                let use_bcast = match mode {
                    RedistMode::Bcast => true,
                    RedistMode::P2p => false,
                    RedistMode::Auto | RedistMode::Alltoall => {
                        let p2p_t = spec.beta * b_r as f64 + k as f64 * spec.alpha;
                        let bcast_t = CollectiveKind::Broadcast.time(spec, k + 1, b_r);
                        bcast_t <= p2p_t
                    }
                };
                if use_bcast {
                    let mut ranks: Vec<usize> = dests.iter().map(|&(d, _)| d).collect();
                    ranks.push(r);
                    ranks.sort_unstable();
                    let group = mfbc_machine::Group::new(ranks)
                        .expect("sender plus destinations is non-empty");
                    m.charge_collective(&group, CollectiveKind::Broadcast, b_r)?;
                } else {
                    for (d, b) in dests {
                        let mut pair = vec![r, d];
                        pair.sort_unstable();
                        let group = mfbc_machine::Group::new(pair)
                            .expect("sender–destination pair is non-empty");
                        m.charge_collective(&group, CollectiveKind::PointToPoint, b)?;
                    }
                }
            }
        }
    }
    mfbc_trace::emit(|| mfbc_trace::TraceEvent::Redist {
        what,
        bytes_moved: total,
        participants: nparticipants,
    });
    Ok(())
}

/// Extracts several windows of `src` in one pass, moving all of them
/// through a *single* personalized all-to-all — what a real
/// implementation does when slicing a matrix across the layers of a
/// 3D algorithm (per-layer extraction would serialize the layers on
/// the critical path).
pub fn extract_windows<M, T>(
    m: &Machine,
    src: &DistMat<T>,
    specs: &[(std::ops::Range<usize>, std::ops::Range<usize>, Layout)],
) -> Result<Vec<DistMat<T>>, MachineError>
where
    M: Monoid<Elem = T>,
    T: Clone + Send + Sync + PartialEq + std::fmt::Debug,
{
    let p = m.p();
    let mut traffic = vec![vec![0u64; p]; p];
    let ebytes = entry_bytes::<T>() as u64;
    let mut outputs: Vec<Vec<Coo<T>>> = Vec::with_capacity(specs.len());
    let mut participants: Vec<usize> = Vec::new();
    for (rows, cols, dst_layout) in specs {
        assert_eq!(rows.len(), dst_layout.nrows(), "window height mismatch");
        assert_eq!(cols.len(), dst_layout.ncols(), "window width mismatch");
        assert!(
            rows.end <= src.nrows() && cols.end <= src.ncols(),
            "window out of bounds"
        );
        outputs.push(
            (0..dst_layout.br())
                .flat_map(|bi| (0..dst_layout.bc()).map(move |bj| (bi, bj)))
                .map(|(bi, bj)| {
                    Coo::new(
                        dst_layout.row_range(bi).len(),
                        dst_layout.col_range(bj).len(),
                    )
                })
                .collect(),
        );
        participants.extend(collect_owners(src.layout(), dst_layout));
    }
    participants.sort_unstable();
    participants.dedup();

    let sl = src.layout();
    for sbi in 0..sl.br() {
        let rr = sl.row_range(sbi);
        for sbj in 0..sl.bc() {
            let cr = sl.col_range(sbj);
            let src_rank = sl.owner(sbi, sbj);
            for (i, j, v) in src.block(sbi, sbj).iter() {
                let (gi, gj) = (rr.start + i, cr.start + j);
                for (w, (rows, cols, dst_layout)) in specs.iter().enumerate() {
                    if !rows.contains(&gi) || !cols.contains(&gj) {
                        continue;
                    }
                    let (wi, wj) = (gi - rows.start, gj - cols.start);
                    let dbi = dst_layout.find_row_block(wi);
                    let dbj = dst_layout.find_col_block(wj);
                    if dst_layout.owner(dbi, dbj) != src_rank {
                        traffic[src_rank][dst_layout.owner(dbi, dbj)] += ebytes;
                    }
                    outputs[w][dbi * dst_layout.bc() + dbj].push(
                        wi - dst_layout.row_range(dbi).start,
                        wj - dst_layout.col_range(dbj).start,
                        v.clone(),
                    );
                }
            }
        }
    }
    charge_redist(m, &traffic, participants, "windows")?;
    Ok(outputs
        .into_iter()
        .zip(specs)
        .map(|(coos, (_, _, dst_layout))| {
            DistMat::from_blocks(
                dst_layout.clone(),
                coos.into_iter().map(|c| c.into_csr::<M>()).collect(),
            )
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::Grid2;
    use mfbc_algebra::monoid::SumU64;
    use mfbc_machine::{Group, MachineSpec};
    use mfbc_sparse::Csr;

    fn machine(p: usize) -> Machine {
        Machine::new(MachineSpec::test(p))
    }

    fn sample() -> Csr<u64> {
        Coo::from_triples(
            6,
            6,
            (0..6).flat_map(|i| [(i, (i + 1) % 6, (10 + i) as u64), (i, i, (1 + i) as u64)]),
        )
        .into_csr::<SumU64>()
    }

    #[test]
    fn redistribution_preserves_contents() {
        let m = machine(4);
        let g = sample();
        let src_layout = Layout::on_grid(6, 6, &Grid2::new(Group::all(4), 2, 2).unwrap());
        let dst_layout = Layout::on_grid(6, 6, &Grid2::new(Group::all(4), 4, 1).unwrap());
        let src = DistMat::from_global(src_layout, &g);
        let dst = redistribute::<SumU64, _>(&m, &src, &dst_layout).unwrap();
        assert_eq!(dst.to_global::<SumU64>(), g);
        assert!(dst.layout().same_as(&dst_layout));
    }

    #[test]
    fn redistribution_charges_traffic() {
        let m = machine(4);
        let g = sample();
        let src = DistMat::from_global(
            Layout::on_grid(6, 6, &Grid2::new(Group::all(4), 2, 2).unwrap()),
            &g,
        );
        let dst_layout = Layout::on_grid(6, 6, &Grid2::new(Group::all(4), 1, 4).unwrap());
        let _ = redistribute::<SumU64, _>(&m, &src, &dst_layout).unwrap();
        assert!(m.report().critical.bytes > 0);
    }

    #[test]
    fn same_layout_is_free() {
        let m = machine(4);
        let g = sample();
        let layout = Layout::on_grid(6, 6, &Grid2::new(Group::all(4), 2, 2).unwrap());
        let src = DistMat::from_global(layout.clone(), &g);
        let dst = redistribute::<SumU64, _>(&m, &src, &layout).unwrap();
        assert_eq!(dst.to_global::<SumU64>(), g);
        assert_eq!(m.report().critical.bytes, 0);
        assert_eq!(m.report().critical.msgs, 0);
    }

    #[test]
    fn extract_window_preserves_window() {
        let m = machine(4);
        let g = sample();
        let src = DistMat::from_global(
            Layout::on_grid(6, 6, &Grid2::new(Group::all(4), 2, 2).unwrap()),
            &g,
        );
        let dst_layout = Layout::on_grid(3, 4, &Grid2::new(Group::all(4), 2, 2).unwrap());
        let w = extract_window::<SumU64, _>(&m, &src, 2..5, 1..5, &dst_layout).unwrap();
        let wg = w.to_global::<SumU64>();
        assert_eq!(wg, mfbc_sparse::slice::slice(&g, 2..5, 1..5));
    }

    #[test]
    fn extract_full_window_equals_redistribute() {
        let m = machine(4);
        let g = sample();
        let src = DistMat::from_global(
            Layout::on_grid(6, 6, &Grid2::new(Group::all(4), 2, 2).unwrap()),
            &g,
        );
        let dst_layout = Layout::on_grid(6, 6, &Grid2::new(Group::all(4), 4, 1).unwrap());
        let a = extract_window::<SumU64, _>(&m, &src, 0..6, 0..6, &dst_layout).unwrap();
        let b = redistribute::<SumU64, _>(&m, &src, &dst_layout).unwrap();
        assert_eq!(a.to_global::<SumU64>(), b.to_global::<SumU64>());
    }

    #[test]
    fn to_single_rank() {
        let m = machine(2);
        let g = sample();
        let src = DistMat::from_global(
            Layout::on_grid(6, 6, &Grid2::new(Group::all(2), 1, 2).unwrap()),
            &g,
        );
        let dst = redistribute::<SumU64, _>(&m, &src, &Layout::single(6, 6, 0)).unwrap();
        assert_eq!(dst.block(0, 0), &g);
    }
}
