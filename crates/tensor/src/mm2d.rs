//! The 2D sparse matrix multiplication variants (§5.2.2).
//!
//! SUMMA-style algorithms on a `g1 × g2` grid using broadcasts and
//! sparse reductions. `lcm(g1, g2)` steps walk the loop dimension;
//! the autotuner prefers grids with `lcm(g1,g2) = max(g1,g2)`,
//! mirroring CTF's grid adjustment (§5.2.2). Per variant `YZ`, the
//! matrices named `Y` and `Z` move:
//!
//! * **AB** (stationary C): at step `t`, broadcast the A-chunk along
//!   grid rows and the B-chunk along grid columns; accumulate C in
//!   place.
//! * **AC** (stationary B): broadcast the A-chunk along rows, form
//!   partial products, sparse-reduce C-chunks along columns.
//! * **BC** (stationary A): broadcast the B-chunk along columns,
//!   sparse-reduce C-chunks along rows.
//!
//! Cost: `W_YZ = O(α·max(g1,g2)·log p + β·(nnz(Y)/g1 + nnz(Z)/g2))`.

// Loop indices below are grid coordinates that index several aligned
// per-position tables at once; `enumerate()` over one of them would
// obscure the geometry.
#![allow(clippy::needless_range_loop)]

use crate::cache::{CachedRhs, Fingerprint, MmCache};
use crate::dist::{DistMat, Layout};
use crate::grid::{lcm, Grid2};
use crate::mm::{assemble_canonical, MmOut, Variant2D};
use crate::mm1d::{FirstWins, Piece};
use crate::redist::redistribute;
use mfbc_algebra::kernel::KernelOut;
use mfbc_algebra::SpMulKernel;
use mfbc_machine::collectives::{broadcast, isparse_reduce, sparse_reduce, Pending, Volume};
use mfbc_machine::{CollectiveKind, Machine, MachineError};
use mfbc_sparse::elementwise::combine;
use mfbc_sparse::slice::even_ranges;
use mfbc_sparse::{entry_bytes, spgemm_opt, Csr, Mask};
use std::sync::Arc;

/// Runs a 2D variant over `grid`, returning the canonical result.
pub(crate) fn run<K: SpMulKernel>(
    m: &Machine,
    grid: &Grid2,
    variant: Variant2D,
    a: &DistMat<K::Left>,
    b: &DistMat<K::Right>,
    mask: Option<&Mask>,
    cache: &mut MmCache<K::Right>,
) -> Result<MmOut<KernelOut<K>>, MachineError> {
    let (pieces, ops) = run_pieces::<K>(m, grid, variant, a, b, mask, cache)?;
    let c = assemble_canonical::<K::Acc, _>(m, a.nrows(), b.ncols(), pieces);
    Ok(MmOut { c, ops })
}

/// Fetches (or builds, charges residency, and caches) the right
/// operand redistributed into `lb` for this grid/variant.
fn cached_rhs_layout<K: SpMulKernel>(
    m: &Machine,
    variant: Variant2D,
    grid: &Grid2,
    b: &DistMat<K::Right>,
    lb: &Layout,
    cache: &mut MmCache<K::Right>,
) -> Result<Arc<DistMat<K::Right>>, MachineError> {
    let fp = Fingerprint::of(b);
    let key = format!(
        "2d:{variant:?}:{}x{}:{}",
        grid.g1(),
        grid.g2(),
        b.content_id()
    );
    if let Some(CachedRhs::Dist(d)) = cache.get(&key, fp) {
        return Ok(Arc::clone(d));
    }
    let built = Arc::new(redistribute::<FirstWins<K::Right>, _>(m, b, lb)?);
    let mut charges = Vec::new();
    for bi in 0..lb.br() {
        for bj in 0..lb.bc() {
            let rank = lb.owner(bi, bj);
            let bytes = (built.block(bi, bj).nnz() * entry_bytes::<K::Right>()) as u64;
            if bytes > 0 {
                m.charge_alloc(rank, bytes)?;
                charges.push((rank, bytes));
            }
        }
    }
    cache.insert(key, fp, CachedRhs::Dist(Arc::clone(&built)), charges);
    Ok(built)
}

/// A broadcast staged for one superstep: the shared block, the
/// per-receiver byte charge (released at step end), and — under
/// overlapped accounting — the in-flight collective's handle, which
/// must complete (via [`wait_staged`]) before the block is multiplied.
type StagedBcast<T> = (Arc<Csr<T>>, u64, Option<u64>);

/// Broadcasts `block` from grid position root within `group`,
/// charging receivers' memory. When the machine's spec overlaps, the
/// collective is issued nonblocking so the caller can prefetch the
/// next superstep's panels under the current one's compute; otherwise
/// the charge lands immediately (legacy blocking order).
fn bcast_block<T: Clone + Send + Sync>(
    m: &Machine,
    group: &mfbc_machine::Group,
    root_idx: usize,
    block: &Csr<T>,
) -> Result<StagedBcast<T>, MachineError> {
    let shared = Arc::new(block.clone());
    let handle = if m.spec().overlap && group.len() > 1 {
        Some(m.icharge_collective(group, CollectiveKind::Broadcast, shared.comm_bytes())?)
    } else {
        let handles = broadcast(m, group, root_idx, Arc::clone(&shared));
        drop(handles); // all handles alias `shared` in-process
        None
    };
    let bytes = (block.nnz() * entry_bytes::<T>()) as u64;
    for (idx, &r) in group.ranks().iter().enumerate() {
        if idx != root_idx {
            m.charge_alloc(r, bytes)?;
        }
    }
    Ok((shared, bytes, handle))
}

/// Completes every in-flight broadcast of a staged superstep; a no-op
/// under blocking accounting (no handles were issued).
fn wait_staged<T>(m: &Machine, staged: &[StagedBcast<T>]) -> Result<(), MachineError> {
    for (_, _, h) in staged {
        if let Some(h) = h {
            m.wait_collective(*h)?;
        }
    }
    Ok(())
}

/// Sparse-reduces C-chunk contributions over `group`: nonblocking
/// under overlapped accounting (the returned [`Pending`] gates the
/// reduced chunk and is drained after the superstep loop), blocking —
/// and immediately ready — otherwise.
pub(crate) fn reduce_chunk<K: SpMulKernel>(
    m: &Machine,
    group: &mfbc_machine::Group,
    contribs: Vec<Csr<KernelOut<K>>>,
) -> Result<Pending<Csr<KernelOut<K>>>, MachineError> {
    if m.spec().overlap {
        isparse_reduce(m, group, contribs, |x, y| combine::<K::Acc, _>(&x, &y))
    } else {
        Ok(Pending::ready(sparse_reduce(
            m,
            group,
            contribs,
            |x, y| combine::<K::Acc, _>(&x, &y),
        )?))
    }
}

fn release_bcast(m: &Machine, group: &mfbc_machine::Group, root_idx: usize, bytes: u64) {
    for (idx, &r) in group.ranks().iter().enumerate() {
        if idx != root_idx {
            m.release(r, bytes);
        }
    }
}

pub(crate) fn run_pieces<K: SpMulKernel>(
    m: &Machine,
    grid: &Grid2,
    variant: Variant2D,
    a: &DistMat<K::Left>,
    b: &DistMat<K::Right>,
    mask: Option<&Mask>,
    cache: &mut MmCache<K::Right>,
) -> Result<(Vec<Piece<KernelOut<K>>>, u64), MachineError> {
    match variant {
        Variant2D::AB => stationary_c::<K>(m, grid, a, b, mask, cache),
        Variant2D::AC => stationary_b::<K>(m, grid, a, b, mask, cache),
        Variant2D::BC => stationary_a::<K>(m, grid, a, b, mask, cache),
    }
}

/// Variant AB: C stationary on the grid; A and B chunks broadcast.
fn stationary_c<K: SpMulKernel>(
    m: &Machine,
    grid: &Grid2,
    a: &DistMat<K::Left>,
    b: &DistMat<K::Right>,
    mask: Option<&Mask>,
    cache: &mut MmCache<K::Right>,
) -> Result<(Vec<Piece<KernelOut<K>>>, u64), MachineError> {
    let (g1, g2) = (grid.g1(), grid.g2());
    let s = lcm(g1, g2);
    let (mm, kk, nn) = (a.nrows(), a.ncols(), b.ncols());

    let la = Layout::new(
        mm,
        kk,
        even_ranges(mm, g1),
        even_ranges(kk, s),
        (0..g1)
            .flat_map(|bi| (0..s).map(move |t| (bi, t)))
            .map(|(bi, t)| grid.rank(bi, t % g2))
            .collect(),
    );
    let lb = Layout::new(
        kk,
        nn,
        even_ranges(kk, s),
        even_ranges(nn, g2),
        (0..s)
            .flat_map(|t| (0..g2).map(move |bj| (t, bj)))
            .map(|(t, bj)| grid.rank(t % g1, bj))
            .collect(),
    );
    let a2 = redistribute::<FirstWins<K::Left>, _>(m, a, &la)?;
    let b2 = cached_rhs_layout::<K>(m, Variant2D::AB, grid, b, &lb, cache)?;

    let mut acc: Vec<Csr<KernelOut<K>>> = (0..g1)
        .flat_map(|bi| (0..g2).map(move |bj| (bi, bj)))
        .map(|(bi, bj)| Csr::zero(la.row_range(bi).len(), lb.col_range(bj).len()))
        .collect();
    // Each grid position (bi, bj) always writes the same output
    // rectangle, so one mask window per position covers all s steps.
    let windows: Option<Vec<Mask>> = mask.map(|mk| {
        (0..g1)
            .flat_map(|bi| (0..g2).map(move |bj| (bi, bj)))
            .map(|(bi, bj)| mk.window(la.row_range(bi), lb.col_range(bj)))
            .collect()
    });
    let mut ops = 0u64;

    // Stage (charge) every broadcast of superstep `t`: A chunks along
    // grid rows, then B chunks along grid columns — the legacy charge
    // order, so blocking runs are event-for-event identical.
    let stage = |t: usize| -> Result<
        (Vec<StagedBcast<K::Left>>, Vec<StagedBcast<K::Right>>),
        MachineError,
    > {
        let mut a_shared = Vec::with_capacity(g1);
        for bi in 0..g1 {
            a_shared.push(bcast_block(
                m,
                &grid.row_group(bi),
                t % g2,
                a2.block(bi, t),
            )?);
        }
        let mut b_shared = Vec::with_capacity(g2);
        for bj in 0..g2 {
            b_shared.push(bcast_block(
                m,
                &grid.col_group(bj),
                t % g1,
                b2.block(t, bj),
            )?);
        }
        Ok((a_shared, b_shared))
    };

    // Double-buffered pipeline: under overlapped accounting, step
    // t+1's broadcasts are issued before step t's compute, so their β
    // time hides under it; blocking mode stages at the top of each
    // iteration instead, preserving the serialized schedule exactly.
    let overlap = m.spec().overlap;
    let mut prefetched = if overlap { Some(stage(0)?) } else { None };
    for t in 0..s {
        let (a_shared, b_shared) = match prefetched.take() {
            Some(staged) => staged,
            None => stage(t)?,
        };
        if overlap && t + 1 < s {
            prefetched = Some(stage(t + 1)?);
        }
        wait_staged(m, &a_shared)?;
        wait_staged(m, &b_shared)?;
        for bi in 0..g1 {
            for bj in 0..g2 {
                let (ab, bb) = (&a_shared[bi].0, &b_shared[bj].0);
                if ab.is_empty() || bb.is_empty() {
                    continue;
                }
                let w = windows.as_ref().map(|ws| &ws[bi * g2 + bj]);
                let out = spgemm_opt::<K>(ab, bb, w);
                m.charge_compute(grid.rank(bi, bj), out.ops + out.mat.nnz() as u64);
                ops += out.ops;
                let slot = &mut acc[bi * g2 + bj];
                *slot = combine::<K::Acc, _>(slot, &out.mat);
            }
        }
        for (bi, (_, bytes, _)) in a_shared.into_iter().enumerate() {
            release_bcast(m, &grid.row_group(bi), t % g2, bytes);
        }
        for (bj, (_, bytes, _)) in b_shared.into_iter().enumerate() {
            release_bcast(m, &grid.col_group(bj), t % g1, bytes);
        }
    }

    let mut pieces = Vec::with_capacity(g1 * g2);
    for bi in 0..g1 {
        for bj in 0..g2 {
            let blk = std::mem::replace(&mut acc[bi * g2 + bj], Csr::zero(0, 0));
            if !blk.is_empty() {
                pieces.push((
                    la.row_range(bi).start,
                    lb.col_range(bj).start,
                    bi * g2 + bj,
                    blk,
                ));
            }
        }
    }
    Ok((pieces, ops))
}

/// Variant AC: B stationary; A chunks broadcast along rows, C chunks
/// sparse-reduced along columns.
fn stationary_b<K: SpMulKernel>(
    m: &Machine,
    grid: &Grid2,
    a: &DistMat<K::Left>,
    b: &DistMat<K::Right>,
    mask: Option<&Mask>,
    cache: &mut MmCache<K::Right>,
) -> Result<(Vec<Piece<KernelOut<K>>>, u64), MachineError> {
    let (g1, g2) = (grid.g1(), grid.g2());
    let s = lcm(g1, g2);
    let (mm, kk, nn) = (a.nrows(), a.ncols(), b.ncols());

    // B natural: k-rows over g1, n-cols over g2.
    let lb = Layout::on_grid(kk, nn, grid);
    // A: m split into s chunks, k over g1; chunk (t, bk) lives in
    // grid row bk (so the row-group broadcast reaches all columns).
    let la = Layout::new(
        mm,
        kk,
        even_ranges(mm, s),
        even_ranges(kk, g1),
        (0..s)
            .flat_map(|t| (0..g1).map(move |bk| (t, bk)))
            .map(|(t, bk)| grid.rank(bk, t % g2))
            .collect(),
    );
    let a2 = redistribute::<FirstWins<K::Left>, _>(m, a, &la)?;
    let b2 = cached_rhs_layout::<K>(m, Variant2D::AC, grid, b, &lb, cache)?;

    let ncols_of = |bj: usize| lb.col_range(bj).len();
    let mut pieces = Vec::new();
    let mut ops = 0u64;

    let stage = |t: usize| -> Result<Vec<StagedBcast<K::Left>>, MachineError> {
        let mut a_shared = Vec::with_capacity(g1);
        for bk in 0..g1 {
            a_shared.push(bcast_block(
                m,
                &grid.row_group(bk),
                t % g2,
                a2.block(t, bk),
            )?);
        }
        Ok(a_shared)
    };

    // Prefetch next step's A panels under this step's compute, and
    // drain the nonblocking C reductions only after the loop — the
    // reduced chunks feed nothing inside it.
    let overlap = m.spec().overlap;
    let mut reduced: Vec<(usize, usize, usize, Pending<Csr<KernelOut<K>>>)> = Vec::new();
    let mut prefetched = if overlap { Some(stage(0)?) } else { None };
    for t in 0..s {
        let chunk_rows = la.row_range(t).len();
        let a_shared = match prefetched.take() {
            Some(staged) => staged,
            None => stage(t)?,
        };
        if overlap && t + 1 < s {
            prefetched = Some(stage(t + 1)?);
        }
        wait_staged(m, &a_shared)?;
        for bj in 0..g2 {
            // All g1 partials of this (t, bj) output rectangle share
            // one window.
            let w = mask.map(|mk| mk.window(la.row_range(t), lb.col_range(bj)));
            let mut contribs: Vec<Csr<KernelOut<K>>> = Vec::with_capacity(g1);
            for bk in 0..g1 {
                let (ab, bb) = (&a_shared[bk].0, b2.block(bk, bj));
                if ab.is_empty() || bb.is_empty() {
                    contribs.push(Csr::zero(chunk_rows, ncols_of(bj)));
                    continue;
                }
                let out = spgemm_opt::<K>(ab, bb, w.as_ref());
                m.charge_compute(grid.rank(bk, bj), out.ops + out.mat.nnz() as u64);
                ops += out.ops;
                contribs.push(out.mat);
            }
            let cblk = reduce_chunk::<K>(m, &grid.col_group(bj), contribs)?;
            let pos = (t % g1) * g2 + bj;
            reduced.push((la.row_range(t).start, lb.col_range(bj).start, pos, cblk));
        }
        for (bk, (_, bytes, _)) in a_shared.into_iter().enumerate() {
            release_bcast(m, &grid.row_group(bk), t % g2, bytes);
        }
    }
    for (r0, c0, pos, pending) in reduced {
        let cblk = pending.wait(m)?;
        if !cblk.is_empty() {
            pieces.push((r0, c0, pos, cblk));
        }
    }
    Ok((pieces, ops))
}

/// Variant BC: A stationary; B chunks broadcast along columns, C
/// chunks sparse-reduced along rows.
fn stationary_a<K: SpMulKernel>(
    m: &Machine,
    grid: &Grid2,
    a: &DistMat<K::Left>,
    b: &DistMat<K::Right>,
    mask: Option<&Mask>,
    cache: &mut MmCache<K::Right>,
) -> Result<(Vec<Piece<KernelOut<K>>>, u64), MachineError> {
    let (g1, g2) = (grid.g1(), grid.g2());
    let s = lcm(g1, g2);
    let (mm, kk, nn) = (a.nrows(), a.ncols(), b.ncols());

    // A natural: m-rows over g1, k-cols over g2.
    let la = Layout::on_grid(mm, kk, grid);
    // B: k split over g2 (matching A's k cuts), n split into s
    // chunks; block (bk, t) lives in grid column bk.
    let lb = Layout::new(
        kk,
        nn,
        even_ranges(kk, g2),
        even_ranges(nn, s),
        (0..g2)
            .flat_map(|bk| (0..s).map(move |t| (bk, t)))
            .map(|(bk, t)| grid.rank(t % g1, bk))
            .collect(),
    );
    let a2 = redistribute::<FirstWins<K::Left>, _>(m, a, &la)?;
    let b2 = cached_rhs_layout::<K>(m, Variant2D::BC, grid, b, &lb, cache)?;

    let mut pieces = Vec::new();
    let mut ops = 0u64;

    let stage = |t: usize| -> Result<Vec<StagedBcast<K::Right>>, MachineError> {
        let mut b_shared = Vec::with_capacity(g2);
        for bk in 0..g2 {
            b_shared.push(bcast_block(
                m,
                &grid.col_group(bk),
                t % g1,
                b2.block(bk, t),
            )?);
        }
        Ok(b_shared)
    };

    // Mirror of the AC pipeline: prefetch B panels, drain reductions
    // after the loop.
    let overlap = m.spec().overlap;
    let mut reduced: Vec<(usize, usize, usize, Pending<Csr<KernelOut<K>>>)> = Vec::new();
    let mut prefetched = if overlap { Some(stage(0)?) } else { None };
    for t in 0..s {
        let chunk_cols = lb.col_range(t).len();
        let b_shared = match prefetched.take() {
            Some(staged) => staged,
            None => stage(t)?,
        };
        if overlap && t + 1 < s {
            prefetched = Some(stage(t + 1)?);
        }
        wait_staged(m, &b_shared)?;
        for bi in 0..g1 {
            let rows = la.row_range(bi).len();
            // All g2 partials of this (bi, t) output rectangle share
            // one window.
            let w = mask.map(|mk| mk.window(la.row_range(bi), lb.col_range(t)));
            let mut contribs: Vec<Csr<KernelOut<K>>> = Vec::with_capacity(g2);
            for bk in 0..g2 {
                let (ab, bb) = (a2.block(bi, bk), &b_shared[bk].0);
                if ab.is_empty() || bb.is_empty() {
                    contribs.push(Csr::zero(rows, chunk_cols));
                    continue;
                }
                let out = spgemm_opt::<K>(ab, bb, w.as_ref());
                m.charge_compute(grid.rank(bi, bk), out.ops + out.mat.nnz() as u64);
                ops += out.ops;
                contribs.push(out.mat);
            }
            let cblk = reduce_chunk::<K>(m, &grid.row_group(bi), contribs)?;
            let pos = bi * g2 + (t % g2);
            reduced.push((la.row_range(bi).start, lb.col_range(t).start, pos, cblk));
        }
        for (bk, (_, bytes, _)) in b_shared.into_iter().enumerate() {
            release_bcast(m, &grid.col_group(bk), t % g1, bytes);
        }
    }
    for (r0, c0, pos, pending) in reduced {
        let cblk = pending.wait(m)?;
        if !cblk.is_empty() {
            pieces.push((r0, c0, pos, cblk));
        }
    }
    Ok((pieces, ops))
}
