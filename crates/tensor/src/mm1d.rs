//! The 1D sparse matrix multiplication variants (§5.2.1).
//!
//! Each variant replicates one of the three matrices across the whole
//! group and blocks the other two:
//!
//! * **A** — replicate A (allgather); each rank owns a column block
//!   of B and computes the matching column block of C;
//! * **B** — replicate B; each rank owns a row block of A and
//!   computes the matching row block of C;
//! * **C** — each rank owns a column block of A and the matching row
//!   block of B, computes a full-shape partial product, and a sparse
//!   reduction combines the partials.
//!
//! Cost: `W_X(X, p) = O(α log p + β nnz(X))` — the replicated (or
//! reduced) matrix is the only one that moves.

use crate::cache::{CachedRhs, Fingerprint, MmCache};
use crate::dist::{DistMat, Layout};
use crate::mm::{assemble_canonical, MmOut};
use mfbc_algebra::kernel::KernelOut;
use mfbc_algebra::monoid::Monoid;
use mfbc_algebra::SpMulKernel;
use mfbc_machine::collectives::Pending;
use mfbc_machine::cost::CollectiveKind;
use mfbc_machine::{Group, Machine, MachineError};
use mfbc_sparse::elementwise::combine;
use mfbc_sparse::slice::even_ranges;
use mfbc_sparse::{entry_bytes, Csr, Mask};
use std::sync::Arc;

use crate::mm::Variant1D;
use crate::redist::redistribute;

/// One output piece: `(global row offset, global col offset,
/// grid-position index within the executing group, block)`. The
/// position lets 3D wrappers reduce matching pieces across layers
/// over the right fiber groups.
pub(crate) type Piece<T> = (usize, usize, usize, Csr<T>);

/// Runs a 1D variant over `group`, returning the canonical result.
pub(crate) fn run<K: SpMulKernel>(
    m: &Machine,
    group: &Group,
    variant: Variant1D,
    a: &DistMat<K::Left>,
    b: &DistMat<K::Right>,
    mask: Option<&Mask>,
    cache: &mut MmCache<K::Right>,
) -> Result<MmOut<KernelOut<K>>, MachineError> {
    let (pieces, ops) = run_pieces::<K>(m, group, variant, a, b, mask, cache)?;
    let c = assemble_canonical::<K::Acc, _>(m, a.nrows(), b.ncols(), pieces);
    Ok(MmOut { c, ops })
}

/// Issues an allgather charge for `bytes` over `group`: nonblocking
/// (returning the handle) when the machine's spec overlaps, blocking
/// otherwise. `None` means nothing was charged (singleton group).
fn charge_allgather(m: &Machine, group: &Group, bytes: u64) -> Result<Option<u64>, MachineError> {
    if group.len() <= 1 {
        return Ok(None);
    }
    if m.spec().overlap {
        Ok(Some(m.icharge_collective(
            group,
            CollectiveKind::Allgather,
            bytes,
        )?))
    } else {
        m.charge_collective(group, CollectiveKind::Allgather, bytes)?;
        Ok(None)
    }
}

/// Fetches (or builds, charges, and caches) the fully replicated form
/// of the right operand — the amortized "replicate B" of Theorem 5.1.
/// On a cache miss under overlapped accounting the allgather is issued
/// nonblocking: the caller redistributes the other operand while the
/// replica is in flight and waits the returned [`Pending`] only when
/// the replica is first multiplied.
fn replicated_rhs<K: SpMulKernel>(
    m: &Machine,
    group: &Group,
    b: &DistMat<K::Right>,
    cache: &mut MmCache<K::Right>,
) -> Result<Pending<Arc<Csr<K::Right>>>, MachineError> {
    let fp = Fingerprint::of(b);
    let key = format!("1d:B:{}:{}", group.len(), b.content_id());
    if let Some(CachedRhs::Global(g)) = cache.get(&key, fp) {
        return Ok(Pending::ready(Arc::clone(g)));
    }
    let bytes = (b.nnz() * entry_bytes::<K::Right>()) as u64;
    let handle = charge_allgather(m, group, bytes)?;
    let mut charges = Vec::with_capacity(group.len());
    for &r in group.ranks() {
        m.charge_alloc(r, bytes)?;
        charges.push((r, bytes));
    }
    let global = Arc::new(b.to_global::<FirstWins<K::Right>>());
    cache.insert(key, fp, CachedRhs::Global(Arc::clone(&global)), charges);
    Ok(match handle {
        Some(h) => Pending::issued(global, h),
        None => Pending::ready(global),
    })
}

/// Layout splitting columns into `q` parts, part `k` owned by group
/// member `k`.
fn col_split_layout(nrows: usize, ncols: usize, group: &Group) -> Layout {
    let q = group.len();
    Layout::new(
        nrows,
        ncols,
        vec![0..nrows],
        even_ranges(ncols, q),
        group.ranks().to_vec(),
    )
}

/// Layout splitting rows into `q` parts, part `k` owned by member `k`.
fn row_split_layout(nrows: usize, ncols: usize, group: &Group) -> Layout {
    let q = group.len();
    Layout::new(
        nrows,
        ncols,
        even_ranges(nrows, q),
        vec![0..ncols],
        group.ranks().to_vec(),
    )
}

/// Replicates a distributed matrix to every member of `group`: the
/// allgather moves every block to every rank (charged at
/// `β·nnz + α·log p`), and each rank's resident memory grows by the
/// full matrix size. Under overlapped accounting the allgather is
/// issued nonblocking so the caller can redistribute the other
/// operand while the replica is in flight; the returned [`Pending`]
/// must be waited before the replica is multiplied.
fn replicate<T, M>(
    machine: &Machine,
    group: &Group,
    x: &DistMat<T>,
) -> Result<Pending<Csr<T>>, MachineError>
where
    M: Monoid<Elem = T>,
    T: Clone + Send + Sync + PartialEq + std::fmt::Debug,
{
    let bytes = (x.nnz() * entry_bytes::<T>()) as u64;
    let handle = charge_allgather(machine, group, bytes)?;
    for &r in group.ranks() {
        machine.charge_alloc(r, bytes)?;
    }
    let global = x.to_global::<M>();
    Ok(match handle {
        Some(h) => Pending::issued(global, h),
        None => Pending::ready(global),
    })
}

/// Releases the replication charge of [`replicate`].
fn release_replica<T>(machine: &Machine, group: &Group, global: &Csr<T>) {
    let bytes = (global.nnz() * entry_bytes::<T>()) as u64;
    for &r in group.ranks() {
        machine.release(r, bytes);
    }
}

pub(crate) fn run_pieces<K: SpMulKernel>(
    m: &Machine,
    group: &Group,
    variant: Variant1D,
    a: &DistMat<K::Left>,
    b: &DistMat<K::Right>,
    mask: Option<&Mask>,
    cache: &mut MmCache<K::Right>,
) -> Result<(Vec<Piece<KernelOut<K>>>, u64), MachineError> {
    // Trivial monoid shorthand used for operand redistribution: the
    // layout cuts are disjoint, so no combining ever happens; we use
    // a "first wins" fold via the kernel's accumulator where types
    // match, and plain cloning otherwise. Operand matrices are
    // assumed duplicate-free (DistMat guarantees this).
    match variant {
        Variant1D::A => {
            // Replicate A and redistribute B concurrently: in overlap
            // mode the allgather is in flight while the alltoall below
            // is charged, and the wait lands only before the first
            // multiply that touches the replica.
            let a_pending = replicate::<_, FirstWins<K::Left>>(m, group, a)?;
            let lb = col_split_layout(b.nrows(), b.ncols(), group);
            // The column-split right-hand form depends only on the
            // operand and the group, so Theorem 5.1's amortization
            // applies to it exactly as to the replicated/blocked
            // forms of the other variants; a cached form serves
            // masked calls too (compute is mask-windowed either way).
            // On a miss, a mask whose fully-excluded output columns
            // strand B entries at home ships the shrunk operand
            // instead — that form is mask-specific, so it is built
            // fresh and never cached.
            let fp = Fingerprint::of(b);
            let key = format!("1d:A:{}:{}", group.len(), b.content_id());
            let b2: Arc<DistMat<K::Right>> = if let Some(CachedRhs::Dist(d)) = cache.get(&key, fp) {
                Arc::clone(d)
            } else if let Some(s) = mask.and_then(|mk| crate::mm::shrink_rhs_against_mask(b, mk)) {
                Arc::new(redistribute::<FirstWins<K::Right>, _>(m, &s, &lb)?)
            } else {
                let built = Arc::new(redistribute::<FirstWins<K::Right>, _>(m, b, &lb)?);
                let mut charges = Vec::new();
                for k in 0..group.len() {
                    let bytes = (built.block(0, k).nnz() * entry_bytes::<K::Right>()) as u64;
                    m.charge_alloc(group.rank_at(k), bytes)?;
                    charges.push((group.rank_at(k), bytes));
                }
                cache.insert(key, fp, CachedRhs::Dist(Arc::clone(&built)), charges);
                built
            };
            let a_full = a_pending.wait(m)?;
            let mut pieces = Vec::with_capacity(group.len());
            let mut ops = 0u64;
            for k in 0..group.len() {
                let blk = b2.block(0, k);
                if blk.is_empty() || a_full.is_empty() {
                    continue;
                }
                let w = mask.map(|mk| mk.window(0..a.nrows(), lb.col_range(k)));
                let out = mfbc_sparse::spgemm_opt::<K>(&a_full, blk, w.as_ref());
                m.charge_compute(group.rank_at(k), out.ops + out.mat.nnz() as u64);
                ops += out.ops;
                pieces.push((0, lb.col_range(k).start, k, out.mat));
            }
            release_replica(m, group, &a_full);
            Ok((pieces, ops))
        }
        Variant1D::B => {
            let b_pending = replicated_rhs::<K>(m, group, b, cache)?;
            let la = row_split_layout(a.nrows(), a.ncols(), group);
            let a2 = redistribute::<FirstWins<K::Left>, _>(m, a, &la)?;
            let b_full = b_pending.wait(m)?;
            let mut pieces = Vec::with_capacity(group.len());
            let mut ops = 0u64;
            for k in 0..group.len() {
                let blk = a2.block(k, 0);
                if blk.is_empty() || b_full.is_empty() {
                    continue;
                }
                let w = mask.map(|mk| mk.window(la.row_range(k), 0..b.ncols()));
                let out = mfbc_sparse::spgemm_opt::<K>(blk, &b_full, w.as_ref());
                m.charge_compute(group.rank_at(k), out.ops + out.mat.nnz() as u64);
                ops += out.ops;
                pieces.push((la.row_range(k).start, 0, k, out.mat));
            }
            Ok((pieces, ops))
        }
        Variant1D::C => {
            let la = col_split_layout(a.nrows(), a.ncols(), group);
            let lb = row_split_layout(b.nrows(), b.ncols(), group);
            let a2 = redistribute::<FirstWins<K::Left>, _>(m, a, &la)?;
            let fp = Fingerprint::of(b);
            let key = format!("1d:C:{}:{}", group.len(), b.content_id());
            let b2 = if let Some(CachedRhs::Dist(d)) = cache.get(&key, fp) {
                Arc::clone(d)
            } else {
                let built = Arc::new(redistribute::<FirstWins<K::Right>, _>(m, b, &lb)?);
                let mut charges = Vec::new();
                for k in 0..group.len() {
                    let bytes = (built.block(k, 0).nnz() * entry_bytes::<K::Right>()) as u64;
                    m.charge_alloc(group.rank_at(k), bytes)?;
                    charges.push((group.rank_at(k), bytes));
                }
                cache.insert(key, fp, CachedRhs::Dist(Arc::clone(&built)), charges);
                built
            };
            let mut ops = 0u64;
            let mut partials: Vec<Csr<KernelOut<K>>> = Vec::with_capacity(group.len());
            for k in 0..group.len() {
                let (ab, bb) = (a2.block(0, k), b2.block(k, 0));
                if ab.is_empty() || bb.is_empty() {
                    partials.push(Csr::zero(a.nrows(), b.ncols()));
                    continue;
                }
                // Full-shape partials: each gets the whole mask.
                let out = mfbc_sparse::spgemm_opt::<K>(ab, bb, mask);
                m.charge_compute(group.rank_at(k), out.ops + out.mat.nnz() as u64);
                m.charge_alloc(
                    group.rank_at(k),
                    (out.mat.nnz() * entry_bytes::<KernelOut<K>>()) as u64,
                )?;
                ops += out.ops;
                partials.push(out.mat);
            }
            let alloc_per: Vec<u64> = partials
                .iter()
                .map(|p| (p.nnz() * entry_bytes::<KernelOut<K>>()) as u64)
                .collect();
            let total = mfbc_machine::collectives::sparse_reduce(m, group, partials, |x, y| {
                combine::<K::Acc, _>(&x, &y)
            })?;
            for (k, bytes) in alloc_per.into_iter().enumerate() {
                m.release(group.rank_at(k), bytes);
            }
            Ok((vec![(0, 0, 0, total)], ops))
        }
    }
}

/// A degenerate "monoid" used only to satisfy redistribution's
/// combiner bound for operand element types that need no combining
/// (distributed operands are duplicate-free by construction): it
/// keeps the first value and is never actually invoked on two
/// distinct coordinates.
#[derive(Debug)]
pub(crate) struct FirstWins<T>(std::marker::PhantomData<T>);

impl<T> Clone for FirstWins<T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T> Copy for FirstWins<T> {}

impl<T> Default for FirstWins<T> {
    fn default() -> Self {
        FirstWins(std::marker::PhantomData)
    }
}

impl<T: Clone + PartialEq + Send + Sync + std::fmt::Debug + 'static> Monoid for FirstWins<T> {
    type Elem = T;

    fn combine(a: &T, _b: &T) -> T {
        a.clone()
    }

    fn identity() -> T {
        unreachable!("FirstWins::identity must never be materialized")
    }

    /// Nothing is the identity: nothing is ever pruned.
    fn is_identity(_e: &T) -> bool {
        false
    }

    fn fold_into(_acc: &mut T, _x: &T) {}
}

impl<T: Clone + PartialEq + Send + Sync + std::fmt::Debug + 'static>
    mfbc_algebra::monoid::CommutativeMonoid for FirstWins<T>
{
}
