//! Every distributed multiplication plan must produce exactly the
//! sequential generalized SpGEMM result — the central correctness
//! property of the CTF-analogue layer. Exercised for the tropical
//! kernel (square operands) and the Bellman–Ford multpath kernel
//! (rectangular frontier × adjacency), across machine sizes and every
//! candidate plan the autotuner can emit.

use mfbc_algebra::kernel::{BellmanFordKernel, TropicalKernel};
use mfbc_algebra::monoid::MinDist;
use mfbc_algebra::{Dist, Multpath, MultpathMonoid};
use mfbc_machine::{Machine, MachineSpec};
use mfbc_sparse::{spgemm_serial, Coo, Csr};
use mfbc_tensor::autotune::{candidate_plans, mm_auto};
use mfbc_tensor::{canonical_layout, mm_exec, mm_exec_masked, DistMat};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn random_dist_mat(rng: &mut ChaCha8Rng, nrows: usize, ncols: usize, nnz: usize) -> Csr<Dist> {
    let mut coo = Coo::new(nrows, ncols);
    for _ in 0..nnz {
        coo.push(
            rng.gen_range(0..nrows),
            rng.gen_range(0..ncols),
            Dist::new(rng.gen_range(1..50)),
        );
    }
    coo.into_csr::<MinDist>()
}

fn random_frontier(rng: &mut ChaCha8Rng, nrows: usize, ncols: usize, nnz: usize) -> Csr<Multpath> {
    let mut coo = Coo::new(nrows, ncols);
    for _ in 0..nnz {
        coo.push(
            rng.gen_range(0..nrows),
            rng.gen_range(0..ncols),
            Multpath::new(
                Dist::new(rng.gen_range(0..40)),
                f64::from(rng.gen_range(1u32..4)),
            ),
        );
    }
    coo.into_csr::<MultpathMonoid>()
}

#[test]
fn every_plan_matches_serial_tropical() {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let n = 37; // deliberately not divisible by typical grids
    let a = random_dist_mat(&mut rng, n, n, 140);
    let b = random_dist_mat(&mut rng, n, n, 170);
    let expected = spgemm_serial::<TropicalKernel>(&a, &b);

    for p in [1usize, 2, 4, 6, 8, 12] {
        let m = Machine::new(MachineSpec::test(p));
        let da = DistMat::from_global(canonical_layout(&m, n, n), &a);
        let db = DistMat::from_global(canonical_layout(&m, n, n), &b);
        for plan in candidate_plans(p) {
            let out = mm_exec::<TropicalKernel>(&m, &plan, &da, &db)
                .unwrap_or_else(|e| panic!("p={p} plan={plan:?}: {e}"));
            let got = out.c.to_global::<MinDist>();
            assert_eq!(got, expected.mat, "mismatch for p={p}, plan={plan:?}");
            assert_eq!(
                out.ops, expected.ops,
                "ops mismatch for p={p}, plan={plan:?}"
            );
        }
    }
}

#[test]
fn every_plan_matches_serial_multpath_rectangular() {
    let mut rng = ChaCha8Rng::seed_from_u64(13);
    let (nb, n) = (5, 41);
    let f = random_frontier(&mut rng, nb, n, 60);
    let a = random_dist_mat(&mut rng, n, n, 200);
    let expected = spgemm_serial::<BellmanFordKernel>(&f, &a);

    for p in [1usize, 4, 9] {
        let m = Machine::new(MachineSpec::test(p));
        let df = DistMat::from_global(canonical_layout(&m, nb, n), &f);
        let da = DistMat::from_global(canonical_layout(&m, n, n), &a);
        for plan in candidate_plans(p) {
            let out = mm_exec::<BellmanFordKernel>(&m, &plan, &df, &da)
                .unwrap_or_else(|e| panic!("p={p} plan={plan:?}: {e}"));
            let got = out.c.to_global::<MultpathMonoid>();
            assert_eq!(got, expected.mat, "mismatch for p={p}, plan={plan:?}");
        }
    }
}

#[test]
fn autotuned_mm_matches_serial_and_charges_costs() {
    let mut rng = ChaCha8Rng::seed_from_u64(99);
    let n = 64;
    let a = random_dist_mat(&mut rng, n, n, 500);
    let b = random_dist_mat(&mut rng, n, n, 500);
    let expected = spgemm_serial::<TropicalKernel>(&a, &b).mat;

    let m = Machine::new(MachineSpec::gemini(8));
    let da = DistMat::from_global(canonical_layout(&m, n, n), &a);
    let db = DistMat::from_global(canonical_layout(&m, n, n), &b);
    let (out, plan) = mm_auto::<TropicalKernel>(&m, &da, &db).unwrap();
    assert_eq!(out.c.to_global::<MinDist>(), expected);
    let report = m.report();
    assert!(
        report.critical.comm_time > 0.0,
        "plan {plan:?} charged no comm"
    );
    assert!(report.critical.comp_time > 0.0);
    assert!(report.total_ops > 0);
}

#[test]
fn empty_operands_work_under_all_plans() {
    let n = 16;
    let a = Csr::<Dist>::zero(n, n);
    let b = Csr::<Dist>::zero(n, n);
    let m = Machine::new(MachineSpec::test(4));
    let da = DistMat::from_global(canonical_layout(&m, n, n), &a);
    let db = DistMat::from_global(canonical_layout(&m, n, n), &b);
    for plan in candidate_plans(4) {
        let out = mm_exec::<TropicalKernel>(&m, &plan, &da, &db).unwrap();
        assert_eq!(out.c.nnz(), 0, "plan {plan:?}");
        assert_eq!(out.ops, 0);
    }
}

#[test]
fn more_ranks_than_rows_still_correct() {
    // Frontier with fewer rows than ranks: empty row blocks must not
    // break any schedule.
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let (nb, n) = (2, 23);
    let f = random_frontier(&mut rng, nb, n, 15);
    let a = random_dist_mat(&mut rng, n, n, 80);
    let expected = spgemm_serial::<BellmanFordKernel>(&f, &a).mat;
    let m = Machine::new(MachineSpec::test(8));
    let df = DistMat::from_global(canonical_layout(&m, nb, n), &f);
    let da = DistMat::from_global(canonical_layout(&m, n, n), &a);
    for plan in candidate_plans(8) {
        let out = mm_exec::<BellmanFordKernel>(&m, &plan, &df, &da)
            .unwrap_or_else(|e| panic!("plan={plan:?}: {e}"));
        assert_eq!(
            out.c.to_global::<MultpathMonoid>(),
            expected,
            "plan {plan:?}"
        );
    }
}

#[test]
fn replication_plans_hit_memory_budget() {
    // A machine with a tiny memory budget must fail 1D replication
    // with OutOfMemory — the mechanism behind the paper's
    // "unable to execute" data points.
    use mfbc_tensor::{MmPlan, Variant1D};
    let mut rng = ChaCha8Rng::seed_from_u64(31);
    let n = 64;
    let a = random_dist_mat(&mut rng, n, n, 1000);
    let spec = MachineSpec::test(4).with_mem_bytes(Some(2000));
    let m = Machine::new(spec);
    let da = DistMat::from_global(canonical_layout(&m, n, n), &a);
    let db = da.clone();
    let err = mm_exec::<TropicalKernel>(&m, &MmPlan::OneD(Variant1D::A), &da, &db);
    assert!(err.is_err(), "replicating 12 kB into 2 kB budget must fail");
}

#[test]
fn every_plan_matches_masked_serial() {
    use mfbc_sparse::{spgemm_masked_serial, Mask, MaskKind};
    let mut rng = ChaCha8Rng::seed_from_u64(21);
    let (nb, n) = (6, 39);
    let f = random_frontier(&mut rng, nb, n, 70);
    let a = random_dist_mat(&mut rng, n, n, 220);
    let coords: Vec<(usize, usize)> = (0..80)
        .map(|_| (rng.gen_range(0..nb), rng.gen_range(0..n)))
        .collect();

    for kind in [MaskKind::Structural, MaskKind::Complement] {
        let mask = Mask::from_coords(kind, nb, n, &coords);
        let expected = spgemm_masked_serial::<BellmanFordKernel>(&f, &a, &mask);
        // Masked multiply must agree with multiply-then-filter on the
        // kept entries...
        let filtered = mask.filter_allowed(&spgemm_serial::<BellmanFordKernel>(&f, &a).mat);
        assert_eq!(expected.mat, filtered, "{kind:?}: serial vs filter oracle");
        // ...and every distributed plan must reproduce it exactly,
        // including the skipped-product count.
        for p in [1usize, 4, 9] {
            let m = Machine::new(MachineSpec::test(p));
            let df = DistMat::from_global(canonical_layout(&m, nb, n), &f);
            let da = DistMat::from_global(canonical_layout(&m, n, n), &a);
            for plan in candidate_plans(p) {
                let out = mm_exec_masked::<BellmanFordKernel>(&m, &plan, &df, &da, Some(&mask))
                    .unwrap_or_else(|e| panic!("{kind:?} p={p} plan={plan:?}: {e}"));
                assert_eq!(
                    out.c.to_global::<MultpathMonoid>(),
                    expected.mat,
                    "{kind:?} p={p} plan={plan:?}"
                );
                assert_eq!(out.ops, expected.ops, "{kind:?} p={p} plan={plan:?} ops");
            }
        }
    }
}

#[test]
fn mask_shrinks_variant_a_communication() {
    use mfbc_sparse::{Mask, MaskKind};
    use mfbc_tensor::{MmPlan, Variant1D};
    let mut rng = ChaCha8Rng::seed_from_u64(33);
    let (nb, n) = (4, 48);
    let f = random_frontier(&mut rng, nb, n, 40);
    let a = random_dist_mat(&mut rng, n, n, 400);
    // Structural mask confined to the first few columns: most of the
    // adjacency's columns are fully excluded and need not move.
    let coords: Vec<(usize, usize)> = (0..nb).flat_map(|i| (0..6).map(move |j| (i, j))).collect();
    let mask = Mask::from_coords(MaskKind::Structural, nb, n, &coords);

    let run = |mask: Option<&Mask>| {
        let m = Machine::new(MachineSpec::test(4));
        let df = DistMat::from_global(canonical_layout(&m, nb, n), &f);
        let da = DistMat::from_global(canonical_layout(&m, n, n), &a);
        let out =
            mm_exec_masked::<BellmanFordKernel>(&m, &MmPlan::OneD(Variant1D::A), &df, &da, mask)
                .unwrap();
        (m.report().critical.bytes, out.ops)
    };
    let (unmasked_bytes, unmasked_ops) = run(None);
    let (masked_bytes, masked_ops) = run(Some(&mask));
    assert!(
        masked_bytes < unmasked_bytes,
        "masked {masked_bytes} !< unmasked {unmasked_bytes}"
    );
    assert!(
        masked_ops < unmasked_ops,
        "masked {masked_ops} !< unmasked {unmasked_ops}"
    );
}
