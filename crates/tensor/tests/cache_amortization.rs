//! The Theorem-5.1 amortization: repeating a multiplication with the
//! *same* right operand (the adjacency matrix across MFBC iterations)
//! must not re-pay its replication/redistribution, while a different
//! right operand must.

use mfbc_algebra::kernel::TropicalKernel;
use mfbc_algebra::monoid::MinDist;
use mfbc_algebra::Dist;
use mfbc_machine::{Machine, MachineSpec};
use mfbc_sparse::{spgemm_serial, Coo, Csr};
use mfbc_tensor::cache::MmCache;
use mfbc_tensor::{
    canonical_layout, mm_exec, mm_exec_cached, DistMat, MmPlan, Variant1D, Variant2D,
};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn random_mat(seed: u64, n: usize, nnz: usize) -> Csr<Dist> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut coo = Coo::new(n, n);
    for _ in 0..nnz {
        coo.push(
            rng.gen_range(0..n),
            rng.gen_range(0..n),
            Dist::new(rng.gen_range(1..40)),
        );
    }
    coo.into_csr::<MinDist>()
}

fn plans() -> Vec<MmPlan> {
    vec![
        MmPlan::OneD(Variant1D::B),
        MmPlan::OneD(Variant1D::C),
        MmPlan::TwoD {
            variant: Variant2D::AC,
            p2: 2,
            p3: 2,
        },
        MmPlan::ThreeD {
            split: Variant1D::B,
            inner: Variant2D::AC,
            p1: 2,
            p2: 2,
            p3: 1,
        },
        MmPlan::ThreeD {
            split: Variant1D::A,
            inner: Variant2D::AB,
            p1: 2,
            p2: 1,
            p3: 2,
        },
    ]
}

#[test]
fn second_iteration_is_cheaper_with_cache() {
    let n = 48;
    let a1 = random_mat(1, n, 300);
    let a2 = random_mat(2, n, 300);
    let b = random_mat(3, n, 400);

    for plan in plans() {
        // Warm path: two multiplications sharing one cache.
        let m = Machine::new(MachineSpec::test(4));
        let da1 = DistMat::from_global(canonical_layout(&m, n, n), &a1);
        let da2 = DistMat::from_global(canonical_layout(&m, n, n), &a2);
        let db = DistMat::from_global(canonical_layout(&m, n, n), &b);
        let mut cache = MmCache::new();
        let _ = mm_exec_cached::<TropicalKernel>(&m, &plan, &da1, &db, &mut cache).unwrap();
        let after_first = m.report().critical.bytes;
        let _ = mm_exec_cached::<TropicalKernel>(&m, &plan, &da2, &db, &mut cache).unwrap();
        let cached_second = m.report().critical.bytes - after_first;
        cache.release_all(&m);

        // Cold path: the second multiplication alone on a fresh
        // machine (pays the full B preparation).
        let m2 = Machine::new(MachineSpec::test(4));
        let da2b = DistMat::from_global(canonical_layout(&m2, n, n), &a2);
        let db2 = DistMat::from_global(canonical_layout(&m2, n, n), &b);
        let _ = mm_exec::<TropicalKernel>(&m2, &plan, &da2b, &db2).unwrap();
        let cold_second = m2.report().critical.bytes;

        // For plans where the right operand genuinely moves
        // (replication or a layout different from canonical), caching
        // must save volume; plans whose B layout coincides with the
        // canonical one (e.g. square 2D AC at p=4) move nothing either
        // way, so equality is the correct outcome there.
        let strictly_cheaper = matches!(plan, MmPlan::OneD(Variant1D::B) | MmPlan::ThreeD { .. });
        if strictly_cheaper {
            assert!(
                cached_second < cold_second,
                "plan {plan:?}: cached repeat moved {cached_second} B, cold run {cold_second} B"
            );
        } else {
            assert!(
                cached_second <= cold_second,
                "plan {plan:?}: cached repeat moved {cached_second} B, cold run {cold_second} B"
            );
        }
    }
}

#[test]
fn cached_results_stay_correct() {
    let n = 40;
    let b = random_mat(5, n, 320);
    for plan in plans() {
        let m = Machine::new(MachineSpec::test(4));
        let db = DistMat::from_global(canonical_layout(&m, n, n), &b);
        let mut cache = MmCache::new();
        for seed in 10..14 {
            let a = random_mat(seed, n, 250);
            let da = DistMat::from_global(canonical_layout(&m, n, n), &a);
            let got = mm_exec_cached::<TropicalKernel>(&m, &plan, &da, &db, &mut cache)
                .unwrap()
                .c
                .to_global::<MinDist>();
            let want = spgemm_serial::<TropicalKernel>(&a, &b).mat;
            assert_eq!(got, want, "plan {plan:?}, seed {seed}");
        }
        cache.release_all(&m);
    }
}

#[test]
fn different_rhs_is_not_conflated() {
    let n = 32;
    let a = random_mat(7, n, 200);
    let b1 = random_mat(8, n, 200);
    let b2 = random_mat(9, n, 200);
    let m = Machine::new(MachineSpec::test(4));
    let da = DistMat::from_global(canonical_layout(&m, n, n), &a);
    let db1 = DistMat::from_global(canonical_layout(&m, n, n), &b1);
    let db2 = DistMat::from_global(canonical_layout(&m, n, n), &b2);
    let plan = MmPlan::OneD(Variant1D::B);
    let mut cache = MmCache::new();
    let r1 = mm_exec_cached::<TropicalKernel>(&m, &plan, &da, &db1, &mut cache).unwrap();
    let r2 = mm_exec_cached::<TropicalKernel>(&m, &plan, &da, &db2, &mut cache).unwrap();
    assert_eq!(
        r1.c.to_global::<MinDist>(),
        spgemm_serial::<TropicalKernel>(&a, &b1).mat
    );
    assert_eq!(
        r2.c.to_global::<MinDist>(),
        spgemm_serial::<TropicalKernel>(&a, &b2).mat
    );
    assert_eq!(cache.len(), 2, "two distinct operands, two entries");
    cache.release_all(&m);
}

#[test]
fn uncached_exec_releases_all_memory() {
    let n = 32;
    let a = random_mat(11, n, 200);
    let m = Machine::new(MachineSpec::test(4));
    let da = DistMat::from_global(canonical_layout(&m, n, n), &a);
    let db = da.clone();
    let _ = mm_exec::<TropicalKernel>(&m, &MmPlan::OneD(Variant1D::B), &da, &db).unwrap();
    for r in 0..4 {
        assert_eq!(
            m.with_tracker(|t| t.resident(r)),
            0,
            "rank {r} leaked simulated memory"
        );
    }
}
