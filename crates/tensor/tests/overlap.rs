//! Overlap and hybrid-redistribution properties at the plan level:
//! for every candidate plan the autotuner can emit, running under
//! overlapped accounting must leave the numerical result and the
//! *set of charged collectives* (kind, ranks, payload, messages)
//! bit-identical to the blocking run — only the modeled clocks may
//! move, and only downward. The per-rank critical-path meters are not
//! compared: every collective raises a rank's meters to the group
//! maximum before adding its own charge (§7.4), so the over-ranks
//! maxima depend on where synchronization points fall relative to
//! compute charges — which overlap mode moves by design. The trace is
//! the order-insensitive ground truth. Likewise every hybrid
//! redistribution mode must preserve the result exactly (it reroutes
//! the same entries through different collectives).

use mfbc_algebra::kernel::TropicalKernel;
use mfbc_algebra::monoid::MinDist;
use mfbc_algebra::Dist;
use mfbc_machine::{Machine, MachineSpec, RedistMode};
use mfbc_sparse::{Coo, Csr, Mask, MaskKind};
use mfbc_tensor::autotune::candidate_plans;
use mfbc_tensor::{canonical_layout, mm_exec_masked, DistMat};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

/// One charged collective, as seen by the trace: kind, participating
/// ranks, per-rank payload, messages, and bytes on the critical path.
/// Blocking runs emit these as `Collective`; overlapped runs emit the
/// same costs on `CollectiveIssue` (the wait carries no new cost).
type ChargedCollective = (&'static str, Vec<usize>, u64, u64, u64);

fn charged_collectives(records: &[mfbc_trace::TraceRecord]) -> Vec<ChargedCollective> {
    let mut out: Vec<ChargedCollective> = records
        .iter()
        .filter_map(|r| match &r.event {
            mfbc_trace::TraceEvent::Collective {
                kind,
                ranks,
                bytes,
                msgs,
                bytes_charged,
                ..
            }
            | mfbc_trace::TraceEvent::CollectiveIssue {
                kind,
                ranks,
                bytes,
                msgs,
                bytes_charged,
                ..
            } => Some((*kind, ranks.clone(), *bytes, *msgs, *bytes_charged)),
            _ => None,
        })
        .collect();
    // Issue order differs between modes (overlap prefetches ahead of
    // compute), so compare as a multiset.
    out.sort();
    out
}

fn random_dist_mat(rng: &mut ChaCha8Rng, n: usize, nnz: usize) -> Csr<Dist> {
    let mut coo = Coo::new(n, n);
    for _ in 0..nnz {
        coo.push(
            rng.gen_range(0..n),
            rng.gen_range(0..n),
            Dist::new(rng.gen_range(1..50)),
        );
    }
    coo.into_csr::<MinDist>()
}

fn random_mask(rng: &mut ChaCha8Rng, n: usize) -> Mask {
    let coords: Vec<(usize, usize)> = (0..(n * n / 3))
        .map(|_| (rng.gen_range(0..n), rng.gen_range(0..n)))
        .collect();
    Mask::from_coords(MaskKind::Structural, n, n, &coords)
}

/// Runs one plan under `spec`, returning the global result, the op
/// count, the charged-collective multiset, the critical-path comm
/// time, and the modeled makespan.
fn run_plan(
    spec: MachineSpec,
    plan: &mfbc_tensor::MmPlan,
    a: &Csr<Dist>,
    b: &Csr<Dist>,
    mask: Option<&Mask>,
) -> (Csr<Dist>, u64, Vec<ChargedCollective>, f64, f64) {
    let n = a.nrows();
    let rec = Arc::new(mfbc_trace::MemoryRecorder::new());
    let (out, comm_time, makespan) = mfbc_trace::scoped(rec.clone(), || {
        let m = Machine::new(spec);
        let da = DistMat::from_global(canonical_layout(&m, n, n), a);
        let db = DistMat::from_global(canonical_layout(&m, n, n), b);
        let out = mm_exec_masked::<TropicalKernel>(&m, plan, &da, &db, mask).unwrap();
        (out, m.report().critical.comm_time, m.makespan_s())
    });
    (
        out.c.to_global::<MinDist>(),
        out.ops,
        charged_collectives(&rec.snapshot()),
        comm_time,
        makespan,
    )
}

#[test]
fn overlap_is_score_identical_and_never_slower_for_every_plan() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x0E11A9);
    let n = 37;
    let a = random_dist_mat(&mut rng, n, 150);
    let b = random_dist_mat(&mut rng, n, 180);
    let mask = random_mask(&mut rng, n);

    for p in [1usize, 2, 4, 6, 8] {
        for plan in candidate_plans(p) {
            for mk in [None, Some(&mask)] {
                let (c_ser, ops_ser, coll_ser, comm_ser, mk_ser) =
                    run_plan(MachineSpec::test(p), &plan, &a, &b, mk);
                let (c_ovl, ops_ovl, coll_ovl, comm_ovl, mk_ovl) =
                    run_plan(MachineSpec::test(p).with_overlap(true), &plan, &a, &b, mk);
                assert_eq!(c_ser, c_ovl, "p={p} plan={plan:?}: scores diverged");
                assert_eq!(ops_ser, ops_ovl, "p={p} plan={plan:?}: ops diverged");
                assert_eq!(
                    coll_ser, coll_ovl,
                    "p={p} plan={plan:?}: charged collectives diverged"
                );
                // The per-rank meters are deliberately NOT compared
                // (see module doc), but sanity-check them.
                assert!(comm_ser.is_finite() && comm_ser >= 0.0);
                assert!(comm_ovl.is_finite() && comm_ovl >= 0.0);
                assert!(
                    mk_ovl <= mk_ser,
                    "p={p} plan={plan:?}: overlapped makespan {mk_ovl} > serialized {mk_ser}"
                );
            }
        }
    }
}

#[test]
fn hybrid_redistribution_preserves_results_for_every_plan() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xD15);
    let n = 29;
    let a = random_dist_mat(&mut rng, n, 120);
    let b = random_dist_mat(&mut rng, n, 140);

    for p in [2usize, 4, 6] {
        for plan in candidate_plans(p) {
            let (c_base, ops_base, coll_base, _, _) =
                run_plan(MachineSpec::test(p), &plan, &a, &b, None);
            for mode in [RedistMode::Auto, RedistMode::Bcast, RedistMode::P2p] {
                let (c, ops, coll, _, _) =
                    run_plan(MachineSpec::test(p).with_redist(mode), &plan, &a, &b, None);
                assert_eq!(c_base, c, "p={p} plan={plan:?} mode={mode:?}");
                assert_eq!(ops_base, ops, "p={p} plan={plan:?} mode={mode:?}");
                // The same entries change owner whichever collectives
                // carry them.
                assert!(coll.is_empty() == coll_base.is_empty());
            }
        }
    }
}

#[test]
fn p2p_redistribution_beats_alltoall_on_sparse_fanout() {
    // One entry moving between two ranks: a pairwise send (α + β·b)
    // must model cheaper than a full personalized all-to-all over the
    // participants (β·b + α·⌈lg p⌉ with the same volume) — the
    // sparsity-driven win the Auto mode exploits.
    let n = 32;
    let mut coo = Coo::new(n, n);
    coo.push(0, n - 1, Dist::new(3));
    let g: Csr<Dist> = coo.into_csr::<MinDist>();
    let plan = mfbc_tensor::MmPlan::OneD(mfbc_tensor::Variant1D::C);
    let p = 8;
    let (_, _, _, comm_a2a, _) = run_plan(MachineSpec::test(p), &plan, &g, &g, None);
    let (_, _, _, comm_p2p, _) = run_plan(
        MachineSpec::test(p).with_redist(RedistMode::P2p),
        &plan,
        &g,
        &g,
        None,
    );
    assert!(
        comm_p2p <= comm_a2a,
        "pairwise {comm_p2p} should not exceed all-to-all {comm_a2a} for a single moving entry"
    );
}
