//! Cost-model fidelity: the analytic predictions the autotuner ranks
//! plans with must track what the simulated machine actually charges
//! — otherwise the "automatic search" of §6.2 would pick bad
//! configurations. We require (a) per-plan agreement within a
//! constant factor, and (b) rank correlation between predicted and
//! charged orderings.

use mfbc_algebra::kernel::BellmanFordKernel;
use mfbc_algebra::{Dist, Multpath, MultpathMonoid};
use mfbc_machine::{Machine, MachineSpec};
use mfbc_sparse::{Coo, Csr};
use mfbc_tensor::autotune::{candidate_plans, stats_for};
use mfbc_tensor::costmodel::predict;
use mfbc_tensor::{canonical_layout, mm_exec, DistMat};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn workload(n: usize, nb: usize, deg: usize) -> (Csr<Multpath>, Csr<Dist>) {
    let mut rng = ChaCha8Rng::seed_from_u64(17);
    let mut f = Coo::new(nb, n);
    for s in 0..nb {
        for _ in 0..n / 8 {
            f.push(s, rng.gen_range(0..n), Multpath::new(Dist::new(2), 1.0));
        }
    }
    let mut a = Coo::new(n, n);
    for _ in 0..n * deg {
        a.push(
            rng.gen_range(0..n),
            rng.gen_range(0..n),
            Dist::new(rng.gen_range(1..30)),
        );
    }
    (
        f.into_csr::<MultpathMonoid>(),
        a.into_csr::<mfbc_algebra::monoid::MinDist>(),
    )
}

#[test]
fn predictions_track_charges_within_constant_factor() {
    let p = 16;
    let (f, a) = workload(1024, 64, 16);
    let spec = MachineSpec::gemini(p);

    let mut pairs: Vec<(f64, f64, String)> = Vec::new();
    for plan in candidate_plans(p) {
        let m = Machine::new(spec.clone());
        let df = DistMat::from_global(canonical_layout(&m, f.nrows(), f.ncols()), &f);
        let da = DistMat::from_global(canonical_layout(&m, a.nrows(), a.ncols()), &a);
        let st = stats_for::<BellmanFordKernel>(&df, &da);
        let predicted = predict(&spec, &plan, &st);
        let _ = mm_exec::<BellmanFordKernel>(&m, &plan, &df, &da).unwrap();
        let charged = m.report().critical.total_time();
        pairs.push((predicted, charged, format!("{plan:?}")));
    }

    // (a) No plan may be mispredicted by more than ~6x in either
    // direction (nnz(C)/ops estimates are uniform-model approximations
    // and this workload is skewed, so exactness is not expected).
    for (pred, charged, plan) in &pairs {
        let ratio = pred / charged;
        assert!(
            (0.15..8.0).contains(&ratio),
            "{plan}: predicted {pred:.5}s vs charged {charged:.5}s (ratio {ratio:.2})"
        );
    }

    // (b) Spearman rank correlation between predicted and charged
    // orderings must be strongly positive.
    let n = pairs.len() as f64;
    let rank = |xs: Vec<f64>| -> Vec<f64> {
        let mut idx: Vec<usize> = (0..xs.len()).collect();
        idx.sort_by(|&i, &j| xs[i].partial_cmp(&xs[j]).unwrap());
        let mut r = vec![0.0; xs.len()];
        for (pos, &i) in idx.iter().enumerate() {
            r[i] = pos as f64;
        }
        r
    };
    let rp = rank(pairs.iter().map(|t| t.0).collect());
    let rc = rank(pairs.iter().map(|t| t.1).collect());
    let d2: f64 = rp.iter().zip(&rc).map(|(a, b)| (a - b) * (a - b)).sum();
    let rho = 1.0 - 6.0 * d2 / (n * (n * n - 1.0));
    assert!(rho > 0.6, "rank correlation too weak: ρ = {rho:.3}");

    // (c) The tuner's chosen plan must land in the cheap half of the
    // actually-charged distribution.
    let best_pred = pairs
        .iter()
        .min_by(|a, b| a.0.partial_cmp(&b.0).unwrap())
        .unwrap();
    let mut charged_sorted: Vec<f64> = pairs.iter().map(|t| t.1).collect();
    charged_sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = charged_sorted[charged_sorted.len() / 2];
    assert!(
        best_pred.1 <= median,
        "tuner pick {} charged {:.5}s, above the median {:.5}s",
        best_pred.2,
        best_pred.1,
        median
    );
}
