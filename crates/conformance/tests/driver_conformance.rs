//! End-to-end differential suites: the distributed MFBC driver —
//! under autotuned, forced-fixed, and CA plan modes, across batch
//! sizes and rank counts — must reproduce the sequential Brandes
//! oracle's betweenness scores on generated Erdős–Rényi and R-MAT
//! graphs, weighted and unweighted.

use mfbc_conformance::case::DriverCase;
use mfbc_conformance::gen::P_ALL;
use mfbc_conformance::suite::run_suite_or_panic;

const SMOKE: usize = 200;

#[test]
fn driver_unweighted_vs_brandes() {
    run_suite_or_panic("driver_unweighted_vs_brandes", SMOKE, |seed| {
        DriverCase::generate(seed, &P_ALL, false)
    });
}

#[test]
fn driver_weighted_vs_brandes() {
    run_suite_or_panic("driver_weighted_vs_brandes", SMOKE, |seed| {
        DriverCase::generate(seed, &P_ALL, true)
    });
}

/// Every case re-run with a `Profiler` attached to the trace stream:
/// the betweenness scores must be bit-identical to the unobserved run
/// (`DriverCase::generate` draws the `profile` dimension for a third
/// of cases; this suite forces it on for all of them).
#[test]
fn driver_profiled_scores_are_bit_identical() {
    run_suite_or_panic("driver_profiled_scores_are_bit_identical", SMOKE, |seed| {
        DriverCase {
            profile: true,
            ..DriverCase::generate(seed, &P_ALL, seed % 2 == 0)
        }
    });
}

/// Every case run with forward-expansion output masking forced on:
/// the check re-runs each with masking off and demands bit-identical
/// betweenness scores across every sampled plan mode, rank count,
/// thread count, and batch size (`DriverCase::generate` draws the
/// `masked` dimension for half of cases; this suite, like
/// `MFBC_CONFORMANCE_FORCE_MASK`, forces it on for all of them).
#[test]
fn driver_masked_scores_are_bit_identical() {
    run_suite_or_panic("driver_masked_scores_are_bit_identical", SMOKE, |seed| {
        DriverCase {
            masked: true,
            ..DriverCase::generate(seed, &P_ALL, seed % 2 == 0)
        }
    });
}

/// Every case re-run with a `TimelineBuilder` attached to the trace
/// stream: the betweenness scores must be bit-identical to the
/// unobserved run, the replayed timeline must agree with the machine's
/// own meters, and the extracted critical path must fold bit-exactly
/// to the makespan (`DriverCase::generate` draws the `analyze`
/// dimension for a third of cases; this suite forces it on).
#[test]
fn driver_analyzed_scores_are_bit_identical() {
    run_suite_or_panic("driver_analyzed_scores_are_bit_identical", SMOKE, |seed| {
        DriverCase {
            analyze: true,
            ..DriverCase::generate(seed, &P_ALL, seed % 2 == 1)
        }
    });
}
