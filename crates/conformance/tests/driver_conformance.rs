//! End-to-end differential suites: the distributed MFBC driver —
//! under autotuned, forced-fixed, and CA plan modes, across batch
//! sizes and rank counts — must reproduce the sequential Brandes
//! oracle's betweenness scores on generated Erdős–Rényi and R-MAT
//! graphs, weighted and unweighted.

use mfbc_conformance::case::DriverCase;
use mfbc_conformance::gen::P_ALL;
use mfbc_conformance::suite::run_suite_or_panic;

const SMOKE: usize = 200;

#[test]
fn driver_unweighted_vs_brandes() {
    run_suite_or_panic("driver_unweighted_vs_brandes", SMOKE, |seed| {
        DriverCase::generate(seed, &P_ALL, false)
    });
}

#[test]
fn driver_weighted_vs_brandes() {
    run_suite_or_panic("driver_weighted_vs_brandes", SMOKE, |seed| {
        DriverCase::generate(seed, &P_ALL, true)
    });
}
