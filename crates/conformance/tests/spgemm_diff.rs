//! Differential pin: the pool-parallel `spgemm` must agree with
//! `spgemm_serial` bit-for-bit (structure, values, and op counts) —
//! on seeded random operands biased into the parallel row-chunking
//! regime, at every thread count in {1, 2, 4, 8}, and on the
//! adversarial shapes where chunked index arithmetic goes wrong
//! first: empty rows/columns, duplicate-coordinate COO ingest, fully
//! dense blocks, and 0×n / n×0 shapes.

use mfbc_algebra::kernel::{BellmanFordKernel, KernelOut, TropicalKernel};
use mfbc_algebra::monoid::MinDist;
use mfbc_algebra::{Dist, Multpath, MultpathMonoid, SpMulKernel};
use mfbc_conformance::case::CaseSpec;
use mfbc_conformance::gen;
use mfbc_conformance::rng::SplitMix64;
use mfbc_conformance::suite::run_suite_or_panic;
use mfbc_sparse::{spgemm, spgemm_serial, Coo, Csr};

/// Asserts the parallel and serial products are identical.
fn assert_par_matches_serial<K>(a: &Csr<K::Left>, b: &Csr<K::Right>) -> Result<(), String>
where
    K: SpMulKernel,
    KernelOut<K>: Clone + PartialEq + std::fmt::Debug,
{
    let serial = spgemm_serial::<K>(a, b);
    let par = spgemm::<K>(a, b);
    if let Some(diff) = serial.mat.first_difference(&par.mat) {
        return Err(format!(
            "parallel spgemm diverges from serial ({}x{} · {}x{}): {diff}",
            a.nrows(),
            a.ncols(),
            b.nrows(),
            b.ncols()
        ));
    }
    if serial.ops != par.ops {
        return Err(format!(
            "parallel ops {} != serial ops {}",
            par.ops, serial.ops
        ));
    }
    Ok(())
}

/// Thread counts every differential case is exercised at: the serial
/// degenerate pool, the smallest real pool, and two oversubscribed
/// sizes (the container may have fewer cores; determinism must hold
/// regardless).
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// A seeded case pitting `spgemm` against `spgemm_serial` on tropical
/// operands whose row counts are biased above the parallel-path
/// threshold (the serial fallback below it is also exercised), run
/// under a pool of `threads` workers.
#[derive(Clone, Debug)]
struct DiffCase {
    // Read only through the derived Debug impl, which is what puts the
    // seed into the shrunk-case printout.
    #[allow(dead_code)]
    seed: u64,
    threads: usize,
    m: usize,
    k: usize,
    n: usize,
    a: Vec<(usize, usize, u64)>,
    b: Vec<(usize, usize, u64)>,
}

impl DiffCase {
    fn generate(seed: u64) -> DiffCase {
        let mut rng = SplitMix64::new(seed);
        let threads = THREAD_COUNTS[rng.below(THREAD_COUNTS.len())];
        // Mostly ≥ 32 rows (the pool row-chunking regime, including
        // ragged final chunks at 33, 47, …), sometimes small.
        let m = if rng.chance(3, 4) {
            rng.range(32, 70)
        } else {
            rng.range(1, 8)
        };
        let k = rng.range(1, 40);
        let n = rng.range(1, 40);
        let dense = rng.chance(1, 8);
        let nnz_a = if dense { m * k } else { rng.below(3 * (m + k)) };
        let nnz_b = if dense { k * n } else { rng.below(3 * (k + n)) };
        let a = gen::coords(&mut rng, m, k, nnz_a)
            .into_iter()
            .map(|(i, j)| (i, j, rng.next_u64() % 30))
            .collect();
        let b = gen::coords(&mut rng, k, n, nnz_b)
            .into_iter()
            .map(|(i, j)| (i, j, rng.next_u64() % 30))
            .collect();
        DiffCase {
            seed,
            threads,
            m,
            k,
            n,
            a,
            b,
        }
    }

    fn csr(dim: (usize, usize), entries: &[(usize, usize, u64)]) -> Csr<Dist> {
        let mut coo = Coo::new(dim.0, dim.1);
        for &(i, j, w) in entries {
            coo.push(i, j, Dist::new(w));
        }
        coo.into_csr::<MinDist>()
    }
}

impl CaseSpec for DiffCase {
    fn check(&self) -> Result<(), String> {
        let a = Self::csr((self.m, self.k), &self.a);
        let b = Self::csr((self.k, self.n), &self.b);
        mfbc_parallel::with_threads(self.threads, || {
            assert_par_matches_serial::<TropicalKernel>(&a, &b)
        })
    }

    fn size(&self) -> usize {
        self.a.len() + self.b.len() + self.m + self.k + self.n + self.threads
    }

    fn shrink_candidates(&self) -> Vec<DiffCase> {
        let mut out = Vec::new();
        // Fewer threads first: a failure that survives at 2 workers is
        // easier to debug than the same failure at 8.
        for &t in THREAD_COUNTS.iter().filter(|&&t| t < self.threads) {
            let mut c = self.clone();
            c.threads = t;
            out.push(c);
        }
        for (field, len) in [(0, self.a.len()), (1, self.b.len())] {
            if len > 1 {
                for half in 0..2 {
                    let mut c = self.clone();
                    let src = if field == 0 { &self.a } else { &self.b };
                    let kept: Vec<_> = src
                        .iter()
                        .enumerate()
                        .filter(|&(i, _)| (i < len / 2) == (half == 0))
                        .map(|(_, &e)| e)
                        .collect();
                    if field == 0 {
                        c.a = kept;
                    } else {
                        c.b = kept;
                    }
                    out.push(c);
                }
            }
        }
        if self.m > 1 {
            let m = self.m / 2;
            let mut c = self.clone();
            c.m = m;
            c.a.retain(|&(i, _, _)| i < m);
            out.push(c);
        }
        if self.k > 1 {
            let k = self.k / 2;
            let mut c = self.clone();
            c.k = k;
            c.a.retain(|&(_, j, _)| j < k);
            c.b.retain(|&(i, _, _)| i < k);
            out.push(c);
        }
        if self.n > 1 {
            let n = self.n / 2;
            let mut c = self.clone();
            c.n = n;
            c.b.retain(|&(_, j, _)| j < n);
            out.push(c);
        }
        out
    }
}

#[test]
fn spgemm_parallel_vs_serial_seeded() {
    run_suite_or_panic("spgemm_parallel_vs_serial_seeded", 300, DiffCase::generate);
}

/// Runs `f` once under each pool size in [`THREAD_COUNTS`].
fn for_each_thread_count(f: impl Fn()) {
    for &t in &THREAD_COUNTS {
        mfbc_parallel::with_threads(t, &f);
    }
}

#[test]
fn spgemm_bit_identical_across_thread_counts() {
    // The same product computed under every pool size must agree with
    // the 1-thread result bit-for-bit: entries, structure, AND op
    // counts. This is the cross-thread determinism pin, independent of
    // the serial reference implementation.
    for seed in [1u64, 0xC0FFEE, 0x5EED] {
        let case = DiffCase::generate(seed);
        let a = DiffCase::csr((case.m, case.k), &case.a);
        let b = DiffCase::csr((case.k, case.n), &case.b);
        let reference = mfbc_parallel::with_threads(1, || spgemm::<TropicalKernel>(&a, &b));
        for &t in &THREAD_COUNTS[1..] {
            let out = mfbc_parallel::with_threads(t, || spgemm::<TropicalKernel>(&a, &b));
            assert_eq!(
                reference.mat.first_difference(&out.mat),
                None,
                "seed {seed:#x}: {t}-thread product diverges from 1-thread"
            );
            assert_eq!(
                reference.ops, out.ops,
                "seed {seed:#x}: {t}-thread op count diverges from 1-thread"
            );
        }
    }
}

#[test]
fn zero_by_n_and_n_by_zero_shapes() {
    // Degenerate shapes: every combination of a zero dimension.
    for (m, k, n) in [(0, 5, 4), (5, 0, 4), (5, 4, 0), (0, 0, 0), (40, 0, 40)] {
        let a = Csr::<Dist>::zero(m, k);
        let b = Csr::<Dist>::zero(k, n);
        assert_par_matches_serial::<TropicalKernel>(&a, &b).unwrap();
        let out = spgemm::<TropicalKernel>(&a, &b);
        assert_eq!((out.mat.nrows(), out.mat.ncols()), (m, n));
        assert_eq!(out.mat.nnz(), 0);
        assert_eq!(out.ops, 0);
        out.mat.validate().unwrap();
    }
}

#[test]
fn empty_rows_and_columns() {
    // 40 rows (parallel path), but all entries confined to one row of
    // A and one column of B: 39 empty rows and chunks with no work.
    let mut ca = Coo::new(40, 40);
    for j in 0..40 {
        ca.push(17, j, Dist::new(j as u64));
    }
    let mut cb = Coo::new(40, 40);
    for i in 0..40 {
        cb.push(i, 23, Dist::new(i as u64));
    }
    let a = ca.into_csr::<MinDist>();
    let b = cb.into_csr::<MinDist>();
    for_each_thread_count(|| {
        assert_par_matches_serial::<TropicalKernel>(&a, &b).unwrap();
        let out = spgemm::<TropicalKernel>(&a, &b);
        // Exactly one output entry: (17, 23) = min_j (j + j).
        assert_eq!(out.mat.nnz(), 1);
        assert_eq!(out.mat.get(17, 23), Some(&Dist::new(0)));
    });
}

#[test]
fn duplicate_coordinate_coo_ingest() {
    // The same coordinate pushed repeatedly must merge through the
    // monoid before multiplication, identically for both paths.
    let mut ca = Coo::new(33, 3);
    for rep in 0..7u64 {
        for i in 0..33 {
            ca.push(i, i % 3, Dist::new(10 + rep));
        }
    }
    let mut cb = Coo::new(3, 5);
    for rep in 0..5u64 {
        cb.push(0, 0, Dist::new(rep + 1));
        cb.push(2, 4, Dist::new(9 - rep));
    }
    let a = ca.into_csr::<MinDist>();
    let b = cb.into_csr::<MinDist>();
    // Merging kept the minimum per coordinate.
    assert_eq!(a.nnz(), 33);
    assert_eq!(a.get(0, 0), Some(&Dist::new(10)));
    assert_eq!(b.get(2, 4), Some(&Dist::new(5)));
    for_each_thread_count(|| assert_par_matches_serial::<TropicalKernel>(&a, &b).unwrap());
}

#[test]
fn fully_dense_blocks() {
    // 40×40 dense times 40×40 dense: every chunk saturated, maximal
    // accumulator reuse, 64 000 elementary products.
    let mut rng = SplitMix64::new(0xD05E);
    let mut ca = Coo::new(40, 40);
    let mut cb = Coo::new(40, 40);
    for i in 0..40 {
        for j in 0..40 {
            ca.push(i, j, Dist::new(rng.next_u64() % 100));
            cb.push(i, j, Dist::new(rng.next_u64() % 100));
        }
    }
    let a = ca.into_csr::<MinDist>();
    let b = cb.into_csr::<MinDist>();
    for_each_thread_count(|| {
        assert_par_matches_serial::<TropicalKernel>(&a, &b).unwrap();
        let out = spgemm::<TropicalKernel>(&a, &b);
        assert_eq!(out.mat.nnz(), 1600);
        assert_eq!(out.ops, 40 * 40 * 40);
    });
}

#[test]
fn multpath_kernel_parallel_vs_serial() {
    // The f64-multiplicity kernel through the parallel path: exact
    // agreement requires the chunked accumulation to visit entries in
    // the serial order within each row.
    let mut rng = SplitMix64::new(0xBF01);
    let mut cf = Coo::new(36, 30);
    for _ in 0..150 {
        cf.push(
            rng.below(36),
            rng.below(30),
            Multpath::new(Dist::new(rng.next_u64() % 20), 1.0 + rng.below(3) as f64),
        );
    }
    let mut ca = Coo::new(30, 28);
    for _ in 0..160 {
        ca.push(rng.below(30), rng.below(28), Dist::new(rng.next_u64() % 15));
    }
    let f = cf.into_csr::<MultpathMonoid>();
    let a = ca.into_csr::<MinDist>();
    for_each_thread_count(|| assert_par_matches_serial::<BellmanFordKernel>(&f, &a).unwrap());
}
