//! Serving-engine differential suites: seeded schedules of
//! interleaved top-k / per-vertex / full-score queries, flush
//! boundaries, and fault injections driven through a live
//! [`mfbc_serve::Engine`]. Every admitted request must be answered
//! exactly once, every `Exact` response must be bit-identical to a
//! one-shot `mfbc_dist` run under the same machine and fault
//! schedule, degraded responses must carry coherent tags, and the
//! store must converge to exact in a bounded number of unbounded
//! rounds. Failures shrink toward a fault-free single-request case
//! first and replay via `MFBC_CONFORMANCE_SEED` like every other
//! suite.

use mfbc_conformance::gen::P_ALL;
use mfbc_conformance::suite::run_suite_or_panic;
use mfbc_conformance::ServeCase;

/// Each check runs a one-shot oracle plus a full serving session, so
/// the budget sits below the single-computation suites.
const SMOKE: usize = 60;

#[test]
fn serve_schedules_fault_free() {
    run_suite_or_panic("serve_schedules_fault_free", SMOKE, |seed| {
        ServeCase::generate(seed, &P_ALL)
    });
}

#[test]
fn serve_schedules_faulted() {
    run_suite_or_panic("serve_schedules_faulted", SMOKE, |seed| {
        ServeCase::generate_faulted(seed, &P_ALL)
    });
}
