//! The tentpole suites: every enumerable multiplication plan (1D A/B/C,
//! 2D AB/AC/BC over all grid factorizations, all nine 3D nestings,
//! Cannon where p is square) plus the autotuned plan, cross-checked
//! against `spgemm_serial` on seeded random operands — per kernel, and
//! additionally on degenerate rank counts.
//!
//! Each case runs the *entire* plan space for its rank count, so a
//! 200-case suite exercises every plan family hundreds of times. Set
//! `MFBC_CONFORMANCE_CASES` to scale the budget (the nightly CI job
//! uses 10×), `MFBC_CONFORMANCE_SEED` to replay one printed case.

use mfbc_conformance::case::{MmCase, MmKernelKind};
use mfbc_conformance::gen::{P_ALL, P_DEGENERATE};
use mfbc_conformance::suite::run_suite_or_panic;

/// Smoke budget per suite (ISSUE: ~200 cases/variant, < 60 s).
const SMOKE: usize = 200;

#[test]
fn mm_tropical() {
    run_suite_or_panic("mm_tropical", SMOKE, |seed| {
        MmCase::generate(seed, &[MmKernelKind::Tropical], &P_ALL)
    });
}

#[test]
fn mm_bellman_ford() {
    run_suite_or_panic("mm_bellman_ford", SMOKE, |seed| {
        MmCase::generate(seed, &[MmKernelKind::BellmanFord], &P_ALL)
    });
}

#[test]
fn mm_brandes() {
    run_suite_or_panic("mm_brandes", SMOKE, |seed| {
        MmCase::generate(seed, &[MmKernelKind::Brandes], &P_ALL)
    });
}

/// Every case with the output-mask dimension forced on, all kernels
/// mixed: the masked product under every plan must match both the
/// masked serial oracle and unmasked-multiply-then-filter bit for bit,
/// op count included (`MmCase::generate` draws the mask for two thirds
/// of cases; this suite, like `MFBC_CONFORMANCE_FORCE_MASK`, forces
/// it for all of them).
#[test]
fn mm_masked() {
    run_suite_or_panic("mm_masked", SMOKE, |seed| {
        MmCase::generate_masked(
            seed,
            &[
                MmKernelKind::Tropical,
                MmKernelKind::BellmanFord,
                MmKernelKind::Brandes,
            ],
            &P_ALL,
        )
    });
}

#[test]
fn mm_degenerate_ranks() {
    // p ∈ {1, 2, 3, 7}: single-rank schedules, grids that cannot be
    // squared, and prime counts whose only 2D factorizations are
    // 1×p / p×1 — the corners where schedule index arithmetic breaks
    // first. All kernels mixed.
    run_suite_or_panic("mm_degenerate_ranks", SMOKE, |seed| {
        MmCase::generate(
            seed,
            &[
                MmKernelKind::Tropical,
                MmKernelKind::BellmanFord,
                MmKernelKind::Brandes,
            ],
            &P_DEGENERATE,
        )
    });
}
