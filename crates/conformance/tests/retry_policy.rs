//! Property suite for [`mfbc_fault::RetryPolicy::backoff_for`]: over
//! seeded random policies, attempts, and seeds, the backoff schedule
//! must be deterministic, capped, strictly positive, downward-only
//! relative to the unjittered wait, and monotone (up to the cap) in
//! the attempt number when jitter is off.

use mfbc_conformance::SplitMix64;
use mfbc_fault::RetryPolicy;

/// Draws a policy with backoff in (0, 10ms], multiplier in [1, 4),
/// cap in (0, 1s], and jitter in [0, 1).
fn policy(rng: &mut SplitMix64) -> RetryPolicy {
    RetryPolicy {
        max_attempts: 1 + rng.below(5) as u32,
        backoff_s: 1e-5 * (1 + rng.below(1000)) as f64,
        multiplier: 1.0 + rng.below(3000) as f64 / 1000.0,
        cap_s: 1e-3 * (1 + rng.below(1000)) as f64,
        jitter: rng.below(1000) as f64 / 1000.0,
    }
}

#[test]
fn backoff_is_deterministic_positive_and_capped() {
    let mut rng = SplitMix64::new(0x5e7_2e7_124);
    for _ in 0..500 {
        let p = policy(&mut rng);
        let attempt = rng.below(12) as u32;
        let seed = rng.next_u64();
        let wait = p.backoff_for(attempt, seed);
        assert_eq!(
            wait.to_bits(),
            p.backoff_for(attempt, seed).to_bits(),
            "same (attempt, seed) must replay the same wait: {p:?}"
        );
        assert!(
            wait > 0.0 && wait.is_finite(),
            "wait {wait} not strictly positive/finite for {p:?} attempt {attempt}"
        );
        assert!(
            wait <= p.cap_s,
            "wait {wait} exceeds cap {} for {p:?} attempt {attempt}",
            p.cap_s
        );
    }
}

#[test]
fn jitter_only_moves_the_wait_down_and_stays_in_band() {
    let mut rng = SplitMix64::new(0xba5e_0ff5);
    for _ in 0..500 {
        let p = policy(&mut rng);
        let bare = RetryPolicy { jitter: 0.0, ..p };
        let attempt = rng.below(12) as u32;
        let seed = rng.next_u64();
        let wait = p.backoff_for(attempt, seed);
        let ceiling = bare.backoff_for(attempt, seed);
        assert!(
            wait <= ceiling,
            "jittered wait {wait} above unjittered {ceiling} for {p:?}"
        );
        // Downward-only band: strictly above wait·(1 − jitter).
        assert!(
            wait > ceiling * (1.0 - p.jitter) - f64::EPSILON * ceiling,
            "wait {wait} fell out of the ({}, {ceiling}] band for {p:?}",
            ceiling * (1.0 - p.jitter)
        );
    }
}

#[test]
fn unjittered_schedule_is_monotone_up_to_the_cap() {
    let mut rng = SplitMix64::new(0x9e37_79b9);
    for _ in 0..200 {
        let p = RetryPolicy {
            jitter: 0.0,
            ..policy(&mut rng)
        };
        let mut prev = 0.0;
        for attempt in 0..16 {
            let wait = p.backoff_for(attempt, 7);
            assert!(
                wait >= prev,
                "unjittered schedule decreased at attempt {attempt} for {p:?}"
            );
            assert!(wait <= p.cap_s);
            prev = wait;
        }
        // Once at the cap, it stays there.
        if prev >= p.cap_s {
            assert_eq!(p.backoff_for(32, 7).to_bits(), p.cap_s.to_bits());
        }
    }
}

#[test]
fn different_seeds_decorrelate_jittered_waits() {
    let p = RetryPolicy::default();
    let mut distinct = std::collections::BTreeSet::new();
    for seed in 0..32u64 {
        distinct.insert(p.backoff_for(2, seed).to_bits());
    }
    assert!(
        distinct.len() > 16,
        "32 seeds produced only {} distinct waits",
        distinct.len()
    );
}
