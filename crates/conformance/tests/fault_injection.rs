//! Meta-test of the acceptance criterion: deliberately breaking one
//! 3D multiplication variant must make the harness (a) catch it,
//! (b) shrink the failing case, and (c) print a one-line replayable
//! repro — and disarming the fault must restore a green suite,
//! proving the failure was the injected one.

use mfbc_conformance::case::{CaseSpec, MmCase, MmKernelKind};
use mfbc_conformance::suite::run_suite;
use mfbc_fault::sabotage as fault;

const KERNELS: [MmKernelKind; 3] = [
    MmKernelKind::Tropical,
    MmKernelKind::BellmanFord,
    MmKernelKind::Brandes,
];

/// Cases pinned to p = 8 so the plan space always contains the
/// sabotaged 3D family.
fn gen(seed: u64) -> MmCase {
    MmCase::generate(seed, &KERNELS, &[8])
}

#[test]
fn injected_3d_fault_yields_shrunk_replayable_repro() {
    // Sanity: the suite is green before arming the fault.
    run_suite("fault_baseline", 10, gen).unwrap_or_else(|f| panic!("{f}"));

    // Arm: corrupt the output of every C-split/AB-inner 3D plan.
    let guard = fault::arm("3d(C/AB");
    let failure =
        run_suite("fault_injected", 10, gen).expect_err("sabotaged variant must be caught");
    drop(guard);

    // The very first case exercises the broken family (every case
    // sweeps the whole plan space).
    assert_eq!(failure.index, 0, "fault must surface on the first case");
    assert!(
        failure.original_error.contains("3d(C/AB"),
        "failure must implicate the sabotaged family: {}",
        failure.original_error
    );
    assert!(
        failure.shrunk_error.contains("3d(C/AB"),
        "shrinking must preserve the failing family: {}",
        failure.shrunk_error
    );
    // Shrinking must have made real progress: p = 8 can drop to 4
    // (the smallest rank count with 3D plans), so strictly smaller.
    assert!(
        failure.shrunk_size < failure.original_size,
        "shrunk {} !< original {}",
        failure.shrunk_size,
        failure.original_size
    );
    assert!(
        failure.shrunk_case.contains("p: 4"),
        "minimal 3D repro should sit at p = 4: {}",
        failure.shrunk_case
    );

    // The one-line repro: the exact env-var + cargo invocation.
    assert_eq!(
        failure.repro,
        format!(
            "MFBC_CONFORMANCE_SEED={:#x} cargo test -p mfbc-conformance fault_injected",
            failure.seed
        )
    );

    // Replayability, part 1: the printed seed regenerates a case that
    // still fails while the fault is armed...
    let replayed = gen(failure.seed);
    let guard = fault::arm("3d(C/AB");
    assert!(replayed.check().is_err(), "replayed case must still fail");
    drop(guard);

    // ...and part 2: with the fault disarmed the same case passes, so
    // the harness blamed the injected bug and nothing else.
    replayed
        .check()
        .unwrap_or_else(|e| panic!("case must pass once the fault is disarmed: {e}"));
    run_suite("fault_injected", 10, gen).unwrap_or_else(|f| panic!("{f}"));
}

#[test]
fn fault_guard_is_scoped_to_its_thread() {
    // Arming on another thread must not perturb checks on this one —
    // the property that lets the faulted test above coexist with the
    // rest of the suite in one test binary.
    let case = gen(1);
    case.check().unwrap();
    std::thread::spawn(|| {
        let _guard = fault::arm("3d(C/AB");
        std::thread::sleep(std::time::Duration::from_millis(30));
    });
    case.check().unwrap();
}
