//! Fault-recovery differential suites: the distributed MFBC driver,
//! run under seeded fault schedules (rank crashes, transient
//! collective failures, forced OOM), must terminate successfully and
//! produce betweenness scores **bit-identical** to the fault-free run
//! of the same case — across rank counts, plan modes, batch sizes and
//! thread counts. Failures shrink toward the fault-free case first,
//! then along the usual graph/rank dimensions, and replay via
//! `MFBC_CONFORMANCE_SEED` like every other suite.

use mfbc_conformance::case::DriverCase;
use mfbc_conformance::gen::P_ALL;
use mfbc_conformance::suite::run_suite_or_panic;
use mfbc_core::{mfbc_dist, MfbcConfig};
use mfbc_fault::{FaultKind, FaultPlan, RetryPolicy};
use mfbc_graph::Graph;
use mfbc_machine::{Machine, MachineSpec};
use mfbc_trace::{recovery_summary, MemoryRecorder, TraceEvent};
use std::sync::Arc;

const SMOKE: usize = 120;

#[test]
fn driver_fault_recovery_unweighted() {
    run_suite_or_panic("driver_fault_recovery_unweighted", SMOKE, |seed| {
        DriverCase::generate_faulted(seed, &P_ALL, false)
    });
}

#[test]
fn driver_fault_recovery_weighted() {
    run_suite_or_panic("driver_fault_recovery_weighted", SMOKE, |seed| {
        DriverCase::generate_faulted(seed, &P_ALL, true)
    });
}

/// Directed scenario from the issue: a crash at p = 8 must shrink the
/// run onto the 7 survivors, replan, and still reproduce the
/// fault-free scores bit for bit — with the fault and the recovery
/// visible in the trace summary.
#[test]
fn crash_at_p8_replans_onto_7_survivors() {
    let n = 24;
    let g = Graph::new(
        n,
        false,
        (0..n).flat_map(|v| {
            [(v, (v + 1) % n, 1), (v, (v + 5) % n, 2)]
                .into_iter()
                .map(|(u, w, d)| (u, w, mfbc_algebra::Dist::new(d)))
        }),
    );
    let cfg = MfbcConfig::default().with_batch_size(4);

    let clean = mfbc_dist(&Machine::new(MachineSpec::test(8)), &g, &cfg).unwrap();

    let plan = FaultPlan::single(6, FaultKind::Crash { rank: 3 });
    let machine = Machine::with_faults(MachineSpec::test(8), plan, RetryPolicy::default());
    let rec = Arc::new(MemoryRecorder::new());
    let faulted = {
        let rec = Arc::clone(&rec);
        mfbc_trace::scoped(rec, || mfbc_dist(&machine, &g, &cfg)).unwrap()
    };

    assert_eq!(faulted.recovery.replans, 1, "{:?}", faulted.recovery);
    assert_eq!(faulted.recovery.final_p, 7);
    assert!(faulted.recovery.faults_injected >= 1);
    assert!(faulted.recovery.checkpoints_restored >= 1);
    assert!(faulted.recovery.wasted_modeled_s > 0.0);
    for (a, b) in clean.scores.lambda.iter().zip(&faulted.scores.lambda) {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "recovered scores not bit-identical"
        );
    }

    // The fault and the replan must both be visible in the trace.
    let records = rec.snapshot();
    assert!(records.iter().any(|r| matches!(
        &r.event,
        TraceEvent::Fault {
            kind: "crash",
            rank: Some(3),
            ..
        }
    )));
    assert!(records.iter().any(|r| matches!(
        &r.event,
        TraceEvent::Recovery {
            action: "replan",
            ..
        }
    )));
    let totals = recovery_summary(&records);
    assert!(totals.faults_injected() >= 1, "{totals:?}");
    assert!(
        totals
            .actions
            .iter()
            .any(|(a, c, _, _)| a == "replan" && *c == 1),
        "{totals:?}"
    );
    assert!(!mfbc_trace::render_recovery_summary(&totals).is_empty());
}
