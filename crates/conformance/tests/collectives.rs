//! Machine-layer conformance: the α–β closed forms of §7.4 and the
//! data-movement semantics of the scatter/gather/sparse-reduce
//! collectives, at p = 1, non-power-of-two p, and zero-byte payloads —
//! plus monotonicity of the modeled msgs/bytes/time in p, the property
//! the cost-model comparisons in the autotuner lean on.

use mfbc_conformance::gen::{ALPHAS, BETAS};
use mfbc_conformance::rng::SplitMix64;
use mfbc_machine::collectives::{gather, scatter, sparse_reduce};
use mfbc_machine::cost::log2_ceil;
use mfbc_machine::{CollectiveKind, Machine, MachineSpec};

const ALL_KINDS: [CollectiveKind; 9] = [
    CollectiveKind::Broadcast,
    CollectiveKind::Reduce,
    CollectiveKind::Allreduce,
    CollectiveKind::Scatter,
    CollectiveKind::Gather,
    CollectiveKind::Allgather,
    CollectiveKind::SparseReduce,
    CollectiveKind::PointToPoint,
    CollectiveKind::AllToAll,
];

fn spec(p: usize, alpha: f64, beta: f64) -> MachineSpec {
    MachineSpec {
        p,
        alpha,
        beta,
        gamma: 1.0,
        mem_bytes: None,
        overlap: false,
        redist: mfbc_machine::RedistMode::Alltoall,
    }
}

#[test]
fn closed_forms_match_paper_for_all_kinds() {
    // Seeded sweep over p (including 1 and non-powers-of-two), α–β
    // menus, and byte counts: each kind's time must equal its §7.4 /
    // §5.1 closed form exactly (the menu values are exact binary
    // fractions, so no tolerance is needed).
    let mut rng = SplitMix64::new(0xC0_11EC);
    for _ in 0..500 {
        let p = 1 + rng.below(33);
        let alpha = *rng.pick(&ALPHAS);
        let beta = *rng.pick(&BETAS);
        let x = rng.next_u64() % 10_000;
        let s = spec(p, alpha, beta);
        let (xf, lg) = (x as f64, log2_ceil(p) as f64);
        for kind in ALL_KINDS {
            let expected = match kind {
                CollectiveKind::Broadcast | CollectiveKind::Reduce => {
                    2.0 * xf * beta + 2.0 * lg * alpha
                }
                CollectiveKind::Allreduce => 4.0 * xf * beta + 4.0 * lg * alpha,
                CollectiveKind::PointToPoint => xf * beta + alpha,
                _ => xf * beta + lg * alpha,
            };
            assert_eq!(
                kind.time(&s, p, x),
                expected,
                "{} closed form at p={p}, α={alpha}, β={beta}, x={x}",
                kind.name()
            );
        }
    }
}

#[test]
fn msgs_bytes_and_time_are_monotone_in_p() {
    // More ranks can never make a collective cheaper: msgs(p) and
    // time(p) must be nondecreasing for every kind (bytes_charged is
    // p-independent by construction, asserted on the side).
    let s64 = |p| spec(p, 1.0, 1.0);
    for kind in ALL_KINDS {
        let x = 321;
        for p in 1..64usize {
            assert!(
                kind.msgs(p + 1) >= kind.msgs(p),
                "{} msgs not monotone at p={p}",
                kind.name()
            );
            assert!(
                kind.time(&s64(p + 1), p + 1, x) >= kind.time(&s64(p), p, x),
                "{} time not monotone at p={p}",
                kind.name()
            );
            assert_eq!(kind.bytes_charged(x), kind.bytes_charged(x));
        }
    }
}

#[test]
fn scatter_and_gather_preserve_pieces_and_charge_closed_form() {
    // Non-power-of-two p = 6 with distinct α and β: data must arrive
    // intact and the meters must read exactly xβ + ⌈log₂ 6⌉α.
    let m = Machine::new(spec(6, 4.0, 0.25));
    let g = m.world();
    let parts: Vec<u64> = (0..6).map(|i| 100 + i as u64).collect();
    let scattered = scatter(&m, &g, parts.clone()).unwrap();
    assert_eq!(scattered, parts, "scatter must deliver piece i to rank i");
    let gathered = gather(&m, &g, scattered).unwrap();
    assert_eq!(gathered, parts, "gather must return pieces in group order");
    let r = m.report();
    // Each payload set is 6 u64 = 48 bytes; two collectives.
    let per = 48.0 * 0.25 + 3.0 * 4.0;
    assert_eq!(r.critical.comm_time, 2.0 * per);
    assert_eq!(r.critical.bytes, 2 * 48);
    assert_eq!(r.critical.msgs, 2 * 3);
}

#[test]
fn sparse_reduce_combines_and_charges_result_bytes() {
    // p = 7: result is the monoid fold of all contributions; charged
    // bytes follow the *result* size (§5.1), not the input sizes.
    let m = Machine::new(spec(7, 1.0, 1.0));
    let g = m.world();
    let contribs: Vec<Vec<u64>> = (0..7).map(|i| vec![i as u64]).collect();
    let folded = sparse_reduce(&m, &g, contribs, |mut a, b| {
        a.extend(b);
        a
    })
    .unwrap();
    assert_eq!(folded, vec![0, 1, 2, 3, 4, 5, 6]);
    let r = m.report();
    // Result: 7 u64 = 56 bytes; ⌈log₂ 7⌉ = 3.
    assert_eq!(r.critical.bytes, 56);
    assert_eq!(r.critical.comm_time, 56.0 + 3.0);
    assert_eq!(r.critical.msgs, 3);
}

#[test]
fn single_rank_collectives_move_nothing_and_cost_nothing() {
    let m = Machine::new(spec(1, 4.0, 2.0));
    let g = m.world();
    assert_eq!(scatter(&m, &g, vec![9u64]).unwrap(), vec![9]);
    assert_eq!(gather(&m, &g, vec![9u64]).unwrap(), vec![9]);
    assert_eq!(sparse_reduce(&m, &g, vec![9u64], |a, b| a + b).unwrap(), 9);
    let r = m.report();
    assert_eq!(r.critical.msgs, 0, "p = 1 collectives must be free");
    assert_eq!(r.critical.bytes, 0);
    assert_eq!(r.critical.comm_time, 0.0);
}

#[test]
fn zero_byte_payloads_still_pay_latency() {
    // Empty pieces: β term vanishes but the α (latency) term and the
    // message count must survive — the cost model's α-dominated regime.
    let m = Machine::new(spec(8, 4.0, 2.0));
    let g = m.world();
    let empties: Vec<Vec<u64>> = (0..8).map(|_| Vec::new()).collect();
    let out = scatter(&m, &g, empties).unwrap();
    assert!(out.iter().all(Vec::is_empty));
    let r = m.report();
    assert_eq!(r.critical.bytes, 0);
    assert_eq!(
        r.critical.msgs, 3,
        "⌈log₂ 8⌉ messages despite empty payload"
    );
    assert_eq!(r.critical.comm_time, 3.0 * 4.0);

    let folded = sparse_reduce(
        &m,
        &g,
        (0..8).map(|_| Vec::<u64>::new()).collect(),
        |a, _| a,
    )
    .unwrap();
    assert!(folded.is_empty());
    assert_eq!(m.report().critical.msgs, 6);
}

#[test]
fn gather_scatter_roundtrip_at_many_rank_counts() {
    // Structure holds across degenerate, prime, and composite p.
    for p in [1usize, 2, 3, 5, 6, 7, 12, 16] {
        let m = Machine::new(MachineSpec::test(p));
        let g = m.world();
        let parts: Vec<u64> = (0..p as u64).collect();
        let rt = gather(&m, &g, scatter(&m, &g, parts.clone()).unwrap()).unwrap();
        assert_eq!(rt, parts, "roundtrip at p={p}");
    }
}
