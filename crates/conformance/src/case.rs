//! Self-contained test cases and their differential checks.
//!
//! A case owns *all* the data needed to run its check — explicit entry
//! lists, dimensions, rank count, α–β — so the shrinker can produce
//! smaller variants by deleting parts of it. Generation from a seed
//! and checking are separate steps: replaying a seed regenerates the
//! identical case, and a shrunk case remains checkable on its own.

use crate::gen;
use crate::rng::SplitMix64;
use mfbc_algebra::kernel::{BellmanFordKernel, BrandesKernel, KernelOut, TropicalKernel};
use mfbc_algebra::{Centpath, Dist, Multpath, SpMulKernel};
use mfbc_core::oracle::{brandes_unweighted, brandes_weighted};
use mfbc_core::{mfbc_dist, MfbcConfig, PlanMode};
use mfbc_fault::{FaultKind, FaultPlan, RetryPolicy, ScheduledFault};
use mfbc_graph::Graph;
use mfbc_machine::{Machine, MachineSpec, RedistMode};
use mfbc_sparse::{spgemm_masked_serial, spgemm_serial, Coo, Csr, Mask, MaskKind};
use mfbc_tensor::{
    canonical_layout, enumerate_plans, mm_auto, mm_auto_masked, mm_exec, mm_exec_masked, DistMat,
};

/// Whether `MFBC_CONFORMANCE_FORCE_MASK` is set: the nightly CI job
/// uses it to force the output-mask dimension on in every generated
/// case (the smoke default draws it for two thirds of them).
pub fn env_force_mask() -> bool {
    std::env::var_os("MFBC_CONFORMANCE_FORCE_MASK").is_some()
}

/// Whether `MFBC_CONFORMANCE_FORCE_OVERLAP` is set: the CI matrix uses
/// it to force the overlapped-accounting dimension on in every
/// generated case (the smoke default draws it for a third of them).
pub fn env_force_overlap() -> bool {
    std::env::var_os("MFBC_CONFORMANCE_FORCE_OVERLAP").is_some()
}

/// Whether `MFBC_CONFORMANCE_FORCE_SERVE_TRACE` is set: the CI matrix
/// uses it to force the observability dimension on in every generated
/// serve case — the schedule is re-driven under an installed trace
/// recorder and an enabled flight recorder, and the response stream
/// must stay bit-identical (the smoke default draws it for a third of
/// cases).
pub fn env_force_serve_trace() -> bool {
    std::env::var_os("MFBC_CONFORMANCE_FORCE_SERVE_TRACE").is_some()
}

/// A case the suite runner can check and the shrinker can minimize.
pub trait CaseSpec: Clone + std::fmt::Debug {
    /// Runs the differential check; `Err` describes the divergence.
    fn check(&self) -> Result<(), String>;
    /// A size measure the shrinker must strictly decrease.
    fn size(&self) -> usize;
    /// Strictly-smaller candidate reductions, in preference order.
    fn shrink_candidates(&self) -> Vec<Self>;
}

/// Which generalized-multiplication kernel an [`MmCase`] exercises.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MmKernelKind {
    /// Min-plus over plain distances (both operands `Dist`).
    Tropical,
    /// Multpath frontier × adjacency (the MFBF product).
    BellmanFord,
    /// Centpath frontier × adjacency (the MFBr product).
    Brandes,
}

/// A kernel-agnostic left-operand payload; each kernel interprets the
/// fields it needs (`w` weight, `x` multiplicity/factor, `c` counter).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Payload {
    /// Finite weight.
    pub w: u64,
    /// Integral f64 payload (multiplicity or centrality factor).
    pub x: f64,
    /// Child counter (Brandes only).
    pub c: i64,
}

/// One cross-plan multiplication case: `C = A • B` computed under
/// every enumerable plan for `p` ranks plus the autotuned plan, each
/// compared entry-for-entry (and op-for-op) against `spgemm_serial`.
#[derive(Clone, Debug)]
pub struct MmCase {
    /// The seed this case was generated from (0 for hand-built cases).
    pub seed: u64,
    /// Kernel under test.
    pub kernel: MmKernelKind,
    /// Left operand rows.
    pub m: usize,
    /// Inner dimension.
    pub k: usize,
    /// Right operand columns.
    pub n: usize,
    /// Rank count.
    pub p: usize,
    /// Machine latency constant.
    pub alpha: f64,
    /// Machine inverse-bandwidth constant.
    pub beta: f64,
    /// Left operand triples (duplicates allowed; merged by the
    /// kernel's monoid on ingest, as production inputs are).
    pub a: Vec<(usize, usize, Payload)>,
    /// Right operand triples (weight entries).
    pub b: Vec<(usize, usize, u64)>,
    /// Optional output mask over the `m × n` result: kind plus pattern
    /// coordinates (duplicates allowed; `Mask::from_coords` dedups).
    /// When present, the masked product under every plan must match
    /// both `spgemm_masked_serial` and the multiply-then-filter oracle
    /// bit for bit, including the surviving-op count.
    pub mask: Option<(MaskKind, Vec<(usize, usize)>)>,
    /// Whether the machine runs under overlapped accounting with
    /// sparsity-driven hybrid redistribution. Overlap changes which
    /// communication code paths the plans take (issue/compute/wait
    /// pipelines, per-block bcast-vs-p2p decisions) but must never
    /// change a result: the serial comparison stays bit-exact.
    pub overlap: bool,
}

impl MmCase {
    /// Generates a case from `seed`, drawing the kernel from
    /// `kernels` and the rank count from `ps`. The mask dimension is
    /// drawn for two thirds of cases (always, under
    /// `MFBC_CONFORMANCE_FORCE_MASK`).
    pub fn generate(seed: u64, kernels: &[MmKernelKind], ps: &[usize]) -> MmCase {
        MmCase::generate_inner(seed, kernels, ps, env_force_mask())
    }

    /// Like [`MmCase::generate`], but the output-mask dimension is
    /// always on — the dedicated masked suite's generator.
    pub fn generate_masked(seed: u64, kernels: &[MmKernelKind], ps: &[usize]) -> MmCase {
        MmCase::generate_inner(seed, kernels, ps, true)
    }

    fn generate_inner(
        seed: u64,
        kernels: &[MmKernelKind],
        ps: &[usize],
        force_mask: bool,
    ) -> MmCase {
        let mut rng = SplitMix64::new(seed);
        let kernel = *rng.pick(kernels);
        let p = *rng.pick(ps);
        let spec = gen::machine_spec(&mut rng, p);
        // Deliberately not divisible by typical grids; occasionally
        // degenerate (1) or smaller than p.
        let dim = |r: &mut SplitMix64| {
            if r.chance(1, 10) {
                1 + r.below(3)
            } else {
                r.range(5, 34)
            }
        };
        let (m, k, n) = (dim(&mut rng), dim(&mut rng), dim(&mut rng));
        let nnz_a = rng.below(2 * (m * k).min(3 * (m + k)) + 1);
        let nnz_b = rng.below(2 * (k * n).min(3 * (k + n)) + 1);
        let a = gen::coords(&mut rng, m, k, nnz_a)
            .into_iter()
            .map(|(i, j)| {
                let w = rng.next_u64() % 30;
                let x = 1.0 + rng.below(3) as f64;
                let c = rng.below(6) as i64 - 2;
                (i, j, Payload { w, x, c })
            })
            .collect();
        let b = gen::coords(&mut rng, k, n, nnz_b)
            .into_iter()
            .map(|(i, j)| (i, j, rng.next_u64() % 25))
            .collect();
        // The mask dimension is drawn last so earlier dimensions
        // replay identically for seeds recorded before it existed;
        // every value is drawn unconditionally so the stream does not
        // depend on `force_mask` either.
        let mask_draw = rng.below(3);
        let nnz_mask = rng.below(2 * (m * n).min(3 * (m + n)) + 1);
        let mask_coords = gen::coords(&mut rng, m, n, nnz_mask);
        let mask = match mask_draw {
            0 if !force_mask => None,
            1 => Some((MaskKind::Structural, mask_coords)),
            _ => Some((MaskKind::Complement, mask_coords)),
        };
        // The overlap dimension is drawn last (after the mask) so
        // seeds recorded before it existed replay identically; the
        // draw is unconditional so the stream does not depend on the
        // force env either.
        let overlap_draw = rng.chance(1, 3);
        MmCase {
            seed,
            kernel,
            m,
            k,
            n,
            p,
            alpha: spec.alpha,
            beta: spec.beta,
            a,
            b,
            mask,
            overlap: overlap_draw || env_force_overlap(),
        }
    }

    fn spec(&self) -> MachineSpec {
        MachineSpec {
            p: self.p,
            alpha: self.alpha,
            beta: self.beta,
            gamma: 1.0,
            mem_bytes: None,
            overlap: self.overlap,
            // Overlapped cases also exercise the sparsity-driven
            // hybrid redistribution decisions.
            redist: if self.overlap {
                RedistMode::Auto
            } else {
                RedistMode::Alltoall
            },
        }
    }

    fn right_csr(&self) -> Csr<Dist> {
        let mut coo = Coo::new(self.k, self.n);
        for &(i, j, w) in &self.b {
            coo.push(i, j, Dist::new(w));
        }
        coo.into_csr::<mfbc_algebra::monoid::MinDist>()
    }

    fn check_kernel<K>(&self, a: Csr<K::Left>, b: Csr<K::Right>) -> Result<(), String>
    where
        K: SpMulKernel,
        KernelOut<K>: Clone + PartialEq + Send + Sync + std::fmt::Debug,
    {
        let expected = spgemm_serial::<K>(&a, &b);
        let spec = self.spec();
        for plan in enumerate_plans(self.p) {
            let machine = Machine::new(spec.clone());
            let da = DistMat::from_global(canonical_layout(&machine, self.m, self.k), &a);
            let db = DistMat::from_global(canonical_layout(&machine, self.k, self.n), &b);
            let out = mm_exec::<K>(&machine, &plan, &da, &db)
                .map_err(|e| format!("plan {plan}: machine error: {e}"))?;
            out.c
                .validate()
                .map_err(|e| format!("plan {plan}: invalid distributed result: {e}"))?;
            let got = out.c.to_global::<K::Acc>();
            if let Some(diff) = expected.mat.first_difference(&got) {
                return Err(format!("plan {plan}: result diverges from serial: {diff}"));
            }
            if out.ops != expected.ops {
                return Err(format!(
                    "plan {plan}: ops {} != serial ops {}",
                    out.ops, expected.ops
                ));
            }
        }
        // The autotuner's pick (whatever it is under this α–β) must
        // agree too — this is the plan production code actually runs.
        let machine = Machine::new(spec);
        let da = DistMat::from_global(canonical_layout(&machine, self.m, self.k), &a);
        let db = DistMat::from_global(canonical_layout(&machine, self.k, self.n), &b);
        let (out, plan) =
            mm_auto::<K>(&machine, &da, &db).map_err(|e| format!("mm_auto: machine error: {e}"))?;
        let got = out.c.to_global::<K::Acc>();
        if let Some(diff) = expected.mat.first_difference(&got) {
            return Err(format!(
                "mm_auto (chose {plan}): diverges from serial: {diff}"
            ));
        }
        if let Some((kind, coords)) = &self.mask {
            self.check_masked::<K>(&a, &b, &expected.mat, *kind, coords)?;
        }
        Ok(())
    }

    /// The masked leg of the differential: the masked serial product
    /// must equal the multiply-then-filter oracle on the unmasked
    /// result, and every plan (plus the masked autotuner) must
    /// reproduce it bit for bit — including the count of elementary
    /// products that survive the mask.
    fn check_masked<K>(
        &self,
        a: &Csr<K::Left>,
        b: &Csr<K::Right>,
        unmasked: &Csr<KernelOut<K>>,
        kind: MaskKind,
        coords: &[(usize, usize)],
    ) -> Result<(), String>
    where
        K: SpMulKernel,
        KernelOut<K>: Clone + PartialEq + Send + Sync + std::fmt::Debug,
    {
        let mask = Mask::from_coords(kind, self.m, self.n, coords);
        let expected = spgemm_masked_serial::<K>(a, b, &mask);
        let filtered = mask.filter_allowed(unmasked);
        if let Some(diff) = expected.mat.first_difference(&filtered) {
            return Err(format!(
                "{kind:?} mask: masked serial diverges from multiply-then-filter: {diff}"
            ));
        }
        let spec = self.spec();
        for plan in enumerate_plans(self.p) {
            let machine = Machine::new(spec.clone());
            let da = DistMat::from_global(canonical_layout(&machine, self.m, self.k), a);
            let db = DistMat::from_global(canonical_layout(&machine, self.k, self.n), b);
            let out = mm_exec_masked::<K>(&machine, &plan, &da, &db, Some(&mask))
                .map_err(|e| format!("{kind:?} mask, plan {plan}: machine error: {e}"))?;
            out.c
                .validate()
                .map_err(|e| format!("{kind:?} mask, plan {plan}: invalid result: {e}"))?;
            let got = out.c.to_global::<K::Acc>();
            if let Some(diff) = expected.mat.first_difference(&got) {
                return Err(format!(
                    "{kind:?} mask, plan {plan}: diverges from masked serial: {diff}"
                ));
            }
            if out.ops != expected.ops {
                return Err(format!(
                    "{kind:?} mask, plan {plan}: ops {} != masked serial ops {}",
                    out.ops, expected.ops
                ));
            }
        }
        let machine = Machine::new(spec);
        let da = DistMat::from_global(canonical_layout(&machine, self.m, self.k), a);
        let db = DistMat::from_global(canonical_layout(&machine, self.k, self.n), b);
        let (out, plan) = mm_auto_masked::<K>(&machine, &da, &db, Some(&mask))
            .map_err(|e| format!("{kind:?} mask, mm_auto_masked: machine error: {e}"))?;
        let got = out.c.to_global::<K::Acc>();
        if let Some(diff) = expected.mat.first_difference(&got) {
            return Err(format!(
                "{kind:?} mask, mm_auto_masked (chose {plan}): diverges from masked serial: {diff}"
            ));
        }
        Ok(())
    }
}

impl CaseSpec for MmCase {
    fn check(&self) -> Result<(), String> {
        let b = self.right_csr();
        match self.kernel {
            MmKernelKind::Tropical => {
                let mut coo = Coo::new(self.m, self.k);
                for &(i, j, pl) in &self.a {
                    coo.push(i, j, Dist::new(pl.w));
                }
                let a = coo.into_csr::<mfbc_algebra::monoid::MinDist>();
                self.check_kernel::<TropicalKernel>(a, b)
            }
            MmKernelKind::BellmanFord => {
                let mut coo = Coo::new(self.m, self.k);
                for &(i, j, pl) in &self.a {
                    coo.push(i, j, Multpath::new(Dist::new(pl.w), pl.x));
                }
                let a = coo.into_csr::<mfbc_algebra::MultpathMonoid>();
                self.check_kernel::<BellmanFordKernel>(a, b)
            }
            MmKernelKind::Brandes => {
                let mut coo = Coo::new(self.m, self.k);
                for &(i, j, pl) in &self.a {
                    coo.push(i, j, Centpath::new(Dist::new(pl.w), pl.x, pl.c));
                }
                let a = coo.into_csr::<mfbc_algebra::CentpathMonoid>();
                self.check_kernel::<BrandesKernel>(a, b)
            }
        }
    }

    fn size(&self) -> usize {
        self.a.len()
            + self.b.len()
            + self.m
            + self.k
            + self.n
            + self.p
            + self.mask.as_ref().map_or(0, |(_, cs)| 1 + cs.len())
            + usize::from(self.overlap)
    }

    fn shrink_candidates(&self) -> Vec<MmCase> {
        let mut out = Vec::new();
        // Toward blocking first: a failure that survives with
        // serialized accounting is an ordinary plan bug rather than an
        // overlap-pipeline bug.
        if self.overlap {
            out.push(MmCase {
                overlap: false,
                ..self.clone()
            });
        }
        // Toward an unmasked repro next: a failure that survives
        // without the mask is an ordinary plan bug.
        if self.mask.is_some() {
            out.push(MmCase {
                mask: None,
                ..self.clone()
            });
        }
        // Fewer ranks next: a single-rank repro is the easiest to read.
        for &q in gen::P_ALL.iter().filter(|&&q| q < self.p) {
            out.push(MmCase {
                p: q,
                ..self.clone()
            });
        }
        // Thin the mask pattern.
        if let Some((kind, cs)) = &self.mask {
            for keep in chunk_reductions(cs.len()) {
                let mut c = self.clone();
                c.mask = Some((*kind, keep.iter().map(|&i| cs[i]).collect()));
                out.push(c);
            }
        }
        for keep in chunk_reductions(self.a.len()) {
            let mut c = self.clone();
            c.a = keep.iter().map(|&i| self.a[i]).collect();
            out.push(c);
        }
        for keep in chunk_reductions(self.b.len()) {
            let mut c = self.clone();
            c.b = keep.iter().map(|&i| self.b[i]).collect();
            out.push(c);
        }
        // Halve each dimension, dropping out-of-range entries.
        if self.m > 1 {
            let m = self.m / 2;
            let mut c = self.clone();
            c.m = m;
            c.a.retain(|&(i, _, _)| i < m);
            if let Some((_, cs)) = &mut c.mask {
                cs.retain(|&(i, _)| i < m);
            }
            out.push(c);
        }
        if self.k > 1 {
            let k = self.k / 2;
            let mut c = self.clone();
            c.k = k;
            c.a.retain(|&(_, j, _)| j < k);
            c.b.retain(|&(i, _, _)| i < k);
            out.push(c);
        }
        if self.n > 1 {
            let n = self.n / 2;
            let mut c = self.clone();
            c.n = n;
            c.b.retain(|&(_, j, _)| j < n);
            if let Some((_, cs)) = &mut c.mask {
                cs.retain(|&(_, j)| j < n);
            }
            out.push(c);
        }
        out
    }
}

/// Remaps a fault schedule onto a `p`-rank machine: targeted ranks
/// wrap modulo `p`, and crash faults are dropped when fewer than two
/// ranks remain (a one-rank machine cannot survive a crash, so such a
/// schedule would fail for the wrong reason).
pub(crate) fn faults_for_p(faults: &[ScheduledFault], p: usize) -> Vec<ScheduledFault> {
    faults
        .iter()
        .filter_map(|sf| {
            let kind = match sf.kind {
                FaultKind::Crash { rank } => {
                    if p < 2 {
                        return None;
                    }
                    FaultKind::Crash { rank: rank % p }
                }
                FaultKind::Oom { rank } => FaultKind::Oom { rank: rank % p },
                transient => transient,
            };
            Some(ScheduledFault { at: sf.at, kind })
        })
        .collect()
}

/// Index subsets to try when reducing an entry list of length `len`:
/// both halves and the two alternating combs, then (for short lists)
/// every single-element deletion.
pub(crate) fn chunk_reductions(len: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    if len == 0 {
        return out;
    }
    if len > 1 {
        out.push((0..len / 2).collect());
        out.push((len / 2..len).collect());
        out.push((0..len).filter(|i| i % 2 == 0).collect());
        out.push((0..len).filter(|i| i % 2 == 1).collect());
    }
    if len <= 8 {
        for skip in 0..len {
            out.push((0..len).filter(|&i| i != skip).collect());
        }
    }
    out
}

/// How a [`DriverCase`] selects its multiplication plans.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DriverPlan {
    /// Autotune every product (CTF-MFBC).
    Auto,
    /// Force plan `enumerate_plans(p)[idx % len]` for every product.
    Fixed(usize),
    /// CA-MFBC with replication factor chosen by preference index
    /// over the valid divisors of `p`.
    Ca(usize),
}

/// An end-to-end case: run the distributed MFBC driver on a generated
/// graph and compare the betweenness scores against the sequential
/// Brandes oracle.
#[derive(Clone, Debug)]
pub struct DriverCase {
    /// The seed this case was generated from (0 for hand-built cases).
    pub seed: u64,
    /// Vertex count.
    pub n: usize,
    /// Whether edge weights vary (`false` pins all weights to 1 and
    /// compares against the unweighted-BFS oracle).
    pub weighted: bool,
    /// Undirected edge list (duplicates and self-loops allowed —
    /// `Graph::new`'s normalization is under test too).
    pub edges: Vec<(usize, usize, u64)>,
    /// Rank count.
    pub p: usize,
    /// Plan selection mode.
    pub plan: DriverPlan,
    /// Sources per batch (clamped to `1..=n`).
    pub batch: usize,
    /// Whether adjacency preparation is amortized across products.
    pub amortize: bool,
    /// Shared-memory pool size the driver runs under (drawn from
    /// [`gen::THREAD_COUNTS`]; the scores must not depend on it).
    pub threads: usize,
    /// Fault schedule injected into a second, faulted run of the same
    /// case. When non-empty, the faulted run's recovered scores must
    /// be *bit-identical* to the fault-free run's. Empty in the plain
    /// differential suites; [`DriverCase::generate_faulted`] fills it.
    pub faults: Vec<ScheduledFault>,
    /// Whether the check re-runs the case under an installed
    /// [`mfbc_profile::Profiler`] and demands the scores stay
    /// bit-identical: observation must never perturb the computation.
    pub profile: bool,
    /// Whether the check re-runs the case under an installed
    /// [`mfbc_timeline::TimelineBuilder`] and demands both that the
    /// scores stay bit-identical and that the extracted critical path
    /// folds bit-exactly to the timeline's makespan.
    pub analyze: bool,
    /// Whether the driver runs with complement-of-`T` output masking
    /// in the forward expansion ([`MfbcConfig::masked`]). When set,
    /// the check additionally re-runs the case with masking off and
    /// demands *bit-identical* betweenness scores: skipping products
    /// into already-discovered vertices must never change a result.
    pub masked: bool,
    /// Whether the driver runs under overlapped accounting with
    /// hybrid redistribution. When set, the check additionally re-runs
    /// the case with overlap off and demands *bit-identical* λ:
    /// comm/compute overlap changes modeled clocks and communication
    /// code paths, never results.
    pub overlap: bool,
}

impl DriverCase {
    /// Generates a case from `seed`, with ranks drawn from `ps` and
    /// the weighted flag forced by `weighted`.
    pub fn generate(seed: u64, ps: &[usize], weighted: bool) -> DriverCase {
        let mut rng = SplitMix64::new(seed);
        let n = rng.range(2, 22);
        let p = *rng.pick(ps);
        let wmax = if weighted { 6 } else { 1 };
        let targets = rng.below(3 * n) + 1;
        let edges = if rng.chance(1, 3) {
            gen::rmat(&mut rng, n, targets, wmax)
        } else {
            gen::erdos_renyi(&mut rng, n, targets, wmax)
        };
        let plan = match rng.below(4) {
            0 => DriverPlan::Auto,
            1 => DriverPlan::Ca(rng.below(4)),
            _ => DriverPlan::Fixed(rng.below(128)),
        };
        DriverCase {
            seed,
            n,
            weighted,
            edges,
            p,
            plan,
            batch: 1 + rng.below(n),
            amortize: rng.chance(1, 2),
            threads: gen::THREAD_COUNTS[rng.below(gen::THREAD_COUNTS.len())],
            faults: Vec::new(),
            profile: rng.chance(1, 3),
            analyze: rng.chance(1, 3),
            // Drawn last so earlier dimensions replay identically for
            // seeds generated before this dimension existed; overlap
            // is drawn after masked, for the same reason.
            masked: rng.chance(1, 2) || env_force_mask(),
            overlap: rng.chance(1, 3) || env_force_overlap(),
        }
    }

    /// Like [`DriverCase::generate`], plus a random survivable fault
    /// schedule: one or two faults drawn from {crash, transient, oom}
    /// at early collective sequence numbers (so most of them actually
    /// fire), with at most one crash and never a crash on a one-rank
    /// machine. The check then demands the faulted run recover with
    /// scores bit-identical to the fault-free run.
    pub fn generate_faulted(seed: u64, ps: &[usize], weighted: bool) -> DriverCase {
        let mut case = DriverCase::generate(seed, ps, weighted);
        let mut rng = SplitMix64::new(seed ^ 0xfa17_cafe);
        let count = 1 + rng.below(2);
        let mut crashed = false;
        for _ in 0..count {
            let at = rng.below(24) as u64;
            let kind = match rng.below(3) {
                0 if case.p >= 2 && !crashed => {
                    crashed = true;
                    FaultKind::Crash {
                        rank: rng.below(case.p),
                    }
                }
                1 => FaultKind::Transient {
                    recurrence: 1 + rng.below(4) as u32,
                },
                _ => FaultKind::Oom {
                    rank: rng.below(case.p),
                },
            };
            case.faults.push(ScheduledFault { at, kind });
        }
        case
    }

    /// Replication factors `c` for which `ca_plan(p, c)` is
    /// well-formed: `c | p` with `p/c` a perfect square. Non-empty for
    /// every `p` (`c = p` always qualifies).
    pub fn valid_ca_factors(p: usize) -> Vec<usize> {
        (1..=p)
            .filter(|c| {
                if !p.is_multiple_of(*c) {
                    return false;
                }
                let r = p / c;
                let q = (r as f64).sqrt().round() as usize;
                q * q == r
            })
            .collect()
    }

    fn config(&self) -> MfbcConfig {
        let plan_mode = match self.plan {
            DriverPlan::Auto => PlanMode::Auto,
            DriverPlan::Fixed(idx) => {
                let plans = enumerate_plans(self.p);
                PlanMode::Fixed(plans[idx % plans.len()].clone())
            }
            DriverPlan::Ca(pref) => {
                let cs = Self::valid_ca_factors(self.p);
                PlanMode::Ca {
                    c: cs[pref % cs.len()],
                }
            }
        };
        MfbcConfig {
            batch_size: Some(self.batch.clamp(1, self.n)),
            plan_mode,
            max_batches: None,
            amortize_adjacency: self.amortize,
            sources: None,
            threads: Some(self.threads),
            masked: self.masked,
        }
    }

    fn graph(&self) -> Graph {
        Graph::new(
            self.n,
            false,
            self.edges.iter().map(|&(u, v, w)| (u, v, Dist::new(w))),
        )
    }

    /// The machine spec the case runs under: `test(p)` (serialized,
    /// all-to-all) by default; overlapped accounting with hybrid
    /// redistribution when the overlap dimension is on.
    fn spec(&self) -> MachineSpec {
        let s = MachineSpec::test(self.p);
        if self.overlap {
            s.with_overlap(true).with_redist(RedistMode::Auto)
        } else {
            s
        }
    }
}

impl CaseSpec for DriverCase {
    fn check(&self) -> Result<(), String> {
        let g = self.graph();
        let oracle = if self.weighted {
            brandes_weighted(&g)
        } else {
            brandes_unweighted(&g)
        };
        let machine = Machine::new(self.spec());
        let cfg = self.config();
        let run = mfbc_dist(&machine, &g, &cfg)
            .map_err(|e| format!("driver ({:?}): machine error: {e}", cfg.plan_mode))?;
        if run.scores.n() != oracle.n() {
            return Err(format!(
                "driver returned {} scores for an n={} graph",
                run.scores.n(),
                oracle.n()
            ));
        }
        if !run.scores.approx_eq(&oracle, 1e-9) {
            return Err(format!(
                "driver ({:?}) diverges from Brandes: max |Δλ| = {:.3e}",
                cfg.plan_mode,
                run.scores.max_abs_diff(&oracle)
            ));
        }
        if self.masked {
            // Masking is an optimization, never a semantic switch: the
            // same case with masking off must produce bit-identical
            // scores (on weighted graphs the flag is inert, so this
            // also pins that inertness).
            let mut ucfg = cfg.clone();
            ucfg.masked = false;
            let umachine = Machine::new(self.spec());
            let urun = mfbc_dist(&umachine, &g, &ucfg).map_err(|e| {
                format!("unmasked driver ({:?}): machine error: {e}", cfg.plan_mode)
            })?;
            for (v, (a, b)) in run
                .scores
                .lambda
                .iter()
                .zip(&urun.scores.lambda)
                .enumerate()
            {
                if a.to_bits() != b.to_bits() {
                    return Err(format!(
                        "masked driver: λ[{v}] = {a:?} differs from unmasked {b:?} \
                         (the output mask changed a result)"
                    ));
                }
            }
        }
        if self.overlap {
            // Overlap is a modeled-clock optimization, never a
            // semantic switch: the same case re-run under serialized
            // accounting (blocking collectives, all-to-all
            // redistribution) must produce bit-identical scores.
            let smachine = Machine::new(MachineSpec::test(self.p));
            let srun = mfbc_dist(&smachine, &g, &cfg).map_err(|e| {
                format!(
                    "serialized driver ({:?}): machine error: {e}",
                    cfg.plan_mode
                )
            })?;
            for (v, (a, b)) in run
                .scores
                .lambda
                .iter()
                .zip(&srun.scores.lambda)
                .enumerate()
            {
                if a.to_bits() != b.to_bits() {
                    return Err(format!(
                        "overlapped driver: λ[{v}] = {a:?} differs from serialized {b:?} \
                         (comm/compute overlap changed a result)"
                    ));
                }
            }
        }
        if self.profile {
            // Observation must not perturb the computation: the same
            // case re-run with a Profiler attached to the trace stream
            // must produce bit-identical betweenness scores.
            let profiler = std::sync::Arc::new(mfbc_profile::Profiler::new());
            let pmachine = Machine::new(self.spec());
            let prun = mfbc_trace::scoped(profiler.clone(), || mfbc_dist(&pmachine, &g, &cfg))
                .map_err(|e| {
                    format!("profiled driver ({:?}): machine error: {e}", cfg.plan_mode)
                })?;
            for (v, (a, b)) in run
                .scores
                .lambda
                .iter()
                .zip(&prun.scores.lambda)
                .enumerate()
            {
                if a.to_bits() != b.to_bits() {
                    return Err(format!(
                        "profiled driver: λ[{v}] = {b:?} differs from unprofiled {a:?} \
                         (observation perturbed the computation)"
                    ));
                }
            }
            if profiler.finish(&pmachine).events == 0 {
                return Err("profiled run recorded no trace events".into());
            }
        }
        if self.analyze {
            // Same invariant for the timeline builder: replaying the
            // trace into a causal timeline must not perturb the
            // computation, and the analysis on top must be coherent —
            // the critical path folds bit-exactly to the makespan.
            let builder = std::sync::Arc::new(mfbc_timeline::TimelineBuilder::new(self.spec()));
            let amachine = Machine::new(self.spec());
            let arun = mfbc_trace::scoped(builder.clone(), || mfbc_dist(&amachine, &g, &cfg))
                .map_err(|e| {
                    format!("analyzed driver ({:?}): machine error: {e}", cfg.plan_mode)
                })?;
            for (v, (a, b)) in run
                .scores
                .lambda
                .iter()
                .zip(&arun.scores.lambda)
                .enumerate()
            {
                if a.to_bits() != b.to_bits() {
                    return Err(format!(
                        "analyzed driver: λ[{v}] = {b:?} differs from unanalyzed {a:?} \
                         (observation perturbed the computation)"
                    ));
                }
            }
            let tl = builder.finish();
            if tl.dropped != 0 {
                return Err(format!("timeline dropped {} trace events", tl.dropped));
            }
            let problems = tl.validate_against(&amachine);
            if !problems.is_empty() {
                return Err(format!(
                    "timeline disagrees with machine meters: {}",
                    problems.join("; ")
                ));
            }
            let path = mfbc_timeline::critical_path(&tl);
            if path.sum_s().to_bits() != tl.makespan_s().to_bits() {
                return Err(format!(
                    "critical path folds to {:?} but makespan is {:?} (not bit-exact)",
                    path.sum_s(),
                    tl.makespan_s()
                ));
            }
        }
        if !self.faults.is_empty() {
            let plan = FaultPlan {
                faults: self.faults.clone(),
            };
            let faulted = Machine::with_faults(self.spec(), plan.clone(), RetryPolicy::default());
            let frun = mfbc_dist(&faulted, &g, &cfg)
                .map_err(|e| format!("faulted driver (faults {plan}): unrecovered: {e}"))?;
            // A crash shrinks the machine, and the remaining batches
            // run under a different plan/grid whose floating-point
            // accumulation *grouping* differs — ulp-level divergence
            // there is inherent (two fault-free runs at p and p−1
            // already differ), so crash recovery is held to the same
            // tolerance as the Brandes oracle. Transient and OOM
            // recovery never change the machine shape, so they must
            // reproduce the fault-free scores *bit for bit*.
            let has_crash = self
                .faults
                .iter()
                .any(|sf| matches!(sf.kind, FaultKind::Crash { .. }));
            if has_crash {
                if !frun.scores.approx_eq(&run.scores, 1e-9) {
                    return Err(format!(
                        "faulted driver (faults {plan}, {} injected, {} replans): \
                         diverges from fault-free run: max |Δλ| = {:.3e}",
                        frun.recovery.faults_injected,
                        frun.recovery.replans,
                        frun.scores.max_abs_diff(&run.scores)
                    ));
                }
            } else {
                for (v, (a, b)) in run
                    .scores
                    .lambda
                    .iter()
                    .zip(&frun.scores.lambda)
                    .enumerate()
                {
                    if a.to_bits() != b.to_bits() {
                        return Err(format!(
                            "faulted driver (faults {plan}, {} injected): \
                             λ[{v}] = {b:?} differs from fault-free {a:?} (not bit-identical)",
                            frun.recovery.faults_injected
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    fn size(&self) -> usize {
        self.edges.len()
            + self.n
            + self.p
            + self.threads
            + self.faults.len()
            + usize::from(self.profile)
            + usize::from(self.analyze)
            + usize::from(self.masked)
            + usize::from(self.overlap)
    }

    fn shrink_candidates(&self) -> Vec<DriverCase> {
        let mut out = Vec::new();
        // Toward blocking first: a failure that survives with
        // serialized accounting is an ordinary driver bug rather than
        // an overlap-pipeline bug.
        if self.overlap {
            out.push(DriverCase {
                overlap: false,
                ..self.clone()
            });
        }
        // Toward an unmasked repro next: a failure that survives with
        // masked=false is an ordinary driver bug.
        if self.masked {
            out.push(DriverCase {
                masked: false,
                ..self.clone()
            });
        }
        // Toward an unobserved repro next: a failure that survives
        // with analyze=false / profile=false is an ordinary driver bug.
        if self.analyze {
            out.push(DriverCase {
                analyze: false,
                ..self.clone()
            });
        }
        if self.profile {
            out.push(DriverCase {
                profile: false,
                ..self.clone()
            });
        }
        // Toward fault-free next: a failure that survives without any
        // schedule is an ordinary driver bug, the easiest kind to read.
        if !self.faults.is_empty() {
            out.push(DriverCase {
                faults: Vec::new(),
                ..self.clone()
            });
            for skip in 0..self.faults.len() {
                let mut c = self.clone();
                c.faults.remove(skip);
                out.push(c);
            }
        }
        for &q in gen::P_ALL.iter().filter(|&&q| q < self.p) {
            out.push(DriverCase {
                p: q,
                faults: faults_for_p(&self.faults, q),
                ..self.clone()
            });
        }
        // Fewer pool workers next: a serial repro is easiest to debug.
        for &t in gen::THREAD_COUNTS.iter().filter(|&&t| t < self.threads) {
            out.push(DriverCase {
                threads: t,
                ..self.clone()
            });
        }
        for keep in chunk_reductions(self.edges.len()) {
            let mut c = self.clone();
            c.edges = keep.iter().map(|&i| self.edges[i]).collect();
            out.push(c);
        }
        if self.n > 2 {
            let n = (self.n / 2).max(2);
            let mut c = self.clone();
            c.n = n;
            c.edges.retain(|&(u, v, _)| u < n && v < n);
            out.push(c);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = MmCase::generate(42, &[MmKernelKind::Tropical], &[4]);
        let b = MmCase::generate(42, &[MmKernelKind::Tropical], &[4]);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        let d1 = DriverCase::generate(7, &gen::P_ALL, true);
        let d2 = DriverCase::generate(7, &gen::P_ALL, true);
        assert_eq!(format!("{d1:?}"), format!("{d2:?}"));
    }

    #[test]
    fn shrink_candidates_strictly_smaller_exist() {
        let c = MmCase::generate(3, &[MmKernelKind::BellmanFord], &[8]);
        assert!(c
            .shrink_candidates()
            .iter()
            .any(|cand| cand.size() < c.size()));
    }

    #[test]
    fn ca_factors_are_always_available() {
        for p in gen::P_ALL {
            let cs = DriverCase::valid_ca_factors(p);
            assert!(cs.contains(&p), "c = p must qualify for p={p}");
            for c in cs {
                let r = p / c;
                let q = (r as f64).sqrt() as usize;
                assert_eq!(q * q, r);
            }
        }
    }

    #[test]
    fn small_tropical_case_passes() {
        let c = MmCase::generate(11, &[MmKernelKind::Tropical], &[2]);
        c.check().unwrap();
    }
}
