//! Low-level samplers shared by the case generators and by the
//! algebra property tests: sparse coordinate lists, algebra elements,
//! Erdős–Rényi and R-MAT edge lists, and machine specs with varied
//! α–β constants.
//!
//! All floating-point payloads are kept *integral* (multiplicities
//! 1–3, centrality factors 0–4): additions over integral f64 are exact
//! and associative, so every plan's accumulation order produces
//! bit-identical results and the differential checks can demand exact
//! equality instead of tolerances.

use crate::rng::SplitMix64;
use mfbc_algebra::{Centpath, Dist, Multpath};
use mfbc_machine::MachineSpec;

/// The rank counts the harness exercises: 1 (degenerate), primes with
/// non-power-of-two logs (3, 7), the small powers of two the paper's
/// grids favour, and 16 (where all nine 3D nestings get nontrivial
/// grids and Cannon's `4×4` kicks in).
pub const P_ALL: [usize; 7] = [1, 2, 3, 4, 7, 8, 16];

/// Rank counts with degenerate/adversarial structure only.
pub const P_DEGENERATE: [usize; 4] = [1, 2, 3, 7];

/// Shared-memory pool sizes the harness exercises: the degenerate
/// serial pool, the smallest real pool, and two oversubscribed sizes.
/// Results must be bit-identical across all of them.
pub const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// α menus for generated machines (round binary values, so cost
/// arithmetic in assertions stays exact).
pub const ALPHAS: [f64; 3] = [0.5, 1.0, 4.0];

/// β menus for generated machines.
pub const BETAS: [f64; 3] = [0.25, 1.0, 2.0];

/// A random machine spec over `p` ranks with α–β drawn from the
/// menus, unit γ and no memory budget (conformance checks correctness,
/// not OOM behaviour). Serialized accounting and all-to-all
/// redistribution: the overlap dimension is drawn separately by the
/// case generators, last, so older seeds replay identically.
pub fn machine_spec(rng: &mut SplitMix64, p: usize) -> MachineSpec {
    MachineSpec {
        p,
        alpha: *rng.pick(&ALPHAS),
        beta: *rng.pick(&BETAS),
        gamma: 1.0,
        mem_bytes: None,
        overlap: false,
        redist: mfbc_machine::RedistMode::Alltoall,
    }
}

/// A random finite distance in `0..bound`.
pub fn dist(rng: &mut SplitMix64, bound: u64) -> Dist {
    Dist::new(rng.next_u64() % bound)
}

/// A random multpath: finite weight below `bound`, integral
/// multiplicity 1–3 (so `⊕`'s f64 sums stay exact).
pub fn multpath(rng: &mut SplitMix64, bound: u64) -> Multpath {
    Multpath::new(dist(rng, bound), 1.0 + rng.below(3) as f64)
}

/// A random centpath: finite weight below `bound`, integral partial
/// factor 0–4, child counter −2..=3. Occasionally the null element, so
/// laws are exercised at the adjoined identity too.
pub fn centpath(rng: &mut SplitMix64, bound: u64) -> Centpath {
    if rng.chance(1, 8) {
        return Centpath::none();
    }
    Centpath::new(
        dist(rng, bound),
        rng.below(5) as f64,
        rng.below(6) as i64 - 2,
    )
}

/// `nnz` random coordinates over an `nrows × ncols` index space
/// (duplicates allowed — `Coo::into_csr` merging is part of the
/// surface under test).
pub fn coords(rng: &mut SplitMix64, nrows: usize, ncols: usize, nnz: usize) -> Vec<(usize, usize)> {
    (0..nnz)
        .map(|_| (rng.below(nrows), rng.below(ncols)))
        .collect()
}

/// Erdős–Rényi-style edge list: `targets` random (possibly duplicate)
/// undirected edges over `n` vertices, weights in `1..=wmax`
/// (self-loops are emitted and left for `Graph::new` to drop — that
/// filter is part of the surface under test).
pub fn erdos_renyi(
    rng: &mut SplitMix64,
    n: usize,
    targets: usize,
    wmax: u64,
) -> Vec<(usize, usize, u64)> {
    (0..targets)
        .map(|_| (rng.below(n), rng.below(n), 1 + rng.next_u64() % wmax))
        .collect()
}

/// R-MAT edge list with the Graph500 partition probabilities
/// (A, B, C, D) = (0.57, 0.19, 0.19, 0.05), quantized to integer
/// percentages so the sampler needs no floating-point comparisons.
/// Produces the skewed degree distributions that stress load balance
/// in the distributed layers. Vertex ids are folded into `0..n`.
pub fn rmat(rng: &mut SplitMix64, n: usize, targets: usize, wmax: u64) -> Vec<(usize, usize, u64)> {
    let scale = usize::BITS - n.next_power_of_two().leading_zeros() - 1;
    (0..targets)
        .map(|_| {
            let (mut u, mut v) = (0usize, 0usize);
            for _ in 0..scale {
                let r = rng.below(100);
                let (du, dv) = if r < 57 {
                    (0, 0)
                } else if r < 76 {
                    (0, 1)
                } else if r < 95 {
                    (1, 0)
                } else {
                    (1, 1)
                };
                u = 2 * u + du;
                v = 2 * v + dv;
            }
            (u % n, v % n, 1 + rng.next_u64() % wmax)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_elements_are_valid() {
        let mut rng = SplitMix64::new(5);
        for _ in 0..200 {
            assert!(dist(&mut rng, 30).is_finite());
            let mp = multpath(&mut rng, 30);
            assert!(mp.is_path());
            assert!(mp.m >= 1.0 && mp.m <= 3.0 && mp.m.fract() == 0.0);
            let cp = centpath(&mut rng, 30);
            if !cp.is_none() {
                assert!(cp.p.fract() == 0.0);
            }
        }
    }

    #[test]
    fn edge_lists_stay_in_range() {
        let mut rng = SplitMix64::new(6);
        for (u, v, w) in erdos_renyi(&mut rng, 13, 60, 5) {
            assert!(u < 13 && v < 13 && (1..=5).contains(&w));
        }
        for (u, v, w) in rmat(&mut rng, 13, 60, 5) {
            assert!(u < 13 && v < 13 && (1..=5).contains(&w));
        }
    }

    #[test]
    fn rmat_is_skewed() {
        // The (0.57, .19, .19, .05) recursion concentrates edges on
        // low vertex ids; check the bias is visible.
        let mut rng = SplitMix64::new(9);
        let edges = rmat(&mut rng, 64, 600, 1);
        let low = edges.iter().filter(|&&(u, _, _)| u < 16).count();
        assert!(low > 200, "expected skew toward low ids, got {low}/600");
    }
}
