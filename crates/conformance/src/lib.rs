//! Conformance harness: seeded differential testing with shrinking.
//!
//! The paper's implementation strategy only works if every member of
//! the 1D/2D/3D multiplication-plan space is interchangeable under
//! arbitrary monoid kernels, and if the driver built on top of them
//! matches textbook Brandes. This crate turns that obligation into a
//! repeatable harness:
//!
//! * [`rng`] — a dependency-free SplitMix64 PRNG and the seed-stream
//!   derivation (`case i of suite s` ← `mix(stream_tag(s), i)`);
//! * [`gen`] — samplers for algebra elements, sparse coordinates,
//!   Erdős–Rényi / R-MAT edge lists, and α–β machine specs;
//! * [`case`] — self-contained cases: [`case::MmCase`] cross-checks
//!   every enumerable plan plus the autotuned one against
//!   `spgemm_serial`; [`case::DriverCase`] runs the distributed MFBC
//!   driver against the Brandes oracles;
//! * [`serve`] — [`serve::ServeCase`]: seeded interleavings of
//!   queries, flushes, and fault injections through a live serving
//!   engine, with exact-mode responses checked bit-for-bit against a
//!   one-shot run;
//! * [`shrink`] — greedy delta-debugging minimization of a failing
//!   case (fewer nonzeros, vertices, ranks, smaller dimensions);
//! * [`suite`] — the runner: fixed-seed smoke streams, the
//!   `MFBC_CONFORMANCE_SEED` / `MFBC_CONFORMANCE_CASES` environment
//!   protocol, and one-line repro reporting.
//!
//! A failing run prints something like:
//!
//! ```text
//! conformance failure in `mm_tropical` (case #137, seed 0x9e3779b97f4a7c15)
//!   original (96 units): plan 3d(C/AB,2x2x2): result diverges from serial: …
//!   shrunk   (14 units): plan 3d(C/AB,2x2x2): result diverges from serial: …
//!   shrunk case: MmCase { seed: …, kernel: Tropical, m: 2, … }
//!   repro: MFBC_CONFORMANCE_SEED=0x9e3779b97f4a7c15 cargo test -p mfbc-conformance mm_tropical
//! ```
//!
//! Replaying the printed command regenerates the identical case and
//! re-shrinks it deterministically to the same minimal repro.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod case;
pub mod gen;
pub mod rng;
pub mod serve;
pub mod shrink;
pub mod suite;

pub use case::{CaseSpec, DriverCase, DriverPlan, MmCase, MmKernelKind, Payload};
pub use rng::SplitMix64;
pub use serve::{ServeCase, ServeDeadline, ServeOp, ServeQuery};
pub use shrink::{shrink, Shrunk};
pub use suite::{run_suite, run_suite_or_panic, Failure};
