//! The serving-engine conformance case: seeded schedules of
//! interleaved queries, flush boundaries, and fault injections driven
//! through a live [`mfbc_serve::Engine`].
//!
//! The contract under test is the serve crate's robustness spine:
//!
//! * every admitted request is answered **exactly once**, across any
//!   interleaving of queries, coalesced flushes, and injected faults;
//! * every `Exact`-quality response is **bit-identical** to a one-shot
//!   `mfbc_dist` run on an identically configured machine (same fault
//!   schedule — the engine replays the same collective sequence, so
//!   even crash recovery lands on the same bits);
//! * degraded responses carry coherent tags (`Approx` sample size at
//!   least the configured minimum, `Stale` version never ahead of the
//!   store);
//! * the store converges: once the schedule ends, a bounded number of
//!   unbounded-deadline rounds reaches the complete exact scores.
//!
//! Shrinking moves toward a fault-free, single-request schedule first
//! — the easiest repro to read — then along the usual rank / thread /
//! graph dimensions.

use crate::case::CaseSpec;
use crate::gen;
use crate::rng::SplitMix64;
use mfbc_algebra::Dist;
use mfbc_core::{mfbc_dist, MfbcConfig};
use mfbc_fault::{FaultKind, FaultPlan, RetryPolicy, ScheduledFault};
use mfbc_graph::Graph;
use mfbc_machine::{Machine, MachineSpec};
use mfbc_serve::{Admission, Engine, EngineConfig, Payload, Quality, Query, Request, Response};

/// What one scheduled request asks for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServeQuery {
    /// Full score vector.
    Full,
    /// Highest-`k` vertices.
    TopK(usize),
    /// One vertex (may fall out of range under graph shrinking, in
    /// which case admission sheds it — also part of the contract).
    Vertex(usize),
}

/// The deadline class a scheduled request carries. Classes rather
/// than raw seconds so the schedule stays meaningful as the graph and
/// machine shrink underneath it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServeDeadline {
    /// No budget limit: funds exact progress.
    Unbounded,
    /// About half of one exact batch: forces the degraded rungs.
    TightBatch,
    /// Zero budget: a stale-serving probe.
    Zero,
}

/// One step of a serve schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServeOp {
    /// Submit a request.
    Query {
        /// What it asks for.
        query: ServeQuery,
        /// Its budget class.
        deadline: ServeDeadline,
    },
    /// A flush boundary: drain the coalesced round.
    Flush,
}

/// A seeded serving scenario: a graph, a machine, a schedule of
/// interleaved queries and flushes, and an optional fault schedule.
#[derive(Clone, Debug)]
pub struct ServeCase {
    /// The seed this case was generated from (0 for hand-built cases).
    pub seed: u64,
    /// Vertex count.
    pub n: usize,
    /// Undirected edge list (duplicates and self-loops allowed).
    pub edges: Vec<(usize, usize, u64)>,
    /// Rank count.
    pub p: usize,
    /// Sources per exact batch (clamped to `1..=n`).
    pub batch: usize,
    /// Shared-memory pool size the engine runs under.
    pub threads: usize,
    /// The interleaved request/flush schedule.
    pub schedule: Vec<ServeOp>,
    /// Fault schedule injected into the machine (the one-shot oracle
    /// runs under the *same* schedule).
    pub faults: Vec<ScheduledFault>,
    /// Engine seed (backoff jitter, degraded-mode sampling).
    pub eseed: u64,
    /// The observability dimension: when set, the schedule is driven a
    /// second time under an installed trace recorder and an enabled
    /// flight recorder, and the response stream must stay
    /// bit-identical (observation must never perturb results). Drawn
    /// for a third of cases (always under
    /// `MFBC_CONFORMANCE_FORCE_SERVE_TRACE`), and drawn *last* so
    /// seeds replay to the same case as before this dimension existed.
    pub traced: bool,
}

/// Convergence rounds allowed after the schedule: enough for finite
/// transient budgets to exhaust and an open breaker to half-open and
/// probe (default cooldown 2), with slack.
const CONVERGE_ROUNDS: usize = 8;

impl ServeCase {
    /// Generates a fault-free case from `seed`, with ranks drawn from
    /// `ps`.
    pub fn generate(seed: u64, ps: &[usize]) -> ServeCase {
        let mut rng = SplitMix64::new(seed);
        let n = rng.range(2, 22);
        let p = *rng.pick(ps);
        let wmax = if rng.chance(1, 3) { 6 } else { 1 };
        let targets = rng.below(3 * n) + 1;
        let edges = if rng.chance(1, 3) {
            gen::rmat(&mut rng, n, targets, wmax)
        } else {
            gen::erdos_renyi(&mut rng, n, targets, wmax)
        };
        let batch = 1 + rng.below(n);
        let threads = gen::THREAD_COUNTS[rng.below(gen::THREAD_COUNTS.len())];
        let ops = 1 + rng.below(11);
        let mut schedule = Vec::with_capacity(ops);
        for _ in 0..ops {
            if rng.chance(1, 4) {
                schedule.push(ServeOp::Flush);
            } else {
                let query = match rng.below(3) {
                    0 => ServeQuery::Full,
                    1 => ServeQuery::TopK(1 + rng.below(4)),
                    _ => ServeQuery::Vertex(rng.below(n)),
                };
                let deadline = match rng.below(3) {
                    0 => ServeDeadline::Unbounded,
                    1 => ServeDeadline::TightBatch,
                    _ => ServeDeadline::Zero,
                };
                schedule.push(ServeOp::Query { query, deadline });
            }
        }
        let eseed = rng.next_u64();
        // Drawn last: earlier fields replay identically for old seeds.
        let traced = crate::case::env_force_serve_trace() || rng.chance(1, 3);
        ServeCase {
            seed,
            n,
            edges,
            p,
            batch,
            threads,
            schedule,
            faults: Vec::new(),
            eseed,
            traced,
        }
    }

    /// Like [`ServeCase::generate`], plus a survivable fault schedule
    /// (one or two of {crash, transient, oom} at early collective
    /// sequence numbers, at most one crash, never a crash on a
    /// one-rank machine).
    pub fn generate_faulted(seed: u64, ps: &[usize]) -> ServeCase {
        let mut case = ServeCase::generate(seed, ps);
        let mut rng = SplitMix64::new(seed ^ 0x5e12_fa17);
        let count = 1 + rng.below(2);
        let mut crashed = false;
        for _ in 0..count {
            let at = rng.below(24) as u64;
            let kind = match rng.below(3) {
                0 if case.p >= 2 && !crashed => {
                    crashed = true;
                    FaultKind::Crash {
                        rank: rng.below(case.p),
                    }
                }
                1 => FaultKind::Transient {
                    recurrence: 1 + rng.below(4) as u32,
                },
                _ => FaultKind::Oom {
                    rank: rng.below(case.p),
                },
            };
            case.faults.push(ScheduledFault { at, kind });
        }
        case
    }

    fn graph(&self) -> Graph {
        Graph::new(
            self.n,
            false,
            self.edges.iter().map(|&(u, v, w)| (u, v, Dist::new(w))),
        )
    }

    fn config(&self) -> MfbcConfig {
        MfbcConfig {
            batch_size: Some(self.batch.clamp(1, self.n)),
            threads: Some(self.threads),
            ..MfbcConfig::default()
        }
    }

    fn machine(&self) -> Machine {
        if self.faults.is_empty() {
            Machine::new(MachineSpec::test(self.p))
        } else {
            Machine::with_faults(
                MachineSpec::test(self.p),
                FaultPlan {
                    faults: self.faults.clone(),
                },
                RetryPolicy::default(),
            )
        }
    }

    /// Checks one drained response against the bookkeeping and the
    /// one-shot oracle bits.
    fn check_response(
        &self,
        r: &Response,
        pending: &mut Vec<(u64, ServeQuery)>,
        oracle: &[f64],
        min_approx_k: usize,
    ) -> Result<(), String> {
        let Some(slot) = pending.iter().position(|&(id, _)| id == r.id) else {
            return Err(format!(
                "response for id {} which was never admitted (or already answered)",
                r.id
            ));
        };
        let (_, query) = pending.swap_remove(slot);
        match r.quality {
            Quality::Exact => {
                let check_bits = |got: f64, want: f64, what: &str| {
                    if got.to_bits() != want.to_bits() {
                        return Err(format!(
                            "id {}: exact {what} = {got:?} differs from one-shot {want:?} \
                             (exact responses must be bit-identical)",
                            r.id
                        ));
                    }
                    Ok(())
                };
                match (&r.payload, query) {
                    (Payload::Full(scores), ServeQuery::Full) => {
                        if scores.len() != oracle.len() {
                            return Err(format!(
                                "id {}: {} scores for an n={} graph",
                                r.id,
                                scores.len(),
                                oracle.len()
                            ));
                        }
                        for (v, (g, w)) in scores.iter().zip(oracle).enumerate() {
                            check_bits(*g, *w, &format!("λ[{v}]"))?;
                        }
                    }
                    (Payload::Vertex { v, score }, ServeQuery::Vertex(want_v)) => {
                        if *v != want_v {
                            return Err(format!("id {}: vertex {v} echoed for {want_v}", r.id));
                        }
                        check_bits(*score, oracle[*v], &format!("λ[{v}]"))?;
                    }
                    (Payload::TopK(pairs), ServeQuery::TopK(k)) => {
                        if pairs.len() != k.min(oracle.len()) {
                            return Err(format!(
                                "id {}: {} top-k pairs for k={k}",
                                r.id,
                                pairs.len()
                            ));
                        }
                        for &(v, score) in pairs {
                            check_bits(score, oracle[v], &format!("top-k λ[{v}]"))?;
                        }
                    }
                    (payload, query) => {
                        return Err(format!(
                            "id {}: payload {payload:?} does not answer {query:?}",
                            r.id
                        ));
                    }
                }
            }
            Quality::Approx { k, ci } => {
                if k < min_approx_k {
                    return Err(format!(
                        "id {}: approx sample {k} below the configured minimum {min_approx_k}",
                        r.id
                    ));
                }
                if !(ci > 0.0 && ci.is_finite()) {
                    return Err(format!("id {}: approx rel-SE tag {ci:?} is unusable", r.id));
                }
            }
            Quality::Stale { version } => {
                if version > r.version {
                    return Err(format!(
                        "id {}: stale version {version} ahead of store version {}",
                        r.id, r.version
                    ));
                }
            }
        }
        Ok(())
    }

    /// Drives the full schedule (plus convergence probes and the
    /// final warm-store query) through one engine, checking every
    /// response against `oracle`, and returns the rendered wire lines
    /// in order. `flight_capacity > 0` additionally enables the
    /// in-engine flight recorder, whose journey records must then
    /// cover every answered request.
    fn drive(&self, oracle: &[f64], flight_capacity: usize) -> Result<Vec<String>, String> {
        let cfg = self.config();
        let ecfg = EngineConfig {
            seed: self.eseed,
            flight_capacity,
            ..EngineConfig::default()
        };
        let mut engine = Engine::new(&self.machine(), self.graph(), &cfg, ecfg)
            .map_err(|e| format!("engine build: machine error: {e}"))?;
        let tight_s = engine.est_batch_modeled_s() * 0.5;

        let mut pending: Vec<(u64, ServeQuery)> = Vec::new();
        let mut lines: Vec<String> = Vec::new();
        let mut next_id = 0u64;
        for op in &self.schedule {
            match *op {
                ServeOp::Query { query, deadline } => {
                    let req = Request {
                        id: next_id,
                        query: match query {
                            ServeQuery::Full => Query::Full,
                            ServeQuery::TopK(k) => Query::TopK { k },
                            ServeQuery::Vertex(v) => Query::Vertex { v },
                        },
                        deadline_s: match deadline {
                            ServeDeadline::Unbounded => None,
                            ServeDeadline::TightBatch => Some(tight_s),
                            ServeDeadline::Zero => Some(0.0),
                        },
                    };
                    if engine.submit(req) == Admission::Admitted {
                        pending.push((next_id, query));
                    }
                    next_id += 1;
                }
                ServeOp::Flush => {
                    for r in engine.drain() {
                        self.check_response(&r, &mut pending, oracle, ecfg.min_approx_k)?;
                        lines.push(mfbc_serve::wire::render_response(&r));
                    }
                }
            }
        }
        // The schedule may end mid-round: the final drain must answer
        // everything still queued.
        for r in engine.drain() {
            self.check_response(&r, &mut pending, oracle, ecfg.min_approx_k)?;
            lines.push(mfbc_serve::wire::render_response(&r));
        }
        if !pending.is_empty() {
            return Err(format!(
                "admitted requests never answered after the final drain: {pending:?}"
            ));
        }

        // Convergence: unbounded rounds must reach the exact store in
        // bounded time (fault budgets are finite on this machine).
        let mut rounds = 0;
        while !engine.exact_complete() {
            rounds += 1;
            if rounds > CONVERGE_ROUNDS {
                return Err(format!(
                    "store not exact after {CONVERGE_ROUNDS} unbounded rounds \
                     (version {}, breaker {:?})",
                    engine.store_version(),
                    engine.breaker_state()
                ));
            }
            let id = u64::MAX - rounds as u64;
            if engine.submit(Request {
                id,
                query: Query::Full,
                deadline_s: None,
            }) != Admission::Admitted
            {
                return Err("empty queue refused an unbounded convergence probe".into());
            }
            pending.push((id, ServeQuery::Full));
            for r in engine.drain() {
                self.check_response(&r, &mut pending, oracle, ecfg.min_approx_k)?;
                lines.push(mfbc_serve::wire::render_response(&r));
            }
            if !pending.is_empty() {
                return Err(format!("convergence probe never answered: {pending:?}"));
            }
        }
        // And once exact, the served bits are the one-shot bits (the
        // per-response check above already compared them for the final
        // probe; re-assert through a fresh query for the warm-store
        // path).
        engine.submit(Request {
            id: u64::MAX,
            query: Query::Full,
            deadline_s: Some(0.0),
        });
        let warm = engine.drain();
        let Some(r) = warm.first() else {
            return Err("warm-store query got no response".into());
        };
        if r.quality != Quality::Exact {
            return Err(format!(
                "warm-store query served {:?} from a complete exact store",
                r.quality
            ));
        }
        lines.push(mfbc_serve::wire::render_response(r));
        let mut pending = vec![(u64::MAX, ServeQuery::Full)];
        self.check_response(r, &mut pending, oracle, ecfg.min_approx_k)?;

        if flight_capacity > 0 {
            let fr = engine
                .flight()
                .ok_or("flight_capacity > 0 but no recorder was enabled")?;
            let incomplete = fr.journeys().filter(|j| !j.complete).count();
            if incomplete > 0 {
                return Err(format!(
                    "{incomplete} journey record(s) never completed even though \
                     every admitted request was answered"
                ));
            }
            if fr.journeys().count() != lines.len() {
                return Err(format!(
                    "{} journey records for {} responses (capacity {flight_capacity} \
                     should hold them all)",
                    fr.journeys().count(),
                    lines.len()
                ));
            }
        }
        Ok(lines)
    }
}

impl CaseSpec for ServeCase {
    fn check(&self) -> Result<(), String> {
        // The bit-identity oracle: one-shot `mfbc_dist` under the same
        // machine spec and fault schedule.
        let one_shot = mfbc_dist(&self.machine(), &self.graph(), &self.config())
            .map_err(|e| format!("one-shot oracle: machine error: {e}"))?;
        let oracle = &one_shot.scores.lambda;

        let base = self.drive(oracle, 0)?;
        if self.traced {
            // The observability dimension: the same schedule under an
            // installed trace recorder and an enabled flight recorder
            // must produce the same bytes on the wire.
            let rec = std::sync::Arc::new(mfbc_trace::MemoryRecorder::new());
            let observed = mfbc_trace::scoped(rec.clone(), || self.drive(oracle, 64))?;
            if observed != base {
                let diverged = base
                    .iter()
                    .zip(&observed)
                    .position(|(a, b)| a != b)
                    .map_or_else(
                        || format!("line count {} vs {}", base.len(), observed.len()),
                        |i| format!("first divergence at line {i}"),
                    );
                return Err(format!(
                    "tracing + flight recording perturbed the response stream ({diverged})"
                ));
            }
            if rec.is_empty() {
                return Err("observed run recorded no trace events".into());
            }
        }
        Ok(())
    }

    fn size(&self) -> usize {
        self.edges.len()
            + self.n
            + self.p
            + self.threads
            + self.schedule.len()
            + self.faults.len()
            + usize::from(self.traced)
    }

    fn shrink_candidates(&self) -> Vec<ServeCase> {
        let mut out = Vec::new();
        // Toward untraced first: a failure that survives without the
        // observability re-run is an ordinary serving bug, and the
        // repro no longer needs the double drive.
        if self.traced {
            out.push(ServeCase {
                traced: false,
                ..self.clone()
            });
        }
        // Toward fault-free next: a failure that survives without the
        // schedule is an ordinary serving bug, the easiest to read.
        if !self.faults.is_empty() {
            out.push(ServeCase {
                faults: Vec::new(),
                ..self.clone()
            });
            for skip in 0..self.faults.len() {
                let mut c = self.clone();
                c.faults.remove(skip);
                out.push(c);
            }
        }
        // Toward a single-request schedule next.
        if self.schedule.len() > 1 {
            for keep in crate::case::chunk_reductions(self.schedule.len()) {
                let mut c = self.clone();
                c.schedule = keep.iter().map(|&i| self.schedule[i]).collect();
                out.push(c);
            }
        }
        for &q in gen::P_ALL.iter().filter(|&&q| q < self.p) {
            out.push(ServeCase {
                p: q,
                faults: crate::case::faults_for_p(&self.faults, q),
                ..self.clone()
            });
        }
        for &t in gen::THREAD_COUNTS.iter().filter(|&&t| t < self.threads) {
            out.push(ServeCase {
                threads: t,
                ..self.clone()
            });
        }
        for keep in crate::case::chunk_reductions(self.edges.len()) {
            let mut c = self.clone();
            c.edges = keep.iter().map(|&i| self.edges[i]).collect();
            out.push(c);
        }
        if self.n > 2 {
            let n = (self.n / 2).max(2);
            let mut c = self.clone();
            c.n = n;
            c.edges.retain(|&(u, v, _)| u < n && v < n);
            out.push(c);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = ServeCase::generate_faulted(42, &gen::P_ALL);
        let b = ServeCase::generate_faulted(42, &gen::P_ALL);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn shrink_moves_toward_fault_free_single_request_first() {
        let mut c = ServeCase::generate(5, &[4]);
        c.traced = false;
        c.faults = vec![ScheduledFault {
            at: 3,
            kind: FaultKind::Transient { recurrence: 1 },
        }];
        let cands = c.shrink_candidates();
        assert!(
            cands[0].faults.is_empty(),
            "first candidate drops the whole fault schedule"
        );
        assert!(cands
            .iter()
            .any(|cand| cand.schedule.len() < c.schedule.len()));
    }

    #[test]
    fn shrink_drops_the_observability_dimension_first() {
        let mut c = ServeCase::generate(5, &[4]);
        c.traced = true;
        let cands = c.shrink_candidates();
        assert!(!cands[0].traced, "first candidate turns tracing off");
        assert!(
            cands[0].size() < c.size(),
            "untraced must be strictly smaller or the shrinker refuses it"
        );
    }

    #[test]
    fn small_case_passes() {
        let c = ServeCase::generate(9, &[2]);
        c.check().unwrap();
    }

    #[test]
    fn small_traced_case_passes() {
        let mut c = ServeCase::generate(9, &[2]);
        c.traced = true;
        c.check().unwrap();
    }
}
