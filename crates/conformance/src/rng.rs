//! A dependency-free deterministic PRNG (SplitMix64).
//!
//! The harness cannot use the workspace's `rand` stand-ins: case
//! generation must be bit-stable across platforms and across refactors
//! of unrelated crates, because a printed seed *is* the failing case.
//! SplitMix64 (Steele, Lea & Flood, OOPSLA'14) is tiny, passes BigCrush
//! for this purpose, and its scrambler doubles as the hash we use to
//! derive per-case seeds from a suite's stream tag.

/// SplitMix64 generator state.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator seeded with `seed` (any value, including 0).
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform value in `0..n`. `n` must be positive. The modulo
    /// bias is ~2⁻⁶⁰ for the tiny ranges the harness draws — irrelevant
    /// here, and the payoff is that one `next_u64` call per draw keeps
    /// the stream layout trivial to reason about.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0)");
        (self.next_u64() % n as u64) as usize
    }

    /// A uniform value in `lo..=hi`.
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo <= hi);
        lo + self.below(hi - lo + 1)
    }

    /// A uniform pick from a non-empty slice.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len())]
    }

    /// True with probability `num/den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.next_u64() % den < num
    }
}

/// Derives an independent stream seed from `(base, index)` — the
/// per-case seed function. One scrambler round is enough to decorrelate
/// consecutive indices.
pub fn mix(base: u64, index: u64) -> u64 {
    SplitMix64::new(base ^ index.wrapping_mul(0xA076_1D64_78BD_642F)).next_u64()
}

/// A stable 64-bit hash of a suite name (FNV-1a), used as that suite's
/// stream tag so different suites draw disjoint case sequences.
pub fn stream_tag(name: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_distinct() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mut c = SplitMix64::new(43);
        assert_ne!(xs[0], c.next_u64());
    }

    #[test]
    fn known_answer() {
        // Reference values of SplitMix64 from seed 1234567: guards the
        // constants against typos, since every stored repro seed in
        // bug reports depends on them.
        let mut r = SplitMix64::new(1234567);
        assert_eq!(r.next_u64(), 0x599E_D017_FB08_FC85);
    }

    #[test]
    fn below_stays_in_range() {
        let mut r = SplitMix64::new(7);
        for _ in 0..1000 {
            assert!(r.below(13) < 13);
            let v = r.range(3, 5);
            assert!((3..=5).contains(&v));
        }
    }

    #[test]
    fn mix_decorrelates_indices() {
        let s: Vec<u64> = (0..100).map(|i| mix(99, i)).collect();
        let unique: std::collections::HashSet<&u64> = s.iter().collect();
        assert_eq!(unique.len(), 100);
    }
}
