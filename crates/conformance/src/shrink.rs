//! Greedy delta-debugging shrinker.
//!
//! Given a failing case, repeatedly try the case's own reduction
//! candidates and commit to the first strictly-smaller one that still
//! fails, until no reduction fails (a local minimum) or the step
//! budget runs out. Everything is deterministic: the same failing case
//! always shrinks to the same minimal case, so replaying a printed
//! seed reproduces not just the failure but the exact shrunk repro.

use crate::case::CaseSpec;

/// Outcome of shrinking a failing case.
#[derive(Clone, Debug)]
pub struct Shrunk<C> {
    /// The locally minimal failing case.
    pub case: C,
    /// Its failure message.
    pub error: String,
    /// Number of committed reduction steps.
    pub steps: usize,
}

/// Upper bound on committed reductions — far above what any real
/// shrink needs; guards against a pathological candidate space.
const MAX_STEPS: usize = 400;

/// Runs `case.check()`, converting a panic into a failure message so
/// the shrinker can keep minimizing cases that crash rather than
/// diverge.
pub fn run_check<C: CaseSpec>(case: &C) -> Result<(), String> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| case.check())) {
        Ok(r) => r,
        Err(payload) => Err(format!("panicked: {}", panic_message(&*payload))),
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Minimizes `case` (known to fail with `error`). Greedy first-fail
/// descent over [`CaseSpec::shrink_candidates`].
pub fn shrink<C: CaseSpec>(case: &C, error: &str) -> Shrunk<C> {
    let mut cur = case.clone();
    let mut cur_err = error.to_string();
    let mut steps = 0;
    'descend: while steps < MAX_STEPS {
        for cand in cur.shrink_candidates() {
            if cand.size() >= cur.size() {
                continue;
            }
            if let Err(e) = run_check(&cand) {
                cur = cand;
                cur_err = e;
                steps += 1;
                continue 'descend;
            }
        }
        break;
    }
    Shrunk {
        case: cur,
        error: cur_err,
        steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy case: a list of numbers that "fails" when it contains
    /// both a multiple of 3 and a multiple of 5.
    #[derive(Clone, Debug)]
    struct Toy(Vec<u64>);

    impl CaseSpec for Toy {
        fn check(&self) -> Result<(), String> {
            let three = self.0.iter().any(|x| x % 3 == 0);
            let five = self.0.iter().any(|x| x % 5 == 0);
            if three && five {
                Err(format!("conflict in {:?}", self.0))
            } else {
                Ok(())
            }
        }
        fn size(&self) -> usize {
            self.0.len()
        }
        fn shrink_candidates(&self) -> Vec<Toy> {
            (0..self.0.len())
                .map(|skip| {
                    Toy(self
                        .0
                        .iter()
                        .enumerate()
                        .filter(|&(i, _)| i != skip)
                        .map(|(_, &x)| x)
                        .collect())
                })
                .collect()
        }
    }

    #[test]
    fn shrinks_to_minimal_conflict() {
        let case = Toy(vec![1, 2, 3, 4, 5, 6, 7, 10, 11]);
        let err = case.check().unwrap_err();
        let s = shrink(&case, &err);
        assert_eq!(s.case.0.len(), 2, "minimal case is one pair: {:?}", s.case);
        assert!(s.case.check().is_err());
        // Deterministic: same input shrinks identically.
        let s2 = shrink(&case, &err);
        assert_eq!(s.case.0, s2.case.0);
    }

    #[test]
    fn panics_are_captured_as_failures() {
        #[derive(Clone, Debug)]
        struct Bomb;
        impl CaseSpec for Bomb {
            fn check(&self) -> Result<(), String> {
                panic!("boom");
            }
            fn size(&self) -> usize {
                1
            }
            fn shrink_candidates(&self) -> Vec<Bomb> {
                Vec::new()
            }
        }
        let e = run_check(&Bomb).unwrap_err();
        assert!(e.contains("boom"), "{e}");
    }
}
