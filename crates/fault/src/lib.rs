//! `mfbc-fault`: seeded, schedulable fault injection for the
//! simulated machine.
//!
//! The paper's target regime (Blue Waters, up to 16k cores) is one
//! where node failures and memory exhaustion are routine. This crate
//! defines the *vocabulary* of failures the simulated machine can
//! inject — it is a dependency-free leaf so `mfbc-machine` (which
//! consumes [`FaultPlan`]s), `mfbc-conformance` (which generates
//! them), and the CLI (which parses them) can all share the types.
//!
//! A [`FaultPlan`] is a set of [`ScheduledFault`]s keyed by the
//! machine's *collective sequence number*: every collective the
//! machine charges advances a counter, and a fault scheduled `at = k`
//! fires on the `k`-th collective (0-based). Three kinds exist, one
//! per recovery strategy the MFBC driver implements:
//!
//! * [`FaultKind::Crash`] — a rank fails permanently; every later
//!   collective whose group contains it returns `RankFailed`. The
//!   driver recovers by shrinking to the surviving ranks and
//!   replanning via the autotuner.
//! * [`FaultKind::Transient`] — a flaky interconnect: once triggered,
//!   every attempted collective fails until the finite `recurrence`
//!   budget is spent. The machine retries internally with bounded
//!   backoff ([`RetryPolicy`]); overflow surfaces as
//!   `CollectiveFailed` and the driver retries the batch.
//! * [`FaultKind::Oom`] — a forced per-rank memory exhaustion,
//!   surfacing as `OutOfMemory`. The driver halves the batch size
//!   and resumes from the checkpoint.
//!
//! The [`sabotage`] module hosts the *result-corruption* seam used by
//! the conformance harness's meta-tests (previously
//! `mfbc_tensor::mm::fault`); it is test-only tooling, not part of
//! the fault model proper.

#![deny(missing_docs)]
#![deny(unsafe_code)]

use std::fmt;

/// One kind of injectable failure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Permanent failure of `rank`: it never participates in a
    /// collective again. Survivable by shrinking the machine.
    Crash {
        /// The rank that dies.
        rank: usize,
    },
    /// Transient collective failure. Once triggered, every attempted
    /// collective fails until `recurrence` failures have been
    /// delivered; the budget is finite so runs always terminate.
    Transient {
        /// Total number of failed collective *attempts* to deliver.
        recurrence: u32,
    },
    /// Forced out-of-memory on `rank`, delivered once.
    Oom {
        /// The rank that (virtually) exhausts its memory budget.
        rank: usize,
    },
}

impl FaultKind {
    /// Short stable name used in trace events and summaries.
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::Crash { .. } => "crash",
            FaultKind::Transient { .. } => "transient",
            FaultKind::Oom { .. } => "oom",
        }
    }

    /// The rank the fault targets, if it targets one.
    pub fn rank(&self) -> Option<usize> {
        match self {
            FaultKind::Crash { rank } | FaultKind::Oom { rank } => Some(*rank),
            FaultKind::Transient { .. } => None,
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::Crash { rank } => write!(f, "crash:{rank}"),
            FaultKind::Transient { recurrence } => write!(f, "transient:{recurrence}"),
            FaultKind::Oom { rank } => write!(f, "oom:{rank}"),
        }
    }
}

/// A fault scheduled to fire at a given collective sequence number.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScheduledFault {
    /// 0-based collective sequence number ("superstep") at which the
    /// fault fires. The fault fires on the first collective whose
    /// sequence number is `>= at`.
    pub at: u64,
    /// What fails.
    pub kind: FaultKind,
}

impl fmt::Display for ScheduledFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.kind, self.at)
    }
}

/// A full fault schedule for one run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// The scheduled faults, in no particular order.
    pub faults: Vec<ScheduledFault>,
}

impl FaultPlan {
    /// The empty (fault-free) plan.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// A plan with a single scheduled fault.
    pub fn single(at: u64, kind: FaultKind) -> FaultPlan {
        FaultPlan {
            faults: vec![ScheduledFault { at, kind }],
        }
    }

    /// Whether the plan schedules anything at all.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Parses a comma-separated fault spec, the `--faults` CLI
    /// grammar: each element is `crash:R@K`, `transient:N@K` or
    /// `oom:R@K`, where `K` is the collective sequence number, `R` a
    /// rank, and `N` a transient recurrence budget. Example:
    /// `crash:2@5,oom:0@40`.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut faults = Vec::new();
        for part in spec.split(',').filter(|s| !s.trim().is_empty()) {
            let part = part.trim();
            let (kind_arg, at) = part
                .split_once('@')
                .ok_or_else(|| format!("fault {part:?}: expected KIND:ARG@SEQ"))?;
            let at: u64 = at
                .parse()
                .map_err(|_| format!("fault {part:?}: bad sequence number {at:?}"))?;
            let (kind, arg) = kind_arg
                .split_once(':')
                .ok_or_else(|| format!("fault {part:?}: expected KIND:ARG@SEQ"))?;
            let kind = match kind {
                "crash" => FaultKind::Crash {
                    rank: parse_num(part, arg)? as usize,
                },
                "transient" => FaultKind::Transient {
                    recurrence: parse_num(part, arg)? as u32,
                },
                "oom" => FaultKind::Oom {
                    rank: parse_num(part, arg)? as usize,
                },
                other => {
                    return Err(format!(
                        "fault {part:?}: unknown kind {other:?} (expected crash, transient or oom)"
                    ))
                }
            };
            if let FaultKind::Transient { recurrence: 0 } = kind {
                return Err(format!("fault {part:?}: transient recurrence must be >= 1"));
            }
            faults.push(ScheduledFault { at, kind });
        }
        Ok(FaultPlan { faults })
    }

    /// Generates a small random fault schedule for a `p`-rank machine
    /// from a seed — the `--fault-seed` CLI path and the conformance
    /// generator both use this. Deterministic in `(seed, p)`.
    pub fn seeded(seed: u64, p: usize) -> FaultPlan {
        let mut s = SplitMix64::new(seed ^ 0xfa17_fa17_fa17_fa17);
        let count = 1 + (s.next() % 2) as usize;
        let mut faults = Vec::new();
        for _ in 0..count {
            let at = s.next() % 24;
            let kind = match s.next() % 3 {
                0 if p >= 2 => FaultKind::Crash {
                    rank: (s.next() as usize) % p,
                },
                1 => FaultKind::Transient {
                    recurrence: 1 + (s.next() % 5) as u32,
                },
                _ => FaultKind::Oom {
                    rank: (s.next() as usize) % p,
                },
            };
            faults.push(ScheduledFault { at, kind });
        }
        FaultPlan { faults }
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, sf) in self.faults.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{sf}")?;
        }
        Ok(())
    }
}

fn parse_num(part: &str, arg: &str) -> Result<u64, String> {
    arg.parse()
        .map_err(|_| format!("fault {part:?}: bad argument {arg:?}"))
}

/// Bounded-retry policy for transient collective failures.
///
/// Two layers consume it. *Inside* the machine, each failed
/// collective attempt charges the flat `backoff_s` modeled seconds of
/// communication time to every rank in the group before retrying, up
/// to `max_attempts` attempts total (the flat charge is pinned by the
/// timeline goldens and stays as-is). *Above* the machine, long-lived
/// callers (the serve engine) wait [`RetryPolicy::backoff_for`]
/// seconds between whole-request attempts — bounded exponential
/// growth from `backoff_s`, capped at `cap_s`, with deterministic
/// downward jitter so coalesced retries decorrelate without ever
/// exceeding the cap.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts per collective (1 = no retry).
    pub max_attempts: u32,
    /// Modeled seconds charged per retry (the backoff interval), and
    /// the base of the exponential schedule.
    pub backoff_s: f64,
    /// Exponential growth factor of [`RetryPolicy::backoff_for`].
    pub multiplier: f64,
    /// Upper bound on any single backoff wait, jitter included.
    pub cap_s: f64,
    /// Jitter fraction in `[0, 1)`: attempt `a` waits uniformly in
    /// `(wait·(1 − jitter), wait]`. Downward-only, so the cap holds
    /// and the wait is strictly positive.
    pub jitter: f64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            backoff_s: 1e-3,
            multiplier: 2.0,
            cap_s: 1.0,
            jitter: 0.5,
        }
    }
}

impl RetryPolicy {
    /// The wait before retry number `attempt` (0-based), in modeled
    /// seconds: `backoff_s · multiplier^attempt`, capped at `cap_s`,
    /// then jittered downward by a deterministic function of
    /// `(attempt, seed)` — the same `(attempt, seed)` pair always
    /// produces the same wait, the wait never exceeds `cap_s`, and it
    /// is strictly positive whenever `backoff_s > 0`.
    pub fn backoff_for(&self, attempt: u32, seed: u64) -> f64 {
        let mut wait = self.backoff_s;
        // Multiply iteratively (rather than powf) so the schedule is
        // bit-reproducible across platforms and saturates cleanly.
        for _ in 0..attempt {
            wait *= self.multiplier;
            if wait >= self.cap_s {
                break;
            }
        }
        wait = wait.min(self.cap_s);
        let jitter = self.jitter.clamp(0.0, 0.999_999);
        if jitter <= 0.0 {
            return wait;
        }
        // One PRNG draw per (attempt, seed): mix the attempt into the
        // stream so consecutive attempts decorrelate under one seed.
        let mut rng = SplitMix64::new(seed ^ (((attempt as u64) << 32) | 0x6a17_7e12));
        // u ∈ [0, 1): 53 uniform mantissa bits.
        let u = (rng.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        // Downward-only: wait · (1 − jitter·u) ∈ (wait·(1−jitter), wait].
        wait * (1.0 - jitter * u)
    }
}

/// Consecutive-failure circuit breaker for the serve engine's batch
/// loop: after `threshold` consecutive failures the breaker *opens*
/// (callers stop attempting work and serve stale state), stays open
/// for `cooldown` ticks, then admits a single probe (*half-open*). A
/// success while half-open closes it; a failure re-opens it for
/// another full cooldown.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CircuitBreaker {
    /// Consecutive failures that trip the breaker open.
    pub threshold: u32,
    /// Ticks (calls to [`CircuitBreaker::allows`]) an open breaker
    /// waits before admitting a half-open probe.
    pub cooldown: u32,
    state: BreakerState,
    consecutive_failures: u32,
    cooldown_left: u32,
    trips: u64,
}

/// Observable state of a [`CircuitBreaker`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Normal operation: work is attempted.
    Closed,
    /// Tripped: work is refused until the cooldown elapses.
    Open,
    /// Cooldown elapsed: exactly one probe attempt is admitted.
    HalfOpen,
}

impl CircuitBreaker {
    /// A closed breaker that trips after `threshold` consecutive
    /// failures and cools down for `cooldown` ticks.
    pub fn new(threshold: u32, cooldown: u32) -> CircuitBreaker {
        CircuitBreaker {
            threshold: threshold.max(1),
            cooldown,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            cooldown_left: 0,
            trips: 0,
        }
    }

    /// Whether an attempt may proceed right now. Each call on an open
    /// breaker ticks the cooldown; the call on which it reaches zero
    /// half-opens the breaker and admits the probe.
    pub fn allows(&mut self) -> bool {
        match self.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open => {
                if self.cooldown_left > 0 {
                    self.cooldown_left -= 1;
                }
                if self.cooldown_left == 0 {
                    self.state = BreakerState::HalfOpen;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Records a successful attempt: closes the breaker and clears
    /// the failure streak.
    pub fn record_success(&mut self) {
        self.state = BreakerState::Closed;
        self.consecutive_failures = 0;
    }

    /// Records a failed attempt: a half-open probe failure re-opens
    /// immediately; otherwise the streak grows and trips the breaker
    /// at `threshold`.
    pub fn record_failure(&mut self) {
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
        let trip = self.state == BreakerState::HalfOpen
            || (self.state == BreakerState::Closed && self.consecutive_failures >= self.threshold);
        if trip {
            self.state = BreakerState::Open;
            self.cooldown_left = self.cooldown;
            self.trips += 1;
        }
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// How many times the breaker has tripped open.
    pub fn trips(&self) -> u64 {
        self.trips
    }
}

/// Counters describing what the fault machinery did during a run.
/// The machine fills the injection-side fields; the recovering driver
/// adds its own (replans, checkpoints restored, wasted time) on top —
/// see `RecoveryStats` in `mfbc-core`.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FaultStats {
    /// Scheduled faults that actually fired.
    pub faults_injected: u64,
    /// Machine-internal retry attempts after transient failures.
    pub retries: u64,
    /// Modeled seconds spent in retry backoff.
    pub backoff_s: f64,
}

/// Minimal SplitMix64 for seeded schedule generation (kept local so
/// the crate stays dependency-free).
struct SplitMix64(u64);

impl SplitMix64 {
    fn new(seed: u64) -> SplitMix64 {
        SplitMix64(seed)
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

pub mod sabotage {
    //! Thread-local *result corruption* seam for harness meta-tests.
    //!
    //! This is not part of the fault model: it exists so the
    //! conformance suite can prove that the differential harness
    //! *catches, shrinks and replays* a seeded wrong-answer bug.
    //! Production code paths only consult [`armed_for`], which is a
    //! thread-local read that is `None` outside those meta-tests.

    use std::cell::RefCell;

    thread_local! {
        static ARMED: RefCell<Option<String>> = const { RefCell::new(None) };
    }

    /// Arms result corruption for every SpGEMM whose plan label
    /// starts with `prefix`, until the returned guard drops.
    pub fn arm(prefix: &str) -> SabotageGuard {
        ARMED.with(|a| *a.borrow_mut() = Some(prefix.to_string()));
        SabotageGuard(())
    }

    /// Whether corruption is armed for the given plan label.
    pub fn armed_for(label: &str) -> bool {
        ARMED.with(|a| {
            a.borrow()
                .as_ref()
                .is_some_and(|prefix| label.starts_with(prefix.as_str()))
        })
    }

    /// Disarms the seam when dropped.
    pub struct SabotageGuard(());

    impl Drop for SabotageGuard {
        fn drop(&mut self) {
            ARMED.with(|a| *a.borrow_mut() = None);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip() {
        let plan = FaultPlan::parse("crash:2@5,transient:3@7, oom:0@40").unwrap();
        assert_eq!(
            plan.faults,
            vec![
                ScheduledFault {
                    at: 5,
                    kind: FaultKind::Crash { rank: 2 }
                },
                ScheduledFault {
                    at: 7,
                    kind: FaultKind::Transient { recurrence: 3 }
                },
                ScheduledFault {
                    at: 40,
                    kind: FaultKind::Oom { rank: 0 }
                },
            ]
        );
        let rendered = plan.to_string();
        assert_eq!(FaultPlan::parse(&rendered).unwrap(), plan);
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in [
            "crash:2",
            "crash@5",
            "meteor:1@2",
            "crash:x@5",
            "crash:1@y",
            "transient:0@3",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad:?} should be rejected");
        }
        assert!(FaultPlan::parse("").unwrap().is_empty());
    }

    #[test]
    fn seeded_is_deterministic_and_valid() {
        for seed in 0..64u64 {
            for p in [1usize, 2, 8, 16] {
                let a = FaultPlan::seeded(seed, p);
                let b = FaultPlan::seeded(seed, p);
                assert_eq!(a, b);
                assert!(!a.is_empty());
                for sf in &a.faults {
                    if let Some(r) = sf.kind.rank() {
                        assert!(r < p);
                    }
                    if let FaultKind::Crash { .. } = sf.kind {
                        assert!(p >= 2, "no crash faults on a 1-rank machine");
                    }
                    if let FaultKind::Transient { recurrence } = sf.kind {
                        assert!(recurrence >= 1);
                    }
                }
            }
        }
    }

    #[test]
    fn sabotage_guard_scopes_arming() {
        assert!(!sabotage::armed_for("3d(C/AB,2x2x2)"));
        {
            let _g = sabotage::arm("3d(C/AB");
            assert!(sabotage::armed_for("3d(C/AB,2x2x2)"));
            assert!(!sabotage::armed_for("2d(AB,4x4)"));
        }
        assert!(!sabotage::armed_for("3d(C/AB,2x2x2)"));
    }

    #[test]
    fn retry_policy_default_is_bounded() {
        let p = RetryPolicy::default();
        assert!(p.max_attempts >= 1);
        assert!(p.backoff_s > 0.0);
        assert!(p.multiplier >= 1.0);
        assert!(p.cap_s >= p.backoff_s);
        assert!((0.0..1.0).contains(&p.jitter));
    }

    #[test]
    fn backoff_schedule_is_deterministic_positive_and_capped() {
        let p = RetryPolicy::default();
        for seed in [0u64, 1, 0x5eed, u64::MAX] {
            for attempt in 0..64 {
                let a = p.backoff_for(attempt, seed);
                let b = p.backoff_for(attempt, seed);
                assert_eq!(a.to_bits(), b.to_bits(), "nondeterministic wait");
                assert!(a > 0.0, "attempt {attempt} seed {seed}: wait {a} <= 0");
                assert!(a <= p.cap_s, "attempt {attempt} seed {seed}: {a} > cap");
            }
        }
    }

    #[test]
    fn backoff_grows_geometrically_without_jitter() {
        let p = RetryPolicy {
            jitter: 0.0,
            cap_s: f64::INFINITY,
            ..RetryPolicy::default()
        };
        for attempt in 0..10u32 {
            let want = p.backoff_s * p.multiplier.powi(attempt as i32);
            let got = p.backoff_for(attempt, 42);
            assert!((got - want).abs() <= want * 1e-12, "{got} vs {want}");
        }
    }

    #[test]
    fn backoff_jitter_decorrelates_attempts_and_seeds() {
        let p = RetryPolicy::default();
        // Same attempt, different seeds → different waits; same seed,
        // consecutive capped attempts → different waits (the attempt
        // index is mixed into the stream).
        assert_ne!(p.backoff_for(3, 1).to_bits(), p.backoff_for(3, 2).to_bits());
        let late_a = p.backoff_for(40, 7); // both capped pre-jitter
        let late_b = p.backoff_for(41, 7);
        assert_ne!(late_a.to_bits(), late_b.to_bits());
    }

    #[test]
    fn breaker_trips_after_threshold_and_recovers_via_probe() {
        let mut b = CircuitBreaker::new(3, 2);
        assert_eq!(b.state(), BreakerState::Closed);
        b.record_failure();
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Closed);
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 1);
        // Cooldown: first tick refused, second admits the probe.
        assert!(!b.allows());
        assert!(b.allows());
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.allows());
    }

    #[test]
    fn breaker_probe_failure_reopens_immediately() {
        let mut b = CircuitBreaker::new(2, 1);
        b.record_failure();
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert!(b.allows(), "cooldown 1 admits the probe on the first tick");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open, "probe failure reopens");
        assert_eq!(b.trips(), 2);
    }

    #[test]
    fn breaker_success_clears_the_failure_streak() {
        let mut b = CircuitBreaker::new(2, 1);
        b.record_failure();
        b.record_success();
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Closed, "streak was reset");
    }
}
