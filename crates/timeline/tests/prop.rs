//! Property tests over randomized machine runs.
//!
//! Each case drives a live [`Machine`] through a random schedule of
//! compute charges and (sub)group collectives under a scoped
//! [`TimelineBuilder`], then checks the analyzer's core invariants:
//!
//! * the replica cost meters agree with the machine **bit-for-bit**;
//! * the critical path folds to the makespan **bit-for-bit**;
//! * the identity what-if reproduces the makespan **bit-for-bit**;
//! * every shrinking edit (scales in `[0, 1]`, `zero:*`, `overlap`)
//!   is monotone non-increasing;
//! * the `timeline.json` document round-trips exactly.
//!
//! Uses a local SplitMix64 so the crate stays dependency-free.

use mfbc_machine::{CollectiveKind, Group, Machine, MachineSpec};
use mfbc_timeline::{
    analyze, critical_path, doc, evaluate, parse_timeline, report, to_json, Timeline,
    TimelineBuilder, WhatIf,
};
use mfbc_trace::scoped;
use std::sync::Arc;

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

const KINDS: [CollectiveKind; 9] = [
    CollectiveKind::Broadcast,
    CollectiveKind::Reduce,
    CollectiveKind::Allreduce,
    CollectiveKind::Scatter,
    CollectiveKind::Gather,
    CollectiveKind::Allgather,
    CollectiveKind::AllToAll,
    CollectiveKind::SparseReduce,
    CollectiveKind::PointToPoint,
];

/// Drives the seed-determined random schedule on `machine` under a
/// scoped timeline builder (the schedule depends only on `seed` and
/// `p`, so two machines driven with the same seed see the identical
/// event stream).
fn drive(seed: u64, p: usize, spec: MachineSpec) -> (Timeline, Machine) {
    let mut rng = Rng(seed);
    let builder = Arc::new(TimelineBuilder::new(spec.clone()));
    let machine = Machine::new(spec);
    scoped(builder.clone(), || {
        let steps = 5 + rng.below(25);
        for _ in 0..steps {
            if rng.below(3) == 0 {
                let rank = rng.below(p as u64) as usize;
                machine.charge_compute(rank, 1 + rng.below(5000));
            } else {
                let kind = KINDS[rng.below(KINDS.len() as u64) as usize];
                let group = if rng.below(2) == 0 || p == 2 {
                    machine.world()
                } else {
                    // A random proper subgroup of size 2..p.
                    let size = 2 + rng.below(p as u64 - 1) as usize;
                    let mut ranks: Vec<usize> = (0..p).collect();
                    for i in (1..ranks.len()).rev() {
                        let j = rng.below(i as u64 + 1) as usize;
                        ranks.swap(i, j);
                    }
                    ranks.truncate(size);
                    Group::new(ranks).unwrap()
                };
                machine
                    .charge_collective(&group, kind, rng.below(1 << 20))
                    .unwrap();
            }
        }
    });
    (builder.finish(), machine)
}

/// Seed-determined spec (mixed overlap modes: `test` is serialized,
/// `gemini`/`aries` are overlapped by default).
fn random_spec(seed: u64) -> (usize, MachineSpec) {
    let mut rng = Rng(seed ^ 0x5eed_5eed);
    let p = 2 + rng.below(5) as usize; // 2..=6 ranks
    let spec = match rng.below(3) {
        0 => MachineSpec::test(p),
        1 => MachineSpec::gemini(p),
        _ => MachineSpec::aries(p),
    };
    (p, spec)
}

/// Drives a random schedule and returns the sealed timeline plus the
/// machine it mirrors.
fn random_run(seed: u64) -> (Timeline, Machine) {
    let (p, spec) = random_spec(seed);
    drive(seed, p, spec)
}

#[test]
fn replica_meters_match_machine_bitwise() {
    for seed in 0..40 {
        let (tl, machine) = random_run(seed);
        let problems = tl.validate_against(&machine);
        assert!(problems.is_empty(), "seed {seed}: {problems:?}");
    }
}

#[test]
fn critical_path_sums_to_makespan_bitwise() {
    for seed in 0..40 {
        let (tl, _machine) = random_run(seed);
        let path = critical_path(&tl);
        assert_eq!(
            path.sum_s().to_bits(),
            tl.makespan_s().to_bits(),
            "seed {seed}: path {:?} != makespan {:?}",
            path.sum_s(),
            tl.makespan_s()
        );
        // The chain is causally ordered.
        for pair in path.segments.windows(2) {
            assert!(
                pair[0].node < pair[1].node,
                "seed {seed}: path not in stream order"
            );
        }
    }
}

#[test]
fn identity_what_if_reproduces_makespan_bitwise() {
    for seed in 0..40 {
        let (tl, _machine) = random_run(seed);
        let r = report(&tl, &WhatIf::identity());
        assert_eq!(
            r.makespan_s.to_bits(),
            tl.makespan_s().to_bits(),
            "seed {seed}"
        );
        assert_eq!(r.baseline_s.to_bits(), tl.makespan_s().to_bits());
    }
}

#[test]
fn every_shrinking_edit_is_monotone_non_increasing() {
    for seed in 0..25 {
        let (tl, _machine) = random_run(seed);
        let base = tl.makespan_s();
        let mut rng = Rng(seed ^ 0xdead_beef);
        let mut edits = vec![WhatIf {
            overlap: true,
            ..WhatIf::identity()
        }];
        for kind in KINDS {
            edits.push(WhatIf {
                zero_kind: Some(kind.name().to_string()),
                ..WhatIf::identity()
            });
        }
        for _ in 0..10 {
            edits.push(WhatIf {
                alpha_scale: rng.below(101) as f64 / 100.0,
                beta_scale: rng.below(101) as f64 / 100.0,
                gamma_scale: rng.below(101) as f64 / 100.0,
                overlap: rng.below(2) == 1,
                zero_kind: None,
                // `serialize` is the one growing edit — never sampled
                // here; it has its own bitwise identity test below.
                serialize: false,
            });
        }
        for edit in edits {
            let edited = evaluate(&tl, &edit);
            assert!(
                edited <= base,
                "seed {seed}: edit {} raised makespan {edited:?} > {base:?}",
                edit.label()
            );
        }
    }
}

/// The same schedule run twice — once serialized, once overlapped —
/// must satisfy: overlapped makespan ≤ serialized makespan; the
/// `overlap` what-if evaluated on the *serialized* run predicts the
/// real overlapped run **bit-for-bit** (same recurrence, same event
/// stream, same anchors); and both runs validate against their
/// machines with identical meters.
#[test]
fn overlapped_run_never_slower_and_matches_serialized_what_if_bitwise() {
    for seed in 0..40 {
        let (p, spec) = random_spec(seed);
        let (ser_tl, ser_m) = drive(seed, p, spec.clone().with_overlap(false));
        let (ovl_tl, ovl_m) = drive(seed, p, spec.with_overlap(true));
        assert!(ser_tl.validate_against(&ser_m).is_empty(), "seed {seed}");
        assert!(ovl_tl.validate_against(&ovl_m).is_empty(), "seed {seed}");
        // Meters are mode-independent: both replicas carry the same
        // per-rank comm/comp work.
        assert_eq!(ser_tl.alive_costs(), ovl_tl.alive_costs(), "seed {seed}");
        assert!(
            ovl_tl.makespan_s() <= ser_tl.makespan_s(),
            "seed {seed}: overlapped {:?} > serialized {:?}",
            ovl_tl.makespan_s(),
            ser_tl.makespan_s()
        );
        let predicted = evaluate(
            &ser_tl,
            &WhatIf {
                overlap: true,
                ..WhatIf::identity()
            },
        );
        assert_eq!(
            predicted.to_bits(),
            ovl_tl.makespan_s().to_bits(),
            "seed {seed}: overlap what-if {predicted:?} != real overlapped run {:?}",
            ovl_tl.makespan_s()
        );
        // The `serialize` what-if on the *overlapped* run recovers the
        // real serialized makespan bit-for-bit (inverse of `overlap`),
        // and on the serialized run it is the identity.
        let re_serialized = evaluate(
            &ovl_tl,
            &WhatIf {
                serialize: true,
                ..WhatIf::identity()
            },
        );
        assert_eq!(
            re_serialized.to_bits(),
            ser_tl.makespan_s().to_bits(),
            "seed {seed}: serialize what-if {re_serialized:?} != real serialized run {:?}",
            ser_tl.makespan_s()
        );
        let ser_identity = evaluate(
            &ser_tl,
            &WhatIf {
                serialize: true,
                ..WhatIf::identity()
            },
        );
        assert_eq!(ser_identity.to_bits(), ser_tl.makespan_s().to_bits());
        // The `overlap` what-if on the already-overlapped run is the
        // bit-exact identity.
        let ovl_identity = evaluate(
            &ovl_tl,
            &WhatIf {
                overlap: true,
                ..WhatIf::identity()
            },
        );
        assert_eq!(ovl_identity.to_bits(), ovl_tl.makespan_s().to_bits());
        // The machine's own clocks agree with both replays.
        assert_eq!(
            ovl_m.makespan_s().to_bits(),
            ovl_tl.makespan_s().to_bits(),
            "seed {seed}"
        );
        // The critical path still folds bit-exactly in overlap mode.
        let path = critical_path(&ovl_tl);
        assert_eq!(
            path.sum_s().to_bits(),
            ovl_tl.makespan_s().to_bits(),
            "seed {seed}"
        );
    }
}

#[test]
fn timeline_json_round_trips_exactly() {
    for seed in 0..15 {
        let (tl, _machine) = random_run(seed);
        let an = analyze(&tl);
        let reports = vec![
            report(&tl, &WhatIf::identity()),
            report(
                &tl,
                &WhatIf {
                    overlap: true,
                    ..WhatIf::identity()
                },
            ),
        ];
        let d = doc(&tl, &an, &reports);
        let text = to_json(&d);
        let parsed = parse_timeline(&text).expect("parse timeline.json");
        assert_eq!(parsed, d, "seed {seed}: round-trip mismatch");
        // Serialize-again equality makes the bit-exactness visible at
        // the byte level too.
        assert_eq!(to_json(&parsed), text, "seed {seed}");
    }
}

#[test]
fn what_if_parse_accepts_the_documented_grammar() {
    let w = WhatIf::parse("overlap, beta:0.5 ,alpha:0").unwrap();
    assert!(w.overlap);
    assert_eq!(w.beta_scale, 0.5);
    assert_eq!(w.alpha_scale, 0.0);
    assert_eq!(w.gamma_scale, 1.0);
    let z = WhatIf::parse("zero:allgather").unwrap();
    assert_eq!(z.zero_kind.as_deref(), Some("allgather"));
    assert!(WhatIf::parse("").unwrap().is_identity());
    assert!(WhatIf::parse("warp:9").is_err());
    assert!(WhatIf::parse("beta:-1").is_err());
    assert!(WhatIf::parse("beta:fast").is_err());
}
