//! Exporter agreement: one run, observed simultaneously by the PR 5
//! profiler and the timeline builder, must produce per-rank numbers
//! that agree **bit-for-bit** across every exporter — profile.json,
//! the profiler's HTML report, Prometheus text, timeline.json, and
//! the timeline's HTML Gantt (via its exact `data-*` attributes).
//!
//! Extends the profile crate's exporter-agreement test with the
//! timeline as a fourth independent observer.

use mfbc_machine::{CollectiveKind, Machine, MachineSpec};
use mfbc_profile::export::{parse_rank_rows, profile_to_json};
use mfbc_profile::{html, prometheus, Profiler};
use mfbc_timeline::{
    analyze, doc, parse_html_rank_rows, parse_timeline, register_metrics, to_html, to_json,
    TimelineBuilder,
};
use mfbc_trace::{scoped, TeeRecorder};
use std::sync::Arc;

#[test]
fn timeline_and_profile_exporters_agree_bitwise() {
    let spec = MachineSpec::gemini(4);
    let profiler = Arc::new(Profiler::new());
    let builder = Arc::new(TimelineBuilder::new(spec.clone()));
    let machine = Machine::new(spec);
    let tee = Arc::new(TeeRecorder::over(vec![
        profiler.clone() as Arc<dyn mfbc_trace::Recorder>,
        builder.clone() as Arc<dyn mfbc_trace::Recorder>,
    ]));
    scoped(tee, || {
        machine.charge_compute(0, 1_000_003);
        machine
            .charge_collective(&machine.world(), CollectiveKind::Allgather, 123_457)
            .unwrap();
        machine.charge_compute(2, 777_777);
        machine
            .charge_collective(&machine.world(), CollectiveKind::Allreduce, 999)
            .unwrap();
        machine.charge_compute(3, 41);
        machine
            .charge_collective(&machine.world(), CollectiveKind::AllToAll, 65_536)
            .unwrap();
    });

    let profile = profiler.finish(&machine);
    let tl = builder.finish();
    assert_eq!(tl.validate_against(&machine), Vec::<String>::new());
    let an = analyze(&tl);

    // 1. timeline.json per-rank rows == profile.json per-rank rows,
    //    both parsed back from their serialized text.
    let tl_doc = parse_timeline(&to_json(&doc(&tl, &an, &[]))).expect("parse timeline.json");
    let profile_rows =
        parse_rank_rows(&profile_to_json(&profile)).expect("parse profile.json rank rows");
    assert_eq!(tl_doc.ranks.len(), profile_rows.len());
    for ((rank, comm, comp, _peak), row) in profile_rows.iter().zip(&tl_doc.ranks) {
        assert_eq!(row.lane, *rank as u64);
        assert_eq!(row.comm_s.to_bits(), comm.to_bits(), "rank {rank} comm_s");
        assert_eq!(row.comp_s.to_bits(), comp.to_bits(), "rank {rank} comp_s");
    }

    // 2. The profiler's own HTML rows agree with the timeline rows.
    let html_rows = html::parse_rank_rows(&html::render(&profile));
    assert_eq!(html_rows.len(), tl_doc.ranks.len());
    for ((rank, comm, comp, _bytes), row) in html_rows.iter().zip(&tl_doc.ranks) {
        assert_eq!(row.lane, *rank as u64);
        assert_eq!(row.comm_s.to_bits(), comm.to_bits(), "html rank {rank}");
        assert_eq!(row.comp_s.to_bits(), comp.to_bits(), "html rank {rank}");
    }

    // 3. The timeline's Gantt HTML carries the same exact values in
    //    its data-* attributes.
    let gantt_rows = parse_html_rank_rows(&to_html(&tl, &an));
    assert_eq!(gantt_rows.len(), tl_doc.ranks.len());
    for ((rank, clock, comm, comp), row) in gantt_rows.iter().zip(&tl_doc.ranks) {
        assert_eq!(row.lane, *rank as u64);
        assert_eq!(row.clock_s.to_bits(), clock.to_bits(), "gantt rank {rank}");
        assert_eq!(row.comm_s.to_bits(), comm.to_bits(), "gantt rank {rank}");
        assert_eq!(row.comp_s.to_bits(), comp.to_bits(), "gantt rank {rank}");
    }

    // 4. The registry gauges render the same makespan/share the JSON
    //    document carries, through the shared exact formatter.
    register_metrics(profiler.registry(), &tl, &an);
    let prom = prometheus::render(profiler.registry());
    let expect_makespan = format!(
        "mfbc_timeline_makespan_seconds {}",
        mfbc_profile::jsonio::num(tl_doc.makespan_s)
    );
    let expect_share = format!(
        "mfbc_timeline_critical_comm_share {}",
        mfbc_profile::jsonio::num(tl_doc.comm_share)
    );
    assert!(
        prom.contains(&expect_makespan),
        "prometheus text missing `{expect_makespan}`"
    );
    assert!(
        prom.contains(&expect_share),
        "prometheus text missing `{expect_share}`"
    );

    // 5. And the critical path still folds to that same makespan.
    assert_eq!(
        an.path.sum_s().to_bits(),
        tl_doc.makespan_s.to_bits(),
        "critical path must sum bit-exactly to the exported makespan"
    );
}

#[test]
fn serve_rounds_round_trip_through_json_and_html() {
    // Synthesize the serve provenance stream directly (the serve
    // engine emits exactly these events) so the timeline crate pins
    // its own round-trip without a dependency on mfbc-serve.
    let spec = MachineSpec::gemini(2);
    let builder = Arc::new(TimelineBuilder::new(spec.clone()));
    let machine = Machine::new(spec);
    scoped(builder.clone(), || {
        mfbc_trace::emit(|| mfbc_trace::TraceEvent::RequestAdmitted {
            request_id: 1,
            query: "full",
            deadline_s: 250.0,
            queue_depth: 1,
        });
        mfbc_trace::emit(|| mfbc_trace::TraceEvent::RoundStart {
            round: 1,
            requests: 2,
            budget_s: 250.0,
            store_version: 0,
        });
        machine.charge_compute(0, 1_000_003);
        machine
            .charge_collective(&machine.world(), CollectiveKind::Allreduce, 4_096)
            .unwrap();
        mfbc_trace::emit(|| mfbc_trace::TraceEvent::DegradeDecision {
            round: 1,
            rung: "approx",
            reason: "budget",
            budget_s: 250.0,
            spent_s: 10.0,
            est_batch_s: 300.0,
            approx_k: 8,
            store_version: 0,
        });
        mfbc_trace::emit(|| mfbc_trace::TraceEvent::RoundEnd {
            round: 1,
            responses: 2,
            elapsed_s: 10.0,
            store_version: 1,
        });
        // An unbounded round that advances nothing: exercises the
        // `None` budget and the zero-node attribution.
        mfbc_trace::emit(|| mfbc_trace::TraceEvent::RoundStart {
            round: 2,
            requests: 1,
            budget_s: f64::INFINITY,
            store_version: 1,
        });
        mfbc_trace::emit(|| mfbc_trace::TraceEvent::DegradeDecision {
            round: 2,
            rung: "exact",
            reason: "complete",
            budget_s: f64::INFINITY,
            spent_s: 0.0,
            est_batch_s: 0.0,
            approx_k: 0,
            store_version: 1,
        });
        mfbc_trace::emit(|| mfbc_trace::TraceEvent::RoundEnd {
            round: 2,
            responses: 1,
            elapsed_s: 0.0,
            store_version: 1,
        });
    });

    let tl = builder.finish();
    assert_eq!(tl.validate_against(&machine), Vec::<String>::new());
    assert_eq!(tl.rounds.len(), 2);
    assert!(
        tl.rounds[0].nodes > 0,
        "machine activity inside round 1 must be attributed to it"
    );
    assert_eq!(tl.rounds[0].budget_s, Some(250.0));
    assert_eq!(tl.rounds[1].budget_s, None, "infinite budget maps to None");
    assert_eq!(tl.rounds[1].nodes, 0);

    let an = analyze(&tl);
    let d = doc(&tl, &an, &[]);
    assert_eq!(d.version, 3, "rounds arrived with format version 3");
    let json = to_json(&d);
    let parsed = parse_timeline(&json).expect("parse timeline.json");
    assert_eq!(
        parsed.rounds, d.rounds,
        "rounds array must survive the JSON round trip"
    );
    for (a, b) in parsed.rounds.iter().zip(&d.rounds) {
        assert_eq!(a.start_s.to_bits(), b.start_s.to_bits(), "round start_s");
        assert_eq!(a.end_s.to_bits(), b.end_s.to_bits(), "round end_s");
    }
    assert_eq!(
        to_json(&parsed),
        json,
        "parse -> re-serialize must be byte-identical"
    );

    let html = to_html(&tl, &an);
    assert!(html.contains("<div class=\"kv\">serve rounds</div>"));
    assert!(html.contains("round 1 approx (budget) 2 req → 2 resp"));
    assert!(html.contains("<h2>Serve rounds</h2>"));
    assert!(html.contains("data-round=\"1\""));
    assert!(html.contains("data-round=\"2\""));
}
