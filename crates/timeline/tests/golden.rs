//! Golden critical-path test on a hand-computable two-rank machine.
//!
//! Under `MachineSpec::test(2)` (α = β = γ = 1) every modeled time is
//! a small integer, so the whole causal schedule can be verified by
//! hand, segment by segment:
//!
//! | op                      | dt | rank 0 clock | rank 1 clock |
//! |-------------------------|----|--------------|--------------|
//! | compute(rank 0, 3 ops)  |  3 |            3 |            0 |
//! | broadcast(world, 10 B)  | 22 |           25 |           25 |
//! | compute(rank 1, 5 ops)  |  5 |           25 |           30 |
//! | allgather(world, 4 B)   |  5 |           35 |           35 |
//!
//! broadcast dt = 2·bytes·β + 2·lg p·α = 20 + 2; allgather dt =
//! bytes·β + lg p·α = 4 + 1. The critical path is the chain
//! compute(0) → broadcast → compute(1) → allgather, and its durations
//! must fold to the makespan 35 bit-for-bit.

use mfbc_machine::{CollectiveKind, Machine, MachineSpec};
use mfbc_timeline::{analyze, critical_path, evaluate, TimelineBuilder, WhatIf};
use mfbc_trace::scoped;
use std::sync::Arc;

/// Runs the golden schedule on a live machine under a scoped
/// timeline builder and returns the sealed timeline plus the machine.
fn golden_run() -> (mfbc_timeline::Timeline, Machine) {
    let spec = MachineSpec::test(2);
    let builder = Arc::new(TimelineBuilder::new(spec.clone()));
    let machine = Machine::new(spec);
    scoped(builder.clone(), || {
        machine.charge_compute(0, 3);
        machine
            .charge_collective(&machine.world(), CollectiveKind::Broadcast, 10)
            .unwrap();
        machine.charge_compute(1, 5);
        machine
            .charge_collective(&machine.world(), CollectiveKind::Allgather, 4)
            .unwrap();
    });
    (builder.finish(), machine)
}

#[test]
fn golden_chain_segment_by_segment() {
    let (tl, machine) = golden_run();
    assert_eq!(tl.makespan_s(), 35.0);
    assert_eq!(tl.validate_against(&machine), Vec::<String>::new());

    let path = critical_path(&tl);
    let got: Vec<(&str, f64, f64)> = path
        .segments
        .iter()
        .map(|s| (s.label.as_str(), s.start_s, s.dt_s))
        .collect();
    assert_eq!(
        got,
        vec![
            ("compute", 0.0, 3.0),
            ("broadcast", 3.0, 22.0),
            ("compute", 25.0, 5.0),
            ("allgather", 30.0, 5.0),
        ]
    );
    // The chain crosses ranks: the gating compute segments are on
    // rank 0 then rank 1.
    assert_eq!(path.segments[0].lane, 0);
    assert_eq!(path.segments[2].lane, 1);
}

#[test]
fn golden_sum_is_bit_exact() {
    let (tl, _machine) = golden_run();
    let path = critical_path(&tl);
    assert_eq!(path.sum_s().to_bits(), tl.makespan_s().to_bits());
    assert_eq!(path.makespan_s.to_bits(), tl.makespan_s().to_bits());
}

#[test]
fn golden_bottlenecks_rank_broadcast_first() {
    let (tl, _machine) = golden_run();
    let an = analyze(&tl);
    let table: Vec<(&str, f64, u64)> = an
        .bottlenecks
        .iter()
        .map(|b| (b.label.as_str(), b.seconds, b.count))
        .collect();
    assert_eq!(
        table,
        vec![
            ("broadcast", 22.0, 1),
            ("compute", 8.0, 2),
            ("allgather", 5.0, 1)
        ]
    );
    // Communication gates 27 of 35 seconds.
    assert_eq!(an.comm_share(), 27.0 / 35.0);
}

#[test]
fn golden_identity_what_if_is_bit_exact() {
    let (tl, _machine) = golden_run();
    let identity = WhatIf::identity();
    assert_eq!(
        evaluate(&tl, &identity).to_bits(),
        tl.makespan_s().to_bits()
    );
}

#[test]
fn golden_overlap_bound_is_hand_computable() {
    let (tl, _machine) = golden_run();
    // Overlapped accounting: the broadcast issues at t=0 (last sync
    // point) and its transfer runs under rank 0's compute, but its
    // latency (2·lg 2·α = 2) stays on the path: completion at
    // max(3+2, 0+22) = 22; rank 1 then computes to 27; the allgather
    // issues at 22, latency 1, so the group resumes at
    // max(27+1, 22+5) = 28.
    let overlap = WhatIf {
        overlap: true,
        ..WhatIf::identity()
    };
    assert_eq!(evaluate(&tl, &overlap), 28.0);
}

/// Runs the same golden schedule under overlapped accounting
/// (`with_overlap(true)`): the live machine clocks, the timeline
/// replay, the critical-path fold, and the `overlap` what-if (now the
/// identity) must all agree bit-for-bit at the hand-computed 28.
#[test]
fn golden_overlapped_run_matches_whatif_and_folds_bit_exactly() {
    let spec = MachineSpec::test(2).with_overlap(true);
    let builder = Arc::new(TimelineBuilder::new(spec.clone()));
    let machine = Machine::new(spec);
    scoped(builder.clone(), || {
        machine.charge_compute(0, 3);
        machine
            .charge_collective(&machine.world(), CollectiveKind::Broadcast, 10)
            .unwrap();
        machine.charge_compute(1, 5);
        machine
            .charge_collective(&machine.world(), CollectiveKind::Allgather, 4)
            .unwrap();
    });
    let tl = builder.finish();
    assert_eq!(tl.makespan_s(), 28.0);
    assert_eq!(machine.makespan_s().to_bits(), tl.makespan_s().to_bits());
    // Meters are mode-independent: the replica still validates.
    assert_eq!(tl.validate_against(&machine), Vec::<String>::new());

    // The broadcast gates on its transfer branch (22 ≥ 3+2) while the
    // allgather gates on its latency branch (27+1 ≥ 22+5), so the
    // chain is broadcast (addend 22, chained from t=0 where it was
    // issued) → compute (5) → allgather (α = 1), folding to 28.
    let path = critical_path(&tl);
    assert_eq!(path.sum_s().to_bits(), tl.makespan_s().to_bits());
    let got: Vec<(&str, f64)> = path
        .segments
        .iter()
        .map(|s| (s.label.as_str(), s.dt_s))
        .collect();
    assert_eq!(
        got,
        vec![("broadcast", 22.0), ("compute", 5.0), ("allgather", 1.0)]
    );
    // Gating comm seconds drop from 27 (serialized) to 23: the
    // allgather's bandwidth term hid under rank 1's compute.
    assert_eq!(path.comm_s(), 23.0);

    // The identity edit and the `overlap` edit are both bit-exact on
    // an already-overlapped run.
    assert_eq!(
        evaluate(&tl, &WhatIf::identity()).to_bits(),
        tl.makespan_s().to_bits()
    );
    let overlap = WhatIf {
        overlap: true,
        ..WhatIf::identity()
    };
    assert_eq!(evaluate(&tl, &overlap).to_bits(), tl.makespan_s().to_bits());
}

#[test]
fn golden_zero_and_scale_edits_are_hand_computable() {
    let (tl, _machine) = golden_run();
    // Free broadcasts: 35 - 22 = 13.
    let zero_bcast = WhatIf {
        zero_kind: Some("broadcast".to_string()),
        ..WhatIf::identity()
    };
    assert_eq!(evaluate(&tl, &zero_bcast), 13.0);
    // Infinite bandwidth (β → 0) keeps only the α terms: broadcast
    // dt 2, allgather dt 1 → 3 + 2 + 5 + 1 = 11.
    let infinite_bw = WhatIf {
        beta_scale: 0.0,
        ..WhatIf::identity()
    };
    assert_eq!(evaluate(&tl, &infinite_bw), 11.0);
    // Twice the compute rate (γ × 0.5): 1.5 + 22 + 2.5 + 5 = 31.
    let faster_cpu = WhatIf {
        gamma_scale: 0.5,
        ..WhatIf::identity()
    };
    assert_eq!(evaluate(&tl, &faster_cpu), 31.0);
}

#[test]
fn transient_fault_puts_backoff_on_the_path() {
    use mfbc_machine::{FaultKind, FaultPlan, RetryPolicy};
    let spec = MachineSpec::test(2);
    let builder = Arc::new(TimelineBuilder::new(spec.clone()));
    let machine = Machine::with_faults(
        spec,
        FaultPlan::single(0, FaultKind::Transient { recurrence: 1 }),
        RetryPolicy {
            max_attempts: 3,
            backoff_s: 7.0,
            ..RetryPolicy::default()
        },
    );
    scoped(builder.clone(), || {
        machine
            .charge_collective(&machine.world(), CollectiveKind::Allreduce, 2)
            .unwrap();
    });
    let tl = builder.finish();
    // allreduce dt = 4·2·β + 4·lg 2·α = 8 + 4 = 12, behind a 7 s
    // retry backoff.
    assert_eq!(tl.makespan_s(), 19.0);
    let path = critical_path(&tl);
    let labels: Vec<&str> = path.segments.iter().map(|s| s.label.as_str()).collect();
    assert_eq!(labels, vec!["backoff", "allreduce"]);
    assert_eq!(path.sum_s().to_bits(), tl.makespan_s().to_bits());
    assert_eq!(tl.validate_against(&machine), Vec::<String>::new());

    // `zero:backoff` removes exactly the retry gap.
    let no_backoff = WhatIf {
        zero_kind: Some("backoff".to_string()),
        ..WhatIf::identity()
    };
    assert_eq!(evaluate(&tl, &no_backoff), 12.0);
}

#[test]
fn shrink_keeps_dead_lane_history_and_matches_survivors() {
    let spec = MachineSpec::test(3);
    let builder = Arc::new(TimelineBuilder::new(spec.clone()));
    let machine = Machine::new(spec);
    let shrunk = scoped(builder.clone(), || {
        machine.charge_compute(1, 4);
        machine
            .charge_collective(&machine.world(), CollectiveKind::Allgather, 2)
            .unwrap();
        let shrunk = machine.shrink(1).unwrap();
        // Post-shrink rank 1 is the *old* rank 2; the timeline must
        // renumber through its slot map.
        shrunk.charge_compute(1, 6);
        shrunk
            .charge_collective(&shrunk.world(), CollectiveKind::Reduce, 1)
            .unwrap();
        shrunk
    });
    let tl = builder.finish();
    assert_eq!(tl.p_alive(), 2);
    assert!(!tl.lanes[1].alive);
    // Dead lane keeps its pre-shrink history.
    assert_eq!(tl.lanes[1].cost.comp_time, 4.0);
    assert_eq!(tl.validate_against(&shrunk), Vec::<String>::new());
    // allgather dt = bytes·β + lg 3·α = 2 + 2 = 4, starting after
    // rank 1's 4 s compute (ends at 8); old rank 2 then computes 6 s
    // (ends at 14); the reduce over the shrunk p = 2 world adds
    // 2·1·β + 2·lg 2·α = 4 → makespan 18.
    assert_eq!(tl.makespan_s(), 18.0);
    let path = critical_path(&tl);
    assert_eq!(path.sum_s().to_bits(), tl.makespan_s().to_bits());
    let labels: Vec<&str> = path.segments.iter().map(|s| s.label.as_str()).collect();
    assert_eq!(labels, vec!["compute", "allgather", "compute", "reduce"]);
}
