//! Timeline exports: the versioned `timeline.json` document (with a
//! parser for round-trips and run-vs-run diffs), a self-contained
//! Gantt-style HTML view, and metric-registry mirroring.
//!
//! Every number is written with the exact `{:?}` formatter shared
//! with the profile/Prometheus exporters ([`mfbc_profile::jsonio`]),
//! so documents can be compared bit-for-bit across exporters and
//! across runs.

use crate::builder::{SegmentKind, Timeline};
use crate::critical::Analysis;
use crate::whatif::WhatIfReport;
use mfbc_profile::jsonio::{esc, num, parse, Json};
use mfbc_profile::{MetricKind, MetricsRegistry};
use std::fmt::Write as _;

/// Format version of the `timeline.json` document. Version 2 added
/// the top-level `overlap` flag (which clock recurrence the run was
/// modeled under) and issue-anchored collective spans in the Gantt
/// view. Version 3 added the `rounds` array (serve drain rounds with
/// degradation decisions and DAG-node attribution).
pub const TIMELINE_JSON_VERSION: u64 = 3;

/// One rank's row in the document.
#[derive(Clone, Debug, PartialEq)]
pub struct RankRow {
    /// Lane slot (initial rank id).
    pub lane: u64,
    /// Whether the rank survived to the end of the run.
    pub alive: bool,
    /// Final causal clock in seconds.
    pub clock_s: f64,
    /// Replica communication seconds.
    pub comm_s: f64,
    /// Replica computation seconds.
    pub comp_s: f64,
    /// Replica critical-path messages.
    pub msgs: u64,
    /// Replica critical-path bytes.
    pub bytes: u64,
}

/// One critical-path segment row.
#[derive(Clone, Debug, PartialEq)]
pub struct PathRow {
    /// Node index in the timeline.
    pub node: u64,
    /// Lane the segment gates.
    pub lane: u64,
    /// Segment label.
    pub label: String,
    /// Causal start in seconds.
    pub start_s: f64,
    /// Duration in seconds.
    pub dt_s: f64,
    /// Superstep index, if inside one.
    pub superstep: Option<u64>,
}

/// One bottleneck-table row.
#[derive(Clone, Debug, PartialEq)]
pub struct BottleneckRow {
    /// Segment class label.
    pub label: String,
    /// Gating seconds.
    pub seconds: f64,
    /// Gating segment count.
    pub count: u64,
    /// Share of the makespan.
    pub share: f64,
}

/// One superstep-attribution row.
#[derive(Clone, Debug, PartialEq)]
pub struct StepRow {
    /// Phase name.
    pub phase: String,
    /// Batch index.
    pub batch: u64,
    /// Step within the phase.
    pub step: u64,
    /// Communication seconds inside the superstep.
    pub comm_s: f64,
    /// Compute seconds inside the superstep.
    pub comp_s: f64,
    /// Critical-path seconds attributed to the superstep.
    pub critical_s: f64,
    /// Straggler lane, if compute was charged.
    pub straggler: Option<u64>,
    /// Max-over-mean compute imbalance.
    pub imbalance: f64,
    /// SpGEMM plans observed.
    pub plans: Vec<String>,
}

/// One serve drain-round row (absent for non-serve runs).
#[derive(Clone, Debug, PartialEq)]
pub struct RoundRow {
    /// 1-based round id.
    pub round: u64,
    /// Requests coalesced into the round.
    pub requests: u64,
    /// Shared budget in modeled seconds (`None` = unbounded).
    pub budget_s: Option<f64>,
    /// Chosen degradation rung (`exact`/`approx`/`stale`; empty if
    /// the round carried no decision event).
    pub rung: String,
    /// Why that rung was chosen; empty if undecided.
    pub reason: String,
    /// Responses produced by the round.
    pub responses: u64,
    /// Causal clock at round start.
    pub start_s: f64,
    /// Causal clock at round end.
    pub end_s: f64,
    /// Index of the first DAG node emitted inside the round.
    pub first_node: u64,
    /// Number of DAG nodes attributed to the round.
    pub nodes: u64,
}

/// One evaluated what-if row.
#[derive(Clone, Debug, PartialEq)]
pub struct WhatIfRow {
    /// Edit label.
    pub label: String,
    /// Edited makespan in seconds.
    pub makespan_s: f64,
    /// Unedited makespan in seconds.
    pub baseline_s: f64,
}

/// The parsed/parseable `timeline.json` document.
#[derive(Clone, Debug, PartialEq)]
pub struct TimelineDoc {
    /// Format version.
    pub version: u64,
    /// Surviving rank count.
    pub p: u64,
    /// Whether the run was modeled under overlapped accounting
    /// (in-flight collectives hide their bandwidth under compute).
    pub overlap: bool,
    /// Modeled makespan in seconds.
    pub makespan_s: f64,
    /// Fraction of the makespan gated by communication.
    pub comm_share: f64,
    /// Segment (node) count in the timeline.
    pub events: u64,
    /// Replay-dropped event count (nonzero = untrustworthy trace).
    pub dropped: u64,
    /// Per-lane rows.
    pub ranks: Vec<RankRow>,
    /// The gating chain in forward order.
    pub critical_path: Vec<PathRow>,
    /// Ranked bottleneck classes.
    pub bottlenecks: Vec<BottleneckRow>,
    /// Per-superstep attribution.
    pub supersteps: Vec<StepRow>,
    /// Serve drain rounds (empty for non-serve runs).
    pub rounds: Vec<RoundRow>,
    /// Evaluated what-if edits.
    pub what_if: Vec<WhatIfRow>,
}

/// Builds the document from a sealed timeline, its analysis, and any
/// evaluated what-if edits.
pub fn doc(tl: &Timeline, an: &Analysis, what_ifs: &[WhatIfReport]) -> TimelineDoc {
    TimelineDoc {
        version: TIMELINE_JSON_VERSION,
        p: tl.p_alive() as u64,
        overlap: tl.spec.overlap,
        makespan_s: tl.makespan_s(),
        comm_share: an.comm_share(),
        events: tl.nodes.len() as u64,
        dropped: tl.dropped,
        ranks: tl
            .lanes
            .iter()
            .enumerate()
            .map(|(i, l)| RankRow {
                lane: i as u64,
                alive: l.alive,
                clock_s: l.clock_s,
                comm_s: l.cost.comm_time,
                comp_s: l.cost.comp_time,
                msgs: l.cost.msgs,
                bytes: l.cost.bytes,
            })
            .collect(),
        critical_path: an
            .path
            .segments
            .iter()
            .map(|s| PathRow {
                node: s.node as u64,
                lane: s.lane as u64,
                label: s.label.clone(),
                start_s: s.start_s,
                dt_s: s.dt_s,
                superstep: s.superstep.map(|x| x as u64),
            })
            .collect(),
        bottlenecks: an
            .bottlenecks
            .iter()
            .map(|b| BottleneckRow {
                label: b.label.clone(),
                seconds: b.seconds,
                count: b.count,
                share: b.share,
            })
            .collect(),
        supersteps: an
            .steps
            .iter()
            .map(|s| StepRow {
                phase: s.phase.clone(),
                batch: s.batch as u64,
                step: s.step_no as u64,
                comm_s: s.comm_s,
                comp_s: s.comp_s,
                critical_s: s.critical_s,
                straggler: s.straggler.map(|x| x as u64),
                imbalance: s.imbalance,
                plans: s.plans.clone(),
            })
            .collect(),
        rounds: tl
            .rounds
            .iter()
            .map(|r| RoundRow {
                round: r.round,
                requests: r.requests,
                budget_s: r.budget_s,
                rung: r.rung.clone(),
                reason: r.reason.clone(),
                responses: r.responses,
                start_s: r.start_s,
                end_s: r.end_s,
                first_node: r.first_node as u64,
                nodes: r.nodes as u64,
            })
            .collect(),
        what_if: what_ifs
            .iter()
            .map(|w| WhatIfRow {
                label: w.label.clone(),
                makespan_s: w.makespan_s,
                baseline_s: w.baseline_s,
            })
            .collect(),
    }
}

fn opt_u64(x: Option<u64>) -> String {
    match x {
        Some(v) => v.to_string(),
        None => "null".to_string(),
    }
}

fn opt_num(x: Option<f64>) -> String {
    match x {
        Some(v) => num(v),
        None => "null".to_string(),
    }
}

fn str_array(items: &[String]) -> String {
    let mut s = String::from("[");
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "\"{}\"", esc(item));
    }
    s.push(']');
    s
}

/// Serializes the document (one row object per line, exact numbers).
pub fn to_json(d: &TimelineDoc) -> String {
    let mut out = String::with_capacity(4096);
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"version\": {},", d.version);
    let _ = writeln!(out, "  \"p\": {},", d.p);
    let _ = writeln!(out, "  \"overlap\": {},", d.overlap);
    let _ = writeln!(out, "  \"makespan_s\": {},", num(d.makespan_s));
    let _ = writeln!(out, "  \"comm_share\": {},", num(d.comm_share));
    let _ = writeln!(out, "  \"events\": {},", d.events);
    let _ = writeln!(out, "  \"dropped\": {},", d.dropped);
    let _ = writeln!(out, "  \"ranks\": [");
    for (i, r) in d.ranks.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"lane\": {}, \"alive\": {}, \"clock_s\": {}, \"comm_s\": {}, \"comp_s\": {}, \"msgs\": {}, \"bytes\": {}}}{}",
            r.lane,
            r.alive,
            num(r.clock_s),
            num(r.comm_s),
            num(r.comp_s),
            r.msgs,
            r.bytes,
            if i + 1 < d.ranks.len() { "," } else { "" }
        );
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"critical_path\": [");
    for (i, s) in d.critical_path.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"node\": {}, \"lane\": {}, \"label\": \"{}\", \"start_s\": {}, \"dt_s\": {}, \"superstep\": {}}}{}",
            s.node,
            s.lane,
            esc(&s.label),
            num(s.start_s),
            num(s.dt_s),
            opt_u64(s.superstep),
            if i + 1 < d.critical_path.len() { "," } else { "" }
        );
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"bottlenecks\": [");
    for (i, b) in d.bottlenecks.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"label\": \"{}\", \"seconds\": {}, \"count\": {}, \"share\": {}}}{}",
            esc(&b.label),
            num(b.seconds),
            b.count,
            num(b.share),
            if i + 1 < d.bottlenecks.len() { "," } else { "" }
        );
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"supersteps\": [");
    for (i, s) in d.supersteps.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"phase\": \"{}\", \"batch\": {}, \"step\": {}, \"comm_s\": {}, \"comp_s\": {}, \"critical_s\": {}, \"straggler\": {}, \"imbalance\": {}, \"plans\": {}}}{}",
            esc(&s.phase),
            s.batch,
            s.step,
            num(s.comm_s),
            num(s.comp_s),
            num(s.critical_s),
            opt_u64(s.straggler),
            num(s.imbalance),
            str_array(&s.plans),
            if i + 1 < d.supersteps.len() { "," } else { "" }
        );
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"rounds\": [");
    for (i, r) in d.rounds.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"round\": {}, \"requests\": {}, \"budget_s\": {}, \"rung\": \"{}\", \"reason\": \"{}\", \"responses\": {}, \"start_s\": {}, \"end_s\": {}, \"first_node\": {}, \"nodes\": {}}}{}",
            r.round,
            r.requests,
            opt_num(r.budget_s),
            esc(&r.rung),
            esc(&r.reason),
            r.responses,
            num(r.start_s),
            num(r.end_s),
            r.first_node,
            r.nodes,
            if i + 1 < d.rounds.len() { "," } else { "" }
        );
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"what_if\": [");
    for (i, w) in d.what_if.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"label\": \"{}\", \"makespan_s\": {}, \"baseline_s\": {}}}{}",
            esc(&w.label),
            num(w.makespan_s),
            num(w.baseline_s),
            if i + 1 < d.what_if.len() { "," } else { "" }
        );
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}

fn want<'a>(v: &'a Json, key: &str) -> Result<&'a Json, String> {
    v.get(key).ok_or_else(|| format!("missing field `{key}`"))
}

fn want_u64(v: &Json, key: &str) -> Result<u64, String> {
    want(v, key)?
        .as_u64()
        .ok_or_else(|| format!("field `{key}` is not an integer"))
}

fn want_f64(v: &Json, key: &str) -> Result<f64, String> {
    want(v, key)?
        .as_f64()
        .ok_or_else(|| format!("field `{key}` is not a number"))
}

fn want_str(v: &Json, key: &str) -> Result<String, String> {
    Ok(want(v, key)?
        .as_str()
        .ok_or_else(|| format!("field `{key}` is not a string"))?
        .to_string())
}

fn want_arr<'a>(v: &'a Json, key: &str) -> Result<&'a [Json], String> {
    want(v, key)?
        .as_array()
        .ok_or_else(|| format!("field `{key}` is not an array"))
}

fn opt_field_u64(v: &Json, key: &str) -> Result<Option<u64>, String> {
    match want(v, key)? {
        Json::Null => Ok(None),
        other => other
            .as_u64()
            .map(Some)
            .ok_or_else(|| format!("field `{key}` is not an integer or null")),
    }
}

fn opt_field_f64(v: &Json, key: &str) -> Result<Option<f64>, String> {
    match want(v, key)? {
        Json::Null => Ok(None),
        other => other
            .as_f64()
            .map(Some)
            .ok_or_else(|| format!("field `{key}` is not a number or null")),
    }
}

/// Parses a `timeline.json` document back into a [`TimelineDoc`].
pub fn parse_timeline(text: &str) -> Result<TimelineDoc, String> {
    let root = parse(text)?;
    let version = want_u64(&root, "version")?;
    if version != TIMELINE_JSON_VERSION {
        return Err(format!(
            "timeline.json version {version} unsupported (expected {TIMELINE_JSON_VERSION})"
        ));
    }
    let mut ranks = Vec::new();
    for r in want_arr(&root, "ranks")? {
        ranks.push(RankRow {
            lane: want_u64(r, "lane")?,
            alive: matches!(want(r, "alive")?, Json::Bool(true)),
            clock_s: want_f64(r, "clock_s")?,
            comm_s: want_f64(r, "comm_s")?,
            comp_s: want_f64(r, "comp_s")?,
            msgs: want_u64(r, "msgs")?,
            bytes: want_u64(r, "bytes")?,
        });
    }
    let mut critical_path = Vec::new();
    for s in want_arr(&root, "critical_path")? {
        critical_path.push(PathRow {
            node: want_u64(s, "node")?,
            lane: want_u64(s, "lane")?,
            label: want_str(s, "label")?,
            start_s: want_f64(s, "start_s")?,
            dt_s: want_f64(s, "dt_s")?,
            superstep: opt_field_u64(s, "superstep")?,
        });
    }
    let mut bottlenecks = Vec::new();
    for b in want_arr(&root, "bottlenecks")? {
        bottlenecks.push(BottleneckRow {
            label: want_str(b, "label")?,
            seconds: want_f64(b, "seconds")?,
            count: want_u64(b, "count")?,
            share: want_f64(b, "share")?,
        });
    }
    let mut supersteps = Vec::new();
    for s in want_arr(&root, "supersteps")? {
        let mut plans = Vec::new();
        for p in want_arr(s, "plans")? {
            plans.push(
                p.as_str()
                    .ok_or_else(|| "plan entry is not a string".to_string())?
                    .to_string(),
            );
        }
        supersteps.push(StepRow {
            phase: want_str(s, "phase")?,
            batch: want_u64(s, "batch")?,
            step: want_u64(s, "step")?,
            comm_s: want_f64(s, "comm_s")?,
            comp_s: want_f64(s, "comp_s")?,
            critical_s: want_f64(s, "critical_s")?,
            straggler: opt_field_u64(s, "straggler")?,
            imbalance: want_f64(s, "imbalance")?,
            plans,
        });
    }
    let mut rounds = Vec::new();
    for r in want_arr(&root, "rounds")? {
        rounds.push(RoundRow {
            round: want_u64(r, "round")?,
            requests: want_u64(r, "requests")?,
            budget_s: opt_field_f64(r, "budget_s")?,
            rung: want_str(r, "rung")?,
            reason: want_str(r, "reason")?,
            responses: want_u64(r, "responses")?,
            start_s: want_f64(r, "start_s")?,
            end_s: want_f64(r, "end_s")?,
            first_node: want_u64(r, "first_node")?,
            nodes: want_u64(r, "nodes")?,
        });
    }
    let mut what_if = Vec::new();
    for w in want_arr(&root, "what_if")? {
        what_if.push(WhatIfRow {
            label: want_str(w, "label")?,
            makespan_s: want_f64(w, "makespan_s")?,
            baseline_s: want_f64(w, "baseline_s")?,
        });
    }
    Ok(TimelineDoc {
        version,
        p: want_u64(&root, "p")?,
        overlap: matches!(want(&root, "overlap")?, Json::Bool(true)),
        makespan_s: want_f64(&root, "makespan_s")?,
        comm_share: want_f64(&root, "comm_share")?,
        events: want_u64(&root, "events")?,
        dropped: want_u64(&root, "dropped")?,
        ranks,
        critical_path,
        bottlenecks,
        supersteps,
        rounds,
        what_if,
    })
}

/// One row of a run-vs-run comparison.
#[derive(Clone, Debug, PartialEq)]
pub struct DiffRow {
    /// What is being compared (e.g. `makespan_s`,
    /// `bottleneck allgather seconds`).
    pub what: String,
    /// Value in the first (baseline) document.
    pub before: f64,
    /// Value in the second (candidate) document.
    pub after: f64,
}

impl DiffRow {
    /// `after - before`.
    pub fn delta(&self) -> f64 {
        self.after - self.before
    }
}

/// Structured run-vs-run diff: compares makespan, comm share, per-rank
/// clocks, and per-class bottleneck seconds. Rows where both sides
/// are bit-identical are omitted, so an empty result means the two
/// runs are indistinguishable at this granularity.
pub fn diff_docs(before: &TimelineDoc, after: &TimelineDoc) -> Vec<DiffRow> {
    let mut rows = Vec::new();
    let mut push = |what: String, b: f64, a: f64| {
        if b.to_bits() != a.to_bits() {
            rows.push(DiffRow {
                what,
                before: b,
                after: a,
            });
        }
    };
    push("makespan_s".into(), before.makespan_s, after.makespan_s);
    push("comm_share".into(), before.comm_share, after.comm_share);
    push(
        "critical_path segments".into(),
        before.critical_path.len() as f64,
        after.critical_path.len() as f64,
    );
    let lanes = before.ranks.len().max(after.ranks.len());
    for lane in 0..lanes {
        let b = before.ranks.get(lane).map_or(0.0, |r| r.clock_s);
        let a = after.ranks.get(lane).map_or(0.0, |r| r.clock_s);
        push(format!("rank {lane} clock_s"), b, a);
    }
    let mut labels: Vec<&str> = before
        .bottlenecks
        .iter()
        .chain(&after.bottlenecks)
        .map(|b| b.label.as_str())
        .collect();
    labels.dedup();
    labels.sort_unstable();
    labels.dedup();
    for label in labels {
        let find = |d: &TimelineDoc| {
            d.bottlenecks
                .iter()
                .find(|b| b.label == label)
                .map_or(0.0, |b| b.seconds)
        };
        push(
            format!("bottleneck {label} seconds"),
            find(before),
            find(after),
        );
    }
    rows
}

/// Renders a diff as an aligned text table (`(identical)` when
/// empty).
pub fn render_diff(rows: &[DiffRow]) -> String {
    if rows.is_empty() {
        return "(identical)\n".to_string();
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<32} {:>16} {:>16} {:>16}",
        "metric", "before", "after", "delta"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<32} {:>16.6e} {:>16.6e} {:>+16.6e}",
            r.what,
            r.before,
            r.after,
            r.delta()
        );
    }
    out
}

/// Mirrors the headline analysis numbers into a metrics registry
/// (rendered by the shared Prometheus exporter).
pub fn register_metrics(reg: &MetricsRegistry, tl: &Timeline, an: &Analysis) {
    reg.declare(
        "mfbc_timeline_makespan_seconds",
        MetricKind::Gauge,
        "Modeled causal makespan of the run",
    );
    reg.declare(
        "mfbc_timeline_critical_comm_share",
        MetricKind::Gauge,
        "Fraction of the makespan gated by communication segments",
    );
    reg.declare(
        "mfbc_timeline_path_segments",
        MetricKind::Gauge,
        "Number of segments on the critical path",
    );
    reg.declare(
        "mfbc_timeline_bottleneck_seconds",
        MetricKind::Gauge,
        "Critical-path seconds gated by one segment class",
    );
    reg.gauge_set("mfbc_timeline_makespan_seconds", &[], tl.makespan_s());
    reg.gauge_set("mfbc_timeline_critical_comm_share", &[], an.comm_share());
    reg.gauge_set(
        "mfbc_timeline_path_segments",
        &[],
        an.path.segments.len() as f64,
    );
    for b in &an.bottlenecks {
        reg.gauge_set(
            "mfbc_timeline_bottleneck_seconds",
            &[("label", b.label.as_str())],
            b.seconds,
        );
    }
}

const HTML_STYLE: &str = "\
body{font-family:system-ui,sans-serif;margin:2em;max-width:80em;color:#222}\
h1{font-size:1.4em}h2{font-size:1.1em;margin-top:1.6em}\
table{border-collapse:collapse;font-size:0.85em}\
td,th{border:1px solid #ccc;padding:0.25em 0.6em;text-align:right}\
th{background:#f2f2f2}td.l,th.l{text-align:left}\
.lane{position:relative;height:1.4em;background:#f4f4f4;margin:2px 0;border:1px solid #ddd}\
.lane span{position:absolute;top:0;bottom:0;min-width:1px}\
.lane .dead{background:repeating-linear-gradient(45deg,#eee,#eee 4px,#ddd 4px,#ddd 8px)}\
.seg-compute{background:#5b9bd5}\
.seg-backoff{background:#f0ad4e}\
.seg-c0{background:#d9534f}.seg-c1{background:#c9302c}.seg-c2{background:#b52b27}\
.seg-c3{background:#e06666}.seg-c4{background:#a94442}.seg-c5{background:#d43f3a}\
.seg-c6{background:#c45850}.seg-c7{background:#e9967a}.seg-c8{background:#cd5c5c}\
.crit{outline:2px solid #222;z-index:2}\
.legend span{display:inline-block;width:0.9em;height:0.9em;margin:0 0.3em 0 1em;vertical-align:middle}\
.kv{color:#555;font-size:0.9em}\
";

fn collective_class(kind: &str) -> String {
    // Stable small palette: hash the kind name onto 9 red-family
    // shades so each collective kind keeps its color across runs.
    let h: u32 = kind
        .bytes()
        .fold(0u32, |acc, b| acc.wrapping_mul(31).wrapping_add(b as u32));
    format!("seg-c{}", h % 9)
}

fn esc_html(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            c => out.push(c),
        }
    }
    out
}

/// Renders a self-contained Gantt-style HTML timeline: one bar per
/// lane, segments positioned by causal clock, critical-path segments
/// outlined, plus the bottleneck table and per-rank totals with exact
/// values in `data-*` attributes (cross-checkable against the JSON
/// and Prometheus exporters).
pub fn to_html(tl: &Timeline, an: &Analysis) -> String {
    let makespan = tl.makespan_s();
    let mut out = String::with_capacity(16 * 1024);
    let _ = writeln!(out, "<!doctype html>");
    let _ = writeln!(out, "<html lang=\"en\"><head><meta charset=\"utf-8\">");
    let _ = writeln!(out, "<title>MFBC timeline</title>");
    let _ = writeln!(out, "<style>{HTML_STYLE}</style></head><body>");
    let _ = writeln!(out, "<h1>MFBC causal timeline</h1>");
    let _ = writeln!(
        out,
        "<p class=\"kv\" data-makespan=\"{}\" data-comm-share=\"{}\" data-overlap=\"{}\">ranks={} &middot; \
         {} accounting &middot; makespan {} s \
         &middot; critical comm share {:.1}% &middot; {} segments ({} on the critical path)</p>",
        num(makespan),
        num(an.comm_share()),
        tl.spec.overlap,
        tl.p_alive(),
        if tl.spec.overlap {
            "overlapped"
        } else {
            "serialized"
        },
        num(makespan),
        an.comm_share() * 100.0,
        tl.nodes.len(),
        an.path.segments.len()
    );

    // Gantt lanes.
    let _ = writeln!(out, "<h2>Per-rank timeline</h2>");
    let on_path: std::collections::BTreeSet<usize> =
        an.path.segments.iter().map(|s| s.node).collect();
    for (lane_id, lane) in tl.lanes.iter().enumerate() {
        let _ = writeln!(
            out,
            "<div class=\"kv\">rank {lane_id}{}</div>",
            if lane.alive { "" } else { " (failed)" }
        );
        let _ = write!(out, "<div class=\"lane\">");
        for &id in &lane.node_ids {
            let node = &tl.nodes[id];
            if makespan <= 0.0 {
                break;
            }
            // Under overlapped accounting a collective's transfer is
            // in flight from its issue anchor to its completion, so
            // the Gantt span covers that whole window (the part before
            // `start_s` hid under local compute); serialized segments
            // render their ready-clock window unchanged.
            let overlapped_coll = tl.spec.overlap
                && node.issue_at.is_some()
                && matches!(node.kind, SegmentKind::Collective { .. });
            let (span_start, span_dt, title) = if overlapped_coll {
                (
                    node.issue_s,
                    node.end_s - node.issue_s,
                    format!(
                        "{} {} s in flight {} – {} s (issued @ {} s)",
                        esc_html(node.label()),
                        num(node.dt_s),
                        num(node.issue_s),
                        num(node.end_s),
                        num(node.issue_s)
                    ),
                )
            } else {
                (
                    node.start_s,
                    node.dt_s,
                    format!(
                        "{} {} s @ {} s",
                        esc_html(node.label()),
                        num(node.dt_s),
                        num(node.start_s)
                    ),
                )
            };
            let left = span_start / makespan * 100.0;
            let width = (span_dt / makespan * 100.0).max(0.05);
            let class = match &node.kind {
                SegmentKind::Collective { kind, .. } => collective_class(kind),
                SegmentKind::Compute { .. } => "seg-compute".to_string(),
                SegmentKind::Backoff => "seg-backoff".to_string(),
            };
            let crit = if on_path.contains(&id) { " crit" } else { "" };
            let _ = write!(
                out,
                "<span class=\"{class}{crit}\" style=\"left:{left:.4}%;width:{width:.4}%\" \
                 title=\"{title}\"></span>"
            );
        }
        if !lane.alive {
            let _ = write!(
                out,
                "<span class=\"dead\" style=\"left:0;width:100%\"></span>"
            );
        }
        let _ = writeln!(out, "</div>");
    }
    // Serve round lane: one span per drain round, shaded by rung,
    // positioned on the same causal-clock axis as the rank lanes.
    if !tl.rounds.is_empty() && makespan > 0.0 {
        let _ = writeln!(out, "<div class=\"kv\">serve rounds</div>");
        let _ = write!(out, "<div class=\"lane\">");
        for r in &tl.rounds {
            let left = r.start_s / makespan * 100.0;
            let width = ((r.end_s - r.start_s) / makespan * 100.0).max(0.05);
            let class = match r.rung.as_str() {
                "exact" => "seg-compute",
                "approx" => "seg-backoff",
                _ => "seg-c0",
            };
            let _ = write!(
                out,
                "<span class=\"{class}\" style=\"left:{left:.4}%;width:{width:.4}%\" \
                 title=\"round {} {} ({}) {} req → {} resp\"></span>",
                r.round,
                esc_html(&r.rung),
                esc_html(&r.reason),
                r.requests,
                r.responses
            );
        }
        let _ = writeln!(out, "</div>");
    }
    let _ = writeln!(
        out,
        "<p class=\"legend kv\"><span class=\"seg-compute\"></span>compute\
         <span class=\"seg-backoff\"></span>backoff\
         <span class=\"seg-c0\"></span>collectives (by kind) \
         &middot; outlined = on the critical path</p>"
    );

    // Bottleneck table.
    let _ = writeln!(out, "<h2>Critical-path bottlenecks</h2>");
    let _ = writeln!(
        out,
        "<table><tr><th class=\"l\">segment class</th><th>gating s</th><th>share</th><th>count</th></tr>"
    );
    for b in &an.bottlenecks {
        let _ = writeln!(
            out,
            "<tr><td class=\"l\">{}</td><td data-seconds=\"{}\">{}</td><td>{:.1}%</td><td>{}</td></tr>",
            esc_html(&b.label),
            num(b.seconds),
            num(b.seconds),
            b.share * 100.0,
            b.count
        );
    }
    let _ = writeln!(out, "</table>");

    // Per-rank totals with exact data-* attributes.
    let _ = writeln!(out, "<h2>Per-rank totals</h2>");
    let _ = writeln!(
        out,
        "<table><tr><th>rank</th><th>clock s</th><th>comm s</th><th>comp s</th><th>msgs</th><th>bytes</th></tr>"
    );
    for (lane_id, lane) in tl.lanes.iter().enumerate() {
        let _ = writeln!(
            out,
            "<tr data-rank=\"{lane_id}\" data-clock=\"{}\" data-comm=\"{}\" data-comp=\"{}\"><td>{lane_id}{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td></tr>",
            num(lane.clock_s),
            num(lane.cost.comm_time),
            num(lane.cost.comp_time),
            if lane.alive { "" } else { " ✝" },
            num(lane.clock_s),
            num(lane.cost.comm_time),
            num(lane.cost.comp_time),
            lane.cost.msgs,
            lane.cost.bytes
        );
    }
    let _ = writeln!(out, "</table>");

    // Serve rounds table with exact data-* attributes, if any.
    if !tl.rounds.is_empty() {
        let _ = writeln!(
            out,
            "<h2>Serve rounds</h2><table><tr><th>round</th><th>requests</th><th class=\"l\">rung</th>\
             <th class=\"l\">reason</th><th>responses</th><th>budget s</th><th>start s</th><th>end s</th><th>nodes</th></tr>"
        );
        for r in &tl.rounds {
            let _ = writeln!(
                out,
                "<tr data-round=\"{}\" data-start=\"{}\" data-end=\"{}\"><td>{}</td><td>{}</td>\
                 <td class=\"l\">{}</td><td class=\"l\">{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td></tr>",
                r.round,
                num(r.start_s),
                num(r.end_s),
                r.round,
                r.requests,
                esc_html(&r.rung),
                esc_html(&r.reason),
                r.responses,
                match r.budget_s {
                    Some(b) => num(b),
                    None => "∞".to_string(),
                },
                num(r.start_s),
                num(r.end_s),
                r.nodes
            );
        }
        let _ = writeln!(out, "</table>");
    }

    // Markers, if any.
    if !tl.markers.is_empty() {
        let _ = writeln!(out, "<h2>Events</h2><table><tr><th>at s</th><th class=\"l\">event</th><th class=\"l\">detail</th></tr>");
        for m in &tl.markers {
            let _ = writeln!(
                out,
                "<tr><td>{}</td><td class=\"l\">{}</td><td class=\"l\">{}</td></tr>",
                num(m.at_s),
                esc_html(&m.label),
                esc_html(&m.detail)
            );
        }
        let _ = writeln!(out, "</table>");
    }
    let _ = writeln!(out, "</body></html>");
    out
}

/// Extracts `(rank, clock_s, comm_s, comp_s)` rows from the exact
/// `data-*` attributes of [`to_html`] output — the mechanical
/// cross-check used by the exporter-agreement tests.
pub fn parse_html_rank_rows(html: &str) -> Vec<(usize, f64, f64, f64)> {
    let mut rows = Vec::new();
    for chunk in html.split("<tr data-rank=\"").skip(1) {
        let attr = |name: &str| -> Option<&str> {
            let key = format!("{name}=\"");
            let start = chunk.find(&key)? + key.len();
            let end = chunk[start..].find('"')? + start;
            Some(&chunk[start..end])
        };
        let Some(rank) = chunk.split('"').next().and_then(|s| s.parse().ok()) else {
            continue;
        };
        let get = |name: &str| attr(name).and_then(|s| s.parse::<f64>().ok());
        if let (Some(clock), Some(comm), Some(comp)) =
            (get("data-clock"), get("data-comm"), get("data-comp"))
        {
            rows.push((rank, clock, comm, comp));
        }
    }
    rows
}
