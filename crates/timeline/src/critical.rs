//! Critical-path extraction over the BSP dependency DAG.
//!
//! Dependencies: segments chain within a lane, and a synchronizing
//! segment (collective, backoff) depends on *every* participant's
//! previous segment — its start clock is the group maximum; under
//! overlapped accounting an in-flight collective additionally chains
//! from the synchronization point it was issued at. Because
//! `f64::max` returns one of its operands bit-for-bit and every
//! completion clock is one IEEE addition on a predecessor's end
//! clock, the builder records for each node the predecessor whose end
//! attained it and the single addend (`Node::pred`,
//! `Node::crit_dt_s`: the full duration for serialized segments; α or
//! the full duration for an overlapped collective, depending on which
//! branch of its `max` won). Walking that chain backwards from the
//! lane attaining the makespan yields segments whose addends, folded
//! left-to-right from zero, reproduce the makespan **bit-exactly**.

use crate::builder::Timeline;

/// One segment on the critical path.
#[derive(Clone, Debug, PartialEq)]
pub struct PathSegment {
    /// Index into [`Timeline::nodes`].
    pub node: usize,
    /// Lane whose chain the segment gates.
    pub lane: usize,
    /// Display label (collective kind, `compute`, `backoff`).
    pub label: String,
    /// Causal start clock in seconds.
    pub start_s: f64,
    /// Gating seconds: the segment's addend on the critical-path
    /// chain. Equals the modeled duration for compute and serialized
    /// segments; for an overlapped collective it is α when the
    /// group's readiness gated completion (the transfer hid under
    /// compute) or the full duration when the transfer itself gated.
    pub dt_s: f64,
    /// Whether the segment is communication.
    pub comm: bool,
    /// Superstep index (`None` = setup).
    pub superstep: Option<usize>,
}

/// The exact gating chain of a run.
#[derive(Clone, Debug, PartialEq)]
pub struct CriticalPath {
    /// The run's modeled makespan in seconds.
    pub makespan_s: f64,
    /// Lane whose final clock attains the makespan.
    pub end_lane: usize,
    /// Gating segments in forward (chronological) order.
    pub segments: Vec<PathSegment>,
}

impl CriticalPath {
    /// Left-to-right fold of the segment durations — bit-identical to
    /// [`CriticalPath::makespan_s`] by construction.
    pub fn sum_s(&self) -> f64 {
        self.segments.iter().fold(0.0, |acc, s| acc + s.dt_s)
    }

    /// Seconds of the makespan gated by communication segments.
    pub fn comm_s(&self) -> f64 {
        self.segments
            .iter()
            .filter(|s| s.comm)
            .map(|s| s.dt_s)
            .sum()
    }

    /// Fraction of the makespan gated by communication (0 when the
    /// makespan is zero).
    pub fn comm_share(&self) -> f64 {
        if self.makespan_s > 0.0 {
            self.comm_s() / self.makespan_s
        } else {
            0.0
        }
    }
}

/// Extracts the critical path of `tl` by the backward walk described
/// in the module docs.
pub fn critical_path(tl: &Timeline) -> CriticalPath {
    let makespan_s = tl.makespan_s();
    let end_lane = tl.end_lane();
    let mut segments = Vec::new();
    let mut cur = tl.lanes[end_lane].node_ids.last().copied();
    while let Some(id) = cur {
        let node = &tl.nodes[id];
        segments.push(PathSegment {
            node: id,
            lane: node.pred_lane,
            label: node.label().to_string(),
            start_s: node.start_s,
            dt_s: node.crit_dt_s,
            comm: node.is_comm(),
            superstep: node.superstep,
        });
        cur = node.pred;
    }
    segments.reverse();
    CriticalPath {
        makespan_s,
        end_lane,
        segments,
    }
}

/// Aggregated share of the critical path attributed to one segment
/// class.
#[derive(Clone, Debug, PartialEq)]
pub struct Bottleneck {
    /// Segment label (collective kind, `compute`, `backoff`).
    pub label: String,
    /// Total gating seconds of the class.
    pub seconds: f64,
    /// Number of gating segments in the class.
    pub count: u64,
    /// `seconds / makespan` (0 when the makespan is zero).
    pub share: f64,
}

/// Ranks segment classes by their gating seconds, descending (ties
/// broken by label). Returns every class; callers take the top-k.
pub fn bottlenecks(path: &CriticalPath) -> Vec<Bottleneck> {
    let mut by_label: Vec<Bottleneck> = Vec::new();
    for seg in &path.segments {
        match by_label.iter_mut().find(|b| b.label == seg.label) {
            Some(b) => {
                b.seconds += seg.dt_s;
                b.count += 1;
            }
            None => by_label.push(Bottleneck {
                label: seg.label.clone(),
                seconds: seg.dt_s,
                count: 1,
                share: 0.0,
            }),
        }
    }
    for b in &mut by_label {
        b.share = if path.makespan_s > 0.0 {
            b.seconds / path.makespan_s
        } else {
            0.0
        };
    }
    by_label.sort_by(|a, b| {
        b.seconds
            .total_cmp(&a.seconds)
            .then_with(|| a.label.cmp(&b.label))
    });
    by_label
}

/// Per-superstep attribution: where the time inside one superstep
/// went, which lane straggled, and how much of the critical path the
/// superstep gates.
#[derive(Clone, Debug, PartialEq)]
pub struct StepAttribution {
    /// Index into [`Timeline::supersteps`].
    pub step: usize,
    /// Phase name (`forward` / `backward`).
    pub phase: String,
    /// Source-batch index.
    pub batch: usize,
    /// Iteration within the phase.
    pub step_no: usize,
    /// Sum of communication segment durations in the superstep
    /// (each synchronizing segment counted once).
    pub comm_s: f64,
    /// Sum of compute segment durations in the superstep.
    pub comp_s: f64,
    /// Seconds of the critical path attributed to the superstep.
    pub critical_s: f64,
    /// Lane with the most compute time in the superstep, if any
    /// compute was charged.
    pub straggler: Option<usize>,
    /// Max-over-mean of per-lane compute seconds in the superstep
    /// (1.0 = perfectly balanced; 0.0 when no compute was charged).
    pub imbalance: f64,
    /// SpGEMM plan labels observed during the superstep.
    pub plans: Vec<String>,
}

/// Attributes segment time, stragglers, and critical-path seconds to
/// each superstep.
pub fn step_attribution(tl: &Timeline, path: &CriticalPath) -> Vec<StepAttribution> {
    let n_lanes = tl.lanes.len();
    let mut out: Vec<StepAttribution> = tl
        .supersteps
        .iter()
        .enumerate()
        .map(|(i, s)| StepAttribution {
            step: i,
            phase: s.phase.clone(),
            batch: s.batch,
            step_no: s.step,
            comm_s: 0.0,
            comp_s: 0.0,
            critical_s: 0.0,
            straggler: None,
            imbalance: 0.0,
            plans: s.plans.clone(),
        })
        .collect();
    // Per-superstep per-lane compute for straggler/imbalance.
    let mut comp_by_lane: Vec<Vec<f64>> = vec![vec![0.0; n_lanes]; out.len()];
    for node in &tl.nodes {
        let Some(i) = node.superstep else { continue };
        if node.is_comm() {
            out[i].comm_s += node.dt_s;
        } else {
            out[i].comp_s += node.dt_s;
            comp_by_lane[i][node.lanes[0]] += node.dt_s;
        }
    }
    for seg in &path.segments {
        if let Some(i) = seg.superstep {
            out[i].critical_s += seg.dt_s;
        }
    }
    for (att, per_lane) in out.iter_mut().zip(&comp_by_lane) {
        let alive: Vec<f64> = per_lane
            .iter()
            .enumerate()
            .filter(|&(l, _)| tl.lanes[l].alive || per_lane[l] > 0.0)
            .map(|(_, &v)| v)
            .collect();
        let max = alive.iter().copied().fold(0.0, f64::max);
        if max > 0.0 {
            att.straggler = per_lane.iter().position(|&v| v.to_bits() == max.to_bits());
            let mean = alive.iter().sum::<f64>() / alive.len() as f64;
            att.imbalance = if mean > 0.0 { max / mean } else { 0.0 };
        }
    }
    out
}

/// The full analysis bundle: critical path, ranked bottleneck table,
/// and per-superstep attribution.
#[derive(Clone, Debug, PartialEq)]
pub struct Analysis {
    /// The exact gating chain.
    pub path: CriticalPath,
    /// Segment classes ranked by gating seconds (full table).
    pub bottlenecks: Vec<Bottleneck>,
    /// Per-superstep attribution in stream order.
    pub steps: Vec<StepAttribution>,
}

impl Analysis {
    /// Fraction of the makespan gated by communication.
    pub fn comm_share(&self) -> f64 {
        self.path.comm_share()
    }
}

/// Runs the whole analysis over a sealed timeline.
pub fn analyze(tl: &Timeline) -> Analysis {
    let path = critical_path(tl);
    let bottlenecks = bottlenecks(&path);
    let steps = step_attribution(tl, &path);
    Analysis {
        path,
        bottlenecks,
        steps,
    }
}
