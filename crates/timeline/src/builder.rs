//! Replays the `mfbc-trace` event stream into per-rank causal
//! timelines.
//!
//! The machine model is bulk-synchronous: compute segments chain
//! within a rank, and a collective synchronizes its group (every
//! participant's clock is raised to the group maximum before the
//! collective's modeled time is added). Under overlapped accounting
//! (`MachineSpec::overlap`) a collective instead completes at
//! `max(ready + α, issue + dt)`, where `issue` is the group's last
//! synchronization point when the collective was issued — its
//! bandwidth term hides under whatever local compute ran in between,
//! and only the latency α stays on the critical path. The builder
//! replays exactly the machine's recurrence on a causal clock (and a
//! last-synchronization clock) per rank, so the resulting per-rank
//! end times — and the makespan, their maximum — are *derived from
//! the trace alone*, bit-for-bit reproducible, and decomposable into
//! the exact chain of additions that produced them (see
//! [`crate::critical`]).
//!
//! Alongside the causal clocks the builder maintains a replica of the
//! machine's per-rank [`RankCost`] meters (same elementwise-max
//! synchronization); [`Timeline::validate_against`] cross-checks it
//! against the live machine to prove the trace is complete.

use mfbc_machine::{CollectiveKind, Machine, MachineSpec, RankCost};
use mfbc_trace::{Recorder, TraceEvent, TraceRecord};
use std::sync::Mutex;

/// What a timeline segment spent its modeled time on.
#[derive(Clone, Debug, PartialEq)]
pub enum SegmentKind {
    /// A collective communication, with its exact α/β cost split
    /// (`alpha_s + beta_s` reproduces the modeled time bit-for-bit).
    Collective {
        /// Collective kind name (e.g. `allgather`).
        kind: String,
        /// Latency term in seconds.
        alpha_s: f64,
        /// Bandwidth term in seconds.
        beta_s: f64,
        /// Per-rank payload bytes passed to the cost model.
        bytes: u64,
        /// Critical-path messages charged.
        msgs: u64,
        /// Collective sequence number (machine issue order).
        seq: u64,
    },
    /// Local compute charged to one rank.
    Compute {
        /// Multiply–add operations charged.
        ops: u64,
    },
    /// A retry backoff wait after a transient fault (a fixed gap: not
    /// scaled by the what-if α/β knobs).
    Backoff,
}

/// One node of the BSP dependency DAG: a segment present on every
/// participating lane, between a synchronization point and the next.
#[derive(Clone, Debug, PartialEq)]
pub struct Node {
    /// What the time was spent on.
    pub kind: SegmentKind,
    /// Participating lane ids (original slot numbering; one entry for
    /// compute, the whole group for collectives/backoffs).
    pub lanes: Vec<usize>,
    /// Causal clock when the segment starts: the participant
    /// maximum for a synchronizing segment, the lane's own clock for
    /// compute.
    pub start_s: f64,
    /// Modeled duration in seconds.
    pub dt_s: f64,
    /// Every participant's clock after the segment: `start_s + dt_s`
    /// for compute and serialized synchronizing segments,
    /// `max(start_s + α, issue_s + dt_s)` for an overlapped
    /// collective.
    pub end_s: f64,
    /// The lane whose pre-sync clock attained `start_s` (for compute,
    /// the lane itself).
    pub pred_lane: usize,
    /// The node whose end clock this node's `end_s` chains from:
    /// `end_s == nodes[pred].end_s + crit_dt_s` **bit-for-bit**
    /// (`end_s == crit_dt_s` when `None` — the chain starts at 0).
    pub pred: Option<usize>,
    /// The single IEEE addend on the critical-path chain: the full
    /// duration for compute/serialized segments, and for an
    /// overlapped collective either α (latency-gated) or the full
    /// duration (transfer-gated), whichever branch of the `max`
    /// attained `end_s`.
    pub crit_dt_s: f64,
    /// Group clock at the last synchronization before the collective
    /// was issued (the transfer window start under overlapped
    /// accounting); equals `start_s` for compute/backoff segments.
    pub issue_s: f64,
    /// Stream position (node count) at which `issue_s` was captured —
    /// `Some` for every collective (a blocking collective issues at
    /// its own position), `None` for compute/backoff. What-if replays
    /// recompute issue clocks at this anchor under edited durations.
    pub issue_at: Option<usize>,
    /// Index into [`Timeline::supersteps`] this segment belongs to,
    /// `None` for work before the first superstep marker (setup).
    pub superstep: Option<usize>,
}

impl Node {
    /// Display label: the collective kind name, `compute`, or
    /// `backoff`.
    pub fn label(&self) -> &str {
        match &self.kind {
            SegmentKind::Collective { kind, .. } => kind,
            SegmentKind::Compute { .. } => "compute",
            SegmentKind::Backoff => "backoff",
        }
    }

    /// Whether the segment is communication (collective or backoff
    /// wait) rather than local compute.
    pub fn is_comm(&self) -> bool {
        !matches!(self.kind, SegmentKind::Compute { .. })
    }
}

/// One rank's lane: its causal clock, replica cost meter, and the
/// nodes it participated in.
#[derive(Clone, Debug, PartialEq)]
pub struct Lane {
    /// Causal clock after the last segment the lane took part in.
    pub clock_s: f64,
    /// Replica of the machine's per-rank cost meter.
    pub cost: RankCost,
    /// False once the rank was removed by a shrink; a dead lane keeps
    /// its history but stops advancing.
    pub alive: bool,
    /// Indices into [`Timeline::nodes`], ascending.
    pub node_ids: Vec<usize>,
}

/// One superstep marker with its plan provenance.
#[derive(Clone, Debug, PartialEq)]
pub struct StepInfo {
    /// `forward` or `backward` (or `setup` is represented by
    /// `superstep == None` on nodes, not by a StepInfo).
    pub phase: String,
    /// Source-batch index.
    pub batch: usize,
    /// Iteration within the phase.
    pub step: usize,
    /// SpGEMM plan labels observed during the superstep, deduplicated
    /// in first-seen order.
    pub plans: Vec<String>,
}

/// A point-in-time annotation that carries no modeled duration:
/// faults, recovery decisions, shrinks, redistributions.
#[derive(Clone, Debug, PartialEq)]
pub struct Marker {
    /// Causal clock (max over lanes) when the marker was observed.
    pub at_s: f64,
    /// Marker label (e.g. `fault crash`, `recovery replan`,
    /// `shrink -rank1`, `redist blocks`).
    pub label: String,
    /// Extra context (detail string, byte counts, …).
    pub detail: String,
}

/// One coalesced serve round, bracketing the DAG nodes its exact
/// advance produced: every node with index in
/// `first_node..first_node + nodes` — collectives included — was
/// emitted between the round's start and end events, attributing the
/// communication to the round that triggered it.
#[derive(Clone, Debug, PartialEq)]
pub struct RoundInfo {
    /// 1-based round id (the serve engine's drain counter).
    pub round: u64,
    /// Requests coalesced into the round.
    pub requests: u64,
    /// Shared budget in modeled seconds (`None` = unbounded; infinite
    /// budgets don't survive JSON).
    pub budget_s: Option<f64>,
    /// Chosen degradation rung (`exact`, `approx`, `stale`); empty if
    /// the round carried no decision event.
    pub rung: String,
    /// Why that rung was chosen; empty if undecided.
    pub reason: String,
    /// Responses produced by the round.
    pub responses: u64,
    /// Max alive-lane causal clock at round start.
    pub start_s: f64,
    /// Max alive-lane causal clock at round end (equals `start_s`
    /// for a round that advanced nothing, or while still open).
    pub end_s: f64,
    /// Index of the first DAG node emitted inside the round.
    pub first_node: usize,
    /// Number of DAG nodes attributed to the round.
    pub nodes: usize,
}

/// A sealed causal timeline: the BSP dependency DAG plus per-lane
/// clocks and replica cost meters.
#[derive(Clone, Debug, PartialEq)]
pub struct Timeline {
    /// Machine spec the run was modeled under (α, β, γ, initial `p`).
    pub spec: MachineSpec,
    /// The dependency DAG in stream order.
    pub nodes: Vec<Node>,
    /// One lane per rank slot of the *initial* machine; shrunk ranks
    /// stay as dead lanes.
    pub lanes: Vec<Lane>,
    /// Superstep markers in stream order.
    pub supersteps: Vec<StepInfo>,
    /// Serve rounds in stream order (empty for one-shot runs).
    pub rounds: Vec<RoundInfo>,
    /// Zero-duration annotations in stream order.
    pub markers: Vec<Marker>,
    /// Events referencing an out-of-range rank (a malformed or
    /// truncated trace); nonzero means the timeline is untrustworthy.
    pub dropped: u64,
    /// Replica of the machine's total operation counter.
    pub total_ops: u64,
}

impl Timeline {
    /// The modeled makespan: the maximum causal clock over surviving
    /// lanes (exactly what the critical path sums to, bit-for-bit).
    pub fn makespan_s(&self) -> f64 {
        self.lanes
            .iter()
            .filter(|l| l.alive)
            .map(|l| l.clock_s)
            .fold(0.0, f64::max)
    }

    /// The lane attaining [`Timeline::makespan_s`] (first such lane).
    pub fn end_lane(&self) -> usize {
        let m = self.makespan_s();
        self.lanes
            .iter()
            .position(|l| l.alive && l.clock_s.to_bits() == m.to_bits())
            .unwrap_or(0)
    }

    /// Surviving rank count.
    pub fn p_alive(&self) -> usize {
        self.lanes.iter().filter(|l| l.alive).count()
    }

    /// Replica per-rank costs of the surviving ranks, in the shrunk
    /// machine's numbering (dead lanes skipped in order).
    pub fn alive_costs(&self) -> Vec<RankCost> {
        self.lanes
            .iter()
            .filter(|l| l.alive)
            .map(|l| l.cost)
            .collect()
    }

    /// Cross-checks the replica meters against the machine the run
    /// finished on. Every per-rank comm/comp second, message and byte
    /// count, and the total op counter must agree **bit-for-bit**;
    /// returns a human-readable list of mismatches (empty = the trace
    /// fully accounts for the machine's state).
    pub fn validate_against(&self, machine: &Machine) -> Vec<String> {
        let mut problems = Vec::new();
        if self.dropped > 0 {
            problems.push(format!("{} events dropped during replay", self.dropped));
        }
        let ours = self.alive_costs();
        let theirs = machine.rank_costs();
        if ours.len() != theirs.len() {
            problems.push(format!(
                "rank count mismatch: timeline has {}, machine has {}",
                ours.len(),
                theirs.len()
            ));
            return problems;
        }
        for (r, (a, b)) in ours.iter().zip(&theirs).enumerate() {
            if a.comm_time.to_bits() != b.comm_time.to_bits() {
                problems.push(format!(
                    "rank {r} comm_s: timeline {:?} != machine {:?}",
                    a.comm_time, b.comm_time
                ));
            }
            if a.comp_time.to_bits() != b.comp_time.to_bits() {
                problems.push(format!(
                    "rank {r} comp_s: timeline {:?} != machine {:?}",
                    a.comp_time, b.comp_time
                ));
            }
            if a.msgs != b.msgs {
                problems.push(format!(
                    "rank {r} msgs: timeline {} != machine {}",
                    a.msgs, b.msgs
                ));
            }
            if a.bytes != b.bytes {
                problems.push(format!(
                    "rank {r} bytes: timeline {} != machine {}",
                    a.bytes, b.bytes
                ));
            }
        }
        let total_ops = machine.report().total_ops;
        if self.total_ops != total_ops {
            problems.push(format!(
                "total_ops: timeline {} != machine {}",
                self.total_ops, total_ops
            ));
        }
        problems
    }

    /// Replays an already-captured record stream (e.g. from a
    /// [`mfbc_trace::MemoryRecorder`]).
    pub fn from_records(spec: &MachineSpec, records: &[TraceRecord]) -> Timeline {
        let builder = TimelineBuilder::new(spec.clone());
        for rec in records {
            builder.record(rec.event.clone());
        }
        builder.finish()
    }
}

/// A nonblocking collective between its issue and wait events.
#[derive(Debug)]
struct PendingColl {
    kind: String,
    alpha_s: f64,
    beta_s: f64,
    bytes: u64,
    msgs: u64,
    bytes_charged: u64,
    modeled_s: f64,
    seq: u64,
    lanes: Vec<usize>,
    issue_s: f64,
    issue_pred: Option<usize>,
    issue_at: usize,
}

/// Mutable replay state behind the recorder's lock.
#[derive(Debug)]
struct BuildState {
    /// Replica of `MachineSpec::overlap` (which clock recurrence the
    /// machine ran).
    overlap: bool,
    nodes: Vec<Node>,
    lanes: Vec<Lane>,
    /// Current machine numbering → lane slot.
    slots: Vec<usize>,
    /// Per-lane clock at the lane's last synchronization (the issue
    /// clock of the next collective), and the node that set it.
    synced: Vec<f64>,
    synced_node: Vec<Option<usize>>,
    /// In-flight nonblocking collectives keyed by machine handle.
    pending: std::collections::BTreeMap<u64, PendingColl>,
    supersteps: Vec<StepInfo>,
    rounds: Vec<RoundInfo>,
    markers: Vec<Marker>,
    current_step: Option<usize>,
    current_round: Option<usize>,
    dropped: u64,
    total_ops: u64,
}

impl BuildState {
    fn new(p: usize, overlap: bool) -> BuildState {
        BuildState {
            overlap,
            nodes: Vec::new(),
            lanes: vec![
                Lane {
                    clock_s: 0.0,
                    cost: RankCost::default(),
                    alive: true,
                    node_ids: Vec::new(),
                };
                p
            ],
            slots: (0..p).collect(),
            synced: vec![0.0; p],
            synced_node: vec![None; p],
            pending: std::collections::BTreeMap::new(),
            supersteps: Vec::new(),
            rounds: Vec::new(),
            markers: Vec::new(),
            current_step: None,
            current_round: None,
            dropped: 0,
            total_ops: 0,
        }
    }

    /// Max alive-lane causal clock (where a zero-duration annotation
    /// lands).
    fn now_s(&self) -> f64 {
        self.lanes
            .iter()
            .filter(|l| l.alive)
            .map(|l| l.clock_s)
            .fold(0.0, f64::max)
    }

    /// The group's issue clock (max last-synchronization clock over
    /// `lanes`) and the node that attained it.
    fn issue_point(&self, lanes: &[usize]) -> (f64, Option<usize>) {
        let mut issue = 0.0f64;
        for &l in lanes {
            issue = issue.max(self.synced[l]);
        }
        let pred = lanes
            .iter()
            .copied()
            .find(|&l| self.synced[l].to_bits() == issue.to_bits())
            .and_then(|l| self.synced_node[l]);
        (issue, pred)
    }

    /// Maps current machine ranks to lane slots; `None` (and a
    /// dropped-event count) on out-of-range ranks.
    fn map_ranks(&mut self, ranks: &[usize]) -> Option<Vec<usize>> {
        let mut lanes = Vec::with_capacity(ranks.len());
        for &r in ranks {
            match self.slots.get(r) {
                Some(&slot) => lanes.push(slot),
                None => {
                    self.dropped += 1;
                    return None;
                }
            }
        }
        Some(lanes)
    }

    /// Charges the replica meters for a synchronizing segment:
    /// elementwise max over the group, then add. Identical in both
    /// accounting modes (the meters measure work, not clocks).
    fn charge_meters(&mut self, lanes: &[usize], dt_s: f64, dm: u64, db: u64) {
        let mut mx_cost = RankCost::default();
        for &l in lanes {
            mx_cost = mx_cost.max(self.lanes[l].cost);
        }
        for &l in lanes {
            let c = &mut self.lanes[l].cost;
            *c = mx_cost;
            c.comm_time += dt_s;
            c.msgs += dm;
            c.bytes += db;
        }
    }

    /// Appends a synchronizing segment over `lanes`, replaying the
    /// machine's clock recurrence. `coll` carries the α term and
    /// captured issue point for collectives; backoffs pass `None` and
    /// are serialized in both modes (matching `Machine::backoff`).
    #[allow(clippy::too_many_arguments)]
    fn sync_segment(
        &mut self,
        kind: SegmentKind,
        lanes: Vec<usize>,
        dt_s: f64,
        dm: u64,
        db: u64,
        coll: Option<(f64, f64, Option<usize>, usize)>,
    ) {
        if lanes.is_empty() {
            self.dropped += 1;
            return;
        }
        self.charge_meters(&lanes, dt_s, dm, db);
        // Causal clock: group max ("ready"), then the mode recurrence.
        let mut ready = 0.0f64;
        for &l in &lanes {
            ready = ready.max(self.lanes[l].clock_s);
        }
        let pred_lane = lanes
            .iter()
            .copied()
            .find(|&l| self.lanes[l].clock_s.to_bits() == ready.to_bits())
            .unwrap_or(lanes[0]);
        let ready_pred = self.lanes[pred_lane].node_ids.last().copied();
        let (issue_s, issue_at, end_s, pred, crit_dt_s) = match coll {
            Some((alpha_s, issue_s, issue_pred, issue_at)) if self.overlap => {
                // Overlapped completion: max(ready + α, issue + dt),
                // each branch one IEEE addition on a predecessor end.
                let a = ready + alpha_s;
                let b = issue_s + dt_s;
                let post = a.max(b);
                if post.to_bits() == a.to_bits() {
                    (issue_s, Some(issue_at), post, ready_pred, alpha_s)
                } else {
                    (issue_s, Some(issue_at), post, issue_pred, dt_s)
                }
            }
            Some((_, issue_s, _, issue_at)) => {
                // Serialized mode still records the issue anchor so a
                // what-if `overlap` edit can replay it faithfully.
                (issue_s, Some(issue_at), ready + dt_s, ready_pred, dt_s)
            }
            None => (ready, None, ready + dt_s, ready_pred, dt_s),
        };
        let id = self.nodes.len();
        for &l in &lanes {
            self.lanes[l].clock_s = end_s;
            self.synced[l] = end_s;
            self.synced_node[l] = Some(id);
            self.lanes[l].node_ids.push(id);
        }
        self.nodes.push(Node {
            kind,
            lanes,
            start_s: ready,
            dt_s,
            end_s,
            pred_lane,
            pred,
            crit_dt_s,
            issue_s,
            issue_at,
            superstep: self.current_step,
        });
    }

    fn marker(&mut self, label: String, detail: String) {
        let at_s = self.now_s();
        self.markers.push(Marker {
            at_s,
            label,
            detail,
        });
    }

    fn apply(&mut self, spec: &MachineSpec, event: TraceEvent) {
        match event {
            TraceEvent::Collective {
                kind,
                group,
                ranks,
                seq,
                bytes,
                msgs,
                bytes_charged,
                modeled_s,
            } => {
                let Some(lanes) = self.map_ranks(&ranks) else {
                    return;
                };
                let (alpha_s, beta_s) = cost_split(spec, kind, group, bytes, modeled_s);
                // A blocking collective issues at its own stream
                // position: its transfer window cannot start earlier
                // than the call, so nothing hides under prior compute
                // unless the group had already synchronized.
                let (issue_s, issue_pred) = self.issue_point(&lanes);
                let issue_at = self.nodes.len();
                self.sync_segment(
                    SegmentKind::Collective {
                        kind: kind.to_string(),
                        alpha_s,
                        beta_s,
                        bytes,
                        msgs,
                        seq,
                    },
                    lanes,
                    modeled_s,
                    msgs,
                    bytes_charged,
                    Some((alpha_s, issue_s, issue_pred, issue_at)),
                );
            }
            TraceEvent::CollectiveIssue {
                kind,
                group,
                ranks,
                seq,
                bytes,
                msgs,
                bytes_charged,
                modeled_s,
                handle,
            } => {
                let Some(lanes) = self.map_ranks(&ranks) else {
                    return;
                };
                let (alpha_s, beta_s) = cost_split(spec, kind, group, bytes, modeled_s);
                let (issue_s, issue_pred) = self.issue_point(&lanes);
                self.pending.insert(
                    handle,
                    PendingColl {
                        kind: kind.to_string(),
                        alpha_s,
                        beta_s,
                        bytes,
                        msgs,
                        bytes_charged,
                        modeled_s,
                        seq,
                        lanes,
                        issue_s,
                        issue_pred,
                        issue_at: self.nodes.len(),
                    },
                );
            }
            TraceEvent::CollectiveWait { handle } => {
                let Some(pc) = self.pending.remove(&handle) else {
                    // A wait with no matching issue: malformed trace.
                    self.dropped += 1;
                    return;
                };
                self.sync_segment(
                    SegmentKind::Collective {
                        kind: pc.kind,
                        alpha_s: pc.alpha_s,
                        beta_s: pc.beta_s,
                        bytes: pc.bytes,
                        msgs: pc.msgs,
                        seq: pc.seq,
                    },
                    pc.lanes,
                    pc.modeled_s,
                    pc.msgs,
                    pc.bytes_charged,
                    Some((pc.alpha_s, pc.issue_s, pc.issue_pred, pc.issue_at)),
                );
            }
            TraceEvent::Compute {
                rank,
                ops,
                modeled_s,
            } => {
                let Some(lanes) = self.map_ranks(&[rank]) else {
                    return;
                };
                let l = lanes[0];
                self.lanes[l].cost.comp_time += modeled_s;
                self.total_ops += ops;
                let start_s = self.lanes[l].clock_s;
                let end_s = start_s + modeled_s;
                let id = self.nodes.len();
                let pred = self.lanes[l].node_ids.last().copied();
                self.lanes[l].clock_s = end_s;
                self.lanes[l].node_ids.push(id);
                self.nodes.push(Node {
                    kind: SegmentKind::Compute { ops },
                    lanes,
                    start_s,
                    dt_s: modeled_s,
                    end_s,
                    pred_lane: l,
                    pred,
                    crit_dt_s: modeled_s,
                    issue_s: start_s,
                    issue_at: None,
                    superstep: self.current_step,
                });
            }
            TraceEvent::Backoff { ranks, seconds } => {
                let Some(lanes) = self.map_ranks(&ranks) else {
                    return;
                };
                self.sync_segment(SegmentKind::Backoff, lanes, seconds, 0, 0, None);
            }
            TraceEvent::Shrink { failed, p_before } => {
                if self.slots.len() != p_before || failed >= self.slots.len() {
                    self.dropped += 1;
                    return;
                }
                let slot = self.slots.remove(failed);
                self.lanes[slot].alive = false;
                self.marker(
                    format!("shrink -rank{failed}"),
                    format!("p={}->{}", p_before, p_before - 1),
                );
            }
            TraceEvent::Superstep {
                phase, batch, step, ..
            } => {
                self.current_step = Some(self.supersteps.len());
                self.supersteps.push(StepInfo {
                    phase: phase.to_string(),
                    batch,
                    step,
                    plans: Vec::new(),
                });
            }
            TraceEvent::Spgemm { plan, .. } => {
                if let Some(i) = self.current_step {
                    let plans = &mut self.supersteps[i].plans;
                    if !plans.contains(&plan) {
                        plans.push(plan);
                    }
                }
            }
            TraceEvent::Fault { kind, rank, seq } => {
                let detail = match rank {
                    Some(r) => format!("rank={r} seq={seq}"),
                    None => format!("seq={seq}"),
                };
                self.marker(format!("fault {kind}"), detail);
            }
            TraceEvent::Recovery {
                action,
                detail,
                wasted_s,
            } => {
                self.marker(
                    format!("recovery {action}"),
                    format!("{detail} wasted_s={wasted_s:?}"),
                );
            }
            TraceEvent::Redist {
                what,
                bytes_moved,
                participants,
            } => {
                self.marker(
                    format!("redist {what}"),
                    format!("bytes={bytes_moved} p={participants}"),
                );
            }
            TraceEvent::RequestAdmitted {
                request_id,
                query,
                deadline_s,
                queue_depth,
            } => {
                self.marker(
                    format!("request {request_id} admitted"),
                    format!("query={query} deadline_s={deadline_s:?} depth={queue_depth}"),
                );
            }
            TraceEvent::RoundStart {
                round,
                requests,
                budget_s,
                ..
            } => {
                let start_s = self.now_s();
                self.current_round = Some(self.rounds.len());
                self.rounds.push(RoundInfo {
                    round,
                    requests,
                    budget_s: budget_s.is_finite().then_some(budget_s),
                    rung: String::new(),
                    reason: String::new(),
                    responses: 0,
                    start_s,
                    end_s: start_s,
                    first_node: self.nodes.len(),
                    nodes: 0,
                });
            }
            TraceEvent::DegradeDecision {
                round,
                rung,
                reason,
                ..
            } => {
                match self.current_round {
                    Some(i) if self.rounds[i].round == round => {
                        self.rounds[i].rung = rung.to_string();
                        self.rounds[i].reason = reason.to_string();
                    }
                    // A decision outside its round: malformed stream.
                    _ => self.dropped += 1,
                }
                self.marker(
                    format!("degrade -> {rung}"),
                    format!("round={round} reason={reason}"),
                );
            }
            TraceEvent::RoundEnd {
                round, responses, ..
            } => {
                let end_s = self.now_s();
                match self.current_round.take() {
                    Some(i) if self.rounds[i].round == round => {
                        let nodes = self.nodes.len() - self.rounds[i].first_node;
                        let r = &mut self.rounds[i];
                        r.responses = responses;
                        r.nodes = nodes;
                        r.end_s = r.start_s.max(end_s);
                    }
                    _ => self.dropped += 1,
                }
            }
            TraceEvent::Autotune { .. }
            | TraceEvent::Pool { .. }
            | TraceEvent::SpanBegin { .. }
            | TraceEvent::SpanEnd { .. }
            | TraceEvent::Counter { .. }
            | TraceEvent::Log { .. } => {}
        }
    }
}

/// Recovers the exact α/β split of a collective's modeled time;
/// `time()` is defined as `time_beta + time_alpha`, so the parts
/// re-add to `modeled_s` bit-for-bit. If the split cannot be
/// reproduced (foreign spec, unknown kind), fold everything into the
/// β term so the identity `alpha_s + beta_s == modeled_s` still
/// holds (overlapped replays then degrade to a zero latency term).
fn cost_split(
    spec: &MachineSpec,
    kind: &str,
    group: usize,
    bytes: u64,
    modeled_s: f64,
) -> (f64, f64) {
    match CollectiveKind::from_name(kind) {
        Some(ck) => {
            let a = ck.time_alpha(spec, group);
            let b = ck.time_beta(spec, bytes);
            if (b + a).to_bits() == modeled_s.to_bits() {
                (a, b)
            } else {
                (0.0, modeled_s)
            }
        }
        None => (0.0, modeled_s),
    }
}

/// A streaming [`Recorder`] that replays the event stream into a
/// [`Timeline`]. Install it (scoped or tee'd next to a profiler),
/// run, then call [`TimelineBuilder::finish`].
#[derive(Debug)]
pub struct TimelineBuilder {
    spec: MachineSpec,
    state: Mutex<BuildState>,
}

impl TimelineBuilder {
    /// A builder for a run on a machine described by `spec` (the α–β
    /// values are used to recover each collective's exact cost split).
    pub fn new(spec: MachineSpec) -> TimelineBuilder {
        let p = spec.p;
        let overlap = spec.overlap;
        TimelineBuilder {
            spec,
            state: Mutex::new(BuildState::new(p, overlap)),
        }
    }

    /// Seals the replayed state into a [`Timeline`]. The builder can
    /// keep receiving events afterwards (they accumulate onto the same
    /// state), but typical callers finish once, after the run.
    pub fn finish(&self) -> Timeline {
        let st = self.state.lock().expect("timeline state lock");
        Timeline {
            spec: self.spec.clone(),
            nodes: st.nodes.clone(),
            lanes: st.lanes.clone(),
            supersteps: st.supersteps.clone(),
            rounds: st.rounds.clone(),
            markers: st.markers.clone(),
            dropped: st.dropped,
            total_ops: st.total_ops,
        }
    }
}

impl Recorder for TimelineBuilder {
    fn record(&self, event: TraceEvent) {
        let mut st = self.state.lock().expect("timeline state lock");
        st.apply(&self.spec, event);
    }
}
