//! Counterfactual makespan evaluation.
//!
//! A what-if edit rescales or removes modeled cost components and
//! replays the causal recurrence to get a *modeled lower bound* on
//! the edited run:
//!
//! * `zero:<kind>` — a collective kind becomes free (its segments
//!   still synchronize, at zero cost);
//! * `alpha:<s>` / `beta:<s>` — scale every collective's latency /
//!   bandwidth term (the α/β split is exact, so scale 1 is the
//!   identity bit-for-bit);
//! * `gamma:<s>` — scale local compute;
//! * `overlap` — overlapped communication/computation: a collective
//!   is issued at its recorded issue anchor (its group's last
//!   synchronization point) and runs concurrently with the local
//!   compute that follows, so the group resumes at
//!   `max(ready + α, issue + dt)` instead of `ready + dt` — the
//!   machine's own overlapped recurrence. On a run that was already
//!   recorded under overlapped accounting this edit is the identity,
//!   bit-for-bit.
//! * `serialize` — the inverse: replay every collective blocking
//!   (`ready + dt`) even if the run was recorded overlapped. This is
//!   the one *growing* edit — it prices what overlap is buying — so
//!   it is excluded from the monotonicity guarantee below. On a run
//!   recorded serialized it is the identity, bit-for-bit.
//!
//! The base replay is mode-aware: a timeline recorded with
//! `MachineSpec::overlap` set replays the overlapped recurrence
//! (recomputing issue clocks at each collective's recorded anchor
//! position, since edited durations move them), so the identity edit
//! reproduces the recorded makespan bit-for-bit in both modes.
//!
//! Every knob is monotone: with scales in `[0, 1]`, and for `zero`
//! and `overlap` always, the edited makespan never exceeds the
//! original (IEEE addition, multiplication by a factor in `[0, 1]`,
//! and `max` are all monotone; `issue ≤ ready` because a lane's
//! last-synchronization clock never exceeds its clock, and the
//! overlapped branch `ready + α` never exceeds `ready + dt` because
//! the bandwidth term is nonnegative).

use crate::builder::{SegmentKind, Timeline};

/// A counterfactual edit of the cost model.
#[derive(Clone, Debug, PartialEq)]
pub struct WhatIf {
    /// Make this collective kind free (also accepts `backoff`).
    pub zero_kind: Option<String>,
    /// Scale on every collective's latency (α) term.
    pub alpha_scale: f64,
    /// Scale on every collective's bandwidth (β) term.
    pub beta_scale: f64,
    /// Scale on local compute (γ) time.
    pub gamma_scale: f64,
    /// Replay under the machine's overlapped recurrence even if the
    /// run was recorded serialized (a no-op on overlapped runs).
    pub overlap: bool,
    /// Replay every collective blocking even if the run was recorded
    /// overlapped (a no-op on serialized runs). Wins over `overlap`.
    /// The only growing edit: the result may exceed the baseline.
    pub serialize: bool,
}

impl Default for WhatIf {
    fn default() -> WhatIf {
        WhatIf {
            zero_kind: None,
            alpha_scale: 1.0,
            beta_scale: 1.0,
            gamma_scale: 1.0,
            overlap: false,
            serialize: false,
        }
    }
}

impl WhatIf {
    /// The identity edit: reproduces the original makespan
    /// bit-for-bit.
    pub fn identity() -> WhatIf {
        WhatIf::default()
    }

    /// Whether this edit changes nothing.
    pub fn is_identity(&self) -> bool {
        self.zero_kind.is_none()
            && self.alpha_scale == 1.0
            && self.beta_scale == 1.0
            && self.gamma_scale == 1.0
            && !self.overlap
            && !self.serialize
    }

    /// Parses a comma-separated edit spec: `overlap`, `serialize`,
    /// `zero:<kind>`, `alpha:<scale>`, `beta:<scale>`,
    /// `gamma:<scale>`, e.g. `overlap,beta:0.5`.
    pub fn parse(spec: &str) -> Result<WhatIf, String> {
        let mut w = WhatIf::default();
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            if part == "overlap" {
                w.overlap = true;
                continue;
            }
            if part == "serialize" {
                w.serialize = true;
                continue;
            }
            let Some((key, value)) = part.split_once(':') else {
                return Err(format!(
                    "what-if clause `{part}`: expected `overlap`, `serialize`, `zero:<kind>`, or `<alpha|beta|gamma>:<scale>`"
                ));
            };
            match key.trim() {
                "zero" => w.zero_kind = Some(value.trim().to_string()),
                "alpha" | "beta" | "gamma" => {
                    let scale: f64 = value
                        .trim()
                        .parse()
                        .map_err(|_| format!("what-if clause `{part}`: bad scale `{value}`"))?;
                    if !scale.is_finite() || scale < 0.0 {
                        return Err(format!(
                            "what-if clause `{part}`: scale must be finite and >= 0"
                        ));
                    }
                    match key.trim() {
                        "alpha" => w.alpha_scale = scale,
                        "beta" => w.beta_scale = scale,
                        _ => w.gamma_scale = scale,
                    }
                }
                other => return Err(format!("what-if clause `{part}`: unknown knob `{other}`")),
            }
        }
        Ok(w)
    }

    /// Compact display label (`identity` for the no-op edit).
    pub fn label(&self) -> String {
        if self.is_identity() {
            return "identity".to_string();
        }
        let mut parts = Vec::new();
        if let Some(k) = &self.zero_kind {
            parts.push(format!("zero:{k}"));
        }
        if self.alpha_scale != 1.0 {
            parts.push(format!("alpha:{}", self.alpha_scale));
        }
        if self.beta_scale != 1.0 {
            parts.push(format!("beta:{}", self.beta_scale));
        }
        if self.gamma_scale != 1.0 {
            parts.push(format!("gamma:{}", self.gamma_scale));
        }
        if self.overlap {
            parts.push("overlap".to_string());
        }
        if self.serialize {
            parts.push("serialize".to_string());
        }
        parts.join(",")
    }
}

/// Replays the causal recurrence under `edit` and returns the edited
/// makespan.
///
/// The serial replay is the builder's recurrence verbatim, so the
/// identity edit returns [`Timeline::makespan_s`] bit-for-bit.
pub fn evaluate(tl: &Timeline, edit: &WhatIf) -> f64 {
    let n = tl.lanes.len();
    let overlapped = (tl.spec.overlap || edit.overlap) && !edit.serialize;
    // `clock[l]`: the lane's causal clock (after its last segment).
    // `synced[l]`: the clock at the lane's last synchronization — the
    // issue clock of a collective anchored there.
    let mut clock = vec![0.0f64; n];
    let mut synced = vec![0.0f64; n];
    // Issue clocks must be re-captured at each collective's anchor
    // position, because edited durations move every clock: group the
    // anchored nodes by capture position up front.
    let mut capture: Vec<Vec<usize>> = Vec::new();
    let mut issue_val = Vec::new();
    if overlapped {
        capture = vec![Vec::new(); tl.nodes.len() + 1];
        issue_val = vec![0.0f64; tl.nodes.len()];
        for (j, node) in tl.nodes.iter().enumerate() {
            if let Some(a) = node.issue_at {
                capture[a].push(j);
            }
        }
    }
    for (i, node) in tl.nodes.iter().enumerate() {
        if overlapped {
            for &j in &capture[i] {
                let mut iss = 0.0f64;
                for &l in &tl.nodes[j].lanes {
                    iss = iss.max(synced[l]);
                }
                issue_val[j] = iss;
            }
        }
        let class = node_kind(node);
        let dt = edited_dt(&class, node.dt_s, edit);
        match &node.kind {
            SegmentKind::Compute { .. } => {
                clock[node.lanes[0]] += dt;
            }
            SegmentKind::Collective { .. } | SegmentKind::Backoff => {
                let mut ready = 0.0f64;
                for &l in &node.lanes {
                    ready = ready.max(clock[l]);
                }
                // Backoffs are serialized in both modes (matching the
                // machine); a collective overlaps when the replay mode
                // says so and it carries an issue anchor.
                let post = if overlapped && node.issue_at.is_some() {
                    let alpha = edited_alpha(&class, edit);
                    (ready + alpha).max(issue_val[i] + dt)
                } else {
                    ready + dt
                };
                for &l in &node.lanes {
                    clock[l] = post;
                    synced[l] = post;
                }
            }
        }
    }
    tl.lanes
        .iter()
        .enumerate()
        .filter(|(_, l)| l.alive)
        .map(|(i, _)| clock[i])
        .fold(0.0, f64::max)
}

/// A named edit with its evaluated bound.
#[derive(Clone, Debug, PartialEq)]
pub struct WhatIfReport {
    /// Display label of the edit.
    pub label: String,
    /// Edited (counterfactual) makespan in seconds.
    pub makespan_s: f64,
    /// The unedited makespan it is compared against.
    pub baseline_s: f64,
}

impl WhatIfReport {
    /// `baseline / edited` (∞-safe: 1.0 when the edit is a no-op on a
    /// zero makespan).
    pub fn speedup(&self) -> f64 {
        if self.makespan_s > 0.0 {
            self.baseline_s / self.makespan_s
        } else if self.baseline_s > 0.0 {
            f64::INFINITY
        } else {
            1.0
        }
    }
}

/// Evaluates `edit` against `tl` and packages the comparison.
pub fn report(tl: &Timeline, edit: &WhatIf) -> WhatIfReport {
    WhatIfReport {
        label: edit.label(),
        makespan_s: evaluate(tl, edit),
        baseline_s: tl.makespan_s(),
    }
}

enum EditClass<'a> {
    Collective {
        kind: &'a str,
        alpha_s: f64,
        beta_s: f64,
    },
    Compute,
    Backoff,
}

fn node_kind(node: &crate::builder::Node) -> EditClass<'_> {
    match &node.kind {
        SegmentKind::Collective {
            kind,
            alpha_s,
            beta_s,
            ..
        } => EditClass::Collective {
            kind,
            alpha_s: *alpha_s,
            beta_s: *beta_s,
        },
        SegmentKind::Compute { .. } => EditClass::Compute,
        SegmentKind::Backoff => EditClass::Backoff,
    }
}

/// The edited duration of one segment. Scale 1 multiplications are
/// IEEE identities, so the identity edit reproduces `dt_s` exactly.
fn edited_dt(class: &EditClass<'_>, dt_s: f64, edit: &WhatIf) -> f64 {
    match *class {
        EditClass::Collective {
            kind,
            alpha_s,
            beta_s,
        } => {
            if edit.zero_kind.as_deref() == Some(kind) {
                return 0.0;
            }
            if edit.alpha_scale == 1.0 && edit.beta_scale == 1.0 {
                // `beta_s + alpha_s == dt_s` holds by construction,
                // but returning the recorded duration keeps the
                // identity obvious.
                dt_s
            } else {
                beta_s * edit.beta_scale + alpha_s * edit.alpha_scale
            }
        }
        EditClass::Compute => {
            if edit.gamma_scale == 1.0 {
                dt_s
            } else {
                dt_s * edit.gamma_scale
            }
        }
        EditClass::Backoff => {
            if edit.zero_kind.as_deref() == Some("backoff") {
                0.0
            } else {
                dt_s
            }
        }
    }
}

/// The edited latency (α) term of a collective — the part that stays
/// on the critical path under overlapped accounting. Zeroed kinds
/// lose their latency too; scale 1 is the bit-exact identity. Always
/// at most [`edited_dt`] for the same node, because the edited
/// bandwidth term is nonnegative.
fn edited_alpha(class: &EditClass<'_>, edit: &WhatIf) -> f64 {
    match *class {
        EditClass::Collective { kind, alpha_s, .. } => {
            if edit.zero_kind.as_deref() == Some(kind) {
                0.0
            } else if edit.alpha_scale == 1.0 {
                alpha_s
            } else {
                alpha_s * edit.alpha_scale
            }
        }
        EditClass::Compute | EditClass::Backoff => 0.0,
    }
}
