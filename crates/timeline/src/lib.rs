//! Per-rank causal timelines, critical-path extraction, and what-if
//! bottleneck analysis for MFBC runs.
//!
//! The machine layer meters cost (per-rank α–β–γ meters) and streams
//! a typed trace ([`mfbc_trace`]); this crate replays that stream
//! into a *causal* model of the run:
//!
//! 1. [`TimelineBuilder`] is a [`mfbc_trace::Recorder`] that folds the
//!    event stream into per-rank lanes of typed segments (collectives
//!    by kind with their exact α/β split, local compute, fault-retry
//!    backoff), each carrying modeled seconds, bytes/messages, and
//!    superstep/plan provenance. The builder maintains a replica of
//!    the machine's per-rank cost meters and can bit-compare itself
//!    against them ([`Timeline::validate_against`]).
//! 2. [`critical_path`] walks the BSP dependency DAG backwards from
//!    the lane that attains the makespan and returns the exact gating
//!    chain — segment durations folded left-to-right reproduce the
//!    makespan **bit-for-bit** ([`CriticalPath::sum_s`]). On top of
//!    it sit the ranked bottleneck table ([`bottlenecks`]) and
//!    per-superstep straggler attribution ([`step_attribution`]).
//! 3. [`whatif`] replays the causal recurrence under counterfactual
//!    edits (zero a collective kind, scale α/β/γ, perfectly overlap
//!    communication with compute) yielding modeled lower bounds; the
//!    identity edit reproduces the makespan bit-for-bit and every
//!    edit is monotone non-increasing.
//! 4. [`export`] renders the versioned `timeline.json` document (with
//!    a parser for round-trips and run-vs-run diffs), a
//!    self-contained Gantt-style HTML view, and metric-registry
//!    gauges — all using the shared exact-`f64` formatter so numbers
//!    agree bit-for-bit across exporters.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod builder;
pub mod critical;
pub mod export;
pub mod whatif;

pub use builder::{
    Lane, Marker, Node, RoundInfo, SegmentKind, StepInfo, Timeline, TimelineBuilder,
};
pub use critical::{
    analyze, bottlenecks, critical_path, step_attribution, Analysis, Bottleneck, CriticalPath,
    PathSegment, StepAttribution,
};
pub use export::{
    diff_docs, doc, parse_html_rank_rows, parse_timeline, register_metrics, render_diff, to_html,
    to_json, DiffRow, RoundRow, TimelineDoc, TIMELINE_JSON_VERSION,
};
pub use whatif::{evaluate, report, WhatIf, WhatIfReport};
