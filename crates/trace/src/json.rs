//! Minimal hand-rolled JSON emission (keeps this crate dependency-free).

use std::fmt::Write as _;

/// Escapes `s` for inclusion inside a JSON string literal.
pub(crate) fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a valid JSON number (non-finite values become
/// `null`, which JSON requires).
pub(crate) fn num(x: f64) -> String {
    if x.is_finite() {
        // `{:?}` round-trips f64 and always includes enough digits.
        format!("{x:?}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(esc("\u{1}"), "\\u0001");
    }

    #[test]
    fn numbers_are_json_safe() {
        assert_eq!(num(1.5), "1.5");
        assert_eq!(num(f64::NAN), "null");
        assert_eq!(num(f64::INFINITY), "null");
    }
}
