//! JSON-lines exporter: one self-describing JSON object per record.
//!
//! Machine-friendly for ad-hoc analysis (`jq`, pandas, …); see
//! [`crate::chrome`] for the timeline-viewer format.

use crate::event::{TraceEvent, TraceRecord};
use crate::json::{esc, num};
use std::fmt::Write as _;

/// Serializes one record as a single-line JSON object (no trailing
/// newline).
pub fn record_to_json(rec: &TraceRecord) -> String {
    let mut s = String::with_capacity(128);
    let _ = write!(
        s,
        "{{\"ts_us\":{},\"tid\":{},\"type\":\"{}\"",
        rec.ts_us,
        rec.tid,
        rec.event.tag()
    );
    match &rec.event {
        TraceEvent::Collective {
            kind,
            group,
            ranks,
            seq,
            bytes,
            msgs,
            bytes_charged,
            modeled_s,
        } => {
            let _ = write!(
                s,
                ",\"kind\":\"{kind}\",\"group\":{group},\"seq\":{seq},\"bytes\":{bytes},\"msgs\":{msgs},\"bytes_charged\":{bytes_charged},\"modeled_s\":{},\"ranks\":[",
                num(*modeled_s)
            );
            for (i, r) in ranks.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                let _ = write!(s, "{r}");
            }
            s.push(']');
        }
        TraceEvent::CollectiveIssue {
            kind,
            group,
            ranks,
            seq,
            bytes,
            msgs,
            bytes_charged,
            modeled_s,
            handle,
        } => {
            let _ = write!(
                s,
                ",\"kind\":\"{kind}\",\"group\":{group},\"seq\":{seq},\"bytes\":{bytes},\"msgs\":{msgs},\"bytes_charged\":{bytes_charged},\"modeled_s\":{},\"handle\":{handle},\"ranks\":[",
                num(*modeled_s)
            );
            for (i, r) in ranks.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                let _ = write!(s, "{r}");
            }
            s.push(']');
        }
        TraceEvent::CollectiveWait { handle } => {
            let _ = write!(s, ",\"handle\":{handle}");
        }
        TraceEvent::Compute {
            rank,
            ops,
            modeled_s,
        } => {
            let _ = write!(
                s,
                ",\"rank\":{rank},\"ops\":{ops},\"modeled_s\":{}",
                num(*modeled_s)
            );
        }
        TraceEvent::Backoff { ranks, seconds } => {
            let _ = write!(s, ",\"seconds\":{},\"ranks\":[", num(*seconds));
            for (i, r) in ranks.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                let _ = write!(s, "{r}");
            }
            s.push(']');
        }
        TraceEvent::Shrink { failed, p_before } => {
            let _ = write!(s, ",\"failed\":{failed},\"p_before\":{p_before}");
        }
        TraceEvent::Spgemm {
            plan,
            m,
            k,
            n,
            nnz_a,
            nnz_b,
            nnz_c,
            ops,
        } => {
            let _ = write!(
                s,
                ",\"plan\":\"{}\",\"m\":{m},\"k\":{k},\"n\":{n},\"nnz_a\":{nnz_a},\"nnz_b\":{nnz_b},\"nnz_c\":{nnz_c},\"ops\":{ops}",
                esc(plan)
            );
        }
        TraceEvent::Redist {
            what,
            bytes_moved,
            participants,
        } => {
            let _ = write!(
                s,
                ",\"what\":\"{what}\",\"bytes_moved\":{bytes_moved},\"participants\":{participants}"
            );
        }
        TraceEvent::Autotune {
            m,
            k,
            n,
            nnz_a,
            nnz_b,
            candidates,
            winner,
            winner_cost_s,
        } => {
            let _ = write!(
                s,
                ",\"m\":{m},\"k\":{k},\"n\":{n},\"nnz_a\":{nnz_a},\"nnz_b\":{nnz_b},\"winner\":\"{}\",\"winner_cost_s\":{},\"candidates\":[",
                esc(winner),
                num(*winner_cost_s)
            );
            for (i, c) in candidates.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                let _ = write!(
                    s,
                    "{{\"plan\":\"{}\",\"cost_s\":{},\"mem_bytes\":{},\"feasible\":{}}}",
                    esc(&c.plan),
                    num(c.cost_s),
                    c.mem_bytes,
                    c.feasible
                );
            }
            s.push(']');
        }
        TraceEvent::Superstep {
            phase,
            batch,
            step,
            frontier_nnz,
            active_rows,
        } => {
            let _ = write!(
                s,
                ",\"phase\":\"{phase}\",\"batch\":{batch},\"step\":{step},\"frontier_nnz\":{frontier_nnz},\"active_rows\":{active_rows}"
            );
        }
        TraceEvent::Pool {
            kernel,
            threads,
            tasks,
            busy_us,
            chunk_hist,
        } => {
            let _ = write!(
                s,
                ",\"kernel\":\"{kernel}\",\"threads\":{threads},\"tasks\":{tasks},\"busy_us\":["
            );
            for (i, b) in busy_us.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                let _ = write!(s, "{b}");
            }
            s.push_str("],\"chunk_hist\":[");
            for (i, c) in chunk_hist.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                let _ = write!(s, "{c}");
            }
            s.push(']');
        }
        TraceEvent::Fault { kind, rank, seq } => {
            let _ = write!(s, ",\"kind\":\"{kind}\",\"rank\":");
            match rank {
                Some(r) => {
                    let _ = write!(s, "{r}");
                }
                None => s.push_str("null"),
            }
            let _ = write!(s, ",\"seq\":{seq}");
        }
        TraceEvent::Recovery {
            action,
            detail,
            wasted_s,
        } => {
            let _ = write!(
                s,
                ",\"action\":\"{action}\",\"detail\":\"{}\",\"wasted_s\":{}",
                esc(detail),
                num(*wasted_s)
            );
        }
        TraceEvent::SpanBegin { name } | TraceEvent::SpanEnd { name } => {
            let _ = write!(s, ",\"name\":\"{}\"", esc(name));
        }
        TraceEvent::RequestAdmitted {
            request_id,
            query,
            deadline_s,
            queue_depth,
        } => {
            let _ = write!(
                s,
                ",\"request_id\":{request_id},\"query\":\"{query}\",\"deadline_s\":{},\"queue_depth\":{queue_depth}",
                num(*deadline_s)
            );
        }
        TraceEvent::RoundStart {
            round,
            requests,
            budget_s,
            store_version,
        } => {
            let _ = write!(
                s,
                ",\"round\":{round},\"requests\":{requests},\"budget_s\":{},\"store_version\":{store_version}",
                num(*budget_s)
            );
        }
        TraceEvent::DegradeDecision {
            round,
            rung,
            reason,
            budget_s,
            spent_s,
            est_batch_s,
            approx_k,
            store_version,
        } => {
            let _ = write!(
                s,
                ",\"round\":{round},\"rung\":\"{rung}\",\"reason\":\"{reason}\",\"budget_s\":{},\"spent_s\":{},\"est_batch_s\":{},\"approx_k\":{approx_k},\"store_version\":{store_version}",
                num(*budget_s),
                num(*spent_s),
                num(*est_batch_s)
            );
        }
        TraceEvent::RoundEnd {
            round,
            responses,
            elapsed_s,
            store_version,
        } => {
            let _ = write!(
                s,
                ",\"round\":{round},\"responses\":{responses},\"elapsed_s\":{},\"store_version\":{store_version}",
                num(*elapsed_s)
            );
        }
        TraceEvent::Counter { name, value } => {
            let _ = write!(s, ",\"name\":\"{name}\",\"value\":{}", num(*value));
        }
        TraceEvent::Log { level, message } => {
            let _ = write!(
                s,
                ",\"level\":\"{}\",\"message\":\"{}\"",
                level.name(),
                esc(message)
            );
        }
    }
    s.push('}');
    s
}

/// Serializes records as JSON-lines text (one object per line,
/// trailing newline).
pub fn to_jsonl(records: &[TraceRecord]) -> String {
    let mut out = String::new();
    for rec in records {
        out.push_str(&record_to_json(rec));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Level, PlanChoice};

    fn rec(event: TraceEvent) -> TraceRecord {
        TraceRecord {
            ts_us: 7,
            tid: 1,
            event,
        }
    }

    #[test]
    fn collective_line_is_flat_json() {
        let line = record_to_json(&rec(TraceEvent::Collective {
            kind: "allgather",
            group: 8,
            ranks: (0..8).collect(),
            seq: 3,
            bytes: 1024,
            msgs: 3,
            bytes_charged: 1024,
            modeled_s: 1.5e-6,
        }));
        assert!(line.starts_with("{\"ts_us\":7,\"tid\":1,\"type\":\"collective\""));
        assert!(line.contains("\"kind\":\"allgather\""));
        assert!(line.contains("\"seq\":3"));
        assert!(line.contains("\"modeled_s\":1.5e-6"));
        assert!(line.contains("\"ranks\":[0,1,2,3,4,5,6,7]"));
        assert!(line.ends_with('}'));
    }

    #[test]
    fn compute_backoff_and_shrink_lines() {
        let line = record_to_json(&rec(TraceEvent::Compute {
            rank: 2,
            ops: 1000,
            modeled_s: 1e-6,
        }));
        assert!(line.contains("\"type\":\"compute\""));
        assert!(line.contains("\"rank\":2,\"ops\":1000"));
        let line = record_to_json(&rec(TraceEvent::Backoff {
            ranks: vec![0, 1],
            seconds: 0.5,
        }));
        assert!(line.contains("\"type\":\"backoff\""));
        assert!(line.contains("\"seconds\":0.5,\"ranks\":[0,1]"));
        let line = record_to_json(&rec(TraceEvent::Shrink {
            failed: 3,
            p_before: 8,
        }));
        assert!(line.contains("\"type\":\"shrink\""));
        assert!(line.contains("\"failed\":3,\"p_before\":8"));
    }

    #[test]
    fn autotune_line_includes_candidate_table() {
        let line = record_to_json(&rec(TraceEvent::Autotune {
            m: 4,
            k: 4,
            n: 4,
            nnz_a: 9,
            nnz_b: 9,
            candidates: vec![
                PlanChoice {
                    plan: "1d(A)".into(),
                    cost_s: 2.0,
                    mem_bytes: 100,
                    feasible: true,
                },
                PlanChoice {
                    plan: "2d(AB,2x2)".into(),
                    cost_s: 1.0,
                    mem_bytes: 60,
                    feasible: true,
                },
            ],
            winner: "2d(AB,2x2)".into(),
            winner_cost_s: 1.0,
        }));
        assert!(line.contains("\"candidates\":[{\"plan\":\"1d(A)\""));
        assert!(line.contains("\"winner\":\"2d(AB,2x2)\""));
        assert!(line.contains("\"feasible\":true"));
    }

    #[test]
    fn log_messages_are_escaped() {
        let line = record_to_json(&rec(TraceEvent::Log {
            level: Level::Warn,
            message: "path \"a\\b\"\nnext".into(),
        }));
        assert!(line.contains("\\\"a\\\\b\\\"\\n"));
    }

    #[test]
    fn jsonl_one_line_per_record() {
        let records = vec![
            rec(TraceEvent::Counter {
                name: "x",
                value: 1.0,
            }),
            rec(TraceEvent::SpanBegin { name: "s".into() }),
        ];
        let text = to_jsonl(&records);
        assert_eq!(text.lines().count(), 2);
        assert!(text.ends_with('\n'));
    }
}
