//! `mfbc-trace`: structured tracing and metrics for the MFBC stack.
//!
//! The stack (machine model, tensor layer, MFBC driver) calls
//! [`emit`] with a *closure* producing a [`TraceEvent`]. When no
//! recorder is installed the closure is never invoked — the hot-path
//! cost is a single relaxed atomic load, with no allocation and no
//! locking. When one or more [`Recorder`]s are installed (globally
//! via [`install`], or per-thread via [`scoped`]), events are
//! dispatched to every active sink.
//!
//! Recorded runs can be exported as JSON-lines ([`to_jsonl`]) or as a
//! Chrome `trace_event` document ([`to_chrome_trace`]) that opens in
//! `chrome://tracing` / Perfetto, and aggregated into a Table-3-style
//! per-collective summary ([`collective_summary`]).

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod chrome;
mod event;
mod json;
mod jsonl;
mod recorder;
mod summary;

pub use chrome::to_chrome_trace;
pub use event::{Level, PlanChoice, TraceEvent, TraceRecord};
pub use jsonl::{record_to_json, to_jsonl};
pub use recorder::{
    current_tid, MemoryRecorder, NoopRecorder, Recorder, StderrRecorder, TeeRecorder,
};
pub use summary::{
    collective_summary, pool_summary, recovery_summary, render_pool_summary,
    render_recovery_summary, render_serve_summary, render_summary, serve_summary,
    total_modeled_comm_s, KindTotals, PoolTotals, RecoveryTotals, ServeTotals,
};

use std::cell::RefCell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Count of installed recorders across all threads. Zero means
/// tracing is disabled and [`emit`] returns immediately.
static ACTIVE: AtomicUsize = AtomicUsize::new(0);

/// Globally installed sinks (process-wide).
static GLOBAL: Mutex<Vec<Arc<dyn Recorder>>> = Mutex::new(Vec::new());

thread_local! {
    /// Sinks installed for the current thread only (see [`scoped`]).
    static SCOPED: RefCell<Vec<Arc<dyn Recorder>>> = const { RefCell::new(Vec::new()) };
}

/// Whether at least one recorder is installed anywhere.
///
/// This is the fast path: a single relaxed atomic load. Instrumented
/// code may use it to skip gathering event inputs that are not
/// already at hand.
#[inline]
pub fn enabled() -> bool {
    ACTIVE.load(Ordering::Relaxed) != 0
}

/// Emits the event produced by `build` to every active recorder.
///
/// When tracing is disabled, `build` is **not** invoked — callers can
/// freely capture `format!` work or table construction inside the
/// closure without paying for it in untraced runs.
#[inline]
pub fn emit<F: FnOnce() -> TraceEvent>(build: F) {
    if !enabled() {
        return;
    }
    dispatch(build());
}

#[cold]
fn dispatch(event: TraceEvent) {
    // Snapshot the sink lists first so no lock is held while sinks
    // run (a sink may itself take locks, e.g. MemoryRecorder).
    let global: Vec<Arc<dyn Recorder>> = GLOBAL.lock().expect("trace registry lock").clone();
    let scoped: Vec<Arc<dyn Recorder>> = SCOPED.with(|s| s.borrow().clone());
    let total = global.len() + scoped.len();
    let mut remaining = total;
    for sink in global.iter().chain(scoped.iter()) {
        remaining -= 1;
        if remaining == 0 {
            return sink.record(event);
        }
        sink.record(event.clone());
    }
}

/// Installs a process-wide recorder. Pair with [`uninstall_all`].
pub fn install(rec: Arc<dyn Recorder>) {
    GLOBAL.lock().expect("trace registry lock").push(rec);
    ACTIVE.fetch_add(1, Ordering::Relaxed);
}

/// Removes every process-wide recorder (thread-scoped recorders are
/// unaffected).
pub fn uninstall_all() {
    let mut global = GLOBAL.lock().expect("trace registry lock");
    let n = global.len();
    global.clear();
    drop(global);
    ACTIVE.fetch_sub(n, Ordering::Relaxed);
}

/// Runs `f` with `rec` installed for the current thread only, then
/// removes it (also on panic). The test-friendly way to capture a
/// trace without cross-test interference.
pub fn scoped<R>(rec: Arc<dyn Recorder>, f: impl FnOnce() -> R) -> R {
    struct Guard;
    impl Drop for Guard {
        fn drop(&mut self) {
            SCOPED.with(|s| {
                s.borrow_mut().pop();
            });
            ACTIVE.fetch_sub(1, Ordering::Relaxed);
        }
    }
    SCOPED.with(|s| s.borrow_mut().push(rec));
    ACTIVE.fetch_add(1, Ordering::Relaxed);
    let _guard = Guard;
    f()
}

/// A wall-clock span: emits `SpanBegin` on creation and `SpanEnd` on
/// drop. When tracing is disabled both the name closure and the
/// events are skipped entirely.
#[must_use = "a span measures the scope it is alive for"]
pub struct Span {
    name: Option<String>,
}

/// Opens a span named by `name` (invoked only while tracing is
/// enabled). Hold the returned guard for the duration of the work:
///
/// ```
/// let _span = mfbc_trace::span(|| "mm_auto".to_string());
/// ```
#[inline]
pub fn span<F: FnOnce() -> String>(name: F) -> Span {
    if !enabled() {
        return Span { name: None };
    }
    let name = name();
    dispatch(TraceEvent::SpanBegin { name: name.clone() });
    Span { name: Some(name) }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(name) = self.name.take() {
            dispatch(TraceEvent::SpanEnd { name });
        }
    }
}

/// Emits a counter sample.
#[inline]
pub fn counter(name: &'static str, value: f64) {
    emit(|| TraceEvent::Counter { name, value });
}

/// Routes a log message through the trace pipeline. `message` is
/// invoked lazily; when tracing is disabled, [`Level::Warn`] messages
/// still reach stderr so problems are never silently dropped, while
/// [`Level::Info`] messages are discarded.
pub fn log<F: FnOnce() -> String>(level: Level, message: F) {
    if enabled() {
        dispatch(TraceEvent::Log {
            level,
            message: message(),
        });
    } else if level == Level::Warn {
        eprintln!("[warn] {}", message());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_emit_never_builds_the_event() {
        // This test relies on no *global* recorder being installed;
        // other tests in this crate only use scoped recorders on
        // their own threads, which cannot make this thread's flag
        // fire because dispatch still finds no sink here.
        let mut built = false;
        if !enabled() {
            emit(|| {
                built = true;
                TraceEvent::Counter {
                    name: "x",
                    value: 0.0,
                }
            });
            assert!(!built, "event closure ran while tracing was disabled");
        }
    }

    #[test]
    fn disabled_span_skips_name_construction() {
        let mut named = false;
        if !enabled() {
            let _span = span(|| {
                named = true;
                "unused".to_string()
            });
            assert!(!named);
        }
    }

    #[test]
    fn scoped_recorder_captures_and_unwinds() {
        let rec = Arc::new(MemoryRecorder::new());
        let out = scoped(rec.clone(), || {
            counter("inside", 1.0);
            let _span = span(|| "work".to_string());
            counter("inside", 2.0);
            42
        });
        assert_eq!(out, 42);
        let records = rec.snapshot();
        // counter, span begin, counter, span end
        assert_eq!(records.len(), 4);
        assert_eq!(records[0].event.tag(), "counter");
        assert_eq!(records[1].event.tag(), "span_begin");
        assert_eq!(records[3].event.tag(), "span_end");
        counter("outside", 3.0);
        assert_eq!(rec.len(), 4, "recorder still active after scoped exit");
    }

    #[test]
    fn scoped_unwinds_on_panic() {
        let rec = Arc::new(MemoryRecorder::new());
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            scoped(rec.clone(), || panic!("boom"));
        }));
        assert!(result.is_err());
        counter("after", 1.0);
        assert_eq!(rec.len(), 0, "scoped recorder leaked past a panic");
    }

    #[test]
    fn multiple_scoped_sinks_all_receive() {
        let a = Arc::new(MemoryRecorder::new());
        let b = Arc::new(MemoryRecorder::new());
        scoped(a.clone(), || {
            scoped(b.clone(), || {
                counter("x", 5.0);
            });
            counter("y", 6.0);
        });
        assert_eq!(a.len(), 2);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn log_warn_reaches_sink_when_enabled() {
        let rec = Arc::new(MemoryRecorder::new());
        scoped(rec.clone(), || {
            log(Level::Warn, || "careful".to_string());
            log(Level::Info, || "fyi".to_string());
        });
        let records = rec.snapshot();
        assert_eq!(records.len(), 2);
        assert!(matches!(
            &records[0].event,
            TraceEvent::Log {
                level: Level::Warn,
                message
            } if message == "careful"
        ));
    }
}
