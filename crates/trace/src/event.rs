//! Typed trace events emitted by the MFBC stack.

/// Severity of a [`TraceEvent::Log`] message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Level {
    /// Informational progress message.
    Info,
    /// A recoverable problem worth surfacing even without a sink.
    Warn,
}

impl Level {
    /// Lower-case name, as written by the exporters.
    pub fn name(self) -> &'static str {
        match self {
            Level::Info => "info",
            Level::Warn => "warn",
        }
    }
}

/// One autotuner candidate: a plan with its modeled cost and memory
/// footprint, plus whether it passed the per-rank memory gate.
#[derive(Clone, Debug, PartialEq)]
pub struct PlanChoice {
    /// Compact plan label (e.g. `2d(AB,4x4)`).
    pub plan: String,
    /// Modeled execution time in seconds under the α–β–γ model.
    pub cost_s: f64,
    /// Modeled peak memory per rank in bytes.
    pub mem_bytes: u64,
    /// Whether the plan fit within the per-rank memory budget.
    pub feasible: bool,
}

/// A structured event observed somewhere in the stack.
///
/// Events carry *modeled* quantities (α–β times, charged bytes) next
/// to measured ones (wall-clock timestamps are stamped by the
/// recorder), so a trace can be cross-checked against the cost
/// accounting that produced it.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEvent {
    /// A collective communication charged to the machine model.
    Collective {
        /// Collective kind name (e.g. `allgather`).
        kind: &'static str,
        /// Number of ranks in the participating group.
        group: usize,
        /// Participating rank ids, in the machine's numbering at the
        /// time the collective was issued.
        ranks: Vec<usize>,
        /// Collective sequence number (the machine's issue order).
        seq: u64,
        /// Per-rank payload in bytes, as passed to the cost model.
        bytes: u64,
        /// Messages charged on the critical path.
        msgs: u64,
        /// Bytes charged on the critical path.
        bytes_charged: u64,
        /// Modeled time in seconds (α–β closed form).
        modeled_s: f64,
    },
    /// A nonblocking collective issued to the machine model; its cost
    /// lands on the clocks at the matching [`TraceEvent::CollectiveWait`].
    /// Carries the same cost fields as [`TraceEvent::Collective`] so a
    /// replayer can price the operation without waiting for the wait.
    CollectiveIssue {
        /// Collective kind name (e.g. `allgather`).
        kind: &'static str,
        /// Number of ranks in the participating group.
        group: usize,
        /// Participating rank ids at issue time.
        ranks: Vec<usize>,
        /// Collective sequence number (the machine's issue order).
        seq: u64,
        /// Per-rank payload in bytes, as passed to the cost model.
        bytes: u64,
        /// Messages charged on the critical path.
        msgs: u64,
        /// Bytes charged on the critical path.
        bytes_charged: u64,
        /// Modeled time in seconds (α–β closed form).
        modeled_s: f64,
        /// Machine-unique handle pairing this issue with its wait.
        handle: u64,
    },
    /// Completion of a nonblocking collective: the handle's modeled
    /// cost is charged, with the transfer window running from the
    /// issue point under overlapped accounting.
    CollectiveWait {
        /// Handle of the completed [`TraceEvent::CollectiveIssue`].
        handle: u64,
    },
    /// Local compute charged to one rank of the machine model.
    Compute {
        /// Rank the operations were charged to.
        rank: usize,
        /// Multiply–add operations charged.
        ops: u64,
        /// Modeled time in seconds (`ops · γ`).
        modeled_s: f64,
    },
    /// A retry backoff wait charged to a group after a transient
    /// fault (the group synchronizes, then sits out the wait).
    Backoff {
        /// Ranks that waited out the backoff.
        ranks: Vec<usize>,
        /// Modeled seconds of backoff charged.
        seconds: f64,
    },
    /// The machine shrank by one rank (crash recovery); subsequent
    /// events use the renumbered `0..p-1` rank ids.
    Shrink {
        /// Rank that was removed, in the pre-shrink numbering.
        failed: usize,
        /// Rank count before the shrink.
        p_before: usize,
    },
    /// One distributed SpGEMM kernel invocation.
    Spgemm {
        /// Plan label (e.g. `1d(A)`, `cannon(q=4)`).
        plan: String,
        /// Rows of A / C.
        m: u64,
        /// Inner (contraction) dimension.
        k: u64,
        /// Columns of B / C.
        n: u64,
        /// Nonzeros of A.
        nnz_a: u64,
        /// Nonzeros of B.
        nnz_b: u64,
        /// Nonzeros of the product C.
        nnz_c: u64,
        /// Useful multiply–add operations performed.
        ops: u64,
    },
    /// A tensor redistribution between layouts.
    Redist {
        /// What moved (e.g. `blocks`, `window`).
        what: &'static str,
        /// Total bytes that changed owner.
        bytes_moved: u64,
        /// Ranks involved in the exchange.
        participants: usize,
    },
    /// An autotuner decision with the full candidate table.
    Autotune {
        /// Rows of A / C.
        m: u64,
        /// Inner dimension.
        k: u64,
        /// Columns of B / C.
        n: u64,
        /// Nonzeros of A.
        nnz_a: u64,
        /// Nonzeros of B.
        nnz_b: u64,
        /// Every candidate plan considered, with modeled cost.
        candidates: Vec<PlanChoice>,
        /// Label of the winning plan.
        winner: String,
        /// Modeled cost of the winner in seconds.
        winner_cost_s: f64,
    },
    /// One MFBC superstep (a frontier-advance iteration).
    Superstep {
        /// `forward` (MFBF) or `backward` (MFBr).
        phase: &'static str,
        /// Source-batch index within the run.
        batch: usize,
        /// Iteration number within the phase (0-based).
        step: usize,
        /// Nonzeros in the current frontier.
        frontier_nnz: u64,
        /// Frontier rows (batch sources) still active this step.
        active_rows: u64,
    },
    /// One shared-memory pool fan-out executed by a local kernel
    /// (`mfbc-parallel`).
    Pool {
        /// Kernel that fanned out (e.g. `spgemm`, `transpose`).
        kernel: &'static str,
        /// Participants the pool ran with (workers + calling thread).
        threads: usize,
        /// Jobs (chunks) executed by the call.
        tasks: u64,
        /// Busy microseconds per participant (index 0 is the caller).
        busy_us: Vec<u64>,
        /// Chunk-size histogram: `chunk_hist[b]` counts chunks whose
        /// item count lies in `[2^b, 2^{b+1})`.
        chunk_hist: Vec<u64>,
    },
    /// An injected fault fired in the simulated machine.
    Fault {
        /// Fault kind name (`crash`, `transient`, `oom`).
        kind: &'static str,
        /// Targeted rank, when the fault targets one.
        rank: Option<usize>,
        /// Collective sequence number at which it fired.
        seq: u64,
    },
    /// A recovery decision taken by a fault-tolerant driver.
    Recovery {
        /// Action taken (`retry`, `replan`, `halve-batch`, `restore`).
        action: &'static str,
        /// Human-readable context (e.g. `p=8->7 plan=auto`).
        detail: String,
        /// Modeled seconds of work discarded by rolling back.
        wasted_s: f64,
    },
    /// Opens a nested wall-clock span; paired with [`TraceEvent::SpanEnd`].
    SpanBegin {
        /// Span name (e.g. `mm_auto`, `batch 3`).
        name: String,
    },
    /// Closes the most recent span with the same name on this thread.
    SpanEnd {
        /// Span name; matches the corresponding `SpanBegin`.
        name: String,
    },
    /// A request admitted into the serving engine's bounded queue
    /// (`mfbc-serve`). Carries the request's provenance so downstream
    /// consumers can attribute later round work to it.
    RequestAdmitted {
        /// Caller-chosen request id (echoed on the response).
        request_id: u64,
        /// Query kind label (`full`, `topk`, `vertex`).
        query: &'static str,
        /// Modeled-seconds budget; `f64::INFINITY` when unbounded.
        deadline_s: f64,
        /// Queue depth after admission.
        queue_depth: u64,
    },
    /// A coalesced serve round began: the engine drained its queue
    /// and is about to spend the round budget. Collectives and
    /// compute emitted between this and the matching
    /// [`TraceEvent::RoundEnd`] belong to the round.
    RoundStart {
        /// 1-based round id (the engine's drain counter).
        round: u64,
        /// Requests coalesced into the round.
        requests: u64,
        /// Shared budget in modeled seconds (the most patient
        /// request's deadline; `f64::INFINITY` when unbounded).
        budget_s: f64,
        /// Score-store version entering the round.
        store_version: u64,
    },
    /// The degradation-ladder decision for one serve round, with the
    /// budget arithmetic that produced it.
    DegradeDecision {
        /// Round the decision belongs to.
        round: u64,
        /// Chosen rung (`exact`, `approx`, `stale`).
        rung: &'static str,
        /// Why that rung (`complete`, `budget`, `min-k`,
        /// `breaker-open`, `poisoned`).
        reason: &'static str,
        /// The round's shared budget in modeled seconds.
        budget_s: f64,
        /// Modeled seconds already spent when the decision was made.
        spent_s: f64,
        /// Cost the ladder charged one more exact batch.
        est_batch_s: f64,
        /// Sample size of the approx rung (0 for other rungs).
        approx_k: u64,
        /// Score-store version at decision time.
        store_version: u64,
    },
    /// A coalesced serve round finished; every coalesced request was
    /// answered.
    RoundEnd {
        /// Round id matching the [`TraceEvent::RoundStart`].
        round: u64,
        /// Responses produced (equals the round's request count).
        responses: u64,
        /// Modeled seconds the round took end to end.
        elapsed_s: f64,
        /// Score-store version leaving the round.
        store_version: u64,
    },
    /// A sampled numeric value (rendered as a counter track).
    Counter {
        /// Counter name.
        name: &'static str,
        /// Sampled value.
        value: f64,
    },
    /// A free-form log message routed through the trace pipeline.
    Log {
        /// Severity.
        level: Level,
        /// Message text.
        message: String,
    },
}

impl TraceEvent {
    /// Short type tag used by the exporters.
    pub fn tag(&self) -> &'static str {
        match self {
            TraceEvent::Collective { .. } => "collective",
            TraceEvent::CollectiveIssue { .. } => "collective_issue",
            TraceEvent::CollectiveWait { .. } => "collective_wait",
            TraceEvent::Compute { .. } => "compute",
            TraceEvent::Backoff { .. } => "backoff",
            TraceEvent::Shrink { .. } => "shrink",
            TraceEvent::Spgemm { .. } => "spgemm",
            TraceEvent::Redist { .. } => "redist",
            TraceEvent::Autotune { .. } => "autotune",
            TraceEvent::Superstep { .. } => "superstep",
            TraceEvent::Pool { .. } => "pool",
            TraceEvent::Fault { .. } => "fault",
            TraceEvent::Recovery { .. } => "recovery",
            TraceEvent::SpanBegin { .. } => "span_begin",
            TraceEvent::SpanEnd { .. } => "span_end",
            TraceEvent::RequestAdmitted { .. } => "request_admitted",
            TraceEvent::RoundStart { .. } => "round_start",
            TraceEvent::DegradeDecision { .. } => "degrade_decision",
            TraceEvent::RoundEnd { .. } => "round_end",
            TraceEvent::Counter { .. } => "counter",
            TraceEvent::Log { .. } => "log",
        }
    }
}

/// An event plus the context the recorder stamped on it.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceRecord {
    /// Microseconds since the recorder was created.
    pub ts_us: u64,
    /// Small dense id of the emitting thread.
    pub tid: u64,
    /// The event itself.
    pub event: TraceEvent,
}
