//! Recorder sinks: where emitted events go.

use crate::event::{TraceEvent, TraceRecord};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// A sink for trace events.
///
/// Implementations must be cheap and non-blocking where possible:
/// `record` is called from instrumented hot paths (though only while
/// a recorder is installed — disabled tracing never reaches here).
pub trait Recorder: Send + Sync {
    /// Consumes one event.
    fn record(&self, event: TraceEvent);

    /// Whether this sink currently wants events. A [`TeeRecorder`]
    /// skips disabled sinks *before* cloning the event for them, so a
    /// temporarily switched-off sink costs one virtual call, nothing
    /// more. Defaults to always-on.
    fn enabled(&self) -> bool {
        true
    }
}

/// Fans every event out to N inner sinks, in insertion order.
///
/// This is how `--trace-out` (a [`MemoryRecorder`] for later export)
/// and a live aggregator (e.g. `mfbc-profile`'s `Profiler`) share one
/// installed recorder slot in the same invocation. The last *active*
/// sink receives the event by value; earlier ones get clones; sinks
/// whose [`Recorder::enabled`] returns `false` are skipped without a
/// clone being made for them.
#[derive(Default)]
pub struct TeeRecorder {
    sinks: Vec<std::sync::Arc<dyn Recorder>>,
}

impl TeeRecorder {
    /// An empty tee (records to nobody until sinks are added).
    pub fn new() -> TeeRecorder {
        TeeRecorder::default()
    }

    /// Builds a tee over `sinks`, delivered to in the given order.
    pub fn over(sinks: Vec<std::sync::Arc<dyn Recorder>>) -> TeeRecorder {
        TeeRecorder { sinks }
    }

    /// Appends a sink; it will receive events after all earlier sinks.
    pub fn push(&mut self, sink: std::sync::Arc<dyn Recorder>) {
        self.sinks.push(sink);
    }

    /// Number of attached sinks (enabled or not).
    pub fn len(&self) -> usize {
        self.sinks.len()
    }

    /// Whether the tee has no sinks at all.
    pub fn is_empty(&self) -> bool {
        self.sinks.is_empty()
    }
}

impl Recorder for TeeRecorder {
    fn record(&self, event: TraceEvent) {
        // Resolve the active set first so the by-value hand-off goes
        // to the last sink that will actually consume the event.
        let active: Vec<&std::sync::Arc<dyn Recorder>> =
            self.sinks.iter().filter(|s| s.enabled()).collect();
        let mut remaining = active.len();
        for sink in active {
            remaining -= 1;
            if remaining == 0 {
                return sink.record(event);
            }
            sink.record(event.clone());
        }
    }

    /// A tee is enabled iff any inner sink is — so nested tees
    /// short-circuit too.
    fn enabled(&self) -> bool {
        self.sinks.iter().any(|s| s.enabled())
    }
}

static NEXT_TID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

/// Small dense id of the calling thread (stable for its lifetime).
pub fn current_tid() -> u64 {
    TID.with(|t| *t)
}

/// Counts events and discards them. Useful for overhead measurements
/// and for asserting *that* instrumentation fired without retaining
/// anything.
#[derive(Debug, Default)]
pub struct NoopRecorder {
    count: AtomicU64,
}

impl NoopRecorder {
    /// A fresh counter-only recorder.
    pub fn new() -> NoopRecorder {
        NoopRecorder::default()
    }

    /// Number of events received so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }
}

impl Recorder for NoopRecorder {
    fn record(&self, _event: TraceEvent) {
        self.count.fetch_add(1, Ordering::Relaxed);
    }
}

/// Thread-safe in-memory recorder stamping wall-clock microseconds
/// and thread ids onto every event.
#[derive(Debug)]
pub struct MemoryRecorder {
    start: Instant,
    records: Mutex<Vec<TraceRecord>>,
}

impl Default for MemoryRecorder {
    fn default() -> MemoryRecorder {
        MemoryRecorder::new()
    }
}

impl MemoryRecorder {
    /// An empty recorder; timestamps count from now.
    pub fn new() -> MemoryRecorder {
        MemoryRecorder {
            start: Instant::now(),
            records: Mutex::new(Vec::new()),
        }
    }

    /// Copies out everything recorded so far.
    pub fn snapshot(&self) -> Vec<TraceRecord> {
        self.records.lock().expect("trace records lock").clone()
    }

    /// Drains and returns everything recorded so far.
    pub fn take(&self) -> Vec<TraceRecord> {
        std::mem::take(&mut *self.records.lock().expect("trace records lock"))
    }

    /// Number of records held.
    pub fn len(&self) -> usize {
        self.records.lock().expect("trace records lock").len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Recorder for MemoryRecorder {
    fn record(&self, event: TraceEvent) {
        let rec = TraceRecord {
            ts_us: self.start.elapsed().as_micros() as u64,
            tid: current_tid(),
            event,
        };
        self.records.lock().expect("trace records lock").push(rec);
    }
}

/// Human-readable recorder writing one line per event to stderr.
/// Backs `--verbose` modes; span ends and counters are kept terse.
#[derive(Debug, Default)]
pub struct StderrRecorder;

impl StderrRecorder {
    /// A stderr line-printer.
    pub fn new() -> StderrRecorder {
        StderrRecorder
    }
}

impl Recorder for StderrRecorder {
    fn record(&self, event: TraceEvent) {
        match &event {
            TraceEvent::Log { level, message } => {
                eprintln!("[{}] {message}", level.name());
            }
            TraceEvent::SpanBegin { name } => eprintln!("[trace] >> {name}"),
            TraceEvent::SpanEnd { name } => eprintln!("[trace] << {name}"),
            TraceEvent::Collective {
                kind,
                group,
                bytes,
                modeled_s,
                ..
            } => eprintln!("[trace] collective {kind} p={group} bytes={bytes} t={modeled_s:.3e}s"),
            TraceEvent::CollectiveIssue {
                kind,
                group,
                bytes,
                modeled_s,
                handle,
                ..
            } => eprintln!(
                "[trace] icollective {kind} p={group} bytes={bytes} t={modeled_s:.3e}s handle={handle}"
            ),
            TraceEvent::CollectiveWait { handle } => {
                eprintln!("[trace] wait handle={handle}")
            }
            TraceEvent::Spgemm {
                plan,
                m,
                k,
                n,
                nnz_c,
                ops,
                ..
            } => eprintln!("[trace] spgemm {plan} {m}x{k}x{n} nnz_c={nnz_c} ops={ops}"),
            TraceEvent::Redist {
                what,
                bytes_moved,
                participants,
            } => eprintln!("[trace] redist {what} bytes={bytes_moved} p={participants}"),
            TraceEvent::Autotune {
                winner,
                winner_cost_s,
                candidates,
                ..
            } => eprintln!(
                "[trace] autotune -> {winner} ({winner_cost_s:.3e}s, {} candidates)",
                candidates.len()
            ),
            TraceEvent::Superstep {
                phase,
                batch,
                step,
                frontier_nnz,
                active_rows,
            } => eprintln!(
                "[trace] superstep {phase} batch={batch} step={step} frontier={frontier_nnz} active={active_rows}"
            ),
            TraceEvent::Pool {
                kernel,
                threads,
                tasks,
                busy_us,
                ..
            } => eprintln!(
                "[trace] pool {kernel} threads={threads} tasks={tasks} busy_us={}",
                busy_us.iter().sum::<u64>()
            ),
            TraceEvent::Fault { kind, rank, seq } => match rank {
                Some(r) => eprintln!("[trace] fault {kind} rank={r} seq={seq}"),
                None => eprintln!("[trace] fault {kind} seq={seq}"),
            },
            TraceEvent::Recovery {
                action,
                detail,
                wasted_s,
            } => eprintln!("[trace] recovery {action} {detail} wasted={wasted_s:.3e}s"),
            TraceEvent::Compute {
                rank,
                ops,
                modeled_s,
            } => eprintln!("[trace] compute rank={rank} ops={ops} t={modeled_s:.3e}s"),
            TraceEvent::Backoff { ranks, seconds } => {
                eprintln!("[trace] backoff p={} wait={seconds:.3e}s", ranks.len())
            }
            TraceEvent::Shrink { failed, p_before } => {
                eprintln!("[trace] shrink -rank{failed} p={p_before}->{}", p_before - 1)
            }
            TraceEvent::RequestAdmitted {
                request_id,
                query,
                deadline_s,
                queue_depth,
            } => eprintln!(
                "[trace] admitted id={request_id} query={query} deadline={deadline_s:.3e}s depth={queue_depth}"
            ),
            TraceEvent::RoundStart {
                round,
                requests,
                budget_s,
                ..
            } => eprintln!("[trace] round {round} start requests={requests} budget={budget_s:.3e}s"),
            TraceEvent::DegradeDecision {
                round,
                rung,
                reason,
                budget_s,
                spent_s,
                ..
            } => eprintln!(
                "[trace] round {round} degrade -> {rung} ({reason}) budget={budget_s:.3e}s spent={spent_s:.3e}s"
            ),
            TraceEvent::RoundEnd {
                round,
                responses,
                elapsed_s,
                ..
            } => eprintln!("[trace] round {round} end responses={responses} elapsed={elapsed_s:.3e}s"),
            TraceEvent::Counter { name, value } => {
                eprintln!("[trace] counter {name}={value}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn warn_event(message: &str) -> TraceEvent {
        TraceEvent::Log {
            level: crate::event::Level::Warn,
            message: message.to_string(),
        }
    }

    #[test]
    fn memory_recorder_stamps_monotonic_timestamps() {
        let rec = MemoryRecorder::new();
        for i in 0..4 {
            rec.record(TraceEvent::Counter {
                name: "i",
                value: i as f64,
            });
        }
        let records = rec.snapshot();
        assert_eq!(records.len(), 4);
        for w in records.windows(2) {
            assert!(w[0].ts_us <= w[1].ts_us);
        }
        assert_eq!(rec.take().len(), 4);
        assert!(rec.is_empty());
    }

    #[test]
    fn noop_recorder_counts() {
        let rec = NoopRecorder::new();
        rec.record(warn_event("x"));
        rec.record(warn_event("y"));
        assert_eq!(rec.count(), 2);
    }

    #[test]
    fn tids_are_stable_per_thread() {
        let a = current_tid();
        let b = current_tid();
        assert_eq!(a, b);
        let other = std::thread::spawn(current_tid).join().unwrap();
        assert_ne!(a, other);
    }

    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    /// Test sink logging (label, event) arrivals into a shared journal
    /// so cross-sink ordering is observable; gate toggles `enabled`.
    struct Journaling {
        label: &'static str,
        journal: Arc<Mutex<Vec<(&'static str, String)>>>,
        gate: AtomicBool,
    }

    impl Journaling {
        fn new(
            label: &'static str,
            journal: Arc<Mutex<Vec<(&'static str, String)>>>,
        ) -> Journaling {
            Journaling {
                label,
                journal,
                gate: AtomicBool::new(true),
            }
        }
    }

    impl Recorder for Journaling {
        fn record(&self, event: TraceEvent) {
            self.journal
                .lock()
                .unwrap()
                .push((self.label, event.tag().to_string()));
        }
        fn enabled(&self) -> bool {
            self.gate.load(Ordering::Relaxed)
        }
    }

    fn counter_event(value: f64) -> TraceEvent {
        TraceEvent::Counter { name: "x", value }
    }

    #[test]
    fn tee_delivers_in_insertion_order() {
        let journal = Arc::new(Mutex::new(Vec::new()));
        let a = Arc::new(Journaling::new("a", journal.clone()));
        let b = Arc::new(Journaling::new("b", journal.clone()));
        let mut tee = TeeRecorder::new();
        assert!(tee.is_empty());
        tee.push(a.clone());
        tee.push(b.clone());
        assert_eq!(tee.len(), 2);
        tee.record(counter_event(1.0));
        tee.record(warn_event("y"));
        let got = journal.lock().unwrap().clone();
        assert_eq!(
            got,
            vec![
                ("a", "counter".to_string()),
                ("b", "counter".to_string()),
                ("a", "log".to_string()),
                ("b", "log".to_string()),
            ],
            "per-event fan-out must visit sinks in insertion order"
        );
    }

    #[test]
    fn tee_skips_disabled_sinks_and_resumes() {
        let journal = Arc::new(Mutex::new(Vec::new()));
        let a = Arc::new(Journaling::new("a", journal.clone()));
        let b = Arc::new(Journaling::new("b", journal.clone()));
        let tee = TeeRecorder::over(vec![a.clone(), b.clone()]);
        b.gate.store(false, Ordering::Relaxed);
        tee.record(counter_event(1.0));
        assert_eq!(journal.lock().unwrap().len(), 1, "disabled sink received");
        // The tee itself stays enabled while any sink is.
        assert!(tee.enabled());
        a.gate.store(false, Ordering::Relaxed);
        assert!(!tee.enabled(), "all sinks off must disable the tee");
        tee.record(counter_event(2.0));
        assert_eq!(journal.lock().unwrap().len(), 1);
        // Re-enabling resumes delivery.
        a.gate.store(true, Ordering::Relaxed);
        b.gate.store(true, Ordering::Relaxed);
        tee.record(counter_event(3.0));
        let got = journal.lock().unwrap().clone();
        assert_eq!(got.len(), 3);
        assert_eq!(got[1], ("a", "counter".to_string()));
        assert_eq!(got[2], ("b", "counter".to_string()));
    }

    #[test]
    fn empty_tee_is_disabled_noop() {
        let tee = TeeRecorder::new();
        assert!(!tee.enabled());
        tee.record(counter_event(0.0)); // must not panic
    }
}
