//! Recorder sinks: where emitted events go.

use crate::event::{TraceEvent, TraceRecord};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// A sink for trace events.
///
/// Implementations must be cheap and non-blocking where possible:
/// `record` is called from instrumented hot paths (though only while
/// a recorder is installed — disabled tracing never reaches here).
pub trait Recorder: Send + Sync {
    /// Consumes one event.
    fn record(&self, event: TraceEvent);
}

static NEXT_TID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

/// Small dense id of the calling thread (stable for its lifetime).
pub fn current_tid() -> u64 {
    TID.with(|t| *t)
}

/// Counts events and discards them. Useful for overhead measurements
/// and for asserting *that* instrumentation fired without retaining
/// anything.
#[derive(Debug, Default)]
pub struct NoopRecorder {
    count: AtomicU64,
}

impl NoopRecorder {
    /// A fresh counter-only recorder.
    pub fn new() -> NoopRecorder {
        NoopRecorder::default()
    }

    /// Number of events received so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }
}

impl Recorder for NoopRecorder {
    fn record(&self, _event: TraceEvent) {
        self.count.fetch_add(1, Ordering::Relaxed);
    }
}

/// Thread-safe in-memory recorder stamping wall-clock microseconds
/// and thread ids onto every event.
#[derive(Debug)]
pub struct MemoryRecorder {
    start: Instant,
    records: Mutex<Vec<TraceRecord>>,
}

impl Default for MemoryRecorder {
    fn default() -> MemoryRecorder {
        MemoryRecorder::new()
    }
}

impl MemoryRecorder {
    /// An empty recorder; timestamps count from now.
    pub fn new() -> MemoryRecorder {
        MemoryRecorder {
            start: Instant::now(),
            records: Mutex::new(Vec::new()),
        }
    }

    /// Copies out everything recorded so far.
    pub fn snapshot(&self) -> Vec<TraceRecord> {
        self.records.lock().expect("trace records lock").clone()
    }

    /// Drains and returns everything recorded so far.
    pub fn take(&self) -> Vec<TraceRecord> {
        std::mem::take(&mut *self.records.lock().expect("trace records lock"))
    }

    /// Number of records held.
    pub fn len(&self) -> usize {
        self.records.lock().expect("trace records lock").len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Recorder for MemoryRecorder {
    fn record(&self, event: TraceEvent) {
        let rec = TraceRecord {
            ts_us: self.start.elapsed().as_micros() as u64,
            tid: current_tid(),
            event,
        };
        self.records.lock().expect("trace records lock").push(rec);
    }
}

/// Human-readable recorder writing one line per event to stderr.
/// Backs `--verbose` modes; span ends and counters are kept terse.
#[derive(Debug, Default)]
pub struct StderrRecorder;

impl StderrRecorder {
    /// A stderr line-printer.
    pub fn new() -> StderrRecorder {
        StderrRecorder
    }
}

impl Recorder for StderrRecorder {
    fn record(&self, event: TraceEvent) {
        match &event {
            TraceEvent::Log { level, message } => {
                eprintln!("[{}] {message}", level.name());
            }
            TraceEvent::SpanBegin { name } => eprintln!("[trace] >> {name}"),
            TraceEvent::SpanEnd { name } => eprintln!("[trace] << {name}"),
            TraceEvent::Collective {
                kind,
                group,
                bytes,
                modeled_s,
                ..
            } => eprintln!("[trace] collective {kind} p={group} bytes={bytes} t={modeled_s:.3e}s"),
            TraceEvent::Spgemm {
                plan,
                m,
                k,
                n,
                nnz_c,
                ops,
                ..
            } => eprintln!("[trace] spgemm {plan} {m}x{k}x{n} nnz_c={nnz_c} ops={ops}"),
            TraceEvent::Redist {
                what,
                bytes_moved,
                participants,
            } => eprintln!("[trace] redist {what} bytes={bytes_moved} p={participants}"),
            TraceEvent::Autotune {
                winner,
                winner_cost_s,
                candidates,
                ..
            } => eprintln!(
                "[trace] autotune -> {winner} ({winner_cost_s:.3e}s, {} candidates)",
                candidates.len()
            ),
            TraceEvent::Superstep {
                phase,
                batch,
                step,
                frontier_nnz,
                active_rows,
            } => eprintln!(
                "[trace] superstep {phase} batch={batch} step={step} frontier={frontier_nnz} active={active_rows}"
            ),
            TraceEvent::Pool {
                kernel,
                threads,
                tasks,
                busy_us,
                ..
            } => eprintln!(
                "[trace] pool {kernel} threads={threads} tasks={tasks} busy_us={}",
                busy_us.iter().sum::<u64>()
            ),
            TraceEvent::Fault { kind, rank, seq } => match rank {
                Some(r) => eprintln!("[trace] fault {kind} rank={r} seq={seq}"),
                None => eprintln!("[trace] fault {kind} seq={seq}"),
            },
            TraceEvent::Recovery {
                action,
                detail,
                wasted_s,
            } => eprintln!("[trace] recovery {action} {detail} wasted={wasted_s:.3e}s"),
            TraceEvent::Counter { name, value } => {
                eprintln!("[trace] counter {name}={value}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn warn_event(message: &str) -> TraceEvent {
        TraceEvent::Log {
            level: crate::event::Level::Warn,
            message: message.to_string(),
        }
    }

    #[test]
    fn memory_recorder_stamps_monotonic_timestamps() {
        let rec = MemoryRecorder::new();
        for i in 0..4 {
            rec.record(TraceEvent::Counter {
                name: "i",
                value: i as f64,
            });
        }
        let records = rec.snapshot();
        assert_eq!(records.len(), 4);
        for w in records.windows(2) {
            assert!(w[0].ts_us <= w[1].ts_us);
        }
        assert_eq!(rec.take().len(), 4);
        assert!(rec.is_empty());
    }

    #[test]
    fn noop_recorder_counts() {
        let rec = NoopRecorder::new();
        rec.record(warn_event("x"));
        rec.record(warn_event("y"));
        assert_eq!(rec.count(), 2);
    }

    #[test]
    fn tids_are_stable_per_thread() {
        let a = current_tid();
        let b = current_tid();
        assert_eq!(a, b);
        let other = std::thread::spawn(current_tid).join().unwrap();
        assert_ne!(a, other);
    }
}
