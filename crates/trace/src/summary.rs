//! Aggregation of recorded events into per-collective-kind totals,
//! in the spirit of the paper's Table 3 communication breakdown.

use crate::event::{TraceEvent, TraceRecord};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Totals for one collective kind across a recorded run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct KindTotals {
    /// Collective kind name.
    pub kind: String,
    /// Number of invocations.
    pub count: u64,
    /// Sum of per-rank payload bytes passed to the cost model.
    pub bytes: u64,
    /// Sum of critical-path bytes charged.
    pub bytes_charged: u64,
    /// Sum of critical-path messages charged.
    pub msgs: u64,
    /// Sum of modeled α–β seconds.
    pub modeled_s: f64,
}

/// Aggregates all [`TraceEvent::Collective`] records per kind,
/// sorted by descending modeled time.
pub fn collective_summary(records: &[TraceRecord]) -> Vec<KindTotals> {
    let mut by_kind: BTreeMap<&str, KindTotals> = BTreeMap::new();
    for rec in records {
        if let TraceEvent::Collective {
            kind,
            bytes,
            msgs,
            bytes_charged,
            modeled_s,
            ..
        } = &rec.event
        {
            let entry = by_kind.entry(kind).or_insert_with(|| KindTotals {
                kind: (*kind).to_string(),
                ..KindTotals::default()
            });
            entry.count += 1;
            entry.bytes += bytes;
            entry.bytes_charged += bytes_charged;
            entry.msgs += msgs;
            entry.modeled_s += modeled_s;
        }
    }
    let mut totals: Vec<KindTotals> = by_kind.into_values().collect();
    totals.sort_by(|a, b| b.modeled_s.total_cmp(&a.modeled_s));
    totals
}

/// Sum of modeled seconds over every collective event in the trace.
///
/// Because the machine model synchronizes groups (takes the max over
/// ranks) before adding a collective's time, the critical-path
/// communication time reported by a run can never exceed this sum —
/// a cross-check harnesses assert.
pub fn total_modeled_comm_s(records: &[TraceRecord]) -> f64 {
    records
        .iter()
        .filter_map(|r| match &r.event {
            TraceEvent::Collective { modeled_s, .. } => Some(*modeled_s),
            _ => None,
        })
        .sum()
}

/// Renders the per-kind totals as an aligned text table.
pub fn render_summary(totals: &[KindTotals]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<14} {:>8} {:>14} {:>14} {:>10} {:>12}",
        "collective", "count", "bytes", "charged", "msgs", "modeled_s"
    );
    for t in totals {
        let _ = writeln!(
            out,
            "{:<14} {:>8} {:>14} {:>14} {:>10} {:>12.3e}",
            t.kind, t.count, t.bytes, t.bytes_charged, t.msgs, t.modeled_s
        );
    }
    if totals.is_empty() {
        let _ = writeln!(out, "(no collective events recorded)");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn coll(kind: &'static str, bytes: u64, modeled_s: f64) -> TraceRecord {
        TraceRecord {
            ts_us: 0,
            tid: 0,
            event: TraceEvent::Collective {
                kind,
                group: 4,
                bytes,
                msgs: 2,
                bytes_charged: 2 * bytes,
                modeled_s,
            },
        }
    }

    #[test]
    fn summary_groups_and_sorts_by_time() {
        let records = vec![
            coll("bcast", 10, 1.0),
            coll("allgather", 20, 5.0),
            coll("bcast", 30, 2.0),
        ];
        let totals = collective_summary(&records);
        assert_eq!(totals.len(), 2);
        assert_eq!(totals[0].kind, "allgather");
        assert_eq!(totals[1].kind, "bcast");
        assert_eq!(totals[1].count, 2);
        assert_eq!(totals[1].bytes, 40);
        assert_eq!(totals[1].bytes_charged, 80);
        assert_eq!(totals[1].msgs, 4);
        assert!((totals[1].modeled_s - 3.0).abs() < 1e-12);
    }

    #[test]
    fn total_comm_ignores_non_collectives() {
        let mut records = vec![coll("bcast", 1, 0.25)];
        records.push(TraceRecord {
            ts_us: 0,
            tid: 0,
            event: TraceEvent::Counter {
                name: "x",
                value: 9.0,
            },
        });
        assert!((total_modeled_comm_s(&records) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn render_handles_empty() {
        assert!(render_summary(&[]).contains("no collective events"));
        let text = render_summary(&collective_summary(&[coll("scatter", 8, 0.5)]));
        assert!(text.contains("scatter"));
    }
}
