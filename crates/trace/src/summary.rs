//! Aggregation of recorded events into per-collective-kind totals,
//! in the spirit of the paper's Table 3 communication breakdown.

use crate::event::{TraceEvent, TraceRecord};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Totals for one collective kind across a recorded run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct KindTotals {
    /// Collective kind name.
    pub kind: String,
    /// Number of invocations.
    pub count: u64,
    /// Sum of per-rank payload bytes passed to the cost model.
    pub bytes: u64,
    /// Sum of critical-path bytes charged.
    pub bytes_charged: u64,
    /// Sum of critical-path messages charged.
    pub msgs: u64,
    /// Sum of modeled α–β seconds.
    pub modeled_s: f64,
}

/// Aggregates all [`TraceEvent::Collective`] and
/// [`TraceEvent::CollectiveIssue`] records per kind, sorted by
/// descending modeled time (nonblocking collectives carry their cost
/// on the issue event, so both shapes count once each).
pub fn collective_summary(records: &[TraceRecord]) -> Vec<KindTotals> {
    let mut by_kind: BTreeMap<&str, KindTotals> = BTreeMap::new();
    for rec in records {
        if let TraceEvent::Collective {
            kind,
            bytes,
            msgs,
            bytes_charged,
            modeled_s,
            ..
        }
        | TraceEvent::CollectiveIssue {
            kind,
            bytes,
            msgs,
            bytes_charged,
            modeled_s,
            ..
        } = &rec.event
        {
            let entry = by_kind.entry(kind).or_insert_with(|| KindTotals {
                kind: (*kind).to_string(),
                ..KindTotals::default()
            });
            entry.count += 1;
            entry.bytes += bytes;
            entry.bytes_charged += bytes_charged;
            entry.msgs += msgs;
            entry.modeled_s += modeled_s;
        }
    }
    let mut totals: Vec<KindTotals> = by_kind.into_values().collect();
    totals.sort_by(|a, b| b.modeled_s.total_cmp(&a.modeled_s));
    totals
}

/// Sum of modeled seconds over every collective event in the trace.
///
/// Because the machine model synchronizes groups (takes the max over
/// ranks) before adding a collective's time, the critical-path
/// communication time reported by a run can never exceed this sum —
/// a cross-check harnesses assert.
pub fn total_modeled_comm_s(records: &[TraceRecord]) -> f64 {
    records
        .iter()
        .filter_map(|r| match &r.event {
            TraceEvent::Collective { modeled_s, .. }
            | TraceEvent::CollectiveIssue { modeled_s, .. } => Some(*modeled_s),
            _ => None,
        })
        .sum()
}

/// Renders the per-kind totals as an aligned text table.
pub fn render_summary(totals: &[KindTotals]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<14} {:>8} {:>14} {:>14} {:>10} {:>12}",
        "collective", "count", "bytes", "charged", "msgs", "modeled_s"
    );
    for t in totals {
        let _ = writeln!(
            out,
            "{:<14} {:>8} {:>14} {:>14} {:>10} {:>12.3e}",
            t.kind, t.count, t.bytes, t.bytes_charged, t.msgs, t.modeled_s
        );
    }
    if totals.is_empty() {
        let _ = writeln!(out, "(no collective events recorded)");
    }
    out
}

/// Totals for one shared-memory pool kernel across a recorded run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PoolTotals {
    /// Kernel name (e.g. `spgemm`).
    pub kernel: String,
    /// Number of fan-out calls.
    pub calls: u64,
    /// Total jobs (chunks) executed.
    pub tasks: u64,
    /// Total busy microseconds summed over every participant.
    pub busy_us: u64,
    /// Largest participant count observed for the kernel.
    pub max_threads: usize,
    /// Merged chunk-size histogram (`[b]` counts chunks of size in
    /// `[2^b, 2^{b+1})`).
    pub chunk_hist: Vec<u64>,
}

/// Aggregates all [`TraceEvent::Pool`] records per kernel, sorted by
/// descending total busy time.
pub fn pool_summary(records: &[TraceRecord]) -> Vec<PoolTotals> {
    let mut by_kernel: BTreeMap<&str, PoolTotals> = BTreeMap::new();
    for rec in records {
        if let TraceEvent::Pool {
            kernel,
            threads,
            tasks,
            busy_us,
            chunk_hist,
        } = &rec.event
        {
            let entry = by_kernel.entry(kernel).or_insert_with(|| PoolTotals {
                kernel: (*kernel).to_string(),
                ..PoolTotals::default()
            });
            entry.calls += 1;
            entry.tasks += tasks;
            entry.busy_us += busy_us.iter().sum::<u64>();
            entry.max_threads = entry.max_threads.max(*threads);
            if entry.chunk_hist.len() < chunk_hist.len() {
                entry.chunk_hist.resize(chunk_hist.len(), 0);
            }
            for (slot, c) in entry.chunk_hist.iter_mut().zip(chunk_hist) {
                *slot += c;
            }
        }
    }
    let mut totals: Vec<PoolTotals> = by_kernel.into_values().collect();
    totals.sort_by(|a, b| b.busy_us.cmp(&a.busy_us).then(a.kernel.cmp(&b.kernel)));
    totals
}

/// Renders the per-kernel pool totals as an aligned text table. The
/// `chunks` column shows the histogram as `2^b:count` pairs.
pub fn render_pool_summary(totals: &[PoolTotals]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<14} {:>8} {:>10} {:>8} {:>12}  chunk sizes",
        "pool kernel", "calls", "tasks", "threads", "busy_us"
    );
    for t in totals {
        let mut hist = String::new();
        for (b, &c) in t.chunk_hist.iter().enumerate() {
            if c > 0 {
                if !hist.is_empty() {
                    hist.push(' ');
                }
                let _ = write!(hist, "2^{b}:{c}");
            }
        }
        if hist.is_empty() {
            hist.push('-');
        }
        let _ = writeln!(
            out,
            "{:<14} {:>8} {:>10} {:>8} {:>12}  {}",
            t.kernel, t.calls, t.tasks, t.max_threads, t.busy_us, hist
        );
    }
    if totals.is_empty() {
        let _ = writeln!(out, "(no pool events recorded)");
    }
    out
}

/// Fault-injection and recovery totals across a recorded run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RecoveryTotals {
    /// Injected faults per kind name (`crash`, `transient`, `oom`),
    /// sorted by kind.
    pub faults: Vec<(String, u64)>,
    /// Recovery actions: `(action, count, wasted modeled seconds,
    /// last detail string)`, sorted by action.
    pub actions: Vec<(String, u64, f64, String)>,
}

impl RecoveryTotals {
    /// Total injected faults across kinds.
    pub fn faults_injected(&self) -> u64 {
        self.faults.iter().map(|(_, c)| c).sum()
    }

    /// Total modeled seconds discarded by rollbacks.
    pub fn wasted_s(&self) -> f64 {
        self.actions.iter().map(|(_, _, w, _)| w).sum()
    }
}

/// Aggregates [`TraceEvent::Fault`] and [`TraceEvent::Recovery`]
/// records into per-kind / per-action totals.
pub fn recovery_summary(records: &[TraceRecord]) -> RecoveryTotals {
    let mut faults: BTreeMap<&str, u64> = BTreeMap::new();
    let mut actions: BTreeMap<&str, (u64, f64, String)> = BTreeMap::new();
    for rec in records {
        match &rec.event {
            TraceEvent::Fault { kind, .. } => *faults.entry(kind).or_insert(0) += 1,
            TraceEvent::Recovery {
                action,
                detail,
                wasted_s,
            } => {
                let entry = actions.entry(action).or_insert((0, 0.0, String::new()));
                entry.0 += 1;
                entry.1 += wasted_s;
                entry.2 = detail.clone();
            }
            _ => {}
        }
    }
    RecoveryTotals {
        faults: faults
            .into_iter()
            .map(|(k, c)| (k.to_string(), c))
            .collect(),
        actions: actions
            .into_iter()
            .map(|(a, (c, w, d))| (a.to_string(), c, w, d))
            .collect(),
    }
}

/// Renders the fault/recovery totals as an aligned text table; empty
/// output (not even a header) for a fault-free run, so the report
/// only appears when there is something to say.
pub fn render_recovery_summary(totals: &RecoveryTotals) -> String {
    let mut out = String::new();
    if totals.faults.is_empty() && totals.actions.is_empty() {
        return out;
    }
    let _ = writeln!(
        out,
        "{:<14} {:>8} {:>12}  detail",
        "fault/recovery", "count", "wasted_s"
    );
    for (kind, count) in &totals.faults {
        let _ = writeln!(
            out,
            "{:<14} {:>8} {:>12}  -",
            format!("fault:{kind}"),
            count,
            "-"
        );
    }
    for (action, count, wasted, detail) in &totals.actions {
        let _ = writeln!(
            out,
            "{:<14} {:>8} {:>12.3e}  {}",
            action,
            count,
            wasted,
            if detail.is_empty() { "-" } else { detail }
        );
    }
    out
}

/// Request/round totals of a recorded serve stream.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ServeTotals {
    /// Requests admitted ([`TraceEvent::RequestAdmitted`]).
    pub admitted: u64,
    /// Coalesced rounds started.
    pub rounds: u64,
    /// Responses across every finished round.
    pub responses: u64,
    /// Summed modeled seconds across finished rounds.
    pub elapsed_s: f64,
    /// Degradation decisions: `(rung, reason, count)`, sorted.
    pub decisions: Vec<(String, String, u64)>,
}

/// Aggregates the serve-scoped events (request admissions, round
/// boundaries, degradation decisions) into totals.
pub fn serve_summary(records: &[TraceRecord]) -> ServeTotals {
    let mut t = ServeTotals::default();
    let mut decisions: BTreeMap<(&str, &str), u64> = BTreeMap::new();
    for rec in records {
        match &rec.event {
            TraceEvent::RequestAdmitted { .. } => t.admitted += 1,
            TraceEvent::RoundStart { .. } => t.rounds += 1,
            TraceEvent::RoundEnd {
                responses,
                elapsed_s,
                ..
            } => {
                t.responses += responses;
                t.elapsed_s += elapsed_s;
            }
            TraceEvent::DegradeDecision { rung, reason, .. } => {
                *decisions.entry((rung, reason)).or_insert(0) += 1;
            }
            _ => {}
        }
    }
    t.decisions = decisions
        .into_iter()
        .map(|((rung, reason), c)| (rung.to_string(), reason.to_string(), c))
        .collect();
    t
}

/// Renders the serve totals as an aligned text table; empty output
/// for a stream with no serve events.
pub fn render_serve_summary(totals: &ServeTotals) -> String {
    let mut out = String::new();
    if totals.admitted == 0 && totals.rounds == 0 {
        return out;
    }
    let _ = writeln!(
        out,
        "serve: {} admitted, {} rounds, {} responses, {:.3e}s modeled",
        totals.admitted, totals.rounds, totals.responses, totals.elapsed_s
    );
    if !totals.decisions.is_empty() {
        let _ = writeln!(out, "{:<10} {:<14} {:>8}", "rung", "reason", "rounds");
        for (rung, reason, count) in &totals.decisions {
            let _ = writeln!(out, "{rung:<10} {reason:<14} {count:>8}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn coll(kind: &'static str, bytes: u64, modeled_s: f64) -> TraceRecord {
        TraceRecord {
            ts_us: 0,
            tid: 0,
            event: TraceEvent::Collective {
                kind,
                group: 4,
                ranks: vec![0, 1, 2, 3],
                seq: 0,
                bytes,
                msgs: 2,
                bytes_charged: 2 * bytes,
                modeled_s,
            },
        }
    }

    #[test]
    fn summary_groups_and_sorts_by_time() {
        let records = vec![
            coll("bcast", 10, 1.0),
            coll("allgather", 20, 5.0),
            coll("bcast", 30, 2.0),
        ];
        let totals = collective_summary(&records);
        assert_eq!(totals.len(), 2);
        assert_eq!(totals[0].kind, "allgather");
        assert_eq!(totals[1].kind, "bcast");
        assert_eq!(totals[1].count, 2);
        assert_eq!(totals[1].bytes, 40);
        assert_eq!(totals[1].bytes_charged, 80);
        assert_eq!(totals[1].msgs, 4);
        assert!((totals[1].modeled_s - 3.0).abs() < 1e-12);
    }

    #[test]
    fn total_comm_ignores_non_collectives() {
        let mut records = vec![coll("bcast", 1, 0.25)];
        records.push(TraceRecord {
            ts_us: 0,
            tid: 0,
            event: TraceEvent::Counter {
                name: "x",
                value: 9.0,
            },
        });
        assert!((total_modeled_comm_s(&records) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn render_handles_empty() {
        assert!(render_summary(&[]).contains("no collective events"));
        let text = render_summary(&collective_summary(&[coll("scatter", 8, 0.5)]));
        assert!(text.contains("scatter"));
    }

    fn pool(kernel: &'static str, threads: usize, tasks: u64, hist: Vec<u64>) -> TraceRecord {
        TraceRecord {
            ts_us: 0,
            tid: 0,
            event: TraceEvent::Pool {
                kernel,
                threads,
                tasks,
                busy_us: vec![10; threads],
                chunk_hist: hist,
            },
        }
    }

    #[test]
    fn pool_summary_merges_histograms() {
        let records = vec![
            pool("spgemm", 4, 8, vec![0, 2, 6]),
            pool("spgemm", 2, 4, vec![1, 3]),
            pool("transpose", 4, 4, vec![4]),
        ];
        let totals = pool_summary(&records);
        assert_eq!(totals.len(), 2);
        let sp = totals.iter().find(|t| t.kernel == "spgemm").unwrap();
        assert_eq!(sp.calls, 2);
        assert_eq!(sp.tasks, 12);
        assert_eq!(sp.max_threads, 4);
        assert_eq!(sp.busy_us, 4 * 10 + 2 * 10);
        assert_eq!(sp.chunk_hist, vec![1, 5, 6]);
    }

    #[test]
    fn recovery_summary_groups_faults_and_actions() {
        let mk = |event| TraceRecord {
            ts_us: 0,
            tid: 0,
            event,
        };
        let records = vec![
            mk(TraceEvent::Fault {
                kind: "crash",
                rank: Some(3),
                seq: 5,
            }),
            mk(TraceEvent::Fault {
                kind: "oom",
                rank: Some(0),
                seq: 9,
            }),
            mk(TraceEvent::Recovery {
                action: "replan",
                detail: "p=8->7 plan=auto".into(),
                wasted_s: 1.5,
            }),
            mk(TraceEvent::Recovery {
                action: "replan",
                detail: "p=7->6 plan=auto".into(),
                wasted_s: 0.5,
            }),
        ];
        let totals = recovery_summary(&records);
        assert_eq!(totals.faults_injected(), 2);
        assert_eq!(totals.actions.len(), 1);
        assert_eq!(totals.actions[0].0, "replan");
        assert_eq!(totals.actions[0].1, 2);
        assert!((totals.wasted_s() - 2.0).abs() < 1e-12);
        assert_eq!(totals.actions[0].3, "p=7->6 plan=auto");
        let text = render_recovery_summary(&totals);
        assert!(text.contains("fault:crash"));
        assert!(text.contains("replan"));
        assert!(text.contains("p=7->6"));
        // Fault-free runs render nothing at all.
        assert!(render_recovery_summary(&RecoveryTotals::default()).is_empty());
    }

    #[test]
    fn pool_render_shows_buckets_and_empty() {
        assert!(render_pool_summary(&[]).contains("no pool events"));
        let text = render_pool_summary(&pool_summary(&[pool("spgemm", 4, 8, vec![0, 2])]));
        assert!(text.contains("spgemm"));
        assert!(text.contains("2^1:2"));
        assert!(!text.contains("2^0:"));
    }
}
