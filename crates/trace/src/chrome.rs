//! Chrome `trace_event` exporter.
//!
//! The output opens directly in `chrome://tracing` or Perfetto
//! (<https://ui.perfetto.dev>, "Open trace file"). Spans become
//! nested `B`/`E` slices per thread, counters become counter tracks,
//! and everything else becomes instant events with the structured
//! payload in `args`.
//!
//! Rank-attributed events (collectives, compute charges, backoff
//! waits, rank-targeted faults) are fanned out into **one process
//! lane per rank** (`pid = rank + 1`, labeled `rank N` via
//! `process_name` metadata), so the per-rank concurrency structure is
//! visible instead of being flattened into a single lane. Events with
//! no rank attribution (spans, counters, autotune decisions, …) stay
//! on `pid 0` (`stream`), keyed by emitting thread. Faults,
//! recoveries and shrinks are rendered as **global-scoped** instants
//! (`"s":"g"`) so recovery gaps draw a line across every lane.

use crate::event::{TraceEvent, TraceRecord};
use crate::json::{esc, num};
use std::fmt::Write as _;

/// Lane id for events with no rank attribution.
const STREAM_PID: u64 = 0;

/// Lane id for a rank's process lane.
fn rank_pid(rank: usize) -> u64 {
    rank as u64 + 1
}

fn head(out: &mut String, name: &str, cat: &str, ph: &str, ts_us: u64, pid: u64, tid: u64) {
    let _ = write!(
        out,
        "{{\"name\":\"{}\",\"cat\":\"{cat}\",\"ph\":\"{ph}\",\"ts\":{ts_us},\"pid\":{pid},\"tid\":{tid}",
        esc(name),
    );
}

/// Appends one instant event (`ph:"i"`) with the given scope and a
/// pre-rendered `args` object body (without braces).
fn instant(
    events: &mut Vec<String>,
    name: &str,
    cat: &str,
    ts_us: u64,
    pid: u64,
    scope: &str,
    args_body: &str,
) {
    let mut out = String::with_capacity(96 + args_body.len());
    head(&mut out, name, cat, "i", ts_us, pid, 0);
    let _ = write!(out, ",\"s\":\"{scope}\",\"args\":{{{args_body}}}}}");
    events.push(out);
}

fn one_event(events: &mut Vec<String>, rec: &TraceRecord) {
    match &rec.event {
        TraceEvent::SpanBegin { name } => {
            let mut out = String::new();
            head(&mut out, name, "span", "B", rec.ts_us, STREAM_PID, rec.tid);
            out.push('}');
            events.push(out);
        }
        TraceEvent::SpanEnd { name } => {
            let mut out = String::new();
            head(&mut out, name, "span", "E", rec.ts_us, STREAM_PID, rec.tid);
            out.push('}');
            events.push(out);
        }
        TraceEvent::Counter { name, value } => {
            let mut out = String::new();
            head(
                &mut out, name, "counter", "C", rec.ts_us, STREAM_PID, rec.tid,
            );
            let _ = write!(out, ",\"args\":{{\"{name}\":{}}}}}", num(*value));
            events.push(out);
        }
        TraceEvent::Collective {
            kind,
            group,
            ranks,
            seq,
            bytes,
            msgs,
            bytes_charged,
            modeled_s,
        } => {
            let args = format!(
                "\"group\":{group},\"seq\":{seq},\"bytes\":{bytes},\"msgs\":{msgs},\"bytes_charged\":{bytes_charged},\"modeled_s\":{}",
                num(*modeled_s)
            );
            if ranks.is_empty() {
                instant(
                    events,
                    kind,
                    "collective",
                    rec.ts_us,
                    STREAM_PID,
                    "t",
                    &args,
                );
            }
            for &r in ranks {
                instant(
                    events,
                    kind,
                    "collective",
                    rec.ts_us,
                    rank_pid(r),
                    "t",
                    &args,
                );
            }
        }
        TraceEvent::CollectiveIssue {
            kind,
            group,
            ranks,
            seq,
            bytes,
            msgs,
            bytes_charged,
            modeled_s,
            handle,
        } => {
            let args = format!(
                "\"group\":{group},\"seq\":{seq},\"bytes\":{bytes},\"msgs\":{msgs},\"bytes_charged\":{bytes_charged},\"modeled_s\":{},\"handle\":{handle}",
                num(*modeled_s)
            );
            let name = format!("{kind} (issue)");
            if ranks.is_empty() {
                instant(
                    events,
                    &name,
                    "collective",
                    rec.ts_us,
                    STREAM_PID,
                    "t",
                    &args,
                );
            }
            for &r in ranks {
                instant(
                    events,
                    &name,
                    "collective",
                    rec.ts_us,
                    rank_pid(r),
                    "t",
                    &args,
                );
            }
        }
        TraceEvent::CollectiveWait { handle } => {
            instant(
                events,
                "wait",
                "collective",
                rec.ts_us,
                STREAM_PID,
                "t",
                &format!("\"handle\":{handle}"),
            );
        }
        TraceEvent::Compute {
            rank,
            ops,
            modeled_s,
        } => {
            instant(
                events,
                "compute",
                "compute",
                rec.ts_us,
                rank_pid(*rank),
                "t",
                &format!("\"ops\":{ops},\"modeled_s\":{}", num(*modeled_s)),
            );
        }
        TraceEvent::Backoff { ranks, seconds } => {
            let args = format!("\"seconds\":{}", num(*seconds));
            for &r in ranks {
                instant(
                    events,
                    "backoff",
                    "backoff",
                    rec.ts_us,
                    rank_pid(r),
                    "t",
                    &args,
                );
            }
        }
        TraceEvent::Shrink { failed, p_before } => {
            instant(
                events,
                &format!("shrink -rank{failed}"),
                "fault",
                rec.ts_us,
                STREAM_PID,
                "g",
                &format!("\"failed\":{failed},\"p_before\":{p_before}"),
            );
        }
        TraceEvent::Spgemm {
            plan,
            m,
            k,
            n,
            nnz_a,
            nnz_b,
            nnz_c,
            ops,
        } => {
            instant(
                events,
                &format!("spgemm {plan}"),
                "spgemm",
                rec.ts_us,
                STREAM_PID,
                "t",
                &format!(
                    "\"plan\":\"{}\",\"m\":{m},\"k\":{k},\"n\":{n},\"nnz_a\":{nnz_a},\"nnz_b\":{nnz_b},\"nnz_c\":{nnz_c},\"ops\":{ops}",
                    esc(plan)
                ),
            );
        }
        TraceEvent::Redist {
            what,
            bytes_moved,
            participants,
        } => {
            instant(
                events,
                &format!("redist {what}"),
                "redist",
                rec.ts_us,
                STREAM_PID,
                "t",
                &format!("\"bytes_moved\":{bytes_moved},\"participants\":{participants}"),
            );
        }
        TraceEvent::Autotune {
            m,
            k,
            n,
            nnz_a,
            nnz_b,
            candidates,
            winner,
            winner_cost_s,
        } => {
            let mut args = format!(
                "\"m\":{m},\"k\":{k},\"n\":{n},\"nnz_a\":{nnz_a},\"nnz_b\":{nnz_b},\"winner\":\"{}\",\"winner_cost_s\":{},\"candidates\":[",
                esc(winner),
                num(*winner_cost_s)
            );
            for (i, c) in candidates.iter().enumerate() {
                if i > 0 {
                    args.push(',');
                }
                let _ = write!(
                    args,
                    "{{\"plan\":\"{}\",\"cost_s\":{},\"mem_bytes\":{},\"feasible\":{}}}",
                    esc(&c.plan),
                    num(c.cost_s),
                    c.mem_bytes,
                    c.feasible
                );
            }
            args.push(']');
            instant(
                events,
                &format!("autotune -> {winner}"),
                "autotune",
                rec.ts_us,
                STREAM_PID,
                "t",
                &args,
            );
        }
        TraceEvent::Superstep {
            phase,
            batch,
            step,
            frontier_nnz,
            active_rows,
        } => {
            instant(
                events,
                &format!("superstep {phase}"),
                "superstep",
                rec.ts_us,
                STREAM_PID,
                "t",
                &format!(
                    "\"batch\":{batch},\"step\":{step},\"frontier_nnz\":{frontier_nnz},\"active_rows\":{active_rows}"
                ),
            );
        }
        TraceEvent::Pool {
            kernel,
            threads,
            tasks,
            busy_us,
            chunk_hist,
        } => {
            let mut args = format!("\"threads\":{threads},\"tasks\":{tasks},\"busy_us\":[");
            for (i, b) in busy_us.iter().enumerate() {
                if i > 0 {
                    args.push(',');
                }
                let _ = write!(args, "{b}");
            }
            args.push_str("],\"chunk_hist\":[");
            for (i, c) in chunk_hist.iter().enumerate() {
                if i > 0 {
                    args.push(',');
                }
                let _ = write!(args, "{c}");
            }
            args.push(']');
            instant(
                events,
                &format!("pool {kernel}"),
                "pool",
                rec.ts_us,
                STREAM_PID,
                "t",
                &args,
            );
        }
        TraceEvent::Fault { kind, rank, seq } => {
            let mut args = String::from("\"rank\":");
            match rank {
                Some(r) => {
                    let _ = write!(args, "{r}");
                }
                None => args.push_str("null"),
            }
            let _ = write!(args, ",\"seq\":{seq}");
            let pid = rank.map_or(STREAM_PID, rank_pid);
            instant(
                events,
                &format!("fault {kind}"),
                "fault",
                rec.ts_us,
                pid,
                "g",
                &args,
            );
        }
        TraceEvent::Recovery {
            action,
            detail,
            wasted_s,
        } => {
            instant(
                events,
                &format!("recovery {action}"),
                "recovery",
                rec.ts_us,
                STREAM_PID,
                "g",
                &format!(
                    "\"detail\":\"{}\",\"wasted_s\":{}",
                    esc(detail),
                    num(*wasted_s)
                ),
            );
        }
        TraceEvent::RequestAdmitted {
            request_id,
            query,
            deadline_s,
            queue_depth,
        } => {
            instant(
                events,
                &format!("request {request_id} admitted"),
                "serve",
                rec.ts_us,
                STREAM_PID,
                "t",
                &format!(
                    "\"request_id\":{request_id},\"query\":\"{query}\",\"deadline_s\":{},\"queue_depth\":{queue_depth}",
                    num(*deadline_s)
                ),
            );
        }
        TraceEvent::RoundStart {
            round,
            requests,
            budget_s,
            store_version,
        } => {
            instant(
                events,
                &format!("round {round} start"),
                "serve",
                rec.ts_us,
                STREAM_PID,
                "t",
                &format!(
                    "\"round\":{round},\"requests\":{requests},\"budget_s\":{},\"store_version\":{store_version}",
                    num(*budget_s)
                ),
            );
        }
        TraceEvent::DegradeDecision {
            round,
            rung,
            reason,
            budget_s,
            spent_s,
            est_batch_s,
            approx_k,
            store_version,
        } => {
            // Global-scoped like faults/recoveries: a degradation
            // decision draws a line across every lane.
            instant(
                events,
                &format!("degrade -> {rung}"),
                "serve",
                rec.ts_us,
                STREAM_PID,
                "g",
                &format!(
                    "\"round\":{round},\"rung\":\"{rung}\",\"reason\":\"{reason}\",\"budget_s\":{},\"spent_s\":{},\"est_batch_s\":{},\"approx_k\":{approx_k},\"store_version\":{store_version}",
                    num(*budget_s),
                    num(*spent_s),
                    num(*est_batch_s)
                ),
            );
        }
        TraceEvent::RoundEnd {
            round,
            responses,
            elapsed_s,
            store_version,
        } => {
            instant(
                events,
                &format!("round {round} end"),
                "serve",
                rec.ts_us,
                STREAM_PID,
                "t",
                &format!(
                    "\"round\":{round},\"responses\":{responses},\"elapsed_s\":{},\"store_version\":{store_version}",
                    num(*elapsed_s)
                ),
            );
        }
        TraceEvent::Log { level, message } => {
            instant(
                events,
                message,
                "log",
                rec.ts_us,
                STREAM_PID,
                "t",
                &format!("\"level\":\"{}\"", level.name()),
            );
        }
    }
}

/// Largest rank id attributed anywhere in the trace, if any.
fn max_rank(records: &[TraceRecord]) -> Option<usize> {
    let mut mx: Option<usize> = None;
    let mut bump = |r: usize| mx = Some(mx.map_or(r, |m: usize| m.max(r)));
    for rec in records {
        match &rec.event {
            TraceEvent::Collective { ranks, .. }
            | TraceEvent::CollectiveIssue { ranks, .. }
            | TraceEvent::Backoff { ranks, .. } => {
                for &r in ranks {
                    bump(r);
                }
            }
            TraceEvent::Compute { rank, .. } => bump(*rank),
            TraceEvent::Fault { rank: Some(r), .. } => bump(*r),
            TraceEvent::Shrink { p_before, .. } if *p_before > 0 => bump(*p_before - 1),
            _ => {}
        }
    }
    mx
}

/// Serializes records as a complete Chrome `trace_event` JSON
/// document with one process lane per rank.
pub fn to_chrome_trace(records: &[TraceRecord]) -> String {
    let mut events: Vec<String> = Vec::with_capacity(records.len() + 8);
    // Label the lanes first: pid 0 is the un-attributed event stream,
    // pid r+1 is rank r.
    events.push(format!(
        "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{STREAM_PID},\"tid\":0,\"args\":{{\"name\":\"stream\"}}}}"
    ));
    if let Some(mx) = max_rank(records) {
        for r in 0..=mx {
            events.push(format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},\"tid\":0,\"args\":{{\"name\":\"rank {r}\"}}}}",
                rank_pid(r)
            ));
        }
    }
    for rec in records {
        one_event(&mut events, rec);
    }
    let mut out = String::with_capacity(events.iter().map(|e| e.len() + 2).sum::<usize>() + 64);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(e);
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::PlanChoice;

    fn rec(ts_us: u64, event: TraceEvent) -> TraceRecord {
        TraceRecord {
            ts_us,
            tid: 0,
            event,
        }
    }

    #[test]
    fn spans_emit_b_and_e_phases() {
        let text = to_chrome_trace(&[
            rec(1, TraceEvent::SpanBegin { name: "mm".into() }),
            rec(9, TraceEvent::SpanEnd { name: "mm".into() }),
        ]);
        assert!(text.contains("\"ph\":\"B\""));
        assert!(text.contains("\"ph\":\"E\""));
        assert!(text.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(text.trim_end().ends_with("]}"));
    }

    #[test]
    fn collectives_fan_out_one_lane_per_rank() {
        let text = to_chrome_trace(&[rec(
            3,
            TraceEvent::Collective {
                kind: "bcast",
                group: 4,
                ranks: vec![0, 1, 2, 3],
                seq: 0,
                bytes: 64,
                msgs: 4,
                bytes_charged: 128,
                modeled_s: 2e-6,
            },
        )]);
        assert!(text.contains("\"ph\":\"i\""));
        assert!(text.contains("\"bytes_charged\":128"));
        // One instant per participating rank, on that rank's pid lane.
        for r in 0..4u64 {
            assert!(text.contains(&format!("\"pid\":{}", r + 1)), "lane {r}");
            assert!(text.contains(&format!("\"args\":{{\"name\":\"rank {r}\"}}")));
        }
    }

    #[test]
    fn compute_lands_on_its_ranks_lane() {
        let text = to_chrome_trace(&[rec(
            2,
            TraceEvent::Compute {
                rank: 2,
                ops: 100,
                modeled_s: 1e-7,
            },
        )]);
        assert!(text.contains("\"name\":\"compute\""));
        assert!(text.contains("\"pid\":3"));
        assert!(text.contains("\"ops\":100"));
    }

    #[test]
    fn faults_and_recoveries_are_global_instants() {
        let text = to_chrome_trace(&[
            rec(
                1,
                TraceEvent::Fault {
                    kind: "crash",
                    rank: Some(1),
                    seq: 5,
                },
            ),
            rec(
                2,
                TraceEvent::Recovery {
                    action: "replan",
                    detail: "p=4->3".into(),
                    wasted_s: 0.25,
                },
            ),
        ]);
        assert!(text.contains("\"name\":\"fault crash\""));
        assert!(text.contains("\"name\":\"recovery replan\""));
        assert_eq!(text.matches("\"s\":\"g\"").count(), 2);
    }

    #[test]
    fn autotune_candidates_serialize_as_array() {
        let text = to_chrome_trace(&[rec(
            5,
            TraceEvent::Autotune {
                m: 2,
                k: 2,
                n: 2,
                nnz_a: 3,
                nnz_b: 3,
                candidates: vec![PlanChoice {
                    plan: "1d(B)".into(),
                    cost_s: 0.5,
                    mem_bytes: 10,
                    feasible: false,
                }],
                winner: "1d(B)".into(),
                winner_cost_s: 0.5,
            },
        )]);
        assert!(text.contains("\"candidates\":[{\"plan\":\"1d(B)\""));
        assert!(text.contains("\"feasible\":false"));
    }
}
