//! Chrome `trace_event` exporter.
//!
//! The output opens directly in `chrome://tracing` or Perfetto
//! (<https://ui.perfetto.dev>, "Open trace file"). Spans become
//! nested `B`/`E` slices per thread, counters become counter tracks,
//! and everything else becomes thread-scoped instant events with the
//! structured payload in `args`.

use crate::event::{TraceEvent, TraceRecord};
use crate::json::{esc, num};
use std::fmt::Write as _;

fn head(out: &mut String, name: &str, cat: &str, ph: &str, rec: &TraceRecord) {
    let _ = write!(
        out,
        "{{\"name\":\"{}\",\"cat\":\"{cat}\",\"ph\":\"{ph}\",\"ts\":{},\"pid\":0,\"tid\":{}",
        esc(name),
        rec.ts_us,
        rec.tid
    );
}

fn one_event(out: &mut String, rec: &TraceRecord) {
    match &rec.event {
        TraceEvent::SpanBegin { name } => {
            head(out, name, "span", "B", rec);
            out.push('}');
        }
        TraceEvent::SpanEnd { name } => {
            head(out, name, "span", "E", rec);
            out.push('}');
        }
        TraceEvent::Counter { name, value } => {
            head(out, name, "counter", "C", rec);
            let _ = write!(out, ",\"args\":{{\"{name}\":{}}}}}", num(*value));
        }
        TraceEvent::Collective {
            kind,
            group,
            bytes,
            msgs,
            bytes_charged,
            modeled_s,
        } => {
            head(out, kind, "collective", "i", rec);
            let _ = write!(
                out,
                ",\"s\":\"t\",\"args\":{{\"group\":{group},\"bytes\":{bytes},\"msgs\":{msgs},\"bytes_charged\":{bytes_charged},\"modeled_s\":{}}}}}",
                num(*modeled_s)
            );
        }
        TraceEvent::Spgemm {
            plan,
            m,
            k,
            n,
            nnz_a,
            nnz_b,
            nnz_c,
            ops,
        } => {
            head(out, &format!("spgemm {plan}"), "spgemm", "i", rec);
            let _ = write!(
                out,
                ",\"s\":\"t\",\"args\":{{\"plan\":\"{}\",\"m\":{m},\"k\":{k},\"n\":{n},\"nnz_a\":{nnz_a},\"nnz_b\":{nnz_b},\"nnz_c\":{nnz_c},\"ops\":{ops}}}}}",
                esc(plan)
            );
        }
        TraceEvent::Redist {
            what,
            bytes_moved,
            participants,
        } => {
            head(out, &format!("redist {what}"), "redist", "i", rec);
            let _ = write!(
                out,
                ",\"s\":\"t\",\"args\":{{\"bytes_moved\":{bytes_moved},\"participants\":{participants}}}}}"
            );
        }
        TraceEvent::Autotune {
            m,
            k,
            n,
            nnz_a,
            nnz_b,
            candidates,
            winner,
            winner_cost_s,
        } => {
            head(out, &format!("autotune -> {winner}"), "autotune", "i", rec);
            let _ = write!(
                out,
                ",\"s\":\"t\",\"args\":{{\"m\":{m},\"k\":{k},\"n\":{n},\"nnz_a\":{nnz_a},\"nnz_b\":{nnz_b},\"winner\":\"{}\",\"winner_cost_s\":{},\"candidates\":[",
                esc(winner),
                num(*winner_cost_s)
            );
            for (i, c) in candidates.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"plan\":\"{}\",\"cost_s\":{},\"mem_bytes\":{},\"feasible\":{}}}",
                    esc(&c.plan),
                    num(c.cost_s),
                    c.mem_bytes,
                    c.feasible
                );
            }
            out.push_str("]}}");
        }
        TraceEvent::Superstep {
            phase,
            batch,
            step,
            frontier_nnz,
            active_rows,
        } => {
            head(out, &format!("superstep {phase}"), "superstep", "i", rec);
            let _ = write!(
                out,
                ",\"s\":\"t\",\"args\":{{\"batch\":{batch},\"step\":{step},\"frontier_nnz\":{frontier_nnz},\"active_rows\":{active_rows}}}}}"
            );
        }
        TraceEvent::Pool {
            kernel,
            threads,
            tasks,
            busy_us,
            chunk_hist,
        } => {
            head(out, &format!("pool {kernel}"), "pool", "i", rec);
            let _ = write!(
                out,
                ",\"s\":\"t\",\"args\":{{\"threads\":{threads},\"tasks\":{tasks},\"busy_us\":["
            );
            for (i, b) in busy_us.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{b}");
            }
            out.push_str("],\"chunk_hist\":[");
            for (i, c) in chunk_hist.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{c}");
            }
            out.push_str("]}}");
        }
        TraceEvent::Fault { kind, rank, seq } => {
            head(out, &format!("fault {kind}"), "fault", "i", rec);
            let _ = write!(out, ",\"s\":\"t\",\"args\":{{\"rank\":");
            match rank {
                Some(r) => {
                    let _ = write!(out, "{r}");
                }
                None => out.push_str("null"),
            }
            let _ = write!(out, ",\"seq\":{seq}}}}}");
        }
        TraceEvent::Recovery {
            action,
            detail,
            wasted_s,
        } => {
            head(out, &format!("recovery {action}"), "recovery", "i", rec);
            let _ = write!(
                out,
                ",\"s\":\"t\",\"args\":{{\"detail\":\"{}\",\"wasted_s\":{}}}}}",
                esc(detail),
                num(*wasted_s)
            );
        }
        TraceEvent::Log { level, message } => {
            head(out, message, "log", "i", rec);
            let _ = write!(
                out,
                ",\"s\":\"t\",\"args\":{{\"level\":\"{}\"}}}}",
                level.name()
            );
        }
    }
}

/// Serializes records as a complete Chrome `trace_event` JSON
/// document.
pub fn to_chrome_trace(records: &[TraceRecord]) -> String {
    let mut out = String::with_capacity(records.len() * 160 + 64);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    for (i, rec) in records.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        one_event(&mut out, rec);
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::PlanChoice;

    fn rec(ts_us: u64, event: TraceEvent) -> TraceRecord {
        TraceRecord {
            ts_us,
            tid: 0,
            event,
        }
    }

    #[test]
    fn spans_emit_b_and_e_phases() {
        let text = to_chrome_trace(&[
            rec(1, TraceEvent::SpanBegin { name: "mm".into() }),
            rec(9, TraceEvent::SpanEnd { name: "mm".into() }),
        ]);
        assert!(text.contains("\"ph\":\"B\""));
        assert!(text.contains("\"ph\":\"E\""));
        assert!(text.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(text.trim_end().ends_with("]}"));
    }

    #[test]
    fn instants_carry_args() {
        let text = to_chrome_trace(&[rec(
            3,
            TraceEvent::Collective {
                kind: "bcast",
                group: 4,
                bytes: 64,
                msgs: 4,
                bytes_charged: 128,
                modeled_s: 2e-6,
            },
        )]);
        assert!(text.contains("\"ph\":\"i\""));
        assert!(text.contains("\"bytes_charged\":128"));
    }

    #[test]
    fn autotune_candidates_serialize_as_array() {
        let text = to_chrome_trace(&[rec(
            5,
            TraceEvent::Autotune {
                m: 2,
                k: 2,
                n: 2,
                nnz_a: 3,
                nnz_b: 3,
                candidates: vec![PlanChoice {
                    plan: "1d(B)".into(),
                    cost_s: 0.5,
                    mem_bytes: 10,
                    feasible: false,
                }],
                winner: "1d(B)".into(),
                winner_cost_s: 0.5,
            },
        )]);
        assert!(text.contains("\"candidates\":[{\"plan\":\"1d(B)\""));
        assert!(text.contains("\"feasible\":false"));
    }
}
