//! The serving engine: warm state, admission, coalescing, the
//! degradation ladder, and retry/backoff around the resumable
//! `MfbcSession`.

use crate::flight::{FlightKind, FlightRecorder, Journey};
use mfbc_core::dist::{MfbcConfig, MfbcSession, SessionStep};
use mfbc_core::{mfbc_approx, sample_rel_se, BcScores};
use mfbc_fault::{BreakerState, CircuitBreaker, RetryPolicy};
use mfbc_graph::Graph;
use mfbc_machine::{Machine, MachineError};
use mfbc_profile::{MetricKind, MetricsRegistry};
use mfbc_tensor::autotune::best_plan;
use mfbc_tensor::costmodel::MmStats;
use mfbc_tensor::CacheStats;
use mfbc_trace::TraceEvent;
use std::collections::VecDeque;

/// Responses kept in the rolling SLO window surfaced by
/// [`Engine::health`].
const SLO_WINDOW: usize = 32;

/// Stable label for a breaker state (the fault crate's enum has no
/// wire names of its own).
fn breaker_name(s: BreakerState) -> &'static str {
    match s {
        BreakerState::Closed => "closed",
        BreakerState::Open => "open",
        BreakerState::HalfOpen => "half-open",
    }
}

/// What a request asks for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Query {
    /// The `k` highest-centrality vertices with their scores.
    TopK {
        /// How many vertices to return.
        k: usize,
    },
    /// One vertex's score.
    Vertex {
        /// The vertex id.
        v: usize,
    },
    /// The full score vector.
    Full,
}

impl Query {
    /// Label used in metrics.
    pub fn name(&self) -> &'static str {
        match self {
            Query::TopK { .. } => "topk",
            Query::Vertex { .. } => "vertex",
            Query::Full => "full",
        }
    }
}

/// A query plus its per-request quality budget.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Request {
    /// Caller-chosen id, echoed on the response.
    pub id: u64,
    /// What to compute.
    pub query: Query,
    /// Modeled-seconds budget for this request; `None` uses the
    /// engine's default. The budget buys *progress*: the engine
    /// spends it advancing the exact computation, and degrades the
    /// answer when the budget cannot fit the remainder.
    pub deadline_s: Option<f64>,
}

/// Why a submission was refused at admission time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShedReason {
    /// The bounded queue is full.
    QueueFull,
    /// The request is malformed (e.g. vertex id out of range).
    InvalidRequest,
}

impl ShedReason {
    /// Label used in metrics and on the wire.
    pub fn name(&self) -> &'static str {
        match self {
            ShedReason::QueueFull => "queue-full",
            ShedReason::InvalidRequest => "invalid-request",
        }
    }
}

/// Outcome of [`Engine::submit`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admission {
    /// Queued; a later [`Engine::drain`] will answer it.
    Admitted,
    /// Refused; no response will be produced.
    Shed(ShedReason),
}

/// How trustworthy a response's scores are — the degradation ladder.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Quality {
    /// Every source has been processed: the scores are the exact BC
    /// values, bit-identical to a one-shot `mfbc_dist` run.
    Exact,
    /// Unbiased sampled estimate from `k` sources.
    Approx {
        /// Sources sampled.
        k: usize,
        /// Relative standard error of the estimator
        /// (`mfbc_core::sample_rel_se`).
        ci: f64,
    },
    /// Last committed exact partial sums, possibly behind the full
    /// computation.
    Stale {
        /// Store version served (committed batches so far).
        version: u64,
    },
}

impl Quality {
    /// Label used in metrics and on the wire.
    pub fn name(&self) -> &'static str {
        match self {
            Quality::Exact => "exact",
            Quality::Approx { .. } => "approx",
            Quality::Stale { .. } => "stale",
        }
    }
}

/// The answer payload, shaped by the request's [`Query`].
#[derive(Clone, Debug, PartialEq)]
pub enum Payload {
    /// `(vertex, score)` pairs, highest first.
    TopK(Vec<(usize, f64)>),
    /// One vertex's score.
    Vertex {
        /// The vertex id.
        v: usize,
        /// Its (possibly estimated or stale) score.
        score: f64,
    },
    /// The full score vector.
    Full(Vec<f64>),
}

/// A served response.
#[derive(Clone, Debug, PartialEq)]
pub struct Response {
    /// Echo of the request id.
    pub id: u64,
    /// Where on the degradation ladder the answer came from.
    pub quality: Quality,
    /// The scores asked for.
    pub payload: Payload,
    /// Store version at serve time.
    pub version: u64,
    /// Modeled seconds between the drain round starting and this
    /// response being ready (shared by the round's coalesced
    /// requests), including retry backoff and degraded-estimate
    /// compute.
    pub latency_modeled_s: f64,
    /// Engine-level retries spent during this round.
    pub retries: u32,
}

/// Liveness/readiness snapshot.
#[derive(Clone, Debug, PartialEq)]
pub struct Health {
    /// The engine can still make exact progress (not poisoned).
    pub ready: bool,
    /// The engine answers queries at all (always true while it
    /// exists; poisoned engines stay live and serve stale).
    pub live: bool,
    /// Requests waiting for the next drain.
    pub queue_depth: usize,
    /// Committed batches in the score store.
    pub store_version: u64,
    /// Whether the store holds the complete exact scores.
    pub exact_complete: bool,
    /// Current machine size (shrinks after crash recovery).
    pub p: usize,
    /// Responses served so far.
    pub served: u64,
    /// Requests shed at admission so far.
    pub shed: u64,
    /// Circuit-breaker state (`closed`/`open`/`half-open`).
    pub breaker: &'static str,
    /// The error that poisoned the engine, if any.
    pub last_poison: Option<String>,
    /// Responses in the rolling SLO window (≤ [`SLO_WINDOW`]).
    pub window_len: usize,
    /// How many of those met their deadline.
    pub window_deadline_met: usize,
    /// Worst modeled latency in the window, in seconds.
    pub window_max_latency_s: f64,
    /// Prepared-adjacency cache activity across every request served
    /// (sticky after the exact session retires).
    pub mm_cache: CacheStats,
}

/// Engine tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Bounded queue capacity; submissions beyond it are shed.
    pub max_queue: usize,
    /// Engine-level retry/backoff policy for retryable session
    /// errors (exponential schedule via `RetryPolicy::backoff_for`).
    pub retry: RetryPolicy,
    /// Consecutive failed drain-advances that trip the breaker.
    pub breaker_threshold: u32,
    /// Drain rounds an open breaker waits before a half-open probe.
    pub breaker_cooldown: u32,
    /// Budget for requests that carry no deadline, in modeled
    /// seconds.
    pub default_deadline_s: f64,
    /// Smallest sample the engine will serve as `Approx`; below this
    /// it serves `Stale`.
    pub min_approx_k: usize,
    /// Seed for backoff jitter and degraded-mode sampling. Two
    /// engines with equal seeds, configs, and request streams produce
    /// bit-identical response streams.
    pub seed: u64,
    /// Flight-recorder ring capacity (events and journeys each).
    /// 0 disables the recorder entirely — no allocation, no
    /// recording. Recording does not perturb responses: a recorded
    /// run is bit-identical to an unrecorded one.
    pub flight_capacity: usize,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            max_queue: 64,
            retry: RetryPolicy::default(),
            breaker_threshold: 3,
            breaker_cooldown: 2,
            default_deadline_s: f64::INFINITY,
            min_approx_k: 4,
            seed: 0,
            flight_capacity: 0,
        }
    }
}

/// Versioned snapshot of the last committed scores.
struct ScoreStore {
    scores: BcScores,
    version: u64,
    exact_complete: bool,
}

/// The long-lived serving engine. See the crate docs for the design.
pub struct Engine {
    g: Graph,
    ecfg: EngineConfig,
    /// Live resumable exact computation; `None` once finished.
    session: Option<MfbcSession>,
    store: ScoreStore,
    /// Queued requests with the modeled clock at admission (for
    /// queue-wait attribution).
    queue: VecDeque<(Request, f64)>,
    breaker: CircuitBreaker,
    metrics: MetricsRegistry,
    /// Bounded in-engine flight recorder; `None` when disabled.
    flight: Option<FlightRecorder>,
    /// Dump captured automatically at the last poison/breaker-trip,
    /// waiting for [`Engine::take_auto_dump`].
    auto_dump: Option<String>,
    /// The error text that poisoned the engine, if any.
    last_poison: Option<String>,
    /// Last-known prepared-adjacency cache stats (sticky once the
    /// session retires).
    cache_stats: CacheStats,
    /// Rolling `(latency_s, deadline_met)` window of the most recent
    /// responses.
    window: VecDeque<(f64, bool)>,
    /// Modeled clock of the finished session (the machine handle is
    /// gone after `finish`).
    final_clock_s: f64,
    /// Modeled seconds spent outside the machine: retry backoff waits
    /// and degraded-estimate compute.
    extra_modeled_s: f64,
    /// Modeled seconds and count of committed batches, for the
    /// measured per-batch average.
    committed_modeled_s: f64,
    committed_batches: u64,
    batch_nb: usize,
    poisoned: bool,
    rounds: u64,
    served: u64,
    shed: u64,
    breaker_trips_seen: u64,
}

impl Engine {
    /// Builds a warm engine: distributes the graph on `machine`,
    /// charges the resident state, and declares the metric families.
    ///
    /// # Errors
    /// Fails if the session cannot be built (bad plan config, memory
    /// budget exceeded), or if `cfg` sets `max_batches` or an
    /// explicit source subset — the store must converge to the full
    /// exact scores, so partial configs are rejected up front.
    pub fn new(
        machine: &Machine,
        g: Graph,
        cfg: &MfbcConfig,
        ecfg: EngineConfig,
    ) -> Result<Engine, MachineError> {
        if cfg.max_batches.is_some() {
            return Err(MachineError::invalid(
                "serve engine requires max_batches = None (the store must reach exact)",
            ));
        }
        if cfg.sources.is_some() {
            return Err(MachineError::invalid(
                "serve engine requires the full source set (sources = None)",
            ));
        }
        let session = MfbcSession::new(machine, &g, cfg)?;
        let n = g.n();
        let metrics = MetricsRegistry::new();
        metrics.declare(
            "serve_requests_total",
            MetricKind::Counter,
            "Requests admitted, by query type",
        );
        metrics.declare(
            "serve_responses_total",
            MetricKind::Counter,
            "Responses served, by quality",
        );
        metrics.declare(
            "serve_shed_total",
            MetricKind::Counter,
            "Requests refused at admission, by reason",
        );
        metrics.declare(
            "serve_retries_total",
            MetricKind::Counter,
            "Engine-level retries of retryable session errors",
        );
        metrics.declare(
            "serve_breaker_trips_total",
            MetricKind::Counter,
            "Circuit-breaker trips to stale-serving",
        );
        metrics.declare(
            "serve_batches_total",
            MetricKind::Counter,
            "Exact batches committed into the score store",
        );
        metrics.declare(
            "serve_queue_depth",
            MetricKind::Gauge,
            "Requests waiting for the next drain",
        );
        metrics.declare(
            "serve_store_version",
            MetricKind::Gauge,
            "Committed batches in the score store",
        );
        metrics.declare(
            "serve_ready",
            MetricKind::Gauge,
            "1 while the engine can make exact progress",
        );
        metrics.declare(
            "serve_latency_modeled_us",
            MetricKind::Histogram,
            "Modeled round latency in microseconds",
        );
        metrics.declare(
            "serve_coalesced_requests",
            MetricKind::Histogram,
            "Requests coalesced per drain round",
        );
        metrics.declare(
            "serve_rounds_total",
            MetricKind::Counter,
            "Coalesced drain rounds",
        );
        metrics.declare(
            "serve_queue_wait_modeled_us",
            MetricKind::Histogram,
            "Modeled microseconds a request waited queued before its round",
        );
        metrics.declare(
            "serve_deadline_total",
            MetricKind::Counter,
            "Responses by deadline attainment (result = met|missed)",
        );
        metrics.declare(
            "serve_deadline_margin_modeled_us",
            MetricKind::Histogram,
            "Modeled microseconds of slack on met finite deadlines",
        );
        metrics.declare(
            "serve_degrade_total",
            MetricKind::Counter,
            "Degraded (non-exact) responses by rung and reason",
        );
        metrics.declare(
            "serve_mm_cache_hits",
            MetricKind::Gauge,
            "Prepared-adjacency cache hits across every request served",
        );
        metrics.declare(
            "serve_mm_cache_misses",
            MetricKind::Gauge,
            "Prepared-adjacency cache misses across every request served",
        );
        metrics.declare(
            "serve_mm_cache_inserts",
            MetricKind::Gauge,
            "Prepared-adjacency cache inserts across every request served",
        );
        metrics.declare(
            "serve_mm_cache_evictions",
            MetricKind::Gauge,
            "Prepared-adjacency cache entries dropped by release or rollback",
        );
        metrics.gauge_set("serve_ready", &[], 1.0);
        let batch_nb = session.batch_size();
        Ok(Engine {
            g,
            ecfg,
            session: Some(session),
            store: ScoreStore {
                scores: BcScores::zeros(n),
                version: 0,
                exact_complete: false,
            },
            queue: VecDeque::new(),
            breaker: CircuitBreaker::new(ecfg.breaker_threshold, ecfg.breaker_cooldown),
            metrics,
            flight: (ecfg.flight_capacity > 0).then(|| FlightRecorder::new(ecfg.flight_capacity)),
            auto_dump: None,
            last_poison: None,
            cache_stats: CacheStats::default(),
            window: VecDeque::new(),
            final_clock_s: 0.0,
            extra_modeled_s: 0.0,
            committed_modeled_s: 0.0,
            committed_batches: 0,
            batch_nb,
            poisoned: false,
            rounds: 0,
            served: 0,
            shed: 0,
            breaker_trips_seen: 0,
        })
    }

    /// Offers a request to the bounded queue.
    pub fn submit(&mut self, req: Request) -> Admission {
        let valid = match req.query {
            Query::Vertex { v } => v < self.g.n(),
            Query::TopK { k } => k > 0,
            Query::Full => true,
        };
        if !valid {
            return self.shed(req.id, ShedReason::InvalidRequest);
        }
        if self.queue.len() >= self.ecfg.max_queue {
            return self.shed(req.id, ShedReason::QueueFull);
        }
        let now_s = self.clock_s();
        self.queue.push_back((req, now_s));
        self.metrics
            .counter_add("serve_requests_total", &[("query", req.query.name())], 1.0);
        self.metrics
            .gauge_set("serve_queue_depth", &[], self.queue.len() as f64);
        let deadline_s = req.deadline_s.unwrap_or(self.ecfg.default_deadline_s);
        let depth = self.queue.len() as u64;
        mfbc_trace::emit(|| TraceEvent::RequestAdmitted {
            request_id: req.id,
            query: req.query.name(),
            deadline_s,
            queue_depth: depth,
        });
        if let Some(fr) = &mut self.flight {
            fr.record(
                now_s,
                FlightKind::Admitted {
                    id: req.id,
                    query: req.query.name(),
                    deadline_s,
                    queue_depth: depth,
                },
            );
            fr.admit(Journey {
                id: req.id,
                query: req.query.name(),
                deadline_s,
                submitted_s: now_s,
                round: 0,
                queue_wait_s: 0.0,
                rung: "",
                reason: "",
                approx_k: 0,
                budget_s: 0.0,
                spent_s: 0.0,
                est_batch_s: 0.0,
                store_version: 0,
                retries: 0,
                latency_s: 0.0,
                deadline_met: false,
                complete: false,
            });
        }
        Admission::Admitted
    }

    fn shed(&mut self, id: u64, reason: ShedReason) -> Admission {
        self.shed += 1;
        self.metrics
            .counter_add("serve_shed_total", &[("reason", reason.name())], 1.0);
        if self.flight.is_some() {
            let now_s = self.clock_s();
            if let Some(fr) = &mut self.flight {
                fr.record(
                    now_s,
                    FlightKind::Shed {
                        id,
                        reason: reason.name(),
                    },
                );
            }
        }
        Admission::Shed(reason)
    }

    /// The engine's modeled clock: machine time plus backoff and
    /// degraded-estimate charges.
    fn clock_s(&self) -> f64 {
        let machine_s = match &self.session {
            Some(s) => s.machine().report().critical.total_time(),
            None => self.final_clock_s,
        };
        machine_s + self.extra_modeled_s
    }

    /// Expected modeled seconds to commit one more exact batch: the
    /// measured average once a batch has landed, else the autotuner's
    /// cost-model prediction for the batch's products times a sweep
    /// estimate.
    fn est_batch_s(&self) -> f64 {
        if self.committed_batches > 0 {
            return self.committed_modeled_s / self.committed_batches as f64;
        }
        let Some(session) = &self.session else {
            return 0.0;
        };
        let n = self.g.n() as u64;
        let nb = self.batch_nb as u64;
        let nnz = self.g.adjacency().nnz() as u64;
        // One frontier product: Aᵀ (n×n, the graph) times the batch
        // panel (n×nb, about one incident edge set per source).
        let frontier_nnz = (nb * (nnz / n.max(1)).max(1)).max(1);
        let stats = MmStats::estimate(n, n, nb, nnz, frontier_nnz, 12, 12, 20);
        let (_, per_mm) = best_plan(session.machine().spec(), &stats);
        // Forward plus backward sweeps, roughly log n iterations
        // each; a deliberate overestimate is safer for admission than
        // an underestimate. Replaced by the measured average after
        // the first commit.
        let sweeps = 2.0 * ((n.max(2) as f64).log2().ceil() + 1.0);
        per_mm * sweeps
    }

    /// Answers every queued request in one coalesced round. Admitted
    /// requests are never dropped: each gets exactly one response at
    /// the best quality the shared budget and the machine's health
    /// allow.
    pub fn drain(&mut self) -> Vec<Response> {
        if self.queue.is_empty() {
            return Vec::new();
        }
        let round: Vec<(Request, f64)> = self.queue.drain(..).collect();
        self.rounds += 1;
        self.metrics.gauge_set("serve_queue_depth", &[], 0.0);
        self.metrics
            .observe("serve_coalesced_requests", &[], round.len() as f64);
        self.metrics.counter_add("serve_rounds_total", &[], 1.0);

        let start_s = self.clock_s();
        let default_deadline = self.ecfg.default_deadline_s;
        let deadline = move |r: &Request| r.deadline_s.unwrap_or(default_deadline);
        // The most patient request funds shared progress; everyone
        // admitted rides along (coalescing).
        let round_budget = round
            .iter()
            .map(|(r, _)| deadline(r))
            .fold(0.0_f64, f64::max);

        let round_id = self.rounds;
        let version_at_start = self.store.version;
        mfbc_trace::emit(|| TraceEvent::RoundStart {
            round: round_id,
            requests: round.len() as u64,
            budget_s: round_budget,
            store_version: version_at_start,
        });
        if let Some(fr) = &mut self.flight {
            fr.record(
                start_s,
                FlightKind::RoundStart {
                    round: round_id,
                    requests: round.len() as u64,
                    budget_s: round_budget,
                    store_version: version_at_start,
                },
            );
        }

        let mut retries_this_round = 0u32;
        // An open breaker pins the round to stale-serving: no exact
        // advance, no fresh estimates, until the cooldown admits a
        // probe.
        let breaker_open = !self.store.exact_complete && !self.poisoned && !self.breaker.allows();
        if !self.store.exact_complete && !self.poisoned && !breaker_open {
            self.advance_within(round_budget, start_s, &mut retries_this_round);
        }

        // Degraded rung: one shared sample sized to the largest
        // leftover budget among requests that can still afford the
        // minimum sample.
        let mut approx: Option<(usize, BcScores)> = None;
        let mut min_k_refused = false;
        if !self.store.exact_complete && !self.poisoned && !breaker_open {
            let elapsed = self.clock_s() - start_s;
            let est_source_s = (self.est_batch_s() / self.batch_nb.max(1) as f64).max(1e-12);
            let k_round = round
                .iter()
                .map(|(r, _)| ((deadline(r) - elapsed) / est_source_s) as i64)
                .max()
                .unwrap_or(0)
                .clamp(0, self.g.n() as i64) as usize;
            if k_round >= self.ecfg.min_approx_k {
                // Seeded by (engine seed, store version, round): the
                // same schedule replays bit for bit.
                let sample_seed = self.ecfg.seed
                    ^ self.store.version.wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    ^ self.rounds;
                let est = mfbc_approx(&self.g, k_round, sample_seed);
                // The estimator runs shared-memory; charge its
                // modeled cost so latencies stay honest.
                self.extra_modeled_s += k_round as f64 * est_source_s;
                approx = Some((k_round, est.scores));
            } else {
                min_k_refused = true;
            }
        }

        // The round's degradation decision, with the budget
        // arithmetic that forced it — the provenance every degraded
        // response traces back to.
        let elapsed = self.clock_s() - start_s;
        let est_batch_s = self.est_batch_s();
        let (rung, reason): (&'static str, &'static str) = if self.store.exact_complete {
            ("exact", "complete")
        } else if approx.is_some() {
            ("approx", "budget")
        } else if self.poisoned {
            ("stale", "poisoned")
        } else if breaker_open {
            ("stale", "breaker-open")
        } else if min_k_refused {
            ("stale", "min-k")
        } else {
            ("stale", "budget")
        };
        let approx_k = approx.as_ref().map_or(0, |(k, _)| *k as u64);
        let version = self.store.version;
        mfbc_trace::emit(|| TraceEvent::DegradeDecision {
            round: round_id,
            rung,
            reason,
            budget_s: round_budget,
            spent_s: elapsed,
            est_batch_s,
            approx_k,
            store_version: version,
        });
        if let Some(fr) = &mut self.flight {
            fr.record(
                start_s + elapsed,
                FlightKind::Degrade {
                    round: round_id,
                    rung,
                    reason,
                    budget_s: round_budget,
                    spent_s: elapsed,
                    est_batch_s,
                    approx_k,
                    store_version: version,
                },
            );
        }

        let n = self.g.n();
        let mut out = Vec::with_capacity(round.len());
        for (req, submitted_s) in round {
            let (quality, scores) = if self.store.exact_complete {
                (Quality::Exact, &self.store.scores)
            } else if let Some((k, est)) = &approx {
                (
                    Quality::Approx {
                        k: *k,
                        ci: sample_rel_se(n, *k),
                    },
                    est,
                )
            } else {
                (Quality::Stale { version }, &self.store.scores)
            };
            let payload = match req.query {
                Query::TopK { k } => Payload::TopK(scores.top_k(k)),
                Query::Vertex { v } => Payload::Vertex {
                    v,
                    score: scores.lambda[v],
                },
                Query::Full => Payload::Full(scores.lambda.clone()),
            };
            self.metrics
                .counter_add("serve_responses_total", &[("quality", quality.name())], 1.0);
            self.metrics
                .observe("serve_latency_modeled_us", &[], elapsed * 1e6);
            if quality.name() != "exact" {
                self.metrics.counter_add(
                    "serve_degrade_total",
                    &[("rung", rung), ("reason", reason)],
                    1.0,
                );
            }
            // SLO accounting: queue wait, deadline attainment, margin.
            let queue_wait_s = (start_s - submitted_s).max(0.0);
            self.metrics
                .observe("serve_queue_wait_modeled_us", &[], queue_wait_s * 1e6);
            let req_deadline = deadline(&req);
            let met = elapsed <= req_deadline;
            self.metrics.counter_add(
                "serve_deadline_total",
                &[("result", if met { "met" } else { "missed" })],
                1.0,
            );
            if met && req_deadline.is_finite() {
                self.metrics.observe(
                    "serve_deadline_margin_modeled_us",
                    &[],
                    (req_deadline - elapsed) * 1e6,
                );
            }
            if self.window.len() >= SLO_WINDOW {
                self.window.pop_front();
            }
            self.window.push_back((elapsed, met));
            if let Some(fr) = &mut self.flight {
                fr.complete(req.id, |j| {
                    j.round = round_id;
                    j.queue_wait_s = queue_wait_s;
                    j.rung = rung;
                    j.reason = reason;
                    j.approx_k = approx_k;
                    j.budget_s = round_budget;
                    j.spent_s = elapsed;
                    j.est_batch_s = est_batch_s;
                    j.store_version = version;
                    j.retries = retries_this_round;
                    j.latency_s = elapsed;
                    j.deadline_met = met;
                });
            }
            self.served += 1;
            out.push(Response {
                id: req.id,
                quality,
                payload,
                version,
                latency_modeled_s: elapsed,
                retries: retries_this_round,
            });
        }

        let responses = out.len() as u64;
        mfbc_trace::emit(|| TraceEvent::RoundEnd {
            round: round_id,
            responses,
            elapsed_s: elapsed,
            store_version: version,
        });
        if let Some(fr) = &mut self.flight {
            fr.record(
                start_s + elapsed,
                FlightKind::RoundEnd {
                    round: round_id,
                    responses,
                    elapsed_s: elapsed,
                },
            );
        }
        self.refresh_cache_stats();
        out
    }

    /// Advances the exact session while the cost model says the next
    /// batch fits the budget, retrying retryable failures with
    /// exponential backoff. Crash recovery happens *inside*
    /// `MfbcSession::step`; an unrecoverable error poisons the engine
    /// (it keeps serving stale).
    fn advance_within(&mut self, budget_s: f64, start_s: f64, retries: &mut u32) {
        let mut attempt = 0u32;
        loop {
            if self.session.is_none() {
                return;
            }
            let spent = self.clock_s() - start_s;
            if self.est_batch_s() > budget_s - spent {
                return;
            }
            let before_s = self.clock_s();
            let step = self.session.as_mut().expect("checked above").step();
            match step {
                Ok(SessionStep::Committed { .. }) => {
                    attempt = 0;
                    self.breaker.record_success();
                    let session = self.session.as_ref().expect("still live");
                    self.committed_modeled_s += self.clock_s() - before_s;
                    self.committed_batches += 1;
                    self.store.scores = session.scores().clone();
                    self.store.version += 1;
                    self.metrics.counter_add("serve_batches_total", &[], 1.0);
                    self.metrics
                        .gauge_set("serve_store_version", &[], self.store.version as f64);
                    if self.flight.is_some() {
                        let now_s = self.clock_s();
                        let round = self.rounds;
                        let store_version = self.store.version;
                        if let Some(fr) = &mut self.flight {
                            fr.record(
                                now_s,
                                FlightKind::Commit {
                                    round,
                                    store_version,
                                },
                            );
                        }
                    }
                }
                Ok(SessionStep::Done) => {
                    let mut session = self.session.take().expect("still live");
                    self.cache_stats = session.cache_stats();
                    let run = session.finish();
                    self.final_clock_s = run.report.critical.total_time();
                    self.store.scores = run.scores;
                    self.store.exact_complete = true;
                    return;
                }
                Err(e) if self.session.as_ref().is_some_and(|s| s.poisoned()) => {
                    // Unrecoverable: the session released its state.
                    // Stop computing; keep serving the stale store.
                    // Keep the machine clock (the wasted work is real
                    // modeled time) before dropping the handle.
                    if let Some(s) = &self.session {
                        self.cache_stats = s.cache_stats();
                    }
                    self.final_clock_s = self
                        .session
                        .as_ref()
                        .map(|s| s.machine().report().critical.total_time())
                        .unwrap_or(self.final_clock_s);
                    self.session = None;
                    self.poisoned = true;
                    self.last_poison = Some(e.to_string());
                    self.metrics.gauge_set("serve_ready", &[], 0.0);
                    self.breaker.record_failure();
                    self.note_breaker_trips();
                    if self.flight.is_some() {
                        let now_s = self.clock_s();
                        let round = self.rounds;
                        let detail = e.to_string();
                        if let Some(fr) = &mut self.flight {
                            fr.record(now_s, FlightKind::Poison { round, detail });
                        }
                        self.auto_dump = self.flight.as_ref().map(FlightRecorder::dump);
                    }
                    return;
                }
                Err(_) => {
                    // Retryable: state is rolled back and resident.
                    if attempt + 1 >= self.ecfg.retry.max_attempts {
                        self.breaker.record_failure();
                        self.note_breaker_trips();
                        return;
                    }
                    let wait = self
                        .ecfg
                        .retry
                        .backoff_for(attempt, self.ecfg.seed ^ self.rounds);
                    self.extra_modeled_s += wait;
                    attempt += 1;
                    *retries += 1;
                    self.metrics.counter_add("serve_retries_total", &[], 1.0);
                    if self.flight.is_some() {
                        let now_s = self.clock_s();
                        let round = self.rounds;
                        let wait_s = wait;
                        let a = attempt - 1;
                        if let Some(fr) = &mut self.flight {
                            fr.record(
                                now_s,
                                FlightKind::Retry {
                                    round,
                                    attempt: a,
                                    wait_s,
                                },
                            );
                        }
                    }
                }
            }
        }
    }

    fn note_breaker_trips(&mut self) {
        let trips = self.breaker.trips();
        if trips > self.breaker_trips_seen {
            self.metrics.counter_add(
                "serve_breaker_trips_total",
                &[],
                (trips - self.breaker_trips_seen) as f64,
            );
            self.breaker_trips_seen = trips;
            if self.flight.is_some() {
                let now_s = self.clock_s();
                let round = self.rounds;
                if let Some(fr) = &mut self.flight {
                    fr.record(now_s, FlightKind::BreakerTrip { round, trips });
                }
                self.auto_dump = self.flight.as_ref().map(FlightRecorder::dump);
            }
        }
    }

    /// Refreshes the sticky mm-cache stats from the live session (if
    /// any) and mirrors them into the registry gauges.
    fn refresh_cache_stats(&mut self) {
        if let Some(s) = &self.session {
            self.cache_stats = s.cache_stats();
        }
        let c = self.cache_stats;
        self.metrics
            .gauge_set("serve_mm_cache_hits", &[], c.hits as f64);
        self.metrics
            .gauge_set("serve_mm_cache_misses", &[], c.misses as f64);
        self.metrics
            .gauge_set("serve_mm_cache_inserts", &[], c.inserts as f64);
        self.metrics
            .gauge_set("serve_mm_cache_evictions", &[], c.evictions as f64);
    }

    /// Liveness/readiness snapshot.
    pub fn health(&self) -> Health {
        let mut cache = self.cache_stats;
        if let Some(s) = &self.session {
            cache = s.cache_stats();
        }
        Health {
            ready: !self.poisoned,
            live: true,
            queue_depth: self.queue.len(),
            store_version: self.store.version,
            exact_complete: self.store.exact_complete,
            p: self
                .session
                .as_ref()
                .map(|s| s.machine().p())
                .unwrap_or_default(),
            served: self.served,
            shed: self.shed,
            breaker: breaker_name(self.breaker.state()),
            last_poison: self.last_poison.clone(),
            window_len: self.window.len(),
            window_deadline_met: self.window.iter().filter(|(_, met)| *met).count(),
            window_max_latency_s: self.window.iter().map(|(l, _)| *l).fold(0.0_f64, f64::max),
            mm_cache: cache,
        }
    }

    /// The engine's metric registry (scrape with
    /// `mfbc_profile::prometheus::render`).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Whether an unrecoverable error ended exact progress. A
    /// poisoned engine stays live and serves `Stale`.
    pub fn poisoned(&self) -> bool {
        self.poisoned
    }

    /// Whether the store holds the complete exact scores.
    pub fn exact_complete(&self) -> bool {
        self.store.exact_complete
    }

    /// Committed batches in the score store.
    pub fn store_version(&self) -> u64 {
        self.store.version
    }

    /// The engine's modeled clock in seconds (machine time plus
    /// backoff and degraded-estimate charges).
    pub fn modeled_s(&self) -> f64 {
        self.clock_s()
    }

    /// The cost the admission ladder currently charges one exact
    /// batch: measured average after the first commit, else the
    /// autotuner's prediction. Exposed so callers (CLI, load tests)
    /// can pick meaningful deadlines.
    pub fn est_batch_modeled_s(&self) -> f64 {
        self.est_batch_s()
    }

    /// Drives the exact computation as far as it will go before any
    /// request arrives (`mfbc-cli serve --warm`): repeated unbounded
    /// advances until the store is exact, the engine is poisoned, or
    /// the circuit breaker opens on persistent failures. Returns the
    /// engine-level retries spent.
    pub fn warm(&mut self) -> u32 {
        let mut retries = 0u32;
        while !self.store.exact_complete && !self.poisoned && self.breaker.allows() {
            let start_s = self.clock_s();
            self.advance_within(f64::INFINITY, start_s, &mut retries);
        }
        self.refresh_cache_stats();
        retries
    }

    /// Current circuit-breaker state.
    pub fn breaker_state(&self) -> mfbc_fault::BreakerState {
        self.breaker.state()
    }

    /// Dumps the flight recorder now, as one JSON line. `None` when
    /// the recorder is disabled (`flight_capacity = 0`).
    pub fn flight_dump(&self) -> Option<String> {
        self.flight.as_ref().map(FlightRecorder::dump)
    }

    /// The dump captured automatically at the most recent poison or
    /// breaker trip, if one happened since the last call (taking
    /// clears it).
    pub fn take_auto_dump(&mut self) -> Option<String> {
        self.auto_dump.take()
    }

    /// Read access to the flight recorder (e.g. for journey
    /// inspection in tests and load harnesses). `None` when disabled.
    pub fn flight(&self) -> Option<&FlightRecorder> {
        self.flight.as_ref()
    }

    /// Prepared-adjacency cache activity across every request served
    /// (sticky after the exact session retires).
    pub fn cache_stats(&self) -> CacheStats {
        let mut cache = self.cache_stats;
        if let Some(s) = &self.session {
            cache = s.cache_stats();
        }
        cache
    }

    /// The graph being served.
    pub fn graph(&self) -> &Graph {
        &self.g
    }
}
