//! Dependency-free JSON-lines wire protocol for the engine.
//!
//! One request per line; a blank line is the flush boundary that
//! triggers a coalesced [`crate::Engine::drain`]. Score values are
//! rendered with `mfbc_profile::jsonio::num`, which round-trips f64
//! bits exactly — the conformance harness compares exact-mode
//! responses to one-shot runs *through* this format.
//!
//! ```text
//! > {"id":1,"query":"topk","k":3,"deadline_s":0.5}
//! > {"id":2,"query":"vertex","v":7}
//! >
//! < {"id":1,"quality":"exact","version":4,...,"topk":[[2,17.0],...]}
//! < {"id":2,"quality":"exact","version":4,...,"v":7,"score":3.5}
//! > {"cmd":"health"}
//! < {"ready":true,"live":true,...}
//! ```

use crate::engine::{Health, Payload, Quality, Query, Request, Response, ShedReason};
use mfbc_profile::jsonio::{self, Json};

/// A parsed input line.
#[derive(Clone, Debug, PartialEq)]
pub enum WireCmd {
    /// A query to enqueue.
    Request(Request),
    /// An immediate health probe (not queued, not coalesced).
    Health,
    /// An immediate flight-recorder dump (not queued, not coalesced).
    Dump,
}

/// Parses one JSON-lines request.
///
/// # Errors
/// Returns a message describing the malformed field; the caller
/// answers with a `shed: invalid-request` line rather than dying.
pub fn parse_line(line: &str) -> Result<WireCmd, String> {
    let v = jsonio::parse(line)?;
    if let Some(cmd) = v.get("cmd").and_then(Json::as_str) {
        return match cmd {
            "health" => Ok(WireCmd::Health),
            "dump" => Ok(WireCmd::Dump),
            other => Err(format!("unknown cmd {other:?}")),
        };
    }
    let id = v
        .get("id")
        .and_then(Json::as_u64)
        .ok_or("request needs a numeric \"id\"")?;
    let query = match v.get("query").and_then(Json::as_str) {
        Some("topk") => Query::TopK {
            k: v.get("k")
                .and_then(Json::as_u64)
                .ok_or("topk needs a numeric \"k\"")? as usize,
        },
        Some("vertex") => Query::Vertex {
            v: v.get("v")
                .and_then(Json::as_u64)
                .ok_or("vertex needs a numeric \"v\"")? as usize,
        },
        Some("full") => Query::Full,
        Some(other) => return Err(format!("unknown query {other:?}")),
        None => return Err("request needs a \"query\" of topk|vertex|full".into()),
    };
    let deadline_s = v.get("deadline_s").and_then(Json::as_f64);
    if let Some(d) = deadline_s {
        if !d.is_finite() || d < 0.0 {
            return Err(format!("deadline_s must be a nonnegative number, got {d}"));
        }
    }
    Ok(WireCmd::Request(Request {
        id,
        query,
        deadline_s,
    }))
}

/// Renders a served response as one JSON line.
pub fn render_response(r: &Response) -> String {
    let mut s = format!("{{\"id\":{},\"quality\":\"{}\"", r.id, r.quality.name());
    match r.quality {
        Quality::Exact => {}
        Quality::Approx { k, ci } => {
            s.push_str(&format!(",\"approx_k\":{k},\"ci\":{}", jsonio::num(ci)));
        }
        Quality::Stale { version } => {
            s.push_str(&format!(",\"stale_version\":{version}"));
        }
    }
    s.push_str(&format!(
        ",\"version\":{},\"latency_modeled_s\":{},\"retries\":{}",
        r.version,
        jsonio::num(r.latency_modeled_s),
        r.retries
    ));
    match &r.payload {
        Payload::TopK(pairs) => {
            s.push_str(",\"topk\":[");
            for (i, (v, score)) in pairs.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push_str(&format!("[{v},{}]", jsonio::num(*score)));
            }
            s.push(']');
        }
        Payload::Vertex { v, score } => {
            s.push_str(&format!(",\"v\":{v},\"score\":{}", jsonio::num(*score)));
        }
        Payload::Full(scores) => {
            s.push_str(",\"scores\":[");
            for (i, score) in scores.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push_str(&jsonio::num(*score));
            }
            s.push(']');
        }
    }
    s.push('}');
    s
}

/// Renders the refusal line for a shed submission.
pub fn render_shed(id: u64, reason: ShedReason) -> String {
    format!("{{\"id\":{id},\"shed\":\"{}\"}}", reason.name())
}

/// Renders the refusal line for an unparseable submission (no
/// trustworthy id).
pub fn render_invalid(detail: &str) -> String {
    format!(
        "{{\"shed\":\"invalid-request\",\"detail\":\"{}\"}}",
        jsonio::esc(detail)
    )
}

/// Renders a health snapshot as one JSON line, including breaker
/// state, last-poison detail, the rolling SLO window, and mm-cache
/// activity.
pub fn render_health(h: &Health) -> String {
    let mut s = format!(
        "{{\"ready\":{},\"live\":{},\"queue_depth\":{},\"version\":{},\"exact_complete\":{},\"p\":{},\"served\":{},\"shed\":{}",
        h.ready, h.live, h.queue_depth, h.store_version, h.exact_complete, h.p, h.served, h.shed
    );
    s.push_str(&format!(",\"breaker\":\"{}\"", h.breaker));
    match &h.last_poison {
        Some(detail) => s.push_str(&format!(",\"last_poison\":\"{}\"", jsonio::esc(detail))),
        None => s.push_str(",\"last_poison\":null"),
    }
    s.push_str(&format!(
        ",\"window\":{{\"len\":{},\"deadline_met\":{},\"max_latency_s\":{}}}",
        h.window_len,
        h.window_deadline_met,
        jsonio::num(h.window_max_latency_s)
    ));
    s.push_str(&format!(
        ",\"mm_cache\":{{\"hits\":{},\"misses\":{},\"inserts\":{},\"evictions\":{}}}}}",
        h.mm_cache.hits, h.mm_cache.misses, h.mm_cache.inserts, h.mm_cache.evictions
    ));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_each_query_shape() {
        let topk = parse_line(r#"{"id":1,"query":"topk","k":5,"deadline_s":0.5}"#).unwrap();
        assert_eq!(
            topk,
            WireCmd::Request(Request {
                id: 1,
                query: Query::TopK { k: 5 },
                deadline_s: Some(0.5),
            })
        );
        let vertex = parse_line(r#"{"id":2,"query":"vertex","v":7}"#).unwrap();
        assert_eq!(
            vertex,
            WireCmd::Request(Request {
                id: 2,
                query: Query::Vertex { v: 7 },
                deadline_s: None,
            })
        );
        let full = parse_line(r#"{"id":3,"query":"full"}"#).unwrap();
        assert_eq!(
            full,
            WireCmd::Request(Request {
                id: 3,
                query: Query::Full,
                deadline_s: None,
            })
        );
        assert_eq!(parse_line(r#"{"cmd":"health"}"#).unwrap(), WireCmd::Health);
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        for bad in [
            "not json",
            r#"{"query":"topk","k":5}"#,
            r#"{"id":1,"query":"nope"}"#,
            r#"{"id":1,"query":"topk"}"#,
            r#"{"id":1,"query":"vertex"}"#,
            r#"{"id":1,"query":"full","deadline_s":-1}"#,
            r#"{"cmd":"restart"}"#,
        ] {
            assert!(parse_line(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn responses_render_bit_exact_scores() {
        let r = Response {
            id: 9,
            quality: Quality::Approx { k: 4, ci: 0.25 },
            payload: Payload::Vertex {
                v: 3,
                score: 0.1 + 0.2, // not exactly 0.3: bits must survive
            },
            version: 2,
            latency_modeled_s: 1.5,
            retries: 1,
        };
        let line = render_response(&r);
        let v = jsonio::parse(&line).unwrap();
        let score = v.get("score").and_then(Json::as_f64).unwrap();
        assert_eq!(score.to_bits(), (0.1_f64 + 0.2).to_bits());
        assert_eq!(v.get("approx_k").and_then(Json::as_u64), Some(4));
        assert_eq!(v.get("quality").and_then(Json::as_str), Some("approx"));
    }

    #[test]
    fn shed_and_health_lines_parse_back() {
        let shed = render_shed(4, ShedReason::QueueFull);
        let v = jsonio::parse(&shed).unwrap();
        assert_eq!(v.get("shed").and_then(Json::as_str), Some("queue-full"));
        let h = Health {
            ready: true,
            live: true,
            queue_depth: 1,
            store_version: 2,
            exact_complete: false,
            p: 4,
            served: 3,
            shed: 0,
            breaker: "closed",
            last_poison: None,
            window_len: 2,
            window_deadline_met: 1,
            window_max_latency_s: 0.5,
            mm_cache: mfbc_tensor::CacheStats {
                hits: 5,
                misses: 2,
                inserts: 2,
                evictions: 0,
            },
        };
        let v = jsonio::parse(&render_health(&h)).unwrap();
        assert_eq!(v.get("queue_depth").and_then(Json::as_u64), Some(1));
        assert_eq!(v.get("p").and_then(Json::as_u64), Some(4));
        assert_eq!(v.get("breaker").and_then(Json::as_str), Some("closed"));
        assert!(matches!(v.get("last_poison"), Some(Json::Null)));
        assert_eq!(
            v.get("window")
                .and_then(|w| w.get("deadline_met"))
                .and_then(Json::as_u64),
            Some(1)
        );
        assert_eq!(
            v.get("mm_cache")
                .and_then(|c| c.get("hits"))
                .and_then(Json::as_u64),
            Some(5)
        );

        let poisoned = Health {
            last_poison: Some("rank 0 crashed \"hard\"".to_string()),
            breaker: "open",
            ..h
        };
        let v = jsonio::parse(&render_health(&poisoned)).unwrap();
        assert_eq!(
            v.get("last_poison").and_then(Json::as_str),
            Some("rank 0 crashed \"hard\"")
        );
        assert_eq!(v.get("breaker").and_then(Json::as_str), Some("open"));
    }
}
