//! The in-engine flight recorder: a bounded ring of recent
//! engine-level events plus per-request journey records, cheap enough
//! to leave on in production and byte-deterministic to snapshot.
//!
//! Unlike the [`mfbc_trace`] stream (which is off unless a recorder
//! is installed and captures *everything*), the flight recorder keeps
//! only the last `capacity` events of the engine's own story —
//! admissions, round boundaries, degradation decisions, retries,
//! breaker trips, poison — timestamped on the engine's *modeled*
//! clock, so two identical runs dump identical bytes. The engine
//! dumps it automatically when it poisons or the breaker trips, and
//! on demand via the wire `{"cmd":"dump"}` command.

use mfbc_profile::jsonio::{esc, num};
use std::collections::VecDeque;
use std::fmt::Write as _;

/// What one flight-recorder event records.
#[derive(Clone, Debug, PartialEq)]
pub enum FlightKind {
    /// A request entered the bounded queue.
    Admitted {
        /// Request id.
        id: u64,
        /// Query label (`topk`/`vertex`/`full`).
        query: &'static str,
        /// Effective deadline in modeled seconds.
        deadline_s: f64,
        /// Queue depth after admission.
        queue_depth: u64,
    },
    /// A submission was refused.
    Shed {
        /// Request id (0 when the line never parsed).
        id: u64,
        /// Refusal reason label.
        reason: &'static str,
    },
    /// A coalesced drain round began.
    RoundStart {
        /// 1-based round id.
        round: u64,
        /// Requests coalesced into it.
        requests: u64,
        /// Shared budget in modeled seconds.
        budget_s: f64,
        /// Store version at round start.
        store_version: u64,
    },
    /// The round chose its degradation rung.
    Degrade {
        /// Round id.
        round: u64,
        /// Chosen rung (`exact`/`approx`/`stale`).
        rung: &'static str,
        /// Why (`complete`/`budget`/`min-k`/`breaker-open`/`poisoned`).
        reason: &'static str,
        /// Shared budget in modeled seconds.
        budget_s: f64,
        /// Modeled seconds already spent when deciding.
        spent_s: f64,
        /// Cost the ladder charged one more exact batch.
        est_batch_s: f64,
        /// Sample size (0 unless the rung is `approx`).
        approx_k: u64,
        /// Store version at decision time.
        store_version: u64,
    },
    /// A retryable session error was backed off.
    Retry {
        /// Round id.
        round: u64,
        /// Zero-based attempt being retried.
        attempt: u32,
        /// Backoff wait in modeled seconds.
        wait_s: f64,
    },
    /// An exact batch committed into the store.
    Commit {
        /// Round id (0 during `warm`).
        round: u64,
        /// Store version after the commit.
        store_version: u64,
    },
    /// The circuit breaker tripped to stale-serving.
    BreakerTrip {
        /// Round id (0 during `warm`).
        round: u64,
        /// Lifetime trip count.
        trips: u64,
    },
    /// An unrecoverable error poisoned the engine.
    Poison {
        /// Round id (0 during `warm`).
        round: u64,
        /// The session error text.
        detail: String,
    },
    /// A drain round finished.
    RoundEnd {
        /// Round id.
        round: u64,
        /// Responses produced.
        responses: u64,
        /// Shared modeled latency of the round.
        elapsed_s: f64,
    },
}

impl FlightKind {
    /// Stable machine-readable tag.
    pub fn tag(&self) -> &'static str {
        match self {
            FlightKind::Admitted { .. } => "admitted",
            FlightKind::Shed { .. } => "shed",
            FlightKind::RoundStart { .. } => "round_start",
            FlightKind::Degrade { .. } => "degrade",
            FlightKind::Retry { .. } => "retry",
            FlightKind::Commit { .. } => "commit",
            FlightKind::BreakerTrip { .. } => "breaker_trip",
            FlightKind::Poison { .. } => "poison",
            FlightKind::RoundEnd { .. } => "round_end",
        }
    }
}

/// One recorded event: a monotonic sequence number (never reused,
/// so eviction is visible), the engine's modeled clock, and the
/// payload.
#[derive(Clone, Debug, PartialEq)]
pub struct FlightEvent {
    /// Monotonic sequence number across the recorder's lifetime.
    pub seq: u64,
    /// Engine modeled clock when recorded, in seconds.
    pub clock_s: f64,
    /// What happened.
    pub kind: FlightKind,
}

/// The full audit trail of one request, from admission to response.
/// Every degraded response is explainable from this record alone:
/// the rung, the budget arithmetic that forced it, and the round the
/// work was attributed to.
#[derive(Clone, Debug, PartialEq)]
pub struct Journey {
    /// Request id.
    pub id: u64,
    /// Query label.
    pub query: &'static str,
    /// Effective deadline in modeled seconds.
    pub deadline_s: f64,
    /// Modeled clock at admission.
    pub submitted_s: f64,
    /// Round that answered it (0 while still queued).
    pub round: u64,
    /// Modeled seconds spent queued before its round started.
    pub queue_wait_s: f64,
    /// Rung the response came from (empty while queued).
    pub rung: &'static str,
    /// Why that rung (empty while queued).
    pub reason: &'static str,
    /// Sample size when the rung is `approx`, else 0.
    pub approx_k: u64,
    /// The round's shared budget in modeled seconds.
    pub budget_s: f64,
    /// Modeled seconds the round had spent at decision time.
    pub spent_s: f64,
    /// Cost the ladder charged one more exact batch.
    pub est_batch_s: f64,
    /// Store version served.
    pub store_version: u64,
    /// Engine-level retries during its round.
    pub retries: u32,
    /// Shared modeled round latency.
    pub latency_s: f64,
    /// Whether the deadline was met (`latency_s <= deadline_s`).
    pub deadline_met: bool,
    /// Whether a response was produced.
    pub complete: bool,
}

/// Fixed-capacity recorder: a ring of recent [`FlightEvent`]s and a
/// ring of recent [`Journey`]s, both evicting oldest-first.
pub struct FlightRecorder {
    capacity: usize,
    events: VecDeque<FlightEvent>,
    journeys: VecDeque<Journey>,
    seq: u64,
    dropped_events: u64,
    dropped_journeys: u64,
}

impl FlightRecorder {
    /// A recorder holding at most `capacity` events and `capacity`
    /// journeys (oldest evicted first).
    pub fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            capacity: capacity.max(1),
            events: VecDeque::new(),
            journeys: VecDeque::new(),
            seq: 0,
            dropped_events: 0,
            dropped_journeys: 0,
        }
    }

    /// Records one event, evicting the oldest when full.
    pub fn record(&mut self, clock_s: f64, kind: FlightKind) {
        if self.events.len() >= self.capacity {
            self.events.pop_front();
            self.dropped_events += 1;
        }
        self.events.push_back(FlightEvent {
            seq: self.seq,
            clock_s,
            kind,
        });
        self.seq += 1;
    }

    /// Opens a journey at admission time.
    pub fn admit(&mut self, journey: Journey) {
        if self.journeys.len() >= self.capacity {
            self.journeys.pop_front();
            self.dropped_journeys += 1;
        }
        self.journeys.push_back(journey);
    }

    /// Completes the journey for request `id` (the most recent
    /// incomplete one with that id, so re-used ids stay coherent).
    /// Returns whether a journey was found.
    pub fn complete(&mut self, id: u64, fill: impl FnOnce(&mut Journey)) -> bool {
        if let Some(j) = self
            .journeys
            .iter_mut()
            .rev()
            .find(|j| j.id == id && !j.complete)
        {
            fill(j);
            j.complete = true;
            return true;
        }
        false
    }

    /// Recorded events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &FlightEvent> {
        self.events.iter()
    }

    /// Journey records, oldest first.
    pub fn journeys(&self) -> impl Iterator<Item = &Journey> {
        self.journeys.iter()
    }

    /// Events evicted from the ring so far.
    pub fn dropped_events(&self) -> u64 {
        self.dropped_events
    }

    /// Renders the whole recorder state as one JSON line. All f64s go
    /// through the exact formatter shared with the other exporters
    /// (non-finite renders as `null`), timestamps are modeled-clock,
    /// and ordering is the ring order — so two identical runs dump
    /// byte-identical lines.
    pub fn dump(&self) -> String {
        let mut s = String::with_capacity(4096);
        let _ = write!(
            s,
            "{{\"flight\":1,\"capacity\":{},\"dropped_events\":{},\"dropped_journeys\":{},\"events\":[",
            self.capacity, self.dropped_events, self.dropped_journeys
        );
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"seq\":{},\"clock_s\":{},\"kind\":\"{}\"",
                e.seq,
                num(e.clock_s),
                e.kind.tag()
            );
            match &e.kind {
                FlightKind::Admitted {
                    id,
                    query,
                    deadline_s,
                    queue_depth,
                } => {
                    let _ = write!(
                        s,
                        ",\"id\":{id},\"query\":\"{query}\",\"deadline_s\":{},\"queue_depth\":{queue_depth}",
                        num(*deadline_s)
                    );
                }
                FlightKind::Shed { id, reason } => {
                    let _ = write!(s, ",\"id\":{id},\"reason\":\"{reason}\"");
                }
                FlightKind::RoundStart {
                    round,
                    requests,
                    budget_s,
                    store_version,
                } => {
                    let _ = write!(
                        s,
                        ",\"round\":{round},\"requests\":{requests},\"budget_s\":{},\"store_version\":{store_version}",
                        num(*budget_s)
                    );
                }
                FlightKind::Degrade {
                    round,
                    rung,
                    reason,
                    budget_s,
                    spent_s,
                    est_batch_s,
                    approx_k,
                    store_version,
                } => {
                    let _ = write!(
                        s,
                        ",\"round\":{round},\"rung\":\"{rung}\",\"reason\":\"{reason}\",\"budget_s\":{},\"spent_s\":{},\"est_batch_s\":{},\"approx_k\":{approx_k},\"store_version\":{store_version}",
                        num(*budget_s),
                        num(*spent_s),
                        num(*est_batch_s)
                    );
                }
                FlightKind::Retry {
                    round,
                    attempt,
                    wait_s,
                } => {
                    let _ = write!(
                        s,
                        ",\"round\":{round},\"attempt\":{attempt},\"wait_s\":{}",
                        num(*wait_s)
                    );
                }
                FlightKind::Commit {
                    round,
                    store_version,
                } => {
                    let _ = write!(s, ",\"round\":{round},\"store_version\":{store_version}");
                }
                FlightKind::BreakerTrip { round, trips } => {
                    let _ = write!(s, ",\"round\":{round},\"trips\":{trips}");
                }
                FlightKind::Poison { round, detail } => {
                    let _ = write!(s, ",\"round\":{round},\"detail\":\"{}\"", esc(detail));
                }
                FlightKind::RoundEnd {
                    round,
                    responses,
                    elapsed_s,
                } => {
                    let _ = write!(
                        s,
                        ",\"round\":{round},\"responses\":{responses},\"elapsed_s\":{}",
                        num(*elapsed_s)
                    );
                }
            }
            s.push('}');
        }
        s.push_str("],\"journeys\":[");
        for (i, j) in self.journeys.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"id\":{},\"query\":\"{}\",\"deadline_s\":{},\"submitted_s\":{},\"round\":{},\"queue_wait_s\":{},\"rung\":\"{}\",\"reason\":\"{}\",\"approx_k\":{},\"budget_s\":{},\"spent_s\":{},\"est_batch_s\":{},\"store_version\":{},\"retries\":{},\"latency_s\":{},\"deadline_met\":{},\"complete\":{}}}",
                j.id,
                j.query,
                num(j.deadline_s),
                num(j.submitted_s),
                j.round,
                num(j.queue_wait_s),
                j.rung,
                j.reason,
                j.approx_k,
                num(j.budget_s),
                num(j.spent_s),
                num(j.est_batch_s),
                j.store_version,
                j.retries,
                num(j.latency_s),
                j.deadline_met,
                j.complete
            );
        }
        s.push_str("]}");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(round: u64) -> FlightKind {
        FlightKind::Commit {
            round,
            store_version: round,
        }
    }

    #[test]
    fn ring_evicts_oldest_first_and_keeps_seq() {
        let mut fr = FlightRecorder::new(3);
        for i in 0..5 {
            fr.record(i as f64, ev(i));
        }
        let seqs: Vec<u64> = fr.events().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4], "oldest two evicted, order kept");
        assert_eq!(fr.dropped_events(), 2);
        let rounds: Vec<u64> = fr
            .events()
            .map(|e| match e.kind {
                FlightKind::Commit { round, .. } => round,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(rounds, vec![2, 3, 4]);
    }

    #[test]
    fn dump_is_valid_json_and_deterministic() {
        let build = || {
            let mut fr = FlightRecorder::new(8);
            fr.record(0.0, ev(1));
            fr.record(
                0.5,
                FlightKind::Degrade {
                    round: 1,
                    rung: "approx",
                    reason: "budget",
                    budget_s: 2.0,
                    spent_s: 0.5,
                    est_batch_s: 3.0,
                    approx_k: 16,
                    store_version: 1,
                },
            );
            fr.admit(Journey {
                id: 7,
                query: "full",
                deadline_s: f64::INFINITY,
                submitted_s: 0.25,
                round: 0,
                queue_wait_s: 0.0,
                rung: "",
                reason: "",
                approx_k: 0,
                budget_s: 0.0,
                spent_s: 0.0,
                est_batch_s: 0.0,
                store_version: 0,
                retries: 0,
                latency_s: 0.0,
                deadline_met: false,
                complete: false,
            });
            fr.complete(7, |j| {
                j.round = 1;
                j.rung = "approx";
                j.deadline_met = true;
            });
            fr
        };
        let a = build().dump();
        let b = build().dump();
        assert_eq!(a, b, "identical histories dump identical bytes");
        assert!(!a.contains('\n'), "dump is one line");
        let v = mfbc_profile::jsonio::parse(&a).expect("dump parses as JSON");
        assert_eq!(
            v.get("flight").and_then(mfbc_profile::jsonio::Json::as_u64),
            Some(1)
        );
        let journeys = v
            .get("journeys")
            .and_then(mfbc_profile::jsonio::Json::as_array)
            .unwrap();
        assert_eq!(journeys.len(), 1);
        // Infinite deadline survives as null, per the shared formatter.
        assert!(matches!(
            journeys[0].get("deadline_s"),
            Some(mfbc_profile::jsonio::Json::Null)
        ));
        assert_eq!(
            journeys[0]
                .get("rung")
                .and_then(mfbc_profile::jsonio::Json::as_str),
            Some("approx")
        );
    }

    #[test]
    fn complete_targets_latest_incomplete_journey() {
        let mut fr = FlightRecorder::new(4);
        let j = |id| Journey {
            id,
            query: "full",
            deadline_s: 1.0,
            submitted_s: 0.0,
            round: 0,
            queue_wait_s: 0.0,
            rung: "",
            reason: "",
            approx_k: 0,
            budget_s: 0.0,
            spent_s: 0.0,
            est_batch_s: 0.0,
            store_version: 0,
            retries: 0,
            latency_s: 0.0,
            deadline_met: false,
            complete: false,
        };
        fr.admit(j(1));
        assert!(fr.complete(1, |x| x.round = 1));
        fr.admit(j(1));
        assert!(fr.complete(1, |x| x.round = 2));
        let rounds: Vec<u64> = fr.journeys().map(|x| x.round).collect();
        assert_eq!(rounds, vec![1, 2]);
        assert!(!fr.complete(1, |_| {}), "no incomplete journey left");
        assert!(!fr.complete(99, |_| {}));
    }
}
