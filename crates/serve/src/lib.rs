//! Long-lived betweenness-centrality serving over the MFBC stack.
//!
//! A one-shot `mfbc_dist` run answers one question and throws the
//! warm state away. This crate keeps the distributed machine, the
//! mm-cache, and the partially accumulated scores alive in an
//! [`Engine`] and answers a *stream* of queries against them, with
//! robustness as the spine:
//!
//! * **Admission control** — a bounded queue sheds excess load at
//!   submission time ([`ShedReason`]); everything admitted is
//!   answered, never dropped. Queued requests are coalesced into
//!   shared drain rounds, so concurrent queries fund one batch
//!   advance instead of `q` redundant ones (a request *is* a batch of
//!   pivot sources in the paper's formulation, so sharing batches is
//!   the natural unit of coalescing).
//! * **Deadlines** — each request carries a modeled-seconds budget.
//!   Before each batch the engine consults the autotuner's cost model
//!   (`mfbc_tensor::autotune::best_plan`) and, once at least one
//!   batch has committed, its own measured per-batch average. When an
//!   exact continuation cannot fit, the round **degrades gracefully**
//!   down the ladder Exact → `Approx{k, ci}` (the unbiased sampled
//!   estimator from `mfbc_core::approx`, sized to the budget) →
//!   `Stale{version}` (the last committed snapshot) — it never errors
//!   a request that was admitted.
//! * **Retry/backoff** — transient `MachineError`s are retried with
//!   bounded exponential backoff and deterministic jitter
//!   ([`mfbc_fault::RetryPolicy::backoff_for`]); rank crashes ride
//!   the session's shrink/replan recovery without dropping queued
//!   requests; a [`mfbc_fault::CircuitBreaker`] trips to
//!   stale-serving after consecutive batch failures.
//! * **Health** — readiness/liveness plus queue depth, breaker
//!   state, last-poison detail, a rolling SLO window, shed /
//!   degraded / retry counters, deadline-attainment and queue-wait
//!   histograms, and cross-request mm-cache gauges in a
//!   `mfbc_profile::MetricsRegistry`, scrapeable through the existing
//!   Prometheus/JSON/HTML exporters.
//! * **Observability** — request-scoped provenance events
//!   (`RequestAdmitted`, `RoundStart`/`RoundEnd`, `DegradeDecision`
//!   with its budget arithmetic) in the `mfbc_trace` stream, and a
//!   bounded byte-deterministic [`FlightRecorder`] whose per-request
//!   [`Journey`] records explain every degraded answer; dumped
//!   automatically on poison/breaker-trip and on demand via the wire
//!   `{"cmd":"dump"}` command. Recording never perturbs responses
//!   and capacity 0 disables it with zero allocation.
//!
//! The [`wire`] module gives the engine a dependency-free JSON-lines
//! protocol (requests in, responses out) used by `mfbc-cli serve`.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod engine;
pub mod flight;
pub mod wire;

pub use engine::{
    Admission, Engine, EngineConfig, Health, Payload, Quality, Query, Request, Response, ShedReason,
};
pub use flight::{FlightEvent, FlightKind, FlightRecorder, Journey};
