//! Flight-recorder and SLO-telemetry integration: auto-dump on
//! poison, observation-free response streams, and the serve metric
//! families reaching every exporter.

use mfbc_core::dist::MfbcConfig;
use mfbc_fault::{FaultPlan, RetryPolicy};
use mfbc_graph::gen::uniform;
use mfbc_machine::{Machine, MachineSpec};
use mfbc_profile::jsonio::{self, Json};
use mfbc_serve::{wire, Engine, EngineConfig, Query, Request};
use mfbc_trace::MemoryRecorder;
use std::sync::Arc;

fn full(id: u64) -> Request {
    Request {
        id,
        query: Query::Full,
        deadline_s: None,
    }
}

/// The pinned unrecoverable-crash recipe shared with the engine and
/// CLI tests: crash at p = 2 under a 21 kB memory budget the single
/// survivor cannot rebuild in.
fn poisoned_engine(flight_capacity: usize) -> Engine {
    let g = uniform(48, 600, false, None, 3);
    let spec = MachineSpec {
        mem_bytes: Some(21_000),
        ..MachineSpec::test(2)
    };
    let m = Machine::with_faults(
        spec,
        FaultPlan::parse("crash:0@2").unwrap(),
        RetryPolicy::default(),
    );
    let cfg = MfbcConfig::default().with_batch_size(1);
    let ecfg = EngineConfig {
        flight_capacity,
        ..EngineConfig::default()
    };
    Engine::new(&m, g, &cfg, ecfg).unwrap()
}

#[test]
fn poison_auto_dumps_and_final_dump_explains_the_journey() {
    let mut engine = poisoned_engine(64);
    engine.submit(full(1));
    let responses = engine.drain();
    assert_eq!(responses.len(), 1);
    assert!(engine.poisoned());

    // The engine snapshotted the recorder at the moment of poisoning.
    let auto = engine
        .take_auto_dump()
        .expect("poisoning auto-dumps the flight recorder");
    let v = jsonio::parse(&auto).expect("auto-dump parses as JSON");
    assert_eq!(v.get("flight").and_then(Json::as_u64), Some(1));
    let kinds: Vec<&str> = v
        .get("events")
        .and_then(Json::as_array)
        .unwrap()
        .iter()
        .filter_map(|e| e.get("kind").and_then(Json::as_str))
        .collect();
    assert!(kinds.contains(&"poison"), "auto-dump has the poison event");
    assert!(kinds.contains(&"admitted"));
    assert!(kinds.contains(&"round_start"));
    // Taking it is one-shot.
    assert!(engine.take_auto_dump().is_none());

    // The on-demand dump after the round explains the degraded
    // response from the journey record alone.
    let dump = engine.flight_dump().expect("recorder is enabled");
    assert!(!dump.contains('\n'), "dump is one JSON line");
    let v = jsonio::parse(&dump).unwrap();
    let journeys = v.get("journeys").and_then(Json::as_array).unwrap();
    let j = journeys
        .iter()
        .find(|j| j.get("id").and_then(Json::as_u64) == Some(1))
        .expect("admitted request has a journey record");
    assert_eq!(j.get("complete"), Some(&Json::Bool(true)));
    assert_eq!(j.get("rung").and_then(Json::as_str), Some("stale"));
    assert_eq!(j.get("reason").and_then(Json::as_str), Some("poisoned"));
    assert!(j.get("round").and_then(Json::as_u64).unwrap() > 0);

    // The health line carries the poison detail and breaker state.
    let h = engine.health();
    assert!(h.last_poison.is_some(), "health keeps the poison detail");
    let line = wire::render_health(&h);
    let v = jsonio::parse(&line).unwrap();
    assert!(matches!(v.get("last_poison"), Some(Json::Str(_))));
}

#[test]
fn two_identical_poisoned_runs_dump_identical_bytes() {
    let run = || {
        let mut engine = poisoned_engine(64);
        engine.submit(full(1));
        engine.drain();
        engine.submit(full(2));
        engine.drain();
        (
            engine.take_auto_dump().unwrap(),
            engine.flight_dump().unwrap(),
        )
    };
    let (auto_a, final_a) = run();
    let (auto_b, final_b) = run();
    assert_eq!(auto_a, auto_b, "auto-dumps are byte-deterministic");
    assert_eq!(final_a, final_b, "final dumps are byte-deterministic");
}

#[test]
fn tracing_and_flight_recording_do_not_perturb_responses() {
    // One engine observed (trace recorder installed + flight recorder
    // on), one unobserved: same seed and fault schedule must yield
    // bit-identical wire lines.
    let run = |observed: bool| -> Vec<String> {
        let g = uniform(32, 120, false, None, 11);
        let m = Machine::with_faults(
            MachineSpec::test(4),
            FaultPlan::parse("transient:2@4").unwrap(),
            RetryPolicy::default(),
        );
        let cfg = MfbcConfig::default().with_batch_size(4);
        let ecfg = EngineConfig {
            seed: 42,
            flight_capacity: if observed { 32 } else { 0 },
            ..EngineConfig::default()
        };
        let serve_all = |engine: &mut Engine| -> Vec<String> {
            let mut lines = Vec::new();
            for (i, deadline) in [Some(0.0), None, Some(500.0)].iter().enumerate() {
                engine.submit(Request {
                    id: i as u64,
                    query: Query::Full,
                    deadline_s: *deadline,
                });
                engine.submit(Request {
                    id: 100 + i as u64,
                    query: Query::TopK { k: 5 },
                    deadline_s: *deadline,
                });
                for r in engine.drain() {
                    lines.push(wire::render_response(&r));
                }
            }
            lines
        };
        let mut engine = Engine::new(&m, g, &cfg, ecfg).unwrap();
        if observed {
            let rec = Arc::new(MemoryRecorder::new());
            let lines = mfbc_trace::scoped(rec.clone(), || serve_all(&mut engine));
            assert!(
                !rec.snapshot().is_empty(),
                "the observed run actually traced"
            );
            assert!(engine.flight().is_some());
            lines
        } else {
            assert!(engine.flight().is_none(), "capacity 0 disables recording");
            serve_all(&mut engine)
        }
    };
    assert_eq!(
        run(true),
        run(false),
        "observation must not change a single response bit"
    );
}

#[test]
fn slo_families_reach_snapshot_prometheus_json_and_html() {
    let g = uniform(24, 90, false, None, 7);
    let machine = Machine::new(MachineSpec::test(4));
    let cfg = MfbcConfig::default().with_batch_size(4);
    let mut engine = Engine::new(&machine, g, &cfg, EngineConfig::default()).unwrap();
    // Round 1: a lone zero-budget request degrades to stale.
    engine.submit(Request {
        id: 2,
        query: Query::Full,
        deadline_s: Some(0.0),
    });
    engine.drain();
    // Round 2: the unbounded member funds an exact round whose
    // elapsed time makes the zero-deadline member miss.
    engine.submit(full(1));
    engine.submit(Request {
        id: 4,
        query: Query::Full,
        deadline_s: Some(0.0),
    });
    engine.drain();
    engine.submit(full(3)); // warm-store hit exercises the mm-cache
    engine.drain();

    let reg = engine.metrics();
    let names: Vec<String> = reg.snapshot().into_iter().map(|f| f.name).collect();
    for family in [
        "serve_rounds_total",
        "serve_deadline_total",
        "serve_deadline_margin_modeled_us",
        "serve_queue_wait_modeled_us",
        "serve_degrade_total",
        "serve_mm_cache_hits",
        "serve_mm_cache_misses",
        "serve_mm_cache_inserts",
        "serve_mm_cache_evictions",
    ] {
        assert!(names.iter().any(|n| n == family), "missing {family}");
    }

    // All three exporters see the same families.
    let prom = mfbc_profile::prometheus::render(reg);
    let json = mfbc_profile::export::registry_to_json(reg);
    let html = mfbc_profile::html::render_registry(reg);
    for family in [
        "serve_deadline_total",
        "serve_queue_wait_modeled_us",
        "serve_mm_cache_hits",
        "serve_degrade_total",
    ] {
        assert!(prom.contains(family), "prometheus missing {family}");
        assert!(html.contains(family), "html missing {family}");
        assert!(json.contains(family), "json missing {family}");
    }

    // Deadline attainment has both outcomes; the mm-cache saw real
    // traffic once the store was warm.
    assert!(prom.contains("result=\"met\"") && prom.contains("result=\"missed\""));
    assert!(engine.cache_stats().hits + engine.cache_stats().misses > 0);
    assert_eq!(engine.health().mm_cache, engine.cache_stats());
    // A degraded round is attributed with rung and reason labels.
    assert!(prom.contains("rung=\"stale\""));
}
