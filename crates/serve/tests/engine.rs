//! End-to-end engine behavior: exactness, admission, the degradation
//! ladder, fault absorption, the breaker, and determinism.

use mfbc_core::dist::{mfbc_dist, MfbcConfig};
use mfbc_fault::{BreakerState, FaultPlan, RetryPolicy};
use mfbc_graph::gen::uniform;
use mfbc_graph::Graph;
use mfbc_machine::{Machine, MachineSpec};
use mfbc_profile::registry::SampleValue;
use mfbc_serve::{
    wire, Admission, Engine, EngineConfig, Payload, Quality, Query, Request, ShedReason,
};

fn ladder() -> Graph {
    Graph::unweighted(
        8,
        false,
        vec![
            (0, 1),
            (1, 2),
            (2, 3),
            (3, 4),
            (4, 5),
            (5, 6),
            (6, 7),
            (1, 5),
            (2, 6),
        ],
    )
}

fn full(id: u64) -> Request {
    Request {
        id,
        query: Query::Full,
        deadline_s: None,
    }
}

fn counter_total(engine: &Engine, family: &str) -> f64 {
    engine
        .metrics()
        .snapshot()
        .into_iter()
        .filter(|f| f.name == family)
        .flat_map(|f| f.samples)
        .map(|(_, v)| match v {
            SampleValue::Counter(x) | SampleValue::Gauge(x) => x,
            SampleValue::Histogram(_) => 0.0,
        })
        .sum()
}

#[test]
fn unbounded_deadline_serves_exact_bits_of_a_one_shot_run() {
    let g = uniform(24, 90, false, None, 7);
    let machine = Machine::new(MachineSpec::test(4));
    let cfg = MfbcConfig::default().with_batch_size(4);
    let one_shot = mfbc_dist(&machine, &g, &cfg).unwrap();

    let mut engine = Engine::new(&machine, g, &cfg, EngineConfig::default()).unwrap();
    assert_eq!(engine.submit(full(1)), Admission::Admitted);
    assert_eq!(
        engine.submit(Request {
            id: 2,
            query: Query::TopK { k: 3 },
            deadline_s: None,
        }),
        Admission::Admitted
    );
    let responses = engine.drain();
    assert_eq!(responses.len(), 2);
    for r in &responses {
        assert_eq!(r.quality, Quality::Exact, "id {}: {:?}", r.id, r.quality);
    }
    let Payload::Full(scores) = &responses[0].payload else {
        panic!("full query returns Full payload");
    };
    let got: Vec<u64> = scores.iter().map(|x| x.to_bits()).collect();
    let want: Vec<u64> = one_shot.scores.lambda.iter().map(|x| x.to_bits()).collect();
    assert_eq!(got, want, "served exact scores must be the one-shot bits");
    let Payload::TopK(pairs) = &responses[1].payload else {
        panic!("topk query returns TopK payload");
    };
    assert_eq!(pairs.len(), 3);
    assert!(engine.exact_complete());
    // A later query is served from the warm store, instantly exact.
    engine.submit(full(3));
    let later = engine.drain();
    assert_eq!(later[0].quality, Quality::Exact);
}

#[test]
fn bounded_queue_sheds_excess_and_invalid_but_answers_all_admitted() {
    let g = uniform(16, 60, false, None, 1);
    let machine = Machine::new(MachineSpec::test(2));
    let ecfg = EngineConfig {
        max_queue: 2,
        ..EngineConfig::default()
    };
    let mut engine = Engine::new(&machine, g, &MfbcConfig::default(), ecfg).unwrap();
    assert_eq!(engine.submit(full(1)), Admission::Admitted);
    assert_eq!(engine.submit(full(2)), Admission::Admitted);
    assert_eq!(
        engine.submit(full(3)),
        Admission::Shed(ShedReason::QueueFull)
    );
    assert_eq!(
        engine.submit(Request {
            id: 4,
            query: Query::Vertex { v: 99 },
            deadline_s: None,
        }),
        Admission::Shed(ShedReason::InvalidRequest)
    );
    let responses = engine.drain();
    let ids: Vec<u64> = responses.iter().map(|r| r.id).collect();
    assert_eq!(ids, vec![1, 2], "exactly the admitted ids, in order");
    assert_eq!(counter_total(&engine, "serve_shed_total"), 2.0);
    assert_eq!(engine.health().shed, 2);
}

#[test]
fn tight_deadline_degrades_to_approx_and_zero_deadline_to_stale() {
    let g = uniform(48, 180, false, None, 5);
    let machine = Machine::new(MachineSpec::test(4));
    let cfg = MfbcConfig::default().with_batch_size(8);
    let mut engine = Engine::new(&machine, g, &cfg, EngineConfig::default()).unwrap();

    // No budget at all: nothing advances, the empty store is served
    // stale at version 0.
    engine.submit(Request {
        id: 1,
        query: Query::Full,
        deadline_s: Some(0.0),
    });
    let stale = engine.drain();
    assert_eq!(stale[0].quality, Quality::Stale { version: 0 });
    let Payload::Full(scores) = &stale[0].payload else {
        panic!()
    };
    assert!(scores.iter().all(|&x| x == 0.0), "version-0 store is zero");

    // Most of one batch's budget: no exact batch fits, but the
    // sampled estimator does — tagged with its sample size and
    // standard error.
    let tight = engine.est_batch_modeled_s() * 0.9;
    engine.submit(Request {
        id: 2,
        query: Query::Full,
        deadline_s: Some(tight),
    });
    let degraded = engine.drain();
    match degraded[0].quality {
        Quality::Approx { k, ci } => {
            assert!(k >= 4, "sample at least min_approx_k, got {k}");
            assert!(ci > 0.0 && ci < 1.0, "useful rel-SE tag, got {ci}");
        }
        ref q => panic!("expected approx, got {q:?}"),
    }
    assert_eq!(
        engine.store_version(),
        0,
        "no exact batch fits 0.9× one batch's budget"
    );
    // The store still converges: one unbounded request finishes the
    // exact computation.
    engine.submit(full(3));
    let done = engine.drain();
    assert_eq!(done[0].quality, Quality::Exact);
}

#[test]
fn crash_fault_is_absorbed_and_still_serves_the_clean_bits() {
    // Dyadic ladder: crash recovery is bit-exact, so the served
    // scores must equal the clean one-shot run even though a rank
    // died mid-stream and the machine shrank 8 → 7.
    let g = ladder();
    let cfg = MfbcConfig::default().with_batch_size(2);
    let clean = mfbc_dist(&Machine::new(MachineSpec::test(8)), &g, &cfg).unwrap();

    let faulted = Machine::with_faults(
        MachineSpec::test(8),
        FaultPlan::parse("crash:3@5").unwrap(),
        RetryPolicy::default(),
    );
    let mut engine = Engine::new(&faulted, g, &cfg, EngineConfig::default()).unwrap();
    engine.submit(full(1));
    let responses = engine.drain();
    assert_eq!(responses.len(), 1, "admitted request served, not dropped");
    assert_eq!(responses[0].quality, Quality::Exact);
    let Payload::Full(scores) = &responses[0].payload else {
        panic!()
    };
    let got: Vec<u64> = scores.iter().map(|x| x.to_bits()).collect();
    let want: Vec<u64> = clean.scores.lambda.iter().map(|x| x.to_bits()).collect();
    assert_eq!(got, want);
    assert!(engine.health().ready);
}

#[test]
fn unrecoverable_crash_poisons_but_keeps_serving_stale() {
    // Same scenario as the core session test: crash at p = 2 under a
    // budget the single survivor cannot rebuild in. The engine stops
    // exact progress, reports not-ready, and keeps answering.
    let g = uniform(48, 600, false, None, 3);
    let spec = MachineSpec {
        mem_bytes: Some(21_000),
        ..MachineSpec::test(2)
    };
    let m = Machine::with_faults(
        spec,
        FaultPlan::parse("crash:0@2").unwrap(),
        RetryPolicy::default(),
    );
    let cfg = MfbcConfig::default().with_batch_size(1);
    let mut engine = Engine::new(&m, g, &cfg, EngineConfig::default()).unwrap();
    engine.submit(full(1));
    let responses = engine.drain();
    assert_eq!(responses.len(), 1);
    assert!(
        matches!(responses[0].quality, Quality::Stale { .. }),
        "poisoned engine serves stale, got {:?}",
        responses[0].quality
    );
    assert!(engine.poisoned());
    let h = engine.health();
    assert!(!h.ready, "poisoned engine is not ready");
    assert!(h.live, "but it stays live");
    // Still answering after the poisoning.
    engine.submit(full(2));
    let more = engine.drain();
    assert_eq!(more.len(), 1);
    assert!(matches!(more[0].quality, Quality::Stale { .. }));
}

#[test]
fn persistent_transients_trip_the_breaker_to_stale_serving() {
    // A transient budget far beyond every retry layer: each drain's
    // advance exhausts the engine's retry policy and records a
    // failure; at the threshold the breaker opens and rounds serve
    // stale (no estimator run either) until the cooldown admits a
    // probe.
    let g = uniform(24, 90, false, None, 9);
    let m = Machine::with_faults(
        MachineSpec::test(4),
        FaultPlan::parse("transient:100000@3").unwrap(),
        RetryPolicy::default(),
    );
    let ecfg = EngineConfig {
        breaker_threshold: 2,
        breaker_cooldown: 2,
        ..EngineConfig::default()
    };
    let mut engine = Engine::new(&m, g, &MfbcConfig::default(), ecfg).unwrap();

    // Rounds 1–2: advances fail (engine retries, then gives up), the
    // estimator still answers.
    for round in 1..=2u64 {
        engine.submit(full(round));
        let r = engine.drain();
        assert!(
            matches!(r[0].quality, Quality::Approx { .. }),
            "round {round}: {:?}",
            r[0].quality
        );
    }
    assert_eq!(engine.breaker_state(), BreakerState::Open);
    assert!(counter_total(&engine, "serve_breaker_trips_total") >= 1.0);
    assert!(counter_total(&engine, "serve_retries_total") >= 2.0);

    // Open breaker: the next round is pinned to stale.
    engine.submit(full(10));
    let stale = engine.drain();
    assert!(
        matches!(stale[0].quality, Quality::Stale { .. }),
        "open breaker serves stale, got {:?}",
        stale[0].quality
    );
    // Every admitted request got exactly one answer.
    assert_eq!(engine.health().served, 3);
}

#[test]
fn equal_seeds_produce_bit_identical_response_streams() {
    let run = |seed: u64| -> Vec<String> {
        let g = uniform(32, 120, false, None, 11);
        let m = Machine::with_faults(
            MachineSpec::test(4),
            FaultPlan::parse("transient:2@4").unwrap(),
            RetryPolicy::default(),
        );
        let cfg = MfbcConfig::default().with_batch_size(4);
        let ecfg = EngineConfig {
            seed,
            ..EngineConfig::default()
        };
        let mut engine = Engine::new(&m, g, &cfg, ecfg).unwrap();
        let mut lines = Vec::new();
        for (i, deadline) in [Some(0.0), None, Some(500.0)].iter().enumerate() {
            engine.submit(Request {
                id: i as u64,
                query: Query::Full,
                deadline_s: *deadline,
            });
            engine.submit(Request {
                id: 100 + i as u64,
                query: Query::TopK { k: 5 },
                deadline_s: *deadline,
            });
            for r in engine.drain() {
                lines.push(wire::render_response(&r));
            }
        }
        lines
    };
    assert_eq!(run(42), run(42), "same seed, same stream");
}
