//! Property tests of the cost model's structural guarantees: the
//! critical-path accounting of §7.4 must behave like a max-plus
//! semiring over dependent operations.

#![allow(clippy::needless_range_loop)]

use mfbc_machine::cost::{log2_ceil, CollectiveKind, CostTracker};
use mfbc_machine::{Group, Machine, MachineSpec};
use proptest::collection::vec;
use proptest::prelude::*;

fn arb_kind() -> impl Strategy<Value = CollectiveKind> {
    prop_oneof![
        Just(CollectiveKind::Broadcast),
        Just(CollectiveKind::Reduce),
        Just(CollectiveKind::Allreduce),
        Just(CollectiveKind::Scatter),
        Just(CollectiveKind::Gather),
        Just(CollectiveKind::Allgather),
        Just(CollectiveKind::SparseReduce),
        Just(CollectiveKind::PointToPoint),
        Just(CollectiveKind::AllToAll),
    ]
}

/// A random schedule of collectives over random subgroups.
fn arb_schedule(p: usize) -> impl Strategy<Value = Vec<(Vec<usize>, CollectiveKind, u64)>> {
    vec(
        (
            vec(0..p, 1..=p).prop_map(|mut v| {
                v.sort_unstable();
                v.dedup();
                v
            }),
            arb_kind(),
            0u64..10_000,
        ),
        1..20,
    )
}

proptest! {
    /// Critical-path costs are monotone: adding one more collective
    /// never decreases any rank's accumulated metrics.
    #[test]
    fn costs_are_monotone(schedule in arb_schedule(6), extra_bytes in 0u64..1000) {
        let spec = MachineSpec::test(6);
        let mut t = CostTracker::new(6);
        for (group, kind, bytes) in &schedule {
            t.collective(&spec, group, *kind, *bytes);
        }
        let before: Vec<_> = (0..6).map(|r| t.rank(r)).collect();
        t.collective(&spec, &[0, 3], CollectiveKind::Broadcast, extra_bytes);
        for r in 0..6 {
            let after = t.rank(r);
            prop_assert!(after.msgs >= before[r].msgs);
            prop_assert!(after.bytes >= before[r].bytes);
            prop_assert!(after.comm_time >= before[r].comm_time);
        }
    }

    /// Every participant of a collective ends with an identical
    /// critical path (the §7.4 synchronization), and non-participants
    /// are untouched.
    #[test]
    fn collectives_synchronize_participants(schedule in arb_schedule(6)) {
        let spec = MachineSpec::test(6);
        let mut t = CostTracker::new(6);
        for (group, kind, bytes) in &schedule {
            let before: Vec<_> = (0..6).map(|r| t.rank(r)).collect();
            t.collective(&spec, group, *kind, *bytes);
            let first = t.rank(group[0]);
            for &r in group {
                prop_assert_eq!(t.rank(r), first);
            }
            for r in 0..6 {
                if !group.contains(&r) {
                    prop_assert_eq!(t.rank(r), before[r]);
                }
            }
        }
    }

    /// The reported critical path dominates every rank, and equals
    /// per-metric maxima.
    #[test]
    fn report_is_per_metric_max(schedule in arb_schedule(5)) {
        let spec = MachineSpec::test(5);
        let mut t = CostTracker::new(5);
        for (group, kind, bytes) in &schedule {
            t.collective(&spec, group, *kind, *bytes);
        }
        let rep = t.report();
        let mut max_bytes = 0;
        let mut max_msgs = 0;
        for r in 0..5 {
            let c = t.rank(r);
            prop_assert!(rep.critical.bytes >= c.bytes);
            prop_assert!(rep.critical.msgs >= c.msgs);
            max_bytes = max_bytes.max(c.bytes);
            max_msgs = max_msgs.max(c.msgs);
        }
        prop_assert_eq!(rep.critical.bytes, max_bytes);
        prop_assert_eq!(rep.critical.msgs, max_msgs);
    }

    /// Collective time formulas: linear in bytes, logarithmic in
    /// group size, and never free for non-trivial groups.
    #[test]
    fn cost_formulas_scale_sanely(kind in arb_kind(), bytes in 1u64..1_000_000, p in 2usize..512) {
        let spec = MachineSpec::test(p);
        let t1 = kind.time(&spec, p, bytes);
        let t2 = kind.time(&spec, p, 2 * bytes);
        // Doubling bytes adds exactly the β term once more.
        prop_assert!(t2 > t1);
        prop_assert!((t2 - t1 - (t1 - kind.time(&spec, p, 0))).abs() < 1e-9);
        // α term grows with log p.
        let tp = kind.time(&spec, 2 * p, bytes);
        prop_assert!(tp >= t1);
        prop_assert!(t1 > 0.0);
    }

    /// Memory accounting: alloc/free are inverse, peak is monotone.
    #[test]
    fn memory_meter_invariants(ops in vec((0usize..4, 0u64..10_000, any::<bool>()), 1..40)) {
        let mut t = CostTracker::new(4);
        let mut shadow = [0u64; 4];
        let mut peaks = [0u64; 4];
        for (r, b, is_alloc) in ops {
            if is_alloc {
                t.alloc(r, b);
                shadow[r] += b;
            } else {
                t.free(r, b);
                shadow[r] = shadow[r].saturating_sub(b);
            }
            peaks[r] = peaks[r].max(shadow[r]);
            prop_assert_eq!(t.resident(r), shadow[r]);
            prop_assert_eq!(t.peak(r), peaks[r]);
        }
        prop_assert_eq!(t.max_peak(), peaks.iter().copied().max().unwrap());
    }
}

#[test]
fn machine_is_cheaply_cloneable_and_shared() {
    let m = Machine::new(MachineSpec::test(3));
    let m2 = m.clone();
    m.charge_compute(1, 100);
    // Clones share meters.
    assert_eq!(m2.report().critical.comp_time, 100.0);
    m2.charge_collective(&Group::all(3), CollectiveKind::Broadcast, 10)
        .unwrap();
    assert!(m.report().critical.msgs > 0);
}

#[test]
fn log2_ceil_matches_f64_definition() {
    for p in 1..2000usize {
        let expect = (p as f64).log2().ceil() as u64;
        assert_eq!(log2_ceil(p), expect, "p={p}");
    }
}
