//! Typed, data-moving collective operations.
//!
//! The tensor layer drives distributed algorithms from a "global
//! view": a distributed object is a `Vec` with one element per group
//! member, and a collective both *moves the data* between those
//! slots and charges the α–β cost to every participant's critical
//! path. Because the data movement is real, a mis-specified
//! communication pattern produces wrong results, not merely wrong
//! cost numbers — the property that makes this simulation a faithful
//! substitute for MPI executions.
//!
//! Replicated payloads travel as `Arc<T>`: within one address space a
//! broadcast is semantically "everyone holds the same immutable
//! value", which `Arc` models without multiplying resident memory
//! (the *simulated* memory meter still charges each rank separately
//! via the tensor layer).

use crate::comm::Group;
use crate::cost::CollectiveKind;
use crate::{Machine, MachineError};
use std::sync::Arc;

/// Types that know their wire size in bytes.
pub trait Volume {
    /// Bytes this value would occupy in a message.
    fn comm_bytes(&self) -> u64;
}

impl Volume for () {
    fn comm_bytes(&self) -> u64 {
        0
    }
}

impl<T: Volume> Volume for Arc<T> {
    fn comm_bytes(&self) -> u64 {
        (**self).comm_bytes()
    }
}

impl<T: Volume> Volume for &T {
    fn comm_bytes(&self) -> u64 {
        (**self).comm_bytes()
    }
}

impl<A: Volume, B: Volume> Volume for (A, B) {
    fn comm_bytes(&self) -> u64 {
        self.0.comm_bytes() + self.1.comm_bytes()
    }
}

impl<T: Volume> Volume for Vec<T> {
    fn comm_bytes(&self) -> u64 {
        self.iter().map(Volume::comm_bytes).sum()
    }
}

impl<T: Volume> Volume for Option<T> {
    fn comm_bytes(&self) -> u64 {
        self.as_ref().map_or(0, Volume::comm_bytes)
    }
}

macro_rules! pod_volume {
    ($($t:ty),*) => {$(
        impl Volume for $t {
            fn comm_bytes(&self) -> u64 {
                std::mem::size_of::<$t>() as u64
            }
        }
    )*};
}

pod_volume!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl<T> Volume for mfbc_sparse::Csr<T> {
    fn comm_bytes(&self) -> u64 {
        self.payload_bytes() as u64
    }
}

impl<T> Volume for mfbc_sparse::Coo<T> {
    fn comm_bytes(&self) -> u64 {
        (self.len() * (mfbc_sparse::entry_bytes::<T>() + std::mem::size_of::<mfbc_sparse::Idx>()))
            as u64
    }
}

/// Broadcast: the payload at group index `root` is replicated to
/// every member. Returns one handle per member, in group order.
pub fn broadcast<T: Volume>(
    m: &Machine,
    g: &Group,
    root: usize,
    data: Arc<T>,
) -> Result<Vec<Arc<T>>, MachineError> {
    assert!(root < g.len(), "broadcast root outside group");
    if g.len() > 1 {
        m.charge_collective(g, CollectiveKind::Broadcast, data.comm_bytes())?;
    }
    Ok((0..g.len()).map(|_| Arc::clone(&data)).collect())
}

/// Reduce: combines one contribution per member into a single value
/// delivered at the root. `combine` must be associative and
/// commutative; contributions are folded in group order so results
/// are deterministic.
pub fn reduce<T: Volume>(
    m: &Machine,
    g: &Group,
    contribs: Vec<T>,
    mut combine: impl FnMut(T, T) -> T,
) -> Result<T, MachineError> {
    assert_eq!(contribs.len(), g.len(), "one contribution per member");
    let bytes = contribs.iter().map(Volume::comm_bytes).max().unwrap_or(0);
    if g.len() > 1 {
        m.charge_collective(g, CollectiveKind::Reduce, bytes)?;
    }
    let mut it = contribs.into_iter();
    let first = it.next().expect("group is non-empty");
    Ok(it.fold(first, &mut combine))
}

/// Sparse reduce: like [`reduce`] but charged by the *result* size
/// (§5.1: "the cost of a sparse reduction where the resulting array
/// has x nonzeros is also O(β·x + α·log p)").
pub fn sparse_reduce<T: Volume>(
    m: &Machine,
    g: &Group,
    contribs: Vec<T>,
    mut combine: impl FnMut(T, T) -> T,
) -> Result<T, MachineError> {
    assert_eq!(contribs.len(), g.len(), "one contribution per member");
    let mut it = contribs.into_iter();
    let first = it.next().expect("group is non-empty");
    let result = it.fold(first, &mut combine);
    if g.len() > 1 {
        m.charge_collective(g, CollectiveKind::SparseReduce, result.comm_bytes())?;
    }
    Ok(result)
}

/// Allreduce: every member ends with the combined value.
pub fn allreduce<T: Volume>(
    m: &Machine,
    g: &Group,
    contribs: Vec<T>,
    mut combine: impl FnMut(T, T) -> T,
) -> Result<Vec<Arc<T>>, MachineError> {
    assert_eq!(contribs.len(), g.len(), "one contribution per member");
    let bytes = contribs.iter().map(Volume::comm_bytes).max().unwrap_or(0);
    if g.len() > 1 {
        m.charge_collective(g, CollectiveKind::Allreduce, bytes)?;
    }
    let mut it = contribs.into_iter();
    let first = it.next().expect("group is non-empty");
    let result = Arc::new(it.fold(first, &mut combine));
    Ok((0..g.len()).map(|_| Arc::clone(&result)).collect())
}

/// Allgather: every member ends with all members' pieces (in group
/// order), shared behind one `Arc`.
pub fn allgather<T: Volume>(
    m: &Machine,
    g: &Group,
    parts: Vec<T>,
) -> Result<Vec<Arc<Vec<T>>>, MachineError> {
    assert_eq!(parts.len(), g.len(), "one piece per member");
    let bytes = parts.comm_bytes();
    if g.len() > 1 {
        m.charge_collective(g, CollectiveKind::Allgather, bytes)?;
    }
    let all = Arc::new(parts);
    Ok((0..g.len()).map(|_| Arc::clone(&all)).collect())
}

/// Gather: all pieces end at the root, in group order.
pub fn gather<T: Volume>(m: &Machine, g: &Group, parts: Vec<T>) -> Result<Vec<T>, MachineError> {
    assert_eq!(parts.len(), g.len(), "one piece per member");
    let bytes = parts.comm_bytes();
    if g.len() > 1 {
        m.charge_collective(g, CollectiveKind::Gather, bytes)?;
    }
    Ok(parts)
}

/// Scatter: the root's pieces are delivered one per member.
pub fn scatter<T: Volume>(m: &Machine, g: &Group, parts: Vec<T>) -> Result<Vec<T>, MachineError> {
    assert_eq!(parts.len(), g.len(), "one piece per member");
    let bytes = parts.comm_bytes();
    if g.len() > 1 {
        m.charge_collective(g, CollectiveKind::Scatter, bytes)?;
    }
    Ok(parts)
}

/// Cyclic shift by `k` positions (Cannon-style point-to-point): the
/// piece at group index `i` moves to index `(i + k) mod p`.
pub fn shift<T: Volume>(
    m: &Machine,
    g: &Group,
    mut parts: Vec<T>,
    k: usize,
) -> Result<Vec<T>, MachineError> {
    assert_eq!(parts.len(), g.len(), "one piece per member");
    let p = g.len();
    if p > 1 && !k.is_multiple_of(p) {
        let bytes = parts.iter().map(Volume::comm_bytes).max().unwrap_or(0);
        m.charge_collective(g, CollectiveKind::PointToPoint, bytes)?;
        parts.rotate_right(k % p);
    }
    Ok(parts)
}

/// Personalized all-to-all: `send[i][j]` is the payload member `i`
/// sends to member `j`; the result `recv[j][i]` delivers it. Charged
/// by the largest per-member send volume.
pub fn all_to_all<T: Volume>(
    m: &Machine,
    g: &Group,
    send: Vec<Vec<T>>,
) -> Result<Vec<Vec<T>>, MachineError> {
    let p = g.len();
    assert_eq!(send.len(), p, "one send row per member");
    for row in &send {
        assert_eq!(row.len(), p, "one payload per destination");
    }
    if p > 1 {
        let bytes = send.iter().map(|row| row.comm_bytes()).max().unwrap_or(0);
        m.charge_collective(g, CollectiveKind::AllToAll, bytes)?;
    }
    // Transpose the send matrix into receive buffers.
    let mut recv: Vec<Vec<T>> = (0..p).map(|_| Vec::with_capacity(p)).collect();
    for row in send.into_iter() {
        for (j, payload) in row.into_iter().enumerate() {
            recv[j].push(payload);
        }
    }
    Ok(recv)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::MachineSpec;

    fn machine(p: usize) -> Machine {
        Machine::new(MachineSpec::test(p))
    }

    #[test]
    fn broadcast_replicates_and_charges() {
        let m = machine(4);
        let g = m.world();
        let out = broadcast(&m, &g, 0, Arc::new(vec![1u64, 2, 3])).unwrap();
        assert_eq!(out.len(), 4);
        for o in &out {
            assert_eq!(**o, vec![1, 2, 3]);
        }
        let r = m.report();
        assert_eq!(r.critical.bytes, 2 * 24);
    }

    #[test]
    fn reduce_folds_in_group_order() {
        let m = machine(3);
        let g = m.world();
        let out = reduce(&m, &g, vec![vec![1u64], vec![2], vec![3]], |mut a, b| {
            a.extend(b);
            a
        })
        .unwrap();
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn sparse_reduce_charges_result_size() {
        let m = machine(4);
        let g = m.world();
        // Contributions of 8 bytes each, result of 8 bytes (u64 sum).
        let _ = sparse_reduce(&m, &g, vec![1u64, 2, 3, 4], |a, b| a + b).unwrap();
        let r = m.report();
        assert_eq!(r.critical.bytes, 8);
    }

    #[test]
    fn allgather_shares_all_pieces() {
        let m = machine(3);
        let g = m.world();
        let out = allgather(&m, &g, vec![10u64, 20, 30]).unwrap();
        assert_eq!(*out[1], vec![10, 20, 30]);
        assert_eq!(m.report().critical.bytes, 24);
    }

    #[test]
    fn shift_rotates() {
        let m = machine(4);
        let g = m.world();
        let out = shift(&m, &g, vec![0u64, 1, 2, 3], 1).unwrap();
        assert_eq!(out, vec![3, 0, 1, 2]);
        assert_eq!(m.report().critical.msgs, 1);
        // k = 0 is free.
        m.reset_meters();
        let out = shift(&m, &g, out, 0).unwrap();
        assert_eq!(out, vec![3, 0, 1, 2]);
        assert_eq!(m.report().critical.msgs, 0);
    }

    #[test]
    fn all_to_all_transposes() {
        let m = machine(2);
        let g = m.world();
        // payload value r*10+c encodes (sender, receiver)
        let send = vec![vec![0u64, 1], vec![10, 11]];
        let recv = all_to_all(&m, &g, send).unwrap();
        assert_eq!(recv, vec![vec![0, 10], vec![1, 11]]);
    }

    #[test]
    fn singleton_group_collectives_are_free() {
        let m = machine(1);
        let g = m.world();
        let _ = broadcast(&m, &g, 0, Arc::new(7u64)).unwrap();
        let _ = reduce(&m, &g, vec![7u64], |a, _| a).unwrap();
        let _ = allgather(&m, &g, vec![7u64]).unwrap();
        assert_eq!(m.report().critical.msgs, 0);
        assert_eq!(m.report().critical.bytes, 0);
    }

    #[test]
    fn csr_volume_counts_payload() {
        use mfbc_algebra::monoid::SumU64;
        let c = mfbc_sparse::Coo::from_triples(2, 2, vec![(0usize, 0usize, 1u64), (1, 1, 2)])
            .into_csr::<SumU64>();
        // 2 entries × (8-byte value + 4-byte index)
        assert_eq!(c.comm_bytes(), 24);
    }
}
