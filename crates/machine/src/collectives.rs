//! Typed, data-moving collective operations.
//!
//! The tensor layer drives distributed algorithms from a "global
//! view": a distributed object is a `Vec` with one element per group
//! member, and a collective both *moves the data* between those
//! slots and charges the α–β cost to every participant's critical
//! path. Because the data movement is real, a mis-specified
//! communication pattern produces wrong results, not merely wrong
//! cost numbers — the property that makes this simulation a faithful
//! substitute for MPI executions.
//!
//! Replicated payloads travel as `Arc<T>`: within one address space a
//! broadcast is semantically "everyone holds the same immutable
//! value", which `Arc` models without multiplying resident memory
//! (the *simulated* memory meter still charges each rank separately
//! via the tensor layer).

use crate::comm::Group;
use crate::cost::CollectiveKind;
use crate::{Machine, MachineError};
use std::sync::Arc;

/// Types that know their wire size in bytes.
pub trait Volume {
    /// Bytes this value would occupy in a message.
    fn comm_bytes(&self) -> u64;
}

impl Volume for () {
    fn comm_bytes(&self) -> u64 {
        0
    }
}

impl<T: Volume> Volume for Arc<T> {
    fn comm_bytes(&self) -> u64 {
        (**self).comm_bytes()
    }
}

impl<T: Volume> Volume for &T {
    fn comm_bytes(&self) -> u64 {
        (**self).comm_bytes()
    }
}

impl<A: Volume, B: Volume> Volume for (A, B) {
    fn comm_bytes(&self) -> u64 {
        self.0.comm_bytes() + self.1.comm_bytes()
    }
}

impl<T: Volume> Volume for Vec<T> {
    fn comm_bytes(&self) -> u64 {
        self.iter().map(Volume::comm_bytes).sum()
    }
}

impl<T: Volume> Volume for Option<T> {
    fn comm_bytes(&self) -> u64 {
        self.as_ref().map_or(0, Volume::comm_bytes)
    }
}

macro_rules! pod_volume {
    ($($t:ty),*) => {$(
        impl Volume for $t {
            fn comm_bytes(&self) -> u64 {
                std::mem::size_of::<$t>() as u64
            }
        }
    )*};
}

pod_volume!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl<T> Volume for mfbc_sparse::Csr<T> {
    fn comm_bytes(&self) -> u64 {
        self.payload_bytes() as u64
    }
}

impl<T> Volume for mfbc_sparse::Coo<T> {
    fn comm_bytes(&self) -> u64 {
        (self.len() * (mfbc_sparse::entry_bytes::<T>() + std::mem::size_of::<mfbc_sparse::Idx>()))
            as u64
    }
}

/// The result of a nonblocking collective: the delivered buffers plus
/// the machine handle that must be waited on before they may be used.
///
/// The simulated data movement happens eagerly at issue (the simulated
/// wire is in-process), so the *values* are already here — but using
/// them before the machine has waited out the handle would let an
/// algorithm consume data whose modeled transfer has not completed.
/// [`Pending::wait`] is the honest path: it completes the collective
/// on the machine's clocks and releases the buffers.
/// [`Pending::take`] releases the buffers only if the handle has
/// already been waited (e.g. via [`Machine::waitall`]), returning a
/// typed [`MachineError::OutstandingCollective`] otherwise.
#[derive(Debug)]
pub struct Pending<T> {
    value: T,
    handle: Option<u64>,
}

impl<T> Pending<T> {
    /// Wraps an already-complete value (singleton groups issue no
    /// collective, so there is nothing to wait for).
    pub fn ready(value: T) -> Pending<T> {
        Pending {
            value,
            handle: None,
        }
    }

    fn inflight(value: T, handle: u64) -> Pending<T> {
        Pending {
            value,
            handle: Some(handle),
        }
    }

    /// Pairs a value with the handle of a collective already issued
    /// via [`Machine::icharge_collective`] — for callers (like the
    /// tensor layer's redistribution and replication paths) that
    /// charge the machine directly rather than through the typed
    /// wrappers in this module.
    pub fn issued(value: T, handle: u64) -> Pending<T> {
        Pending::inflight(value, handle)
    }

    /// Transforms the gated value without touching the handle: the
    /// result still requires the same wait before use.
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> Pending<U> {
        Pending {
            value: f(self.value),
            handle: self.handle,
        }
    }

    /// The machine handle, if a collective is actually in flight.
    pub fn handle(&self) -> Option<u64> {
        self.handle
    }

    /// Waits out the collective on `m`'s clocks and releases the
    /// delivered buffers.
    pub fn wait(self, m: &Machine) -> Result<T, MachineError> {
        if let Some(h) = self.handle {
            m.wait_collective(h)?;
        }
        Ok(self.value)
    }

    /// Releases the buffers *without* waiting — valid only once the
    /// handle has been completed elsewhere (e.g. [`Machine::waitall`]).
    /// Using a buffer whose collective is still outstanding is a typed
    /// [`MachineError::OutstandingCollective`].
    pub fn take(self, m: &Machine) -> Result<T, MachineError> {
        if let Some(h) = self.handle {
            if m.is_outstanding(h) {
                return Err(MachineError::OutstandingCollective {
                    kind: m
                        .outstanding_kind(h)
                        .map(CollectiveKind::name)
                        .unwrap_or("collective"),
                    handle: h,
                });
            }
        }
        Ok(self.value)
    }
}

/// Broadcast: the payload at group index `root` is replicated to
/// every member. Returns one handle per member, in group order.
pub fn broadcast<T: Volume>(
    m: &Machine,
    g: &Group,
    root: usize,
    data: Arc<T>,
) -> Result<Vec<Arc<T>>, MachineError> {
    assert!(root < g.len(), "broadcast root outside group");
    if g.len() > 1 {
        m.charge_collective(g, CollectiveKind::Broadcast, data.comm_bytes())?;
    }
    Ok((0..g.len()).map(|_| Arc::clone(&data)).collect())
}

/// Nonblocking [`broadcast`]: issues the collective and returns the
/// replicated handles behind a [`Pending`] gate.
pub fn ibroadcast<T: Volume>(
    m: &Machine,
    g: &Group,
    root: usize,
    data: Arc<T>,
) -> Result<Pending<Vec<Arc<T>>>, MachineError> {
    assert!(root < g.len(), "broadcast root outside group");
    let out: Vec<Arc<T>> = (0..g.len()).map(|_| Arc::clone(&data)).collect();
    if g.len() > 1 {
        let h = m.icharge_collective(g, CollectiveKind::Broadcast, data.comm_bytes())?;
        Ok(Pending::inflight(out, h))
    } else {
        Ok(Pending::ready(out))
    }
}

/// Reduce: combines one contribution per member into a single value
/// delivered at the root. `combine` must be associative and
/// commutative; contributions are folded in group order so results
/// are deterministic.
pub fn reduce<T: Volume>(
    m: &Machine,
    g: &Group,
    contribs: Vec<T>,
    mut combine: impl FnMut(T, T) -> T,
) -> Result<T, MachineError> {
    assert_eq!(contribs.len(), g.len(), "one contribution per member");
    let bytes = contribs.iter().map(Volume::comm_bytes).max().unwrap_or(0);
    if g.len() > 1 {
        m.charge_collective(g, CollectiveKind::Reduce, bytes)?;
    }
    let mut it = contribs.into_iter();
    let first = it.next().expect("group is non-empty");
    Ok(it.fold(first, &mut combine))
}

/// Sparse reduce: like [`reduce`] but charged by the *result* size
/// (§5.1: "the cost of a sparse reduction where the resulting array
/// has x nonzeros is also O(β·x + α·log p)").
pub fn sparse_reduce<T: Volume>(
    m: &Machine,
    g: &Group,
    contribs: Vec<T>,
    mut combine: impl FnMut(T, T) -> T,
) -> Result<T, MachineError> {
    assert_eq!(contribs.len(), g.len(), "one contribution per member");
    let mut it = contribs.into_iter();
    let first = it.next().expect("group is non-empty");
    let result = it.fold(first, &mut combine);
    if g.len() > 1 {
        m.charge_collective(g, CollectiveKind::SparseReduce, result.comm_bytes())?;
    }
    Ok(result)
}

/// Nonblocking [`sparse_reduce`]: the combine runs eagerly (the
/// result size sets the charge), the charge is issued, and the result
/// is released by [`Pending::wait`].
pub fn isparse_reduce<T: Volume>(
    m: &Machine,
    g: &Group,
    contribs: Vec<T>,
    mut combine: impl FnMut(T, T) -> T,
) -> Result<Pending<T>, MachineError> {
    assert_eq!(contribs.len(), g.len(), "one contribution per member");
    let mut it = contribs.into_iter();
    let first = it.next().expect("group is non-empty");
    let result = it.fold(first, &mut combine);
    if g.len() > 1 {
        let h = m.icharge_collective(g, CollectiveKind::SparseReduce, result.comm_bytes())?;
        Ok(Pending::inflight(result, h))
    } else {
        Ok(Pending::ready(result))
    }
}

/// Allreduce: every member ends with the combined value.
pub fn allreduce<T: Volume>(
    m: &Machine,
    g: &Group,
    contribs: Vec<T>,
    mut combine: impl FnMut(T, T) -> T,
) -> Result<Vec<Arc<T>>, MachineError> {
    assert_eq!(contribs.len(), g.len(), "one contribution per member");
    let bytes = contribs.iter().map(Volume::comm_bytes).max().unwrap_or(0);
    if g.len() > 1 {
        m.charge_collective(g, CollectiveKind::Allreduce, bytes)?;
    }
    let mut it = contribs.into_iter();
    let first = it.next().expect("group is non-empty");
    let result = Arc::new(it.fold(first, &mut combine));
    Ok((0..g.len()).map(|_| Arc::clone(&result)).collect())
}

/// Allgather: every member ends with all members' pieces (in group
/// order), shared behind one `Arc`.
pub fn allgather<T: Volume>(
    m: &Machine,
    g: &Group,
    parts: Vec<T>,
) -> Result<Vec<Arc<Vec<T>>>, MachineError> {
    assert_eq!(parts.len(), g.len(), "one piece per member");
    let bytes = parts.comm_bytes();
    if g.len() > 1 {
        m.charge_collective(g, CollectiveKind::Allgather, bytes)?;
    }
    let all = Arc::new(parts);
    Ok((0..g.len()).map(|_| Arc::clone(&all)).collect())
}

/// Nonblocking [`allgather`]: issues the collective and returns the
/// concatenated handles behind a [`Pending`] gate.
pub fn iallgather<T: Volume>(
    m: &Machine,
    g: &Group,
    parts: Vec<T>,
) -> Result<Pending<Vec<Arc<Vec<T>>>>, MachineError> {
    assert_eq!(parts.len(), g.len(), "one piece per member");
    let bytes = parts.comm_bytes();
    let all = Arc::new(parts);
    let out: Vec<Arc<Vec<T>>> = (0..g.len()).map(|_| Arc::clone(&all)).collect();
    if g.len() > 1 {
        let h = m.icharge_collective(g, CollectiveKind::Allgather, bytes)?;
        Ok(Pending::inflight(out, h))
    } else {
        Ok(Pending::ready(out))
    }
}

/// Gather: all pieces end at the root, in group order.
pub fn gather<T: Volume>(m: &Machine, g: &Group, parts: Vec<T>) -> Result<Vec<T>, MachineError> {
    assert_eq!(parts.len(), g.len(), "one piece per member");
    let bytes = parts.comm_bytes();
    if g.len() > 1 {
        m.charge_collective(g, CollectiveKind::Gather, bytes)?;
    }
    Ok(parts)
}

/// Scatter: the root's pieces are delivered one per member.
pub fn scatter<T: Volume>(m: &Machine, g: &Group, parts: Vec<T>) -> Result<Vec<T>, MachineError> {
    assert_eq!(parts.len(), g.len(), "one piece per member");
    let bytes = parts.comm_bytes();
    if g.len() > 1 {
        m.charge_collective(g, CollectiveKind::Scatter, bytes)?;
    }
    Ok(parts)
}

/// Cyclic shift by `k` positions (Cannon-style point-to-point): the
/// piece at group index `i` moves to index `(i + k) mod p`.
pub fn shift<T: Volume>(
    m: &Machine,
    g: &Group,
    mut parts: Vec<T>,
    k: usize,
) -> Result<Vec<T>, MachineError> {
    assert_eq!(parts.len(), g.len(), "one piece per member");
    let p = g.len();
    if p > 1 && !k.is_multiple_of(p) {
        let bytes = parts.iter().map(Volume::comm_bytes).max().unwrap_or(0);
        m.charge_collective(g, CollectiveKind::PointToPoint, bytes)?;
        parts.rotate_right(k % p);
    }
    Ok(parts)
}

/// Personalized all-to-all: `send[i][j]` is the payload member `i`
/// sends to member `j`; the result `recv[j][i]` delivers it. Charged
/// by the largest per-member send volume.
pub fn all_to_all<T: Volume>(
    m: &Machine,
    g: &Group,
    send: Vec<Vec<T>>,
) -> Result<Vec<Vec<T>>, MachineError> {
    let p = g.len();
    assert_eq!(send.len(), p, "one send row per member");
    for row in &send {
        assert_eq!(row.len(), p, "one payload per destination");
    }
    if p > 1 {
        let bytes = send.iter().map(|row| row.comm_bytes()).max().unwrap_or(0);
        m.charge_collective(g, CollectiveKind::AllToAll, bytes)?;
    }
    // Transpose the send matrix into receive buffers.
    let mut recv: Vec<Vec<T>> = (0..p).map(|_| Vec::with_capacity(p)).collect();
    for row in send.into_iter() {
        for (j, payload) in row.into_iter().enumerate() {
            recv[j].push(payload);
        }
    }
    Ok(recv)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::MachineSpec;

    fn machine(p: usize) -> Machine {
        Machine::new(MachineSpec::test(p))
    }

    #[test]
    fn broadcast_replicates_and_charges() {
        let m = machine(4);
        let g = m.world();
        let out = broadcast(&m, &g, 0, Arc::new(vec![1u64, 2, 3])).unwrap();
        assert_eq!(out.len(), 4);
        for o in &out {
            assert_eq!(**o, vec![1, 2, 3]);
        }
        let r = m.report();
        assert_eq!(r.critical.bytes, 2 * 24);
    }

    #[test]
    fn reduce_folds_in_group_order() {
        let m = machine(3);
        let g = m.world();
        let out = reduce(&m, &g, vec![vec![1u64], vec![2], vec![3]], |mut a, b| {
            a.extend(b);
            a
        })
        .unwrap();
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn sparse_reduce_charges_result_size() {
        let m = machine(4);
        let g = m.world();
        // Contributions of 8 bytes each, result of 8 bytes (u64 sum).
        let _ = sparse_reduce(&m, &g, vec![1u64, 2, 3, 4], |a, b| a + b).unwrap();
        let r = m.report();
        assert_eq!(r.critical.bytes, 8);
    }

    #[test]
    fn allgather_shares_all_pieces() {
        let m = machine(3);
        let g = m.world();
        let out = allgather(&m, &g, vec![10u64, 20, 30]).unwrap();
        assert_eq!(*out[1], vec![10, 20, 30]);
        assert_eq!(m.report().critical.bytes, 24);
    }

    #[test]
    fn shift_rotates() {
        let m = machine(4);
        let g = m.world();
        let out = shift(&m, &g, vec![0u64, 1, 2, 3], 1).unwrap();
        assert_eq!(out, vec![3, 0, 1, 2]);
        assert_eq!(m.report().critical.msgs, 1);
        // k = 0 is free.
        m.reset_meters();
        let out = shift(&m, &g, out, 0).unwrap();
        assert_eq!(out, vec![3, 0, 1, 2]);
        assert_eq!(m.report().critical.msgs, 0);
    }

    #[test]
    fn all_to_all_transposes() {
        let m = machine(2);
        let g = m.world();
        // payload value r*10+c encodes (sender, receiver)
        let send = vec![vec![0u64, 1], vec![10, 11]];
        let recv = all_to_all(&m, &g, send).unwrap();
        assert_eq!(recv, vec![vec![0, 10], vec![1, 11]]);
    }

    #[test]
    fn singleton_group_collectives_are_free() {
        let m = machine(1);
        let g = m.world();
        let _ = broadcast(&m, &g, 0, Arc::new(7u64)).unwrap();
        let _ = reduce(&m, &g, vec![7u64], |a, _| a).unwrap();
        let _ = allgather(&m, &g, vec![7u64]).unwrap();
        assert_eq!(m.report().critical.msgs, 0);
        assert_eq!(m.report().critical.bytes, 0);
    }

    #[test]
    fn pending_take_before_wait_is_a_typed_error() {
        let m = Machine::new(MachineSpec::test(4).with_overlap(true));
        let g = m.world();
        let pending = iallgather(&m, &g, vec![10u64, 20, 30, 40]).unwrap();
        let h = pending.handle().unwrap();
        // Using the buffer with the handle outstanding is refused.
        let err = pending.take(&m).unwrap_err();
        assert_eq!(
            err,
            MachineError::OutstandingCollective {
                kind: "allgather",
                handle: h,
            }
        );
        // After waitall the (re-issued) buffer is released.
        let pending = iallgather(&m, &g, vec![10u64, 20, 30, 40]).unwrap();
        m.waitall().unwrap();
        let out = pending.take(&m).unwrap();
        assert_eq!(*out[2], vec![10, 20, 30, 40]);
    }

    #[test]
    fn nonblocking_wrappers_match_blocking_results_and_meters() {
        let run_blocking = |m: &Machine| {
            let g = m.world();
            let b = broadcast(m, &g, 0, Arc::new(vec![1u64, 2])).unwrap();
            let a = allgather(m, &g, vec![1u64, 2, 3]).unwrap();
            let s = sparse_reduce(m, &g, vec![1u64, 2, 3], |x, y| x + y).unwrap();
            (b, a, s)
        };
        let run_nonblocking = |m: &Machine| {
            let g = m.world();
            let b = ibroadcast(m, &g, 0, Arc::new(vec![1u64, 2]))
                .unwrap()
                .wait(m)
                .unwrap();
            let a = iallgather(m, &g, vec![1u64, 2, 3])
                .unwrap()
                .wait(m)
                .unwrap();
            let s = isparse_reduce(m, &g, vec![1u64, 2, 3], |x, y| x + y)
                .unwrap()
                .wait(m)
                .unwrap();
            (b, a, s)
        };
        let m1 = machine(3);
        let m2 = machine(3);
        let (b1, a1, s1) = run_blocking(&m1);
        let (b2, a2, s2) = run_nonblocking(&m2);
        assert_eq!(*b1[0], *b2[0]);
        assert_eq!(*a1[1], *a2[1]);
        assert_eq!(s1, s2);
        // Back-to-back issue/wait charges identically to blocking.
        assert_eq!(m1.report().critical, m2.report().critical);
        assert_eq!(m1.makespan_s().to_bits(), m2.makespan_s().to_bits());
    }

    #[test]
    fn singleton_nonblocking_collectives_are_free() {
        let m = machine(1);
        let g = m.world();
        let p = ibroadcast(&m, &g, 0, Arc::new(7u64)).unwrap();
        assert!(p.handle().is_none());
        assert_eq!(*p.take(&m).unwrap()[0], 7);
        assert_eq!(m.outstanding_collectives(), 0);
        assert_eq!(m.report().critical.msgs, 0);
    }

    #[test]
    fn csr_volume_counts_payload() {
        use mfbc_algebra::monoid::SumU64;
        let c = mfbc_sparse::Coo::from_triples(2, 2, vec![(0usize, 0usize, 1u64), (1, 1, 2)])
            .into_csr::<SumU64>();
        // 2 entries × (8-byte value + 4-byte index)
        assert_eq!(c.comm_bytes(), 24);
    }
}
