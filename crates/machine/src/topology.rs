//! Machine descriptions: rank counts and α–β–γ cost constants.

/// Description of a simulated machine in the α–β model of §5.1,
/// extended with a compute rate γ and an optional per-rank memory
/// budget `M`.
///
/// Units: `alpha` seconds per message, `beta` seconds per byte,
/// `gamma` seconds per elementary operation (one kernel `f`/`⊕`
/// application), `mem_bytes` bytes. The paper assumes `α ≥ β`.
#[derive(Clone, Debug, PartialEq)]
pub struct MachineSpec {
    /// Number of processors (MPI ranks in the paper; one rank per
    /// node, as the paper benchmarks one MPI process per node).
    pub p: usize,
    /// Message latency α (s/message).
    pub alpha: f64,
    /// Inverse bandwidth β (s/byte).
    pub beta: f64,
    /// Compute rate γ (s/op).
    pub gamma: f64,
    /// Per-rank memory budget `M` in bytes; `None` disables the
    /// out-of-memory simulation.
    pub mem_bytes: Option<u64>,
}

impl MachineSpec {
    /// A Cray-Gemini-class interconnect, mimicking the paper's Blue
    /// Waters XE6 testbed: α = 2 µs, ~6 GB/s effective per-node
    /// bandwidth, and a ~10 Gflop-equivalent effective rate for the
    /// irregular sparse kernels (measured sparse codes run far below
    /// peak). 64 GiB of memory per node, of which half is assumed
    /// usable for matrix data.
    pub fn gemini(p: usize) -> MachineSpec {
        MachineSpec {
            p,
            alpha: 2.0e-6,
            beta: 1.0 / 6.0e9,
            gamma: 1.0e-9,
            mem_bytes: Some(32 * (1 << 30)),
        }
    }

    /// A Cray-Aries (Dragonfly) class interconnect, mimicking the
    /// Edison/Piz Dora machines used for tuning: lower latency and
    /// higher bandwidth than Gemini.
    pub fn aries(p: usize) -> MachineSpec {
        MachineSpec {
            p,
            alpha: 1.0e-6,
            beta: 1.0 / 10.0e9,
            gamma: 8.0e-10,
            mem_bytes: Some(32 * (1 << 30)),
        }
    }

    /// A deliberately tiny, round-number spec for unit tests:
    /// α = 1, β = 1, γ = 1 (so costs equal message/byte/op counts)
    /// and no memory budget.
    pub fn test(p: usize) -> MachineSpec {
        MachineSpec {
            p,
            alpha: 1.0,
            beta: 1.0,
            gamma: 1.0,
            mem_bytes: None,
        }
    }

    /// Scales the per-rank memory budget by `c` (used by benchmarks
    /// exploring the replication/memory trade-off of Theorem 5.1).
    pub fn with_mem_bytes(mut self, mem: Option<u64>) -> MachineSpec {
        self.mem_bytes = mem;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_satisfy_alpha_ge_beta() {
        for spec in [MachineSpec::gemini(16), MachineSpec::aries(16)] {
            assert!(spec.alpha >= spec.beta, "paper assumes α ≥ β");
            assert!(spec.gamma > 0.0);
            assert!(spec.mem_bytes.is_some());
        }
    }

    #[test]
    fn test_spec_is_unit() {
        let s = MachineSpec::test(8);
        assert_eq!((s.alpha, s.beta, s.gamma), (1.0, 1.0, 1.0));
        assert_eq!(s.mem_bytes, None);
        assert_eq!(s.p, 8);
    }

    #[test]
    fn with_mem_bytes_overrides() {
        let s = MachineSpec::test(2).with_mem_bytes(Some(42));
        assert_eq!(s.mem_bytes, Some(42));
    }
}
