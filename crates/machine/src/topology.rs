//! Machine descriptions: rank counts and α–β–γ cost constants.

/// How redistribution traffic between block layouts is realized.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RedistMode {
    /// The paper's accounting: one personalized all-to-all charged by
    /// the maximum per-sender volume.
    Alltoall,
    /// Sparsity-driven hybrid: per source block, pick broadcast or
    /// targeted point-to-point sends by comparing their modeled costs
    /// on the block's actual byte volume and destination fan-out.
    Auto,
    /// Force a broadcast from each source over its destination set.
    Bcast,
    /// Force targeted point-to-point sends for every block.
    P2p,
}

impl RedistMode {
    /// Stable lower-case name (the CLI flag value).
    pub fn name(self) -> &'static str {
        match self {
            RedistMode::Alltoall => "alltoall",
            RedistMode::Auto => "auto",
            RedistMode::Bcast => "bcast",
            RedistMode::P2p => "p2p",
        }
    }

    /// Inverse of [`RedistMode::name`] (CLI flag parsing).
    pub fn from_name(name: &str) -> Option<RedistMode> {
        Some(match name {
            "alltoall" => RedistMode::Alltoall,
            "auto" => RedistMode::Auto,
            "bcast" => RedistMode::Bcast,
            "p2p" => RedistMode::P2p,
            _ => return None,
        })
    }
}

/// Description of a simulated machine in the α–β model of §5.1,
/// extended with a compute rate γ and an optional per-rank memory
/// budget `M`.
///
/// Units: `alpha` seconds per message, `beta` seconds per byte,
/// `gamma` seconds per elementary operation (one kernel `f`/`⊕`
/// application), `mem_bytes` bytes. The paper assumes `α ≥ β`.
#[derive(Clone, Debug, PartialEq)]
pub struct MachineSpec {
    /// Number of processors (MPI ranks in the paper; one rank per
    /// node, as the paper benchmarks one MPI process per node).
    pub p: usize,
    /// Message latency α (s/message).
    pub alpha: f64,
    /// Inverse bandwidth β (s/byte).
    pub beta: f64,
    /// Compute rate γ (s/op).
    pub gamma: f64,
    /// Per-rank memory budget `M` in bytes; `None` disables the
    /// out-of-memory simulation.
    pub mem_bytes: Option<u64>,
    /// Whether collectives overlap with subsequent computation on the
    /// modeled clocks: an in-flight collective issued at its group's
    /// last synchronization completes at
    /// `max(ready + α, issue + dt)` instead of `ready + dt`, hiding
    /// its bandwidth term under local compute (the latency term stays
    /// on the critical path). `false` restores the paper's fully
    /// serialized accounting. Scores never depend on this flag — only
    /// the modeled clocks do.
    pub overlap: bool,
    /// How redistribution traffic is charged (see [`RedistMode`]).
    pub redist: RedistMode,
}

impl MachineSpec {
    /// A Cray-Gemini-class interconnect, mimicking the paper's Blue
    /// Waters XE6 testbed: α = 2 µs, ~6 GB/s effective per-node
    /// bandwidth, and a ~10 Gflop-equivalent effective rate for the
    /// irregular sparse kernels (measured sparse codes run far below
    /// peak). 64 GiB of memory per node, of which half is assumed
    /// usable for matrix data.
    pub fn gemini(p: usize) -> MachineSpec {
        MachineSpec {
            p,
            alpha: 2.0e-6,
            beta: 1.0 / 6.0e9,
            gamma: 1.0e-9,
            mem_bytes: Some(32 * (1 << 30)),
            overlap: true,
            redist: RedistMode::Auto,
        }
    }

    /// A Cray-Aries (Dragonfly) class interconnect, mimicking the
    /// Edison/Piz Dora machines used for tuning: lower latency and
    /// higher bandwidth than Gemini.
    pub fn aries(p: usize) -> MachineSpec {
        MachineSpec {
            p,
            alpha: 1.0e-6,
            beta: 1.0 / 10.0e9,
            gamma: 8.0e-10,
            mem_bytes: Some(32 * (1 << 30)),
            overlap: true,
            redist: RedistMode::Auto,
        }
    }

    /// A deliberately tiny, round-number spec for unit tests:
    /// α = 1, β = 1, γ = 1 (so costs equal message/byte/op counts),
    /// no memory budget, and the paper's serialized accounting
    /// (`overlap = false`, all-to-all redistribution) so hand-computed
    /// expectations stay simple.
    pub fn test(p: usize) -> MachineSpec {
        MachineSpec {
            p,
            alpha: 1.0,
            beta: 1.0,
            gamma: 1.0,
            mem_bytes: None,
            overlap: false,
            redist: RedistMode::Alltoall,
        }
    }

    /// Scales the per-rank memory budget by `c` (used by benchmarks
    /// exploring the replication/memory trade-off of Theorem 5.1).
    pub fn with_mem_bytes(mut self, mem: Option<u64>) -> MachineSpec {
        self.mem_bytes = mem;
        self
    }

    /// Returns the spec with overlapped accounting switched on/off
    /// (the `--no-overlap` escape hatch).
    pub fn with_overlap(mut self, overlap: bool) -> MachineSpec {
        self.overlap = overlap;
        self
    }

    /// Returns the spec with the given redistribution mode.
    pub fn with_redist(mut self, redist: RedistMode) -> MachineSpec {
        self.redist = redist;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_satisfy_alpha_ge_beta() {
        for spec in [MachineSpec::gemini(16), MachineSpec::aries(16)] {
            assert!(spec.alpha >= spec.beta, "paper assumes α ≥ β");
            assert!(spec.gamma > 0.0);
            assert!(spec.mem_bytes.is_some());
        }
    }

    #[test]
    fn test_spec_is_unit() {
        let s = MachineSpec::test(8);
        assert_eq!((s.alpha, s.beta, s.gamma), (1.0, 1.0, 1.0));
        assert_eq!(s.mem_bytes, None);
        assert_eq!(s.p, 8);
        assert!(!s.overlap, "test spec keeps serialized accounting");
        assert_eq!(s.redist, RedistMode::Alltoall);
    }

    #[test]
    fn production_presets_default_to_overlap_and_hybrid() {
        for spec in [MachineSpec::gemini(4), MachineSpec::aries(4)] {
            assert!(spec.overlap);
            assert_eq!(spec.redist, RedistMode::Auto);
        }
        let s = MachineSpec::gemini(4)
            .with_overlap(false)
            .with_redist(RedistMode::P2p);
        assert!(!s.overlap);
        assert_eq!(s.redist, RedistMode::P2p);
    }

    #[test]
    fn redist_mode_names_roundtrip() {
        for m in [
            RedistMode::Alltoall,
            RedistMode::Auto,
            RedistMode::Bcast,
            RedistMode::P2p,
        ] {
            assert_eq!(RedistMode::from_name(m.name()), Some(m));
        }
        assert_eq!(RedistMode::from_name("carrier_pigeon"), None);
    }

    #[test]
    fn with_mem_bytes_overrides() {
        let s = MachineSpec::test(2).with_mem_bytes(Some(42));
        assert_eq!(s.mem_bytes, Some(42));
    }
}
