//! A simulated distributed-memory machine for MFBC.
//!
//! The paper evaluates on the Blue Waters Cray XE6 over MPI. This
//! crate replaces that testbed with an in-process *bulk-synchronous
//! simulated machine*: `p` virtual ranks, each with its own logical
//! memory, communicating through collective operations that **really
//! move the data** between rank-local stores while an α–β–γ cost
//! model charges every rank for latency, bandwidth, and computation.
//!
//! Cost accounting follows the paper exactly:
//!
//! * §5.1 — a collective (scatter, gather, broadcast, reduction,
//!   allreduction) over `p` ranks moving `x` words costs
//!   `O(β·x + α·log p)`; broadcast/reduce are modeled at
//!   `2xβ + 2⌈log₂ p⌉α`, scatter/allgather at half that (§7.4);
//! * §7.4 — critical-path accumulation: before a collective, every
//!   participant's running cost is raised to the maximum over the
//!   group, then the collective's cost is added; the reported totals
//!   are per-metric maxima over ranks ("the greatest amount of data
//!   communicated along any dependent sequence of collectives").
//!
//! A per-rank memory meter reproduces the paper's out-of-memory
//! behaviour (e.g. CombBLAS failing on Friendster): algorithms charge
//! their resident sets and a [`MachineError::OutOfMemory`] surfaces
//! where the paper reports "unable to execute".

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod collectives;
pub mod comm;
pub mod cost;
pub mod topology;

pub use collectives::Volume;
pub use comm::Group;
pub use cost::{CollectiveKind, CostReport, CostTracker, RankCost};
pub use topology::MachineSpec;

use parking_lot::Mutex;
use std::sync::Arc;

/// Errors surfaced by the simulated machine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MachineError {
    /// A rank exceeded its memory budget `M`; carries (rank, resident
    /// bytes, budget bytes).
    OutOfMemory {
        /// The rank that exceeded its budget.
        rank: usize,
        /// Resident bytes at the moment of failure.
        resident: u64,
        /// The per-rank budget in bytes.
        budget: u64,
    },
}

impl std::fmt::Display for MachineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MachineError::OutOfMemory {
                rank,
                resident,
                budget,
            } => write!(
                f,
                "rank {rank} out of memory: resident {resident} B exceeds budget {budget} B"
            ),
        }
    }
}

impl std::error::Error for MachineError {}

/// The simulated machine: a spec plus shared cost/memory trackers.
///
/// Cheap to clone (trackers are shared behind an `Arc`), so a single
/// machine can be threaded through nested algorithm layers.
#[derive(Clone)]
pub struct Machine {
    spec: MachineSpec,
    tracker: Arc<Mutex<CostTracker>>,
}

impl Machine {
    /// Builds a machine from a spec with fresh cost meters.
    pub fn new(spec: MachineSpec) -> Machine {
        let tracker = CostTracker::new(spec.p);
        Machine {
            spec,
            tracker: Arc::new(Mutex::new(tracker)),
        }
    }

    /// The machine description.
    #[inline]
    pub fn spec(&self) -> &MachineSpec {
        &self.spec
    }

    /// Number of ranks.
    #[inline]
    pub fn p(&self) -> usize {
        self.spec.p
    }

    /// The group of all ranks.
    pub fn world(&self) -> Group {
        Group::all(self.spec.p)
    }

    /// Runs `f` with the cost tracker locked.
    pub fn with_tracker<R>(&self, f: impl FnOnce(&mut CostTracker) -> R) -> R {
        f(&mut self.tracker.lock())
    }

    /// Charges a collective over `group` moving up to `bytes` per rank.
    ///
    /// Every charge is also emitted as a [`mfbc_trace::TraceEvent::Collective`]
    /// when tracing is enabled, carrying the modeled α–β time and the
    /// critical-path message/byte charges, so a trace reproduces the
    /// accounting exactly.
    pub fn charge_collective(&self, group: &Group, kind: CollectiveKind, bytes: u64) {
        self.with_tracker(|t| t.collective(&self.spec, group.ranks(), kind, bytes));
        mfbc_trace::emit(|| mfbc_trace::TraceEvent::Collective {
            kind: kind.name(),
            group: group.len(),
            bytes,
            msgs: kind.msgs(group.len()),
            bytes_charged: kind.bytes_charged(bytes),
            modeled_s: kind.time(&self.spec, group.len(), bytes),
        });
    }

    /// Charges `ops` elementary operations of local compute on `rank`.
    pub fn charge_compute(&self, rank: usize, ops: u64) {
        self.with_tracker(|t| t.compute(&self.spec, rank, ops));
    }

    /// Charges `bytes` of resident memory on `rank`, failing if the
    /// budget is exceeded.
    pub fn charge_alloc(&self, rank: usize, bytes: u64) -> Result<(), MachineError> {
        self.with_tracker(|t| t.alloc(rank, bytes));
        self.check_memory(rank)
    }

    /// Releases `bytes` of resident memory on `rank`.
    pub fn release(&self, rank: usize, bytes: u64) {
        self.with_tracker(|t| t.free(rank, bytes));
    }

    fn check_memory(&self, rank: usize) -> Result<(), MachineError> {
        if let Some(budget) = self.spec.mem_bytes {
            let resident = self.with_tracker(|t| t.resident(rank));
            if resident > budget {
                return Err(MachineError::OutOfMemory {
                    rank,
                    resident,
                    budget,
                });
            }
        }
        Ok(())
    }

    /// Snapshot of the per-metric critical-path costs (Table 3's
    /// methodology).
    pub fn report(&self) -> CostReport {
        self.with_tracker(|t| t.report())
    }

    /// Resets all cost and memory meters (budgets unchanged).
    pub fn reset_meters(&self) {
        self.with_tracker(|t| *t = CostTracker::new(self.spec.p));
    }
}

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Machine(p={}, α={}, β={}, γ={})",
            self.spec.p, self.spec.alpha, self.spec.beta, self.spec.gamma
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machine_facade_charges_costs() {
        let m = Machine::new(MachineSpec::test(4));
        m.charge_collective(&m.world(), CollectiveKind::Broadcast, 1000);
        m.charge_compute(0, 500);
        let r = m.report();
        assert!(r.critical.comm_time > 0.0);
        assert!(r.critical.comp_time > 0.0);
        assert_eq!(r.critical.msgs, 2 * 2); // 2·log2(4) messages
    }

    #[test]
    fn memory_budget_enforced() {
        let spec = MachineSpec {
            mem_bytes: Some(1000),
            ..MachineSpec::test(2)
        };
        let m = Machine::new(spec);
        assert!(m.charge_alloc(0, 900).is_ok());
        let err = m.charge_alloc(0, 200).unwrap_err();
        match err {
            MachineError::OutOfMemory {
                rank,
                resident,
                budget,
            } => {
                assert_eq!(rank, 0);
                assert_eq!(resident, 1100);
                assert_eq!(budget, 1000);
            }
        }
        m.release(0, 900);
        assert!(m.charge_alloc(0, 100).is_ok());
    }

    #[test]
    fn reset_clears_meters() {
        let m = Machine::new(MachineSpec::test(2));
        m.charge_compute(1, 100);
        m.reset_meters();
        assert_eq!(m.report().critical.comp_time, 0.0);
    }
}
