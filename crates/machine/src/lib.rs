//! A simulated distributed-memory machine for MFBC.
//!
//! The paper evaluates on the Blue Waters Cray XE6 over MPI. This
//! crate replaces that testbed with an in-process *bulk-synchronous
//! simulated machine*: `p` virtual ranks, each with its own logical
//! memory, communicating through collective operations that **really
//! move the data** between rank-local stores while an α–β–γ cost
//! model charges every rank for latency, bandwidth, and computation.
//!
//! Cost accounting follows the paper exactly:
//!
//! * §5.1 — a collective (scatter, gather, broadcast, reduction,
//!   allreduction) over `p` ranks moving `x` words costs
//!   `O(β·x + α·log p)`; broadcast/reduce are modeled at
//!   `2xβ + 2⌈log₂ p⌉α`, scatter/allgather at half that (§7.4);
//! * §7.4 — critical-path accumulation: before a collective, every
//!   participant's running cost is raised to the maximum over the
//!   group, then the collective's cost is added; the reported totals
//!   are per-metric maxima over ranks ("the greatest amount of data
//!   communicated along any dependent sequence of collectives").
//!
//! A per-rank memory meter reproduces the paper's out-of-memory
//! behaviour (e.g. CombBLAS failing on Friendster): algorithms charge
//! their resident sets and a [`MachineError::OutOfMemory`] surfaces
//! where the paper reports "unable to execute".
//!
//! # Fault injection
//!
//! At Blue Waters scale node failures are routine, so the machine can
//! carry a seeded [`FaultPlan`] (see `mfbc-fault`): every collective
//! advances a sequence counter, and scheduled faults fire when their
//! sequence number comes up. A crash marks a rank permanently failed
//! (later collectives containing it return
//! [`MachineError::RankFailed`]); a transient fault makes collectives
//! fail until its finite recurrence budget is spent, with bounded
//! in-machine retry and modeled backoff (overflow surfaces as
//! [`MachineError::CollectiveFailed`]); a forced OOM surfaces as
//! [`MachineError::OutOfMemory`]. [`Machine::shrink`] rebuilds a
//! `p−1`-rank machine around the survivors, carrying their
//! accumulated costs, so a recovering driver can replan and resume.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod collectives;
pub mod comm;
pub mod cost;
pub mod topology;

pub use collectives::Volume;
pub use comm::Group;
pub use cost::{CollectiveKind, CostReport, CostTracker, RankCost};
pub use mfbc_fault::{FaultKind, FaultPlan, FaultStats, RetryPolicy, ScheduledFault};
pub use topology::{MachineSpec, RedistMode};

use parking_lot::Mutex;
use std::sync::Arc;

/// Errors surfaced by the simulated machine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MachineError {
    /// A rank exceeded its memory budget `M`; carries (rank, resident
    /// bytes, budget bytes).
    OutOfMemory {
        /// The rank that exceeded its budget.
        rank: usize,
        /// Resident bytes at the moment of failure.
        resident: u64,
        /// The per-rank budget in bytes.
        budget: u64,
    },
    /// A rank crashed: a collective was attempted whose group
    /// contains a permanently failed rank.
    RankFailed {
        /// The failed rank (numbering of the machine that detected it).
        rank: usize,
        /// Collective sequence number at which the failure was detected.
        seq: u64,
    },
    /// A collective kept failing transiently and the machine's
    /// bounded retry budget ran out.
    CollectiveFailed {
        /// Collective kind name (e.g. `"allgather"`).
        kind: &'static str,
        /// Collective sequence number of the failed operation.
        seq: u64,
        /// Attempts made (including the initial one) before giving up.
        attempts: u32,
    },
    /// User-reachable configuration was invalid (bad group, grid
    /// shape, or replication factor). Carries a human-readable reason.
    InvalidConfig {
        /// What was wrong with the configuration.
        reason: String,
    },
    /// A nonblocking collective's buffer was consumed while its
    /// handle was still outstanding (waitall-before-use violation).
    OutstandingCollective {
        /// Collective kind name (e.g. `allgather`).
        kind: &'static str,
        /// The still-outstanding handle.
        handle: u64,
    },
}

impl MachineError {
    /// Builds an [`MachineError::InvalidConfig`] from any message.
    pub fn invalid(reason: impl Into<String>) -> MachineError {
        MachineError::InvalidConfig {
            reason: reason.into(),
        }
    }
}

impl std::fmt::Display for MachineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MachineError::OutOfMemory {
                rank,
                resident,
                budget,
            } => write!(
                f,
                "rank {rank} out of memory: resident {resident} B exceeds budget {budget} B"
            ),
            MachineError::RankFailed { rank, seq } => write!(
                f,
                "rank {rank} failed (crash detected at collective #{seq})"
            ),
            MachineError::CollectiveFailed {
                kind,
                seq,
                attempts,
            } => write!(
                f,
                "{kind} collective #{seq} failed after {attempts} attempts (transient fault persists)"
            ),
            MachineError::InvalidConfig { reason } => {
                write!(f, "invalid configuration: {reason}")
            }
            MachineError::OutstandingCollective { kind, handle } => write!(
                f,
                "{kind} collective handle #{handle} is still outstanding \
                 (wait on it before using its buffer)"
            ),
        }
    }
}

impl std::error::Error for MachineError {}

/// Per-rank memory snapshot: resident bytes (restorable) plus the
/// high-water marks at the moment the snapshot was taken; see
/// [`Machine::memory_snapshot`].
///
/// Peaks are *observations*, not restorable state: the meter only
/// ever ratchets them upward, so for any snapshot
/// `peak[r] >= resident[r]`, and across two snapshots of the same
/// machine the later peaks dominate the earlier ones — the invariant
/// the profiler's "memory high-water mark" column rests on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MemorySnapshot {
    resident: Vec<u64>,
    peak: Vec<u64>,
}

impl MemorySnapshot {
    /// Resident bytes per rank at snapshot time.
    pub fn resident(&self) -> &[u64] {
        &self.resident
    }

    /// Peak (high-water) resident bytes per rank at snapshot time.
    pub fn peak(&self) -> &[u64] {
        &self.peak
    }
}

/// Mutable fault-injection state shared by clones of a machine.
#[derive(Debug, Default)]
struct FaultState {
    /// Faults not yet fired.
    pending: Vec<ScheduledFault>,
    /// Permanently failed ranks, in the machine's current numbering.
    failed: Vec<usize>,
    /// Remaining transient failures to deliver.
    transient_budget: u32,
    /// Collective sequence counter ("superstep" clock).
    seq: u64,
    /// Retry policy for transient failures.
    policy: RetryPolicy,
    /// Injection-side counters.
    stats: FaultStats,
}

impl FaultState {
    fn fresh(plan: FaultPlan, policy: RetryPolicy) -> FaultState {
        FaultState {
            pending: plan.faults,
            policy,
            ..FaultState::default()
        }
    }

    /// Renumbers the state for a machine that dropped `failed`: the
    /// dead rank's remaining faults are discarded and higher ranks
    /// shift down by one. The sequence clock keeps running.
    fn shrunk(&self, failed: usize) -> FaultState {
        let remap = |r: usize| if r > failed { r - 1 } else { r };
        let pending = self
            .pending
            .iter()
            .filter(|sf| sf.kind.rank() != Some(failed))
            .map(|sf| {
                let kind = match sf.kind {
                    FaultKind::Crash { rank } => FaultKind::Crash { rank: remap(rank) },
                    FaultKind::Oom { rank } => FaultKind::Oom { rank: remap(rank) },
                    k @ FaultKind::Transient { .. } => k,
                };
                ScheduledFault { at: sf.at, kind }
            })
            .collect();
        FaultState {
            pending,
            failed: self
                .failed
                .iter()
                .filter(|&&r| r != failed)
                .map(|&r| remap(r))
                .collect(),
            transient_budget: self.transient_budget,
            seq: self.seq,
            policy: self.policy,
            stats: self.stats,
        }
    }
}

/// One issued-but-not-yet-waited nonblocking collective.
#[derive(Clone, Debug)]
struct PendingOp {
    handle: u64,
    kind: CollectiveKind,
    ranks: Vec<usize>,
    bytes: u64,
    /// Issue clock captured when the operation was issued.
    issue_s: f64,
}

/// Outstanding nonblocking collectives, in issue order.
#[derive(Debug, Default)]
struct PendingTable {
    next_handle: u64,
    ops: Vec<PendingOp>,
}

/// The simulated machine: a spec plus shared cost/memory trackers and
/// fault-injection state.
///
/// Cheap to clone (trackers are shared behind an `Arc`), so a single
/// machine can be threaded through nested algorithm layers.
#[derive(Clone)]
pub struct Machine {
    spec: MachineSpec,
    tracker: Arc<Mutex<CostTracker>>,
    faults: Arc<Mutex<FaultState>>,
    pending: Arc<Mutex<PendingTable>>,
}

impl Machine {
    /// Builds a machine from a spec with fresh cost meters and no
    /// scheduled faults.
    pub fn new(spec: MachineSpec) -> Machine {
        Machine::with_faults(spec, FaultPlan::none(), RetryPolicy::default())
    }

    /// Builds a machine carrying a fault schedule and retry policy.
    pub fn with_faults(spec: MachineSpec, plan: FaultPlan, policy: RetryPolicy) -> Machine {
        let tracker = CostTracker::new(spec.p);
        Machine {
            spec,
            tracker: Arc::new(Mutex::new(tracker)),
            faults: Arc::new(Mutex::new(FaultState::fresh(plan, policy))),
            pending: Arc::new(Mutex::new(PendingTable::default())),
        }
    }

    /// Installs (replaces) the pending fault schedule. Meant to be
    /// called before a run; the collective sequence clock is not
    /// reset.
    pub fn install_faults(&self, plan: FaultPlan) {
        self.faults.lock().pending = plan.faults;
    }

    /// Sets the bounded-retry policy for transient faults.
    pub fn set_retry_policy(&self, policy: RetryPolicy) {
        self.faults.lock().policy = policy;
    }

    /// Injection-side fault counters so far.
    pub fn fault_stats(&self) -> FaultStats {
        self.faults.lock().stats
    }

    /// Current collective sequence number (the fault clock).
    pub fn collective_seq(&self) -> u64 {
        self.faults.lock().seq
    }

    /// Ranks marked permanently failed, in current numbering.
    pub fn failed_ranks(&self) -> Vec<usize> {
        self.faults.lock().failed.clone()
    }

    /// The machine description.
    #[inline]
    pub fn spec(&self) -> &MachineSpec {
        &self.spec
    }

    /// Number of ranks.
    #[inline]
    pub fn p(&self) -> usize {
        self.spec.p
    }

    /// The group of all ranks.
    pub fn world(&self) -> Group {
        Group::all(self.spec.p)
    }

    /// Runs `f` with the cost tracker locked.
    pub fn with_tracker<R>(&self, f: impl FnOnce(&mut CostTracker) -> R) -> R {
        f(&mut self.tracker.lock())
    }

    /// Charges a collective over `group` moving up to `bytes` per rank.
    ///
    /// This is the fault-injection point: the collective sequence
    /// counter advances, due faults fire, and the operation fails with
    /// a typed [`MachineError`] if a participant has crashed, a forced
    /// OOM was scheduled, or a transient fault outlives the bounded
    /// retry budget. On success the cost is charged and emitted as a
    /// [`mfbc_trace::TraceEvent::Collective`] when tracing is enabled,
    /// carrying the modeled α–β time and the critical-path
    /// message/byte charges, so a trace reproduces the accounting
    /// exactly.
    pub fn charge_collective(
        &self,
        group: &Group,
        kind: CollectiveKind,
        bytes: u64,
    ) -> Result<(), MachineError> {
        let seq = self.fault_gate(group, kind)?;
        self.with_tracker(|t| t.collective(&self.spec, group.ranks(), kind, bytes));
        mfbc_trace::emit(|| mfbc_trace::TraceEvent::Collective {
            kind: kind.name(),
            group: group.len(),
            ranks: group.ranks().to_vec(),
            seq,
            bytes,
            msgs: kind.msgs(group.len()),
            bytes_charged: kind.bytes_charged(bytes),
            modeled_s: kind.time(&self.spec, group.len(), bytes),
        });
        Ok(())
    }

    /// Issues a nonblocking collective and returns its handle. The
    /// fault gate fires here (same sequence-number semantics as
    /// [`Machine::charge_collective`]), and the issue clock — the
    /// group's last synchronization point — is captured here, but
    /// nothing is charged to the meters until the matching
    /// [`Machine::wait_collective`]. Under overlapped accounting the
    /// collective's transfer window therefore runs concurrently with
    /// whatever compute is charged between issue and wait.
    pub fn icharge_collective(
        &self,
        group: &Group,
        kind: CollectiveKind,
        bytes: u64,
    ) -> Result<u64, MachineError> {
        let seq = self.fault_gate(group, kind)?;
        let issue_s = self.with_tracker(|t| t.issue_time(group.ranks()));
        let handle = {
            let mut pt = self.pending.lock();
            let h = pt.next_handle;
            pt.next_handle += 1;
            pt.ops.push(PendingOp {
                handle: h,
                kind,
                ranks: group.ranks().to_vec(),
                bytes,
                issue_s,
            });
            h
        };
        mfbc_trace::emit(|| mfbc_trace::TraceEvent::CollectiveIssue {
            kind: kind.name(),
            group: group.len(),
            ranks: group.ranks().to_vec(),
            seq,
            bytes,
            msgs: kind.msgs(group.len()),
            bytes_charged: kind.bytes_charged(bytes),
            modeled_s: kind.time(&self.spec, group.len(), bytes),
            handle,
        });
        Ok(handle)
    }

    /// Completes a nonblocking collective: charges its meters (raise
    /// to group max, then add — identical to the blocking path) and
    /// advances the causal clocks, with the transfer window anchored
    /// at the captured issue clock when `spec.overlap` is set. Waiting
    /// on a handle that was never issued (or already waited) is an
    /// [`MachineError::InvalidConfig`].
    pub fn wait_collective(&self, handle: u64) -> Result<(), MachineError> {
        let op = {
            let mut pt = self.pending.lock();
            let Some(i) = pt.ops.iter().position(|op| op.handle == handle) else {
                return Err(MachineError::invalid(format!(
                    "wait on unknown collective handle #{handle}"
                )));
            };
            pt.ops.remove(i)
        };
        self.with_tracker(|t| {
            t.complete_collective(&self.spec, &op.ranks, op.kind, op.bytes, op.issue_s)
        });
        mfbc_trace::emit(|| mfbc_trace::TraceEvent::CollectiveWait { handle });
        Ok(())
    }

    /// Waits out every outstanding nonblocking collective, in issue
    /// order.
    pub fn waitall(&self) -> Result<(), MachineError> {
        loop {
            let next = self.pending.lock().ops.first().map(|op| op.handle);
            match next {
                Some(h) => self.wait_collective(h)?,
                None => return Ok(()),
            }
        }
    }

    /// Number of issued-but-not-waited collectives.
    pub fn outstanding_collectives(&self) -> usize {
        self.pending.lock().ops.len()
    }

    /// Whether `handle` is still outstanding. The typed collectives'
    /// [`collectives::Pending::take`] uses this to enforce
    /// waitall-before-use.
    pub fn is_outstanding(&self, handle: u64) -> bool {
        self.pending.lock().ops.iter().any(|op| op.handle == handle)
    }

    /// The kind of the outstanding collective behind `handle`, if any.
    pub fn outstanding_kind(&self, handle: u64) -> Option<CollectiveKind> {
        self.pending
            .lock()
            .ops
            .iter()
            .find(|op| op.handle == handle)
            .map(|op| op.kind)
    }

    /// Discards every outstanding nonblocking collective without
    /// charging it (recovery paths abandon in-flight work; the wasted
    /// time is accounted separately). Returns how many were dropped.
    pub fn abort_pending(&self) -> usize {
        let mut pt = self.pending.lock();
        let n = pt.ops.len();
        pt.ops.clear();
        n
    }

    /// The modeled makespan so far: the maximum causal clock over
    /// ranks. Under serialized accounting this equals the single-clock
    /// BSP replay; under overlapped accounting it is never larger.
    pub fn makespan_s(&self) -> f64 {
        self.with_tracker(|t| t.makespan_s())
    }

    /// Advances the fault clock and applies any due fault to this
    /// collective attempt; returns the attempt's sequence number.
    fn fault_gate(&self, group: &Group, kind: CollectiveKind) -> Result<u64, MachineError> {
        let mut fs = self.faults.lock();
        let seq = fs.seq;
        fs.seq += 1;
        if fs.pending.is_empty() && fs.failed.is_empty() && fs.transient_budget == 0 {
            return Ok(seq); // fault-free fast path
        }

        // Fire every scheduled fault whose time has come.
        let mut due = Vec::new();
        fs.pending.retain(|sf| {
            if sf.at <= seq {
                due.push(*sf);
                false
            } else {
                true
            }
        });
        let mut forced_oom = None;
        for sf in due {
            fs.stats.faults_injected += 1;
            mfbc_trace::emit(|| mfbc_trace::TraceEvent::Fault {
                kind: sf.kind.name(),
                rank: sf.kind.rank(),
                seq,
            });
            match sf.kind {
                FaultKind::Crash { rank } => {
                    let rank = rank.min(self.spec.p.saturating_sub(1));
                    if !fs.failed.contains(&rank) {
                        fs.failed.push(rank);
                    }
                }
                FaultKind::Transient { recurrence } => {
                    fs.transient_budget += recurrence;
                }
                FaultKind::Oom { rank } => {
                    forced_oom = Some(rank.min(self.spec.p.saturating_sub(1)));
                }
            }
        }
        if let Some(rank) = forced_oom {
            let resident = self.with_tracker(|t| t.resident(rank));
            // A forced OOM reports the resident set as the budget when
            // the machine is otherwise unbounded.
            let budget = self.spec.mem_bytes.unwrap_or(resident);
            return Err(MachineError::OutOfMemory {
                rank,
                resident,
                budget,
            });
        }

        // A crashed participant poisons the whole collective.
        if let Some(&rank) = group.ranks().iter().find(|r| fs.failed.contains(r)) {
            return Err(MachineError::RankFailed { rank, seq });
        }

        // Transient failures: bounded in-machine retry with modeled
        // backoff; each failed attempt consumes recurrence budget.
        if fs.transient_budget > 0 {
            let policy = fs.policy;
            let mut attempts = 1u32;
            while fs.transient_budget > 0 && attempts < policy.max_attempts {
                fs.transient_budget -= 1;
                fs.stats.retries += 1;
                fs.stats.backoff_s += policy.backoff_s;
                self.with_tracker(|t| t.backoff(group.ranks(), policy.backoff_s));
                mfbc_trace::emit(|| mfbc_trace::TraceEvent::Backoff {
                    ranks: group.ranks().to_vec(),
                    seconds: policy.backoff_s,
                });
                attempts += 1;
            }
            if fs.transient_budget > 0 {
                fs.transient_budget -= 1;
                return Err(MachineError::CollectiveFailed {
                    kind: kind.name(),
                    seq,
                    attempts,
                });
            }
        }
        Ok(seq)
    }

    /// Charges `ops` elementary operations of local compute on `rank`.
    ///
    /// Emitted as a [`mfbc_trace::TraceEvent::Compute`] when tracing
    /// is enabled, carrying the same `ops · γ` seconds the tracker
    /// charges, so a trace carries full per-rank attribution.
    pub fn charge_compute(&self, rank: usize, ops: u64) {
        self.with_tracker(|t| t.compute(&self.spec, rank, ops));
        mfbc_trace::emit(|| mfbc_trace::TraceEvent::Compute {
            rank,
            ops,
            modeled_s: ops as f64 * self.spec.gamma,
        });
    }

    /// Charges `bytes` of resident memory on `rank`, failing if the
    /// budget is exceeded.
    pub fn charge_alloc(&self, rank: usize, bytes: u64) -> Result<(), MachineError> {
        self.with_tracker(|t| t.alloc(rank, bytes));
        self.check_memory(rank)
    }

    /// Releases `bytes` of resident memory on `rank`.
    pub fn release(&self, rank: usize, bytes: u64) {
        self.with_tracker(|t| t.free(rank, bytes));
    }

    fn check_memory(&self, rank: usize) -> Result<(), MachineError> {
        if let Some(budget) = self.spec.mem_bytes {
            let resident = self.with_tracker(|t| t.resident(rank));
            if resident > budget {
                return Err(MachineError::OutOfMemory {
                    rank,
                    resident,
                    budget,
                });
            }
        }
        Ok(())
    }

    /// Snapshot of every rank's resident bytes, restorable with
    /// [`Machine::restore_memory`]. Recovery code takes one at a
    /// checkpoint boundary so a failed batch's leaked residency can be
    /// rolled back without replaying every release. Peak meters are
    /// unaffected by restoration.
    pub fn memory_snapshot(&self) -> MemorySnapshot {
        self.with_tracker(|t| MemorySnapshot {
            resident: t.memory_snapshot(),
            peak: t.peak_snapshot(),
        })
    }

    /// Per-rank accumulated critical-path costs — the raw data behind
    /// [`Machine::report`]'s maxima, exposed for per-rank utilization
    /// and load-imbalance profiling.
    pub fn rank_costs(&self) -> Vec<RankCost> {
        self.with_tracker(|t| (0..t.p()).map(|r| t.rank(r)).collect())
    }

    /// Per-rank memory high-water marks (peak resident bytes).
    pub fn memory_peaks(&self) -> Vec<u64> {
        self.with_tracker(|t| t.peak_snapshot())
    }

    /// Restores resident bytes to a snapshot taken on this machine.
    pub fn restore_memory(&self, snapshot: &MemorySnapshot) {
        self.with_tracker(|t| t.restore_memory(&snapshot.resident));
    }

    /// Builds the `p−1`-rank machine that survives the permanent
    /// failure of `failed`: surviving ranks keep their accumulated
    /// costs and peak meters (degraded-mode accounting — the time
    /// already spent is not forgotten), resident memory carries over,
    /// and the fault schedule is renumbered (the dead rank's pending
    /// faults are dropped, higher ranks shift down). Fails on a
    /// 1-rank machine, where there is nothing to shrink onto.
    pub fn shrink(&self, failed: usize) -> Result<Machine, MachineError> {
        if self.spec.p <= 1 {
            return Err(MachineError::invalid(
                "cannot shrink a 1-rank machine: no surviving ranks",
            ));
        }
        if failed >= self.spec.p {
            return Err(MachineError::invalid(format!(
                "cannot shrink: rank {failed} out of range (p = {})",
                self.spec.p
            )));
        }
        let spec = MachineSpec {
            p: self.spec.p - 1,
            ..self.spec
        };
        let tracker = self.with_tracker(|t| t.shrunk(failed));
        let faults = self.faults.lock().shrunk(failed);
        mfbc_trace::emit(|| mfbc_trace::TraceEvent::Shrink {
            failed,
            p_before: self.spec.p,
        });
        // In-flight collectives of the dead configuration are
        // abandoned, not charged.
        Ok(Machine {
            spec,
            tracker: Arc::new(Mutex::new(tracker)),
            faults: Arc::new(Mutex::new(faults)),
            pending: Arc::new(Mutex::new(PendingTable::default())),
        })
    }

    /// Snapshot of the per-metric critical-path costs (Table 3's
    /// methodology).
    pub fn report(&self) -> CostReport {
        self.with_tracker(|t| t.report())
    }

    /// Resets all cost and memory meters (budgets unchanged), and
    /// discards any outstanding nonblocking collectives.
    pub fn reset_meters(&self) {
        self.with_tracker(|t| *t = CostTracker::new(self.spec.p));
        self.pending.lock().ops.clear();
    }
}

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Machine(p={}, α={}, β={}, γ={})",
            self.spec.p, self.spec.alpha, self.spec.beta, self.spec.gamma
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machine_facade_charges_costs() {
        let m = Machine::new(MachineSpec::test(4));
        m.charge_collective(&m.world(), CollectiveKind::Broadcast, 1000)
            .unwrap();
        m.charge_compute(0, 500);
        let r = m.report();
        assert!(r.critical.comm_time > 0.0);
        assert!(r.critical.comp_time > 0.0);
        assert_eq!(r.critical.msgs, 2 * 2); // 2·log2(4) messages
    }

    #[test]
    fn memory_budget_enforced() {
        let spec = MachineSpec {
            mem_bytes: Some(1000),
            ..MachineSpec::test(2)
        };
        let m = Machine::new(spec);
        assert!(m.charge_alloc(0, 900).is_ok());
        let err = m.charge_alloc(0, 200).unwrap_err();
        match err {
            MachineError::OutOfMemory {
                rank,
                resident,
                budget,
            } => {
                assert_eq!(rank, 0);
                assert_eq!(resident, 1100);
                assert_eq!(budget, 1000);
            }
            other => panic!("unexpected error {other:?}"),
        }
        m.release(0, 900);
        assert!(m.charge_alloc(0, 100).is_ok());
    }

    #[test]
    fn reset_clears_meters() {
        let m = Machine::new(MachineSpec::test(2));
        m.charge_compute(1, 100);
        m.reset_meters();
        assert_eq!(m.report().critical.comp_time, 0.0);
    }

    #[test]
    fn crash_fault_poisons_later_collectives() {
        let m = Machine::with_faults(
            MachineSpec::test(4),
            FaultPlan::single(1, FaultKind::Crash { rank: 2 }),
            RetryPolicy::default(),
        );
        let w = m.world();
        assert!(m
            .charge_collective(&w, CollectiveKind::Broadcast, 8)
            .is_ok());
        let err = m
            .charge_collective(&w, CollectiveKind::Broadcast, 8)
            .unwrap_err();
        assert_eq!(err, MachineError::RankFailed { rank: 2, seq: 1 });
        // Still failed on the next attempt.
        assert!(matches!(
            m.charge_collective(&w, CollectiveKind::Reduce, 8),
            Err(MachineError::RankFailed { rank: 2, .. })
        ));
        // A group avoiding the dead rank still works.
        let g = Group::new(vec![0, 1, 3]).unwrap();
        assert!(m.charge_collective(&g, CollectiveKind::Reduce, 8).is_ok());
        assert_eq!(m.fault_stats().faults_injected, 1);
    }

    #[test]
    fn transient_fault_retries_in_machine_then_succeeds() {
        let m = Machine::with_faults(
            MachineSpec::test(2),
            FaultPlan::single(0, FaultKind::Transient { recurrence: 2 }),
            RetryPolicy {
                max_attempts: 3,
                backoff_s: 0.5,
                ..RetryPolicy::default()
            },
        );
        let before = m.report().critical.comm_time;
        m.charge_collective(&m.world(), CollectiveKind::Allreduce, 8)
            .unwrap();
        let stats = m.fault_stats();
        assert_eq!(stats.retries, 2);
        assert!((stats.backoff_s - 1.0).abs() < 1e-12);
        // Backoff is charged as modeled communication time.
        assert!(m.report().critical.comm_time >= before + 1.0);
        // Budget exhausted: later collectives are clean.
        m.charge_collective(&m.world(), CollectiveKind::Allreduce, 8)
            .unwrap();
    }

    #[test]
    fn transient_fault_overflows_bounded_retry() {
        let m = Machine::with_faults(
            MachineSpec::test(2),
            FaultPlan::single(0, FaultKind::Transient { recurrence: 5 }),
            RetryPolicy {
                max_attempts: 3,
                backoff_s: 1e-3,
                ..RetryPolicy::default()
            },
        );
        let err = m
            .charge_collective(&m.world(), CollectiveKind::Allgather, 8)
            .unwrap_err();
        assert_eq!(
            err,
            MachineError::CollectiveFailed {
                kind: "allgather",
                seq: 0,
                attempts: 3
            }
        );
        // Budget 5 − 3 = 2 left: next call retries twice then succeeds.
        m.charge_collective(&m.world(), CollectiveKind::Allgather, 8)
            .unwrap();
        assert_eq!(m.fault_stats().retries, 4);
    }

    #[test]
    fn forced_oom_fires_once() {
        let m = Machine::with_faults(
            MachineSpec::test(2),
            FaultPlan::single(0, FaultKind::Oom { rank: 1 }),
            RetryPolicy::default(),
        );
        let err = m
            .charge_collective(&m.world(), CollectiveKind::Broadcast, 8)
            .unwrap_err();
        assert!(matches!(err, MachineError::OutOfMemory { rank: 1, .. }));
        assert!(m
            .charge_collective(&m.world(), CollectiveKind::Broadcast, 8)
            .is_ok());
    }

    #[test]
    fn shrink_carries_costs_and_renumbers_faults() {
        let m = Machine::with_faults(
            MachineSpec::test(4),
            FaultPlan {
                faults: vec![
                    ScheduledFault {
                        at: 0,
                        kind: FaultKind::Crash { rank: 1 },
                    },
                    ScheduledFault {
                        at: 100,
                        kind: FaultKind::Oom { rank: 3 },
                    },
                    ScheduledFault {
                        at: 200,
                        kind: FaultKind::Oom { rank: 1 },
                    },
                ],
            },
            RetryPolicy::default(),
        );
        m.charge_compute(3, 1000);
        m.charge_alloc(2, 64).unwrap();
        let err = m
            .charge_collective(&m.world(), CollectiveKind::Broadcast, 8)
            .unwrap_err();
        let MachineError::RankFailed { rank, .. } = err else {
            panic!("expected RankFailed, got {err:?}");
        };
        let s = m.shrink(rank).unwrap();
        assert_eq!(s.p(), 3);
        // Rank 3's compute survives as rank 2; rank 2's memory as rank 1.
        assert!(s.report().critical.comp_time > 0.0);
        assert_eq!(s.with_tracker(|t| t.resident(1)), 64);
        // The dead rank leaves the failed set of the shrunk machine.
        assert!(s.failed_ranks().is_empty());
        // The clock keeps running across the shrink.
        assert_eq!(s.collective_seq(), m.collective_seq());
        // Shrinking a 1-rank machine is rejected.
        let one = Machine::new(MachineSpec::test(1));
        assert!(matches!(
            one.shrink(0),
            Err(MachineError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn nonblocking_pair_matches_blocking_when_adjacent() {
        let m = Machine::new(MachineSpec::test(4));
        let h = m
            .icharge_collective(&m.world(), CollectiveKind::Broadcast, 100)
            .unwrap();
        assert_eq!(m.outstanding_collectives(), 1);
        assert!(m.is_outstanding(h));
        assert_eq!(m.outstanding_kind(h), Some(CollectiveKind::Broadcast));
        m.wait_collective(h).unwrap();
        assert_eq!(m.outstanding_collectives(), 0);
        let b = Machine::new(MachineSpec::test(4));
        b.charge_collective(&b.world(), CollectiveKind::Broadcast, 100)
            .unwrap();
        assert_eq!(m.report().critical, b.report().critical);
        assert_eq!(m.makespan_s().to_bits(), b.makespan_s().to_bits());
        // Double-wait is a typed error.
        assert!(matches!(
            m.wait_collective(h),
            Err(MachineError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn overlap_hides_inflight_collective_under_compute() {
        let m = Machine::new(MachineSpec::test(2).with_overlap(true));
        // Allgather of 8 B over 2 ranks: dt = 9, α = 1.
        let h = m
            .icharge_collective(&m.world(), CollectiveKind::Allgather, 8)
            .unwrap();
        m.charge_compute(0, 20);
        m.wait_collective(h).unwrap();
        // issue = 0, ready = 20 → max(20 + 1, 0 + 9) = 21; the
        // serialized schedule would have taken 29.
        assert_eq!(m.makespan_s(), 21.0);
        // Meters still carry the full busy time.
        assert_eq!(m.report().critical.comm_time, 9.0);
        assert_eq!(m.report().critical.comp_time, 20.0);
    }

    #[test]
    fn waitall_drains_in_issue_order_and_abort_discards() {
        let m = Machine::new(MachineSpec::test(2).with_overlap(true));
        let g = m.world();
        m.icharge_collective(&g, CollectiveKind::Allgather, 4)
            .unwrap();
        m.icharge_collective(&g, CollectiveKind::Allgather, 4)
            .unwrap();
        m.waitall().unwrap();
        assert_eq!(m.outstanding_collectives(), 0);
        let before = m.report().critical.comm_time;
        let h = m
            .icharge_collective(&g, CollectiveKind::Broadcast, 1000)
            .unwrap();
        assert_eq!(m.abort_pending(), 1);
        assert!(!m.is_outstanding(h));
        // Aborted work was never charged.
        assert_eq!(m.report().critical.comm_time.to_bits(), before.to_bits());
    }

    #[test]
    fn icharge_advances_the_fault_clock() {
        let m = Machine::with_faults(
            MachineSpec::test(4).with_overlap(true),
            FaultPlan::single(1, FaultKind::Crash { rank: 2 }),
            RetryPolicy::default(),
        );
        let w = m.world();
        let h = m
            .icharge_collective(&w, CollectiveKind::Broadcast, 8)
            .unwrap();
        // The crash fires at the second issue, not at the wait.
        assert!(matches!(
            m.icharge_collective(&w, CollectiveKind::Broadcast, 8),
            Err(MachineError::RankFailed { rank: 2, .. })
        ));
        m.wait_collective(h).unwrap();
    }

    #[test]
    fn memory_snapshot_roundtrip() {
        let m = Machine::new(MachineSpec::test(2));
        m.charge_alloc(0, 100).unwrap();
        let snap = m.memory_snapshot();
        m.charge_alloc(0, 50).unwrap();
        m.charge_alloc(1, 70).unwrap();
        m.restore_memory(&snap);
        assert_eq!(m.with_tracker(|t| t.resident(0)), 100);
        assert_eq!(m.with_tracker(|t| t.resident(1)), 0);
        // Peak is not rolled back.
        assert_eq!(m.with_tracker(|t| t.peak(0)), 150);
    }

    #[test]
    fn peaks_are_monotone_upper_bounds_of_every_snapshot() {
        // Drive an alloc/free/restore workload and check, at every
        // snapshot point, that peaks dominate residents and never
        // decrease — including across a restore_memory rollback.
        let m = Machine::new(MachineSpec::test(3));
        let mut prev_peak = vec![0u64; 3];
        let mut check = || {
            let snap = m.memory_snapshot();
            for (r, &prev) in prev_peak.iter().enumerate() {
                assert!(
                    snap.peak()[r] >= snap.resident()[r],
                    "rank {r}: peak {} below resident {}",
                    snap.peak()[r],
                    snap.resident()[r]
                );
                assert!(
                    snap.peak()[r] >= prev,
                    "rank {r}: peak regressed {} -> {}",
                    prev,
                    snap.peak()[r]
                );
            }
            prev_peak = snap.peak().to_vec();
            snap
        };
        check();
        m.charge_alloc(0, 500).unwrap();
        m.charge_alloc(1, 200).unwrap();
        let ckpt = check();
        m.charge_alloc(0, 300).unwrap();
        m.release(1, 150);
        check();
        m.restore_memory(&ckpt);
        let after_restore = check();
        // The rollback dropped rank 0's resident but kept its peak.
        assert_eq!(after_restore.resident()[0], 500);
        assert_eq!(after_restore.peak()[0], 800);
        m.release(0, 500);
        m.charge_alloc(2, 50).unwrap();
        let last = check();
        assert_eq!(m.memory_peaks(), last.peak().to_vec());
    }

    #[test]
    fn rank_costs_expose_per_rank_breakdown() {
        let m = Machine::new(MachineSpec::test(4));
        m.charge_compute(2, 1000);
        m.charge_collective(
            &Group::new(vec![0, 1]).unwrap(),
            CollectiveKind::Broadcast,
            64,
        )
        .unwrap();
        let costs = m.rank_costs();
        assert_eq!(costs.len(), 4);
        assert!(costs[2].comp_time > 0.0);
        assert_eq!(costs[0].comm_time, costs[1].comm_time);
        assert!(costs[0].comm_time > 0.0);
        assert_eq!(costs[3], RankCost::default());
        // The report's critical path is the per-metric max of these.
        let r = m.report();
        assert_eq!(
            r.critical.comp_time,
            costs.iter().map(|c| c.comp_time).fold(0.0, f64::max)
        );
    }
}
